# Developer / CI entry points. The variables below are the single source of
# truth for the test-name regexes: .github/workflows/ci.yml and the commands
# quoted in CONTRIBUTING.md both go through `make`, so adding a suite means
# editing ONE line here.

# Chaos suite: every crash/failover/replication fault-injection test across
# the module. CI runs it under the race detector; nightly repeats it.
CHAOS_RUN  = Crash|Failover|Recover|Restart|Heartbeat|Liveness|Checkpoint|Journal|Snapshot|Replication|Quorum|Follower|ValueIndex|Switch|Adaptive|CrossProtocol
CHAOS_PKGS = . ./internal/recovery ./internal/sched ./internal/store ./internal/harness
CHAOS_COUNT ?= 3

# Hot-path benchmarks: the multi-iteration pass benchjson gates against
# BENCH_baseline.json (-max-regress AND -require: a hot benchmark missing
# from the baseline fails the job).
HOT_BENCH = BenchmarkDistributedTxn$$|BenchmarkFig12Throughput|BenchmarkFigDocsScaling|BenchmarkSnapshotReadScaling|BenchmarkQueryCache|BenchmarkPersistSnapshot|BenchmarkQuorumCommit|BenchmarkFollowerReadScaling|BenchmarkPredicateQuery|BenchmarkObsOverhead|BenchmarkAdaptiveProtocol

FUZZTIME ?= 10s

.PHONY: build test race chaos fuzz lint fmt bench-sweep bench-hot bench-compare bench-baseline print-hot-bench

# For CI to pass the gated-set regex into benchjson -require.
print-hot-bench:
	@echo '$(HOT_BENCH)'

build:
	go build ./...

# Shuffled to keep inter-test ordering dependencies from settling in.
test:
	go test -shuffle=on ./...

race:
	go test -race ./...

chaos:
	go test -race -count=$(CHAOS_COUNT) -run '$(CHAOS_RUN)' $(CHAOS_PKGS)

# Both fuzz targets; `go test -fuzz` accepts one target per run.
fuzz:
	go test -fuzz=FuzzTableOps -fuzztime $(FUZZTIME) -run '^$$' ./internal/lock
	go test -fuzz=FuzzJournalReplay -fuzztime $(FUZZTIME) -run '^$$' ./internal/store

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck / govulncheck are optional locally (CI installs them); the
# target degrades to vet-only with a note instead of failing.
lint: fmt
	go vet ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck ./...; else echo "staticcheck not installed; skipping"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipping"; fi

bench-sweep:
	go test -bench . -benchtime 1x -run '^$$' . | tee bench_sweep.txt

bench-hot:
	go test -bench '$(HOT_BENCH)' -benchtime 2s -run '^$$' . | tee bench_hot.txt

# Compare a local hot-path run against the committed baseline.
bench-compare: bench-hot
	go run ./cmd/benchjson -baseline BENCH_baseline.json -require '$(HOT_BENCH)' bench_hot.txt

# Re-seed BENCH_baseline.json (run when a PR intentionally shifts perf).
bench-baseline: bench-sweep bench-hot
	go run ./cmd/benchjson -o BENCH_baseline.json bench_sweep.txt bench_hot.txt
