// Benchmarks regenerating the paper's evaluation figures (§3.2) plus
// micro-benchmarks of the substrates and the ablation studies called out in
// DESIGN.md. Each figure benchmark runs the corresponding DTXTester workload
// once per iteration and reports the quantities the paper plots as custom
// metrics: resp_ms (mean transaction response time), deadlocks (transactions
// aborted as deadlock victims) and tx_s (throughput).
//
// The full sweep behind each figure — every x-axis value, rendered as the
// paper's series — is produced by cmd/dtxbench; the benchmarks here cover
// the characteristic points of each figure so `go test -bench .` exercises
// every experiment.
package dtx

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/dataguide"
	"repro/internal/harness"
	"repro/internal/lock"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/vindex"
	"repro/internal/xmark"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

// benchParams are the scaled-down workload dimensions used by the figure
// benchmarks: small enough for `go test -bench .` to sweep everything,
// contended enough to exercise waits and deadlock handling.
func benchParams(proto string) harness.Params {
	return harness.Params{
		Sites:       4,
		Clients:     6,
		TxPerClient: 3,
		OpsPerTx:    4,
		UpdateTxPct: 20,
		UpdateOpPct: 20,
		BaseBytes:   48 << 10,
		Partial:     true,
		Protocol:    proto,
		Latency:     100 * time.Microsecond,
		OpDelay:     500 * time.Microsecond,
	}
}

func runWorkload(b *testing.B, p harness.Params) {
	b.Helper()
	var resp, dl, tps float64
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)*7919 + 1
		res, err := harness.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		resp += res.MeanRespMs
		dl += float64(res.Deadlocks)
		tps += res.ThroughputTPS
	}
	n := float64(b.N)
	b.ReportMetric(resp/n, "resp_ms")
	b.ReportMetric(dl/n, "deadlocks")
	b.ReportMetric(tps/n, "tx/s")
}

// runProfiledWorkload is runWorkload with the registry-backed latency
// breakdown enabled: ablations answer *why* a variant wins, so the
// per-phase quantiles are the point. Arming the registries costs the gated
// histogram observations, which is why only the ablation benchmarks (never
// the gated HOT_BENCH set) run profiled.
func runProfiledWorkload(b *testing.B, p harness.Params) {
	b.Helper()
	p.LatencyProfile = true
	var resp, dl, tps float64
	var last *harness.Result
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i)*7919 + 1
		res, err := harness.Run(p)
		if err != nil {
			b.Fatal(err)
		}
		resp += res.MeanRespMs
		dl += float64(res.Deadlocks)
		tps += res.ThroughputTPS
		last = res
	}
	n := float64(b.N)
	b.ReportMetric(resp/n, "resp_ms")
	b.ReportMetric(dl/n, "deadlocks")
	b.ReportMetric(tps/n, "tx/s")
	if bd := last.Breakdown; bd != nil {
		b.ReportMetric(bd.LockWait.P99Ms, "lockwait_p99_ms")
		b.ReportMetric(bd.CommitFanout.P99Ms, "fanout_p99_ms")
		b.Logf("%s", last)
	}
}

// BenchmarkFig09Clients — Fig. 9: response time vs number of clients for
// read-only transactions, under total and partial replication, XDGL vs
// Node2PL.
func BenchmarkFig09Clients(b *testing.B) {
	for _, partial := range []bool{false, true} {
		mode := "total"
		if partial {
			mode = "partial"
		}
		for _, proto := range []string{"xdgl", "node2pl"} {
			for _, clients := range []int{4, 10} {
				name := fmt.Sprintf("%s/%s/clients=%d", mode, proto, clients)
				b.Run(name, func(b *testing.B) {
					p := benchParams(proto)
					p.Partial = partial
					p.Clients = clients
					p.UpdateTxPct = 0 // Fig. 9 uses reading transactions
					runWorkload(b, p)
				})
			}
		}
	}
}

// BenchmarkFig10UpdatePct — Fig. 10: response time and deadlocks vs the
// percentage of update transactions.
func BenchmarkFig10UpdatePct(b *testing.B) {
	for _, proto := range []string{"xdgl", "node2pl"} {
		for _, upd := range []int{20, 60} {
			b.Run(fmt.Sprintf("%s/upd=%d", proto, upd), func(b *testing.B) {
				p := benchParams(proto)
				p.Clients = 10
				p.UpdateTxPct = upd
				runWorkload(b, p)
			})
		}
	}
}

// BenchmarkFig11aBaseSize — Fig. 11a: response time and deadlocks vs the
// size of the base.
func BenchmarkFig11aBaseSize(b *testing.B) {
	for _, proto := range []string{"xdgl", "node2pl"} {
		for _, mult := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/base=%dx", proto, mult), func(b *testing.B) {
				p := benchParams(proto)
				p.BaseBytes *= mult
				runWorkload(b, p)
			})
		}
	}
}

// BenchmarkFig11bSites — Fig. 11b: response time and deadlocks vs the
// number of sites.
func BenchmarkFig11bSites(b *testing.B) {
	for _, proto := range []string{"xdgl", "node2pl"} {
		for _, sites := range []int{2, 8} {
			b.Run(fmt.Sprintf("%s/sites=%d", proto, sites), func(b *testing.B) {
				p := benchParams(proto)
				p.Sites = sites
				runWorkload(b, p)
			})
		}
	}
}

// BenchmarkFig12Throughput — Fig. 12: committed transactions over time
// (throughput / concurrency degree) for the two protocols on the fixed
// 4-site partial deployment.
func BenchmarkFig12Throughput(b *testing.B) {
	for _, proto := range []string{"xdgl", "node2pl"} {
		b.Run(proto, func(b *testing.B) {
			p := benchParams(proto)
			p.Clients = 10
			p.TxPerClient = 5
			runWorkload(b, p)
		})
	}
}

// BenchmarkFigDocsScaling — per-document scheduling domains: the same
// client count and per-operation work spread over 1 vs 4 documents at a
// fixed two-site deployment, under an update-only workload contended
// enough that one document's lock classes deadlock constantly. With one
// document every transaction funnels through one scheduling domain and
// most become deadlock victims; with four, the domains are independent and
// committed throughput scales.
//
// The valpred variants replace half of each transaction's operations with id
// point lookups (Zipf-skewed values) and contrast the scan path against
// value-indexed sites — the mixed read/write shape where index maintenance
// rides the update path and lookups skip the extent scan.
func BenchmarkFigDocsScaling(b *testing.B) {
	base := func(docs int) harness.Params {
		p := benchParams("xdgl")
		p.Sites = 2
		p.Clients = 8
		p.TxPerClient = 4
		p.OpsPerTx = 5
		p.Docs = docs
		p.Partial = false
		p.UpdateTxPct = 100
		p.UpdateOpPct = 100
		p.BaseBytes = 16 << 10
		p.Latency = 0
		p.OpDelay = 300 * time.Microsecond
		return p
	}
	for _, docs := range []int{1, 4} {
		b.Run(fmt.Sprintf("docs=%d", docs), func(b *testing.B) {
			runWorkload(b, base(docs))
		})
	}
	for _, indexed := range []bool{false, true} {
		mode := "scan"
		if indexed {
			mode = "indexed"
		}
		b.Run("docs=4/valpred-"+mode, func(b *testing.B) {
			p := base(4)
			p.UpdateOpPct = 50
			p.ValuePredPct = 100
			p.ValueZipf = 1.5
			if indexed {
				p.IndexedKeys = []string{"id"}
			}
			runWorkload(b, p)
		})
	}
}

// BenchmarkSnapshotReadScaling — MVCC snapshot reads: read-only
// transactions against one document while a writer continuously commits
// updates to it. Because snapshot readers acquire no locks and add no
// wait-for edges, read throughput must scale with the reader count
// instead of serialising behind the writer's exclusive locks; any reader
// abort fails the benchmark — except ErrSnapshotUnavailable, the
// retry-safe "begin timestamp lost the race against version GC" outcome,
// which is resubmitted the way SubmitWithRetry would. Reported as reads/s
// alongside the per-read latency.
func BenchmarkSnapshotReadScaling(b *testing.B) {
	for _, readers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("readers=%d", readers), func(b *testing.B) {
			cluster, err := New(Config{Sites: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			doc := benchDoc(b, 16<<10)
			if err := cluster.LoadXML("x", doc.String()); err != nil {
				b.Fatal(err)
			}

			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					cluster.Submit(0, Change("x",
						"/site/open_auctions/open_auction[1]/current",
						fmt.Sprintf("%d.00", i)))
				}
			}()

			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, readers)
			for r := 0; r < readers; r++ {
				n := b.N / readers
				if r < b.N%readers {
					n++
				}
				wg.Add(1)
				go func(site, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						res, err := cluster.SubmitReadOnly(site%2,
							Query("x", "/site/people/person[1]/name"))
						if errors.Is(err, ErrSnapshotUnavailable) {
							i--
							continue
						}
						if err != nil {
							errs <- err
							return
						}
						if !res.Committed {
							errs <- fmt.Errorf("snapshot read did not commit: %s", res.Reason)
							return
						}
					}
				}(r, n)
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			<-writerDone
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// BenchmarkQuorumCommit — the quorum write path: a 3-replica document under
// Replication "quorum" with WriteQuorum 2 commits once the primary and one
// follower have durably acked the shipped record, instead of executing the
// write at every replica inside the transaction (BenchmarkDistributedTxn is
// the eager-mode counterpart). Gated in CI as a hot-path benchmark.
func BenchmarkQuorumCommit(b *testing.B) {
	cluster, err := New(Config{
		Sites:       3,
		Replication: ReplicationQuorum,
		WriteQuorum: 2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	doc := benchDoc(b, 64<<10)
	if err := cluster.LoadXML("x", doc.String()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Submit(0,
			Change("x", "/site/open_auctions/open_auction[1]/current", "42.00"),
		)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Committed {
			b.Fatal("txn did not commit")
		}
	}
}

// BenchmarkFollowerReadScaling — bounded-staleness follower reads: a fixed
// pool of snapshot readers fans out over the primary plus a varying number
// of followers while a writer continuously commits through the primary.
// Under quorum replication followers serve reads from their own MVCC chains
// (within MaxStaleness), so adding followers spreads the read load across
// replicas instead of funnelling everything through the primary's document
// mutex. Reported as reads/s; gated in CI as a hot-path benchmark.
func BenchmarkFollowerReadScaling(b *testing.B) {
	const readerPool = 8
	for _, followers := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("followers=%d", followers), func(b *testing.B) {
			sites := followers + 1
			cluster, err := New(Config{
				Sites:        sites,
				Replication:  ReplicationQuorum,
				WriteQuorum:  1,
				MaxStaleness: time.Second,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			doc := benchDoc(b, 16<<10)
			if err := cluster.LoadXML("x", doc.String()); err != nil {
				b.Fatal(err)
			}

			// A steady (throttled) update stream: the point is read scaling
			// under concurrent writes, not a saturating writer whose version
			// churn outruns the readers' snapshots.
			stop := make(chan struct{})
			writerDone := make(chan struct{})
			go func() {
				defer close(writerDone)
				tick := time.NewTicker(200 * time.Microsecond)
				defer tick.Stop()
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					case <-tick.C:
					}
					cluster.Submit(0, Change("x",
						"/site/open_auctions/open_auction[1]/current",
						fmt.Sprintf("%d.00", i)))
				}
			}()

			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, readerPool)
			for r := 0; r < readerPool; r++ {
				n := b.N / readerPool
				if r < b.N%readerPool {
					n++
				}
				wg.Add(1)
				go func(site, n int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						res, err := cluster.SubmitReadOnly(site%sites,
							Query("x", "/site/people/person[1]/name"))
						if errors.Is(err, ErrSnapshotUnavailable) {
							// The begin timestamp lost the race against
							// version GC; a fresh snapshot is safe to take.
							i--
							continue
						}
						if err != nil {
							errs <- err
							return
						}
						if !res.Committed {
							errs <- fmt.Errorf("follower read did not commit: %s", res.Reason)
							return
						}
					}
				}(r, n)
			}
			wg.Wait()
			b.StopTimer()
			close(stop)
			<-writerDone
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reads/s")
		})
	}
}

// --- Ablations (DESIGN.md §5) ---

// BenchmarkAblationProtocol compares all three protocols, adding the
// whole-document lock the paper discusses as the traditional baseline.
// Runs profiled: `go test -bench BenchmarkAblationProtocol -v` prints each
// protocol's per-phase latency breakdown (and reports lockwait_p99_ms /
// fanout_p99_ms), so the comparison shows where the response time goes,
// not just which variant has more of it.
func BenchmarkAblationProtocol(b *testing.B) {
	for _, proto := range []string{"xdgl", "xdgl-noguard", "node2pl", "doclock"} {
		b.Run(proto, func(b *testing.B) {
			p := benchParams(proto)
			p.UpdateTxPct = 40
			runProfiledWorkload(b, p)
		})
	}
}

// BenchmarkAdaptiveProtocol runs the hot-key skewed mixed OLTP/analytics
// scenario — the workload with no good static protocol choice — under the
// two static extremes and the adaptive scheduler. Adaptive starts on the
// middle rung (node2pl) and is expected to land between the loser and the
// winner, paying the switch drains along the way. Part of the gated
// HOT_BENCH set, so it runs unprofiled.
func BenchmarkAdaptiveProtocol(b *testing.B) {
	for _, proto := range []string{"node2pl", "doclock", "adaptive"} {
		b.Run(proto, func(b *testing.B) {
			p := benchParams(proto)
			p.Partial = false
			p.Sites = 2
			p.Clients = 10
			p.TxPerClient = 20
			p.UpdateTxPct = 80
			p.UpdateOpPct = 60
			p.HotKeyZipf = 2.5
			p.AnalyticsPct = 30
			p.DeadlockInterval = 5 * time.Millisecond
			p.AdaptiveWindow = 10 * time.Millisecond
			runWorkload(b, p)
		})
	}
}

// BenchmarkAblationDeadlockPeriod varies the period of the distributed
// deadlock detector: short periods find cycles quickly but cost messages.
func BenchmarkAblationDeadlockPeriod(b *testing.B) {
	for _, period := range []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, 50 * time.Millisecond} {
		b.Run(period.String(), func(b *testing.B) {
			p := benchParams("xdgl")
			p.UpdateTxPct = 40
			p.DeadlockInterval = period
			runWorkload(b, p)
		})
	}
}

// BenchmarkAblationVictim compares the paper's newest-in-cycle victim rule
// against oldest-in-cycle.
func BenchmarkAblationVictim(b *testing.B) {
	for _, oldest := range []bool{false, true} {
		name := "newest"
		if oldest {
			name = "oldest"
		}
		b.Run(name, func(b *testing.B) {
			p := benchParams("xdgl")
			p.UpdateTxPct = 40
			p.VictimOldest = oldest
			runWorkload(b, p)
		})
	}
}

// BenchmarkAblationLatency varies the synthetic network latency,
// quantifying the communication/synchronisation overhead argument of Fig. 9
// (and the WAN direction of the paper's future work).
func BenchmarkAblationLatency(b *testing.B) {
	for _, lat := range []time.Duration{0, 200 * time.Microsecond, 2 * time.Millisecond} {
		b.Run(lat.String(), func(b *testing.B) {
			p := benchParams("xdgl")
			p.Latency = lat
			runWorkload(b, p)
		})
	}
}

// --- Substrate micro-benchmarks ---

func benchDoc(b *testing.B, bytes int) *xmltree.Document {
	b.Helper()
	return xmark.Gen(xmark.Config{TargetBytes: bytes, Seed: 1})
}

func BenchmarkDataGuideBuild(b *testing.B) {
	doc := benchDoc(b, 256<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dataguide.Build(doc)
	}
}

func BenchmarkXPathEvalChildAxis(b *testing.B) {
	doc := benchDoc(b, 256<<10)
	q := xpath.MustParse("/site/people/person/name")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xpath.Eval(q, doc)
	}
}

func BenchmarkXPathEvalDescendantPredicate(b *testing.B) {
	doc := benchDoc(b, 256<<10)
	q := xpath.MustParse("//person[id='7']/emailaddress")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		xpath.Eval(q, doc)
	}
}

// predicateDoc builds an XMark-people-shaped document with exactly n
// persons, its DataGuide, and an attached value index on the "id" key —
// exact extent sizes, unlike dialing xmark.Gen's byte target.
func predicateDoc(b *testing.B, n int) (*xmltree.Document, *dataguide.DataGuide) {
	b.Helper()
	doc := xmltree.NewDocument("pred", "site")
	people := doc.NewElement("people")
	if err := doc.AttachAt(doc.Root, people, xmltree.Into); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		person := doc.NewElement("person")
		if err := doc.AttachAt(people, person, xmltree.Into); err != nil {
			b.Fatal(err)
		}
		for _, kv := range [][2]string{
			{"id", fmt.Sprintf("%d", i)},
			{"name", fmt.Sprintf("name%d", i)},
			{"emailaddress", fmt.Sprintf("mailto:p%d@example.com", i)},
		} {
			c := doc.NewElement(kv[0])
			c.Text = kv[1]
			if err := doc.AttachAt(person, c, xmltree.Into); err != nil {
				b.Fatal(err)
			}
		}
	}
	g := dataguide.Build(doc)
	g.AttachIndex(vindex.New([]string{"id"}, 0))
	g.ReindexAll(doc)
	return doc, g
}

// BenchmarkPredicateQuery — the value-index headline: equality and range
// predicate lookups against extents of 1k/10k/100k persons, indexed (postings
// hit through EvalIndexed) versus the linear extent scan (xpath.Eval). The
// indexed/scan result sets are verified identical before timing.
func BenchmarkPredicateQuery(b *testing.B) {
	for _, extent := range []int{1_000, 10_000, 100_000} {
		doc, g := predicateDoc(b, extent)
		queries := []struct {
			mode string
			q    *xpath.Query
		}{
			// Equality: one hit, landed near the extent's end so the scan
			// can't win by early placement.
			{"eq", xpath.MustParse(fmt.Sprintf("//person[id='%d']/emailaddress", extent-2))},
			// Range: the top ~100 ids, an ordered lookup over the sorted keys.
			{"range", xpath.MustParse(fmt.Sprintf("//person[id>='%d']/emailaddress", extent-100))},
		}
		for _, tc := range queries {
			indexed, ok := g.EvalIndexed(tc.q, doc)
			if !ok {
				b.Fatalf("extent=%d/%s: query not index-eligible", extent, tc.mode)
			}
			scanned := xpath.Eval(tc.q, doc)
			if len(indexed) != len(scanned) || len(scanned) == 0 {
				b.Fatalf("extent=%d/%s: indexed %d nodes, scan %d", extent, tc.mode, len(indexed), len(scanned))
			}
			for i := range indexed {
				if indexed[i] != scanned[i] {
					b.Fatalf("extent=%d/%s: result %d differs", extent, tc.mode, i)
				}
			}
			b.Run(fmt.Sprintf("extent=%d/%s/indexed", extent, tc.mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, ok := g.EvalIndexed(tc.q, doc); !ok {
						b.Fatal("index fallback")
					}
				}
			})
			b.Run(fmt.Sprintf("extent=%d/%s/scan", extent, tc.mode), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if len(xpath.Eval(tc.q, doc)) == 0 {
						b.Fatal("no matches")
					}
				}
			})
		}
	}
}

// BenchmarkLockFootprint contrasts the per-operation lock work of the two
// protocols on the same scan — the mechanism behind the paper's overhead
// results: XDGL's lock count is bounded by the DataGuide, Node2PL's grows
// with the result set.
func BenchmarkLockFootprint(b *testing.B) {
	doc := benchDoc(b, 256<<10)
	g := dataguide.Build(doc)
	q := xpath.MustParse("/site/people/person/name")
	for _, tc := range []struct {
		name  string
		proto lock.Protocol
	}{{"xdgl", lock.XDGL{}}, {"node2pl", lock.Node2PL{}}} {
		b.Run(tc.name, func(b *testing.B) {
			tbl := lock.NewTable(g)
			owner := lock.Owner{Txn: txn.ID{Site: 1, Seq: 1}, TS: 1}
			for i := 0; i < b.N; i++ {
				reqs, err := tc.proto.QueryRequests(doc, g, q)
				if err != nil {
					b.Fatal(err)
				}
				if c := tbl.Acquire(owner, reqs); c != nil {
					b.Fatal("unexpected conflict")
				}
				tbl.ReleaseAll(owner.Txn)
			}
		})
	}
}

// BenchmarkQueryCache covers the two structural caches on the query hot
// path: the per-site raw-text parse cache and the DataGuide's memoized
// Targets/PredicateNodes (hits validated against the guide's structural
// version). The miss cases are the former per-operation costs.
func BenchmarkQueryCache(b *testing.B) {
	doc := benchDoc(b, 256<<10)
	g := dataguide.Build(doc)
	const raw = "//person[id='7']/emailaddress"
	b.Run("parse-miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xpath.Parse(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parse-hit", func(b *testing.B) {
		cache := xpath.NewCache(0)
		if _, err := cache.Get(raw); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cache.Get(raw); err != nil {
				b.Fatal(err)
			}
		}
	})
	q := xpath.MustParse(raw)
	b.Run("targets-miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// A repeated query hits the memo, so force the miss by bumping
			// the structural version: add a summary node and prune it again
			// (Compact), keeping the guide stationary across iterations.
			g.EnsureChild(g.Root, "benchmiss")
			g.Compact()
			if g.Targets(q) == nil {
				b.Fatal("no targets")
			}
		}
	})
	b.Run("targets-hit", func(b *testing.B) {
		g.Targets(q) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if g.Targets(q) == nil {
				b.Fatal("no targets")
			}
		}
	})
}

// BenchmarkPersistSnapshot covers the two stages of the commit persist
// pipeline: the arena snapshot taken under the document mutex and the
// marshal+store write done outside it.
func BenchmarkPersistSnapshot(b *testing.B) {
	doc := benchDoc(b, 64<<10)
	b.Run("snapshot", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if doc.Snapshot() == nil {
				b.Fatal("nil snapshot")
			}
		}
	})
	b.Run("serialize-save", func(b *testing.B) {
		st := store.NewMemStore()
		snap := doc.Snapshot()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := st.Save(snap); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkUpdateApplyUndo(b *testing.B) {
	doc := benchDoc(b, 64<<10)
	g := dataguide.Build(doc)
	u := &xupdate.Update{Kind: xupdate.Insert, Target: "/site/people", Pos: xmltree.Into,
		New: &xupdate.NodeSpec{Name: "person", Children: []*xupdate.NodeSpec{
			{Name: "id", Text: "bench"}, {Name: "name", Text: "Bench"},
		}}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec, _, err := xupdate.Apply(u, doc, g)
		if err != nil {
			b.Fatal(err)
		}
		if err := rec.Undo(doc, g); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFragmentDocument(b *testing.B) {
	doc := benchDoc(b, 256<<10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := replica.FragmentDocument(doc, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSingleSiteTxn(b *testing.B) {
	cluster, err := New(Config{Sites: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	doc := benchDoc(b, 64<<10)
	if err := cluster.LoadXML("x", doc.String()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Submit(0,
			Query("x", "/site/people/person[1]/name"),
			Change("x", "/site/open_auctions/open_auction[1]/current", "42.00"),
		)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Committed {
			b.Fatal("txn did not commit")
		}
	}
}

// BenchmarkObsOverhead measures the observability layer's cost on the
// distributed-commit hot path: the same transaction as BenchmarkDistributedTxn
// with the metrics registry unarmed (the default — every histogram observation
// and span gated off behind one atomic load) and armed (all latency
// histograms live, the state a scraped site runs in). Gated in CI as a
// hot-path benchmark: the off variant is the zero-overhead contract.
func BenchmarkObsOverhead(b *testing.B) {
	for _, armed := range []bool{false, true} {
		mode := "off"
		if armed {
			mode = "armed"
		}
		b.Run(mode, func(b *testing.B) {
			cluster, err := New(Config{Sites: 2})
			if err != nil {
				b.Fatal(err)
			}
			defer cluster.Close()
			doc := benchDoc(b, 64<<10)
			if err := cluster.LoadXML("x", doc.String()); err != nil {
				b.Fatal(err)
			}
			if armed {
				for site := 0; site < 2; site++ {
					reg, err := cluster.Metrics(site)
					if err != nil {
						b.Fatal(err)
					}
					reg.Arm()
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res, err := cluster.Submit(0,
					Change("x", "/site/open_auctions/open_auction[1]/current", "42.00"),
				)
				if err != nil {
					b.Fatal(err)
				}
				if !res.Committed {
					b.Fatal("txn did not commit")
				}
			}
		})
	}
}

func BenchmarkDistributedTxn(b *testing.B) {
	cluster, err := New(Config{Sites: 2})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	doc := benchDoc(b, 64<<10)
	if err := cluster.LoadXML("x", doc.String()); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cluster.Submit(0,
			Change("x", "/site/open_auctions/open_auction[1]/current", "42.00"),
		)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Committed {
			b.Fatal("txn did not commit")
		}
	}
}
