// Command benchjson converts `go test -bench` output into a stable JSON
// document for the benchmark trajectory recorded by CI. Each PR's bench job
// pipes its run through this tool and uploads the result (BENCH_pr.json) as
// a workflow artifact; BENCH_baseline.json in the repository root holds the
// committed comparison point.
//
// Usage:
//
//	go test -bench . -benchtime 1x -run '^$' . | go run ./cmd/benchjson -o BENCH_pr.json
//	go run ./cmd/benchjson -baseline BENCH_baseline.json -o BENCH_pr.json bench1.txt bench2.txt
//
// With -baseline, every benchmark present in both runs is annotated with
// the ns/op ratio against the baseline, and a geometric-mean delta across
// all compared benchmarks is printed as the one-line summary; -max-regress
// fails the run (exit 1) when a benchmark regresses beyond the given
// fraction — the soft gate the CI pipeline reports on. -require names (as a
// regexp) the hot-path benchmarks that MUST have a baseline entry: a match
// missing from the baseline fails the run instead of slipping past the gate
// ungated. -md appends a markdown comparison table (old/new/delta per
// benchmark) to the given file; the bench job points it at
// $GITHUB_STEP_SUMMARY so every PR run renders the trajectory in the
// workflow summary. -history appends the run as ONE compact JSON line to the
// given file (JSONL): main-branch CI points it at BENCH_history.jsonl so the
// repository accumulates a per-commit performance trajectory that
// plain-text bench logs and the single moving baseline both lose.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name      string             `json:"name"`
	N         int64              `json:"n"`
	NsPerOp   float64            `json:"ns_per_op"`
	OpsPerSec float64            `json:"ops_per_sec"`
	Metrics   map[string]float64 `json:"metrics,omitempty"`
	// VsBaseline is ns/op divided by the baseline's ns/op for the same
	// benchmark: below 1 is faster than baseline. Set only with -baseline.
	VsBaseline float64 `json:"vs_baseline,omitempty"`
}

// Report is the JSON document.
type Report struct {
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	Pkg    string `json:"pkg,omitempty"`
	CPU    string `json:"cpu,omitempty"`
	Unix   int64  `json:"generated_unix"`
	// Commit is taken from $GITHUB_SHA when set, so -history lines written
	// by CI are attributable to the commit that produced them.
	Commit     string      `json:"commit,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parse(r io.Reader, rep *Report) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		for _, hdr := range []struct {
			prefix string
			dst    *string
		}{{"goos: ", &rep.Goos}, {"goarch: ", &rep.Goarch}, {"pkg: ", &rep.Pkg}, {"cpu: ", &rep.CPU}} {
			if v, ok := strings.CutPrefix(line, hdr.prefix); ok && *hdr.dst == "" {
				*hdr.dst = v
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: m[1], N: n}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				b.NsPerOp = v
				if v > 0 {
					b.OpsPerSec = 1e9 / v
				}
				continue
			}
			if b.Metrics == nil {
				b.Metrics = make(map[string]float64)
			}
			b.Metrics[unit] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return sc.Err()
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	baseline := flag.String("baseline", "", "baseline JSON to compare against")
	maxRegress := flag.Float64("max-regress", 0,
		"fail when a multi-iteration benchmark's ns/op exceeds baseline by this fraction (0 disables; n=1 results are never gated)")
	md := flag.String("md", "",
		"append a markdown comparison table to this file (e.g. $GITHUB_STEP_SUMMARY); requires -baseline")
	require := flag.String("require", "",
		"regexp of hot-path benchmarks that MUST have a baseline entry; a match missing from the baseline fails the run (requires -baseline)")
	history := flag.String("history", "",
		"append the run as one compact JSON line to this JSONL file (e.g. BENCH_history.jsonl)")
	flag.Parse()

	rep := &Report{Unix: time.Now().Unix(), Commit: os.Getenv("GITHUB_SHA")}
	if flag.NArg() == 0 {
		if err := parse(os.Stdin, rep); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = parse(f, rep)
		f.Close()
		if err != nil {
			fatal(err)
		}
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}
	rep.Benchmarks = dedupe(rep.Benchmarks)

	regressed := false
	if *baseline != "" {
		data, err := os.ReadFile(*baseline)
		if err != nil {
			fatal(err)
		}
		var base Report
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *baseline, err))
		}
		ref := make(map[string]float64, len(base.Benchmarks))
		for _, b := range base.Benchmarks {
			if b.NsPerOp > 0 {
				ref[b.Name] = b.NsPerOp
			}
		}
		var required *regexp.Regexp
		if *require != "" {
			if required, err = regexp.Compile(*require); err != nil {
				fatal(fmt.Errorf("-require: %w", err))
			}
		}
		var missing []string
		for i := range rep.Benchmarks {
			b := &rep.Benchmarks[i]
			refNs, ok := ref[b.Name]
			if !ok || b.NsPerOp <= 0 {
				if required != nil && required.MatchString(b.Name) && b.NsPerOp > 0 {
					// A hot-path benchmark with no committed comparison point:
					// the regression gate would silently wave it through, so
					// the run fails until the baseline is refreshed.
					missing = append(missing, b.Name)
				}
				continue
			}
			b.VsBaseline = b.NsPerOp / refNs
			status := "ok"
			switch {
			case b.N == 1:
				// A single-iteration timing (the -benchtime 1x sweep) is
				// noise-dominated: annotate the delta but never gate on it.
				status = "n=1, not gated"
			case *maxRegress > 0 && b.VsBaseline > 1+*maxRegress:
				status = "REGRESSED"
				regressed = true
			}
			fmt.Fprintf(os.Stderr, "%-60s %8.0f ns/op  vs baseline %.2fx  %s\n",
				b.Name, b.NsPerOp, b.VsBaseline, status)
		}
		if g, n := geomeanVsBaseline(rep.Benchmarks); n > 0 {
			fmt.Fprintf(os.Stderr, "geomean vs baseline: %.3fx (%+.1f%%) across %d benchmark(s)\n",
				g, (g-1)*100, n)
		}
		if *md != "" {
			if err := appendMarkdown(*md, rep, ref, *maxRegress); err != nil {
				fatal(err)
			}
		}
		if len(missing) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: %d hot-path benchmark(s) missing from %s: %s\n",
				len(missing), *baseline, strings.Join(missing, ", "))
			fmt.Fprintln(os.Stderr, "benchjson: refresh the committed baseline to cover them")
			os.Exit(1)
		}
	} else if *md != "" {
		fatal(fmt.Errorf("-md requires -baseline"))
	} else if *require != "" {
		fatal(fmt.Errorf("-require requires -baseline"))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
	if *history != "" {
		if err := appendHistory(*history, rep); err != nil {
			fatal(err)
		}
	}
	if regressed {
		fmt.Fprintln(os.Stderr, "benchjson: regression beyond -max-regress threshold")
		os.Exit(1)
	}
}

// markdownSummary renders the baseline comparison as a GitHub-flavoured
// markdown table: one row per benchmark with the baseline and current
// ns/op, the delta, and the gate status. Benchmarks absent from the
// baseline appear as "new".
func markdownSummary(rep *Report, ref map[string]float64, maxRegress float64) string {
	var b strings.Builder
	b.WriteString("### Benchmarks vs baseline\n\n")
	b.WriteString("| Benchmark | baseline ns/op | current ns/op | delta | status |\n")
	b.WriteString("|---|---:|---:|---:|---|\n")
	for _, bm := range rep.Benchmarks {
		if bm.NsPerOp <= 0 {
			continue
		}
		refNs, ok := ref[bm.Name]
		if !ok {
			fmt.Fprintf(&b, "| %s | — | %.0f | — | new |\n", bm.Name, bm.NsPerOp)
			continue
		}
		ratio := bm.NsPerOp / refNs
		status := "ok"
		switch {
		case bm.N == 1:
			status = "n=1, not gated"
		case maxRegress > 0 && ratio > 1+maxRegress:
			status = "**REGRESSED**"
		case ratio <= 0.90:
			status = "improved"
		}
		fmt.Fprintf(&b, "| %s | %.0f | %.0f | %+.1f%% | %s |\n",
			bm.Name, refNs, bm.NsPerOp, (ratio-1)*100, status)
	}
	if g, n := geomeanVsBaseline(rep.Benchmarks); n > 0 {
		fmt.Fprintf(&b, "\n**Geomean delta: %+.1f%%** across %d benchmark(s) with a baseline entry.\n",
			(g-1)*100, n)
	}
	b.WriteString("\n")
	return b.String()
}

// appendMarkdown appends the summary table to path (creating it if needed)
// — append, not truncate, because $GITHUB_STEP_SUMMARY accumulates across
// steps.
func appendMarkdown(path string, rep *Report, ref map[string]float64, maxRegress float64) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.WriteString(markdownSummary(rep, ref, maxRegress))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// appendHistory writes the report as one compact JSON line (JSONL) so a
// file of successive runs stays trivially greppable and diff-friendly.
func appendHistory(path string, rep *Report) error {
	line, err := json.Marshal(rep)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	_, werr := f.Write(append(line, '\n'))
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// geomeanVsBaseline aggregates the per-benchmark ns/op ratios into one
// geometric-mean delta — the single number that summarises whether the run
// as a whole got faster or slower. Only benchmarks with a baseline entry
// (VsBaseline set) contribute; returns the mean and the contributor count.
func geomeanVsBaseline(benchmarks []Benchmark) (float64, int) {
	sum, n := 0.0, 0
	for _, b := range benchmarks {
		if b.VsBaseline > 0 {
			sum += math.Log(b.VsBaseline)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(sum / float64(n)), n
}

// dedupe collapses repeated runs of one benchmark (a quick sweep plus a
// longer hot-path pass, or -count repetitions) to the highest-iteration
// measurement, which is the most reliable one.
func dedupe(in []Benchmark) []Benchmark {
	best := make(map[string]int, len(in))
	var out []Benchmark
	for _, b := range in {
		if i, ok := best[b.Name]; ok {
			if b.N > out[i].N {
				out[i] = b
			}
			continue
		}
		best[b.Name] = len(out)
		out = append(out, b)
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
