package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.70GHz
BenchmarkFig12Throughput/xdgl         	      18	 116744898 ns/op	         0.6667 deadlocks	        16.37 resp_ms	       450.7 tx/s
BenchmarkDistributedTxn-4               	    2036	   1135148 ns/op
PASS
ok  	repro	8.009s
`

func TestParse(t *testing.T) {
	var rep Report
	if err := parse(strings.NewReader(sample), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Pkg != "repro" {
		t.Fatalf("header lost: %+v", rep)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2", len(rep.Benchmarks))
	}
	fig := rep.Benchmarks[0]
	if fig.Name != "BenchmarkFig12Throughput/xdgl" || fig.N != 18 {
		t.Fatalf("fig12 = %+v", fig)
	}
	if fig.NsPerOp != 116744898 || fig.Metrics["tx/s"] != 450.7 || fig.Metrics["deadlocks"] != 0.6667 {
		t.Fatalf("fig12 values = %+v", fig)
	}
	dist := rep.Benchmarks[1]
	if dist.Name != "BenchmarkDistributedTxn" {
		t.Fatalf("proc-count suffix not stripped: %q", dist.Name)
	}
	if dist.OpsPerSec < 880 || dist.OpsPerSec > 882 {
		t.Fatalf("ops/sec = %v", dist.OpsPerSec)
	}
}

func TestGeomeanVsBaseline(t *testing.T) {
	if g, n := geomeanVsBaseline(nil); g != 0 || n != 0 {
		t.Fatalf("empty input: %v, %d", g, n)
	}
	// 2x and 0.5x cancel to exactly 1.0; entries without a baseline ratio
	// (VsBaseline 0) do not contribute.
	g, n := geomeanVsBaseline([]Benchmark{
		{Name: "A", VsBaseline: 2.0},
		{Name: "B", VsBaseline: 0.5},
		{Name: "C"},
	})
	if n != 2 {
		t.Fatalf("contributors = %d, want 2", n)
	}
	if g < 0.999 || g > 1.001 {
		t.Fatalf("geomean = %v, want 1.0", g)
	}
}

func TestMarkdownSummary(t *testing.T) {
	rep := &Report{Benchmarks: []Benchmark{
		{Name: "BenchmarkA", N: 100, NsPerOp: 500},
		{Name: "BenchmarkB", N: 1, NsPerOp: 3000},
		{Name: "BenchmarkNew", N: 50, NsPerOp: 42},
		{Name: "BenchmarkSlow", N: 80, NsPerOp: 4000},
	}}
	ref := map[string]float64{"BenchmarkA": 1000, "BenchmarkB": 1000, "BenchmarkSlow": 1000}
	md := markdownSummary(rep, ref, 2.0)
	for _, want := range []string{
		"| BenchmarkA | 1000 | 500 | -50.0% | improved |",
		"| BenchmarkB | 1000 | 3000 | +200.0% | n=1, not gated |",
		"| BenchmarkNew | — | 42 | — | new |",
		"| BenchmarkSlow | 1000 | 4000 | +300.0% | **REGRESSED** |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("missing row %q in:\n%s", want, md)
		}
	}
}
