// Command dtxbench regenerates the result figures of the paper's evaluation
// (§3.2): Fig. 9 (clients sweep, total & partial replication), Fig. 10
// (update-percentage sweep), Fig. 11a (base-size sweep), Fig. 11b (site
// sweep) and Fig. 12 (throughput / concurrency degree), each comparing DTX
// under XDGL against DTX refitted with tree locks (Node2PL).
//
// Examples:
//
//	dtxbench -exp all                 # quick scale, every figure
//	dtxbench -exp fig10 -scale paper  # paper-sized client counts
//	dtxbench -exp fig12 -base 262144 -latency 1ms
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/harness"
)

func main() {
	exp := flag.String("exp", "all", "experiment: fig8 | fig9 | fig10 | fig11a | fig11b | fig12 | all")
	timeout := flag.Duration("timeout", 0, "overall wall-clock budget (0 = none); on expiry in-flight transactions abort and the bench stops")
	scaleName := flag.String("scale", "quick", "preset: quick | paper")
	base := flag.Int("base", 0, "override base document size in bytes")
	clientDiv := flag.Int("clientdiv", 0, "override client-count divisor")
	latency := flag.Duration("latency", -1, "override one-way network latency")
	opDelay := flag.Duration("opdelay", -1, "override client think time")
	seed := flag.Int64("seed", 0, "override workload seed")
	flag.Parse()

	var sc harness.Scale
	switch *scaleName {
	case "quick":
		sc = harness.DefaultScale()
	case "paper":
		sc = harness.PaperScale()
	default:
		fatal(fmt.Errorf("unknown scale %q", *scaleName))
	}
	if *base > 0 {
		sc.BaseBytes = *base
	}
	if *clientDiv > 0 {
		sc.ClientDiv = *clientDiv
	}
	if *latency >= 0 {
		sc.Latency = *latency
	}
	if *opDelay >= 0 {
		sc.OpDelay = *opDelay
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *exp == "fig8" || *exp == "all" {
		if ctx.Err() != nil {
			fatal(fmt.Errorf("timeout reached before fig8"))
		}
		table, err := harness.Fig8(sc.BaseBytes, sc.Seed, []int{2, 4, 8})
		if err != nil {
			fatal(err)
		}
		fmt.Println(table)
		if *exp == "fig8" {
			return
		}
	}

	runners := map[string]func(context.Context, harness.Scale) ([]harness.Figure, error){
		"fig9":   harness.Fig9,
		"fig10":  harness.Fig10,
		"fig11a": harness.Fig11a,
		"fig11b": harness.Fig11b,
		"fig12":  harness.Fig12,
	}

	var names []string
	if *exp == "all" {
		names = []string{"fig9", "fig10", "fig11a", "fig11b", "fig12"}
	} else if _, ok := runners[*exp]; ok {
		names = []string{*exp}
	} else {
		fatal(fmt.Errorf("unknown experiment %q", *exp))
	}

	fmt.Printf("dtxbench: scale=%s base=%dKB clientdiv=%d latency=%v seed=%d\n\n",
		*scaleName, sc.BaseBytes>>10, sc.ClientDiv, sc.Latency, sc.Seed)
	for _, name := range names {
		if ctx.Err() != nil {
			fatal(fmt.Errorf("timeout reached before %s", name))
		}
		start := time.Now()
		figs, err := runners[name](ctx, sc)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		for _, fig := range figs {
			fmt.Println(harness.Format(fig))
		}
		fmt.Printf("[%s completed in %v]\n\n", name, time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtxbench:", err)
	os.Exit(1)
}
