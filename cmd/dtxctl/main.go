// Command dtxctl submits transactions to a running dtxd site over TCP.
//
// One operation per argument group; all operations of one invocation form
// one transaction:
//
//	dtxctl -addr localhost:7070 \
//	    -op "query d1 //person[id='4']/name" \
//	    -op "insert d2 /products into <product><id>13</id><price>10.30</price></product>" \
//	    -op "change d2 //product[id='14']/price 9.90" \
//	    -op "remove d1 //person[id='9']" \
//	    -op "rename d1 //person[id='4']/name label" \
//	    -op "transpose d2 //product[1] //product[2]"
//
// Read-only transactions (-ro) are served lock-free from committed document
// versions (MVCC snapshot reads) and accept only query operations:
//
//	dtxctl -addr localhost:7070 -ro -op "query d1 //person/name"
//
// Operator commands (instead of -op):
//
//	dtxctl -addr localhost:7070 -status    # liveness, replication lag, in-doubt txns
//	dtxctl -addr localhost:7070 -metrics   # dump the site's metrics (Prometheus text)
//	dtxctl -addr localhost:7070 -recover   # drain + resolve in-doubt txns online
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ";") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	addr := flag.String("addr", "localhost:7070", "dtxd site address")
	timeout := flag.Duration("timeout", 0, "overall transaction timeout (0 = none); on expiry the transaction is aborted and its locks released")
	status := flag.Bool("status", false, "print the site's status (documents, replication lag, liveness view, in-doubt transactions) and exit")
	metrics := flag.Bool("metrics", false, "dump the site's metrics registry in Prometheus text format and exit")
	recoverPass := flag.Bool("recover", false, "run an online recovery pass on the site (drain + resolve journal in-doubt transactions) and exit")
	readOnly := flag.Bool("ro", false, "submit as a read-only snapshot transaction: queries only, served lock-free from committed document versions")
	var opSpecs stringList
	flag.Var(&opSpecs, "op", "operation (repeatable): query|insert|remove|rename|change|transpose ...")
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if !*status && !*metrics && !*recoverPass && len(opSpecs) == 0 {
		fatal(fmt.Errorf("no operations; use -op, -status, -metrics or -recover (see -h)"))
	}
	var ops []txn.Operation
	for _, spec := range opSpecs {
		op, err := parseOp(spec)
		if err != nil {
			fatal(err)
		}
		ops = append(ops, op)
	}
	if *readOnly {
		// Refuse client-side: the site would refuse the same way, but before
		// a round trip and with the offending spec named.
		for i, op := range ops {
			if op.Kind != txn.OpQuery {
				fatal(fmt.Errorf("-ro transaction: op %d (%s) is not a query", i, opSpecs[i]))
			}
		}
	}

	// A client endpoint is a TCP node with an ephemeral port and a site ID
	// outside the cluster's range.
	node, err := transport.ListenTCP(1<<20, "127.0.0.1:0",
		transport.HandlerFunc(func(from int, msg any) (any, error) {
			return transport.Ack{OK: true}, nil
		}))
	if err != nil {
		fatal(err)
	}
	defer node.Close()
	node.SetPeer(0, *addr)

	if *status {
		printStatus(ctx, node)
		return
	}
	if *metrics {
		printMetrics(ctx, node)
		return
	}
	if *recoverPass {
		runRecover(ctx, node)
		return
	}

	resp, err := node.Send(ctx, 0, transport.SubmitReq{Ops: ops, ReadOnly: *readOnly})
	if err != nil {
		fatal(err)
	}
	sub, ok := resp.(transport.SubmitResp)
	if !ok {
		fatal(fmt.Errorf("unexpected response %T", resp))
	}
	fmt.Printf("transaction %s: %s\n", sub.Txn, sub.State)
	if sub.Error != "" {
		fmt.Printf("reason: %s\n", sub.Error)
	}
	for i, rs := range sub.Results {
		if rs == nil {
			continue
		}
		fmt.Printf("op %d results (%d):\n", i, len(rs))
		for _, r := range rs {
			fmt.Printf("  %s\n", r)
		}
	}
	// The typed outcome crosses the wire as a code; deadlock victims exit
	// distinctly so scripts know a resubmission is safe.
	if outcome := txn.FromCode(sub.Code, ""); errors.Is(outcome, txn.ErrDeadlock) {
		fmt.Println("deadlock victim: safe to resubmit")
		os.Exit(3)
	}
	if sub.State != "committed" {
		os.Exit(2)
	}
}

// printStatus renders the site's SiteStatusResp.
func printStatus(ctx context.Context, node *transport.TCPNode) {
	resp, err := node.Send(ctx, 0, transport.SiteStatusReq{})
	if err != nil {
		fatal(err)
	}
	st, ok := resp.(transport.SiteStatusResp)
	if !ok {
		fatal(fmt.Errorf("unexpected response %T", resp))
	}
	state := "serving"
	if !st.Ready {
		state = "recovering"
	}
	fmt.Printf("site %d: %s\n", st.Site, state)
	fmt.Printf("txns: %d committed, %d aborted, %d failed\n", st.Committed, st.Aborted, st.Failed)
	if len(st.Docs) > 0 {
		fmt.Printf("documents (%d):\n", len(st.Docs))
		for _, d := range st.Docs {
			// Under adaptive concurrency control the active protocol is per
			// document and can change over a run, so it belongs next to the
			// replication role rather than in the site banner.
			proto := ""
			if d.Protocol != "" {
				proto = fmt.Sprintf(" [%s]", d.Protocol)
			}
			if d.Role == "primary" {
				fmt.Printf("  %s%s: primary, head %d\n", d.Name, proto, d.Head)
				continue
			}
			lag := "caught up"
			if d.Behind > 0 {
				lag = fmt.Sprintf("%d record(s) behind head %d", d.Behind, d.Head)
			}
			fmt.Printf("  %s%s: replica of site %d, applied %d, %s\n",
				d.Name, proto, d.Primary, d.Applied, lag)
		}
	} else {
		fmt.Printf("documents (%d): %s\n", len(st.Documents), strings.Join(st.Documents, ", "))
	}
	for _, p := range st.Peers {
		fmt.Printf("peer %d: %s\n", p.Site, p.Status)
	}
	if len(st.InDoubt) == 0 {
		fmt.Println("in-doubt: none")
		return
	}
	for _, d := range st.InDoubt {
		fmt.Printf("in-doubt: %s (%s)\n", d.Txn, strings.Join(d.Docs, ", "))
	}
	// In-doubt transactions on a running site usually just mean persists in
	// flight; `dtxctl -recover` drains and resolves whatever remains.
	os.Exit(4)
}

// printMetrics dumps the site's registry in Prometheus text format — the
// transport-level scrape for sites running without an HTTP listener.
func printMetrics(ctx context.Context, node *transport.TCPNode) {
	resp, err := node.Send(ctx, 0, transport.MetricsReq{})
	if err != nil {
		fatal(err)
	}
	m, ok := resp.(transport.MetricsResp)
	if !ok {
		fatal(fmt.Errorf("unexpected response %T", resp))
	}
	fmt.Print(m.Text)
}

// runRecover triggers an online recovery pass and prints its report.
func runRecover(ctx context.Context, node *transport.TCPNode) {
	resp, err := node.Send(ctx, 0, transport.RecoverReq{})
	if err != nil {
		fatal(err)
	}
	rec, ok := resp.(transport.RecoverResp)
	if !ok {
		fatal(fmt.Errorf("unexpected response %T", resp))
	}
	if rec.Error != "" {
		fatal(fmt.Errorf("recover: %s", rec.Error))
	}
	fmt.Printf("recovery pass: %d resolved\n%s\n", rec.Resolved, rec.Report)
}

// parseOp turns "kind doc args..." into an operation.
func parseOp(spec string) (txn.Operation, error) {
	fields := strings.Fields(spec)
	if len(fields) < 3 {
		return txn.Operation{}, fmt.Errorf("dtxctl: op %q too short", spec)
	}
	kind, doc := fields[0], fields[1]
	rest := fields[2:]
	switch kind {
	case "query":
		return txn.NewQuery(doc, rest[0]), nil
	case "insert":
		if len(rest) < 3 {
			return txn.Operation{}, fmt.Errorf("dtxctl: insert needs <target> <into|before|after> <xml>")
		}
		var pos xmltree.Pos
		switch rest[1] {
		case "into":
			pos = xmltree.Into
		case "before":
			pos = xmltree.Before
		case "after":
			pos = xmltree.After
		default:
			return txn.Operation{}, fmt.Errorf("dtxctl: bad position %q", rest[1])
		}
		spec, err := parseSpec(strings.Join(rest[2:], " "))
		if err != nil {
			return txn.Operation{}, err
		}
		return txn.NewUpdate(doc, &xupdate.Update{
			Kind: xupdate.Insert, Target: rest[0], Pos: pos, New: spec,
		}), nil
	case "remove":
		return txn.NewUpdate(doc, &xupdate.Update{Kind: xupdate.Remove, Target: rest[0]}), nil
	case "rename":
		if len(rest) < 2 {
			return txn.Operation{}, fmt.Errorf("dtxctl: rename needs <target> <newname>")
		}
		return txn.NewUpdate(doc, &xupdate.Update{Kind: xupdate.Rename, Target: rest[0], NewName: rest[1]}), nil
	case "change":
		if len(rest) < 2 {
			return txn.Operation{}, fmt.Errorf("dtxctl: change needs <target> <value>")
		}
		return txn.NewUpdate(doc, &xupdate.Update{
			Kind: xupdate.Change, Target: rest[0], Value: strings.Join(rest[1:], " "),
		}), nil
	case "transpose":
		if len(rest) < 2 {
			return txn.Operation{}, fmt.Errorf("dtxctl: transpose needs two paths")
		}
		return txn.NewUpdate(doc, &xupdate.Update{
			Kind: xupdate.Transpose, Target: rest[0], Target2: rest[1],
		}), nil
	default:
		return txn.Operation{}, fmt.Errorf("dtxctl: unknown op kind %q", kind)
	}
}

// parseSpec converts inline XML into an insertion NodeSpec.
func parseSpec(xml string) (*xupdate.NodeSpec, error) {
	doc, err := xmltree.ParseString("inline", xml)
	if err != nil {
		return nil, fmt.Errorf("dtxctl: inline xml: %w", err)
	}
	var conv func(n *xmltree.Node) *xupdate.NodeSpec
	conv = func(n *xmltree.Node) *xupdate.NodeSpec {
		spec := &xupdate.NodeSpec{Name: n.Name, Text: n.Text}
		spec.Attrs = append(spec.Attrs, n.Attrs...)
		for _, c := range n.Children {
			spec.Children = append(spec.Children, conv(c))
		}
		return spec
	}
	return conv(doc.Root), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtxctl:", err)
	os.Exit(1)
}
