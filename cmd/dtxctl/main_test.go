package main

import (
	"testing"

	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

func TestParseOpQuery(t *testing.T) {
	op, err := parseOp("query d1 //person[id='4']/name")
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != txn.OpQuery || op.Doc != "d1" || op.Query != "//person[id='4']/name" {
		t.Fatalf("op = %+v", op)
	}
}

func TestParseOpInsert(t *testing.T) {
	op, err := parseOp("insert d2 /products into <product><id>13</id><price>10.30</price></product>")
	if err != nil {
		t.Fatal(err)
	}
	if op.Kind != txn.OpUpdate || op.Update.Kind != xupdate.Insert {
		t.Fatalf("op = %+v", op)
	}
	if op.Update.Pos != xmltree.Into || op.Update.Target != "/products" {
		t.Fatalf("update = %+v", op.Update)
	}
	if op.Update.New.Name != "product" || len(op.Update.New.Children) != 2 {
		t.Fatalf("spec = %+v", op.Update.New)
	}
	if op.Update.New.Children[1].Text != "10.30" {
		t.Fatal("nested text lost")
	}
	for _, pos := range []string{"before", "after"} {
		if _, err := parseOp("insert d /x " + pos + " <y/>"); err != nil {
			t.Errorf("pos %s rejected: %v", pos, err)
		}
	}
}

func TestParseOpOthers(t *testing.T) {
	cases := []struct {
		spec string
		kind xupdate.Kind
	}{
		{"remove d1 //person[id='9']", xupdate.Remove},
		{"rename d1 //person/name label", xupdate.Rename},
		{"change d1 //person[id='4']/name Maria Clara", xupdate.Change},
		{"transpose d2 //product[1] //product[2]", xupdate.Transpose},
	}
	for _, c := range cases {
		op, err := parseOp(c.spec)
		if err != nil {
			t.Errorf("%q: %v", c.spec, err)
			continue
		}
		if op.Kind != txn.OpUpdate || op.Update.Kind != c.kind {
			t.Errorf("%q parsed as %+v", c.spec, op)
		}
	}
	// Multi-word change value joins with spaces.
	op, _ := parseOp("change d1 //x Maria Clara")
	if op.Update.Value != "Maria Clara" {
		t.Fatalf("value = %q", op.Update.Value)
	}
}

func TestParseOpErrors(t *testing.T) {
	bad := []string{
		"",
		"query d1",                    // too short
		"fly d1 /x",                   // unknown kind
		"insert d1 /x sideways <y/>",  // bad position
		"insert d1 /x into <unclosed", // bad xml
		"insert d1 /x",                // missing parts
		"rename d1 /x",                // missing new name
		"change d1 /x",                // missing value
		"transpose d1 /x",             // missing second path
	}
	for _, spec := range bad {
		if _, err := parseOp(spec); err == nil {
			t.Errorf("%q accepted", spec)
		}
	}
}

func TestParseSpecAttrs(t *testing.T) {
	spec, err := parseSpec(`<person vip="yes"><id>1</id></person>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Attrs) != 1 || spec.Attrs[0].Name != "vip" {
		t.Fatalf("attrs = %v", spec.Attrs)
	}
}
