// Command dtxd runs one DTX site as a standalone daemon speaking the
// scheduler-to-scheduler protocol over TCP — the multi-machine deployment
// of Fig. 2 (one DTX instance per site, between clients and the XML store).
//
// A three-site deployment:
//
//	dtxd -site 0 -listen :7070 -peer 1=hostB:7071 -peer 2=hostC:7072 \
//	     -store ./site0 -doc d1 -place d1=0,1
//
// Documents named with -doc are loaded from the store directory at startup;
// -place entries teach the catalog where every document (local and remote)
// lives. Clients submit transactions with dtxctl.
//
// Crash recovery: dtxd write-ahead logs local commits to <store>/commit.log
// (disable with -journal=false). After a crash, restart with -recover: the
// site comes up refusing traffic, replays the journal, resolves its
// in-doubt transactions with the presumed-abort termination protocol
// against its peers, re-fetches its documents from live replicas, and only
// then starts serving — peers readmit it on their next heartbeat
// (-heartbeat-ms). `dtxctl -status` and `dtxctl -recover` inspect and drive
// the same machinery on a running site.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/transport"
)

type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	siteID := flag.Int("site", 0, "this site's identifier")
	listen := flag.String("listen", ":7070", "address to listen on")
	storeDir := flag.String("store", "./dtxdata", "document store directory")
	protocol := flag.String("protocol", "xdgl", "locking protocol: xdgl | node2pl | doclock")
	adaptive := flag.Bool("adaptive", false, "adapt each document's locking protocol at run time from observed contention (-protocol sets the starting point)")
	adaptWindow := flag.Duration("adapt-window", 0, "adaptive policy sampling window (0 uses the built-in default)")
	deadlockMs := flag.Int("deadlock-ms", 50, "distributed deadlock check period (ms)")
	journalOn := flag.Bool("journal", true, "write-ahead log commits to <store>/commit.log")
	recoverFlag := flag.Bool("recover", false, "start in crash-recovery mode: resolve journal in-doubt transactions and catch documents up from live replicas before serving")
	heartbeatMs := flag.Int("heartbeat-ms", 500, "liveness heartbeat period (ms); 0 disables failure detection")
	metricsAddr := flag.String("metrics-addr", "", "address to serve /metrics, /healthz and /debug/pprof/ on (empty disables)")
	slowTxn := flag.Duration("slow-txn", -1, "trace transactions at or above this duration as JSON lines on stderr; 0 traces every transaction, negative disables")
	var peers, docs, places stringList
	flag.Var(&peers, "peer", "peer site as id=host:port (repeatable)")
	flag.Var(&docs, "doc", "document to load from the store at startup (repeatable)")
	flag.Var(&places, "place", "catalog entry doc=site1,site2 (repeatable)")
	flag.Parse()

	proto, err := lock.ByName(*protocol)
	if err != nil {
		fatal(err)
	}
	st, err := store.NewFileStore(*storeDir)
	if err != nil {
		fatal(err)
	}
	var journal *store.Journal
	if *journalOn {
		journal, err = store.OpenJournal(*storeDir + "/commit.log")
		if err != nil {
			fatal(err)
		}
	}
	catalog := replica.NewCatalog()
	siteIDs := map[int]bool{*siteID: true}

	peerAddrs := map[int]string{}
	for _, p := range peers {
		id, addr, err := splitPeer(p)
		if err != nil {
			fatal(err)
		}
		peerAddrs[id] = addr
		siteIDs[id] = true
	}
	for _, pl := range places {
		doc, sites, err := splitPlace(pl)
		if err != nil {
			fatal(err)
		}
		catalog.Place(doc, sites...)
		for _, s := range sites {
			siteIDs[s] = true
		}
	}
	var allSites []int
	for id := range siteIDs {
		allSites = append(allSites, id)
	}

	cfg := sched.Config{
		SiteID:            *siteID,
		Sites:             allSites,
		Protocol:          proto,
		Catalog:           catalog,
		Store:             st,
		Journal:           journal,
		DeadlockInterval:  time.Duration(*deadlockMs) * time.Millisecond,
		HeartbeatInterval: time.Duration(*heartbeatMs) * time.Millisecond,
		Recovering:        *recoverFlag,
		Adaptive:          sched.AdaptiveConfig{Enabled: *adaptive, Window: *adaptWindow},
	}
	if *slowTxn >= 0 {
		cfg.SlowTxnThreshold = *slowTxn
		cfg.TraceSink = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	site := sched.New(cfg)
	if !*recoverFlag {
		if len(docs) == 0 {
			// No explicit -doc flags: recover everything the store holds.
			if _, err := site.Bootstrap(); err != nil {
				fatal(fmt.Errorf("bootstrap: %w", err))
			}
			for _, d := range site.Documents() {
				fmt.Printf("dtxd: recovered document %s\n", d)
			}
		}
		for _, d := range docs {
			if err := site.LoadDocument(d); err != nil {
				fatal(fmt.Errorf("load %s: %w", d, err))
			}
			fmt.Printf("dtxd: loaded document %s\n", d)
		}
	}

	// The site's handler is wrapped to serve the operator's RecoverReq
	// (dtxctl -recover) at this level: internal/recovery orchestrates sched,
	// so the scheduler itself cannot depend on it.
	handler := func(h transport.Handler) transport.Handler {
		return transport.HandlerFunc(func(from int, msg any) (any, error) {
			if _, ok := msg.(transport.RecoverReq); ok {
				report, err := recovery.Resolve(site, recovery.Options{})
				if err != nil {
					return transport.RecoverResp{Error: err.Error()}, nil
				}
				return transport.RecoverResp{
					Resolved: len(report.Resolutions) + len(report.Decisions),
					Report:   report.String(),
				}, nil
			}
			return h.HandleMessage(from, msg)
		})
	}

	var node *transport.TCPNode
	err = site.Attach(func(h transport.Handler) (transport.Node, error) {
		n, err := transport.ListenTCP(*siteID, *listen, handler(h))
		if err != nil {
			return nil, err
		}
		for id, addr := range peerAddrs {
			n.SetPeer(id, addr)
		}
		node = n
		return n, nil
	})
	if err != nil {
		fatal(err)
	}
	if *recoverFlag {
		// Crash-recovery startup: bootstrap + journal replay + in-doubt
		// resolution + replica catch-up, refusing traffic until done.
		report, err := recovery.Restart(site, recovery.DefaultOptions)
		if err != nil {
			fatal(fmt.Errorf("recover: %w", err))
		}
		fmt.Printf("dtxd: recovered %s\n", report)
		// Recovery bootstraps everything the store holds; -doc flags keep
		// their contract of failing loudly when a named document is absent.
		loaded := map[string]bool{}
		for _, d := range site.Documents() {
			loaded[d] = true
		}
		for _, d := range docs {
			if !loaded[d] {
				fatal(fmt.Errorf("recover: document %s not in the store", d))
			}
		}
	}
	mode := proto.Name()
	if *adaptive {
		mode += ", adaptive"
	}
	fmt.Printf("dtxd: site %d serving on %s (protocol %s, %d peer(s))\n",
		*siteID, node.Addr(), mode, len(peerAddrs))

	if *metricsAddr != "" {
		// Serving metrics arms the gated instrumentation up front, so the
		// first scrape already sees populated histograms.
		site.Metrics().Arm()
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		fmt.Printf("dtxd: metrics on http://%s/metrics\n", ln.Addr())
		go func() { _ = http.Serve(ln, metricsMux(site)) }()
	}

	// Stop on SIGINT/SIGTERM. Stopping the site cancels every live
	// transaction session coordinated here: waiters are unblocked and their
	// locks released before the process exits.
	ctx, cancel := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer cancel()
	<-ctx.Done()
	fmt.Println("dtxd: shutting down")
	site.Stop()
}

// metricsMux builds the observability endpoint set: Prometheus text on
// /metrics, a readiness probe on /healthz (503 while recovering or killed),
// and the runtime profiles under /debug/pprof/. Registered on a private mux
// so nothing else in the process can leak handlers onto the metrics port.
func metricsMux(site *sched.Site) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", obs.Handler(site.Metrics()))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if site.Ready() {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "recovering", http.StatusServiceUnavailable)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func splitPeer(s string) (int, string, error) {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return 0, "", fmt.Errorf("dtxd: -peer %q must be id=host:port", s)
	}
	id, err := strconv.Atoi(s[:eq])
	if err != nil {
		return 0, "", fmt.Errorf("dtxd: -peer %q: bad site id", s)
	}
	return id, s[eq+1:], nil
}

func splitPlace(s string) (string, []int, error) {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return "", nil, fmt.Errorf("dtxd: -place %q must be doc=site1,site2", s)
	}
	doc := s[:eq]
	var sites []int
	for _, part := range strings.Split(s[eq+1:], ",") {
		id, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return "", nil, fmt.Errorf("dtxd: -place %q: bad site id %q", s, part)
		}
		sites = append(sites, id)
	}
	return doc, sites, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtxd:", err)
	os.Exit(1)
}
