package main

import "testing"

func TestSplitPeer(t *testing.T) {
	id, addr, err := splitPeer("2=host:7072")
	if err != nil || id != 2 || addr != "host:7072" {
		t.Fatalf("got %d %q %v", id, addr, err)
	}
	for _, bad := range []string{"", "noequals", "x=host:1", "=host:1"} {
		if _, _, err := splitPeer(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestSplitPlace(t *testing.T) {
	doc, sites, err := splitPlace("d1=0,1, 2")
	if err != nil || doc != "d1" || len(sites) != 3 || sites[2] != 2 {
		t.Fatalf("got %q %v %v", doc, sites, err)
	}
	for _, bad := range []string{"", "nodoc", "d1=x", "d1=0,y"} {
		if _, _, err := splitPlace(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}
