package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
)

func TestSplitPeer(t *testing.T) {
	id, addr, err := splitPeer("2=host:7072")
	if err != nil || id != 2 || addr != "host:7072" {
		t.Fatalf("got %d %q %v", id, addr, err)
	}
	for _, bad := range []string{"", "noequals", "x=host:1", "=host:1"} {
		if _, _, err := splitPeer(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestSplitPlace(t *testing.T) {
	doc, sites, err := splitPlace("d1=0,1, 2")
	if err != nil || doc != "d1" || len(sites) != 3 || sites[2] != 2 {
		t.Fatalf("got %q %v %v", doc, sites, err)
	}
	for _, bad := range []string{"", "nodoc", "d1=x", "d1=0,y"} {
		if _, _, err := splitPlace(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestMetricsEndpoints drives the exact mux dtxd serves on -metrics-addr:
// a single-site scheduler runs one transaction, then the test scrapes
// /metrics and /healthz over HTTP and checks the exposition carries the
// headline counters and latency histograms.
func TestMetricsEndpoints(t *testing.T) {
	catalog := replica.NewCatalog()
	catalog.Place("d1", 0)
	site := sched.New(sched.Config{
		SiteID:  0,
		Sites:   []int{0},
		Catalog: catalog,
		Store:   store.NewMemStore(),
	})
	defer site.Stop()
	if err := site.AttachNetwork(transport.NewNetwork()); err != nil {
		t.Fatal(err)
	}
	doc, err := xmltree.ParseString("d1", `<db><person name="ada"/></db>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := site.AddDocument(doc); err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(metricsMux(site))
	defer srv.Close()

	// First scrape arms the instrumentation; the transaction after it must
	// land in the histograms.
	if _, err := http.Get(srv.URL + "/metrics"); err != nil {
		t.Fatal(err)
	}
	if _, err := site.Submit([]txn.Operation{txn.NewQuery("d1", "//person")}); err != nil {
		t.Fatalf("submit: %v", err)
	}
	site.Sync()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type = %q", ct)
	}
	text := string(body)
	for _, want := range []string{
		`dtx_txns_committed_total{site="0"} 1`,
		"dtx_ops_executed_total",
		"dtx_lock_wait_seconds_bucket",
		"dtx_op_exec_seconds_count",
		"dtx_2pc_decision_write_seconds_bucket",
		"dtx_persist_save_seconds_bucket",
		`dtx_site_ready{site="0"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK || !strings.Contains(string(hbody), "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", hresp.StatusCode, hbody)
	}

	presp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status = %d", presp.StatusCode)
	}
}

// TestHealthzNotReady checks the probe answers 503 while a site is still
// recovering — the state a restarted dtxd -recover sits in during catch-up.
func TestHealthzNotReady(t *testing.T) {
	site := sched.New(sched.Config{
		SiteID:     0,
		Sites:      []int{0},
		Catalog:    replica.NewCatalog(),
		Store:      store.NewMemStore(),
		Recovering: true,
	})
	defer site.Stop()
	if err := site.AttachNetwork(transport.NewNetwork()); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(metricsMux(site))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz on recovering site = %d, want 503", resp.StatusCode)
	}
}
