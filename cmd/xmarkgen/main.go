// Command xmarkgen generates XMark-like auction-site XML documents — the
// evaluation database of the paper (Fig. 7 schema) — with a byte-size dial
// standing in for XMark's scale factor.
//
// Usage:
//
//	xmarkgen -size 1048576 -seed 42 -out auction.xml
//	xmarkgen -size 65536 -fragments 4 -out auction.xml   # also writes auction#N.xml
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/replica"
	"repro/internal/xmark"
)

func main() {
	size := flag.Int("size", 256<<10, "approximate document size in bytes")
	seed := flag.Int64("seed", 42, "generator seed")
	out := flag.String("out", "xmark.xml", "output file (\"-\" for stdout)")
	fragments := flag.Int("fragments", 0, "also split into N size-balanced fragments")
	flag.Parse()

	name := strings.TrimSuffix(filepath.Base(*out), ".xml")
	if *out == "-" {
		name = "xmark"
	}
	doc := xmark.Gen(xmark.Config{Name: name, TargetBytes: *size, Seed: *seed})

	if *out == "-" {
		if _, err := doc.WriteTo(os.Stdout); err != nil {
			fatal(err)
		}
	} else {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if _, err := doc.WriteTo(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes, %d nodes)\n", *out, doc.ByteSize(), doc.Len())
	}

	if *fragments > 1 {
		frags, err := replica.FragmentDocument(doc, *fragments)
		if err != nil {
			fatal(err)
		}
		dir := filepath.Dir(*out)
		for _, fr := range frags {
			path := filepath.Join(dir, fr.Doc.Name+".xml")
			f, err := os.Create(path)
			if err != nil {
				fatal(err)
			}
			if _, err := fr.Doc.WriteTo(f); err != nil {
				fatal(err)
			}
			if err := f.Close(); err != nil {
				fatal(err)
			}
			fmt.Printf("wrote %s (%d bytes)\n", path, fr.Size)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmarkgen:", err)
	os.Exit(1)
}
