// Package dtx is the public API of this DTX reproduction — a distributed
// concurrency-control mechanism for XML data (Moreira, Sousa, Machado;
// ICPP'09 / JCSS 2011). A Cluster runs one DTX instance ("site") per
// configured site over an in-process network; clients run transactions —
// sequences of XPath queries and update-language operations — against any
// site, which coordinates distributed execution under the configured locking
// protocol (XDGL by default) with strict 2PL, distributed commit/abort and
// periodic distributed deadlock detection.
//
// The primary surface is the interactive transaction handle: Begin opens a
// Txn whose every step executes immediately and returns its result, so a
// client can read, branch on what it read, and write — while the locks of
// every prior step are still held:
//
//	cluster, _ := dtx.New(dtx.Config{Sites: 2})
//	defer cluster.Close()
//	cluster.LoadXML("d1", "<people><person><id>4</id></person></people>")
//
//	txn, _ := cluster.Begin(ctx, 0)
//	ids, _ := txn.Query("d1", "//person/id")
//	if len(ids) < 10 { // branch on what we read, locks still held
//	    txn.Insert("d1", "/people", dtx.Into,
//	        dtx.Elem("person", "", dtx.Elem("id", "22")))
//	}
//	err := txn.Commit()
//
// Cancelling the Begin context aborts the transaction and releases its locks
// at every participant site. Failures are typed — ErrDeadlock, ErrAborted,
// ErrUnknownDocument, ErrSiteOutOfRange, ErrTxnFailed, ErrTxnDone,
// ErrReplicaUnavailable — and compose with errors.Is; see errors.go for the
// taxonomy.
//
// The cluster survives site crashes: heartbeats feed a per-site liveness
// view, reads route around dead replicas while writes touching them fail
// fast with ErrReplicaUnavailable, and a crashed site (KillSite, or a real
// fault under cmd/dtxd) restarts through internal/recovery — journal
// replay, presumed-abort resolution of in-doubt transactions, document
// catch-up from live replicas (RestartSite).
//
// Submit runs a whole operation list as one transaction (a convenience
// wrapper over Begin/step/Commit), and SubmitWithRetry additionally
// resubmits deadlock victims under a bounded backoff policy.
//
// The cross-site hot path is concurrent: remote operations, the commit and
// abort phases of 2PC, and the deadlock detector's graph collection all fan
// their per-site messages out concurrently and join. Independent read-only
// steps can share that concurrency through Txn.DoBatch, and Submit batches
// consecutive reads through it automatically when no client think time is
// configured.
package dtx

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/recovery"
	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// Protocol selects the concurrency-control protocol of a cluster.
type Protocol string

// Available protocols: XDGL is the paper's DataGuide-based multi-granularity
// protocol; Node2PL is the coarse tree-lock baseline the paper compares
// against; DocLock is the traditional whole-document lock.
const (
	XDGL    Protocol = "xdgl"
	Node2PL Protocol = "node2pl"
	DocLock Protocol = "doclock"
)

// Config configures a Cluster.
type Config struct {
	// Sites is the number of DTX instances (default 1).
	Sites int
	// Protocol selects the locking protocol (default XDGL). With Adaptive
	// set it is the protocol every document starts under.
	Protocol Protocol
	// Adaptive enables run-time adaptive concurrency control: each site runs
	// a policy loop that samples every document's conflict rate, lock-wait
	// p99 and deadlock rate over a sliding window and switches the document
	// between doclock, node2pl and xdgl at quiescent points (drain the
	// domain's lock table, swap, resume), with hysteresis against flapping.
	// The active per-document protocol and the switch counters surface
	// through the metrics registry (dtx_doc_protocol_rung,
	// dtx_protocol_switches_total) and dtxctl -status.
	Adaptive bool
	// AdaptiveWindow is the adaptive policy's sampling window (default
	// 50ms). The remaining thresholds use the sched.AdaptiveConfig defaults.
	AdaptiveWindow time.Duration
	// NetworkLatency injects synthetic one-way latency between sites.
	NetworkLatency time.Duration
	// DeadlockCheckInterval is the period of the distributed deadlock
	// detector (default 10ms).
	DeadlockCheckInterval time.Duration
	// ClientThinkTime pauses between a transaction's operations.
	ClientThinkTime time.Duration
	// StoreDir, when set, persists each site's documents under
	// StoreDir/site<N>/ instead of in memory.
	StoreDir string
	// Journal, together with StoreDir, write-ahead logs commits to
	// StoreDir/site<N>/commit.log so a restarted site can detect in-doubt
	// transactions with store.Recover.
	Journal bool
	// PersistDelay is the batching window of the commit persist pipeline:
	// commits acknowledge immediately and each document is written to its
	// store at most once per window, covering every commit that accumulated
	// behind it. Zero selects the default (2ms); negative flushes with no
	// window. Close drains the pipeline.
	PersistDelay time.Duration
	// HeartbeatInterval is the period of the per-site liveness heartbeat
	// feeding failure detection: a crashed site (KillSite, or a real fault
	// in a TCP deployment) is detected, reads route to the surviving
	// replicas of its documents and writes touching them fail fast with
	// ErrReplicaUnavailable. Zero selects the default (100ms); negative
	// disables failure detection.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the consecutive heartbeat misses before a site is
	// declared down (default 3).
	HeartbeatMisses int
	// SnapshotVersions bounds each document's MVCC version chain — the
	// committed versions retained per site to serve read-only transactions
	// (BeginReadOnly / SubmitReadOnly). The bound applies to unpinned
	// versions: a version pinned by a live reader is never retired under it.
	// Zero selects the default (4).
	SnapshotVersions int
	// SnapshotRetention, when positive, additionally ages unpinned versions
	// out of the chain once they have been superseded for this long, even
	// while the chain is under SnapshotVersions.
	SnapshotRetention time.Duration
	// Replication selects the write-replication mode. Empty or "eager" is
	// the original semantics: every write executes at every replica, and a
	// partially-down replica set refuses writes with ErrReplicaUnavailable.
	// "quorum" routes every write to its document's primary (the
	// lowest-numbered replica site), ships the committed effects to the
	// followers through a replication log, and acknowledges once WriteQuorum
	// replicas hold them durably — so writes keep flowing while followers
	// are down, and read-only transactions are served from followers within
	// MaxStaleness.
	Replication string
	// WriteQuorum is the number of replicas (primary included) that must
	// durably hold a write before its commit acknowledges, in quorum mode.
	// Zero selects a majority of each document's replica set.
	WriteQuorum int
	// MaxStaleness bounds, in quorum mode, how long a follower that knows it
	// lags the primary keeps serving snapshot reads before refusing them (the
	// coordinator then retries at the primary). Zero selects 1s.
	MaxStaleness time.Duration
	// ReplHorizon is the per-document record capacity of each site's
	// replication log in quorum mode; a follower further behind than the
	// horizon catches up by whole-document transfer. Zero selects 512.
	ReplHorizon int
	// IndexedKeys names the value keys every site indexes on every document:
	// "@name" indexes the values of attribute name, a bare element name
	// indexes the text of elements with that label. Queries whose final step
	// carries an equality or ordered comparison over an indexed key are
	// answered from the index instead of scanning the matched extents.
	IndexedKeys []string
	// AutoIndexAfter, when positive, auto-indexes any further key once that
	// many index-eligible queries missed on it. Zero disables auto-indexing.
	AutoIndexAfter int
	// SlowTxnThreshold enables the structured transaction tracer: every
	// transaction whose total time reaches the threshold emits one JSON line
	// (begin, per-operation lock waits, each 2PC phase, quorum ack, finish)
	// to TraceSink. Zero leaves tracing off unless TraceSink is set, in which
	// case EVERY transaction is traced — the trace-everything debugging mode.
	SlowTxnThreshold time.Duration
	// TraceSink receives one line of JSON per traced transaction. It must not
	// call back into the cluster.
	TraceSink func(line string)
}

// Replication modes for Config.Replication.
const (
	// ReplicationEager writes to every replica synchronously (the default).
	ReplicationEager = sched.ReplicationEager
	// ReplicationQuorum ships a replication log from each document's primary
	// and acknowledges at Config.WriteQuorum durable replicas.
	ReplicationQuorum = sched.ReplicationQuorum
)

// Cluster is a running DTX deployment.
type Cluster struct {
	cfg      Config
	protocol lock.Protocol
	network  *transport.Network
	catalog  *replica.Catalog
	ids      []int

	// mu guards the per-site slots: KillSite/RestartSite swap a slot's
	// site while clients keep submitting through the others. Each site
	// owns its journal (opened in buildSite, closed by Stop/Kill). opMu
	// serialises whole lifecycle operations (RestartSite, Close) against
	// each other: two concurrent restarts of one slot would open two append
	// handles on the same journal, and a restart racing Close would install
	// a site Close never stops.
	mu     sync.RWMutex
	opMu   sync.Mutex
	closed bool
	sites  []*sched.Site
	stores []store.Store
}

// New builds and starts a cluster.
func New(cfg Config) (*Cluster, error) {
	if cfg.Sites <= 0 {
		cfg.Sites = 1
	}
	if cfg.Protocol == "" {
		cfg.Protocol = XDGL
	}
	if cfg.DeadlockCheckInterval <= 0 {
		cfg.DeadlockCheckInterval = 10 * time.Millisecond
	}
	if cfg.HeartbeatInterval == 0 {
		// Default failure detection, scaled to the synthetic latency so a
		// deliberately slow network (the paper's WAN experiments) is not
		// misread as a dead cluster.
		cfg.HeartbeatInterval = 100 * time.Millisecond
		if min := 4 * cfg.NetworkLatency; cfg.HeartbeatInterval < min {
			cfg.HeartbeatInterval = min
		}
	}
	proto, err := lock.ByName(string(cfg.Protocol))
	if err != nil {
		return nil, err
	}
	net := transport.NewNetwork()
	net.SetLatency(cfg.NetworkLatency)
	catalog := replica.NewCatalog()
	ids := make([]int, cfg.Sites)
	for i := range ids {
		ids[i] = i
	}
	if cfg.Journal && cfg.StoreDir == "" {
		return nil, fmt.Errorf("dtx: Journal requires StoreDir")
	}
	switch cfg.Replication {
	case "", ReplicationEager, ReplicationQuorum:
	default:
		return nil, fmt.Errorf("dtx: unknown replication mode %q", cfg.Replication)
	}
	c := &Cluster{
		cfg:      cfg,
		protocol: proto,
		network:  net,
		catalog:  catalog,
		ids:      ids,
		stores:   make([]store.Store, cfg.Sites),
		sites:    make([]*sched.Site, cfg.Sites),
	}
	for i := 0; i < cfg.Sites; i++ {
		if cfg.StoreDir != "" {
			fs, err := store.NewFileStore(c.siteDir(i))
			if err != nil {
				return nil, err
			}
			c.stores[i] = fs
		} else {
			c.stores[i] = store.NewMemStore()
		}
		site, err := c.buildSite(i, false)
		if err != nil {
			return nil, err
		}
		c.sites[i] = site
	}
	return c, nil
}

func (c *Cluster) siteDir(i int) string {
	return fmt.Sprintf("%s/site%d", c.cfg.StoreDir, i)
}

// buildSite constructs and attaches one site over the slot's store —
// shared by New and RestartSite (which passes recovering=true so the site
// refuses traffic until internal/recovery readmits it).
func (c *Cluster) buildSite(i int, recovering bool) (*sched.Site, error) {
	var journal *store.Journal
	if c.cfg.Journal {
		j, err := store.OpenJournal(c.siteDir(i) + "/commit.log")
		if err != nil {
			return nil, err
		}
		journal = j
	}
	hb := c.cfg.HeartbeatInterval
	if hb < 0 {
		hb = 0
	}
	site := sched.New(sched.Config{
		SiteID:            i,
		Sites:             c.ids,
		Protocol:          c.protocol,
		Adaptive:          sched.AdaptiveConfig{Enabled: c.cfg.Adaptive, Window: c.cfg.AdaptiveWindow},
		Catalog:           c.catalog,
		Store:             c.stores[i],
		DeadlockInterval:  c.cfg.DeadlockCheckInterval,
		OpDelay:           c.cfg.ClientThinkTime,
		Journal:           journal,
		PersistDelay:      c.cfg.PersistDelay,
		HeartbeatInterval: hb,
		HeartbeatMisses:   c.cfg.HeartbeatMisses,
		SnapshotVersions:  c.cfg.SnapshotVersions,
		SnapshotRetention: c.cfg.SnapshotRetention,
		Replication:       c.cfg.Replication,
		WriteQuorum:       c.cfg.WriteQuorum,
		MaxStaleness:      c.cfg.MaxStaleness,
		ReplHorizon:       c.cfg.ReplHorizon,
		IndexedKeys:       c.cfg.IndexedKeys,
		AutoIndexAfter:    c.cfg.AutoIndexAfter,
		SlowTxnThreshold:  c.cfg.SlowTxnThreshold,
		TraceSink:         c.cfg.TraceSink,
		Recovering:        recovering,
	})
	if err := site.AttachNetwork(c.network); err != nil {
		if journal != nil {
			journal.Close()
		}
		return nil, err
	}
	return site, nil
}

// site returns the current instance serving a slot.
func (c *Cluster) site(i int) *sched.Site {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.sites[i]
}

// allSites snapshots the current site instances.
func (c *Cluster) allSites() []*sched.Site {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]*sched.Site(nil), c.sites...)
}

// Sync blocks until every commit acknowledged before the call has been
// written to its sites' stores (and, with Journal set, sealed with a commit
// record). Use it to observe the persistent state at a quiescent point
// without stopping the cluster.
func (c *Cluster) Sync() {
	for _, s := range c.allSites() {
		s.Sync()
	}
}

// Close stops every site. Each site drains its persist pipeline and closes
// its own journal only after the drain (a journal closed first could turn a
// late covering write into a phantom in-doubt record).
func (c *Cluster) Close() {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.closed = true
	for _, s := range c.allSites() {
		s.Stop()
	}
}

// KillSite crashes a site abruptly, as a process or machine failure would:
// no drain, no clean journal close, transport torn down mid-conversation.
// The other sites' failure detectors notice within a few heartbeats; reads
// on the dead site's documents keep flowing from surviving replicas, writes
// touching them fail fast with ErrReplicaUnavailable, and RestartSite
// brings the site back through crash recovery.
func (c *Cluster) KillSite(site int) error {
	if site < 0 || site >= len(c.ids) {
		return fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	c.site(site).Kill()
	return nil
}

// RecoveryReport summarises a RestartSite run: the documents recovered from
// the store, how each in-doubt transaction was resolved, and which
// documents were caught up from live replicas.
type RecoveryReport = recovery.Report

// RestartSite rebuilds a killed site through the crash-recovery subsystem:
// documents reload from the site's store, the journal replays, in-doubt
// transactions are resolved with the presumed-abort termination protocol
// (coordinator decision records first, surviving participants second),
// documents catch up from live replicas, and the site rejoins — peers
// readmit it on their next heartbeat.
func (c *Cluster) RestartSite(site int) (*RecoveryReport, error) {
	if site < 0 || site >= len(c.ids) {
		return nil, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	c.opMu.Lock()
	defer c.opMu.Unlock()
	if c.closed {
		return nil, fmt.Errorf("dtx: cluster is closed")
	}
	old := c.site(site)
	if !old.Killed() {
		return nil, fmt.Errorf("dtx: site %d is not killed; stop it with KillSite first", site)
	}
	// The dead instance shares its Store with the replacement: wait out any
	// persist worker caught mid write, or its Save could land over the
	// caught-up documents.
	old.Quiesce()
	fresh, err := c.buildSite(site, true)
	if err != nil {
		return nil, err
	}
	report, err := recovery.Restart(fresh, recovery.DefaultOptions)
	if err != nil {
		fresh.Stop()
		return nil, err
	}
	c.mu.Lock()
	c.sites[site] = fresh
	c.mu.Unlock()
	return report, nil
}

// PeerStatuses reports a site's liveness view of the other sites, keyed by
// site id with values "up", "suspect" or "down".
func (c *Cluster) PeerStatuses(site int) (map[int]string, error) {
	if site < 0 || site >= len(c.ids) {
		return nil, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	out := make(map[int]string)
	for _, p := range c.site(site).PeerStates() {
		out[p.Site] = p.Status
	}
	return out, nil
}

// InDoubt re-exports the journal recovery record.
type InDoubt = store.InDoubt

// RecoverJournal scans a site's commit journal (written when Config.Journal
// is set) for transactions whose persistence may be partial after a crash.
func RecoverJournal(storeDir string, site int) ([]InDoubt, error) {
	return store.Recover(fmt.Sprintf("%s/site%d/commit.log", storeDir, site))
}

// Sites returns the number of sites.
func (c *Cluster) Sites() int { return len(c.ids) }

// LoadXML parses the XML text and installs the document. With no explicit
// sites the document is totally replicated (a copy at every site);
// otherwise it is placed at exactly the given sites.
func (c *Cluster) LoadXML(name, xml string, sites ...int) error {
	if len(sites) == 0 {
		sites = make([]int, len(c.ids))
		for i := range sites {
			sites[i] = i
		}
	}
	for _, sid := range sites {
		if sid < 0 || sid >= len(c.ids) {
			return fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, sid, len(c.ids))
		}
	}
	// Parse once, deep-clone per replica site: re-parsing the same text at
	// every site is pure waste for large documents.
	doc, err := xmltree.ParseString(name, xml)
	if err != nil {
		return err
	}
	for i, sid := range sites {
		replicaDoc := doc
		if i < len(sites)-1 {
			replicaDoc = doc.Clone()
		}
		if err := c.site(sid).AddDocument(replicaDoc); err != nil {
			return err
		}
	}
	return nil
}

// LoadXMLPartial fragments the document into as many size-balanced pieces
// as there are sites and places fragment i at site i — the paper's partial
// replication. It returns the fragment document names ("name#0", ...).
func (c *Cluster) LoadXMLPartial(name, xml string) ([]string, error) {
	doc, err := xmltree.ParseString(name, xml)
	if err != nil {
		return nil, err
	}
	frags, err := replica.FragmentDocument(doc, len(c.ids))
	if err != nil {
		return nil, err
	}
	var names []string
	for i, f := range frags {
		if err := c.site(i).AddDocument(f.Doc); err != nil {
			return nil, err
		}
		names = append(names, f.Doc.Name)
	}
	return names, nil
}

// Documents lists the documents known to the cluster's catalog.
func (c *Cluster) Documents() []string { return c.catalog.Documents() }

// SitesOf returns which sites hold a replica of the document.
func (c *Cluster) SitesOf(doc string) []int { return c.catalog.Sites(doc) }

// DocumentXML returns the current serialized form of the document as held
// in memory at the given site.
func (c *Cluster) DocumentXML(site int, name string) (string, error) {
	if site < 0 || site >= len(c.ids) {
		return "", fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	doc, err := c.site(site).Document(name)
	if err != nil {
		return "", fmt.Errorf("%w: %q at site %d", ErrUnknownDocument, name, site)
	}
	return doc.String(), nil
}

// Stats re-exports the per-site scheduler counters.
type Stats = sched.Stats

// SiteStats returns the counters of one site.
func (c *Cluster) SiteStats(site int) (Stats, error) {
	if site < 0 || site >= len(c.ids) {
		return Stats{}, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	return c.site(site).Stats(), nil
}

// TotalStats sums the counters of every site — the cluster-wide view of the
// per-site registries.
func (c *Cluster) TotalStats() Stats {
	var t Stats
	for _, s := range c.allSites() {
		st := s.Stats()
		t.TxnsCommitted += st.TxnsCommitted
		t.TxnsAborted += st.TxnsAborted
		t.TxnsFailed += st.TxnsFailed
		t.DeadlockAborts += st.DeadlockAborts
		t.LocalDeadlocks += st.LocalDeadlocks
		t.DistDeadlocks += st.DistDeadlocks
		t.OpsExecuted += st.OpsExecuted
		t.OpConflicts += st.OpConflicts
		t.RemoteOpsSent += st.RemoteOpsSent
		t.RemoteOpsProcessed += st.RemoteOpsProcessed
		t.LocksAcquired += st.LocksAcquired
		t.PersistErrors += st.PersistErrors
		t.SnapshotReads += st.SnapshotReads
		t.SnapshotPublishes += st.SnapshotPublishes
		t.LogRecordsShipped += st.LogRecordsShipped
		t.LogRecordsApplied += st.LogRecordsApplied
		t.ReplStaleRefusals += st.ReplStaleRefusals
		t.ReplCatchupRecords += st.ReplCatchupRecords
		t.IndexedQueries += st.IndexedQueries
		t.ProtocolSwitches += st.ProtocolSwitches
	}
	return t
}

// DocProtocol reports the lock protocol currently active on a document's
// scheduling domain at the given site — with Adaptive enabled it can differ
// per document and change over a run. Empty when the site does not hold the
// document.
func (c *Cluster) DocProtocol(site int, doc string) (string, error) {
	if site < 0 || site >= len(c.ids) {
		return "", fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	return c.site(site).DocProtocol(doc), nil
}

// Metrics returns one site's observability registry (see internal/obs): the
// counters behind SiteStats plus the armed-gated latency histograms. Arm it
// to enable the histograms; render it with its Text method or obs.Handler.
func (c *Cluster) Metrics(site int) (*obs.Registry, error) {
	if site < 0 || site >= len(c.ids) {
		return nil, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	return c.site(site).Metrics(), nil
}

// CheckDeadlocks runs one distributed deadlock-detection sweep from the
// given site (Algorithm 4) in addition to the periodic background checks.
func (c *Cluster) CheckDeadlocks(site int) (bool, error) {
	if site < 0 || site >= len(c.ids) {
		return false, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	return c.site(site).CheckDeadlocks(), nil
}

// Position places an inserted node relative to its target.
type Position int

// Insertion positions of the update language.
const (
	Into Position = iota
	Before
	After
)

func (p Position) toTree() xmltree.Pos {
	switch p {
	case Before:
		return xmltree.Before
	case After:
		return xmltree.After
	default:
		return xmltree.Into
	}
}

// Node describes an XML subtree for Insert operations. Build with Elem and
// WithAttr.
type Node struct {
	Name     string
	Text     string
	Attrs    [][2]string
	Children []Node
}

// Elem builds a Node with optional children.
func Elem(name, text string, children ...Node) Node {
	return Node{Name: name, Text: text, Children: children}
}

// WithAttr returns a copy of the node with an attribute added.
func (n Node) WithAttr(name, value string) Node {
	n.Attrs = append(append([][2]string(nil), n.Attrs...), [2]string{name, value})
	return n
}

func (n Node) toSpec() *xupdate.NodeSpec {
	spec := &xupdate.NodeSpec{Name: n.Name, Text: n.Text}
	for _, a := range n.Attrs {
		spec.Attrs = append(spec.Attrs, xmltree.Attr{Name: a[0], Value: a[1]})
	}
	for _, c := range n.Children {
		spec.Children = append(spec.Children, c.toSpec())
	}
	return spec
}

// Op is one operation of a transaction.
type Op struct {
	inner txn.Operation
}

// Query reads the nodes selected by the XPath expression from the document.
func Query(doc, path string) Op {
	return Op{inner: txn.NewQuery(doc, path)}
}

// Insert adds a new subtree at the given position relative to the target.
func Insert(doc, target string, pos Position, node Node) Op {
	return Op{inner: txn.NewUpdate(doc, &xupdate.Update{
		Kind: xupdate.Insert, Target: target, Pos: pos.toTree(), New: node.toSpec(),
	})}
}

// Remove deletes the subtree(s) selected by the target path.
func Remove(doc, target string) Op {
	return Op{inner: txn.NewUpdate(doc, &xupdate.Update{Kind: xupdate.Remove, Target: target})}
}

// Rename changes the element name of the selected node(s).
func Rename(doc, target, newName string) Op {
	return Op{inner: txn.NewUpdate(doc, &xupdate.Update{Kind: xupdate.Rename, Target: target, NewName: newName})}
}

// Change replaces the text content of the selected node(s).
func Change(doc, target, value string) Op {
	return Op{inner: txn.NewUpdate(doc, &xupdate.Update{Kind: xupdate.Change, Target: target, Value: value})}
}

// ChangeAttr sets an attribute on the selected node(s).
func ChangeAttr(doc, target, attr, value string) Op {
	return Op{inner: txn.NewUpdate(doc, &xupdate.Update{Kind: xupdate.Change, Target: target, Attr: attr, Value: value})}
}

// Transpose swaps the positions of the two selected nodes.
func Transpose(doc, a, b string) Op {
	return Op{inner: txn.NewUpdate(doc, &xupdate.Update{Kind: xupdate.Transpose, Target: a, Target2: b})}
}

// Result is the outcome of a submitted transaction.
type Result struct {
	// ID is the transaction identifier (coordinator site + sequence).
	ID string
	// Committed is true when the transaction consolidated at every site.
	Committed bool
	// State is "committed", "aborted" or "failed".
	State string
	// Reason explains aborts and failures, mirroring the typed error.
	Reason string
	// Results holds, per operation, the string rendering of query matches
	// (attribute value for /@attr queries, text content otherwise).
	Results [][]string
}

// Submit runs the operations as one transaction with the given site as
// coordinator and blocks until it commits, aborts or fails. It is a thin
// convenience wrapper over Begin/step/Commit. On a non-committed outcome the
// Result (still non-nil, carrying the transaction ID and any query results
// gathered before the abort) is returned together with the typed terminal
// error — errors.Is(err, ErrDeadlock) identifies victims worth resubmitting,
// which SubmitWithRetry automates.
func (c *Cluster) Submit(site int, ops ...Op) (*Result, error) {
	return c.SubmitCtx(context.Background(), site, ops...)
}

// SubmitCtx is Submit bound to a context: cancellation aborts the
// transaction and releases its locks at every participant site.
func (c *Cluster) SubmitCtx(ctx context.Context, site int, ops ...Op) (*Result, error) {
	if site < 0 || site >= len(c.ids) {
		return nil, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	inner := make([]txn.Operation, len(ops))
	for i, op := range ops {
		inner[i] = op.inner
	}
	res, err := c.site(site).SubmitCtx(ctx, inner)
	if err != nil {
		return nil, err
	}
	return result(res), res.Err
}

// SubmitReadOnly runs the operations as one read-only transaction through
// the MVCC snapshot-read path (see Cluster.BeginReadOnly): no locks, no
// wait-for edges, every query served from a committed version at or below
// the transaction's begin timestamp. Every operation must be a query —
// anything else is refused up front with ErrReadOnly, before a transaction
// exists.
func (c *Cluster) SubmitReadOnly(site int, ops ...Op) (*Result, error) {
	return c.SubmitReadOnlyCtx(context.Background(), site, ops...)
}

// SubmitReadOnlyCtx is SubmitReadOnly bound to a context.
func (c *Cluster) SubmitReadOnlyCtx(ctx context.Context, site int, ops ...Op) (*Result, error) {
	if site < 0 || site >= len(c.ids) {
		return nil, fmt.Errorf("%w: site %d (cluster has %d)", ErrSiteOutOfRange, site, len(c.ids))
	}
	inner := make([]txn.Operation, len(ops))
	for i, op := range ops {
		inner[i] = op.inner
	}
	res, err := c.site(site).SubmitReadOnlyCtx(ctx, inner)
	if err != nil {
		return nil, err
	}
	return result(res), res.Err
}
