package dtx

import (
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

const peopleXML = `<people><person><id>4</id><name>Ana</name></person></people>`

func TestClusterQuickstart(t *testing.T) {
	c, err := New(Config{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.Sites() != 2 {
		t.Fatalf("sites = %d", c.Sites())
	}
	if err := c.LoadXML("d1", peopleXML); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(0,
		Query("d1", "//person[id='4']/name"),
		Insert("d1", "/people", Into, Elem("person", "",
			Elem("id", "22"), Elem("name", "Patricia")).WithAttr("vip", "yes")),
		Query("d1", "//person/name"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || res.State != "committed" {
		t.Fatalf("result = %+v", res)
	}
	if len(res.Results[0]) != 1 || res.Results[0][0] != "Ana" {
		t.Fatalf("query results = %v", res.Results[0])
	}
	if len(res.Results[2]) != 2 {
		t.Fatalf("post-insert results = %v", res.Results[2])
	}
	// Replicated at both sites.
	for site := 0; site < 2; site++ {
		xml, err := c.DocumentXML(site, "d1")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(xml, "Patricia") || !strings.Contains(xml, `vip="yes"`) {
			t.Fatalf("site %d missing insert:\n%s", site, xml)
		}
	}
	if got := c.SitesOf("d1"); len(got) != 2 {
		t.Fatalf("SitesOf = %v", got)
	}
	st, err := c.SiteStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.TxnsCommitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestClusterAllOps(t *testing.T) {
	c, err := New(Config{Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	err = c.LoadXML("d2", `<products>
		<product><id>1</id><name>a</name><price>5</price></product>
		<product><id>2</id><name>b</name><price>6</price></product>
	</products>`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(0,
		Change("d2", "//product[id='1']/price", "9.99"),
		ChangeAttr("d2", "/products", "version", "2"),
		Rename("d2", "//product[id='2']/name", "title"),
		Transpose("d2", "//product[id='1']", "//product[id='2']"),
		Remove("d2", "//product[id='1']/price"),
		Query("d2", "/products/product[1]/title"),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed {
		t.Fatalf("state = %s (%s)", res.State, res.Reason)
	}
	// After transpose, product 2 (with renamed title) is first.
	if len(res.Results[5]) != 1 || res.Results[5][0] != "b" {
		t.Fatalf("final query = %v", res.Results[5])
	}
	xml, _ := c.DocumentXML(0, "d2")
	if !strings.Contains(xml, `version="2"`) || strings.Contains(xml, "9.99") {
		t.Fatalf("final doc wrong:\n%s", xml)
	}
}

func TestClusterPartialReplication(t *testing.T) {
	c, err := New(Config{Sites: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	frags, err := c.LoadXMLPartial("base", `<root>
		<a><x>1</x></a><b><x>2</x></b><c><x>3</x></c><d><x>4</x></d>
	</root>`)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 2 {
		t.Fatalf("fragments = %v", frags)
	}
	// Each fragment lives at exactly one site.
	for i, f := range frags {
		sites := c.SitesOf(f)
		if len(sites) != 1 || sites[i%1] != i {
			t.Fatalf("fragment %s at sites %v", f, sites)
		}
	}
	// A transaction from site 0 can read a fragment held only at site 1.
	res, err := c.Submit(0, Query(frags[1], "//x"))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Committed || len(res.Results[0]) == 0 {
		t.Fatalf("cross-site read failed: %+v", res)
	}
}

func TestClusterProtocols(t *testing.T) {
	for _, proto := range []Protocol{XDGL, Node2PL, DocLock} {
		c, err := New(Config{Sites: 1, Protocol: proto})
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if err := c.LoadXML("d", peopleXML); err != nil {
			t.Fatal(err)
		}
		res, err := c.Submit(0, Query("d", "//person"))
		if err != nil || !res.Committed {
			t.Fatalf("%s: %v %+v", proto, err, res)
		}
		c.Close()
	}
	if _, err := New(Config{Protocol: "nope"}); err == nil {
		t.Fatal("bad protocol accepted")
	}
}

func TestClusterFileStore(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Sites: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadXML("d1", peopleXML); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(0, Insert("d1", "/people", Into, Elem("person", "", Elem("id", "9"))))
	if err != nil || !res.Committed {
		t.Fatalf("%v %+v", err, res)
	}
	c.Close()
	// A fresh cluster over the same directory sees the committed state.
	c2, err := New(Config{Sites: 1, StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	// Wire the stored document into memory.
	if err := c2.sites[0].LoadDocument("d1"); err != nil {
		t.Fatal(err)
	}
	c2.catalog.Place("d1", 0)
	r, err := c2.Submit(0, Query("d1", "//person/id"))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results[0]) != 2 {
		t.Fatalf("persisted state lost: %v", r.Results[0])
	}
}

func TestClusterValidation(t *testing.T) {
	c, err := New(Config{Sites: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d", "<bad"); err == nil {
		t.Error("malformed XML accepted")
	}
	if err := c.LoadXML("d", peopleXML, 7); err == nil {
		t.Error("out-of-range site accepted")
	}
	if _, err := c.Submit(9, Query("d", "/x")); err == nil {
		t.Error("out-of-range coordinator accepted")
	}
	if _, err := c.DocumentXML(9, "d"); err == nil {
		t.Error("out-of-range DocumentXML accepted")
	}
	if _, err := c.SiteStats(9); err == nil {
		t.Error("out-of-range SiteStats accepted")
	}
	if _, err := c.CheckDeadlocks(9); err == nil {
		t.Error("out-of-range CheckDeadlocks accepted")
	}
}

func TestClusterConcurrentClients(t *testing.T) {
	c, err := New(Config{Sites: 2, DeadlockCheckInterval: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", peopleXML); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	commits := make(chan struct{}, 64)
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				res, err := c.Submit(i%2,
					Insert("d1", "/people", Into, Elem("person", "", Elem("id", "x"))))
				switch {
				case err == nil && res.Committed:
					commits <- struct{}{}
					return
				case errors.Is(err, ErrAborted):
					// Deadlock victim or transient abort: resubmit, as the
					// paper leaves that decision to the client.
				default:
					t.Errorf("unexpected outcome: %v %+v", err, res)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(commits)
	n := 0
	for range commits {
		n++
	}
	if n != 16 {
		t.Fatalf("commits = %d", n)
	}
	// Replicas converge.
	x0, _ := c.DocumentXML(0, "d1")
	x1, _ := c.DocumentXML(1, "d1")
	if x0 != x1 {
		t.Fatal("replicas diverged")
	}
	if strings.Count(x0, "<person>") != 17 {
		t.Fatalf("person count = %d", strings.Count(x0, "<person>"))
	}
}

func TestClusterJournal(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{Sites: 1, StoreDir: dir, Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.LoadXML("d1", peopleXML); err != nil {
		t.Fatal(err)
	}
	res, err := c.Submit(0, Insert("d1", "/people", Into, Elem("person", "", Elem("id", "9"))))
	if err != nil || !res.Committed {
		t.Fatalf("%v %+v", err, res)
	}
	c.Close()
	inDoubt, err := RecoverJournal(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("clean shutdown left in-doubt txns: %+v", inDoubt)
	}
	// Journal without a store directory is rejected.
	if _, err := New(Config{Sites: 1, Journal: true}); err == nil {
		t.Fatal("Journal without StoreDir accepted")
	}
}
