package dtx

import (
	"repro/internal/txn"
)

// Sentinel errors of the public API. Every transaction-terminating failure
// returned by Cluster.Submit, Cluster.SubmitWithRetry and the Txn methods
// wraps exactly one of these, so clients branch with errors.Is instead of
// parsing reason strings:
//
//	res, err := cluster.Submit(0, ops...)
//	switch {
//	case err == nil:                          // committed
//	case errors.Is(err, dtx.ErrDeadlock):     // victim — safe to resubmit
//	case errors.Is(err, dtx.ErrUnknownDocument):
//	    ...
//	}
//
// Relationships: ErrDeadlock wraps ErrAborted (a deadlock victim is an
// aborted transaction), and a cancellation-triggered abort additionally
// wraps the context's cause (context.Canceled or context.DeadlineExceeded).
var (
	// ErrAborted: the transaction was rolled back cleanly — deadlock victim,
	// context cancellation, or client Abort. All effects were undone and all
	// locks released; resubmission is safe.
	ErrAborted = txn.ErrAborted
	// ErrDeadlock: the transaction was aborted as a deadlock victim (wraps
	// ErrAborted). SubmitWithRetry retries exactly this class.
	ErrDeadlock = txn.ErrDeadlock
	// ErrTxnFailed: the transaction could not be resolved cleanly (an
	// operation failed mid-flight or a participant rejected commit/abort).
	ErrTxnFailed = txn.ErrFailed
	// ErrUnknownDocument: an operation named a document no site holds.
	ErrUnknownDocument = txn.ErrUnknownDocument
	// ErrSiteOutOfRange: a site index does not exist in this cluster.
	ErrSiteOutOfRange = txn.ErrSiteOutOfRange
	// ErrTxnDone: a step or commit arrived after the transaction already
	// reached a terminal state.
	ErrTxnDone = txn.ErrTxnDone
	// ErrReplicaUnavailable: the operation needed a replica at a site that
	// is down or suspected down. Reads route around dead replicas
	// automatically, so this surfaces when no replica of a document is
	// believed alive, or when a write would touch a partially-down replica
	// set — in the default eager mode writes must reach every copy, so they
	// fail fast instead of queueing behind a dead site. Under
	// Config.Replication "quorum" a write fails this way only when the
	// document's PRIMARY is down: down followers are routed around, and the
	// commit proceeds on the write quorum. Retry once the site is restarted
	// (RestartSite) or the failure detector readmits it.
	ErrReplicaUnavailable = txn.ErrReplicaUnavailable
	// ErrReadOnly: an update was attempted on a read-only transaction
	// (BeginReadOnly / SubmitReadOnly). The refusal is non-terminal for an
	// interactive Txn — it stays live and keeps serving snapshot reads.
	ErrReadOnly = txn.ErrReadOnly
	// ErrSnapshotUnavailable: a read-only transaction needed a committed
	// version at or below its begin timestamp, but version GC already
	// retired every candidate ("snapshot too old"). Wraps ErrAborted;
	// resubmission starts a fresh snapshot and is safe — SubmitWithRetry
	// retries this class alongside deadlock victims.
	ErrSnapshotUnavailable = txn.ErrSnapshotUnavailable
)
