// Auction runs an XMark-style auction workload on a four-site DTX cluster
// with partial replication: the generated auction document is fragmented
// into size-balanced pieces, one per site, and concurrent clients mix
// monitoring queries with bids, listings and registrations across the
// fragments — the configuration the paper uses for its main experiments.
// Deadlock victims are resubmitted automatically by SubmitWithRetry under a
// bounded exponential-backoff policy instead of a hand-rolled loop.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"math/rand"
	"sync"
	"time"

	dtx "repro"
	"repro/internal/xmark"
)

func main() {
	cluster, err := dtx.New(dtx.Config{
		Sites:                 4,
		ClientThinkTime:       time.Millisecond,
		DeadlockCheckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Generate and fragment the auction database.
	base := xmark.Gen(xmark.Config{Name: "auction", TargetBytes: 128 << 10, Seed: 7})
	frags, err := cluster.LoadXMLPartial("auction", base.String())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("fragment allocation (cf. the paper's Fig. 8):")
	for _, f := range frags {
		fmt.Printf("  %-10s -> sites %v\n", f, cluster.SitesOf(f))
	}

	const clients = 8
	const txPerClient = 5
	ctx := context.Background()
	retry := dtx.RetryPolicy{MaxAttempts: 8, Backoff: time.Millisecond}
	var wg sync.WaitGroup
	var mu sync.Mutex
	commits, victims := 0, 0

	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(c)))
			site := c % cluster.Sites()
			for t := 0; t < txPerClient; t++ {
				frag := frags[rng.Intn(len(frags))]
				var ops []dtx.Op
				switch t % 3 {
				case 0: // monitor open auctions on a fragment
					ops = []dtx.Op{
						dtx.Query(frag, "/site/open_auctions/open_auction/current"),
						dtx.Query(frag, "//open_auction[1]/bidder/increase"),
					}
				case 1: // place a bid and bump the current price
					ops = []dtx.Op{
						dtx.Insert(frag, "/site/open_auctions/open_auction[1]", dtx.Into,
							dtx.Elem("bidder", "",
								dtx.Elem("date", "2008-06-10"),
								dtx.Elem("increase", fmt.Sprintf("%d.50", 1+rng.Intn(20))))),
						dtx.Change(frag, "/site/open_auctions/open_auction[1]/current",
							fmt.Sprintf("%d.00", 100+rng.Intn(400))),
					}
				default: // register a person, then look them up
					id := fmt.Sprintf("c%dt%d", c, t)
					ops = []dtx.Op{
						dtx.Insert(frag, "/site/people", dtx.Into,
							dtx.Elem("person", "",
								dtx.Elem("id", id),
								dtx.Elem("name", "Client "+id))),
						dtx.Query(frag, "//person[id='"+id+"']/name"),
					}
				}
				_, err := cluster.SubmitWithRetry(ctx, site, retry, ops...)
				mu.Lock()
				switch {
				case err == nil:
					commits++
				case errors.Is(err, dtx.ErrDeadlock):
					// Still a victim after every retry attempt.
					victims++
				default:
					mu.Unlock()
					log.Fatal(err)
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	fmt.Printf("\n%d clients x %d transactions in %v\n", clients, txPerClient, wall.Round(time.Millisecond))
	fmt.Printf("committed: %d, given up after retries: %d\n", commits, victims)
	var deadlocks int64
	for site := 0; site < cluster.Sites(); site++ {
		st, err := cluster.SiteStats(site)
		if err != nil {
			log.Fatal(err)
		}
		deadlocks += st.DeadlockAborts
		fmt.Printf("site %d: %d ops executed, %d lock conflicts, %d remote ops processed\n",
			site, st.OpsExecuted, st.OpConflicts, st.RemoteOpsProcessed)
	}
	fmt.Printf("deadlock victims across the cluster: %d\n", deadlocks)
}
