// Failover demonstrates the crash-recovery subsystem on the auction
// workload: a three-site cluster with a fully replicated XMark auction
// document loses one site mid-traffic. The survivors' heartbeats detect the
// crash; monitoring reads keep flowing from the surviving replicas while
// bids (writes, which must reach every copy) fail fast with the typed
// dtx.ErrReplicaUnavailable. The dead site then restarts through
// internal/recovery — journal replay, in-doubt resolution with the
// presumed-abort termination protocol, document catch-up from a live
// replica — and once the survivors readmit it, bidding resumes and every
// replica holds identical XML.
package main

import (
	"errors"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sync"
	"time"

	dtx "repro"
	"repro/internal/xmark"
)

func main() {
	storeDir, err := os.MkdirTemp("", "dtx-failover")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)

	cluster, err := dtx.New(dtx.Config{
		Sites:             3,
		StoreDir:          storeDir,
		Journal:           true,
		HeartbeatInterval: 20 * time.Millisecond,
		HeartbeatMisses:   2,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	base := xmark.Gen(xmark.Config{Name: "auction", TargetBytes: 64 << 10, Seed: 7})
	if err := cluster.LoadXML("auction", base.String()); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction replicated at sites %v, journals under %s\n\n",
		cluster.SitesOf("auction"), storeDir)

	rng := rand.New(rand.NewSource(7))
	bid := func(site int) error {
		_, err := cluster.Submit(site, dtx.ChangeAttr("auction",
			"//open_auctions/open_auction", "current",
			fmt.Sprintf("%d.00", 100+rng.Intn(900))))
		return err
	}
	monitor := func(site int) error {
		_, err := cluster.Submit(site, dtx.Query("auction", "//open_auctions/open_auction/@current"))
		return err
	}

	// Healthy traffic.
	for i := 0; i < 5; i++ {
		if err := bid(i % 3); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("phase 1: 5 bids committed across 3 sites")

	// Crash site 2 and keep the clients running.
	if err := cluster.KillSite(2); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nphase 2: site 2 killed")
	var mu sync.Mutex
	reads, readFails, bidRejects := 0, 0, 0
	var wg sync.WaitGroup
	deadline := time.Now().Add(400 * time.Millisecond)
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				site := c % 2 // survivors only coordinate
				if c%2 == 0 {
					err := monitor(site)
					mu.Lock()
					if err == nil {
						reads++
					} else {
						readFails++
					}
					mu.Unlock()
				} else if err := bid(site); errors.Is(err, dtx.ErrReplicaUnavailable) {
					mu.Lock()
					bidRejects++
					mu.Unlock()
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(c)
	}
	wg.Wait()
	peers, _ := cluster.PeerStatuses(0)
	fmt.Printf("  survivors' view of site 2: %s\n", peers[2])
	fmt.Printf("  monitoring reads served from surviving replicas: %d ok, %d failed\n", reads, readFails)
	fmt.Printf("  bids failed fast with ErrReplicaUnavailable: %d\n", bidRejects)

	// Restart through crash recovery.
	report, err := cluster.RestartSite(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nphase 3: site 2 restarted through internal/recovery\n  %s\n", report)

	// Wait for readmission, then bid again.
	for {
		if err := bid(0); err == nil {
			break
		} else if !errors.Is(err, dtx.ErrReplicaUnavailable) {
			log.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Println("  bidding resumed (all replicas up)")

	cluster.Sync()
	ref, err := cluster.DocumentXML(0, "auction")
	if err != nil {
		log.Fatal(err)
	}
	for site := 1; site < 3; site++ {
		xml, err := cluster.DocumentXML(site, "auction")
		if err != nil {
			log.Fatal(err)
		}
		if xml != ref {
			log.Fatalf("site %d diverged after recovery", site)
		}
	}
	fmt.Println("  all 3 replicas hold identical XML after catch-up")
}
