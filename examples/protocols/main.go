// Protocols compares the three concurrency-control protocols DTX can run —
// XDGL (the paper's contribution), Node2PL tree locks (the related-work
// stand-in) and the traditional whole-document lock — on one contended
// workload, printing per-protocol response time, throughput and deadlock
// counts: a miniature of the paper's evaluation story.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/harness"
)

func main() {
	fmt.Println("protocol comparison: 12 clients x 5 tx x 5 ops, 40% update txns,")
	fmt.Println("partial replication over 4 sites, 384KB XMark base")
	fmt.Println()
	fmt.Printf("%-10s %12s %12s %10s %10s %10s\n",
		"protocol", "resp (ms)", "tput (tx/s)", "commits", "aborts", "deadlocks")

	// A deadline on the whole comparison: if a protocol run wedges, its
	// in-flight transactions are aborted and their locks released.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	for _, proto := range []string{"xdgl", "node2pl", "doclock"} {
		res, err := harness.RunCtx(ctx, harness.Params{
			Sites:       4,
			Clients:     12,
			TxPerClient: 5,
			OpsPerTx:    5,
			UpdateTxPct: 40,
			UpdateOpPct: 20,
			BaseBytes:   384 << 10,
			Partial:     true,
			Protocol:    proto,
			Latency:     200 * time.Microsecond,
			OpDelay:     time.Millisecond,
			Seed:        42,
			// The committed history is verified conflict-serializable for
			// every protocol.
			CheckSerializability: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.2f %12.1f %10d %10d %10d\n",
			proto, res.MeanRespMs, res.ThroughputTPS, res.Committed, res.Aborted, res.Deadlocks)
	}
	fmt.Println()
	fmt.Println("all three committed histories verified conflict-serializable")
}
