// Quickstart: a two-site DTX cluster with a totally replicated document.
// One transaction queries a person, inserts a new one, and reads the result
// back; the committed insert is then visible at both sites.
package main

import (
	"fmt"
	"log"

	dtx "repro"
)

const peopleXML = `
<people>
  <person><id>4</id><name>Ana</name></person>
  <person><id>7</id><name>Bruno</name></person>
</people>`

func main() {
	cluster, err := dtx.New(dtx.Config{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Total replication: both sites hold d1.
	if err := cluster.LoadXML("d1", peopleXML); err != nil {
		log.Fatal(err)
	}

	res, err := cluster.Submit(0,
		dtx.Query("d1", "//person[id='4']/name"),
		dtx.Insert("d1", "/people", dtx.Into,
			dtx.Elem("person", "",
				dtx.Elem("id", "22"),
				dtx.Elem("name", "Patricia"))),
		dtx.Query("d1", "//person/name"),
	)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("transaction %s: %s\n", res.ID, res.State)
	fmt.Printf("person 4 is: %v\n", res.Results[0])
	fmt.Printf("all persons after insert: %v\n", res.Results[2])

	// The committed insert reached every replica.
	for site := 0; site < cluster.Sites(); site++ {
		r, err := cluster.Submit(site, dtx.Query("d1", "//person[id='22']/name"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %d sees the new person as: %v\n", site, r.Results[0])
	}
}
