// Quickstart: a two-site DTX cluster with a totally replicated document,
// driven through an interactive transaction. The client reads, branches on
// what it read — the locks of the read are still held, so the decision
// cannot be invalidated by a concurrent writer — then updates and commits;
// the committed insert is visible at both sites.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	dtx "repro"
)

const peopleXML = `
<people>
  <person><id>4</id><name>Ana</name></person>
  <person><id>7</id><name>Bruno</name></person>
</people>`

func main() {
	cluster, err := dtx.New(dtx.Config{Sites: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Total replication: both sites hold d1.
	if err := cluster.LoadXML("d1", peopleXML); err != nil {
		log.Fatal(err)
	}

	// The context bounds the whole transaction: if the deadline expires
	// mid-flight, the transaction aborts and every lock is released.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()

	txn, err := cluster.Begin(ctx, 0)
	if err != nil {
		log.Fatal(err)
	}
	names, err := txn.Query("d1", "//person[id='4']/name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transaction %s read person 4 as: %v\n", txn.ID(), names)

	// Branch on what we read: only register Patricia if Ana is present.
	if len(names) == 1 && names[0] == "Ana" {
		err = txn.Insert("d1", "/people", dtx.Into,
			dtx.Elem("person", "",
				dtx.Elem("id", "22"),
				dtx.Elem("name", "Patricia")))
		if err != nil {
			log.Fatal(err)
		}
	}
	all, err := txn.Query("d1", "//person/name")
	if err != nil {
		log.Fatal(err)
	}
	if err := txn.Commit(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all persons at commit: %v\n", all)

	// The committed insert reached every replica.
	for site := 0; site < cluster.Sites(); site++ {
		r, err := cluster.Submit(site, dtx.Query("d1", "//person[id='22']/name"))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("site %d sees the new person as: %v\n", site, r.Results[0])
	}
}
