// Scenario reproduces the worked execution of the paper's §2.4 (Figs. 3–6):
// two sites, document d1 (people) replicated at both, document d2 (products)
// only at site s2. Client c1 submits t1 = (query person 4, insert product
// Mouse); client c2 submits t2 = (query all products, insert person
// Patricia). Their second operations block on each other's first-operation
// locks — a distributed deadlock. The periodic check (Algorithm 4) finds the
// circle in the union of the wait-for graphs and aborts the most recent
// transaction (t2); t1 then commits, and the client's replacement
// transaction t3 (query product 14, insert product Keyboard) runs cleanly.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	dtx "repro"
)

const d1XML = `
<people>
  <person><id>4</id><name>Ana</name></person>
  <person><id>7</id><name>Bruno</name></person>
</people>`

const d2XML = `
<products>
  <product><id>4</id><description>Chair</description><price>50.00</price></product>
  <product><id>14</id><description>Desk</description><price>120.00</price></product>
</products>`

func main() {
	cluster, err := dtx.New(dtx.Config{
		Sites: 2,
		// Think time between operations keeps both transactions alive long
		// enough for their second operations to collide, as in the paper's
		// narrative.
		ClientThinkTime:       40 * time.Millisecond,
		DeadlockCheckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// d1 at both sites, d2 only at s2 (Fig. 4).
	if err := cluster.LoadXML("d1", d1XML, 0, 1); err != nil {
		log.Fatal(err)
	}
	if err := cluster.LoadXML("d2", d2XML, 1); err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	var res1, res2 *dtx.Result
	wg.Add(2)
	go func() { // client c1 at site s1 submits t1
		defer wg.Done()
		var err error
		res1, err = cluster.Submit(0,
			dtx.Query("d1", "//person[id='4']"),
			dtx.Insert("d2", "/products", dtx.Into,
				dtx.Elem("product", "",
					dtx.Elem("id", "13"),
					dtx.Elem("description", "Mouse"),
					dtx.Elem("price", "10.30"))),
		)
		if err != nil {
			log.Fatal(err)
		}
	}()
	go func() { // client c2 at site s2 submits t2, just after t1
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		var err error
		res2, err = cluster.Submit(1,
			dtx.Query("d2", "//product"),
			dtx.Insert("d1", "/people", dtx.Into,
				dtx.Elem("person", "",
					dtx.Elem("id", "22"),
					dtx.Elem("name", "Patricia"))),
		)
		if err != nil {
			log.Fatal(err)
		}
	}()
	wg.Wait()

	fmt.Printf("t1 (%s): %s\n", res1.ID, res1.State)
	fmt.Printf("t2 (%s): %s", res2.ID, res2.State)
	if res2.Reason != "" {
		fmt.Printf("  [%s]", res2.Reason)
	}
	fmt.Println()

	// "It is the responsibility of the application client c2 to decide if
	// it resubmits transaction t2 ... the client discards transaction t2
	// and decides to execute transaction t3."
	res3, err := cluster.Submit(1,
		dtx.Query("d2", "//product[id='14']"),
		dtx.Insert("d2", "/products", dtx.Into,
			dtx.Elem("product", "",
				dtx.Elem("id", "32"),
				dtx.Elem("description", "Keyboard"),
				dtx.Elem("price", "9.90"))),
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("t3 (%s): %s\n", res3.ID, res3.State)

	check, err := cluster.Submit(1, dtx.Query("d2", "//product/description"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("products at s2 after the scenario: %v\n", check.Results[0])
	check, err = cluster.Submit(0, dtx.Query("d1", "//person/name"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persons at s1 after the scenario:  %v (t2's Patricia was rolled back)\n", check.Results[0])
}
