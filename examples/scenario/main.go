// Scenario reproduces the worked execution of the paper's §2.4 (Figs. 3–6)
// on the interactive transaction API: two sites, document d1 (people)
// replicated at both, document d2 (products) only at site s2. Client c1
// runs t1 = (query person 4 → insert product Mouse); client c2 runs
// t2 = (query all products → insert person Patricia). Each client reads
// first and only then decides its write — the interactive pattern the
// paper's transaction model assumes. Their second operations block on each
// other's first-operation locks — a distributed deadlock. The periodic
// check (Algorithm 4) finds the circle in the union of the wait-for graphs
// and aborts the most recent transaction: t2's pending step returns an
// error satisfying errors.Is(err, dtx.ErrDeadlock), its effects are undone
// and its locks released; t1 then commits. The client inspects the typed
// error, discards t2 and runs its replacement t3 (query product 14 →
// insert product Keyboard) cleanly.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"sync"
	"time"

	dtx "repro"
)

const d1XML = `
<people>
  <person><id>4</id><name>Ana</name></person>
  <person><id>7</id><name>Bruno</name></person>
</people>`

const d2XML = `
<products>
  <product><id>4</id><description>Chair</description><price>50.00</price></product>
  <product><id>14</id><description>Desk</description><price>120.00</price></product>
</products>`

func main() {
	cluster, err := dtx.New(dtx.Config{
		Sites:                 2,
		DeadlockCheckInterval: 10 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// d1 at both sites, d2 only at s2 (Fig. 4).
	if err := cluster.LoadXML("d1", d1XML, 0, 1); err != nil {
		log.Fatal(err)
	}
	if err := cluster.LoadXML("d2", d2XML, 1); err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	var err1, err2 error
	var id1, id2 string
	wg.Add(2)
	go func() { // client c1 at site s1 runs t1 interactively
		defer wg.Done()
		t1, err := cluster.Begin(ctx, 0)
		if err != nil {
			log.Fatal(err)
		}
		id1 = t1.ID()
		if _, err := t1.Query("d1", "//person[id='4']"); err != nil {
			err1 = err
			return
		}
		// Think time: the client inspects the person before deciding to
		// order them a mouse, keeping t1 alive while t2 starts.
		time.Sleep(40 * time.Millisecond)
		if err := t1.Insert("d2", "/products", dtx.Into,
			dtx.Elem("product", "",
				dtx.Elem("id", "13"),
				dtx.Elem("description", "Mouse"),
				dtx.Elem("price", "10.30"))); err != nil {
			err1 = err
			return
		}
		err1 = t1.Commit()
	}()
	go func() { // client c2 at site s2 runs t2, just after t1
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		t2, err := cluster.Begin(ctx, 1)
		if err != nil {
			log.Fatal(err)
		}
		id2 = t2.ID()
		if _, err := t2.Query("d2", "//product"); err != nil {
			err2 = err
			return
		}
		time.Sleep(40 * time.Millisecond)
		if err := t2.Insert("d1", "/people", dtx.Into,
			dtx.Elem("person", "",
				dtx.Elem("id", "22"),
				dtx.Elem("name", "Patricia"))); err != nil {
			err2 = err
			return
		}
		err2 = t2.Commit()
	}()
	wg.Wait()

	report := func(id string, err error) {
		switch {
		case err == nil:
			fmt.Printf("%s: committed\n", id)
		case errors.Is(err, dtx.ErrDeadlock):
			fmt.Printf("%s: aborted as deadlock victim  [%v]\n", id, err)
		default:
			fmt.Printf("%s: %v\n", id, err)
		}
	}
	report("t1 ("+id1+")", err1)
	report("t2 ("+id2+")", err2)

	// "It is the responsibility of the application client c2 to decide if
	// it resubmits transaction t2 ... the client discards transaction t2
	// and decides to execute transaction t3." The typed error is what makes
	// that decision programmable.
	if errors.Is(err2, dtx.ErrDeadlock) {
		res3, err := cluster.Submit(1,
			dtx.Query("d2", "//product[id='14']"),
			dtx.Insert("d2", "/products", dtx.Into,
				dtx.Elem("product", "",
					dtx.Elem("id", "32"),
					dtx.Elem("description", "Keyboard"),
					dtx.Elem("price", "9.90"))),
		)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t3 (%s): %s\n", res3.ID, res3.State)
	}

	check, err := cluster.Submit(1, dtx.Query("d2", "//product/description"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("products at s2 after the scenario: %v\n", check.Results[0])
	check, err = cluster.Submit(0, dtx.Query("d1", "//person/name"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("persons at s1 after the scenario:  %v (t2's Patricia was rolled back)\n", check.Results[0])
}
