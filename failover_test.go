package dtx_test

import (
	"errors"
	"testing"
	"time"

	dtx "repro"
)

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestClusterFailover drives the public crash-recovery surface end to end:
// kill a replica under committed traffic, keep reading from the survivors,
// observe writes failing fast with the typed replica error, restart the
// site through recovery, and verify every replica converges to identical
// XML and writes resume.
func TestClusterFailover(t *testing.T) {
	cluster, err := dtx.New(dtx.Config{
		Sites:             3,
		StoreDir:          t.TempDir(),
		Journal:           true,
		PersistDelay:      -1,
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if err := cluster.LoadXML("d1",
		`<people><person><id>4</id><name>Ana</name></person></people>`); err != nil {
		t.Fatal(err)
	}

	// Committed traffic before the crash.
	if _, err := cluster.Submit(0, dtx.Change("d1", "//person[id='4']/name", "Bea")); err != nil {
		t.Fatal(err)
	}
	cluster.Sync()

	if err := cluster.KillSite(2); err != nil {
		t.Fatal(err)
	}

	// Reads on the document keep succeeding from the surviving replicas.
	waitFor(t, 5*time.Second, "reads from survivors", func() bool {
		res, err := cluster.Submit(0, dtx.Query("d1", "//person/name"))
		return err == nil && res.Committed && len(res.Results[0]) == 1 && res.Results[0][0] == "Bea"
	})

	// Writes touching the dead replica fail fast with the typed error.
	waitFor(t, 5*time.Second, "typed write failure", func() bool {
		_, err := cluster.Submit(0, dtx.Change("d1", "//person[id='4']/name", "Cal"))
		return errors.Is(err, dtx.ErrReplicaUnavailable)
	})

	// Restart through the recovery subsystem.
	report, err := cluster.RestartSite(2)
	if err != nil {
		t.Fatal(err)
	}
	if report.Site != 2 {
		t.Fatalf("report for wrong site: %+v", report)
	}

	// Every replica converges to identical XML.
	want, err := cluster.DocumentXML(0, "d1")
	if err != nil {
		t.Fatal(err)
	}
	for site := 1; site < 3; site++ {
		got, err := cluster.DocumentXML(site, "d1")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("site %d diverged (report %s):\nwant %s\ngot  %s", site, report, want, got)
		}
	}

	// Writes resume once the survivors' heartbeats readmit the site.
	waitFor(t, 5*time.Second, "writes after restart", func() bool {
		res, err := cluster.Submit(1, dtx.Change("d1", "//person[id='4']/name", "Dan"))
		return err == nil && res.Committed
	})

	// And the restarted site applied the post-recovery write too.
	waitFor(t, 5*time.Second, "restarted replica current", func() bool {
		got, err := cluster.DocumentXML(2, "d1")
		return err == nil && got != "" && got == mustXML(t, cluster, 0, "d1")
	})

	// Liveness view settles back to up.
	waitFor(t, 5*time.Second, "peer readmitted", func() bool {
		peers, err := cluster.PeerStatuses(0)
		return err == nil && peers[2] == "up"
	})
}

func mustXML(t *testing.T, c *dtx.Cluster, site int, doc string) string {
	t.Helper()
	s, err := c.DocumentXML(site, doc)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRestartRequiresKill: RestartSite on a live site is refused.
func TestRestartRequiresKill(t *testing.T) {
	cluster, err := dtx.New(dtx.Config{Sites: 2, StoreDir: t.TempDir(), Journal: true})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.RestartSite(1); err == nil {
		t.Fatal("restart of a live site accepted")
	}
	if _, err := cluster.RestartSite(7); !errors.Is(err, dtx.ErrSiteOutOfRange) {
		t.Fatalf("out-of-range restart: %v", err)
	}
}
