package dtx

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func indexTestXML() string {
	var b strings.Builder
	b.WriteString("<people>")
	for i := 0; i < 40; i++ {
		fmt.Fprintf(&b, "<person><id>%d</id><name>n%d</name><emailaddress>e%d@x</emailaddress></person>", i, i, i)
	}
	b.WriteString("</people>")
	return b.String()
}

// TestValueIndexQueriesMatchScan runs the same mixed query/update stream
// against an indexed and an unindexed cluster; results must be identical,
// and only the indexed cluster may count indexed queries.
func TestValueIndexQueriesMatchScan(t *testing.T) {
	run := func(t *testing.T, keys []string) ([][]string, int64) {
		t.Helper()
		c, err := New(Config{Sites: 2, IndexedKeys: keys})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.LoadXML("d1", indexTestXML()); err != nil {
			t.Fatal(err)
		}
		var out [][]string
		for i := 0; i < 10; i++ {
			res, err := c.Submit(i%2,
				Query("d1", fmt.Sprintf("//person[id='%d']/name", i*3)),
				Change("d1", fmt.Sprintf("//person[id='%d']/name", i*3), fmt.Sprintf("renamed%d", i)),
				Query("d1", fmt.Sprintf("//person[name='renamed%d']/emailaddress", i)),
				Query("d1", fmt.Sprintf("//person[id>='%d'][id<'%d']/name", i, i+3)),
			)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Committed {
				t.Fatalf("txn %d: %s (%s)", i, res.State, res.Reason)
			}
			out = append(out, res.Results...)
		}
		var indexed int64
		for site := 0; site < c.Sites(); site++ {
			st, err := c.SiteStats(site)
			if err != nil {
				t.Fatal(err)
			}
			indexed += st.IndexedQueries
		}
		return out, indexed
	}

	scan, scanIdx := run(t, nil)
	indexed, idxCount := run(t, []string{"id", "name"})
	if !reflect.DeepEqual(scan, indexed) {
		t.Fatalf("indexed cluster diverged from scan cluster:\nscan:    %v\nindexed: %v", scan, indexed)
	}
	if scanIdx != 0 {
		t.Fatalf("unindexed cluster reported %d indexed queries", scanIdx)
	}
	if idxCount == 0 {
		t.Fatal("indexed cluster answered nothing from its indexes")
	}
}

// TestValueIndexSnapshotRead: a read-only transaction pinned before a write
// keeps seeing the pre-write value through the versioned index view, while
// a transaction pinned after the write sees the new value.
func TestValueIndexSnapshotRead(t *testing.T) {
	c, err := New(Config{Sites: 2, IndexedKeys: []string{"id", "name"}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", indexTestXML()); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	const lookup = "//person[id='7']/name"

	ro, err := c.BeginReadOnly(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	before, err := ro.Query("d1", lookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 1 || before[0] != "n7" {
		t.Fatalf("pre-write snapshot read = %v", before)
	}

	// A writer commits between the snapshot's two reads.
	res, err := c.Submit(1, Change("d1", lookup, "changed"))
	if err != nil || !res.Committed {
		t.Fatalf("writer: %v %+v", err, res)
	}
	c.Sync()

	again, err := ro.Query("d1", lookup)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again, before) {
		t.Fatalf("snapshot read moved: first %v then %v", before, again)
	}
	if err := ro.Commit(); err != nil {
		t.Fatal(err)
	}

	// A fresh snapshot pins the post-write version.
	ro2, err := c.BeginReadOnly(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	after, err := ro2.Query("d1", lookup)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0] != "changed" {
		t.Fatalf("post-write snapshot read = %v", after)
	}
	if err := ro2.Commit(); err != nil {
		t.Fatal(err)
	}

	// Both the pinned and the fresh read should have been index-served.
	var indexed int64
	for site := 0; site < c.Sites(); site++ {
		st, err := c.SiteStats(site)
		if err != nil {
			t.Fatal(err)
		}
		indexed += st.IndexedQueries
	}
	if indexed < 2 {
		t.Fatalf("indexed snapshot reads = %d, want >= 2", indexed)
	}
}

// TestAutoIndexEndToEnd: with AutoIndexAfter set and no static keys, a hot
// predicate key promotes itself after enough scan misses and later queries
// are index-served.
func TestAutoIndexEndToEnd(t *testing.T) {
	c, err := New(Config{Sites: 1, AutoIndexAfter: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.LoadXML("d1", indexTestXML()); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		res, err := c.Submit(0, Query("d1", fmt.Sprintf("//person[id='%d']/name", i)))
		if err != nil || !res.Committed {
			t.Fatalf("query %d: %v %+v", i, err, res)
		}
		if want := []string{fmt.Sprintf("n%d", i)}; !reflect.DeepEqual(res.Results[0], want) {
			t.Fatalf("query %d = %v, want %v", i, res.Results[0], want)
		}
	}
	st, err := c.SiteStats(0)
	if err != nil {
		t.Fatal(err)
	}
	if st.IndexedQueries == 0 {
		t.Fatal("hot key was never auto-indexed")
	}
	if st.IndexedQueries >= 8 {
		t.Fatalf("indexed from the start (%d) — auto threshold ignored", st.IndexedQueries)
	}
}
