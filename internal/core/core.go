package core
