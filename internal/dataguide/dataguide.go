// Package dataguide implements the strong DataGuide structural summary of
// Goldman & Widom (VLDB'97) that XDGL — and therefore DTX — uses as its lock
// representation structure. Every distinct label path of the document
// appears exactly once in the DataGuide; each DataGuide node records the
// extent of document nodes reachable by its path.
//
// Locks are attached to DataGuide nodes, which is why the structure is kept
// incrementally maintained under the five update operations rather than
// being rebuilt: lock references must stay stable while transactions run.
// A DataGuide node whose extent becomes empty is kept as a tombstone so that
// in-flight lock references remain valid; Compact removes tombstones.
package dataguide

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/vindex"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// NodeID identifies a DataGuide node within one DataGuide.
type NodeID int64

// Node is one entry of the structural summary: a distinct label path.
type Node struct {
	ID       NodeID
	Label    string // element name of the last path segment
	Parent   *Node
	children map[string]*Node
	order    []string // child labels in first-seen order, for determinism

	// Extent is the set of document nodes whose label path is this node's
	// path. Keys are document node IDs.
	Extent map[xmltree.NodeID]struct{}
}

// Children returns the child summary nodes in first-seen label order.
func (n *Node) Children() []*Node {
	out := make([]*Node, 0, len(n.order))
	for _, label := range n.order {
		out = append(out, n.children[label])
	}
	return out
}

// Child returns the child with the given label, or nil.
func (n *Node) Child(label string) *Node {
	return n.children[label]
}

// Path returns the label path of the node, e.g. "/site/people/person".
func (n *Node) Path() string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		parts = append(parts, cur.Label)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// Ancestors returns the chain from parent to root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		out = append(out, cur)
	}
	return out
}

// Descendants returns all summary nodes strictly below n, depth first.
func (n *Node) Descendants() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		for _, label := range m.order {
			c := m.children[label]
			out = append(out, c)
			walk(c)
		}
	}
	walk(n)
	return out
}

// DataGuide is the structural summary of one document. A DataGuide is not
// safe for concurrent use; the scheduler serialises access per document.
type DataGuide struct {
	Doc  string // document name this guide summarises
	Root *Node

	nodes  map[NodeID]*Node
	byDoc  map[xmltree.NodeID]*Node // document node -> summary node
	nextID NodeID

	// version counts structural changes: summary-node creation and Compact.
	// Extent churn does not bump it — Targets and PredicateNodes read only
	// the node/label structure, so their memoized results stay valid across
	// value updates and are invalidated exactly when a new label path
	// appears or tombstones are pruned.
	version uint64
	memo    map[string]*memoEntry

	// vidx, when attached, is the live value index maintained alongside the
	// extents: every extent add/remove and every text/attribute change
	// notifies it inside the same critical section. Nil means no indexing.
	vidx *vindex.Index
}

// memoEntry caches the structural evaluation of one query shape against one
// guide version.
type memoEntry struct {
	version uint64
	targets []*Node
	preds   []*Node
	// anchor caches TargetsPrefix for one prefix length (anchorN). One slot
	// suffices: the anchor step index is a function of the query shape, and
	// the memo is keyed by shape.
	anchor  []*Node
	anchorN int
	hasT    bool
	hasP    bool
	hasA    bool
}

// memoCap bounds the memo map; on overflow the whole map is dropped (query
// shapes are bounded by workload templates, so this is a safety valve, not
// a working-set control).
const memoCap = 1024

// Build constructs the strong DataGuide of doc.
func Build(doc *xmltree.Document) *DataGuide {
	g := &DataGuide{
		Doc:    doc.Name,
		nodes:  make(map[NodeID]*Node),
		byDoc:  make(map[xmltree.NodeID]*Node),
		nextID: 1,
	}
	g.Root = g.newNode(doc.Root.Name, nil)
	g.addToExtent(g.Root, doc.Root)
	var walk func(dn *xmltree.Node, gn *Node)
	walk = func(dn *xmltree.Node, gn *Node) {
		for _, c := range dn.Children {
			cg := g.ensureChild(gn, c.Name)
			g.addToExtent(cg, c)
			walk(c, cg)
		}
	}
	walk(doc.Root, g.Root)
	return g
}

func (g *DataGuide) newNode(label string, parent *Node) *Node {
	g.version++
	n := &Node{
		ID:       g.nextID,
		Label:    label,
		Parent:   parent,
		children: make(map[string]*Node),
		Extent:   make(map[xmltree.NodeID]struct{}),
	}
	g.nextID++
	g.nodes[n.ID] = n
	return n
}

func (g *DataGuide) ensureChild(parent *Node, label string) *Node {
	if c := parent.children[label]; c != nil {
		return c
	}
	c := g.newNode(label, parent)
	parent.children[label] = c
	parent.order = append(parent.order, label)
	return c
}

func (g *DataGuide) addToExtent(gn *Node, n *xmltree.Node) {
	gn.Extent[n.ID] = struct{}{}
	g.byDoc[n.ID] = gn
	if g.vidx != nil {
		g.vidx.Add(int64(gn.ID), n)
	}
}

func (g *DataGuide) removeFromExtent(gn *Node, n *xmltree.Node) {
	delete(gn.Extent, n.ID)
	delete(g.byDoc, n.ID)
	if g.vidx != nil {
		g.vidx.Remove(int64(gn.ID), n)
	}
}

// Node returns the summary node with the given ID, or nil.
func (g *DataGuide) Node(id NodeID) *Node { return g.nodes[id] }

// Version returns the structural version: it changes exactly when the set
// of summary nodes changes (a new label path or a Compact). Extent-only
// updates leave it untouched. Callers can use it to validate caches derived
// from the guide's structure — lock derivations, query target sets.
func (g *DataGuide) Version() uint64 { return g.version }

// Len returns the number of summary nodes (including tombstones).
func (g *DataGuide) Len() int { return len(g.nodes) }

// Of returns the summary node a document node belongs to, or nil if the
// document node is unknown to the guide.
func (g *DataGuide) Of(docNode xmltree.NodeID) *Node { return g.byDoc[docNode] }

// Lookup returns the summary node for an exact label path such as
// "/site/people/person", or nil.
func (g *DataGuide) Lookup(path string) *Node {
	parts := strings.Split(strings.TrimPrefix(path, "/"), "/")
	if len(parts) == 0 || parts[0] != g.Root.Label {
		return nil
	}
	cur := g.Root
	for _, p := range parts[1:] {
		cur = cur.children[p]
		if cur == nil {
			return nil
		}
	}
	return cur
}

// EnsurePath returns the summary node for the label path, creating summary
// nodes along the way. Used when an insert introduces a brand-new path.
func (g *DataGuide) EnsurePath(segments []string) (*Node, error) {
	if len(segments) == 0 || segments[0] != g.Root.Label {
		return nil, fmt.Errorf("dataguide: path %v does not start at root %q", segments, g.Root.Label)
	}
	cur := g.Root
	for _, s := range segments[1:] {
		cur = g.ensureChild(cur, s)
	}
	return cur, nil
}

// EnsureChild returns the child of parent with the given label, creating it
// (with an empty extent) if absent. The XDGL protocol uses this to obtain a
// lockable summary node for the path a pending insert will create.
func (g *DataGuide) EnsureChild(parent *Node, label string) *Node {
	return g.ensureChild(parent, label)
}

// AddSubtree registers a newly attached document subtree rooted at n.
func (g *DataGuide) AddSubtree(n *xmltree.Node) error {
	gn, err := g.EnsurePath(n.PathSegments())
	if err != nil {
		return err
	}
	g.addToExtent(gn, n)
	var walk func(dn *xmltree.Node, parent *Node)
	walk = func(dn *xmltree.Node, parent *Node) {
		for _, c := range dn.Children {
			cg := g.ensureChild(parent, c.Name)
			g.addToExtent(cg, c)
			walk(c, cg)
		}
	}
	walk(n, gn)
	return nil
}

// RemoveSubtree unregisters a document subtree that is being detached. Must
// be called while the subtree is still attached (paths intact) or with the
// subtree's byDoc entries still present.
func (g *DataGuide) RemoveSubtree(n *xmltree.Node) {
	if gn := g.byDoc[n.ID]; gn != nil {
		g.removeFromExtent(gn, n)
	}
	for _, d := range n.Descendants() {
		if gn := g.byDoc[d.ID]; gn != nil {
			g.removeFromExtent(gn, d)
		}
	}
}

// Rename updates the guide for a subtree whose root element was renamed:
// all paths below the renamed node move. Call after the document mutation.
func (g *DataGuide) Rename(n *xmltree.Node) error {
	// Remove old registrations (byDoc still has them), then re-add with the
	// new paths.
	g.RemoveSubtree(n)
	return g.AddSubtree(n)
}

// Move updates the guide for a subtree that changed position (transpose).
// Semantics match Rename: re-register under current paths.
func (g *DataGuide) Move(n *xmltree.Node) error {
	g.RemoveSubtree(n)
	return g.AddSubtree(n)
}

// Compact removes summary nodes with empty extents and no descendants with
// non-empty extents. It must only be called when no locks reference the
// guide (e.g. between experiment runs).
func (g *DataGuide) Compact() int {
	removed := 0
	var prune func(n *Node) bool // returns true if n should be kept
	prune = func(n *Node) bool {
		var keptOrder []string
		for _, label := range n.order {
			c := n.children[label]
			if prune(c) {
				keptOrder = append(keptOrder, label)
			} else {
				delete(n.children, label)
				delete(g.nodes, c.ID)
				removed++
			}
		}
		n.order = keptOrder
		return len(n.Extent) > 0 || len(n.children) > 0
	}
	prune(g.Root)
	if removed > 0 {
		g.version++
	}
	return removed
}

// lookupMemo returns the memo entry for the query shape, valid at the
// current structural version, creating it if needed.
func (g *DataGuide) lookupMemo(q *xpath.Query) *memoEntry {
	key := q.StructureKey()
	if g.memo == nil {
		g.memo = make(map[string]*memoEntry)
	}
	e := g.memo[key]
	if e == nil || e.version != g.version {
		if len(g.memo) >= memoCap {
			g.memo = make(map[string]*memoEntry)
		}
		e = &memoEntry{version: g.version}
		g.memo[key] = e
	}
	return e
}

// Targets evaluates the structural part of a query against the guide,
// returning the summary nodes the query's final step can reach. Value
// predicates cannot be decided on a summary, so they are ignored here: the
// result over-approximates the document targets, which is exactly what a
// lock cover needs.
//
// Results are memoized per query shape (StructureKey) and invalidated by
// structural version bumps, so XDGL lock derivation for a repeated query
// template is a map hit, not a tree walk. The returned slice is shared
// across calls and must not have its elements overwritten; it is clipped to
// its length (zero spare capacity), so a caller that appends to it gets a
// private reallocation instead of scribbling into the memo's backing array
// that every later call — possibly on another goroutine's transaction —
// will read.
func (g *DataGuide) Targets(q *xpath.Query) []*Node {
	e := g.lookupMemo(q)
	if e.hasT {
		return e.targets
	}
	t := g.computeTargets(q.Steps)
	e.targets = t[:len(t):len(t)]
	e.hasT = true
	return e.targets
}

// TargetsPrefix returns the summary nodes reachable by the first n steps of
// q — the anchor context for index-assisted evaluation, where the predicate
// step need not be the final one. n == len(q.Steps) degenerates to Targets.
// Memoized per query shape like Targets, with the same shared-slice contract
// (clipped to zero spare capacity).
func (g *DataGuide) TargetsPrefix(q *xpath.Query, n int) []*Node {
	if n >= len(q.Steps) {
		return g.Targets(q)
	}
	e := g.lookupMemo(q)
	if e.hasA && e.anchorN == n {
		return e.anchor
	}
	t := g.computeTargets(q.Steps[:n])
	e.anchor = t[:len(t):len(t)]
	e.anchorN = n
	e.hasA = true
	return e.anchor
}

func (g *DataGuide) computeTargets(steps []xpath.Step) []*Node {
	ctx := []*Node{}
	for i, step := range steps {
		var next []*Node
		nseen := map[NodeID]bool{}
		add := func(n *Node) {
			if !nseen[n.ID] {
				nseen[n.ID] = true
				next = append(next, n)
			}
		}
		if i == 0 {
			switch step.Axis {
			case xpath.Child:
				if step.Name == "*" || step.Name == g.Root.Label {
					add(g.Root)
				}
			case xpath.Descendant:
				if step.Name == "*" || step.Name == g.Root.Label {
					add(g.Root)
				}
				for _, d := range g.Root.Descendants() {
					if step.Name == "*" || step.Name == d.Label {
						add(d)
					}
				}
			}
		} else {
			for _, c := range ctx {
				switch step.Axis {
				case xpath.Child:
					for _, ch := range c.Children() {
						if step.Name == "*" || step.Name == ch.Label {
							add(ch)
						}
					}
				case xpath.Descendant:
					for _, d := range c.Descendants() {
						if step.Name == "*" || step.Name == d.Label {
							add(d)
						}
					}
				}
			}
		}
		ctx = next
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// PredicateNodes returns, for each step of the query that has a child or
// attribute predicate, the summary nodes of the predicate's child element
// under that step's context. XDGL requires ST locks on these nodes.
// Memoized like Targets; the returned slice is shared and, like Targets,
// clipped to zero spare capacity so caller appends cannot alias the memo.
func (g *DataGuide) PredicateNodes(q *xpath.Query) []*Node {
	e := g.lookupMemo(q)
	if e.hasP {
		return e.preds
	}
	p := g.computePredicateNodes(q)
	e.preds = p[:len(p):len(p)]
	e.hasP = true
	return e.preds
}

func (g *DataGuide) computePredicateNodes(q *xpath.Query) []*Node {
	var out []*Node
	seen := map[NodeID]bool{}
	// Re-run the step evaluation, collecting predicate children per step.
	ctx := []*Node{}
	for i, step := range q.Steps {
		var next []*Node
		nseen := map[NodeID]bool{}
		add := func(n *Node) {
			if !nseen[n.ID] {
				nseen[n.ID] = true
				next = append(next, n)
			}
		}
		if i == 0 {
			if step.Name == "*" || step.Name == g.Root.Label {
				add(g.Root)
			}
			if step.Axis == xpath.Descendant {
				for _, d := range g.Root.Descendants() {
					if step.Name == "*" || step.Name == d.Label {
						add(d)
					}
				}
			}
		} else {
			for _, c := range ctx {
				switch step.Axis {
				case xpath.Child:
					for _, ch := range c.Children() {
						if step.Name == "*" || step.Name == ch.Label {
							add(ch)
						}
					}
				case xpath.Descendant:
					for _, d := range c.Descendants() {
						if step.Name == "*" || step.Name == d.Label {
							add(d)
						}
					}
				}
			}
		}
		for _, p := range step.Preds {
			if p.Kind != xpath.PredChild {
				continue
			}
			for _, n := range next {
				if pc := n.Child(p.Name); pc != nil && !seen[pc.ID] {
					seen[pc.ID] = true
					out = append(out, pc)
				}
			}
		}
		ctx = next
		if len(ctx) == 0 {
			break
		}
	}
	return out
}

// Paths returns every label path present in the guide (including tombstones)
// in sorted order. Mostly for tests and debugging.
func (g *DataGuide) Paths() []string {
	var out []string
	var walk func(n *Node)
	walk = func(n *Node) {
		out = append(out, n.Path())
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(g.Root)
	sort.Strings(out)
	return out
}

// String renders the guide as an indented tree with extent sizes.
func (g *DataGuide) String() string {
	var b strings.Builder
	var walk func(n *Node, depth int)
	walk = func(n *Node, depth int) {
		fmt.Fprintf(&b, "%s%s [%d]\n", strings.Repeat("  ", depth), n.Label, len(n.Extent))
		for _, c := range n.Children() {
			walk(c, depth+1)
		}
	}
	walk(g.Root, 0)
	return b.String()
}
