package dataguide

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const sampleXML = `
<site>
  <people>
    <person id="p0"><name>Ana</name><city>Fortaleza</city></person>
    <person id="p1"><name>Bruno</name></person>
    <person id="p2"><name>Carla</name><city>Recife</city></person>
  </people>
  <regions>
    <europe><item id="i0"><name>clock</name></item></europe>
    <asia><item id="i1"><name>vase</name></item></asia>
  </regions>
</site>`

func sample(t *testing.T) (*xmltree.Document, *DataGuide) {
	t.Helper()
	doc, err := xmltree.ParseString("d", sampleXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc, Build(doc)
}

func TestBuildPaths(t *testing.T) {
	_, g := sample(t)
	want := []string{
		"/site",
		"/site/people",
		"/site/people/person",
		"/site/people/person/city",
		"/site/people/person/name",
		"/site/regions",
		"/site/regions/asia",
		"/site/regions/asia/item",
		"/site/regions/asia/item/name",
		"/site/regions/europe",
		"/site/regions/europe/item",
		"/site/regions/europe/item/name",
	}
	if got := g.Paths(); !reflect.DeepEqual(got, want) {
		t.Fatalf("paths:\n got %v\nwant %v", got, want)
	}
}

func TestExtents(t *testing.T) {
	doc, g := sample(t)
	person := g.Lookup("/site/people/person")
	if person == nil {
		t.Fatal("person path missing")
	}
	if len(person.Extent) != 3 {
		t.Fatalf("person extent = %d, want 3", len(person.Extent))
	}
	// Every element of the document maps to exactly one summary node whose
	// path equals the element's label path.
	doc.Walk(func(n *xmltree.Node) bool {
		gn := g.Of(n.ID)
		if gn == nil {
			t.Fatalf("node %d (%s) not in guide", n.ID, n.LabelPath())
		}
		if gn.Path() != n.LabelPath() {
			t.Fatalf("node %d: guide path %s != label path %s", n.ID, gn.Path(), n.LabelPath())
		}
		return true
	})
}

func TestLookup(t *testing.T) {
	_, g := sample(t)
	if g.Lookup("/site/people/person/name") == nil {
		t.Fatal("existing path not found")
	}
	if g.Lookup("/site/nowhere") != nil {
		t.Fatal("phantom path found")
	}
	if g.Lookup("/other") != nil {
		t.Fatal("wrong root found")
	}
	if g.Lookup("/site") != g.Root {
		t.Fatal("root lookup broken")
	}
}

func TestTargets(t *testing.T) {
	_, g := sample(t)
	cases := map[string][]string{
		"/site/people/person":      {"/site/people/person"},
		"//person":                 {"/site/people/person"},
		"//name":                   {"/site/people/person/name", "/site/regions/europe/item/name", "/site/regions/asia/item/name"},
		"//item/name":              {"/site/regions/europe/item/name", "/site/regions/asia/item/name"},
		"/site/*":                  {"/site/people", "/site/regions"},
		"//person[name='Ana']":     {"/site/people/person"}, // predicate ignored structurally
		"/site/regions//name":      {"/site/regions/europe/item/name", "/site/regions/asia/item/name"},
		"/site/people/person/name": {"/site/people/person/name"},
		"/nope":                    nil,
	}
	for query, want := range cases {
		q := xpath.MustParse(query)
		var got []string
		for _, n := range g.Targets(q) {
			got = append(got, n.Path())
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("Targets(%s):\n got %v\nwant %v", query, got, want)
		}
	}
}

func TestPredicateNodes(t *testing.T) {
	_, g := sample(t)
	q := xpath.MustParse("//person[name='Ana']")
	var got []string
	for _, n := range g.PredicateNodes(q) {
		got = append(got, n.Path())
	}
	want := []string{"/site/people/person/name"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("PredicateNodes = %v, want %v", got, want)
	}
	// Attribute and position predicates produce no extra lock targets.
	if got := g.PredicateNodes(xpath.MustParse("//person[@id='p0'][2]")); len(got) != 0 {
		t.Fatalf("attr/pos predicates should yield none, got %v", got)
	}
}

func TestAddRemoveSubtree(t *testing.T) {
	doc, g := sample(t)
	people := xpath.Eval(xpath.MustParse("/site/people"), doc)[0]
	// Insert a new person with a brand-new child path (email).
	p := doc.NewElement("person")
	email := doc.NewElement("email")
	email.Text = "x@y"
	if err := doc.AttachAt(p, email, xmltree.Into); err != nil {
		t.Fatal(err)
	}
	if err := doc.AttachAt(people, p, xmltree.Into); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSubtree(p); err != nil {
		t.Fatal(err)
	}
	if g.Lookup("/site/people/person/email") == nil {
		t.Fatal("new path not added")
	}
	if len(g.Lookup("/site/people/person").Extent) != 4 {
		t.Fatal("extent not grown")
	}
	// Remove it again: path remains as tombstone, extent shrinks.
	g.RemoveSubtree(p)
	if _, err := doc.Detach(p); err != nil {
		t.Fatal(err)
	}
	if len(g.Lookup("/site/people/person").Extent) != 3 {
		t.Fatal("extent not shrunk")
	}
	eg := g.Lookup("/site/people/person/email")
	if eg == nil || len(eg.Extent) != 0 {
		t.Fatal("tombstone missing or non-empty")
	}
	// Compact prunes the tombstone.
	if n := g.Compact(); n != 1 {
		t.Fatalf("Compact removed %d, want 1", n)
	}
	if g.Lookup("/site/people/person/email") != nil {
		t.Fatal("tombstone survived Compact")
	}
}

func TestRenameMaintenance(t *testing.T) {
	doc, g := sample(t)
	person := xpath.Eval(xpath.MustParse("//person[@id='p0']"), doc)[0]
	g.RemoveSubtree(person)
	person.Name = "vip"
	if err := g.AddSubtree(person); err != nil {
		t.Fatal(err)
	}
	if g.Lookup("/site/people/vip") == nil || g.Lookup("/site/people/vip/name") == nil {
		t.Fatal("renamed paths missing")
	}
	if len(g.Lookup("/site/people/person").Extent) != 2 {
		t.Fatal("old extent not shrunk")
	}
}

func TestMoveMaintenance(t *testing.T) {
	doc, g := sample(t)
	item := xpath.Eval(xpath.MustParse("/site/regions/europe/item"), doc)[0]
	asia := xpath.Eval(xpath.MustParse("/site/regions/asia"), doc)[0]
	g.RemoveSubtree(item)
	if _, err := doc.Detach(item); err != nil {
		t.Fatal(err)
	}
	if err := doc.AttachAt(asia, item, xmltree.Into); err != nil {
		t.Fatal(err)
	}
	if err := g.AddSubtree(item); err != nil {
		t.Fatal(err)
	}
	if len(g.Lookup("/site/regions/asia/item").Extent) != 2 {
		t.Fatal("asia extent wrong after move")
	}
	if len(g.Lookup("/site/regions/europe/item").Extent) != 0 {
		t.Fatal("europe extent wrong after move")
	}
}

func randomDoc(rng *rand.Rand, maxNodes int) *xmltree.Document {
	doc := xmltree.NewDocument("rand", "root")
	attached := []*xmltree.Node{doc.Root}
	names := []string{"a", "b", "c"}
	n := 1 + rng.Intn(maxNodes)
	for i := 0; i < n; i++ {
		parent := attached[rng.Intn(len(attached))]
		child := doc.NewElement(names[rng.Intn(len(names))])
		if err := doc.AttachAt(parent, child, xmltree.Into); err != nil {
			panic(err)
		}
		attached = append(attached, child)
	}
	return doc
}

// Property: the guide contains exactly the distinct label paths of the
// document, and extents partition the document's nodes.
func TestPropertyGuideInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 60)
		g := Build(doc)
		paths := map[string]bool{}
		count := 0
		doc.Walk(func(n *xmltree.Node) bool {
			paths[n.LabelPath()] = true
			count++
			gn := g.Of(n.ID)
			if gn == nil || gn.Path() != n.LabelPath() {
				t.Logf("node %d mismapped", n.ID)
				return false
			}
			return true
		})
		if len(g.Paths()) != len(paths) {
			t.Logf("guide has %d paths, doc has %d distinct", len(g.Paths()), len(paths))
			return false
		}
		total := 0
		for _, p := range g.Paths() {
			total += len(g.Lookup(p).Extent)
		}
		return total == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: incremental AddSubtree after random insertion matches a fresh
// Build of the mutated document (same path set and extent sizes).
func TestPropertyIncrementalMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 40)
		g := Build(doc)
		// Random insertion of a small subtree.
		var nodes []*xmltree.Node
		doc.Walk(func(n *xmltree.Node) bool { nodes = append(nodes, n); return true })
		parent := nodes[rng.Intn(len(nodes))]
		sub := doc.NewElement("z")
		leaf := doc.NewElement("w")
		if err := doc.AttachAt(sub, leaf, xmltree.Into); err != nil {
			return false
		}
		if err := doc.AttachAt(parent, sub, xmltree.Into); err != nil {
			return false
		}
		if err := g.AddSubtree(sub); err != nil {
			return false
		}
		fresh := Build(doc)
		if !reflect.DeepEqual(g.Paths(), fresh.Paths()) {
			return false
		}
		for _, p := range fresh.Paths() {
			if len(fresh.Lookup(p).Extent) != len(g.Lookup(p).Extent) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestStringRendering(t *testing.T) {
	_, g := sample(t)
	s := g.String()
	if s == "" {
		t.Fatal("empty rendering")
	}
}

func TestVersionBumpsOnStructureOnly(t *testing.T) {
	doc, g := sample(t)
	v0 := g.Version()
	// Extent-only churn: remove and re-add a subtree with existing paths.
	n := xpath.Eval(xpath.MustParse("//person"), doc)[0]
	g.RemoveSubtree(n)
	if err := g.AddSubtree(n); err != nil {
		t.Fatal(err)
	}
	if g.Version() != v0 {
		t.Fatalf("extent churn bumped the version: %d -> %d", v0, g.Version())
	}
	// A new label path is structural.
	g.EnsureChild(g.Root, "brandnew")
	if g.Version() == v0 {
		t.Fatal("new summary node did not bump the version")
	}
	v1 := g.Version()
	if g.Compact() == 0 {
		t.Fatal("compact removed nothing")
	}
	if g.Version() == v1 {
		t.Fatal("compact did not bump the version")
	}
}

func TestTargetsMemoInvalidation(t *testing.T) {
	_, g := sample(t)
	q := xpath.MustParse("/site/people/person")
	t1 := g.Targets(q)
	if len(t1) != 1 {
		t.Fatalf("targets = %v", t1)
	}
	// Memo hit returns the shared slice.
	if &t1[0] != &g.Targets(q)[0] {
		t.Fatal("second call did not hit the memo")
	}
	// Same shape, different values: still a hit.
	q2 := xpath.MustParse("/site/people/person[name='Ana']")
	q3 := xpath.MustParse("/site/people/person[name='Rui']")
	if len(g.PredicateNodes(q2)) == 0 {
		t.Fatal("no predicate nodes")
	}
	if &g.PredicateNodes(q2)[0] != &g.PredicateNodes(q3)[0] {
		t.Fatal("value-only variants did not share the memo entry")
	}
	// A structural change invalidates: the new path must appear.
	people := g.Lookup("/site/people")
	g.EnsureChild(people, "person2")
	qAll := xpath.MustParse("/site/people/*")
	found := false
	for _, n := range g.Targets(qAll) {
		if n.Label == "person2" {
			found = true
		}
	}
	if !found {
		t.Fatal("memo served a stale target set after a structural change")
	}
}

// TestTargetsMemoAliasRace guards the memo-slice aliasing fix: Targets,
// PredicateNodes, and TargetsPrefix hand out capacity-clipped slices, so a
// caller that appends to its result reallocates instead of scribbling into
// the shared memo. Run under -race, concurrent appenders and readers on the
// same warm memo entry must not interfere.
func TestTargetsMemoAliasRace(t *testing.T) {
	_, g := sample(t)
	q := xpath.MustParse("//person/name")
	pq := xpath.MustParse("//person[name='Ana']/name")
	warm := append([]*Node(nil), g.Targets(q)...)
	g.PredicateNodes(q)
	g.TargetsPrefix(pq, 1)

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ts := g.Targets(q)
				ts = append(ts, nil) // must reallocate, not extend the memo
				_ = ts
				ps := g.PredicateNodes(q)
				ps = append(ps, nil)
				_ = ps
				as := g.TargetsPrefix(pq, 1)
				as = append(as, nil)
				_ = as
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				ts := g.Targets(q)
				if len(ts) != len(warm) {
					t.Error("memoized Targets length changed under concurrent appends")
					return
				}
				for k := range ts {
					if ts[k] != warm[k] {
						t.Error("memoized Targets content changed under concurrent appends")
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}
