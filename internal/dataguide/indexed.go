package dataguide

import (
	"strings"

	"repro/internal/vindex"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// This file wires the vindex value index into the guide: attachment, the
// change notifications the update language calls, bulk rebuilds, and the
// indexed evaluation path that replaces extent scans for covered
// predicates. Everything here runs under the owning scheduling domain's
// mutex, like every other guide mutation or traversal.

// AttachIndex attaches a value index to the guide. Subsequent extent
// changes and value-change notifications maintain it; call ReindexAll to
// seed postings for a document that already has content.
func (g *DataGuide) AttachIndex(ix *vindex.Index) { g.vidx = ix }

// ValueIndex returns the attached value index, or nil. The pointer is set
// once at domain construction, so reading it is safe off-lock; the index's
// own documentation says which of its methods are.
func (g *DataGuide) ValueIndex() *vindex.Index { return g.vidx }

// NoteTextChanged maintains the index across an in-place text change (the
// one tree mutation that bypasses the extent hooks). old is the
// pre-mutation text; call after mutating, in the same critical section.
func (g *DataGuide) NoteTextChanged(n *xmltree.Node, old string) {
	if g.vidx == nil {
		return
	}
	if gn := g.byDoc[n.ID]; gn != nil {
		g.vidx.TextChanged(int64(gn.ID), n, old)
	}
}

// NoteAttrChanged maintains the index across an in-place attribute set or
// removal. old/oldExisted describe the pre-mutation attribute; call after
// mutating, in the same critical section.
func (g *DataGuide) NoteAttrChanged(n *xmltree.Node, attr, old string, oldExisted bool) {
	if g.vidx == nil {
		return
	}
	if gn := g.byDoc[n.ID]; gn != nil {
		g.vidx.AttrChanged(int64(gn.ID), n, attr, old, oldExisted)
	}
}

// ReindexAll rebuilds every enabled key's postings from scratch by walking
// the document. Used when attaching an index to an already-built guide
// (document load, restart recovery).
func (g *DataGuide) ReindexAll(doc *xmltree.Document) {
	if g.vidx == nil {
		return
	}
	g.vidx.Clear()
	doc.Walk(func(n *xmltree.Node) bool {
		if gn := g.byDoc[n.ID]; gn != nil {
			g.vidx.Add(int64(gn.ID), n)
		}
		return true
	})
}

// ReindexKey builds the postings of one just-enabled key. The other keys'
// postings are untouched.
func (g *DataGuide) ReindexKey(doc *xmltree.Document, key string) {
	if g.vidx == nil {
		return
	}
	if attr, ok := strings.CutPrefix(key, "@"); ok {
		doc.Walk(func(n *xmltree.Node) bool {
			if v, has := n.Attr(attr); has {
				if gn := g.byDoc[n.ID]; gn != nil {
					g.vidx.AddAttrPosting(int64(gn.ID), n, attr, v)
				}
			}
			return true
		})
		return
	}
	doc.Walk(func(n *xmltree.Node) bool {
		if n.Name == key {
			if gn := g.byDoc[n.ID]; gn != nil {
				g.vidx.AddTextPosting(int64(gn.ID), n)
			}
		}
		return true
	})
}

// EvalIndexed evaluates q through the value index when an index covers its
// predicate, returning (nodes, true) with exactly the node set xpath.Eval
// would produce. It returns (nil, false) when no index is attached, the
// query shape is not index-eligible, or the anchor key is not indexed — the
// caller then falls back to the scan. Cold keys feed the auto-index miss
// counters, and keys whose counters crossed the threshold are enabled and
// built here, under the same domain mutex as every other index mutation.
func (g *DataGuide) EvalIndexed(q *xpath.Query, doc *xmltree.Document) ([]*xmltree.Node, bool) {
	ix := g.vidx
	if ix == nil {
		return nil, false
	}
	plan, ok := vindex.PlanQuery(q)
	if !ok {
		return nil, false
	}
	for _, key := range ix.TakeAutoKeys() {
		g.ReindexKey(doc, key)
	}
	if !ix.Enabled(plan.Key) {
		ix.NoteMiss(plan.Key)
		return nil, false
	}
	var candidates []*xmltree.Node
	for _, t := range g.TargetsPrefix(q, plan.AnchorStep+1) {
		gid := int64(t.ID)
		if plan.Child {
			tc := t.Child(plan.Anchor.Name)
			if tc == nil {
				continue
			}
			for _, lst := range ix.Nodes(int64(tc.ID), "", plan.Anchor.Op, plan.Anchor.Value) {
				for _, n := range lst {
					// The posting node is the matching child; the query's
					// target is its parent — by the strong-guide property the
					// parent is necessarily in t's extent.
					candidates = append(candidates, n.Parent)
				}
			}
			continue
		}
		attr := ""
		if plan.Anchor.Kind == xpath.PredAttr {
			attr = plan.Anchor.Name
		}
		for _, lst := range ix.Nodes(gid, attr, plan.Anchor.Op, plan.Anchor.Value) {
			candidates = append(candidates, lst...)
		}
	}
	return vindex.Finish(q, plan, candidates), true
}
