package harness

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
)

// FinalStateDigest condenses the cluster's committed document state into one
// comparable string: the SHA-256 over every document's serialized XML,
// documents in name order, each prefixed by its name. Before hashing it
// checks that every serving replica of a document holds byte-identical XML
// and errors on divergence — so two runs with equal digests ended in equal
// states on every replica, which is what the cross-protocol equivalence
// suite asserts. Killed and still-recovering sites are skipped: their
// in-memory copies are not authoritative.
func FinalStateDigest(c *Cluster) (string, error) {
	h := sha256.New()
	for _, d := range c.Docs {
		var canonical string
		first, seen := 0, false
		for i, s := range c.Sites {
			if s.Killed() || !s.Ready() {
				continue
			}
			doc, err := s.Document(d.Name)
			if err != nil {
				// Partial replication: this site does not hold the fragment.
				continue
			}
			xml := doc.String()
			if !seen {
				canonical, first, seen = xml, i, true
				continue
			}
			if xml != canonical {
				return "", fmt.Errorf("harness: replicas diverge on %s: site %d != site %d", d.Name, i, first)
			}
		}
		if !seen {
			return "", fmt.Errorf("harness: no serving replica holds %s", d.Name)
		}
		fmt.Fprintf(h, "%s\n%s\n", d.Name, canonical)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
