package harness

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Point is one (x, y) sample of a series.
type Point struct {
	X float64
	Y float64
}

// Series is one line of a figure.
type Series struct {
	Label  string
	Points []Point
}

// Figure is one reproduced result figure: a set of series over a common
// x-axis, as the paper plots them.
type Figure struct {
	Name   string // e.g. "fig9-partial"
	Title  string
	XLabel string
	YLabel string
	Series []Series
}

// Scale shrinks the experiment grid so the full suite runs in seconds; the
// paper's grid (Scale=1) takes minutes in-process. Axis values (clients,
// sites, update %) are preserved — only repetitions and base size shrink.
type Scale struct {
	// BaseBytes replaces the default database size.
	BaseBytes int
	// ClientDiv divides the client counts (minimum 2).
	ClientDiv int
	// Latency is the injected one-way network latency.
	Latency time.Duration
	// OpDelay is the client think time.
	OpDelay time.Duration
	// Seed for workload generation.
	Seed int64
	// Reps averages each data point over this many seeds (default 1); the
	// paper's curves are single runs, but the scaled-down in-process
	// substrate is noisier, so the quick preset averages.
	Reps int
}

// runAveraged runs the workload Reps times with distinct seeds and averages
// response time and deadlock counts.
func runAveraged(ctx context.Context, sc Scale, p Params) (respMs, deadlocks float64, err error) {
	reps := sc.Reps
	if reps < 1 {
		reps = 1
	}
	for r := 0; r < reps; r++ {
		p.Seed = sc.Seed + int64(r)*104729
		res, rerr := RunCtx(ctx, p)
		if rerr != nil {
			return 0, 0, rerr
		}
		respMs += res.MeanRespMs
		deadlocks += float64(res.Deadlocks)
	}
	return respMs / float64(reps), deadlocks / float64(reps), nil
}

// DefaultScale runs the full suite quickly: small base, few clients. The
// client think time (OpDelay) keeps transactions alive long enough to
// contend, which is what produces the paper's blocking and deadlock
// behaviour; without it in-process transactions finish in microseconds and
// never overlap.
func DefaultScale() Scale {
	return Scale{BaseBytes: 256 << 10, ClientDiv: 3, Latency: 200 * time.Microsecond,
		OpDelay: 2 * time.Millisecond, Seed: 42, Reps: 3}
}

// PaperScale keeps the paper's client counts; slower but closest in shape.
func PaperScale() Scale {
	return Scale{BaseBytes: 1 << 20, ClientDiv: 1, Latency: 500 * time.Microsecond,
		OpDelay: 5 * time.Millisecond, Seed: 42, Reps: 1}
}

func (s Scale) clients(n int) int {
	d := s.ClientDiv
	if d < 1 {
		d = 1
	}
	c := n / d
	if c < 2 {
		c = 2
	}
	return c
}

// protocols compared in every experiment, per the paper: DTX (XDGL) vs DTX
// with tree locks (Node2PL).
var protocols = []string{"xdgl", "node2pl"}

// Fig9 — "Variation in the number of clients": response time for 10..50
// clients, read-only transactions (5 tx × 5 ops each), under total and
// partial replication. Returns one figure per replication mode.
func Fig9(ctx context.Context, sc Scale) ([]Figure, error) {
	clientAxis := []int{10, 20, 30, 40, 50}
	var figs []Figure
	for _, partial := range []bool{false, true} {
		mode := "total"
		if partial {
			mode = "partial"
		}
		fig := Figure{
			Name:   "fig9-" + mode,
			Title:  fmt.Sprintf("Fig. 9 — response time vs clients (%s replication)", mode),
			XLabel: "clients",
			YLabel: "response time (ms)",
		}
		for _, proto := range protocols {
			series := Series{Label: protoLabel(proto)}
			for _, nc := range clientAxis {
				resp, _, err := runAveraged(ctx, sc, Params{
					Sites: 4, Clients: sc.clients(nc), TxPerClient: 5, OpsPerTx: 5,
					UpdateTxPct: 0, BaseBytes: sc.BaseBytes, Partial: partial,
					Protocol: proto, Latency: sc.Latency, OpDelay: sc.OpDelay,
				})
				if err != nil {
					return nil, err
				}
				series.Points = append(series.Points, Point{X: float64(nc), Y: resp})
			}
			fig.Series = append(fig.Series, series)
		}
		figs = append(figs, fig)
	}
	return figs, nil
}

// Fig10 — "Variation in the update percentage": 50 clients, update-tx share
// 20..60%, 20% update ops per update tx, partial replication. Returns the
// response-time figure and the deadlock-count figure.
func Fig10(ctx context.Context, sc Scale) ([]Figure, error) {
	updAxis := []int{20, 30, 40, 50, 60}
	respFig := Figure{
		Name:   "fig10-resp",
		Title:  "Fig. 10a — response time vs update percentage",
		XLabel: "update transactions (%)",
		YLabel: "response time (ms)",
	}
	dlFig := Figure{
		Name:   "fig10-deadlocks",
		Title:  "Fig. 10b — deadlocks vs update percentage",
		XLabel: "update transactions (%)",
		YLabel: "deadlocks",
	}
	for _, proto := range protocols {
		resp := Series{Label: protoLabel(proto)}
		dl := Series{Label: protoLabel(proto)}
		for _, upd := range updAxis {
			r, d, err := runAveraged(ctx, sc, Params{
				Sites: 4, Clients: sc.clients(50), TxPerClient: 5, OpsPerTx: 5,
				UpdateTxPct: upd, UpdateOpPct: 20, BaseBytes: sc.BaseBytes,
				Partial: true, Protocol: proto, Latency: sc.Latency,
				OpDelay: sc.OpDelay,
			})
			if err != nil {
				return nil, err
			}
			resp.Points = append(resp.Points, Point{X: float64(upd), Y: r})
			dl.Points = append(dl.Points, Point{X: float64(upd), Y: d})
		}
		respFig.Series = append(respFig.Series, resp)
		dlFig.Series = append(dlFig.Series, dl)
	}
	return []Figure{respFig, dlFig}, nil
}

// Fig11a — "Variation in the size of the base": 50 clients, base size swept
// over 4 steps standing in for the paper's 50..200 MB, partial replication,
// 20%/20% updates. Returns response-time and deadlock figures.
func Fig11a(ctx context.Context, sc Scale) ([]Figure, error) {
	// Size multipliers relative to the scale's base, mirroring 50..200MB.
	mults := []int{1, 2, 3, 4}
	respFig := Figure{
		Name:   "fig11a-resp",
		Title:  "Fig. 11a — response time vs base size",
		XLabel: "base size (x base)",
		YLabel: "response time (ms)",
	}
	dlFig := Figure{
		Name:   "fig11a-deadlocks",
		Title:  "Fig. 11a — deadlocks vs base size",
		XLabel: "base size (x base)",
		YLabel: "deadlocks",
	}
	for _, proto := range protocols {
		resp := Series{Label: protoLabel(proto)}
		dl := Series{Label: protoLabel(proto)}
		for _, m := range mults {
			r, d, err := runAveraged(ctx, sc, Params{
				Sites: 4, Clients: sc.clients(50), TxPerClient: 5, OpsPerTx: 5,
				UpdateTxPct: 20, UpdateOpPct: 20, BaseBytes: sc.BaseBytes * m,
				Partial: true, Protocol: proto, Latency: sc.Latency,
				OpDelay: sc.OpDelay,
			})
			if err != nil {
				return nil, err
			}
			resp.Points = append(resp.Points, Point{X: float64(m), Y: r})
			dl.Points = append(dl.Points, Point{X: float64(m), Y: d})
		}
		respFig.Series = append(respFig.Series, resp)
		dlFig.Series = append(dlFig.Series, dl)
	}
	return []Figure{respFig, dlFig}, nil
}

// Fig11b — "Variation in the number of sites": sites 2..8, fixed base
// fragmented over the sites, 20%/20% updates, partial replication.
func Fig11b(ctx context.Context, sc Scale) ([]Figure, error) {
	siteAxis := []int{2, 4, 6, 8}
	respFig := Figure{
		Name:   "fig11b-resp",
		Title:  "Fig. 11b — response time vs number of sites",
		XLabel: "sites",
		YLabel: "response time (ms)",
	}
	dlFig := Figure{
		Name:   "fig11b-deadlocks",
		Title:  "Fig. 11b — deadlocks vs number of sites",
		XLabel: "sites",
		YLabel: "deadlocks",
	}
	for _, proto := range protocols {
		resp := Series{Label: protoLabel(proto)}
		dl := Series{Label: protoLabel(proto)}
		for _, ns := range siteAxis {
			r, d, err := runAveraged(ctx, sc, Params{
				Sites: ns, Clients: sc.clients(50), TxPerClient: 5, OpsPerTx: 5,
				UpdateTxPct: 20, UpdateOpPct: 20, BaseBytes: sc.BaseBytes,
				Partial: true, Protocol: proto, Latency: sc.Latency,
				OpDelay: sc.OpDelay,
			})
			if err != nil {
				return nil, err
			}
			resp.Points = append(resp.Points, Point{X: float64(ns), Y: r})
			dl.Points = append(dl.Points, Point{X: float64(ns), Y: d})
		}
		respFig.Series = append(respFig.Series, resp)
		dlFig.Series = append(dlFig.Series, dl)
	}
	return []Figure{respFig, dlFig}, nil
}

// Fig12 — "Throughput and concurrency degree": 50 clients × 5 tx = 250
// transactions over a 4-site partial deployment; cumulative commits per
// time interval. The paper reports DTX finishing 218 tx in 1553 s against
// Node2PL's 230 in 16500 s (≈10× slower); the shape to reproduce is
// cumulative-commit curves with XDGL far steeper.
func Fig12(ctx context.Context, sc Scale) ([]Figure, error) {
	fig := Figure{
		Name:   "fig12",
		Title:  "Fig. 12 — cumulative committed transactions over time",
		XLabel: "time (% of slowest run)",
		YLabel: "committed transactions",
	}
	var results []*Result
	for _, proto := range protocols {
		res, err := RunCtx(ctx, Params{
			Sites: 4, Clients: sc.clients(50), TxPerClient: 5, OpsPerTx: 5,
			UpdateTxPct: 20, UpdateOpPct: 20, BaseBytes: sc.BaseBytes,
			Partial: true, Protocol: proto, Latency: sc.Latency,
			OpDelay: sc.OpDelay, Seed: sc.Seed,
		})
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	// Normalise both curves to the slowest run's wall clock, sampled at 10
	// intervals, like the paper's per-interval consolidation counts.
	maxWall := results[0].Wall
	for _, r := range results[1:] {
		if r.Wall > maxWall {
			maxWall = r.Wall
		}
	}
	const buckets = 10
	for i, r := range results {
		series := Series{Label: protoLabel(protocols[i])}
		for b := 1; b <= buckets; b++ {
			cutoff := maxWall * time.Duration(b) / buckets
			count := 0
			for _, ct := range r.CommitTimes {
				if ct <= cutoff {
					count++
				}
			}
			series.Points = append(series.Points, Point{X: float64(b * 100 / buckets), Y: float64(count)})
		}
		fig.Series = append(fig.Series, series)
	}
	return []Figure{fig}, nil
}

// AllExperiments runs every figure at the given scale.
func AllExperiments(ctx context.Context, sc Scale) ([]Figure, error) {
	var out []Figure
	for _, f := range []func(context.Context, Scale) ([]Figure, error){Fig9, Fig10, Fig11a, Fig11b, Fig12} {
		figs, err := f(ctx, sc)
		if err != nil {
			return nil, err
		}
		out = append(out, figs...)
	}
	return out, nil
}

func protoLabel(proto string) string {
	switch proto {
	case "xdgl":
		return "DTX (XDGL)"
	case "node2pl":
		return "DTX w/ tree locks (Node2PL)"
	case "doclock":
		return "DTX w/ document lock"
	default:
		return proto
	}
}

// Format renders a figure as an aligned text table, one row per x value.
func Format(fig Figure) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", fig.Title)
	fmt.Fprintf(&b, "%-14s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(&b, " | %28s", s.Label)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 14+len(fig.Series)*31))
	b.WriteByte('\n')
	if len(fig.Series) == 0 {
		return b.String()
	}
	for i := range fig.Series[0].Points {
		fmt.Fprintf(&b, "%-14.0f", fig.Series[0].Points[i].X)
		for _, s := range fig.Series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, " | %28.2f", s.Points[i].Y)
			} else {
				fmt.Fprintf(&b, " | %28s", "-")
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "(y axis: %s)\n", fig.YLabel)
	return b.String()
}
