package harness

import (
	"fmt"
	"strings"

	"repro/internal/replica"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// Fig8 reproduces the paper's fragmentation and data-allocation map: for
// each scenario site count, the base document is fragmented into
// size-balanced pieces and allocated one per site, and the table lists each
// site's content with its data volume — the information of the paper's
// Fig. 8 (there the 40 MB base across 2/4/8 sites, with bold entries marking
// replicated documents; here partial replication places each fragment at
// exactly one site).
func Fig8(baseBytes int, seed int64, siteCounts []int) (string, error) {
	if len(siteCounts) == 0 {
		siteCounts = []int{2, 4, 8}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "Fig. 8 — fragmentation and data allocation (base %d KB)\n", baseBytes>>10)
	fmt.Fprintf(&b, "%-6s %-6s %-12s %s\n", "sites", "site", "volume", "content")
	b.WriteString(strings.Repeat("-", 72))
	b.WriteByte('\n')
	for _, n := range siteCounts {
		base := xmark.Gen(xmark.Config{Name: "xmark", TargetBytes: baseBytes, Seed: seed})
		catalog := replica.NewCatalog()
		perSite, err := replica.AllocatePartial(catalog, []*xmltree.Document{base}, n)
		if err != nil {
			return "", err
		}
		for site := 0; site < n; site++ {
			var names []string
			volume := 0
			for _, doc := range perSite[site] {
				names = append(names, fmt.Sprintf("%s (%s)", doc.Name, strings.Join(xmark.Sections(doc), ", ")))
				volume += doc.ByteSize()
			}
			label := ""
			if site == 0 {
				label = fmt.Sprintf("%d", n)
			}
			fmt.Fprintf(&b, "%-6s s%-5d %-12s %s\n", label, site,
				fmt.Sprintf("%d KB", volume>>10), strings.Join(names, "; "))
		}
		b.WriteString(strings.Repeat("-", 72))
		b.WriteByte('\n')
	}
	return b.String(), nil
}
