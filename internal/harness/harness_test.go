package harness

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/sched"
	"repro/internal/txn"
)

func quickParams(mut func(*Params)) Params {
	p := Params{
		Sites: 2, Clients: 4, TxPerClient: 2, OpsPerTx: 3,
		UpdateTxPct: 30, UpdateOpPct: 20, BaseBytes: 24 << 10,
		Partial: true, Protocol: "xdgl", Seed: 11,
	}
	if mut != nil {
		mut(&p)
	}
	return p
}

func TestRunCompletesAndAccounts(t *testing.T) {
	res, err := Run(quickParams(nil))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.Aborted+res.Failed != res.Total {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if res.Failed != 0 {
		t.Fatalf("failures in a healthy run: %d", res.Failed)
	}
	if res.MeanRespMs <= 0 {
		t.Fatal("no response time measured")
	}
	if len(res.CommitTimes) != res.Committed {
		t.Fatal("commit timeline incomplete")
	}
	if res.String() == "" {
		t.Fatal("empty render")
	}
}

func TestRunTotalReplication(t *testing.T) {
	res, err := Run(quickParams(func(p *Params) { p.Partial = false }))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed under total replication")
	}
}

func TestRunAllProtocols(t *testing.T) {
	for _, proto := range []string{"xdgl", "node2pl", "doclock"} {
		res, err := Run(quickParams(func(p *Params) { p.Protocol = proto }))
		if err != nil {
			t.Fatalf("%s: %v", proto, err)
		}
		if res.Committed == 0 {
			t.Fatalf("%s: nothing committed", proto)
		}
	}
	if _, err := Run(quickParams(func(p *Params) { p.Protocol = "bogus" })); err == nil {
		t.Fatal("bogus protocol accepted")
	}
}

func TestRunSerializabilityChecked(t *testing.T) {
	res, err := Run(quickParams(func(p *Params) {
		p.CheckSerializability = true
		p.Clients = 6
		p.UpdateTxPct = 50
	}))
	if err != nil {
		t.Fatalf("serializability check failed: %v", err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
}

func TestHistoryCheckerCatchesCycle(t *testing.T) {
	// Construct a history that is NOT serializable: t1 and t2 each write
	// two paths in opposite order with interleaved acquisition.
	h := NewHistory()
	t1 := txn.ID{Site: 1, Seq: 1}
	t2 := txn.ID{Site: 1, Seq: 2}
	gA := []sched.GrantInfo{{Path: "/a", Mode: lock.X}}
	gB := []sched.GrantInfo{{Path: "/b", Mode: lock.X}}
	h.OnAcquired(0, t1, 0, "d", true, gA) // t1 holds /a
	h.OnAcquired(0, t2, 0, "d", true, gB) // t2 holds /b
	h.OnAcquired(0, t2, 1, "d", true, gA) // t2 then /a  (t1 -> t2)
	h.OnAcquired(0, t1, 1, "d", true, gB) // t1 then /b  (t2 -> t1)
	h.OnFinished(t1, true)
	h.OnFinished(t2, true)
	if err := h.CheckSerializable(); err == nil {
		t.Fatal("checker accepted a cyclic history")
	}
}

func TestHistoryAbortedTxnsIgnored(t *testing.T) {
	h := NewHistory()
	t1 := txn.ID{Site: 1, Seq: 1}
	t2 := txn.ID{Site: 1, Seq: 2}
	gA := []sched.GrantInfo{{Path: "/a", Mode: lock.X}}
	gB := []sched.GrantInfo{{Path: "/b", Mode: lock.X}}
	h.OnAcquired(0, t1, 0, "d", true, gA)
	h.OnAcquired(0, t2, 0, "d", true, gB)
	h.OnAcquired(0, t2, 1, "d", true, gA)
	h.OnAcquired(0, t1, 1, "d", true, gB)
	h.OnFinished(t1, true)
	h.OnFinished(t2, false) // t2 aborted: cycle disappears
	if err := h.CheckSerializable(); err != nil {
		t.Fatalf("aborted txn still counted: %v", err)
	}
	if h.Committed() != 1 {
		t.Fatalf("committed = %d", h.Committed())
	}
}

func TestHistoryUndoneOpsIgnored(t *testing.T) {
	h := NewHistory()
	t1 := txn.ID{Site: 1, Seq: 1}
	t2 := txn.ID{Site: 1, Seq: 2}
	gA := []sched.GrantInfo{{Path: "/a", Mode: lock.X}}
	gB := []sched.GrantInfo{{Path: "/b", Mode: lock.X}}
	h.OnAcquired(0, t1, 0, "d", true, gA)
	h.OnAcquired(0, t2, 0, "d", true, gB)
	h.OnAcquired(0, t2, 1, "d", true, gA)
	h.OnAcquired(0, t1, 1, "d", true, gB)
	h.OnUndone(0, t1, 1) // t1's second op undone: edge t2->t1 vanishes
	h.OnFinished(t1, true)
	h.OnFinished(t2, true)
	if err := h.CheckSerializable(); err != nil {
		t.Fatalf("undone op still counted: %v", err)
	}
}

func TestFormatFigure(t *testing.T) {
	fig := Figure{
		Name: "f", Title: "Test figure", XLabel: "x", YLabel: "y",
		Series: []Series{
			{Label: "a", Points: []Point{{X: 1, Y: 2}, {X: 2, Y: 3}}},
			{Label: "b", Points: []Point{{X: 1, Y: 5}}},
		},
	}
	out := Format(fig)
	if !strings.Contains(out, "Test figure") || !strings.Contains(out, "2.00") {
		t.Fatalf("format:\n%s", out)
	}
	if !strings.Contains(out, "-") { // missing point placeholder
		t.Fatalf("missing placeholder:\n%s", out)
	}
}

func TestFig12SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	sc := Scale{BaseBytes: 24 << 10, ClientDiv: 10, Seed: 3, Latency: 50 * time.Microsecond}
	figs, err := Fig12(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 1 || len(figs[0].Series) != 2 {
		t.Fatalf("fig12 shape: %+v", figs)
	}
	for _, s := range figs[0].Series {
		if len(s.Points) != 10 {
			t.Fatalf("series %s has %d points", s.Label, len(s.Points))
		}
		// Cumulative: monotone non-decreasing.
		for i := 1; i < len(s.Points); i++ {
			if s.Points[i].Y < s.Points[i-1].Y {
				t.Fatalf("series %s not cumulative", s.Label)
			}
		}
	}
}

func TestFig9SmallScale(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment sweep in -short mode")
	}
	sc := Scale{BaseBytes: 24 << 10, ClientDiv: 10, Seed: 3, Latency: 50 * time.Microsecond}
	figs, err := Fig9(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("fig9 panels = %d", len(figs))
	}
	for _, fig := range figs {
		if len(fig.Series) != 2 {
			t.Fatalf("%s series = %d", fig.Name, len(fig.Series))
		}
		for _, s := range fig.Series {
			if len(s.Points) != 5 {
				t.Fatalf("%s/%s points = %d", fig.Name, s.Label, len(s.Points))
			}
		}
	}
}

func TestFig8Table(t *testing.T) {
	table, err := Fig8(64<<10, 1, []int{2, 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Fig. 8", "s0", "s1", "s2", "s3", "xmark#0", "KB"} {
		if !strings.Contains(table, want) {
			t.Fatalf("table missing %q:\n%s", want, table)
		}
	}
	if _, err := Fig8(1<<10, 1, []int{1000}); err == nil {
		t.Fatal("absurd site count accepted")
	}
}

func TestBuildClusterInvariants(t *testing.T) {
	p := quickParams(nil)
	cluster, err := BuildCluster(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()
	if len(cluster.Sites) != p.Sites {
		t.Fatalf("sites = %d", len(cluster.Sites))
	}
	if len(cluster.Docs) != p.Sites {
		t.Fatalf("partial replication must yield one fragment per site, got %d", len(cluster.Docs))
	}
	// Every fragment is held by exactly one site, and that site has it in
	// memory with at least one workload section.
	for _, d := range cluster.Docs {
		sites := cluster.Sites[0].Catalog().Sites(d.Name)
		if len(sites) != 1 {
			t.Fatalf("fragment %s at %v", d.Name, sites)
		}
		if len(d.Sections) == 0 {
			t.Fatalf("fragment %s has no sections", d.Name)
		}
		if _, err := cluster.Sites[sites[0]].Document(d.Name); err != nil {
			t.Fatalf("fragment %s not loaded at site %d", d.Name, sites[0])
		}
	}
}

func TestRunWithGuardAblationProtocol(t *testing.T) {
	res, err := Run(quickParams(func(p *Params) {
		p.Protocol = "xdgl-noguard"
		p.CheckSerializability = true
	}))
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed under xdgl-noguard")
	}
}

// TestCrashInjectionWorkload: a chaos run — a replica dies mid-persist
// under the auction workload; the run completes, the survivors keep
// committing, and the victim is verifiably dead.
func TestCrashInjectionWorkload(t *testing.T) {
	p := Params{
		Sites:       3,
		Clients:     6,
		TxPerClient: 8,
		UpdateTxPct: 100,
		BaseBytes:   32 << 10,
		Heartbeat:   5 * time.Millisecond,
		Crash:       &CrashSpec{Site: 1, Stage: CrashMidPersist},
		Seed:        11,
	}
	cluster, err := BuildCluster(p.withDefaults(), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	res := RunOn(context.Background(), cluster, p)
	if !cluster.Sites[1].Killed() {
		t.Fatal("crash spec never fired")
	}
	if res.Committed == 0 {
		t.Fatalf("no transaction committed around the crash: %+v", res)
	}
	// With total replication every post-crash write needs the dead site, so
	// the blast radius shows up as failed transactions — reads and
	// pre-crash writes account for the commits.
	if res.Committed+res.Aborted+res.Failed != res.Total {
		t.Fatalf("lost transactions: %+v", res)
	}
}

// TestQuorumReplicationLagWorkload drives the standard mixed workload in
// quorum-replication mode with every follower's apply delayed by the
// fault-injection hook: commits must wait out a follower ack (quorum 2 of 3)
// and snapshot readers run against followers that knowingly lag, exercising
// the stale-refusal reroute under load. A healthy quorum means no
// transaction may FAIL — lag converts into latency, not unavailability.
func TestQuorumReplicationLagWorkload(t *testing.T) {
	p := Params{
		Sites: 3, Clients: 6, TxPerClient: 4, OpsPerTx: 3,
		UpdateTxPct: 100, UpdateOpPct: 50, ReadOnlyPct: 40,
		BaseBytes: 24 << 10, Partial: false, Protocol: "xdgl", Seed: 11,
		Heartbeat:    5 * time.Millisecond,
		Replication:  "quorum",
		WriteQuorum:  2,
		ReplApplyLag: time.Millisecond,
	}
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatalf("nothing committed under replication lag: %+v", res)
	}
	if res.Failed != 0 {
		t.Fatalf("%d transactions failed despite a reachable quorum: %+v", res.Failed, res)
	}
	if res.Committed+res.Aborted+res.Failed != res.Total {
		t.Fatalf("lost transactions: %+v", res)
	}
	if res.ReadOnlyCommitted == 0 {
		t.Fatal("no read-only transaction committed against the lagging followers")
	}
}

// TestSnapshotReadersVsLockedReaders pits two workloads with the same
// read/write balance against each other on one hot document: in A the
// readers take the locking path (pure-query transactions still acquire
// read locks and can deadlock with writers); in B the same share of
// transactions goes through the MVCC snapshot path. Snapshot readers
// must never abort — they hold no locks and add no wait-for edges, so
// they cannot be deadlock victims — and total deadlock victims must not
// exceed the locked run's.
func TestSnapshotReadersVsLockedReaders(t *testing.T) {
	base := Params{
		Sites: 2, Clients: 8, TxPerClient: 4, OpsPerTx: 5,
		UpdateOpPct: 100, BaseBytes: 16 << 10, Docs: 1,
		Partial: false, Protocol: "xdgl", Seed: 11,
		OpDelay: 300 * time.Microsecond,
	}

	locked := base
	locked.UpdateTxPct = 50 // half the transactions are pure queries, on the locking path

	snap := base
	snap.UpdateTxPct = 100 // every locking transaction writes...
	snap.ReadOnlyPct = 50  // ...because the read half rides the snapshot path

	lockedRes, err := Run(locked)
	if err != nil {
		t.Fatal(err)
	}
	snapRes, err := Run(snap)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("locked:   %s", lockedRes)
	t.Logf("snapshot: %s", snapRes)

	if snapRes.ReadOnlyCommitted == 0 {
		t.Fatal("no read-only transaction committed — snapshot path never exercised")
	}
	if snapRes.SnapshotReads == 0 {
		t.Fatal("no snapshot reads recorded")
	}
	if snapRes.ReadOnlyAborted != 0 {
		t.Fatalf("snapshot readers aborted %d times; lock-free readers cannot be deadlock victims",
			snapRes.ReadOnlyAborted)
	}
	if snapRes.Deadlocks > lockedRes.Deadlocks {
		t.Fatalf("snapshot run saw more deadlock victims (%d) than the locked run (%d)",
			snapRes.Deadlocks, lockedRes.Deadlocks)
	}
}

// TestSnapshotHotDocZipfWorkload smoke-tests the skewed-access knob
// together with the read-only mix: the run must complete and account for
// every transaction.
func TestSnapshotHotDocZipfWorkload(t *testing.T) {
	p := quickParams(func(p *Params) {
		p.Docs = 4
		p.HotDocZipf = 1.5
		p.ReadOnlyPct = 50
		p.UpdateTxPct = 80
	})
	res, err := Run(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed+res.Aborted+res.Failed != res.Total {
		t.Fatalf("accounting broken: %+v", res)
	}
	if res.Committed == 0 {
		t.Fatal("nothing committed")
	}
	if res.ReadOnlyCommitted == 0 {
		t.Fatal("no read-only transaction committed")
	}
}

// TestLatencyProfileBreakdown pins the registry-backed per-phase view:
// LatencyProfile arms every site, fills Result.Breakdown from the merged
// histograms, and String() renders the phase row ablation runs compare on.
func TestLatencyProfileBreakdown(t *testing.T) {
	res, err := Run(quickParams(func(p *Params) {
		p.LatencyProfile = true
		p.Clients = 6
		p.TxPerClient = 4
		p.UpdateTxPct = 60
		p.UpdateOpPct = 60
	}))
	if err != nil {
		t.Fatal(err)
	}
	bd := res.Breakdown
	if bd == nil {
		t.Fatal("LatencyProfile set but Result.Breakdown is nil")
	}
	// Every transaction executes operations, so the exec phase must have
	// observations; lock-wait and 2PC phases may legitimately be zero on an
	// uncontended or single-site run, so only exec is asserted non-zero.
	if bd.Exec.P99Ms <= 0 {
		t.Fatalf("exec phase unobserved: %+v", bd)
	}
	if bd.Exec.P50Ms > bd.Exec.P99Ms {
		t.Fatalf("p50 %.3f > p99 %.3f", bd.Exec.P50Ms, bd.Exec.P99Ms)
	}
	if row := res.String(); !strings.Contains(row, "phase ms") {
		t.Fatalf("String() missing breakdown row:\n%s", row)
	}
}
