// Package harness implements the evaluation substrate of the paper: the
// DTXTester client simulator (clients, transactions-per-client,
// operations-per-transaction, update percentages), metric collection
// (response time, deadlock counts, commits over time), an offline
// conflict-serializability checker, and the experiment definitions that
// regenerate every results figure of the evaluation section (Figs. 9–12).
package harness

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/lock"
	"repro/internal/sched"
	"repro/internal/txn"
)

// footprintKey locates one operation execution.
type footprintKey struct {
	site int
	id   txn.ID
	op   int
}

// footprint is the lock footprint of one executed operation.
type footprint struct {
	seq    int64 // global acquisition order
	doc    string
	grants []sched.GrantInfo
}

// History records lock footprints of executed operations and checks that
// the committed transactions form a conflict-serializable history: two
// committed transactions conflict if, at the same site, they held
// incompatible lock modes on the same DataGuide path with non-disjoint
// guards (the lock table's own conflict rule); the conflict edge is
// oriented by acquisition order (under strict 2PL the later one can only
// have acquired after the earlier one released, i.e. committed). An acyclic
// conflict graph certifies serializability.
type History struct {
	mu        sync.Mutex
	seq       int64
	events    map[footprintKey]footprint
	committed map[txn.ID]bool
}

var _ sched.HistoryHook = (*History)(nil)

// NewHistory creates an empty recorder; share one across all sites of a
// cluster.
func NewHistory() *History {
	return &History{
		events:    make(map[footprintKey]footprint),
		committed: make(map[txn.ID]bool),
	}
}

// OnAcquired implements sched.HistoryHook.
func (h *History) OnAcquired(site int, id txn.ID, op int, doc string, write bool, grants []sched.GrantInfo) {
	h.mu.Lock()
	h.seq++
	h.events[footprintKey{site: site, id: id, op: op}] = footprint{seq: h.seq, doc: doc, grants: grants}
	h.mu.Unlock()
}

// OnUndone implements sched.HistoryHook.
func (h *History) OnUndone(site int, id txn.ID, op int) {
	h.mu.Lock()
	delete(h.events, footprintKey{site: site, id: id, op: op})
	h.mu.Unlock()
}

// OnFinished implements sched.HistoryHook.
func (h *History) OnFinished(id txn.ID, committed bool) {
	h.mu.Lock()
	if committed {
		h.committed[id] = true
	} else {
		// Drop every footprint of an aborted transaction: its effects were
		// undone and do not participate in the committed history.
		for k := range h.events {
			if k.id == id {
				delete(h.events, k)
			}
		}
	}
	h.mu.Unlock()
}

// Committed returns the number of committed transactions recorded.
func (h *History) Committed() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.committed)
}

// CheckSerializable verifies the committed history is conflict-serializable
// and that conflicting grant windows never interleave (the strict-2PL
// signature). It returns an error describing the first violation found.
func (h *History) CheckSerializable() error {
	h.mu.Lock()
	defer h.mu.Unlock()

	// Aggregate per (site, doc, path): list of (txn, mode, guard, seq).
	type hold struct {
		id    txn.ID
		mode  lock.Mode
		guard *lock.Guard
		seq   int64
	}
	holdsAt := make(map[string][]hold)
	for k, fp := range h.events {
		if !h.committed[k.id] {
			continue
		}
		for _, g := range fp.grants {
			key := fmt.Sprintf("%d\x00%s\x00%s", k.site, fp.doc, g.Path)
			holdsAt[key] = append(holdsAt[key], hold{id: k.id, mode: g.Mode, guard: g.Guard, seq: fp.seq})
		}
	}

	// Build conflict edges ordered by acquisition sequence.
	type pair struct{ a, b txn.ID }
	edges := make(map[pair]bool)
	nodes := make(map[txn.ID]bool)
	for _, hs := range holdsAt {
		sort.Slice(hs, func(i, j int) bool { return hs[i].seq < hs[j].seq })
		for i := 0; i < len(hs); i++ {
			for j := i + 1; j < len(hs); j++ {
				if hs[i].id == hs[j].id {
					continue
				}
				// Mirror the lock table's conflict rule exactly: incompatible
				// modes on one path do NOT conflict when their XDGL guards are
				// provably disjoint — the table grants such pairs concurrently,
				// so treating them as conflicts here would orient edges between
				// non-conflicting transactions and manufacture spurious cycles.
				if !lock.Compatible(hs[i].mode, hs[j].mode) && !hs[i].guard.Disjoint(hs[j].guard) {
					edges[pair{hs[i].id, hs[j].id}] = true
					nodes[hs[i].id] = true
					nodes[hs[j].id] = true
				}
			}
		}
	}

	// Cycle check via DFS with colors.
	adj := make(map[txn.ID][]txn.ID)
	for e := range edges {
		adj[e.a] = append(adj[e.a], e.b)
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[txn.ID]int, len(nodes))
	var cycleErr error
	var dfs func(u txn.ID) bool
	dfs = func(u txn.ID) bool {
		color[u] = grey
		for _, v := range adj[u] {
			switch color[v] {
			case white:
				if dfs(v) {
					return true
				}
			case grey:
				cycleErr = fmt.Errorf("harness: conflict cycle through %s and %s — history not serializable", u, v)
				return true
			}
		}
		color[u] = black
		return false
	}
	ids := make([]txn.ID, 0, len(nodes))
	for id := range nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		if color[id] == white && dfs(id) {
			return cycleErr
		}
	}
	return nil
}
