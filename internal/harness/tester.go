package harness

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmark"
	"repro/internal/xmltree"
)

// Params are the workload dials of the paper's experiments (§3.2): "each
// client contains 5 transactions with 5 operations each", update-transaction
// and update-operation percentages, base size, number of sites and clients,
// and the replication mode.
type Params struct {
	Sites       int
	Clients     int
	TxPerClient int
	OpsPerTx    int
	// UpdateTxPct is the percentage of transactions that are update
	// transactions; UpdateOpPct is the percentage of update operations
	// inside an update transaction (the paper fixes this at 20%).
	UpdateTxPct int
	UpdateOpPct int
	// ReadOnlyPct is the percentage of transactions submitted as read-only
	// snapshot transactions (SubmitReadOnlyCtx): all-query, served from the
	// MVCC version chains with no locks and no wait-for edges. The rest
	// follow UpdateTxPct on the locking path. The extra random draw happens
	// only when this knob is set, so zero preserves the exact workloads of
	// earlier seeds.
	ReadOnlyPct int
	// HotDocZipf, when > 1, skews the per-operation document choice with a
	// Zipf distribution (parameter s = HotDocZipf) over the document list,
	// making document 0 the hot document — the contention dial for
	// reader-versus-writer experiments. ≤ 1 keeps the uniform pick.
	HotDocZipf float64
	// HotKeyZipf, when > 1, skews the per-operation section choice inside the
	// picked document with a Zipf distribution (parameter s = HotKeyZipf),
	// making the document's first section hot — the intra-document contention
	// dial the adaptive scheduler reacts to. ≤ 1 keeps the uniform pick. The
	// skew generator replaces (never adds to) the uniform section draw, and
	// is only built when the knob is set, so zero preserves the exact
	// workloads of earlier seeds.
	HotKeyZipf float64
	// AnalyticsPct is the percentage of read transactions issued as analytics
	// transactions: every operation is a whole-section descendant scan
	// (xmark.ScanQueryFor) instead of the OLTP query mix. Under fine-grained
	// protocols those scans take wide read-lock sets and collide with every
	// writer in the section — the mixed OLTP/analytics dial for adaptive
	// scenarios. The extra random draw happens only when this knob is set.
	AnalyticsPct int
	// BaseBytes is the generated database size in bytes (the paper's MB
	// dial, scaled down: the in-process substrate keeps ratios, not
	// absolute sizes).
	BaseBytes int
	// Docs is the number of independently generated base documents (each of
	// BaseBytes), default 1. Every document is its own scheduling domain at
	// a site, so spreading one workload over several documents measures the
	// per-document scaling of the scheduler. Clients pick a document
	// uniformly per operation.
	Docs int
	// Partial selects partial replication (size-balanced fragments, one
	// site each) instead of total replication (every document everywhere).
	Partial bool
	// Protocol is "xdgl", "node2pl" or "doclock" — or "adaptive", which
	// starts every document under node2pl and lets the run-time policy
	// (sched.AdaptiveConfig) move it along the granularity ladder from
	// observed contention.
	Protocol string
	// AdaptiveWindow overrides the adaptive policy's sampling window
	// (Protocol "adaptive" only; zero keeps the scheduler default).
	AdaptiveWindow time.Duration
	// Latency is the synthetic one-way network latency between sites.
	Latency time.Duration
	// OpDelay is the client think time between operations.
	OpDelay time.Duration
	// DeadlockInterval is the period of the distributed deadlock detector.
	DeadlockInterval time.Duration
	// Seed makes the workload deterministic.
	Seed int64
	// CheckSerializability attaches the history recorder and verifies the
	// committed history after the run (slows large runs slightly).
	CheckSerializability bool
	// VictimOldest flips the deadlock victim rule to oldest-in-cycle (the
	// paper's rule is newest); an ablation knob.
	VictimOldest bool
	// Heartbeat enables failure detection with the given period (zero
	// disables it, the default). Required for Crash runs: it is what lets
	// the surviving sites detect the kill, resolve the victim's orphaned
	// transactions and route reads around it.
	Heartbeat time.Duration
	// Crash injects a crash-point fault: the chosen 2PC stage's Nth firing
	// at the chosen site kills that site abruptly mid-run (sched.CrashHooks
	// wired by BuildCluster). The workload keeps running against the
	// survivors; the run's Result then reflects the failure blast radius —
	// the class of chaos scenario the throughput benchmarks cannot reach.
	Crash *CrashSpec
	// Replication selects the write-replication mode ("" / "eager" /
	// "quorum", sched.Config.Replication) and WriteQuorum the ack threshold
	// in quorum mode (zero = majority).
	Replication string
	WriteQuorum int
	// ReplApplyLag injects a fixed delay at every follower before it applies
	// a shipped replication span (sched.CrashHooks.BeforeReplApply, armed at
	// EVERY site) — the fault-injection dial for bounded-staleness and
	// quorum-under-lag chaos runs.
	ReplApplyLag time.Duration
	// ValuePredPct is the percentage of read operations issued as value
	// point lookups (xmark.PredicateQueryFor — an equality predicate over the
	// section's id key) instead of the structural query mix. The extra
	// random draws happen only when this knob is set, so zero preserves the
	// exact workloads of earlier seeds.
	ValuePredPct int
	// ValueZipf, when > 1, skews the looked-up id with a Zipf distribution
	// (parameter s = ValueZipf) over the id domain, making low ids hot — the
	// skew dial for index-hit-rate experiments. ≤ 1 keeps the uniform pick.
	ValueZipf float64
	// IndexedKeys and AutoIndexAfter configure each site's value indexes
	// (sched.Config.IndexedKeys / AutoIndexAfter): pre-declared keys and the
	// scan-miss threshold for auto-indexing. Empty/zero disables indexing.
	IndexedKeys    []string
	AutoIndexAfter int
	// LatencyProfile arms every site's metrics registry and attaches a
	// per-phase latency breakdown (p50/p99 lock-wait, operation execute, 2PC
	// phases, persist Save) to the Result — the registry-backed view of where
	// a run's response time went. Off by default: arming enables the gated
	// histogram observations on every hot path.
	LatencyProfile bool
}

// CrashStage names a 2PC stage boundary a CrashSpec can target.
type CrashStage string

// Crash stages, in protocol order.
const (
	// CrashBeforeDecision kills a coordinator after its transaction
	// executed everywhere, before the commit decision record.
	CrashBeforeDecision CrashStage = "before-decision"
	// CrashAfterDecision kills a coordinator between its durable decision
	// record and the commit fan-out.
	CrashAfterDecision CrashStage = "after-decision"
	// CrashBeforeIntent kills a participant as a consolidation request
	// arrives, before its journal intent record.
	CrashBeforeIntent CrashStage = "before-intent"
	// CrashAfterIntent kills a participant between its durable intent
	// record and the persist pipeline.
	CrashAfterIntent CrashStage = "after-intent"
	// CrashMidPersist kills a site between a commit acknowledgement and the
	// covering Store write.
	CrashMidPersist CrashStage = "mid-persist"
	// CrashBeforeSwitch kills a site at an adaptive protocol switch's
	// quiescent point: the document's lock table is drained and admissions
	// are blocked, but the new protocol is not yet installed. Protocol
	// choice is never persisted, so the restarted site must come back under
	// the configured default.
	CrashBeforeSwitch CrashStage = "before-switch"
)

// CrashSpec selects a crash point: the (After+1)th firing of Stage at Site
// kills the site.
type CrashSpec struct {
	Site  int
	Stage CrashStage
	After int
}

func (p Params) withDefaults() Params {
	if p.Sites <= 0 {
		p.Sites = 4
	}
	if p.Clients <= 0 {
		p.Clients = 10
	}
	if p.TxPerClient <= 0 {
		p.TxPerClient = 5
	}
	if p.OpsPerTx <= 0 {
		p.OpsPerTx = 5
	}
	if p.UpdateOpPct <= 0 {
		p.UpdateOpPct = 20
	}
	if p.BaseBytes <= 0 {
		p.BaseBytes = 128 << 10
	}
	if p.Docs <= 0 {
		p.Docs = 1
	}
	if p.Protocol == "" {
		p.Protocol = "xdgl"
	}
	if p.DeadlockInterval <= 0 {
		p.DeadlockInterval = 10 * time.Millisecond
	}
	return p
}

// Result aggregates the metrics of one run — the quantities the paper's
// figures plot.
type Result struct {
	Params    Params
	Total     int
	Committed int
	Aborted   int
	Failed    int
	// Deadlocks counts transactions aborted as deadlock victims, the
	// paper's "number of deadlocks".
	Deadlocks int
	// Response-time statistics over committed transactions, in
	// milliseconds (the paper reports mean response time).
	MeanRespMs float64
	P95RespMs  float64
	// Wall is the wall-clock duration of the whole run.
	Wall time.Duration
	// CommitTimes are offsets from run start of every commit, sorted — the
	// raw series behind Fig. 12's "transactions consolidated at each time
	// interval".
	CommitTimes []time.Duration
	// ThroughputTPS is committed transactions per wall-clock second.
	ThroughputTPS float64
	// ReadOnlyCommitted counts committed read-only snapshot transactions (a
	// subset of Committed); ReadOnlyAborted the ones that did not commit.
	ReadOnlyCommitted int
	ReadOnlyAborted   int
	// SnapshotReads and SnapshotPublishes aggregate the per-site MVCC
	// counters: queries served from pinned versions, and version
	// materialisations.
	SnapshotReads     int64
	SnapshotPublishes int64
	// IndexedQueries aggregates the per-site count of queries answered from
	// a value index instead of an extent scan.
	IndexedQueries int64
	// ProtocolSwitches aggregates the per-site count of completed adaptive
	// protocol switches (zero unless Protocol is "adaptive").
	ProtocolSwitches int64
	// Breakdown is the per-phase latency view, filled when
	// Params.LatencyProfile armed the registries.
	Breakdown *LatencyBreakdown
}

// PhaseLatency is one phase's merged-across-sites latency quantiles, in
// milliseconds. NaN-free: phases with no observations report zero.
type PhaseLatency struct {
	P50Ms float64
	P99Ms float64
}

// LatencyBreakdown decomposes a run's response time into the instrumented
// phases, computed from the sites' metric registries (obs.Quantile over the
// merged histograms of every site, and every document for the per-document
// families).
type LatencyBreakdown struct {
	LockWait      PhaseLatency // blocked-on-lock time per granted wait
	Exec          PhaseLatency // per-operation execute (grant + apply)
	DecisionWrite PhaseLatency // 2PC durable decision record
	CommitFanout  PhaseLatency // 2PC commit fan-out to participants
	QuorumAck     PhaseLatency // quorum-replication ack wait (quorum mode)
	PersistSave   PhaseLatency // background Store.Save
}

// DocInfo describes one targetable document: its name and the workload
// sections it holds, so the client simulator routes operations to documents
// that contain the data they touch (the fragmentation-predicate role).
type DocInfo struct {
	Name     string
	Sections []string
}

// Cluster is a running DTX deployment plus the routing information the
// client simulator needs.
type Cluster struct {
	Sites   []*sched.Site
	Network *transport.Network
	Docs    []DocInfo // documents clients may target
	catalog *replica.Catalog

	// Crash-run scratch state: the victim's throwaway journal directory,
	// removed on Stop (the journal itself is closed by its site).
	journalDir string
}

// Stop shuts the cluster down.
func (c *Cluster) Stop() {
	for _, s := range c.Sites {
		s.Stop()
	}
	if c.journalDir != "" {
		os.RemoveAll(c.journalDir)
	}
}

// BuildCluster constructs the deployment for the given parameters: sites,
// protocol, catalog, network (with latency), data generation and
// allocation. The returned cluster is ready to accept transactions.
func BuildCluster(p Params, hook sched.HistoryHook) (*Cluster, error) {
	p = p.withDefaults()
	base, adaptive := p.Protocol, false
	if base == "adaptive" {
		// Adaptive runs start every document on the ladder's middle rung and
		// let the policy climb toward xdgl or descend toward doclock from
		// observed contention.
		base, adaptive = "node2pl", true
	}
	proto, err := lock.ByName(base)
	if err != nil {
		return nil, err
	}
	net := transport.NewNetwork()
	net.SetLatency(p.Latency)
	catalog := replica.NewCatalog()
	ids := make([]int, p.Sites)
	for i := range ids {
		ids[i] = i
	}
	sites := make([]*sched.Site, p.Sites)
	cluster := &Cluster{Sites: sites, Network: net, catalog: catalog}
	var crashHooks *sched.CrashHooks
	if p.Crash != nil {
		crashHooks = &sched.CrashHooks{}
	}
	for i := range sites {
		cfg := sched.Config{
			SiteID:            i,
			Sites:             ids,
			Protocol:          proto,
			Catalog:           catalog,
			DeadlockInterval:  p.DeadlockInterval,
			OpDelay:           p.OpDelay,
			History:           hook,
			VictimOldest:      p.VictimOldest,
			HeartbeatInterval: p.Heartbeat,
			HeartbeatMisses:   2,
			Replication:       p.Replication,
			WriteQuorum:       p.WriteQuorum,
			IndexedKeys:       p.IndexedKeys,
			AutoIndexAfter:    p.AutoIndexAfter,
			Adaptive:          sched.AdaptiveConfig{Enabled: adaptive, Window: p.AdaptiveWindow},
		}
		if p.ReplApplyLag > 0 {
			// Each site gets its own hook struct: the crash victim's kill
			// closures must not be shared with the other sites.
			cfg.Hooks = &sched.CrashHooks{BeforeReplApply: func(string, int) { time.Sleep(p.ReplApplyLag) }}
		}
		if p.Crash != nil && i == p.Crash.Site {
			journal, dir, err := journalFor(p, i)
			if err != nil {
				return nil, err
			}
			cfg.Journal = journal
			cluster.journalDir = dir
			if cfg.Hooks != nil {
				crashHooks.BeforeReplApply = cfg.Hooks.BeforeReplApply
			}
			cfg.Hooks = crashHooks
		}
		sites[i] = sched.New(cfg)
		if p.LatencyProfile {
			sites[i].Metrics().Arm()
		}
		if err := sites[i].AttachNetwork(net); err != nil {
			return nil, err
		}
	}
	if p.Crash != nil {
		armCrash(p.Crash, crashHooks, sites)
	}

	bases := make([]*xmltree.Document, p.Docs)
	for d := range bases {
		name := "xmark"
		if p.Docs > 1 {
			name = fmt.Sprintf("xmark%d", d)
		}
		bases[d] = xmark.Gen(xmark.Config{Name: name, TargetBytes: p.BaseBytes, Seed: p.Seed + int64(d)*271})
	}
	var docs []DocInfo
	if p.Partial {
		perSite, err := replica.AllocatePartial(catalog, bases, p.Sites)
		if err != nil {
			return nil, err
		}
		for siteID, frags := range perSite {
			for _, fd := range frags {
				if err := sites[siteID].AddDocument(fd); err != nil {
					return nil, err
				}
				docs = append(docs, DocInfo{Name: fd.Name, Sections: xmark.Sections(fd)})
			}
		}
		sort.Slice(docs, func(i, j int) bool { return docs[i].Name < docs[j].Name })
	} else {
		for _, base := range bases {
			for _, s := range sites {
				if err := s.AddDocument(base.Clone()); err != nil {
					return nil, err
				}
			}
			docs = append(docs, DocInfo{Name: base.Name, Sections: xmark.Sections(base)})
		}
	}
	cluster.Docs = docs
	return cluster, nil
}

// journalFor opens a throwaway journal for the crash victim when the
// targeted stage is a journal-record boundary — the intent hooks only exist
// on the journaled commit path. The directory is removed by Cluster.Stop.
func journalFor(p Params, site int) (*store.Journal, string, error) {
	if p.Crash.Stage != CrashBeforeIntent && p.Crash.Stage != CrashAfterIntent {
		return nil, "", nil
	}
	dir, err := os.MkdirTemp("", "dtx-crash")
	if err != nil {
		return nil, "", fmt.Errorf("harness: crash journal: %w", err)
	}
	j, err := store.OpenJournal(filepath.Join(dir, fmt.Sprintf("site%d.log", site)))
	if err != nil {
		os.RemoveAll(dir)
		return nil, "", fmt.Errorf("harness: crash journal: %w", err)
	}
	return j, dir, nil
}

// armCrash installs the kill closure for the configured stage: the
// (After+1)th firing at the victim site crashes it.
func armCrash(spec *CrashSpec, hooks *sched.CrashHooks, sites []*sched.Site) {
	if spec.Site < 0 || spec.Site >= len(sites) {
		return
	}
	victim := sites[spec.Site]
	var n int64
	fire := func() {
		if atomic.AddInt64(&n, 1) == int64(spec.After)+1 {
			victim.Kill()
		}
	}
	switch spec.Stage {
	case CrashBeforeDecision:
		hooks.BeforeDecision = func(txn.ID) { fire() }
	case CrashAfterDecision:
		hooks.AfterDecision = func(txn.ID) { fire() }
	case CrashBeforeIntent:
		hooks.BeforeIntent = func(txn.ID, []string) { fire() }
	case CrashAfterIntent:
		hooks.AfterIntent = func(txn.ID, []string) { fire() }
	case CrashMidPersist:
		hooks.BeforeSave = func(string) { fire() }
	case CrashBeforeSwitch:
		hooks.BeforeProtocolSwitch = func(string, string, string) { fire() }
	}
}

// Run executes the DTXTester workload against a fresh cluster and collects
// metrics. Aborted transactions are not resubmitted, matching the paper
// ("it is the responsibility of the application client to decide if it
// resubmits").
func Run(p Params) (*Result, error) {
	return RunCtx(context.Background(), p)
}

// RunCtx is Run bounded by a context: when it is cancelled, in-flight
// transactions abort (releasing their locks) and clients stop submitting,
// so a runaway experiment can be cut short cleanly.
func RunCtx(ctx context.Context, p Params) (*Result, error) {
	p = p.withDefaults()
	var hook *History
	var schedHook sched.HistoryHook
	if p.CheckSerializability {
		hook = NewHistory()
		schedHook = hook
	}
	cluster, err := BuildCluster(p, schedHook)
	if err != nil {
		return nil, err
	}
	defer cluster.Stop()
	res := RunOn(ctx, cluster, p)
	if hook != nil {
		if err := hook.CheckSerializable(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// RunOn drives the workload clients against an existing cluster and
// aggregates metrics. RunCtx composes it with BuildCluster; chaos tests
// call it directly, keeping the cluster handle so they can inspect (or
// kill) individual sites around the run.
func RunOn(ctx context.Context, cluster *Cluster, p Params) *Result {
	p = p.withDefaults()
	res := &Result{Params: p, Total: p.Clients * p.TxPerClient}
	var latencies []time.Duration
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < p.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(p.Seed + int64(c)*7919))
			site := cluster.Sites[c%len(cluster.Sites)]
			// Zipf-skewed document choice (optional): the generator is per
			// client and fed from the client's own seeded rng, so runs stay
			// deterministic. rand.NewZipf requires s > 1.
			var zipf *rand.Zipf
			if p.HotDocZipf > 1 && len(cluster.Docs) > 1 {
				zipf = rand.NewZipf(rng, p.HotDocZipf, 1, uint64(len(cluster.Docs)-1))
			}
			pick := func() DocInfo {
				if zipf != nil {
					return cluster.Docs[zipf.Uint64()]
				}
				return cluster.Docs[rng.Intn(len(cluster.Docs))]
			}
			// Value skew for point lookups, same per-client determinism as the
			// document Zipf. Only consulted when ValuePredPct fires, so runs
			// with the knob off draw nothing extra from the rng stream.
			var valZipf *rand.Zipf
			if p.ValuePredPct > 0 && p.ValueZipf > 1 {
				valZipf = rand.NewZipf(rng, p.ValueZipf, 1, xmark.PredicateQueryRange-1)
			}
			pickVal := func() int64 {
				if valZipf != nil {
					return int64(valZipf.Uint64())
				}
				return int64(rng.Intn(xmark.PredicateQueryRange))
			}
			// Hot-key skew over the sections of the picked document. The Zipf
			// generator replaces the uniform section draw (one draw either
			// way), keeping the rest of the client's rng stream aligned with
			// unskewed runs of the same seed.
			var secZipf *rand.Zipf
			if p.HotKeyZipf > 1 {
				secZipf = rand.NewZipf(rng, p.HotKeyZipf, 1, 255)
			}
			pickSection := func(doc DocInfo) string {
				if len(doc.Sections) == 0 {
					return "people"
				}
				if secZipf != nil {
					return doc.Sections[int(secZipf.Uint64())%len(doc.Sections)]
				}
				return doc.Sections[rng.Intn(len(doc.Sections))]
			}
			for t := 0; t < p.TxPerClient; t++ {
				if ctx.Err() != nil {
					return
				}
				readOnly := p.ReadOnlyPct > 0 && rng.Intn(100) < p.ReadOnlyPct
				ops := buildTxn(p, readOnly, pick, pickVal, pickSection, rng, int64(c)*1000+int64(t))
				t0 := time.Now()
				var r *sched.Result
				var err error
				if readOnly {
					r, err = site.SubmitReadOnlyCtx(ctx, ops)
				} else {
					r, err = site.SubmitCtx(ctx, ops)
				}
				lat := time.Since(t0)
				mu.Lock()
				if err != nil {
					res.Failed++
					mu.Unlock()
					continue
				}
				switch r.State {
				case txn.Committed:
					res.Committed++
					if readOnly {
						res.ReadOnlyCommitted++
					}
					res.CommitTimes = append(res.CommitTimes, time.Since(start))
					latencies = append(latencies, lat)
					res.MeanRespMs += float64(lat.Microseconds()) / 1000.0
				case txn.Aborted:
					res.Aborted++
					if readOnly {
						res.ReadOnlyAborted++
					}
				default:
					res.Failed++
					if readOnly {
						res.ReadOnlyAborted++
					}
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	res.Wall = time.Since(start)

	// Per-site stats: deadlock-victim aborts and MVCC snapshot counters.
	for _, s := range cluster.Sites {
		st := s.Stats()
		res.Deadlocks += int(st.DeadlockAborts)
		res.SnapshotReads += st.SnapshotReads
		res.SnapshotPublishes += st.SnapshotPublishes
		res.IndexedQueries += st.IndexedQueries
		res.ProtocolSwitches += st.ProtocolSwitches
	}
	if res.Committed > 0 {
		res.MeanRespMs /= float64(res.Committed)
		res.ThroughputTPS = float64(res.Committed) / res.Wall.Seconds()
	}
	sort.Slice(res.CommitTimes, func(i, j int) bool { return res.CommitTimes[i] < res.CommitTimes[j] })
	res.P95RespMs = p95(latencies)
	if p.LatencyProfile {
		res.Breakdown = collectBreakdown(cluster)
	}
	return res
}

// collectBreakdown merges each phase's histograms across every site (and
// every document, for the per-document families) and reads the p50/p99
// quantiles. Registry accessors are get-or-return, so looking a family up by
// its exposition name yields the very histograms the schedulers observe into.
func collectBreakdown(cluster *Cluster) *LatencyBreakdown {
	var lockWait, exec, decision, fanout, quorum, persist []*obs.Histogram
	for _, s := range cluster.Sites {
		reg := s.Metrics()
		lockWait = append(lockWait, reg.HistogramVec("dtx_lock_wait_seconds", "", "doc", obs.LatencyBuckets).Children()...)
		exec = append(exec, reg.HistogramVec("dtx_op_exec_seconds", "", "doc", obs.LatencyBuckets).Children()...)
		decision = append(decision, reg.Histogram("dtx_2pc_decision_write_seconds", "", obs.LatencyBuckets))
		fanout = append(fanout, reg.Histogram("dtx_2pc_commit_fanout_seconds", "", obs.LatencyBuckets))
		quorum = append(quorum, reg.Histogram("dtx_2pc_quorum_ack_seconds", "", obs.LatencyBuckets))
		persist = append(persist, reg.HistogramVec("dtx_persist_save_seconds", "", "doc", obs.LatencyBuckets).Children()...)
	}
	return &LatencyBreakdown{
		LockWait:      phaseLatency(lockWait),
		Exec:          phaseLatency(exec),
		DecisionWrite: phaseLatency(decision),
		CommitFanout:  phaseLatency(fanout),
		QuorumAck:     phaseLatency(quorum),
		PersistSave:   phaseLatency(persist),
	}
}

// phaseLatency reads p50/p99 in milliseconds from merged histograms,
// mapping the NaN of an unobserved phase to zero.
func phaseLatency(hists []*obs.Histogram) PhaseLatency {
	ms := func(q float64) float64 {
		v := obs.Quantile(q, hists...)
		if math.IsNaN(v) {
			return 0
		}
		return v * 1000
	}
	return PhaseLatency{P50Ms: ms(0.5), P99Ms: ms(0.99)}
}

// p95 returns the 95th-percentile latency in milliseconds.
func p95(latencies []time.Duration) float64 {
	if len(latencies) == 0 {
		return 0
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	idx := len(latencies) * 95 / 100
	if idx >= len(latencies) {
		idx = len(latencies) - 1
	}
	return float64(latencies[idx].Microseconds()) / 1000.0
}

// buildTxn assembles one client transaction per the workload percentages.
// Each operation picks a document (fragment) and then a query or update
// against a section that document actually holds (the section choice — and
// any hot-key skew — lives in pickSection). A read-only transaction is all
// queries; the update draw still happens so the rng stream stays aligned
// across the read-only split. With ValuePredPct set, that share of the reads
// become id point lookups (value picked by pickVal) — the shape the value
// index serves. With AnalyticsPct set, that share of the read transactions
// become whole-section scans.
func buildTxn(p Params, readOnly bool, pick func() DocInfo, pickVal func() int64, pickSection func(DocInfo) string, rng *rand.Rand, uniq int64) []txn.Operation {
	isUpdateTxn := rng.Intn(100) < p.UpdateTxPct && !readOnly
	// Analytics draw only for read transactions, and only when the knob is
	// set — update transactions short-circuit before touching the rng, the
	// same pattern the isUpdateTxn case below uses.
	isAnalyticsTxn := p.AnalyticsPct > 0 && !isUpdateTxn && rng.Intn(100) < p.AnalyticsPct
	ops := make([]txn.Operation, 0, p.OpsPerTx)
	for i := 0; i < p.OpsPerTx; i++ {
		doc := pick()
		section := pickSection(doc)
		switch {
		case isUpdateTxn && rng.Intn(100) < p.UpdateOpPct:
			u := xmark.UpdateFor(section, uniq*100+int64(i), rng)
			ops = append(ops, txn.NewUpdate(doc.Name, u))
		case isAnalyticsTxn:
			ops = append(ops, txn.NewQuery(doc.Name, xmark.ScanQueryFor(section)))
		case p.ValuePredPct > 0 && rng.Intn(100) < p.ValuePredPct:
			ops = append(ops, txn.NewQuery(doc.Name, xmark.PredicateQueryFor(section, pickVal())))
		default:
			ops = append(ops, txn.NewQuery(doc.Name, xmark.QueryFor(section, rng)))
		}
	}
	return ops
}

// String renders the result as one row of a paper-style table.
func (r *Result) String() string {
	row := fmt.Sprintf("clients=%d sites=%d upd%%=%d base=%dKB partial=%v proto=%-7s | resp=%.2fms commits=%d aborts=%d deadlocks=%d tps=%.1f wall=%v",
		r.Params.Clients, r.Params.Sites, r.Params.UpdateTxPct, r.Params.BaseBytes>>10,
		r.Params.Partial, r.Params.Protocol, r.MeanRespMs, r.Committed, r.Aborted,
		r.Deadlocks, r.ThroughputTPS, r.Wall.Round(time.Millisecond))
	if r.Params.ReadOnlyPct > 0 {
		row += fmt.Sprintf(" ro=%d/%d snapreads=%d", r.ReadOnlyCommitted,
			r.ReadOnlyCommitted+r.ReadOnlyAborted, r.SnapshotReads)
	}
	if r.Params.ValuePredPct > 0 || r.IndexedQueries > 0 {
		row += fmt.Sprintf(" idxq=%d", r.IndexedQueries)
	}
	if r.Params.Protocol == "adaptive" {
		row += fmt.Sprintf(" switches=%d", r.ProtocolSwitches)
	}
	if b := r.Breakdown; b != nil {
		row += fmt.Sprintf("\n  phase ms (p50/p99): lock-wait=%.2f/%.2f exec=%.2f/%.2f 2pc-decision=%.2f/%.2f 2pc-fanout=%.2f/%.2f quorum-ack=%.2f/%.2f persist=%.2f/%.2f",
			b.LockWait.P50Ms, b.LockWait.P99Ms, b.Exec.P50Ms, b.Exec.P99Ms,
			b.DecisionWrite.P50Ms, b.DecisionWrite.P99Ms, b.CommitFanout.P50Ms, b.CommitFanout.P99Ms,
			b.QuorumAck.P50Ms, b.QuorumAck.P99Ms, b.PersistSave.P50Ms, b.PersistSave.P99Ms)
	}
	return row
}
