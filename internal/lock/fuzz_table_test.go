package lock

import (
	"testing"

	"repro/internal/dataguide"
	"repro/internal/txn"
	"repro/internal/xmltree"
)

// FuzzTableOps drives the lock table with a byte-encoded sequence of
// acquire / release-op / release-all actions from several transactions and
// checks the same invariants as TestPropertyTableInvariants after every
// step: granted unguarded locks are pairwise compatible per node, the
// accounting sums agree, and a full release empties the table. The CI fuzz
// smoke step runs this for a short budget on every pull request.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{0x00})
	f.Add([]byte{0x12, 0x34, 0x56, 0x78, 0x9a})
	f.Add([]byte{0xff, 0x01, 0x80, 0x7f, 0x00, 0x40, 0xaa, 0x55, 0x33, 0xcc})

	doc, err := xmltree.ParseString("d", `
<r>
  <a><x>1</x><y>2</y></a>
  <b><x>3</x></b>
  <c><z>4</z></c>
</r>`)
	if err != nil {
		f.Fatal(err)
	}
	g := dataguide.Build(doc)
	var nodes []*dataguide.Node
	for _, p := range g.Paths() {
		nodes = append(nodes, g.Lookup(p))
	}
	modes := []Mode{IS, IX, SI, SA, SB, ST, X, XT}

	f.Fuzz(func(t *testing.T, data []byte) {
		tbl := NewTable(g)
		const txns = 4
		ops := make([]int, txns)
		for i := 0; i+1 < len(data); i += 2 {
			ti := int(data[i]) % txns
			id := txn.ID{Site: 1, Seq: int64(ti + 1)}
			owner := Owner{Txn: id, TS: txn.TS(ti + 1), Op: ops[ti]}
			b := data[i+1]
			switch (data[i] >> 2) % 10 {
			case 8:
				tbl.ReleaseOp(id, int(b)%(ops[ti]+1))
			case 9:
				tbl.ReleaseAll(id)
				ops[ti] = 0
			default:
				tbl.Acquire(owner, []Request{
					{Node: nodes[int(b)%len(nodes)], Mode: modes[int(b>>4)%len(modes)]},
					{Node: nodes[int(b>>2)%len(nodes)], Mode: modes[int(b>>1)%len(modes)]},
				})
				ops[ti]++
			}
			for _, node := range nodes {
				holders := tbl.Holders(node)
				for i := 0; i < len(holders); i++ {
					for j := i + 1; j < len(holders); j++ {
						for _, mi := range tbl.Modes(holders[i], node) {
							for _, mj := range tbl.Modes(holders[j], node) {
								if !Compatible(mi, mj) {
									t.Fatalf("%v and %v coexist on %s", mi, mj, node.Path())
								}
							}
						}
					}
				}
			}
			sum := 0
			for _, id := range tbl.ActiveTxns() {
				sum += tbl.HeldBy(id)
			}
			if sum != tbl.GrantCount() {
				t.Fatalf("sum(HeldBy)=%d GrantCount=%d", sum, tbl.GrantCount())
			}
		}
		for ti := 0; ti < txns; ti++ {
			tbl.ReleaseAll(txn.ID{Site: 1, Seq: int64(ti + 1)})
		}
		if tbl.GrantCount() != 0 || len(tbl.ActiveTxns()) != 0 {
			t.Fatalf("table not empty after full release: %d grants, %d txns",
				tbl.GrantCount(), len(tbl.ActiveTxns()))
		}
	})
}
