package lock

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataguide"
	"repro/internal/txn"
	"repro/internal/xmltree"
)

// TestPropertyTableInvariants drives the lock table with random acquire /
// release-op / release-all sequences from several transactions and checks,
// after every step, that (a) no two *granted* incompatible unguarded locks
// coexist on one node, (b) GrantCount matches the sum over HeldBy, and
// (c) releasing everything empties the table.
func TestPropertyTableInvariants(t *testing.T) {
	doc, err := xmltree.ParseString("d", `
<r>
  <a><x>1</x><y>2</y></a>
  <b><x>3</x></b>
  <c><z>4</z></c>
</r>`)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	var nodes []*dataguide.Node
	for _, p := range g.Paths() {
		nodes = append(nodes, g.Lookup(p))
	}
	modes := []Mode{IS, IX, SI, SA, SB, ST, X, XT}

	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tbl := NewTable(g)
		const txns = 4
		ops := make([]int, txns)
		for step := 0; step < 120; step++ {
			ti := rng.Intn(txns)
			id := txn.ID{Site: 1, Seq: int64(ti + 1)}
			owner := Owner{Txn: id, TS: txn.TS(ti + 1), Op: ops[ti]}
			switch rng.Intn(10) {
			case 8: // release one op
				tbl.ReleaseOp(id, rng.Intn(ops[ti]+1))
			case 9: // finish the transaction
				tbl.ReleaseAll(id)
				ops[ti] = 0
			default: // acquire a small random request set
				n := 1 + rng.Intn(3)
				reqs := make([]Request, 0, n)
				for i := 0; i < n; i++ {
					reqs = append(reqs, Request{
						Node: nodes[rng.Intn(len(nodes))],
						Mode: modes[rng.Intn(len(modes))],
					})
				}
				tbl.Acquire(owner, reqs)
				ops[ti]++
			}
			// Invariant (a): granted unguarded locks are pairwise compatible
			// across transactions on every node.
			for _, node := range nodes {
				holders := tbl.Holders(node)
				for i := 0; i < len(holders); i++ {
					for j := i + 1; j < len(holders); j++ {
						for _, mi := range tbl.Modes(holders[i], node) {
							for _, mj := range tbl.Modes(holders[j], node) {
								if !Compatible(mi, mj) {
									t.Logf("seed %d: %v and %v coexist on %s", seed, mi, mj, node.Path())
									return false
								}
							}
						}
					}
				}
			}
			// Invariant (b): accounting agrees.
			sum := 0
			for _, id := range tbl.ActiveTxns() {
				sum += tbl.HeldBy(id)
			}
			if sum != tbl.GrantCount() {
				t.Logf("seed %d: sum(HeldBy)=%d GrantCount=%d", seed, sum, tbl.GrantCount())
				return false
			}
		}
		// Invariant (c): a full release empties the table.
		for ti := 0; ti < txns; ti++ {
			tbl.ReleaseAll(txn.ID{Site: 1, Seq: int64(ti + 1)})
		}
		return tbl.GrantCount() == 0 && len(tbl.ActiveTxns()) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
