package lock

import (
	"fmt"

	"repro/internal/xpath"
)

// Guard restricts a lock on a DataGuide class to the instance subset
// satisfying a simple equality predicate from the lock holder's path
// expression. Guards implement the predicate-annotated locking of the
// DGLOCK/XDGL family: two locks on the same summary node whose guards are
// provably disjoint (same step, same attribute or child, different required
// value — or different positions) do not conflict, which is what makes the
// DataGuide protocol finer-grained than tree locks for point operations.
// A nil guard covers the whole class.
type Guard struct {
	// Step is the element name of the location step the predicate applies
	// to; guards on different steps are never comparable.
	Step string
	// Kind mirrors the xpath predicate kinds usable as guards.
	Kind xpath.PredKind
	// Name is the child element or attribute name compared (PredChild /
	// PredAttr).
	Name string
	// Value is the required value (PredChild / PredAttr / PredText).
	Value string
	// Pos is the required position (PredPosition).
	Pos int
}

// String renders the guard for diagnostics.
func (g *Guard) String() string {
	if g == nil {
		return "*"
	}
	switch g.Kind {
	case xpath.PredPosition:
		return fmt.Sprintf("%s[%d]", g.Step, g.Pos)
	case xpath.PredAttr:
		return fmt.Sprintf("%s[@%s=%q]", g.Step, g.Name, g.Value)
	case xpath.PredText:
		return fmt.Sprintf("%s[text()=%q]", g.Step, g.Value)
	default:
		return fmt.Sprintf("%s[%s=%q]", g.Step, g.Name, g.Value)
	}
}

// Disjoint reports whether two guards provably select disjoint instance
// sets. Conservative: anything not provably disjoint overlaps.
func (g *Guard) Disjoint(other *Guard) bool {
	if g == nil || other == nil {
		return false
	}
	if g.Step != other.Step || g.Kind != other.Kind || g.Name != other.Name {
		return false
	}
	switch g.Kind {
	case xpath.PredPosition:
		return g.Pos != other.Pos
	default:
		return g.Value != other.Value
	}
}

// GuardFromQuery derives the lock guard of a path expression: the equality
// (or positional) predicate of the last step that carries one. Inequality
// predicates cannot guard (their complement is unbounded).
func GuardFromQuery(q *xpath.Query) *Guard {
	for i := len(q.Steps) - 1; i >= 0; i-- {
		step := q.Steps[i]
		for _, p := range step.Preds {
			switch p.Kind {
			case xpath.PredPosition:
				return &Guard{Step: step.Name, Kind: p.Kind, Pos: p.Position}
			case xpath.PredChild, xpath.PredAttr, xpath.PredText:
				if p.Op == xpath.Eq {
					return &Guard{Step: step.Name, Kind: p.Kind, Name: p.Name, Value: p.Value}
				}
			}
		}
	}
	return nil
}
