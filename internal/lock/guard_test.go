package lock

import (
	"testing"

	"repro/internal/dataguide"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

func TestGuardFromQuery(t *testing.T) {
	cases := map[string]string{
		"//person[id='4']/name":           `person[id="4"]`,
		"//person[@id='p1']":              `person[@id="p1"]`,
		"//person[2]/name":                "person[2]",
		"//person/name":                   "*",
		"//person[id!='4']":               "*",        // inequality cannot guard
		"//a[x='1']/b[y='2']/c":           `b[y="2"]`, // last guarded step wins
		"/site/people/person[text()='x']": `person[text()="x"]`,
	}
	for query, want := range cases {
		g := GuardFromQuery(xpath.MustParse(query))
		if g.String() != want {
			t.Errorf("GuardFromQuery(%s) = %s, want %s", query, g.String(), want)
		}
	}
}

func TestGuardDisjoint(t *testing.T) {
	gid4 := GuardFromQuery(xpath.MustParse("//person[id='4']"))
	gid7 := GuardFromQuery(xpath.MustParse("//person[id='7']"))
	gname := GuardFromQuery(xpath.MustParse("//person[name='x']"))
	gpos1 := GuardFromQuery(xpath.MustParse("//person[1]"))
	gpos2 := GuardFromQuery(xpath.MustParse("//person[2]"))
	gitem := GuardFromQuery(xpath.MustParse("//item[id='4']"))

	if !gid4.Disjoint(gid7) || !gid7.Disjoint(gid4) {
		t.Error("different values on same key must be disjoint")
	}
	if gid4.Disjoint(gid4) {
		t.Error("identical guards overlap")
	}
	if gid4.Disjoint(gname) {
		t.Error("different predicate names are not comparable")
	}
	if !gpos1.Disjoint(gpos2) {
		t.Error("different positions must be disjoint")
	}
	if gid4.Disjoint(gpos1) {
		t.Error("value and position guards are not comparable")
	}
	if gid4.Disjoint(gitem) {
		t.Error("guards on different steps are not comparable")
	}
	var nilGuard *Guard
	if nilGuard.Disjoint(gid4) || gid4.Disjoint(nilGuard) {
		t.Error("nil guard overlaps everything")
	}
	if nilGuard.String() != "*" {
		t.Error("nil guard renders as *")
	}
}

// TestGuardedLocksCoexist: the DGLOCK refinement — point updates on
// different instances of the same DataGuide class do not conflict, while a
// class scan conflicts with any of them.
func TestGuardedLocksCoexist(t *testing.T) {
	doc, err := xmltree.ParseString("d2", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	tbl := NewTable(g)
	o1, o2, o3 := owner(1, 1, 0), owner(1, 2, 0), owner(1, 3, 0)

	u1 := &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "1"}
	r1, err := XDGL{}.UpdateRequests(doc, g, u1)
	if err != nil {
		t.Fatal(err)
	}
	if c := tbl.Acquire(o1, r1); c != nil {
		t.Fatal(c)
	}

	// Disjoint point update on the same class: compatible.
	u2 := &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='14']/price", Value: "2"}
	r2, err := XDGL{}.UpdateRequests(doc, g, u2)
	if err != nil {
		t.Fatal(err)
	}
	if c := tbl.Acquire(o2, r2); c != nil {
		t.Fatalf("disjoint guarded X locks conflicted: %v", c)
	}

	// A class scan overlaps both point writers.
	qr, err := XDGL{}.QueryRequests(doc, g, xpath.MustParse("//product/price"))
	if err != nil {
		t.Fatal(err)
	}
	if c := tbl.Acquire(o3, qr); len(c) != 2 {
		t.Fatalf("scan should conflict with both writers: %v", c)
	}

	// A point read of one instance conflicts with exactly its writer.
	qr4, err := XDGL{}.QueryRequests(doc, g, xpath.MustParse("//product[id='4']/price"))
	if err != nil {
		t.Fatal(err)
	}
	if c := tbl.Acquire(o3, qr4); len(c) != 1 || c[0].Txn != o1.Txn {
		t.Fatalf("point read conflicts = %v, want only the id=4 writer", c)
	}
}

func TestGuardedAbsorptionSafe(t *testing.T) {
	// Holding a guarded lock must not absorb a later unguarded request for
	// the same node/mode: the unguarded one is wider.
	doc, err := xmltree.ParseString("d2", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	tbl := NewTable(g)
	price := g.Lookup("/products/product/price")
	o1, o2 := owner(1, 1, 0), owner(1, 2, 0)
	guard := GuardFromQuery(xpath.MustParse("//product[id='4']/price"))

	if c := tbl.Acquire(o1, []Request{{Node: price, Mode: X, Guard: guard}}); c != nil {
		t.Fatal(c)
	}
	// o2 takes the disjoint half.
	guard2 := GuardFromQuery(xpath.MustParse("//product[id='14']/price"))
	if c := tbl.Acquire(o2, []Request{{Node: price, Mode: ST, Guard: guard2}}); c != nil {
		t.Fatalf("disjoint ST should pass: %v", c)
	}
	// o1 widening to the whole class must now conflict with o2.
	if c := tbl.Acquire(o1, []Request{{Node: price, Mode: X}}); len(c) != 1 || c[0].Txn != o2.Txn {
		t.Fatalf("unguarded widen conflicts = %v", c)
	}
}
