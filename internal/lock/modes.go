// Package lock implements DTX's locking substrate: the eight XDGL lock
// modes with their compatibility matrix, a lock table keyed by DataGuide
// nodes, and the three concurrency-control protocols the paper evaluates —
// XDGL (the DTX protocol), Node2PL (coarse tree locks standing in for the
// related work) and DocLock (the traditional whole-document lock).
package lock

import "fmt"

// Mode is a lock mode. The first eight are XDGL's modes; R and W are the
// plain tree/document modes used by the baseline protocols.
type Mode int

// XDGL modes (paper §2): SI/SA/SB are shared insertion locks, X is the
// exclusive node lock, ST/XT are shared/exclusive tree locks covering a
// DataGuide subtree, IS/IX are intention locks placed on ancestors.
// R and W are subtree read/write locks for Node2PL and DocLock.
const (
	IS Mode = iota // intention shared: shared lock somewhere below
	IX             // intention exclusive: exclusive lock somewhere below
	SI             // shared into: insertion into this node's children
	SA             // shared after: insertion right after this node
	SB             // shared before: insertion right before this node
	ST             // shared tree: protects the subtree from any update
	X              // exclusive: the node itself is being modified
	XT             // exclusive tree: subtree being removed/replaced
	R              // baseline read lock (per node; tree protocols lock paths)
	W              // baseline write lock (per node)

	numModes = int(W) + 1
)

// String returns the protocol's abbreviation for the mode.
func (m Mode) String() string {
	switch m {
	case IS:
		return "IS"
	case IX:
		return "IX"
	case SI:
		return "SI"
	case SA:
		return "SA"
	case SB:
		return "SB"
	case ST:
		return "ST"
	case X:
		return "X"
	case XT:
		return "XT"
	case R:
		return "R"
	case W:
		return "W"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Exclusive reports whether the mode forbids concurrent readers.
func (m Mode) Exclusive() bool { return m == X || m == XT || m == W }

// compat is the XDGL compatibility matrix plus the R/W baseline modes.
//
// The DTX paper does not reprint the matrix; it is reconstructed from the
// prose and the worked scenario:
//   - the scenario shows ST incompatible with IX (twice, §2.4);
//   - SI/SA/SB are *shared* insertion locks: they "avoid any modification on
//     the node specified in the path expression", so they conflict with X
//     and XT but admit each other and readers;
//   - SI announces an insertion into the node's child list, which is an
//     update of the subtree, so SI also conflicts with ST (an ST holder must
//     not observe a child appearing). SA/SB announce insertions *next to*
//     the node — outside its subtree — so they are compatible with ST;
//   - X and XT are exclusive against everything, standard for
//     multi-granularity schemes;
//   - intention locks are mutually compatible; IS is compatible with every
//     shared mode, IX only with intention and insertion-shared modes.
//
// R/W are kept orthogonal: a deployment uses either the XDGL modes or the
// baseline modes, never both, but the table supports both so the protocol
// swap the paper performs ("the only modifications made to DTX were the
// lock/document representation structure and the lock application/release
// rules") is a one-line configuration change here too.
var compat = [numModes][numModes]bool{
	//            IS     IX     SI     SA     SB     ST     X      XT     R      W
	IS: {true, true, true, true, true, true, false, false, false, false},
	IX: {true, true, true, true, true, false, false, false, false, false},
	SI: {true, true, true, true, true, false, false, false, false, false},
	SA: {true, true, true, true, true, true, false, false, false, false},
	SB: {true, true, true, true, true, true, false, false, false, false},
	ST: {true, false, false, true, true, true, false, false, false, false},
	X:  {false, false, false, false, false, false, false, false, false, false},
	XT: {false, false, false, false, false, false, false, false, false, false},
	R:  {false, false, false, false, false, false, false, false, true, false},
	W:  {false, false, false, false, false, false, false, false, false, false},
}

// Compatible reports whether a lock in mode a held by one transaction is
// compatible with a request for mode b by another transaction on the same
// DataGuide node.
func Compatible(a, b Mode) bool {
	return compat[a][b]
}
