package lock

import "testing"

func allModes() []Mode {
	return []Mode{IS, IX, SI, SA, SB, ST, X, XT, R, W}
}

func TestMatrixSymmetry(t *testing.T) {
	for _, a := range allModes() {
		for _, b := range allModes() {
			if Compatible(a, b) != Compatible(b, a) {
				t.Errorf("matrix asymmetric at (%v,%v)", a, b)
			}
		}
	}
}

func TestExclusiveConflictsWithEverything(t *testing.T) {
	for _, ex := range []Mode{X, XT, W} {
		for _, m := range allModes() {
			if Compatible(ex, m) {
				t.Errorf("%v must conflict with %v", ex, m)
			}
		}
	}
}

func TestIntentionLocksMutuallyCompatible(t *testing.T) {
	for _, a := range []Mode{IS, IX} {
		for _, b := range []Mode{IS, IX, SI, SA, SB} {
			if !Compatible(a, b) {
				t.Errorf("%v should be compatible with %v", a, b)
			}
		}
	}
}

// The worked scenario of §2.4 hinges on ST (held by a query) being
// incompatible with IX (needed by an insert below the same node) — twice:
// t1's IX on node 2 vs t2's ST, and t2's IX on node 56 vs t1's ST.
func TestScenarioSTvsIX(t *testing.T) {
	if Compatible(ST, IX) {
		t.Fatal("ST must conflict with IX (paper §2.4)")
	}
	if Compatible(ST, SI) {
		t.Fatal("ST must conflict with SI: insertion into a read-protected subtree")
	}
	if !Compatible(ST, IS) {
		t.Fatal("ST must admit IS: concurrent readers below")
	}
	if !Compatible(ST, ST) {
		t.Fatal("ST must admit ST: shared readers")
	}
	if !Compatible(ST, SA) || !Compatible(ST, SB) {
		t.Fatal("ST must admit SA/SB: sibling insertion does not touch the subtree")
	}
}

func TestSharedInsertionLocksAreShared(t *testing.T) {
	for _, a := range []Mode{SI, SA, SB} {
		for _, b := range []Mode{SI, SA, SB, IS, IX} {
			if !Compatible(a, b) {
				t.Errorf("%v should be compatible with %v", a, b)
			}
		}
		if Compatible(a, X) || Compatible(a, XT) {
			t.Errorf("%v must conflict with exclusive modes", a)
		}
	}
}

func TestBaselineRW(t *testing.T) {
	if !Compatible(R, R) {
		t.Fatal("R must admit R")
	}
	if Compatible(R, W) || Compatible(W, W) {
		t.Fatal("W must be exclusive")
	}
}

func TestModeStrings(t *testing.T) {
	want := map[Mode]string{IS: "IS", IX: "IX", SI: "SI", SA: "SA", SB: "SB", ST: "ST", X: "X", XT: "XT", R: "R", W: "W"}
	for m, s := range want {
		if m.String() != s {
			t.Errorf("String(%d) = %q, want %q", int(m), m.String(), s)
		}
	}
	if !X.Exclusive() || !XT.Exclusive() || !W.Exclusive() || ST.Exclusive() {
		t.Fatal("Exclusive() misclassifies")
	}
}
