package lock

import (
	"fmt"

	"repro/internal/dataguide"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

// Protocol maps operations to the lock requests they require. DTX was
// "conceived in a flexible fashion, so that other concurrency control
// protocols can be employed" — the paper swaps XDGL for Node2PL by changing
// only the lock representation and the lock application/release rules, which
// is exactly this interface.
type Protocol interface {
	// Name identifies the protocol in configs and reports.
	Name() string
	// QueryRequests returns the locks needed to execute the query. XDGL
	// derives them from the DataGuide alone; the baseline tree protocols
	// evaluate the query against the document and lock document nodes.
	QueryRequests(doc *xmltree.Document, g *dataguide.DataGuide, q *xpath.Query) ([]Request, error)
	// UpdateRequests returns the locks needed to execute the update.
	UpdateRequests(doc *xmltree.Document, g *dataguide.DataGuide, u *xupdate.Update) ([]Request, error)
}

// ByName returns the protocol registered under the given name.
func ByName(name string) (Protocol, error) {
	switch name {
	case "xdgl", "":
		return XDGL{}, nil
	case "xdgl-noguard":
		return XDGLNoGuard{}, nil
	case "node2pl", "tree":
		return Node2PL{}, nil
	case "doclock", "doc":
		return DocLock{}, nil
	default:
		return nil, fmt.Errorf("lock: unknown protocol %q", name)
	}
}

// XDGL is the DataGuide-based multi-granularity protocol DTX adopts
// (Pleshachkov et al.), adapted per the paper: ST on query targets with IS
// on ancestors; X/IX plus SI/SA/SB for inserts; XT/IX for removals; ST on
// predicate nodes.
type XDGL struct{}

// Name implements Protocol.
func (XDGL) Name() string { return "xdgl" }

func addWithAncestors(reqs []Request, n *dataguide.Node, self, anc Mode) []Request {
	return addGuardedWithAncestors(reqs, n, self, anc, nil)
}

// addGuardedWithAncestors attaches the guard to the lock on the node itself;
// intention locks on ancestors stay unguarded (they are mutually compatible
// anyway, and an unguarded intention is a sound over-approximation).
func addGuardedWithAncestors(reqs []Request, n *dataguide.Node, self, anc Mode, guard *Guard) []Request {
	reqs = append(reqs, Request{Node: n, Mode: self, Guard: guard})
	for _, a := range n.Ancestors() {
		reqs = append(reqs, Request{Node: a, Mode: anc})
	}
	return reqs
}

func (XDGL) predicateRequests(g *dataguide.DataGuide, q *xpath.Query, reqs []Request) []Request {
	for _, pn := range g.PredicateNodes(q) {
		reqs = addWithAncestors(reqs, pn, ST, IS)
	}
	return reqs
}

// QueryRequests implements Protocol: ST on the target nodes, IS on their
// ancestors, and the same for the path-expression predicate nodes. The
// document is not consulted: XDGL locks purely on the structural summary.
func (p XDGL) QueryRequests(_ *xmltree.Document, g *dataguide.DataGuide, q *xpath.Query) ([]Request, error) {
	guard := GuardFromQuery(q)
	var reqs []Request
	for _, n := range g.Targets(q) {
		reqs = addGuardedWithAncestors(reqs, n, ST, IS, guard)
	}
	reqs = p.predicateRequests(g, q, reqs)
	return reqs, nil
}

// UpdateRequests implements Protocol, following §2 of the paper per
// operation kind.
func (p XDGL) UpdateRequests(_ *xmltree.Document, g *dataguide.DataGuide, u *xupdate.Update) ([]Request, error) {
	tq, err := u.TargetQuery()
	if err != nil {
		return nil, err
	}
	targets := g.Targets(tq)
	guard := GuardFromQuery(tq)
	var reqs []Request
	reqs = p.predicateRequests(g, tq, reqs)
	switch u.Kind {
	case xupdate.Insert:
		for _, t := range targets {
			switch u.Pos {
			case xmltree.Into:
				// SI on the node the new child connects to, IS on its
				// ancestors; X on the (possibly new) path of the inserted
				// node, IX on its ancestors — which include the target.
				reqs = addWithAncestors(reqs, t, SI, IS)
				newNode := g.EnsureChild(t, u.New.Name)
				reqs = addWithAncestors(reqs, newNode, X, IX)
			case xmltree.Before, xmltree.After:
				mode := SB
				if u.Pos == xmltree.After {
					mode = SA
				}
				if t.Parent == nil {
					return nil, fmt.Errorf("lock: cannot insert %s the root", u.Pos)
				}
				reqs = addWithAncestors(reqs, t, mode, IS)
				newNode := g.EnsureChild(t.Parent, u.New.Name)
				reqs = addWithAncestors(reqs, newNode, X, IX)
			default:
				return nil, fmt.Errorf("lock: unknown insert position %v", u.Pos)
			}
		}
	case xupdate.Remove:
		for _, t := range targets {
			reqs = addGuardedWithAncestors(reqs, t, XT, IX, guard)
		}
	case xupdate.Rename:
		for _, t := range targets {
			if t.Parent == nil {
				return nil, fmt.Errorf("lock: cannot rename the root element")
			}
			// The subtree's paths all change: exclusive tree on the old
			// path, exclusive on the new path.
			reqs = addWithAncestors(reqs, t, XT, IX)
			newNode := g.EnsureChild(t.Parent, u.NewName)
			reqs = addWithAncestors(reqs, newNode, X, IX)
		}
	case xupdate.Change:
		for _, t := range targets {
			reqs = addGuardedWithAncestors(reqs, t, X, IX, guard)
		}
	case xupdate.Transpose:
		q2, err := u.Target2Query()
		if err != nil {
			return nil, err
		}
		for _, t := range targets {
			reqs = addWithAncestors(reqs, t, XT, IX)
		}
		for _, t := range g.Targets(q2) {
			reqs = addWithAncestors(reqs, t, XT, IX)
		}
		reqs = p.predicateRequests(g, q2, reqs)
	default:
		return nil, fmt.Errorf("lock: unknown update kind %v", u.Kind)
	}
	return reqs, nil
}

// Node2PL is the tree-lock protocol standing in for the related work ("the
// majority of related works uses protocols with this characteristic"),
// after Haustein et al.'s contest of XML lock protocols: plain read/write
// locks on *document* nodes, acquired along the whole path from the root to
// every accessed node ("the nodes are locked from the query starting point
// all the way down"). Readers R-lock each result node and all of its
// ancestors; writers W-lock the node enclosing the structural change (the
// target's parent for structural operations, the target itself for in-place
// changes and insert-into) and R-lock its ancestors. A writer therefore
// excludes every reader of the enclosing subtree — the low concurrency the
// paper attributes to the related work — and the lock count grows with the
// document and the result size ("if the document grows, the number of locks
// also increases"), unlike XDGL's summary-bounded lock sets.
type Node2PL struct{}

// Name implements Protocol.
func (Node2PL) Name() string { return "node2pl" }

func pathLocks(reqs []Request, n *xmltree.Node, self Mode) []Request {
	reqs = append(reqs, Request{DocNode: n, Mode: self})
	for _, a := range n.Ancestors() {
		reqs = append(reqs, Request{DocNode: a, Mode: R})
	}
	return reqs
}

// QueryRequests implements Protocol: R on every document node the query
// selects and on every ancestor up to the root.
func (Node2PL) QueryRequests(doc *xmltree.Document, _ *dataguide.DataGuide, q *xpath.Query) ([]Request, error) {
	var reqs []Request
	for _, n := range xpath.Eval(q, doc) {
		reqs = pathLocks(reqs, n, R)
	}
	return reqs, nil
}

// UpdateRequests implements Protocol: W on the document node enclosing each
// change, R on its ancestors.
func (Node2PL) UpdateRequests(doc *xmltree.Document, _ *dataguide.DataGuide, u *xupdate.Update) ([]Request, error) {
	tq, err := u.TargetQuery()
	if err != nil {
		return nil, err
	}
	targets := xpath.Eval(tq, doc)
	var reqs []Request
	lockParent := func(t *xmltree.Node) {
		if t.Parent != nil {
			reqs = pathLocks(reqs, t.Parent, W)
		} else {
			reqs = pathLocks(reqs, t, W)
		}
	}
	switch u.Kind {
	case xupdate.Insert:
		for _, t := range targets {
			if u.Pos == xmltree.Into {
				// The target's child list changes.
				reqs = pathLocks(reqs, t, W)
			} else {
				lockParent(t)
			}
		}
	case xupdate.Remove, xupdate.Rename:
		for _, t := range targets {
			lockParent(t)
		}
	case xupdate.Change:
		for _, t := range targets {
			reqs = pathLocks(reqs, t, W)
		}
	case xupdate.Transpose:
		q2, err := u.Target2Query()
		if err != nil {
			return nil, err
		}
		for _, t := range targets {
			lockParent(t)
		}
		for _, t := range xpath.Eval(q2, doc) {
			lockParent(t)
		}
	default:
		return nil, fmt.Errorf("lock: unknown update kind %v", u.Kind)
	}
	return reqs, nil
}

// DocLock is the traditional technique the paper mentions as the trivial
// comparison point: a single read/write lock on the whole document.
type DocLock struct{}

// Name implements Protocol.
func (DocLock) Name() string { return "doclock" }

// QueryRequests implements Protocol: R on the document root.
func (DocLock) QueryRequests(doc *xmltree.Document, _ *dataguide.DataGuide, q *xpath.Query) ([]Request, error) {
	return []Request{{DocNode: doc.Root, Mode: R}}, nil
}

// UpdateRequests implements Protocol: W on the document root.
func (DocLock) UpdateRequests(doc *xmltree.Document, _ *dataguide.DataGuide, u *xupdate.Update) ([]Request, error) {
	if _, err := u.TargetQuery(); err != nil {
		return nil, err
	}
	return []Request{{DocNode: doc.Root, Mode: W}}, nil
}

// XDGLNoGuard is XDGL with the predicate guards stripped: pure class-level
// locking on the DataGuide. An ablation quantifying how much of XDGL's
// concurrency comes from the DGLOCK predicate refinement — point operations
// on distinct instances of one class conflict under this variant.
type XDGLNoGuard struct{}

// Name implements Protocol.
func (XDGLNoGuard) Name() string { return "xdgl-noguard" }

func stripGuards(reqs []Request, err error) ([]Request, error) {
	if err != nil {
		return nil, err
	}
	for i := range reqs {
		reqs[i].Guard = nil
	}
	return reqs, nil
}

// QueryRequests implements Protocol.
func (XDGLNoGuard) QueryRequests(doc *xmltree.Document, g *dataguide.DataGuide, q *xpath.Query) ([]Request, error) {
	return stripGuards(XDGL{}.QueryRequests(doc, g, q))
}

// UpdateRequests implements Protocol.
func (XDGLNoGuard) UpdateRequests(doc *xmltree.Document, g *dataguide.DataGuide, u *xupdate.Update) ([]Request, error) {
	return stripGuards(XDGL{}.UpdateRequests(doc, g, u))
}
