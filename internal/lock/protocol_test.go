package lock

import (
	"testing"

	"repro/internal/dataguide"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

func modesOn(reqs []Request, path string) map[Mode]bool {
	out := map[Mode]bool{}
	for _, r := range reqs {
		if r.Node != nil && r.Node.Path() == path {
			out[r.Mode] = true
		}
	}
	return out
}

// docModesOn collects modes requested on document nodes with the given
// label path (ignoring the per-node disambiguation).
func docModesOn(reqs []Request, labelPath string) map[Mode]int {
	out := map[Mode]int{}
	for _, r := range reqs {
		if r.DocNode != nil && r.DocNode.LabelPath() == labelPath {
			out[r.Mode]++
		}
	}
	return out
}

func docAndGuide(t *testing.T) (*xmltree.Document, *dataguide.DataGuide) {
	t.Helper()
	doc, err := xmltree.ParseString("d2", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc, dataguide.Build(doc)
}

func TestByName(t *testing.T) {
	for name, want := range map[string]string{
		"xdgl": "xdgl", "": "xdgl", "node2pl": "node2pl", "tree": "node2pl",
		"doclock": "doclock", "doc": "doclock",
	} {
		p, err := ByName(name)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if p.Name() != want {
			t.Fatalf("ByName(%q) = %s, want %s", name, p.Name(), want)
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Fatal("expected error for unknown protocol")
	}
}

func TestXDGLQueryLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	reqs, err := XDGL{}.QueryRequests(doc, g, xpath.MustParse("/products/product/price"))
	if err != nil {
		t.Fatal(err)
	}
	if m := modesOn(reqs, "/products/product/price"); !m[ST] {
		t.Fatalf("target missing ST: %v", m)
	}
	if m := modesOn(reqs, "/products/product"); !m[IS] {
		t.Fatalf("ancestor missing IS: %v", m)
	}
	if m := modesOn(reqs, "/products"); !m[IS] {
		t.Fatalf("root missing IS: %v", m)
	}
}

func TestXDGLQueryPredicateLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	reqs, err := XDGL{}.QueryRequests(doc, g, xpath.MustParse("//product[id='4']/price"))
	if err != nil {
		t.Fatal(err)
	}
	if m := modesOn(reqs, "/products/product/id"); !m[ST] {
		t.Fatalf("predicate node missing ST: %v", m)
	}
}

func TestXDGLInsertIntoLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	u := &xupdate.Update{Kind: xupdate.Insert, Target: "/products", Pos: xmltree.Into,
		New: &xupdate.NodeSpec{Name: "product"}}
	reqs, err := XDGL{}.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	if m := modesOn(reqs, "/products"); !m[SI] || !m[IX] {
		t.Fatalf("connecting node needs SI+IX: %v", m)
	}
	if m := modesOn(reqs, "/products/product"); !m[X] {
		t.Fatalf("inserted path needs X: %v", m)
	}
}

func TestXDGLInsertBeforeAfterLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	for _, tc := range []struct {
		pos  xmltree.Pos
		mode Mode
	}{{xmltree.Before, SB}, {xmltree.After, SA}} {
		u := &xupdate.Update{Kind: xupdate.Insert, Target: "/products/product[1]", Pos: tc.pos,
			New: &xupdate.NodeSpec{Name: "product"}}
		reqs, err := XDGL{}.UpdateRequests(doc, g, u)
		if err != nil {
			t.Fatal(err)
		}
		if m := modesOn(reqs, "/products/product"); !m[tc.mode] || !m[X] {
			t.Fatalf("pos %v: reference node needs %v and X on sibling path: %v", tc.pos, tc.mode, m)
		}
		if m := modesOn(reqs, "/products"); !m[IX] || !m[IS] {
			t.Fatalf("pos %v: parent needs IX+IS: %v", tc.pos, m)
		}
	}
	// Inserting before the root is impossible.
	u := &xupdate.Update{Kind: xupdate.Insert, Target: "/products", Pos: xmltree.Before,
		New: &xupdate.NodeSpec{Name: "x"}}
	if _, err := (XDGL{}).UpdateRequests(doc, g, u); err == nil {
		t.Fatal("expected error for insert-before-root")
	}
}

func TestXDGLRemoveLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	u := &xupdate.Update{Kind: xupdate.Remove, Target: "//product[id='4']"}
	reqs, err := XDGL{}.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	if m := modesOn(reqs, "/products/product"); !m[XT] {
		t.Fatalf("target needs XT: %v", m)
	}
	if m := modesOn(reqs, "/products"); !m[IX] {
		t.Fatalf("ancestor needs IX: %v", m)
	}
	if m := modesOn(reqs, "/products/product/id"); !m[ST] {
		t.Fatalf("predicate node needs ST: %v", m)
	}
}

func TestXDGLRenameLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	u := &xupdate.Update{Kind: xupdate.Rename, Target: "//description", NewName: "desc"}
	reqs, err := XDGL{}.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	if m := modesOn(reqs, "/products/product/description"); !m[XT] {
		t.Fatalf("old path needs XT: %v", m)
	}
	if m := modesOn(reqs, "/products/product/desc"); !m[X] {
		t.Fatalf("new path needs X: %v", m)
	}
	// Renaming the root is rejected.
	bad := &xupdate.Update{Kind: xupdate.Rename, Target: "/products", NewName: "p"}
	if _, err := (XDGL{}).UpdateRequests(doc, g, bad); err == nil {
		t.Fatal("expected error renaming root")
	}
}

func TestXDGLChangeLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	u := &xupdate.Update{Kind: xupdate.Change, Target: "//price", Value: "1"}
	reqs, err := XDGL{}.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	if m := modesOn(reqs, "/products/product/price"); !m[X] {
		t.Fatalf("target needs X: %v", m)
	}
	if m := modesOn(reqs, "/products/product"); !m[IX] {
		t.Fatalf("ancestor needs IX: %v", m)
	}
}

func TestXDGLTransposeLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	u := &xupdate.Update{Kind: xupdate.Transpose,
		Target: "//product[id='4']", Target2: "//product[id='14']"}
	reqs, err := XDGL{}.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	if m := modesOn(reqs, "/products/product"); !m[XT] {
		t.Fatalf("targets need XT: %v", m)
	}
}

func TestNode2PLQueryLocks(t *testing.T) {
	doc, g := docAndGuide(t)
	reqs, err := Node2PL{}.QueryRequests(doc, g, xpath.MustParse("//product[id='4']/price"))
	if err != nil {
		t.Fatal(err)
	}
	// The matched node is R-locked, and so is its full path to the root.
	if m := docModesOn(reqs, "/products/product/price"); m[R] != 1 {
		t.Fatalf("price R locks = %v", m)
	}
	if m := docModesOn(reqs, "/products/product"); m[R] != 1 {
		t.Fatalf("parent R locks = %v", m)
	}
	if m := docModesOn(reqs, "/products"); m[R] != 1 {
		t.Fatalf("root R locks = %v", m)
	}
	for _, r := range reqs {
		if r.Mode != R || r.DocNode == nil {
			t.Fatalf("unexpected request %+v in Node2PL query", r)
		}
	}
	// Lock count scales with result size times depth: //product matches
	// both items, each with a 2-node path.
	reqs, err = Node2PL{}.QueryRequests(doc, g, xpath.MustParse("//product"))
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != 4 {
		t.Fatalf("lock count = %d, want 2 results x 2 path nodes", len(reqs))
	}
}

func TestNode2PLUpdateLocksParent(t *testing.T) {
	doc, g := docAndGuide(t)
	u := &xupdate.Update{Kind: xupdate.Remove, Target: "//price"}
	reqs, err := Node2PL{}.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	// Each price's parent product node is W-locked, ancestors R-locked.
	if m := docModesOn(reqs, "/products/product"); m[W] != 2 {
		t.Fatalf("remove must W-lock each parent: %v", m)
	}
	if m := docModesOn(reqs, "/products"); m[R] != 2 {
		t.Fatalf("remove must R-lock ancestors: %v", m)
	}
	// Insert into the root W-locks the root document node.
	u2 := &xupdate.Update{Kind: xupdate.Insert, Target: "/products", Pos: xmltree.Into,
		New: &xupdate.NodeSpec{Name: "product"}}
	reqs2, err := Node2PL{}.UpdateRequests(doc, g, u2)
	if err != nil {
		t.Fatal(err)
	}
	if m := docModesOn(reqs2, "/products"); m[W] != 1 {
		t.Fatalf("insert-into must W-lock the target: %v", m)
	}
}

func TestNode2PLCoarserThanXDGL(t *testing.T) {
	// The defining behavioural difference: removing //description under
	// Node2PL W-locks each product subtree, blocking a query reading the
	// sibling //price of the same product. Under XDGL the remove takes XT
	// only on the description path class (IX on ancestors), which coexists
	// with the query's ST on the price class (IS on ancestors).
	doc, g := docAndGuide(t)
	tbl := NewTable(g)
	o1, o2 := owner(1, 1, 0), owner(1, 2, 0)

	qr, _ := Node2PL{}.QueryRequests(doc, g, xpath.MustParse("//product/price"))
	if c := tbl.Acquire(o1, qr); c != nil {
		t.Fatal(c)
	}
	u := &xupdate.Update{Kind: xupdate.Remove, Target: "//description"}
	ur, _ := Node2PL{}.UpdateRequests(doc, g, u)
	if c := tbl.Acquire(o2, ur); len(c) == 0 {
		t.Fatal("Node2PL: remove should block on sibling query (W on shared subtree)")
	}

	// Same workload under XDGL proceeds concurrently.
	tbl2 := NewTable(g)
	qr2, _ := XDGL{}.QueryRequests(doc, g, xpath.MustParse("//product/price"))
	if c := tbl2.Acquire(o1, qr2); c != nil {
		t.Fatal(c)
	}
	ur2, _ := XDGL{}.UpdateRequests(doc, g, u)
	if c := tbl2.Acquire(o2, ur2); c != nil {
		t.Fatalf("XDGL: disjoint remove should not block: %v", c)
	}
}

func TestNode2PLFinerForPointUpdates(t *testing.T) {
	// Complementary behaviour the paper attributes to XDGL's summary
	// granularity: a change to one product's price is, under XDGL, a
	// conflict with readers of any price (one DataGuide class), while
	// Node2PL only blocks readers of that specific product subtree.
	doc, g := docAndGuide(t)
	o1, o2 := owner(1, 1, 0), owner(1, 2, 0)

	tbl := NewTable(g)
	u := &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "1"}
	ur, _ := Node2PL{}.UpdateRequests(doc, g, u)
	if c := tbl.Acquire(o1, ur); c != nil {
		t.Fatal(c)
	}
	qr, _ := Node2PL{}.QueryRequests(doc, g, xpath.MustParse("//product[id='14']/price"))
	if c := tbl.Acquire(o2, qr); c != nil {
		t.Fatalf("Node2PL: disjoint point read should pass: %v", c)
	}
}

func TestDocLock(t *testing.T) {
	doc, g := docAndGuide(t)
	tbl := NewTable(g)
	o1, o2 := owner(1, 1, 0), owner(1, 2, 0)
	qr, err := DocLock{}.QueryRequests(doc, g, xpath.MustParse("//price"))
	if err != nil {
		t.Fatal(err)
	}
	if len(qr) != 1 || qr[0].DocNode != doc.Root || qr[0].Mode != R {
		t.Fatalf("DocLock query = %v", qr)
	}
	if c := tbl.Acquire(o1, qr); c != nil {
		t.Fatal(c)
	}
	u := &xupdate.Update{Kind: xupdate.Change, Target: "//description", Value: "v"}
	ur, err := DocLock{}.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	if c := tbl.Acquire(o2, ur); len(c) != 1 {
		t.Fatal("DocLock: any update must block on any query")
	}
}

func TestProtocolsRejectBadUpdates(t *testing.T) {
	doc, g := docAndGuide(t)
	bad := &xupdate.Update{Kind: xupdate.Kind(42), Target: "/products"}
	if _, err := (XDGL{}).UpdateRequests(doc, g, bad); err == nil {
		t.Fatal("XDGL accepted unknown kind")
	}
	if _, err := (Node2PL{}).UpdateRequests(doc, g, bad); err == nil {
		t.Fatal("Node2PL accepted unknown kind")
	}
	badPath := &xupdate.Update{Kind: xupdate.Remove, Target: "nope"}
	if _, err := (XDGL{}).UpdateRequests(doc, g, badPath); err == nil {
		t.Fatal("XDGL accepted bad path")
	}
	if _, err := (DocLock{}).UpdateRequests(doc, g, badPath); err == nil {
		t.Fatal("DocLock accepted bad path")
	}
	if _, err := (Node2PL{}).UpdateRequests(doc, g, badPath); err == nil {
		t.Fatal("Node2PL accepted bad path")
	}
}

// Multi-granularity law: whenever XDGL grants a non-intention lock on a
// node, each ancestor holds a matching intention lock.
func TestXDGLIntentionInvariant(t *testing.T) {
	doc, g := docAndGuide(t)
	queries := []string{"//price", "/products/product", "//product[id='4']/description"}
	updates := []*xupdate.Update{
		{Kind: xupdate.Change, Target: "//price", Value: "0"},
		{Kind: xupdate.Remove, Target: "//product[id='4']"},
		{Kind: xupdate.Insert, Target: "/products", Pos: xmltree.Into, New: &xupdate.NodeSpec{Name: "product"}},
	}
	check := func(reqs []Request) {
		byNode := map[*dataguide.Node]map[Mode]bool{}
		for _, r := range reqs {
			if byNode[r.Node] == nil {
				byNode[r.Node] = map[Mode]bool{}
			}
			byNode[r.Node][r.Mode] = true
		}
		for n, modes := range byNode {
			for m := range modes {
				if m == IS || m == IX {
					continue
				}
				wantAnc := IS
				if m == X || m == XT {
					wantAnc = IX
				}
				for _, a := range n.Ancestors() {
					if !byNode[a][wantAnc] && !byNode[a][IX] {
						t.Errorf("node %s mode %v: ancestor %s lacks %v", n.Path(), m, a.Path(), wantAnc)
					}
				}
			}
		}
	}
	for _, qs := range queries {
		reqs, err := XDGL{}.QueryRequests(doc, g, xpath.MustParse(qs))
		if err != nil {
			t.Fatal(err)
		}
		check(reqs)
	}
	for _, u := range updates {
		reqs, err := XDGL{}.UpdateRequests(doc, g, u)
		if err != nil {
			t.Fatal(err)
		}
		check(reqs)
	}
}
