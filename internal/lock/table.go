package lock

import (
	"fmt"
	"sort"

	"repro/internal/dataguide"
	"repro/internal/txn"
	"repro/internal/xmltree"
)

// Request asks for one mode on one node. XDGL's hierarchical modes lock
// DataGuide nodes (Node); the baseline tree protocols lock document nodes
// directly (DocNode) — that distinction is the paper's central overhead
// argument: DataGuide lock counts are bounded by the structural summary,
// document-node lock counts grow with the document.
type Request struct {
	Node    *dataguide.Node
	DocNode *xmltree.Node
	Mode    Mode
	// Guard optionally restricts the lock to a predicate-selected instance
	// subset of the class; locks with provably disjoint guards coexist.
	Guard *Guard
}

// Key identifies the lock target of a request. Exactly one of the node
// fields is set.
func (r Request) key() grantKey {
	if r.DocNode != nil {
		return grantKey{doc: r.DocNode.ID}
	}
	return grantKey{dg: r.Node.ID}
}

// Path renders the lock target for diagnostics and history recording.
// Document-node targets are disambiguated by node ID: two document nodes
// can share a label path without sharing a lock.
func (r Request) Path() string {
	if r.DocNode != nil {
		return fmt.Sprintf("%s@%d", r.DocNode.LabelPath(), r.DocNode.ID)
	}
	return r.Node.Path()
}

// grantKey is the composite lock-target key.
type grantKey struct {
	dg  dataguide.NodeID
	doc xmltree.NodeID
}

// Owner identifies who is acquiring locks: the transaction, its logical
// start timestamp (carried so conflicting sites can build wait-for edges
// with victim-selection information), and the index of the operation within
// the transaction. Operation tagging makes it possible to release only the
// locks of an operation that was undone because it could not execute at
// every participant site (Algorithm 1, l. 16).
type Owner struct {
	Txn txn.ID
	TS  txn.TS
	Op  int
}

// Conflict reports a transaction that holds an incompatible lock.
type Conflict struct {
	Txn txn.ID
	TS  txn.TS
}

type grant struct {
	txn   txn.ID
	ts    txn.TS
	op    int
	mode  Mode
	guard *Guard
}

// Table is the lock table of one document at one site. Grants attach to
// DataGuide nodes. Not safe for concurrent use; the scheduler serialises
// access under its site mutex, which matches the paper's design where the
// lock manager is a passive component driven by the scheduler.
type Table struct {
	guide  *dataguide.DataGuide
	grants map[grantKey][]grant
	// held tracks, per transaction, the set of (node, mode) pairs already
	// granted so duplicate requests are absorbed quickly.
	held map[txn.ID]map[grantKey]uint16
}

// NewTable creates an empty lock table over the document's DataGuide.
func NewTable(g *dataguide.DataGuide) *Table {
	return &Table{
		guide:  g,
		grants: make(map[grantKey][]grant),
		held:   make(map[txn.ID]map[grantKey]uint16),
	}
}

// Guide returns the DataGuide the table locks over.
func (t *Table) Guide() *dataguide.DataGuide { return t.guide }

func modeBit(m Mode) uint16 { return 1 << uint(m) }

func (t *Table) holds(id txn.ID, key grantKey, m Mode) bool {
	return t.held[id][key]&modeBit(m) != 0
}

// conflictsAt collects holders on one lock target that are incompatible
// with a request for mode m under guard g by requester. Incompatible modes
// still coexist when both sides carry provably disjoint predicate guards —
// the DGLOCK/XDGL refinement.
func (t *Table) conflictsAt(key grantKey, requester txn.ID, m Mode, g *Guard, out map[txn.ID]txn.TS) {
	for _, gr := range t.grants[key] {
		if gr.txn == requester {
			continue
		}
		if !Compatible(gr.mode, m) && !gr.guard.Disjoint(g) {
			out[gr.txn] = gr.ts
		}
	}
}

// conflictsFor computes the conflict set for a single request. All checks
// are local to the lock target: XDGL's intention locks make cross-level
// conflicts surface at the node itself, and the baseline tree protocols
// lock full root-to-node paths, so overlapping accesses always share a
// node. The cost asymmetry between the protocols is in the *number* of
// requests, not the per-request check.
func (t *Table) conflictsFor(requester txn.ID, req Request, out map[txn.ID]txn.TS) {
	t.conflictsAt(req.key(), requester, req.Mode, req.Guard, out)
}

// Acquire attempts to grant every request to the owner atomically. If any
// request conflicts, nothing is granted and the full set of conflicting
// transactions is returned, so the scheduler can add wait-for edges for all
// of them at once. Duplicate requests and requests already held by the
// owner are absorbed.
func (t *Table) Acquire(owner Owner, reqs []Request) []Conflict {
	conflicts := make(map[txn.ID]txn.TS)
	// First pass: conflict check only.
	seen := make(map[grantKey]uint16, len(reqs))
	var todo []Request
	for _, req := range reqs {
		if req.Node == nil && req.DocNode == nil {
			continue
		}
		key := req.key()
		// Absorption: an unguarded held lock of the same mode covers any
		// re-request; guarded grants are conservatively re-acquired (the
		// bitmask only records unguarded holds).
		if req.Guard == nil && t.holds(owner.Txn, key, req.Mode) {
			continue
		}
		if req.Guard == nil {
			if seen[key]&modeBit(req.Mode) != 0 {
				continue
			}
			seen[key] |= modeBit(req.Mode)
		}
		todo = append(todo, req)
		t.conflictsFor(owner.Txn, req, conflicts)
	}
	if len(conflicts) > 0 {
		out := make([]Conflict, 0, len(conflicts))
		for id, ts := range conflicts {
			out = append(out, Conflict{Txn: id, TS: ts})
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Txn.Less(out[j].Txn) })
		return out
	}
	// Second pass: grant.
	for _, req := range todo {
		key := req.key()
		t.grants[key] = append(t.grants[key], grant{
			txn: owner.Txn, ts: owner.TS, op: owner.Op, mode: req.Mode, guard: req.Guard,
		})
		hm := t.held[owner.Txn]
		if hm == nil {
			hm = make(map[grantKey]uint16)
			t.held[owner.Txn] = hm
		}
		if req.Guard == nil {
			hm[key] |= modeBit(req.Mode)
		} else if _, ok := hm[key]; !ok {
			hm[key] = 0 // track the key for release bookkeeping
		}
	}
	return nil
}

// ReleaseOp releases the locks the transaction acquired for one operation.
// Locks the same transaction acquired for earlier operations stay, honouring
// strict 2PL for everything that logically executed.
func (t *Table) ReleaseOp(id txn.ID, op int) int {
	released := 0
	hm := t.held[id]
	for node := range hm {
		gs := t.grants[node]
		kept := gs[:0]
		var remaining uint16
		for _, gr := range gs {
			if gr.txn == id && gr.op == op {
				released++
				continue
			}
			kept = append(kept, gr)
			if gr.txn == id {
				remaining |= modeBit(gr.mode)
			}
		}
		if len(kept) == 0 {
			delete(t.grants, node)
		} else {
			t.grants[node] = kept
		}
		if remaining == 0 {
			delete(hm, node)
		} else {
			hm[node] = remaining
		}
	}
	if len(hm) == 0 {
		delete(t.held, id)
	}
	return released
}

// ReleaseAll releases every lock of the transaction — the strict-2PL release
// at commit or abort. Returns the number of grants released.
func (t *Table) ReleaseAll(id txn.ID) int {
	released := 0
	for node := range t.held[id] {
		gs := t.grants[node]
		kept := gs[:0]
		for _, gr := range gs {
			if gr.txn == id {
				released++
				continue
			}
			kept = append(kept, gr)
		}
		if len(kept) == 0 {
			delete(t.grants, node)
		} else {
			t.grants[node] = kept
		}
	}
	delete(t.held, id)
	return released
}

// Held reports whether the transaction holds at least one lock. Cheaper than
// HeldBy for admission checks: one map lookup, no grant walk.
func (t *Table) Held(id txn.ID) bool {
	return len(t.held[id]) > 0
}

// OwnerCount returns the number of distinct transactions holding at least one
// lock — the quiescence condition of an online protocol switch: a table with
// zero owners has no in-flight strict-2PL transaction whose footprint could
// straddle two protocols.
func (t *Table) OwnerCount() int { return len(t.held) }

// HeldBy returns the number of grants currently held by the transaction.
func (t *Table) HeldBy(id txn.ID) int {
	n := 0
	for node := range t.held[id] {
		for _, gr := range t.grants[node] {
			if gr.txn == id {
				n++
			}
		}
	}
	return n
}

// Holders returns the distinct transactions holding any lock on the node.
func (t *Table) Holders(node *dataguide.Node) []txn.ID {
	set := map[txn.ID]bool{}
	for _, gr := range t.grants[grantKey{dg: node.ID}] {
		set[gr.txn] = true
	}
	out := make([]txn.ID, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Modes returns the modes the transaction holds on the node.
func (t *Table) Modes(id txn.ID, node *dataguide.Node) []Mode {
	var out []Mode
	bits := t.held[id][grantKey{dg: node.ID}]
	for m := Mode(0); int(m) < numModes; m++ {
		if bits&modeBit(m) != 0 {
			out = append(out, m)
		}
	}
	return out
}

// GrantCount returns the total number of grants in the table.
func (t *Table) GrantCount() int {
	n := 0
	for _, gs := range t.grants {
		n += len(gs)
	}
	return n
}

// ActiveTxns returns the transactions holding at least one lock.
func (t *Table) ActiveTxns() []txn.ID {
	out := make([]txn.ID, 0, len(t.held))
	for id := range t.held {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}
