package lock

import (
	"testing"

	"repro/internal/dataguide"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

const storeXML = `
<products>
  <product id="a"><id>4</id><description>Mouse</description><price>10.30</price></product>
  <product id="b"><id>14</id><description>Keyboard</description><price>9.90</price></product>
</products>`

func guide(t *testing.T) *dataguide.DataGuide {
	t.Helper()
	doc, err := xmltree.ParseString("d2", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	return dataguide.Build(doc)
}

func owner(site int, seq int64, op int) Owner {
	return Owner{Txn: txn.ID{Site: site, Seq: seq}, TS: txn.TS(seq), Op: op}
}

func TestAcquireRelease(t *testing.T) {
	g := guide(t)
	tbl := NewTable(g)
	product := g.Lookup("/products/product")
	o1 := owner(1, 1, 0)
	if c := tbl.Acquire(o1, []Request{{Node: product, Mode: ST}}); c != nil {
		t.Fatalf("conflict on empty table: %v", c)
	}
	if tbl.HeldBy(o1.Txn) != 1 {
		t.Fatalf("held = %d", tbl.HeldBy(o1.Txn))
	}
	// Same txn re-requesting is absorbed.
	if c := tbl.Acquire(o1, []Request{{Node: product, Mode: ST}}); c != nil {
		t.Fatalf("re-request conflicted: %v", c)
	}
	if tbl.HeldBy(o1.Txn) != 1 {
		t.Fatalf("duplicate grant added: held = %d", tbl.HeldBy(o1.Txn))
	}
	if n := tbl.ReleaseAll(o1.Txn); n != 1 {
		t.Fatalf("released = %d", n)
	}
	if tbl.GrantCount() != 0 {
		t.Fatal("grants remain")
	}
}

func TestConflictReported(t *testing.T) {
	g := guide(t)
	tbl := NewTable(g)
	product := g.Lookup("/products/product")
	o1, o2 := owner(1, 1, 0), owner(1, 2, 0)
	if c := tbl.Acquire(o1, []Request{{Node: product, Mode: ST}}); c != nil {
		t.Fatal(c)
	}
	conflicts := tbl.Acquire(o2, []Request{{Node: product, Mode: IX}})
	if len(conflicts) != 1 || conflicts[0].Txn != o1.Txn {
		t.Fatalf("conflicts = %v", conflicts)
	}
	// Nothing was granted to o2.
	if tbl.HeldBy(o2.Txn) != 0 {
		t.Fatal("partial grant leaked on conflict")
	}
	// Compatible request still fine.
	if c := tbl.Acquire(o2, []Request{{Node: product, Mode: IS}}); c != nil {
		t.Fatalf("IS should coexist with ST: %v", c)
	}
}

func TestAtomicAcquireAllOrNothing(t *testing.T) {
	g := guide(t)
	tbl := NewTable(g)
	product := g.Lookup("/products/product")
	price := g.Lookup("/products/product/price")
	o1, o2 := owner(1, 1, 0), owner(1, 2, 0)
	if c := tbl.Acquire(o1, []Request{{Node: price, Mode: X}}); c != nil {
		t.Fatal(c)
	}
	// o2 requests two locks; the second conflicts, so the first must not
	// be granted either.
	conflicts := tbl.Acquire(o2, []Request{
		{Node: product, Mode: IS},
		{Node: price, Mode: ST},
	})
	if len(conflicts) != 1 {
		t.Fatalf("conflicts = %v", conflicts)
	}
	if tbl.HeldBy(o2.Txn) != 0 {
		t.Fatal("acquire was not atomic")
	}
}

func TestReleaseOpKeepsEarlierOps(t *testing.T) {
	g := guide(t)
	tbl := NewTable(g)
	product := g.Lookup("/products/product")
	price := g.Lookup("/products/product/price")
	id := txn.ID{Site: 1, Seq: 1}
	if c := tbl.Acquire(Owner{Txn: id, TS: 1, Op: 0}, []Request{{Node: product, Mode: ST}}); c != nil {
		t.Fatal(c)
	}
	if c := tbl.Acquire(Owner{Txn: id, TS: 1, Op: 1}, []Request{{Node: price, Mode: X}}); c != nil {
		t.Fatal(c)
	}
	if n := tbl.ReleaseOp(id, 1); n != 1 {
		t.Fatalf("released = %d, want 1", n)
	}
	if tbl.HeldBy(id) != 1 {
		t.Fatalf("held = %d, want 1 (op 0 lock must stay)", tbl.HeldBy(id))
	}
	if got := tbl.Modes(id, product); len(got) != 1 || got[0] != ST {
		t.Fatalf("modes = %v", got)
	}
	// Releasing an op that re-requested an existing lock must not drop it:
	// op 2 asks for ST on product (absorbed), then is released.
	if c := tbl.Acquire(Owner{Txn: id, TS: 1, Op: 2}, []Request{{Node: product, Mode: ST}}); c != nil {
		t.Fatal(c)
	}
	tbl.ReleaseOp(id, 2)
	if tbl.HeldBy(id) != 1 {
		t.Fatal("absorbed re-request was released with the later op")
	}
}

func TestPathLockSemantics(t *testing.T) {
	doc, err := xmltree.ParseString("d2", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	tbl := NewTable(g)
	root := doc.Root
	product := xpath.Eval(xpath.MustParse("/products/product[1]"), doc)[0]
	price := xpath.Eval(xpath.MustParse("/products/product[1]/price"), doc)[0]
	o1, o2, o3 := owner(1, 1, 0), owner(1, 2, 0), owner(1, 3, 0)

	// A reader of the first product's price locks the full path.
	readerPath := []Request{
		{DocNode: root, Mode: R},
		{DocNode: product, Mode: R},
		{DocNode: price, Mode: R},
	}
	if c := tbl.Acquire(o1, readerPath); c != nil {
		t.Fatal(c)
	}
	// A writer on the price conflicts at the price node.
	if c := tbl.Acquire(o2, []Request{{DocNode: price, Mode: W}}); len(c) != 1 || c[0].Txn != o1.Txn {
		t.Fatalf("W on read node conflicts = %v", c)
	}
	// A writer on the product node (structural change of its children)
	// conflicts at the product node via the reader's path lock.
	if c := tbl.Acquire(o2, []Request{{DocNode: product, Mode: W}}); len(c) != 1 {
		t.Fatalf("W on path node conflicts = %v", c)
	}
	// A writer on a disjoint sibling subtree passes: its path shares only
	// R-locked ancestors, and R/R is compatible.
	sibling := xpath.Eval(xpath.MustParse("/products/product[2]"), doc)[0]
	w2 := []Request{
		{DocNode: sibling, Mode: W},
		{DocNode: root, Mode: R},
	}
	if c := tbl.Acquire(o2, w2); c != nil {
		t.Fatalf("disjoint subtree W conflicted: %v", c)
	}
	// A reader whose path crosses the W-locked sibling is blocked there.
	siblingPrice := xpath.Eval(xpath.MustParse("/products/product[2]/price"), doc)[0]
	r3 := []Request{
		{DocNode: root, Mode: R},
		{DocNode: sibling, Mode: R},
		{DocNode: siblingPrice, Mode: R},
	}
	if c := tbl.Acquire(o3, r3); len(c) != 1 || c[0].Txn != o2.Txn {
		t.Fatalf("reader crossing W conflicts = %v", c)
	}
}

func TestMultipleConflictHolders(t *testing.T) {
	g := guide(t)
	tbl := NewTable(g)
	product := g.Lookup("/products/product")
	o1, o2, o3 := owner(1, 1, 0), owner(1, 2, 0), owner(1, 3, 0)
	if c := tbl.Acquire(o1, []Request{{Node: product, Mode: ST}}); c != nil {
		t.Fatal(c)
	}
	if c := tbl.Acquire(o2, []Request{{Node: product, Mode: ST}}); c != nil {
		t.Fatal(c)
	}
	conflicts := tbl.Acquire(o3, []Request{{Node: product, Mode: X}})
	if len(conflicts) != 2 {
		t.Fatalf("conflicts = %v, want both ST holders", conflicts)
	}
	// Conflict carries timestamps for wait-for edges.
	for _, c := range conflicts {
		if c.TS == 0 {
			t.Fatal("conflict missing timestamp")
		}
	}
	if got := tbl.Holders(product); len(got) != 2 {
		t.Fatalf("holders = %v", got)
	}
	if got := tbl.ActiveTxns(); len(got) != 2 {
		t.Fatalf("active = %v", got)
	}
}

// TestScenarioLockIncompatibility re-creates §2.4: a query holding ST on the
// products node blocks a concurrent insert needing IX there.
func TestScenarioLockIncompatibility(t *testing.T) {
	doc, err := xmltree.ParseString("d2", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	tbl := NewTable(g)
	p := XDGL{}

	// t2op1: query all products — ST on /products/product, IS above.
	qreqs, err := p.QueryRequests(doc, g, xpath.MustParse("//product"))
	if err != nil {
		t.Fatal(err)
	}
	o2 := owner(2, 2, 0)
	if c := tbl.Acquire(o2, qreqs); c != nil {
		t.Fatal(c)
	}

	// t1op2: insert a new product into /products — needs IX on /products.
	u := &xupdate.Update{Kind: xupdate.Insert, Target: "/products", Pos: xmltree.Into,
		New: &xupdate.NodeSpec{Name: "product", Children: []*xupdate.NodeSpec{{Name: "id", Text: "13"}}}}
	ureqs, err := p.UpdateRequests(doc, g, u)
	if err != nil {
		t.Fatal(err)
	}
	o1 := owner(1, 1, 0)
	conflicts := tbl.Acquire(o1, ureqs)
	if len(conflicts) != 1 || conflicts[0].Txn != o2.Txn {
		t.Fatalf("insert should block on the query: %v", conflicts)
	}

	// After the query commits, the insert proceeds.
	tbl.ReleaseAll(o2.Txn)
	if c := tbl.Acquire(o1, ureqs); c != nil {
		t.Fatalf("insert still blocked after release: %v", c)
	}
}

func TestNilNodeRequestIgnored(t *testing.T) {
	g := guide(t)
	tbl := NewTable(g)
	o := owner(1, 1, 0)
	if c := tbl.Acquire(o, []Request{{Node: nil, Mode: ST}}); c != nil {
		t.Fatal(c)
	}
	if tbl.GrantCount() != 0 {
		t.Fatal("nil request granted")
	}
}
