// Package mvcc maintains per-document version chains for snapshot reads:
// immutable committed trees stamped with a site-local commit timestamp, a
// pin protocol that keeps a version alive while read-only transactions use
// it, and a bounded GC that retires versions nobody pins.
//
// The chain decouples commit from materialisation. A writer's commit calls
// Advance — an O(1) bump of the chain's commit timestamp that marks the head
// version stale — and the next actor to need a committed tree (a reader, or
// the next writer before its first change) publishes a fresh snapshot. That
// keeps the write path free of deep copies while readers always see a
// committed prefix of the document's history.
package mvcc

import (
	"sync"
	"time"

	"repro/internal/txn"
	"repro/internal/vindex"
	"repro/internal/xmltree"
)

// Version is one committed state of a document. The tree is immutable: it is
// produced by xmltree.Document.Snapshot and never mutated afterwards, so any
// number of readers may evaluate queries against it without locks.
type Version struct {
	// TS is the commit timestamp the version was published at. Every commit
	// that the version reflects has a timestamp ≤ TS.
	TS txn.TS
	// Doc is the immutable committed tree.
	Doc *xmltree.Document

	pins      int
	published time.Time

	// idx is the version's value index, built lazily by the first indexable
	// snapshot read pinned to this version and immutable afterwards — it is
	// derived solely from the immutable tree, so it is consistent with this
	// version (and stamped by its TS) by construction, no matter how far the
	// live index has advanced.
	idxOnce sync.Once
	idx     *vindex.DocIndex
}

// ValueIndex returns the version's snapshot value index, building it on
// first use from keys() — the live index's enabled-key set at build time.
// Keys enabled after the build are simply absent: reads probing them fall
// back to scanning this version, never to the live index. Safe for
// concurrent use by lock-free readers.
func (v *Version) ValueIndex(keys func() []string) *vindex.DocIndex {
	v.idxOnce.Do(func() {
		v.idx = vindex.BuildDocIndex(v.Doc, keys())
	})
	return v.idx
}

// Options tunes a chain. The zero value is usable.
type Options struct {
	// MaxVersions bounds the number of unpinned versions retained (default
	// 4). Pinned versions are always kept, so the real bound is
	// max(MaxVersions, pinned+1): GC never drops a version a reader holds.
	MaxVersions int
	// Retention, when positive, additionally retires unpinned non-head
	// versions older than this age even while the chain is under
	// MaxVersions. Zero disables age-based retirement.
	Retention time.Duration
}

// DefaultMaxVersions is the retained-version bound when Options.MaxVersions
// is zero.
const DefaultMaxVersions = 4

// Chain is the version chain of one document. All methods are safe for
// concurrent use. The chain's mutex is a leaf lock: no Chain method calls
// out while holding it.
type Chain struct {
	mu       sync.Mutex
	versions []*Version // ascending TS order; versions[len-1] is the head
	// commitTS is the largest commit timestamp any writer has advanced the
	// chain to. When it exceeds the head version's TS, the head is stale:
	// commits have happened that no published version reflects yet.
	commitTS  txn.TS
	maxKeep   int
	retention time.Duration
	reclaimed int64 // versions retired by gcLocked over the chain's lifetime
}

// NewChain builds an empty chain.
func NewChain(opts Options) *Chain {
	keep := opts.MaxVersions
	if keep <= 0 {
		keep = DefaultMaxVersions
	}
	return &Chain{maxKeep: keep, retention: opts.Retention}
}

// Publish appends a committed tree stamped ts as the new head. A publish at
// or below the current head's timestamp is dropped (a concurrent publisher
// won the race with a newer tree); the commit timestamp still folds in ts so
// staleness stays monotone. Returns whether the version was installed.
func (c *Chain) Publish(doc *xmltree.Document, ts txn.TS) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if ts > c.commitTS {
		c.commitTS = ts
	}
	if n := len(c.versions); n > 0 && c.versions[n-1].TS >= ts {
		return false
	}
	c.versions = append(c.versions, &Version{TS: ts, Doc: doc, published: time.Now()})
	c.gcLocked()
	return true
}

// Advance records that a commit stamped ts has consolidated into the live
// document. O(1): it only moves the commit timestamp, leaving the head
// version stale until someone publishes a newer snapshot.
func (c *Chain) Advance(ts txn.TS) {
	c.mu.Lock()
	if ts > c.commitTS {
		c.commitTS = ts
	}
	c.mu.Unlock()
}

// Stale reports whether the head version (if any) lags the commit timestamp,
// i.e. a fresh snapshot of the live document would observe commits the head
// does not include.
func (c *Chain) Stale() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.versions)
	return n == 0 || c.versions[n-1].TS < c.commitTS
}

// CommitTS returns the chain's commit timestamp.
func (c *Chain) CommitTS() txn.TS {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commitTS
}

// Pin returns the newest version with TS ≤ ts, incrementing its pin count,
// or nil when no retained version is old enough (the reader's snapshot has
// been GC'd, or nothing is published yet). Callers must pair every
// successful Pin with exactly one Unpin.
func (c *Chain) Pin(ts txn.TS) *Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i := len(c.versions) - 1; i >= 0; i-- {
		if c.versions[i].TS <= ts {
			c.versions[i].pins++
			return c.versions[i]
		}
	}
	return nil
}

// Unpin releases a pin taken by Pin and retires versions the release freed.
func (c *Chain) Unpin(v *Version) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if v.pins > 0 {
		v.pins--
	}
	c.gcLocked()
}

// Head returns the newest version without pinning it, or nil.
func (c *Chain) Head() *Version {
	c.mu.Lock()
	defer c.mu.Unlock()
	if n := len(c.versions); n > 0 {
		return c.versions[n-1]
	}
	return nil
}

// Len returns the number of retained versions.
func (c *Chain) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.versions)
}

// Pinned returns the number of retained versions with at least one live pin.
func (c *Chain) Pinned() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.versions {
		if v.pins > 0 {
			n++
		}
	}
	return n
}

// Reclaimed returns how many versions GC has retired over the chain's
// lifetime — a monotonic counter for observability.
func (c *Chain) Reclaimed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reclaimed
}

// gcLocked retires versions: the head is always kept, pinned versions are
// never dropped, and unpinned non-head versions are dropped oldest-first
// while the chain is over its size bound, or individually once aged past
// Retention. A pinned version shields only itself — unpinned versions
// published after it are still eligible — so the chain stays bounded by
// maxKeep plus the number of distinct pinned versions even under a long
// reader.
func (c *Chain) gcLocked() {
	if len(c.versions) <= 1 {
		return
	}
	now := time.Now()
	excess := len(c.versions) - c.maxKeep
	out := c.versions[:0]
	last := len(c.versions) - 1
	for i, v := range c.versions {
		if i == last || v.pins > 0 {
			out = append(out, v)
			continue
		}
		aged := c.retention > 0 && now.Sub(v.published) > c.retention
		if excess > 0 || aged {
			if excess > 0 {
				excess--
			}
			continue
		}
		out = append(out, v)
	}
	c.reclaimed += int64(len(c.versions) - len(out))
	for i := len(out); i < len(c.versions); i++ {
		c.versions[i] = nil
	}
	c.versions = out
}
