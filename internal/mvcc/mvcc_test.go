package mvcc

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xmltree"
)

func doc(t testing.TB, label string) *xmltree.Document {
	t.Helper()
	d, err := xmltree.ParseString("v", fmt.Sprintf("<root><v>%s</v></root>", label))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return d
}

func TestPublishPinOrdering(t *testing.T) {
	c := NewChain(Options{})
	if v := c.Pin(100); v != nil {
		t.Fatalf("pin on empty chain returned %v", v)
	}
	c.Publish(doc(t, "a"), 2)
	c.Publish(doc(t, "b"), 5)
	c.Publish(doc(t, "c"), 9)

	cases := []struct {
		ts   txn.TS
		want txn.TS
		ok   bool
	}{
		{1, 0, false}, // older than everything retained
		{2, 2, true},
		{4, 2, true},
		{5, 5, true},
		{8, 5, true},
		{9, 9, true},
		{100, 9, true},
	}
	for _, tc := range cases {
		v := c.Pin(tc.ts)
		if !tc.ok {
			if v != nil {
				t.Errorf("Pin(%d) = version %d, want nil", tc.ts, v.TS)
			}
			continue
		}
		if v == nil || v.TS != tc.want {
			t.Errorf("Pin(%d) = %v, want version %d", tc.ts, v, tc.want)
			continue
		}
		c.Unpin(v)
	}
}

func TestPublishStaleAdvance(t *testing.T) {
	c := NewChain(Options{})
	if !c.Stale() {
		t.Fatal("empty chain must be stale")
	}
	c.Publish(doc(t, "a"), 3)
	if c.Stale() {
		t.Fatal("freshly published head must not be stale")
	}
	c.Advance(7)
	if !c.Stale() {
		t.Fatal("Advance past head must mark the chain stale")
	}
	if got := c.CommitTS(); got != 7 {
		t.Fatalf("CommitTS = %d, want 7", got)
	}
	// A racing publish at an older stamp than the head is dropped.
	c.Publish(doc(t, "b"), 7)
	if c.Publish(doc(t, "stale"), 5) {
		t.Fatal("publish at ts older than head must be dropped")
	}
	if h := c.Head(); h == nil || h.TS != 7 {
		t.Fatalf("head = %v, want version 7", h)
	}
}

// TestGCBoundedUnderPinnedReader is the satellite requirement: a long reader
// pinning an old version must not make the chain grow without bound.
func TestGCBoundedUnderPinnedReader(t *testing.T) {
	c := NewChain(Options{MaxVersions: 3})
	c.Publish(doc(t, "old"), 1)
	pinned := c.Pin(1)
	if pinned == nil || pinned.TS != 1 {
		t.Fatalf("pin = %v, want version 1", pinned)
	}
	for ts := txn.TS(2); ts <= 200; ts++ {
		c.Publish(doc(t, "new"), ts)
		if n := c.Len(); n > 4 { // maxKeep + the pinned version
			t.Fatalf("chain grew to %d versions under a pinned reader", n)
		}
	}
	// The pinned version must still be reachable at its own timestamp.
	if v := c.Pin(1); v == nil || v.TS != 1 {
		t.Fatalf("pinned version was GC'd: Pin(1) = %v", v)
	}
	c.Unpin(pinned)
	c.Unpin(pinned)
	// Once released, the old version retires on the next GC trigger.
	c.Publish(doc(t, "tail"), 201)
	if v := c.Pin(1); v != nil {
		t.Fatalf("released old version survived GC: Pin(1) = version %d", v.TS)
	}
}

func TestGCRetentionAgesOutOldVersions(t *testing.T) {
	c := NewChain(Options{MaxVersions: 10, Retention: time.Millisecond})
	c.Publish(doc(t, "a"), 1)
	c.Publish(doc(t, "b"), 2)
	time.Sleep(5 * time.Millisecond)
	c.Publish(doc(t, "c"), 3)
	if n := c.Len(); n != 1 {
		t.Fatalf("aged versions survived: Len = %d, want 1", n)
	}
	if h := c.Head(); h == nil || h.TS != 3 {
		t.Fatalf("head = %v, want version 3", h)
	}
}

// TestConcurrentPublishPinRetire hammers the chain from publishers, readers
// and an advancing writer at once; run under -race it is the subsystem's
// race test.
func TestConcurrentPublishPinRetire(t *testing.T) {
	c := NewChain(Options{MaxVersions: 4})
	base := doc(t, "seed")
	c.Publish(base, 1)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < 3; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ts := txn.TS(10 + p)
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.Advance(ts)
				c.Publish(base, ts)
				ts += 3
			}
		}(p)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				v := c.Pin(txn.TS(1 << 30))
				if v == nil {
					t.Error("pin with huge ts found no version")
					return
				}
				if v.Doc == nil {
					t.Error("pinned version without a tree")
				}
				c.Unpin(v)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if n := c.Len(); n > 8 {
		t.Fatalf("chain retained %d versions after quiescence", n)
	}
}
