package obs

import (
	"bufio"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// WriteText renders the registry in Prometheus text exposition format
// (version 0.0.4): every registered metric in registration order, stamped
// with the registry's constant labels. Safe to call concurrently with
// metric writers — values are read atomically; a scrape racing an Observe
// sees either side of it, never a torn histogram.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	metrics := append([]metric(nil), r.order...)
	var consts []string
	for _, lp := range r.labels {
		consts = append(consts, renderLabel(lp.k, lp.v))
	}
	r.mu.Unlock()

	bw := bufio.NewWriter(w)
	ew := &expoWriter{w: bw, consts: consts}
	for _, m := range metrics {
		m.expo(ew)
	}
	return bw.Flush()
}

// Text renders the registry to a string — the payload of the MetricsReq RPC.
func (r *Registry) Text() string {
	var sb strings.Builder
	_ = r.WriteText(&sb)
	return sb.String()
}

// Handler serves the registry over HTTP — mounted on dtxd's -metrics-addr
// listener. Scraping arms the registry: the first consumer that can see
// histogram data turns histogram collection on, so an operator never stares
// at empty buckets because a flag was forgotten (dtxd arms at startup
// anyway; this is the belt to that suspender).
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		r.Arm()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}

// expoWriter carries the render state through one exposition pass.
type expoWriter struct {
	w      *bufio.Writer
	consts []string
}

func (ew *expoWriter) header(name, help, kind string) {
	ew.w.WriteString("# HELP ")
	ew.w.WriteString(name)
	ew.w.WriteByte(' ')
	ew.w.WriteString(strings.ReplaceAll(help, "\n", " "))
	ew.w.WriteString("\n# TYPE ")
	ew.w.WriteString(name)
	ew.w.WriteByte(' ')
	ew.w.WriteString(kind)
	ew.w.WriteByte('\n')
}

// sample writes one line: name{consts,extras} value. extras entries are
// pre-rendered `k="v"` pairs; empty entries are skipped.
func (ew *expoWriter) sample(name string, value float64, extras ...string) {
	ew.w.WriteString(name)
	first := true
	open := func() {
		if first {
			ew.w.WriteByte('{')
			first = false
		} else {
			ew.w.WriteByte(',')
		}
	}
	for _, l := range ew.consts {
		open()
		ew.w.WriteString(l)
	}
	for _, l := range extras {
		if l == "" {
			continue
		}
		open()
		ew.w.WriteString(l)
	}
	if !first {
		ew.w.WriteByte('}')
	}
	ew.w.WriteByte(' ')
	ew.w.WriteString(strconv.FormatFloat(value, 'g', -1, 64))
	ew.w.WriteByte('\n')
}

// renderLabel renders one `key="value"` pair with label-value escaping.
func renderLabel(key, value string) string {
	var sb strings.Builder
	sb.WriteString(key)
	sb.WriteString(`="`)
	for _, r := range value {
		switch r {
		case '\\':
			sb.WriteString(`\\`)
		case '"':
			sb.WriteString(`\"`)
		case '\n':
			sb.WriteString(`\n`)
		default:
			sb.WriteRune(r)
		}
	}
	sb.WriteByte('"')
	return sb.String()
}

// ---- per-kind exposition ----

func (c *Counter) expo(ew *expoWriter) {
	ew.header(c.name, c.help, "counter")
	ew.sample(c.name, float64(c.Value()), c.label)
}

func (g *Gauge) expo(ew *expoWriter) {
	ew.header(g.name, g.help, "gauge")
	ew.sample(g.name, float64(g.Value()))
}

func (f *funcMetric) expo(ew *expoWriter) {
	ew.header(f.name, f.help, f.kind)
	ew.sample(f.name, f.fn())
}

func (f *labeledFuncMetric) expo(ew *expoWriter) {
	ew.header(f.name, f.help, "gauge")
	for _, lv := range f.fn() {
		ew.sample(f.name, lv.Value, renderLabel(f.key, lv.Label))
	}
}

func (v *CounterVec) expo(ew *expoWriter) {
	ew.header(v.name, v.help, "counter")
	for _, c := range v.children() {
		ew.sample(v.name, float64(c.Value()), c.label)
	}
}

func (h *Histogram) expo(ew *expoWriter) {
	ew.header(h.name, h.help, "histogram")
	h.expoSamples(ew)
}

func (h *Histogram) expoSamples(ew *expoWriter) {
	var cum int64
	for i, b := range h.bounds {
		cum += h.buckets[i].Load()
		ew.sample(h.name+"_bucket", float64(cum), h.label,
			renderLabel("le", strconv.FormatFloat(b, 'g', -1, 64)))
	}
	cum += h.buckets[len(h.bounds)].Load()
	ew.sample(h.name+"_bucket", float64(cum), h.label, `le="+Inf"`)
	ew.sample(h.name+"_sum", h.Sum(), h.label)
	ew.sample(h.name+"_count", float64(cum), h.label)
}

func (v *HistogramVec) expo(ew *expoWriter) {
	ew.header(v.name, v.help, "histogram")
	v.mu.Lock()
	kids := make([]*Histogram, 0, len(v.order))
	for _, l := range v.order {
		kids = append(kids, v.kids[l])
	}
	v.mu.Unlock()
	for _, h := range kids {
		h.expoSamples(ew)
	}
}
