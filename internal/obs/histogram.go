package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// LatencyBuckets are the default bounds (seconds) for operation and 2PC
// phase latencies: 50µs to 2.5s, roughly ×2..×2.5 per step — the scheduler's
// hot paths sit around 100µs–50ms depending on contention and latency
// injection.
var LatencyBuckets = []float64{
	0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// SizeBuckets are the default bounds for small-count distributions (persist
// batch sizes, replication span lengths).
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// Histogram is a fixed-bucket histogram. Observations are gated on the
// owning registry's armed flag: unarmed, Observe is a single atomic load.
// Buckets are stored non-cumulatively (each observation increments exactly
// one bucket), so exposition-time cumulation can never tear a bucket count
// against the total. The sum is a CAS-looped float64.
type Histogram struct {
	name  string
	help  string
	label string // rendered variable label when owned by a Vec, else ""

	armed   *atomic.Int32
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf overflow
	sumBits atomic.Uint64
}

func newHistogram(r *Registry, name, help, label string, bounds []float64) *Histogram {
	return &Histogram{
		name: name, help: help, label: label,
		armed:   &r.armed,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value if the registry is armed.
func (h *Histogram) Observe(v float64) {
	if h.armed.Load() == 0 {
		return
	}
	h.observe(v)
}

// ObserveDuration records a latency in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) {
	if h.armed.Load() == 0 {
		return
	}
	h.observe(d.Seconds())
}

func (h *Histogram) observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	var n int64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	return math.Float64frombits(h.sumBits.Load())
}

// Bounds returns the histogram's bucket upper bounds. The slice is the
// histogram's own backing array and must not be mutated.
func (h *Histogram) Bounds() []float64 { return h.bounds }

// Snapshot copies the current non-cumulative bucket counts: len(Bounds())+1
// entries, the last being the +Inf overflow bucket. Windowed consumers (the
// adaptive scheduler's policy engine) diff two snapshots to recover the
// distribution of exactly one interval and feed it to QuantileOverBuckets.
func (h *Histogram) Snapshot() []int64 {
	out := make([]int64, len(h.buckets))
	for i := range h.buckets {
		out[i] = h.buckets[i].Load()
	}
	return out
}

// Quantile estimates the q-quantile of this histogram alone.
func (h *Histogram) Quantile(q float64) float64 { return Quantile(q, h) }

func (h *Histogram) metricName() string { return h.name }

// Span measures one interval against the armed gate. The zero Span is a
// no-op: Registry.Span returns it when unarmed, so the fast path costs one
// atomic load and no clock read.
type Span struct {
	start time.Time
}

// Span starts a measurement if the registry is armed. Nil-safe.
func (r *Registry) Span() Span {
	if !r.Armed() {
		return Span{}
	}
	return Span{start: time.Now()}
}

// Active reports whether the span is measuring (registry was armed at start).
func (sp Span) Active() bool { return !sp.start.IsZero() }

// Elapsed returns the time since the span started, zero for inactive spans.
func (sp Span) Elapsed() time.Duration {
	if sp.start.IsZero() {
		return 0
	}
	return time.Since(sp.start)
}

// Done records the elapsed time into the histogram; inactive spans no-op.
func (sp Span) Done(h *Histogram) {
	if sp.start.IsZero() {
		return
	}
	h.ObserveDuration(time.Since(sp.start))
}
