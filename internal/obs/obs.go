// Package obs is the dependency-free observability core: atomic counters,
// gauges and fixed-bucket histograms collected in a per-site Registry and
// exposed in Prometheus text format (expo.go), over the scheduler transport
// (sched's MetricsReq handler) and to the harness (Quantile).
//
// The design contract is that instrumentation is effectively free when
// nobody is looking. Counters are single atomic adds — exactly what the
// scheduler's old Stats struct cost — and are always live, because they are
// the one source of truth behind the sched.Stats compatibility view.
// Everything with a time.Now in it (histogram observations, Span) is gated
// on ONE atomic load of the registry's armed flag: an unarmed registry takes
// the load, sees zero and returns before touching the clock or any bucket.
// Arm() is called by consumers that actually read the data (dtxd's
// -metrics-addr listener, the harness's latency breakdown); embedded library
// use never arms and never pays.
//
// Label dimensions are deliberately minimal: every sample carries the
// registry's constant labels (the site), and a Vec adds exactly one variable
// label (the document, or the peer site for replication shipping). Vec
// children are resolved once at document-attach time and cached on the
// scheduler's per-document state, so the hot path never does a map lookup.
// Cardinality is bounded: past maxCardinality distinct label values a Vec
// folds further labels into the "__other__" child instead of growing without
// bound on adversarial document names.
package obs

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// maxCardinality bounds the distinct label values a Vec will track; further
// values share the overflow child.
const maxCardinality = 64

// OverflowLabel is the label value under which a Vec aggregates observations
// once maxCardinality distinct labels exist.
const OverflowLabel = "__other__"

// Registry holds one process-component's metrics (one per scheduler site).
// All registration methods are idempotent on the metric name: re-requesting
// a name returns the existing metric, so independent subsystems can share
// one without coordination. Registration is mutex-guarded and expected at
// construction time; reads and writes of registered metrics are lock-free.
type Registry struct {
	armed atomic.Int32

	mu     sync.Mutex
	labels []labelPair // constant labels stamped on every sample
	order  []metric    // exposition order = registration order
	byName map[string]metric
}

type labelPair struct{ k, v string }

// metric is anything the registry can expose.
type metric interface {
	metricName() string
	expo(w *expoWriter)
}

// New builds an empty, unarmed registry.
func New() *Registry {
	return &Registry{byName: make(map[string]metric)}
}

// SetLabel sets a constant label rendered on every sample of this registry
// (e.g. site="3"). Intended for construction time, before exposition.
func (r *Registry) SetLabel(key, value string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := range r.labels {
		if r.labels[i].k == key {
			r.labels[i].v = value
			return
		}
	}
	r.labels = append(r.labels, labelPair{key, value})
}

// Arm enables the gated instrumentation (histogram observations, spans).
// Counters are live regardless. Arm is sticky and safe to call repeatedly.
func (r *Registry) Arm() {
	if r != nil {
		r.armed.Store(1)
	}
}

// Armed reports whether gated instrumentation is enabled. Nil-safe: a nil
// registry is never armed, so call sites can gate on it without a nil check.
func (r *Registry) Armed() bool {
	return r != nil && r.armed.Load() != 0
}

// register installs m under its name, or returns the already-registered
// metric of that name. The caller asserts the concrete type; a name reused
// across kinds is a programming error and panics at construction time.
func (r *Registry) register(name string, m metric) metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.byName[name]; ok {
		return old
	}
	r.byName[name] = m
	r.order = append(r.order, m)
	return m
}

// Counter registers (or returns) a monotonically increasing counter.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, &Counter{name: name, help: help})
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as a different kind", name))
	}
	return c
}

// Gauge registers (or returns) a settable gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, &Gauge{name: name, help: help})
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as a different kind", name))
	}
	return g
}

// GaugeFunc registers a gauge whose value is computed at exposition time —
// the zero-write-cost shape for values that already live in the instrumented
// subsystem (queue depths, chain lengths, lag).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, kind: "gauge", fn: fn})
}

// CounterFunc is GaugeFunc with counter semantics: the function must be
// monotonic (e.g. summing per-document reclaim counters).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, &funcMetric{name: name, help: help, kind: "counter", fn: fn})
}

// LabeledGaugeFunc registers a gauge family whose (label, value) samples are
// enumerated at exposition time under the given label key.
func (r *Registry) LabeledGaugeFunc(name, help, labelKey string, fn func() []LabeledValue) {
	r.register(name, &labeledFuncMetric{name: name, help: help, key: labelKey, fn: fn})
}

// Histogram registers (or returns) a fixed-bucket histogram. bounds are the
// ascending bucket upper bounds; observations above the last bound land in
// the implicit +Inf bucket.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	m := r.register(name, newHistogram(r, name, help, "", bounds))
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as a different kind", name))
	}
	return h
}

// HistogramVec registers (or returns) a histogram family keyed by one
// variable label. Children are created by With and cached by callers.
func (r *Registry) HistogramVec(name, help, labelKey string, bounds []float64) *HistogramVec {
	m := r.register(name, &HistogramVec{
		reg: r, name: name, help: help, key: labelKey,
		bounds: append([]float64(nil), bounds...),
		kids:   make(map[string]*Histogram),
	})
	v, ok := m.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as a different kind", name))
	}
	return v
}

// CounterVec registers (or returns) a counter family keyed by one variable
// label.
func (r *Registry) CounterVec(name, help, labelKey string) *CounterVec {
	m := r.register(name, &CounterVec{name: name, help: help, key: labelKey, kids: make(map[string]*Counter)})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: %s already registered as a different kind", name))
	}
	return v
}

// ---- Counter ----

// Counter is a monotonically increasing atomic counter. Always live: it is
// the storage behind sched.Stats, armed or not.
type Counter struct {
	v     atomic.Int64
	name  string
	help  string
	label string // rendered variable label (`doc="d1"`) when owned by a Vec
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

// ---- Gauge ----

// Gauge is a settable atomic value.
type Gauge struct {
	v    atomic.Int64
	name string
	help string
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) metricName() string { return g.name }

// ---- function-backed metrics ----

// LabeledValue is one exposition-time sample of a LabeledGaugeFunc.
type LabeledValue struct {
	Label string
	Value float64
}

type funcMetric struct {
	name, help, kind string
	fn               func() float64
}

func (f *funcMetric) metricName() string { return f.name }

type labeledFuncMetric struct {
	name, help, key string
	fn              func() []LabeledValue
}

func (f *labeledFuncMetric) metricName() string { return f.name }

// ---- CounterVec ----

// CounterVec is a counter family over one variable label.
type CounterVec struct {
	name, help, key string
	mu              sync.Mutex
	kids            map[string]*Counter
	order           []string
}

// With returns the child counter for the label value, creating it on first
// use. Past maxCardinality distinct labels, the overflow child is shared.
func (v *CounterVec) With(label string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok := v.kids[label]; ok {
		return c
	}
	if len(v.kids) >= maxCardinality {
		label = OverflowLabel
		if c, ok := v.kids[label]; ok {
			return c
		}
	}
	c := &Counter{name: v.name, help: v.help, label: renderLabel(v.key, label)}
	v.kids[label] = c
	v.order = append(v.order, label)
	return c
}

// Total sums all children — the fold used by the Stats compatibility view.
func (v *CounterVec) Total() int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	var t int64
	for _, c := range v.kids {
		t += c.Value()
	}
	return t
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) children() []*Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Counter, 0, len(v.order))
	for _, l := range v.order {
		out = append(out, v.kids[l])
	}
	return out
}

// ---- HistogramVec ----

// HistogramVec is a histogram family over one variable label.
type HistogramVec struct {
	reg             *Registry
	name, help, key string
	bounds          []float64
	mu              sync.Mutex
	kids            map[string]*Histogram
	order           []string
}

// With returns the child histogram for the label value, creating it on
// first use, folding into the overflow child past maxCardinality.
func (v *HistogramVec) With(label string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok := v.kids[label]; ok {
		return h
	}
	if len(v.kids) >= maxCardinality {
		label = OverflowLabel
		if h, ok := v.kids[label]; ok {
			return h
		}
	}
	h := newHistogram(v.reg, v.name, v.help, renderLabel(v.key, label), v.bounds)
	v.kids[label] = h
	v.order = append(v.order, label)
	return h
}

// Children snapshots the current child histograms (for cross-label merges
// like the harness quantile breakdown).
func (v *HistogramVec) Children() []*Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]*Histogram, 0, len(v.order))
	for _, l := range v.order {
		out = append(out, v.kids[l])
	}
	return out
}

// Bounds returns the family's bucket upper bounds.
func (v *HistogramVec) Bounds() []float64 { return append([]float64(nil), v.bounds...) }

func (v *HistogramVec) metricName() string { return v.name }

// ---- quantile estimation ----

// Quantile estimates the q-quantile (0 < q <= 1) of the merged distribution
// of the given histograms, by linear interpolation inside the bucket where
// the cumulative count crosses q. Histograms must share bucket bounds (all
// children of one family do). Returns NaN when there are no observations.
func Quantile(q float64, hists ...*Histogram) float64 {
	if len(hists) == 0 {
		return math.NaN()
	}
	bounds := hists[0].bounds
	counts := make([]int64, len(bounds)+1)
	for _, h := range hists {
		for i := range counts {
			counts[i] += h.buckets[i].Load()
		}
	}
	return QuantileOverBuckets(q, bounds, counts)
}

// QuantileOverBuckets estimates the q-quantile of an explicit non-cumulative
// bucket-count vector over the given bounds (len(counts) == len(bounds)+1,
// the last entry being the +Inf overflow) — the windowed-delta companion of
// Quantile: diff two Histogram.Snapshot calls and pass the difference here to
// get the quantile of exactly that interval. Returns NaN when the counts sum
// to zero.
func QuantileOverBuckets(q float64, bounds []float64, counts []int64) float64 {
	var total int64
	for _, n := range counts {
		total += n
	}
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	var cum int64
	for i, n := range counts {
		prev := cum
		cum += n
		if float64(cum) < rank {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		if i == len(bounds) {
			// Overflow bucket: no upper bound to interpolate toward.
			return bounds[len(bounds)-1]
		}
		hi := bounds[i]
		if n == 0 {
			return hi
		}
		frac := (rank - float64(prev)) / float64(n)
		return lo + (hi-lo)*frac
	}
	return bounds[len(bounds)-1]
}
