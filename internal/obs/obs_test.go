package obs

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := New()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same instance.
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Fatalf("re-registration returned a different counter")
	}
	g := r.Gauge("g", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
}

func TestHistogramGatedOnArm(t *testing.T) {
	r := New()
	h := r.Histogram("h_seconds", "latency", LatencyBuckets)
	h.Observe(0.001)
	if sp := r.Span(); sp.Active() {
		t.Fatalf("unarmed registry produced an active span")
	}
	if got := h.Count(); got != 0 {
		t.Fatalf("unarmed histogram recorded %d observations", got)
	}
	r.Arm()
	h.Observe(0.001)
	sp := r.Span()
	if !sp.Active() {
		t.Fatalf("armed registry produced an inactive span")
	}
	sp.Done(h)
	if got := h.Count(); got != 2 {
		t.Fatalf("armed histogram count = %d, want 2", got)
	}
	if h.Sum() <= 0 {
		t.Fatalf("armed histogram sum = %v, want > 0", h.Sum())
	}
}

func TestNilRegistrySafe(t *testing.T) {
	var r *Registry
	if r.Armed() {
		t.Fatalf("nil registry reports armed")
	}
	r.Arm() // must not panic
	sp := r.Span()
	if sp.Active() {
		t.Fatalf("nil registry produced an active span")
	}
	sp.Done(nil) // inactive span never touches the histogram
}

func TestQuantileInterpolation(t *testing.T) {
	r := New()
	r.Arm()
	h := r.Histogram("q_seconds", "q", []float64{0.001, 0.01, 0.1})
	for i := 0; i < 90; i++ {
		h.Observe(0.0005) // first bucket
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.05) // third bucket
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 0.001 {
		t.Fatalf("p50 = %v, want within first bucket (0, 0.001]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 <= 0.01 || p99 > 0.1 {
		t.Fatalf("p99 = %v, want within third bucket (0.01, 0.1]", p99)
	}
	if !math.IsNaN(Quantile(0.5, r.Histogram("empty_seconds", "e", LatencyBuckets))) {
		t.Fatalf("quantile of empty histogram should be NaN")
	}
}

func TestQuantileMergesChildren(t *testing.T) {
	r := New()
	r.Arm()
	v := r.HistogramVec("v_seconds", "v", "doc", []float64{0.001, 0.01})
	v.With("a").Observe(0.0005)
	v.With("b").Observe(0.005)
	q := Quantile(1.0, v.Children()...)
	if q <= 0.001 || q > 0.01+1e-9 {
		t.Fatalf("merged max quantile = %v, want within second bucket", q)
	}
}

func TestVecCardinalityBound(t *testing.T) {
	r := New()
	r.Arm()
	v := r.HistogramVec("card_seconds", "card", "doc", SizeBuckets)
	for i := 0; i < maxCardinality+20; i++ {
		v.With(fmt.Sprintf("doc-%d", i)).Observe(1)
	}
	kids := v.Children()
	if len(kids) != maxCardinality+1 {
		t.Fatalf("vec grew to %d children, want cap %d + overflow", len(kids), maxCardinality)
	}
	over := v.With(OverflowLabel)
	if over.Count() != 20 {
		t.Fatalf("overflow child holds %d observations, want 20", over.Count())
	}
	cv := r.CounterVec("card_total", "card", "doc")
	for i := 0; i < maxCardinality+5; i++ {
		cv.With(fmt.Sprintf("doc-%d", i)).Inc()
	}
	if got := cv.Total(); got != int64(maxCardinality+5) {
		t.Fatalf("counter vec total = %d, want %d", got, maxCardinality+5)
	}
}

func TestExpositionFormat(t *testing.T) {
	r := New()
	r.SetLabel("site", "3")
	r.Arm()
	c := r.Counter("dtx_test_total", "test counter")
	c.Add(2)
	h := r.HistogramVec("dtx_test_seconds", "test latency", "doc", []float64{0.01, 0.1})
	h.With(`we"ird`).Observe(0.05)
	r.GaugeFunc("dtx_depth", "queue depth", func() float64 { return 4 })
	r.LabeledGaugeFunc("dtx_lag", "lag", "doc", func() []LabeledValue {
		return []LabeledValue{{Label: "d1", Value: 9}}
	})

	text := r.Text()
	for _, want := range []string{
		"# TYPE dtx_test_total counter",
		`dtx_test_total{site="3"} 2`,
		"# TYPE dtx_test_seconds histogram",
		`dtx_test_seconds_bucket{site="3",doc="we\"ird",le="0.01"} 0`,
		`dtx_test_seconds_bucket{site="3",doc="we\"ird",le="0.1"} 1`,
		`dtx_test_seconds_bucket{site="3",doc="we\"ird",le="+Inf"} 1`,
		`dtx_test_seconds_count{site="3",doc="we\"ird"} 1`,
		"# TYPE dtx_depth gauge",
		`dtx_depth{site="3"} 4`,
		`dtx_lag{site="3",doc="d1"} 9`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

// TestConcurrentWritersVsExposition drives counters, histogram observations
// and vec child creation from many goroutines while scraping — the suite is
// run under -race in CI, so surviving it is the race-cleanliness assertion.
func TestConcurrentWritersVsExposition(t *testing.T) {
	r := New()
	r.Arm()
	c := r.Counter("cw_total", "c")
	v := r.HistogramVec("cw_seconds", "h", "doc", LatencyBuckets)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := v.With(fmt.Sprintf("doc-%d", i%4))
			for {
				select {
				case <-done:
					return
				default:
				}
				c.Inc()
				h.Observe(0.0001)
				sp := r.Span()
				sp.Done(h)
			}
		}(i)
	}
	deadline := time.After(100 * time.Millisecond)
	for {
		select {
		case <-deadline:
			close(done)
			wg.Wait()
			text := r.Text()
			if !strings.Contains(text, "cw_total") || !strings.Contains(text, "cw_seconds_bucket") {
				t.Fatalf("exposition lost metrics under concurrency:\n%s", text)
			}
			if c.Value() == 0 {
				t.Fatalf("no writes observed")
			}
			return
		default:
			_ = r.Text()
		}
	}
}
