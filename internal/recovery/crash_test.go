package recovery

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/replica"
	"repro/internal/sched"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

const crashDocXML = `<people>
  <person><id>4</id><name>Ana</name></person>
  <person><id>7</id><name>Bruno</name></person>
</people>`

// cluster is a rebuildable test deployment: sites share one catalog and
// in-process network, and each site's FileStore + journal live under dir so
// a killed site can be reconstructed over the same state.
type cluster struct {
	t         *testing.T
	dir       string
	net       *transport.Network
	catalog   *replica.Catalog
	ids       []int
	sites     []*sched.Site
	hooks     []*sched.CrashHooks
	indexKeys []string // value-index keys every (re)built site enables
}

func newCrashCluster(t *testing.T, n int) *cluster {
	return newCrashClusterIndexed(t, n, nil)
}

// newCrashClusterIndexed is newCrashCluster with value indexes enabled at
// every site, so restarts also exercise index reconstruction.
func newCrashClusterIndexed(t *testing.T, n int, indexKeys []string) *cluster {
	t.Helper()
	c := &cluster{
		t:         t,
		dir:       t.TempDir(),
		net:       transport.NewNetwork(),
		catalog:   replica.NewCatalog(),
		ids:       make([]int, n),
		sites:     make([]*sched.Site, n),
		hooks:     make([]*sched.CrashHooks, n),
		indexKeys: indexKeys,
	}
	for i := range c.ids {
		c.ids[i] = i
		c.hooks[i] = &sched.CrashHooks{}
	}
	for i := 0; i < n; i++ {
		c.sites[i] = c.buildSite(i, false)
		doc, err := xmltree.ParseString("d1", crashDocXML)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.sites[i].AddDocument(doc); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, s := range c.sites {
			s.Stop()
		}
	})
	return c
}

// buildSite constructs (or reconstructs) one site over its on-disk state.
func (c *cluster) buildSite(i int, recovering bool) *sched.Site {
	c.t.Helper()
	dir := filepath.Join(c.dir, fmt.Sprintf("site%d", i))
	st, err := store.NewFileStore(dir)
	if err != nil {
		c.t.Fatal(err)
	}
	journal, err := store.OpenJournal(filepath.Join(dir, "commit.log"))
	if err != nil {
		c.t.Fatal(err)
	}
	s := sched.New(sched.Config{
		SiteID:            i,
		Sites:             c.ids,
		Catalog:           c.catalog,
		Store:             st,
		Journal:           journal,
		RetryInterval:     5 * time.Millisecond,
		PersistDelay:      -1, // flush without a batching window
		HeartbeatInterval: 10 * time.Millisecond,
		HeartbeatMisses:   2,
		IndexedKeys:       c.indexKeys,
		Recovering:        recovering,
		Hooks:             c.hooks[i],
	})
	if err := s.AttachNetwork(c.net); err != nil {
		c.t.Fatal(err)
	}
	return s
}

// restart rebuilds a killed site through the recovery subsystem.
func (c *cluster) restart(i int) *Report {
	c.t.Helper()
	c.sites[i].Quiesce()             // no dead-incarnation Save may land over catch-up
	c.hooks[i] = &sched.CrashHooks{} // the crash already happened
	s := c.buildSite(i, true)
	c.sites[i] = s
	report, err := Restart(s, Options{CatchUp: true, Timeout: time.Second})
	if err != nil {
		c.t.Fatalf("restart site %d: %v", i, err)
	}
	return report
}

func changeNameOp() txn.Operation {
	return txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Change, Target: "//person[id='4']/name", Value: "Zed",
	})
}

// eventually polls until the condition holds.
func eventually(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestCrashPoints is the fault-injection table: a participant or the
// coordinator is killed at each 2PC stage boundary, the survivors keep
// serving reads from the surviving replicas, the victim restarts through
// internal/recovery, every in-doubt transaction is resolved, and all
// replicas converge to identical document XML.
func TestCrashPoints(t *testing.T) {
	cases := []struct {
		name   string
		sites  int
		victim int // site killed by the hook
		// arm installs the kill hook on the cluster before the doomed
		// transaction runs; fired signals the kill.
		arm func(c *cluster, fired chan<- struct{})
	}{
		{
			// The participant dies as the consolidation request arrives,
			// before its intent record: nobody can have its state, the
			// transaction resolves away and every replica converges to the
			// pre-transaction document.
			name: "participant-before-intent", sites: 2, victim: 1,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[1].BeforeIntent = func(txn.ID, []string) {
					once.Do(func() { c.sites[1].Kill(); close(fired) })
				}
			},
		},
		{
			// The participant dies after its intent is durable but before
			// the covering write: the coordinator commits, the victim
			// restarts with an in-doubt record that resolves to commit and
			// catches the document up from the survivors.
			name: "participant-after-intent", sites: 3, victim: 1,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[1].AfterIntent = func(txn.ID, []string) {
					once.Do(func() { c.sites[1].Kill(); close(fired) })
				}
			},
		},
		{
			// The participant dies mid-persist: commit acknowledged, intent
			// durable, Store write abandoned.
			name: "participant-mid-persist", sites: 3, victim: 1,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[1].BeforeSave = func(string) {
					once.Do(func() { c.sites[1].Kill(); close(fired) })
				}
			},
		},
		{
			// The coordinator dies before logging its decision: presumed
			// abort everywhere — the survivors' failure detector aborts the
			// orphaned participant state and the cluster converges to the
			// pre-transaction document.
			name: "coordinator-before-decision", sites: 3, victim: 0,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[0].BeforeDecision = func(txn.ID) {
					once.Do(func() { c.sites[0].Kill(); close(fired) })
				}
			},
		},
		{
			// The coordinator dies right after its decision record, before
			// any participant hears of it: the survivors presume abort; the
			// restarted coordinator finds its dangling decision, learns no
			// participant consolidated, and voids it.
			name: "coordinator-after-decision", sites: 3, victim: 0,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[0].AfterDecision = func(txn.ID) {
					once.Do(func() { c.sites[0].Kill(); close(fired) })
				}
			},
		},
		{
			// The coordinator dies mid commit fan-out, after a participant
			// consolidated: the commit must survive — the restarted
			// coordinator reconciles its dangling decision against the
			// participants and catches up to the committed state.
			name: "coordinator-mid-fanout", sites: 3, victim: 0,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[1].AfterIntent = func(txn.ID, []string) {
					once.Do(func() { c.sites[0].Kill(); close(fired) })
				}
			},
		},
		{
			// The coordinator dies while persisting its own replica after
			// the participants consolidated: in-doubt at the coordinator,
			// resolved commit from its own decision record.
			name: "coordinator-mid-persist", sites: 3, victim: 0,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[0].BeforeSave = func(string) {
					once.Do(func() { c.sites[0].Kill(); close(fired) })
				}
			},
		},
		{
			// The site dies at an adaptive protocol switch's quiescent
			// point: the domain's lock table is drained and admissions are
			// blocked, but the new protocol is not yet installed. The
			// protocol choice is in-memory only, so the switch creates no
			// recovery obligation — the victim must restart under the
			// configured default and converge like any other crash.
			name: "mid-protocol-switch", sites: 3, victim: 1,
			arm: func(c *cluster, fired chan<- struct{}) {
				var once sync.Once
				c.hooks[1].BeforeProtocolSwitch = func(string, string, string) {
					once.Do(func() { c.sites[1].Kill(); close(fired) })
				}
				go func() {
					// Give the doomed transaction a head start so the
					// drain has in-flight work to wait out.
					time.Sleep(5 * time.Millisecond)
					_ = c.sites[1].SwitchProtocol("d1", lock.DocLock{})
				}()
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := newCrashCluster(t, tc.sites)
			fired := make(chan struct{})
			tc.arm(c, fired)

			// The doomed transaction. Its outcome depends on the crash
			// point (committed, aborted or failed) — what the table asserts
			// is convergence, not the label.
			_, _ = c.sites[0].Submit([]txn.Operation{changeNameOp()})
			select {
			case <-fired:
			case <-time.After(5 * time.Second):
				t.Fatal("kill hook never fired")
			}

			// Reads on the document keep succeeding from the surviving
			// replicas while the victim is down (orphaned locks are
			// resolved by failure detection first).
			survivor := (tc.victim + 1) % tc.sites
			eventually(t, 5*time.Second, "reads from survivors", func() bool {
				res, err := c.sites[survivor].Submit([]txn.Operation{
					txn.NewQuery("d1", "//person/name"),
				})
				return err == nil && res.State == txn.Committed
			})

			// Restart the victim through the recovery subsystem.
			report := c.restart(tc.victim)
			if inDoubt := c.sites[tc.victim].Journal().InDoubt(); len(inDoubt) != 0 {
				t.Fatalf("in-doubt transactions survived recovery: %+v (report: %s)", inDoubt, report)
			}

			// All replicas hold identical XML.
			want, err := c.sites[0].Document("d1")
			if err != nil {
				t.Fatal(err)
			}
			for i := 1; i < tc.sites; i++ {
				got, err := c.sites[i].Document("d1")
				if err != nil {
					t.Fatal(err)
				}
				if got.String() != want.String() {
					t.Fatalf("site %d diverged after recovery (report: %s)\nsite 0: %s\nsite %d: %s",
						i, report, want.String(), i, got.String())
				}
			}

			// Protocol choice is never persisted: whatever the domain ran
			// under (or was switching to) at the kill, the restarted site
			// serves under the configured default.
			if got := c.sites[tc.victim].DocProtocol("d1"); got != "xdgl" {
				t.Fatalf("restarted site runs %q, want the configured default xdgl", got)
			}

			// The restarted site is readmitted: once the survivors'
			// heartbeats mark it Up again, writes (which need every
			// replica) succeed.
			eventually(t, 5*time.Second, "writes after readmission", func() bool {
				res, err := c.sites[survivor].Submit([]txn.Operation{
					txn.NewUpdate("d1", &xupdate.Update{
						Kind: xupdate.Change, Target: "//person[id='7']/name", Value: "Carla",
					}),
				})
				return err == nil && res.State == txn.Committed
			})
		})
	}
}

// TestWritesFailFastWhileReplicaDown: a write that would touch a dead
// replica fails with the typed ErrReplicaUnavailable instead of hanging.
func TestWritesFailFastWhileReplicaDown(t *testing.T) {
	c := newCrashCluster(t, 3)
	c.sites[2].Kill()
	eventually(t, 5*time.Second, "replica-unavailable write", func() bool {
		res, err := c.sites[0].Submit([]txn.Operation{changeNameOp()})
		if err != nil {
			t.Fatal(err)
		}
		return errors.Is(res.Err, txn.ErrReplicaUnavailable)
	})
	// Reads still flow.
	res, err := c.sites[0].Submit([]txn.Operation{txn.NewQuery("d1", "//person/name")})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("read while replica down: %v %+v", err, res)
	}
}

// TestRestartSeqFence: a restarted site's new transactions cannot collide
// with identifiers from before the crash.
func TestRestartSeqFence(t *testing.T) {
	c := newCrashCluster(t, 2)
	res, err := c.sites[0].Submit([]txn.Operation{changeNameOp()})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("seed txn: %v %+v", err, res)
	}
	c.sites[0].Sync()
	preCrash := res.Txn
	c.sites[0].Kill()
	report := c.restart(0)
	if report.SeqFloor <= preCrash.Seq {
		t.Fatalf("seq floor %d does not fence past pre-crash id %s", report.SeqFloor, preCrash)
	}
	res2, err := c.sites[0].Submit([]txn.Operation{txn.NewQuery("d1", "//person/name")})
	if err != nil || res2.State != txn.Committed {
		t.Fatalf("post-restart txn: %v %+v", err, res2)
	}
	if res2.Txn.Seq <= preCrash.Seq {
		t.Fatalf("post-restart id %s not past pre-crash %s", res2.Txn, preCrash)
	}
}

// TestResolveOnline: a healthy site's online recovery pass (dtxctl
// -recover) drains the pipeline and reports nothing in doubt.
func TestResolveOnline(t *testing.T) {
	c := newCrashCluster(t, 2)
	if _, err := c.sites[0].Submit([]txn.Operation{changeNameOp()}); err != nil {
		t.Fatal(err)
	}
	report, err := Resolve(c.sites[0], Options{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resolutions) != 0 || len(report.Decisions) != 0 {
		t.Fatalf("healthy site reported recovery work: %s", report)
	}
}

// TestSingleReplicaIntentStaysOpen: with no live replica to catch up from,
// a committed in-doubt transaction must NOT be sealed durable — the intent
// stays open as the record of the (possibly lost) covering write, while the
// site still comes back serving.
func TestSingleReplicaIntentStaysOpen(t *testing.T) {
	c := newCrashCluster(t, 1)
	fired := make(chan struct{})
	var once sync.Once
	c.hooks[0].BeforeSave = func(string) {
		once.Do(func() { c.sites[0].Kill(); close(fired) })
	}
	_, _ = c.sites[0].Submit([]txn.Operation{changeNameOp()})
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("kill hook never fired")
	}

	report := c.restart(0)
	if len(report.Resolutions) != 1 || report.Resolutions[0].Outcome != Committed {
		t.Fatalf("resolutions = %+v", report.Resolutions)
	}
	inDoubt := c.sites[0].Journal().InDoubt()
	if len(inDoubt) != 1 {
		t.Fatalf("unrecoverable intent was sealed: inDoubt=%v (report %s)", inDoubt, report)
	}
	// The site serves regardless; the open intent is the operator's signal.
	res, err := c.sites[0].Submit([]txn.Operation{txn.NewQuery("d1", "//person/name")})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("restarted single-replica site not serving: %v %+v", err, res)
	}
}
