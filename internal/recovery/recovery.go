// Package recovery makes a DTX cluster survive site crashes end to end: a
// crashed site restarts from its Store snapshots plus journal replay, its
// in-doubt transactions are resolved with a presumed-abort termination
// protocol, and its documents catch up from surviving replicas before it
// rejoins — while, on the surviving sites, failure detection (heartbeats,
// internal/sched) reroutes reads around the dead replica and fails writes
// fast. The paper defers durability and atomicity to future work (§5); this
// package is that direction, built on the journal's intent/commit/decision
// records.
//
// # The termination protocol
//
// An in-doubt transaction is an intent record without a commit record: the
// site acknowledged the consolidation, but the covering Store write may not
// have landed before the crash. Its outcome is resolved in order of
// authority:
//
//  1. The coordinator's decision record. A coordinator logs a decision
//     BEFORE fanning the commit out, so "decision present" proves commit
//     and — the presumed-abort rule — "no decision at a ready coordinator"
//     proves no participant can have consolidated, hence abort.
//  2. Surviving participants. If the coordinator is unreachable, any site
//     that reports the transaction committed proves the decision was
//     commit (a participant can only consolidate after the decision).
//  3. Presumed abort. Nobody knows the transaction: no decision can have
//     been delivered, so abort is safe to presume.
//
// Outcomes are sealed back into the journal (commit or abort records) so
// the next restart does not re-resolve them. Document convergence is a
// separate, simpler step: replicas that consolidated hold the
// authoritative bytes, so the restarted site re-fetches each of its
// documents from a live replica (catch-up) before rejoining — this also
// repairs the half of a committed multi-document batch whose covering
// write never landed.
package recovery

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/sched"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
)

// Options tunes a recovery run.
type Options struct {
	// CatchUp re-fetches every locally held document from a live replica
	// before the site rejoins (default true via DefaultOptions). Without
	// replicas the local store copy is served as-is.
	CatchUp bool
	// Timeout bounds each individual resolution / catch-up exchange.
	Timeout time.Duration
}

// DefaultOptions is what the restart paths use unless told otherwise.
var DefaultOptions = Options{CatchUp: true, Timeout: 2 * time.Second}

func (o Options) withDefaults() Options {
	if o.Timeout <= 0 {
		o.Timeout = DefaultOptions.Timeout
	}
	return o
}

// Outcome is the resolved fate of an in-doubt transaction.
type Outcome string

// Outcomes.
const (
	Committed Outcome = "committed"
	Aborted   Outcome = "aborted"
	Unknown   Outcome = "unknown"
)

// Resolution records how one in-doubt transaction (or dangling coordinator
// decision) was settled.
type Resolution struct {
	Txn     string
	Docs    []string
	Outcome Outcome
	// Source names the authority: "decision-record", "coordinator",
	// "participant", or "presumed-abort".
	Source string
}

// Report summarises one recovery run.
type Report struct {
	Site int
	// Documents the site recovered from its store.
	Documents []string
	// Resolutions of the journal's in-doubt transactions, in intent order.
	Resolutions []Resolution
	// Decisions settles the dangling commit decisions of a crashed
	// coordinator — decided transactions that never consolidated locally,
	// whose fate depends on which participants the fan-out reached.
	Decisions []Resolution
	// CaughtUp lists the documents refreshed from a live replica —
	// incrementally (replication-log replay) or by whole-document transfer.
	CaughtUp []string
	// ReplRecords counts the replication-log records replayed by incremental
	// catch-up (quorum mode); documents it made current avoid the
	// whole-document transfer entirely.
	ReplRecords int
	// SeqFloor is the identifier fence applied to the restarted site.
	SeqFloor int64
}

// String renders the report compactly for logs and dtxctl.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "site %d: %d document(s)", r.Site, len(r.Documents))
	if r.SeqFloor > 0 {
		fmt.Fprintf(&b, ", seq fence %d", r.SeqFloor)
	}
	for _, res := range r.Resolutions {
		fmt.Fprintf(&b, "\n  in-doubt %s -> %s (%s)", res.Txn, res.Outcome, res.Source)
	}
	for _, res := range r.Decisions {
		fmt.Fprintf(&b, "\n  decision %s -> %s (%s)", res.Txn, res.Outcome, res.Source)
	}
	if len(r.CaughtUp) > 0 {
		fmt.Fprintf(&b, "\n  caught up: %s", strings.Join(r.CaughtUp, ", "))
	}
	if r.ReplRecords > 0 {
		fmt.Fprintf(&b, "\n  replayed %d replication record(s)", r.ReplRecords)
	}
	return b.String()
}

// Restart rebuilds a crashed site and resolves its past: Bootstrap the
// documents from the Store, fence the identifier space past everything the
// journal has seen, run the termination protocol over the in-doubt
// transactions and dangling decisions, catch the documents up from live
// replicas, and finally mark the site ready so heartbeats readmit it. The
// site must be freshly constructed with Config.Recovering and already
// attached to the transport.
func Restart(s *sched.Site, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if s.Ready() {
		return nil, fmt.Errorf("recovery: site %d is already serving", s.ID())
	}
	if _, err := s.Bootstrap(); err != nil {
		return nil, fmt.Errorf("recovery: bootstrap site %d: %w", s.ID(), err)
	}
	report := &Report{Site: s.ID(), Documents: s.Documents()}
	if j := s.Journal(); j != nil {
		// Bootstrap already applied this fence; recorded here for the report.
		report.SeqFloor = j.MaxSeq(s.ID()) + sched.SeqFenceGap
	}
	if err := resolve(s, opts, report, nil, false); err != nil {
		return nil, err
	}
	if opts.CatchUp {
		catchUp(s, opts, report)
	}
	if err := sealCommitted(s, report); err != nil {
		return nil, err
	}
	s.FinishRecovery()
	return report, nil
}

// sealCommitted writes the commit records for resolved-committed in-doubt
// transactions whose documents are now authoritative — caught up from a
// live replica. A document with no live replica leaves its intents OPEN: if
// the covering write never landed, the committed bytes are gone with the
// crash, and sealing would erase the only evidence of that loss. The intent
// is re-reported on every restart and by dtxctl -status until a replica
// appears to catch up from (or an operator intervenes).
func sealCommitted(s *sched.Site, report *Report) error {
	caught := make(map[string]bool, len(report.CaughtUp))
	for _, d := range report.CaughtUp {
		caught[d] = true
	}
	j := s.Journal()
	for i := range report.Resolutions {
		res := &report.Resolutions[i]
		if res.Outcome != Committed {
			continue
		}
		recovered := true
		for _, doc := range res.Docs {
			if !caught[doc] {
				recovered = false
				break
			}
		}
		if !recovered {
			res.Source += "; intent left open, no live replica to catch up from"
			continue
		}
		if err := j.LogCommit(res.Txn); err != nil {
			return fmt.Errorf("recovery: seal %s: %w", res.Txn, err)
		}
	}
	return nil
}

// Resolve runs an online recovery pass on a live site (dtxctl -recover):
// drain the persist pipeline, then settle what the journal still carries.
// Only intents that were open BEFORE the drain and survived it are
// resolved: traffic keeps committing while the pass runs, and a freshly
// logged intent whose covering write is merely in flight must not be
// sealed early — that would erase the very in-doubt window the intent
// records. Options.CatchUp is ignored here — a serving site's in-memory
// state is already authoritative; catch-up is a restart-only step.
func Resolve(s *sched.Site, opts Options) (*Report, error) {
	opts = opts.withDefaults()
	if !s.Ready() {
		// A still-recovering site must finish Restart first: its in-doubt
		// intents are sealed only after catch-up there, and an online pass
		// racing that would certify durability for bytes the Store lost.
		return nil, fmt.Errorf("recovery: site %d is recovering; retry once startup recovery completes", s.ID())
	}
	var stale map[string]bool
	if j := s.Journal(); j != nil {
		stale = make(map[string]bool)
		for _, d := range j.InDoubt() {
			stale[d.Txn] = true
		}
	}
	s.Sync()
	report := &Report{Site: s.ID(), Documents: s.Documents()}
	if err := resolve(s, opts, report, stale, true); err != nil {
		return nil, err
	}
	return report, nil
}

// resolve settles the journal's in-doubt transactions and dangling
// decisions and seals the outcomes back into the journal. A non-nil only
// filter restricts resolution to the intents it names. Commit records are
// sealed immediately only when sealCommits is set (the online pass, where
// the drained Store provably holds the bytes); the restart path defers them
// to sealCommitted, after catch-up has made the bytes authoritative.
func resolve(s *sched.Site, opts Options, report *Report, only map[string]bool, sealCommits bool) error {
	j := s.Journal()
	if j == nil {
		return nil
	}
	for _, d := range j.InDoubt() {
		if only != nil && !only[d.Txn] {
			continue // logged after the pass began; its persist is in flight
		}
		res := resolveOne(s, opts, d.Txn)
		res.Docs = d.Docs
		if res.Outcome == Committed && s.PersistFailed(d.Docs) {
			// The covering write FAILED (latched persist error): the Store
			// provably does not hold the committed bytes, so certifying the
			// intent durable would erase the exact signal it records. The
			// intent stays open; a restart repairs the document by catch-up.
			res.Outcome = Unknown
			res.Source = "persist-failed"
			report.Resolutions = append(report.Resolutions, res)
			continue
		}
		switch res.Outcome {
		case Committed:
			if sealCommits {
				if err := j.LogCommit(d.Txn); err != nil {
					return fmt.Errorf("recovery: seal %s: %w", d.Txn, err)
				}
			}
		case Aborted:
			// An abort record claims no durability, only resolution; it is
			// safe to seal regardless of the Store's state.
			if err := j.LogAbort(d.Txn); err != nil {
				return fmt.Errorf("recovery: seal %s: %w", d.Txn, err)
			}
		}
		report.Resolutions = append(report.Resolutions, res)
	}
	// Dangling decisions: this site decided commit but never consolidated
	// locally, so the fate depends on which participants the crashed
	// fan-out reached. The question goes to the participants — NOT to this
	// journal, whose decision record is exactly what is in doubt. If any
	// participant consolidated, the commit stands and is sealed (catch-up
	// pulls the committed bytes); if none did — the crash beat the whole
	// fan-out, and the survivors have long since presumed abort — the
	// decision is voided so it cannot resurface. A decision whose local
	// intent is still OPEN is not dangling at all: the persist pipeline (or
	// the intent loop above) owns its sealing, and writing a commit record
	// here would close the in-doubt window while the covering write is in
	// flight.
	stillOpen := make(map[string]bool)
	for _, d := range j.InDoubt() {
		stillOpen[d.Txn] = true
	}
	for _, t := range j.Decisions() {
		if stillOpen[t] {
			continue
		}
		id, err := txn.ParseID(t)
		if err != nil {
			continue
		}
		res := Resolution{Txn: t}
		ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
		outcome := s.PollPeersOutcome(ctx, id)
		cancel()
		switch outcome {
		case transport.OutcomeCommitted:
			res.Outcome = Committed
			res.Source = "participant"
			// SealDecision re-checks for an open intent under the journal
			// lock, closing the race where one was logged since the snapshot.
			if err := j.SealDecision(t); err != nil {
				return fmt.Errorf("recovery: seal %s: %w", t, err)
			}
		case transport.OutcomeAborted:
			// Affirmative: a reachable site resolved the transaction
			// aborted, so no participant can hold a consolidation.
			res.Outcome = Aborted
			res.Source = "presumed-abort"
			if err := j.VoidDecision(t); err != nil {
				return fmt.Errorf("recovery: void %s: %w", t, err)
			}
		default:
			// Active (still consolidating somewhere) or unknown (nobody
			// reachable): zero grounds to void a durable commit decision —
			// a consolidated-but-unreachable participant may depend on it.
			// Left for the next pass.
			continue
		}
		report.Decisions = append(report.Decisions, res)
	}
	return nil
}

// resolveOne settles one in-doubt transaction.
func resolveOne(s *sched.Site, opts Options, t string) Resolution {
	res := Resolution{Txn: t, Outcome: Unknown}
	id, err := txn.ParseID(t)
	if err != nil {
		// Unparseable id (foreign journal edit): leave it open.
		res.Source = "unparseable-id"
		return res
	}
	j := s.Journal()
	if id.Site == s.ID() {
		// Our own coordination: the decision record is the whole truth. An
		// intent can only follow a commit decision, so a missing decision
		// here means it was already sealed by a later record — treat the
		// presence of the intent itself as proof of commit.
		res.Outcome = Committed
		res.Source = "decision-record"
		if j != nil && !j.Decision(t) {
			res.Source = "intent-implies-decision"
		}
		return res
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
	outcome := s.ResolveOutcome(ctx, id)
	cancel()
	switch outcome {
	case transport.OutcomeCommitted:
		res.Outcome = Committed
		res.Source = "coordinator"
	case transport.OutcomeAborted:
		// An affirmative answer: the coordinator's presumed-abort rule (it
		// is ready and has no decision), or a peer that already resolved
		// the transaction aborted.
		res.Outcome = Aborted
		res.Source = "coordinator"
	case transport.OutcomeActive:
		res.Outcome = Unknown
		res.Source = "still-active"
	default:
		// Unknown means nobody REACHABLE could answer — which is zero
		// information, not a presumption. Sealing an abort on it would
		// erase the in-doubt evidence exactly when it matters most (the
		// coordinator is down too); the intent stays open and the next
		// pass retries once peers return.
		res.Outcome = Unknown
		res.Source = "no live site could answer; left open"
	}
	return res
}

// catchUp converges every locally held document with the live replicas. In
// quorum-replication mode the incremental path runs first: resume from the
// position the store's meta record certifies and replay only the missing
// replication-log span (from this site's own journal-reseeded log when it is
// the document's primary, from the primary otherwise). Only when that cannot
// converge the document — untrusted position, span compacted past the
// horizon, unreachable primary, or legacy eager mode — does catch-up fall
// back to fetching the whole document from a live replica. A document with
// no path to convergence keeps its local store copy (and the report omits
// it).
func catchUp(s *sched.Site, opts Options, report *Report) {
	quorum := s.QuorumReplication()
	for _, name := range report.Documents {
		if quorum {
			ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
			n, current := s.ReplCatchUp(ctx, name)
			cancel()
			report.ReplRecords += n
			if current {
				report.CaughtUp = append(report.CaughtUp, name)
				continue
			}
		}
		for _, site := range s.Catalog().Sites(name) {
			if site == s.ID() || s.PeerState(site) != sched.PeerUp {
				continue
			}
			ctx, cancel := context.WithTimeout(context.Background(), opts.Timeout)
			resp, err := s.Call(ctx, site, transport.FetchDocReq{Doc: name})
			cancel()
			if err != nil {
				continue
			}
			fetched, ok := resp.(transport.FetchDocResp)
			if !ok || !fetched.Found {
				continue
			}
			doc, err := xmltree.ParseString(name, fetched.XML)
			if err != nil {
				continue
			}
			if err := s.ReplaceDocument(doc); err != nil {
				continue
			}
			if quorum {
				// Pin the transferred bytes at the position they were
				// captured at, so incremental replication resumes from them.
				s.ResetReplPosition(name, fetched.Head)
			}
			report.CaughtUp = append(report.CaughtUp, name)
			break
		}
	}
}
