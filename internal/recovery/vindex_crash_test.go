package recovery

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

// TestCrashValueIndexReplay — the value-index entry of the crash-point
// table: with indexed sites, a participant is killed mid-persist, after the
// in-memory tree and index mutated (they change in one critical section) but
// before the covering Store write. Restart replay reloads the document and
// reconstructs the index from it, so the restarted site's indexed point
// lookups must agree with a scan of its recovered tree and with the
// survivors — before and after a post-recovery write.
func TestCrashValueIndexReplay(t *testing.T) {
	c := newCrashClusterIndexed(t, 3, []string{"id", "name"})
	fired := make(chan struct{})
	var once sync.Once
	c.hooks[1].BeforeSave = func(string) {
		once.Do(func() { c.sites[1].Kill(); close(fired) })
	}

	// The doomed transaction: the tree+index mutation happens at every
	// replica; site 1 dies before persisting it.
	_, _ = c.sites[0].Submit([]txn.Operation{changeNameOp()})
	select {
	case <-fired:
	case <-time.After(5 * time.Second):
		t.Fatal("kill hook never fired")
	}

	// Survivors keep serving the indexed lookup while the victim is down.
	const lookup = "//person[id='4']/name"
	eventually(t, 5*time.Second, "indexed reads from survivors", func() bool {
		res, err := c.sites[0].Submit([]txn.Operation{txn.NewQuery("d1", lookup)})
		return err == nil && res.State == txn.Committed
	})

	report := c.restart(1)
	if inDoubt := c.sites[1].Journal().InDoubt(); len(inDoubt) != 0 {
		t.Fatalf("in-doubt transactions survived recovery: %+v (report: %s)", inDoubt, report)
	}

	assertIndexedMatchesScan := func(what string) {
		t.Helper()
		// All replicas hold identical XML.
		want, err := c.sites[0].Document("d1")
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.sites[1].Document("d1")
		if err != nil {
			t.Fatal(err)
		}
		if got.String() != want.String() {
			t.Fatalf("%s: restarted site diverged (report: %s)\nsite 0: %s\nsite 1: %s",
				what, report, want.String(), got.String())
		}
		// The restarted site's index answers exactly what a scan of its own
		// recovered tree answers.
		res, err := c.sites[1].Submit([]txn.Operation{txn.NewQuery("d1", lookup)})
		if err != nil || res.State != txn.Committed {
			t.Fatalf("%s: indexed lookup at restarted site: %v %+v", what, err, res)
		}
		scan := xpath.EvalStrings(xpath.MustParse(lookup), got)
		if !reflect.DeepEqual(res.Results[0], scan) {
			t.Fatalf("%s: indexed lookup %v != scan %v", what, res.Results[0], scan)
		}
	}
	assertIndexedMatchesScan("after restart")
	var indexed int64
	for _, s := range c.sites {
		indexed += s.Stats().IndexedQueries
	}
	if indexed == 0 {
		t.Fatal("no site answered the lookup from its index")
	}

	// A write after readmission must keep the rebuilt index maintained.
	eventually(t, 5*time.Second, "writes after readmission", func() bool {
		res, err := c.sites[0].Submit([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
			Kind: xupdate.Change, Target: lookup, Value: "Post",
		})})
		return err == nil && res.State == txn.Committed
	})
	assertIndexedMatchesScan("after post-recovery write")
}
