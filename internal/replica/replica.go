// Package replica implements DTX's data-distribution substrate: the catalog
// that maps each document to the sites holding a copy, total and partial
// replication, and the size-balanced fragmentation the paper adopts from
// Kurita et al. (AINA'07): "the data is fragmented considering the structure
// and size of the document, so that each generated fragment has a similar
// size. The fragmentation approach used in this work makes all sites have
// similar volumes of data."
package replica

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/xmltree"
)

// Catalog maps document names to the sites that hold a replica. The lookup
// drives Algorithm 1's routing: an operation must execute at every site that
// holds the document.
type Catalog struct {
	mu    sync.RWMutex
	sites map[string][]int
}

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{sites: make(map[string][]int)}
}

// Place records that a document is held by the given sites (replacing any
// previous placement). Site lists are kept sorted and deduplicated.
func (c *Catalog) Place(doc string, sites ...int) {
	set := map[int]bool{}
	for _, s := range sites {
		set[s] = true
	}
	list := make([]int, 0, len(set))
	for s := range set {
		list = append(list, s)
	}
	sort.Ints(list)
	c.mu.Lock()
	c.sites[doc] = list
	c.mu.Unlock()
}

// Sites returns the sites holding the document (empty if unknown).
func (c *Catalog) Sites(doc string) []int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]int(nil), c.sites[doc]...)
}

// Documents returns all known document names, sorted.
func (c *Catalog) Documents() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.sites))
	for d := range c.sites {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// DocumentsAt returns the documents a site holds, sorted.
func (c *Catalog) DocumentsAt(site int) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []string
	for d, ss := range c.sites {
		for _, s := range ss {
			if s == site {
				out = append(out, d)
				break
			}
		}
	}
	sort.Strings(out)
	return out
}

// Liveness reports whether a site is currently believed alive — the view a
// failure detector maintains. The catalog itself is placement only; pairing
// it with a Liveness yields availability-aware routing.
type Liveness interface {
	Alive(site int) bool
}

// LiveSites splits the document's replica sites by the liveness view: live
// sites can serve reads now, down sites make the replica set partial (a
// write must reach every copy, so any down member fails writes fast).
func (c *Catalog) LiveSites(doc string, lv Liveness) (live, down []int) {
	for _, s := range c.Sites(doc) {
		if lv == nil || lv.Alive(s) {
			live = append(live, s)
		} else {
			down = append(down, s)
		}
	}
	return live, down
}

// Holds reports whether the site has a replica of the document.
func (c *Catalog) Holds(doc string, site int) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	for _, s := range c.sites[doc] {
		if s == site {
			return true
		}
	}
	return false
}

// String renders the allocation like the paper's Fig. 8: one line per site
// with its document list.
func (c *Catalog) String() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	perSite := map[int][]string{}
	for d, ss := range c.sites {
		for _, s := range ss {
			perSite[s] = append(perSite[s], d)
		}
	}
	var ids []int
	for s := range perSite {
		ids = append(ids, s)
	}
	sort.Ints(ids)
	var b strings.Builder
	for _, s := range ids {
		docs := perSite[s]
		sort.Strings(docs)
		fmt.Fprintf(&b, "site %d: %s\n", s, strings.Join(docs, ", "))
	}
	return b.String()
}

// Fragment is one piece of a fragmented document: a standalone document
// whose root preserves the original root label, holding a contiguous subset
// of the original root's child subtrees.
type Fragment struct {
	Doc  *xmltree.Document
	Size int // ByteSize of the fragment
}

// unit is one indivisible piece of a fragmentation: a subtree plus the
// chain of container elements (strictly below the root) it lives under.
type unit struct {
	chain []*xmltree.Node
	node  *xmltree.Node
	size  int
}

// FragmentDocument splits doc into n fragments of similar byte size,
// following the paper's adopted approach of fragmenting "considering the
// structure and size of the document": the splittable units start as the
// root's child subtrees, and any unit larger than the ideal per-fragment
// share is recursively replaced by its children (a dominant section like
// XMark's regions is descended into rather than shipped whole). Units are
// then partitioned contiguously in document order. Each fragment is a
// well-formed document named "<doc>#<i>" that replicates the root element
// and the container chain of every unit it holds, so every fragment's label
// paths are a subset of the original document's — the DataGuide, and
// therefore the lock structure, stays schema-compatible.
func FragmentDocument(doc *xmltree.Document, n int) ([]Fragment, error) {
	if n < 1 {
		return nil, fmt.Errorf("replica: fragment count %d < 1", n)
	}
	units := make([]unit, 0, len(doc.Root.Children))
	total := 0
	for _, k := range doc.Root.Children {
		sz := subtreeBytes(k)
		units = append(units, unit{node: k, size: sz})
		total += sz
	}
	share := total / n
	// Recursively split oversized units into their children, preserving
	// document order. Splitting always terminates: children are strictly
	// smaller, and leaves cannot split.
	for changed := true; changed; {
		changed = false
		next := make([]unit, 0, len(units))
		for _, u := range units {
			if u.size > share && len(u.node.Children) > 0 {
				chain := append(append([]*xmltree.Node(nil), u.chain...), u.node)
				for _, c := range u.node.Children {
					next = append(next, unit{chain: chain, node: c, size: subtreeBytes(c)})
				}
				changed = true
			} else {
				next = append(next, u)
			}
		}
		units = next
	}
	if n > 1 && len(units) < n {
		return nil, fmt.Errorf("replica: only %d splittable units for %d fragments", len(units), n)
	}
	// Contiguous partition: close a fragment when its running size reaches
	// the ideal share — cutting *before* the next unit when that leaves the
	// fragment closer to the share than including it would — and never
	// leave fewer units than fragments still to fill.
	bounds := make([]int, 0, n) // exclusive end index of each fragment
	running := 0
	for i := range units {
		if n-len(bounds)-1 == 0 {
			break // the last fragment takes everything left
		}
		sz := units[i].size
		if running > 0 && len(units)-i > n-len(bounds)-1 &&
			running+sz > share && (running+sz)-share > share-running {
			bounds = append(bounds, i)
			running = 0
			if n-len(bounds)-1 == 0 {
				break
			}
		}
		running += sz
		remainingUnits := len(units) - i - 1
		remainingFrags := n - len(bounds) - 1
		if remainingFrags > 0 && (remainingUnits == remainingFrags || (running >= share && remainingUnits >= remainingFrags)) {
			bounds = append(bounds, i+1)
			running = 0
		}
	}
	bounds = append(bounds, len(units))
	frags := make([]Fragment, 0, n)
	start := 0
	for _, end := range bounds {
		frags = append(frags, buildFragment(doc, len(frags), units[start:end]))
		start = end
	}
	if len(frags) != n {
		return nil, fmt.Errorf("replica: produced %d fragments, want %d", len(frags), n)
	}
	return frags, nil
}

func subtreeBytes(n *xmltree.Node) int {
	size := 2*len(n.Name) + 5
	for _, a := range n.Attrs {
		size += len(a.Name) + len(a.Value) + 4
	}
	size += len(n.Text)
	for _, c := range n.Children {
		size += subtreeBytes(c)
	}
	return size
}

func buildFragment(src *xmltree.Document, idx int, units []unit) Fragment {
	name := fmt.Sprintf("%s#%d", src.Name, idx)
	fd := xmltree.NewDocument(name, src.Root.Name)
	fd.Root.Attrs = append([]xmltree.Attr(nil), src.Root.Attrs...)
	var copyInto func(dst *xmltree.Node, srcNode *xmltree.Node) *xmltree.Node
	copyInto = func(dst *xmltree.Node, srcNode *xmltree.Node) *xmltree.Node {
		cp := fd.NewElement(srcNode.Name)
		cp.Text = srcNode.Text
		if len(srcNode.Attrs) > 0 {
			cp.Attrs = append([]xmltree.Attr(nil), srcNode.Attrs...)
		}
		if err := fd.AttachAt(dst, cp, xmltree.Into); err != nil {
			// Attaching a fresh element under our own root cannot fail.
			panic(err)
		}
		for _, c := range srcNode.Children {
			copyInto(cp, c)
		}
		return cp
	}
	// Container elements (chains) are shared between consecutive units that
	// live under the same original node.
	containers := map[*xmltree.Node]*xmltree.Node{} // original -> copy
	for _, u := range units {
		parent := fd.Root
		for _, link := range u.chain {
			cp := containers[link]
			if cp == nil {
				cp = fd.NewElement(link.Name)
				if len(link.Attrs) > 0 {
					cp.Attrs = append([]xmltree.Attr(nil), link.Attrs...)
				}
				cp.Text = link.Text
				if err := fd.AttachAt(parent, cp, xmltree.Into); err != nil {
					panic(err)
				}
				containers[link] = cp
			}
			parent = cp
		}
		copyInto(parent, u.node)
	}
	return Fragment{Doc: fd, Size: fd.ByteSize()}
}

// AllocateTotal places every document on every site: total replication.
func AllocateTotal(c *Catalog, docs []string, nSites int) {
	all := make([]int, nSites)
	for i := range all {
		all[i] = i
	}
	for _, d := range docs {
		c.Place(d, all...)
	}
}

// AllocatePartial fragments each document into nSites pieces and assigns
// fragment i to site i, so "all sites have similar volumes of data". It
// returns the per-site fragment documents to load into each site's store.
func AllocatePartial(c *Catalog, docs []*xmltree.Document, nSites int) (map[int][]*xmltree.Document, error) {
	out := make(map[int][]*xmltree.Document, nSites)
	for _, doc := range docs {
		frags, err := FragmentDocument(doc, nSites)
		if err != nil {
			return nil, err
		}
		for i, f := range frags {
			c.Place(f.Doc.Name, i)
			out[i] = append(out[i], f.Doc)
		}
	}
	return out, nil
}
