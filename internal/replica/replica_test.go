package replica

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/dataguide"
	"repro/internal/xmltree"
)

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	c.Place("d1", 0, 1)
	c.Place("d2", 1)
	if got := c.Sites("d1"); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("sites d1 = %v", got)
	}
	if got := c.Sites("unknown"); len(got) != 0 {
		t.Fatalf("unknown doc has sites %v", got)
	}
	if !c.Holds("d2", 1) || c.Holds("d2", 0) {
		t.Fatal("Holds wrong")
	}
	if got := c.DocumentsAt(1); len(got) != 2 {
		t.Fatalf("docs at 1 = %v", got)
	}
	if got := c.Documents(); len(got) != 2 || got[0] != "d1" {
		t.Fatalf("documents = %v", got)
	}
	// Replace and dedupe.
	c.Place("d1", 2, 2, 0)
	if got := c.Sites("d1"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("sites after replace = %v", got)
	}
	if s := c.String(); !strings.Contains(s, "site 0:") {
		t.Fatalf("render:\n%s", s)
	}
}

func genDoc(kids int, payload int) *xmltree.Document {
	doc := xmltree.NewDocument("base", "site")
	for i := 0; i < kids; i++ {
		k := doc.NewElement("entry")
		k.SetAttr("id", fmt.Sprintf("e%d", i))
		body := doc.NewElement("body")
		body.Text = strings.Repeat("x", payload)
		if err := doc.AttachAt(k, body, xmltree.Into); err != nil {
			panic(err)
		}
		if err := doc.AttachAt(doc.Root, k, xmltree.Into); err != nil {
			panic(err)
		}
	}
	return doc
}

func TestFragmentBasics(t *testing.T) {
	doc := genDoc(12, 40)
	frags, err := FragmentDocument(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 4 {
		t.Fatalf("fragments = %d", len(frags))
	}
	totalKids := 0
	for i, f := range frags {
		if f.Doc.Name != fmt.Sprintf("base#%d", i) {
			t.Fatalf("fragment name = %s", f.Doc.Name)
		}
		if f.Doc.Root.Name != "site" {
			t.Fatal("fragment root label changed")
		}
		if len(f.Doc.Root.Children) == 0 {
			t.Fatalf("fragment %d empty", i)
		}
		totalKids += len(f.Doc.Root.Children)
	}
	if totalKids != 12 {
		t.Fatalf("fragments cover %d subtrees, want 12", totalKids)
	}
}

func TestFragmentSizesBalanced(t *testing.T) {
	doc := genDoc(40, 100)
	frags, err := FragmentDocument(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	min, max := frags[0].Size, frags[0].Size
	for _, f := range frags[1:] {
		if f.Size < min {
			min = f.Size
		}
		if f.Size > max {
			max = f.Size
		}
	}
	// Uniform subtrees must fragment near-evenly.
	if float64(max) > 1.3*float64(min) {
		t.Fatalf("imbalanced fragments: min=%d max=%d", min, max)
	}
}

func TestFragmentPreservesDataGuidePaths(t *testing.T) {
	doc := genDoc(8, 10)
	g := dataguide.Build(doc)
	frags, err := FragmentDocument(doc, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range frags {
		fg := dataguide.Build(f.Doc)
		for _, p := range fg.Paths() {
			if g.Lookup(p) == nil {
				t.Fatalf("fragment introduces path %s not in original", p)
			}
		}
	}
}

func TestFragmentErrors(t *testing.T) {
	doc := genDoc(2, 10)
	if _, err := FragmentDocument(doc, 0); err == nil {
		t.Fatal("accepted n=0")
	}
	if _, err := FragmentDocument(doc, 3); err == nil {
		t.Fatal("accepted more fragments than subtrees")
	}
	// Single fragment is the whole document.
	frags, err := FragmentDocument(doc, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) != 1 || len(frags[0].Doc.Root.Children) != 2 {
		t.Fatal("single fragment wrong")
	}
}

func TestFragmentContentPreserved(t *testing.T) {
	doc := genDoc(6, 20)
	frags, err := FragmentDocument(doc, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Concatenating fragments' children in order reproduces the original
	// child sequence (by id attribute).
	var ids []string
	for _, f := range frags {
		for _, k := range f.Doc.Root.Children {
			id, _ := k.Attr("id")
			ids = append(ids, id)
		}
	}
	for i, id := range ids {
		if id != fmt.Sprintf("e%d", i) {
			t.Fatalf("order broken at %d: %v", i, ids)
		}
	}
}

func TestAllocateTotal(t *testing.T) {
	c := NewCatalog()
	AllocateTotal(c, []string{"d1", "d2"}, 3)
	for _, d := range []string{"d1", "d2"} {
		if got := c.Sites(d); len(got) != 3 {
			t.Fatalf("sites(%s) = %v", d, got)
		}
	}
}

func TestAllocatePartial(t *testing.T) {
	c := NewCatalog()
	doc := genDoc(8, 30)
	perSite, err := AllocatePartial(c, []*xmltree.Document{doc}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(perSite) != 4 {
		t.Fatalf("perSite = %v", perSite)
	}
	for site := 0; site < 4; site++ {
		docs := perSite[site]
		if len(docs) != 1 {
			t.Fatalf("site %d has %d docs", site, len(docs))
		}
		name := docs[0].Name
		if got := c.Sites(name); len(got) != 1 || got[0] != site {
			t.Fatalf("catalog sites(%s) = %v", name, got)
		}
	}
}

// Property: fragmentation covers all subtrees exactly once, for any valid
// (kids, n) combination, and all fragments are non-empty.
func TestPropertyFragmentationPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		kids := 1 + rng.Intn(30)
		n := 1 + rng.Intn(kids)
		doc := xmltree.NewDocument("p", "root")
		for i := 0; i < kids; i++ {
			k := doc.NewElement("c")
			k.Text = strings.Repeat("y", rng.Intn(200))
			if err := doc.AttachAt(doc.Root, k, xmltree.Into); err != nil {
				return false
			}
		}
		frags, err := FragmentDocument(doc, n)
		if err != nil {
			return false
		}
		if len(frags) != n {
			return false
		}
		total := 0
		for _, f := range frags {
			if len(f.Doc.Root.Children) == 0 {
				return false
			}
			total += len(f.Doc.Root.Children)
		}
		return total == kids
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
