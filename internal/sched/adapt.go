package sched

import (
	"fmt"
	"math"
	"time"

	"repro/internal/lock"
	"repro/internal/obs"
)

// This file is the run-time adaptive concurrency-control engine: a
// per-document policy loop that samples the observed conflict rate, windowed
// lock-wait p99 and deadlock rate of each scheduling domain and moves the
// domain along the protocol granularity ladder
//
//	lock.DocLock  (coarsest: one lock per document)
//	lock.Node2PL  (path locks on document nodes)
//	lock.XDGL     (finest: hierarchical DataGuide locks)
//
// at quiescent points. The ablation benchmarks show no static winner, and the
// two failure modes pull in opposite directions:
//
//   - Congestion without deadlocks (high conflict rate or lock-wait p99,
//     victims near zero) means transactions queue on a lock that is coarser
//     than their true footprints — finer granularity disentangles them, so
//     the policy climbs the ladder.
//   - Deadlock pressure means fine-grained interleavings are aborting work a
//     coarser lock would simply serialize (the hot-key case: everyone
//     touches the same nodes, so finer locks buy no parallelism, only abort
//     storms) — the policy retreats down the ladder.
//   - A cold document relaxes toward DocLock, the cheapest bookkeeping.
//
// Hysteresis is a consecutive-window confirmation plus a post-switch dwell,
// and a rung abandoned under deadlock pressure is "burned" for a cooldown so
// the congestion it leaves behind at the coarser rung cannot immediately
// climb back into the same abort storm.
//
// Switch safety: every lock footprint in a domain is acquired under ONE
// protocol. SwitchProtocol drains the domain — new admissions of
// transactions holding nothing there are refused (the coordinator's wait
// mode retries them), transactions already holding locks run to their
// strict-2PL release — and swaps docState.proto only once the lock table has
// zero owners. Mixed protocols ACROSS documents (or across replicas of one
// document) are safe by construction: each lock manager is an independent
// strict-2PL scheduler and global serializability comes from 2PC over them,
// regardless of each manager's granularity.

// AdaptiveConfig configures the per-document adaptive scheduler.
type AdaptiveConfig struct {
	// Enabled starts the policy loop on Attach. Config.Protocol is the
	// protocol every document starts under.
	Enabled bool
	// Window is the sampling period: every window the policy reads each
	// document's counter deltas and decides (default 50ms).
	Window time.Duration
	// ConflictHigh and ConflictLow bound the hysteresis band on the conflict
	// rate, conflicted acquisition attempts / all acquisition attempts of the
	// window. Above High (with deadlocks quiet) the domain climbs toward
	// finer granularity; below Low (with no deadlocks) it relaxes toward
	// coarser (defaults 0.20 / 0.02).
	ConflictHigh float64
	ConflictLow  float64
	// DeadlockHigh is the deadlock-rate retreat threshold: local deadlock
	// cycles per executed operation in the window (default 0.01). Above it a
	// domain retreats one rung coarser — fine-grained interleavings are
	// aborting work a coarser lock would serialize — except at the ladder
	// bottom, where there is nothing coarser and the pressure climbs instead.
	DeadlockHigh float64
	// LockWaitHigh is the windowed lock-wait p99 climb threshold
	// (default 25ms).
	LockWaitHigh time.Duration
	// Consecutive is how many windows a signal must persist before a switch
	// fires (default 2), and Dwell how many windows a fresh switch pins the
	// domain before the next one may fire (default 8) — together the
	// anti-flap hysteresis.
	Consecutive int
	Dwell       int
	// DrainTimeout bounds the quiescent-point drain. A domain that does not
	// quiesce in time (e.g. a multi-document transaction pattern where the
	// drain barrier itself feeds a cross-document wait) abandons the switch,
	// readmits everyone and retries a later window (default 250ms).
	DrainTimeout time.Duration
}

func (a AdaptiveConfig) withDefaults() AdaptiveConfig {
	if a.Window <= 0 {
		a.Window = 50 * time.Millisecond
	}
	if a.ConflictHigh <= 0 {
		a.ConflictHigh = 0.20
	}
	if a.ConflictLow <= 0 {
		a.ConflictLow = 0.02
	}
	if a.DeadlockHigh <= 0 {
		a.DeadlockHigh = 0.01
	}
	if a.LockWaitHigh <= 0 {
		a.LockWaitHigh = 25 * time.Millisecond
	}
	if a.Consecutive <= 0 {
		a.Consecutive = 2
	}
	if a.Dwell <= 0 {
		a.Dwell = 8
	}
	if a.DrainTimeout <= 0 {
		a.DrainTimeout = 250 * time.Millisecond
	}
	return a
}

// protocolLadder orders the switchable protocols coarse to fine. The policy
// only ever steps one rung per decision.
var protocolLadder = []lock.Protocol{lock.DocLock{}, lock.Node2PL{}, lock.XDGL{}}

// ladderIndex places a protocol on the ladder by name; -1 for protocols the
// policy does not manage (e.g. the xdgl-noguard ablation variant — a domain
// configured with one simply never moves).
func ladderIndex(name string) int {
	for i, p := range protocolLadder {
		if p.Name() == name {
			return i
		}
	}
	return -1
}

// DocProtocol returns the name of the protocol currently active on the
// document's scheduling domain, or "" when the site does not hold it.
func (s *Site) DocProtocol(doc string) string {
	ds := s.doc(doc)
	if ds == nil {
		return ""
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.proto.Name()
}

// ProtocolSwitches returns the total number of completed protocol switches
// across the site's documents.
func (s *Site) ProtocolSwitches() int64 { return s.m.protocolSwitches.Total() }

// errSwitchAbandoned distinguishes an abandoned (timed-out or shut-down)
// switch from caller errors; the policy loop just retries a later window.
var errSwitchAbandoned = fmt.Errorf("sched: protocol switch abandoned")

// SwitchProtocol moves one document's scheduling domain to a different lock
// protocol at a quiescent point: admissions of transactions holding no locks
// in the domain are refused (parked in the coordinator's wait mode) while
// transactions already holding locks run to their strict-2PL release; once
// the lock table has zero owners the protocol is swapped and admissions
// resume. The refused transactions retry within RetryInterval and acquire
// under the new protocol. Safe to call directly (tests, operational tooling)
// whether or not the adaptive policy loop is running.
func (s *Site) SwitchProtocol(docName string, to lock.Protocol) error {
	if to == nil {
		return fmt.Errorf("sched: site %d: SwitchProtocol(%q, nil)", s.id, docName)
	}
	ds := s.doc(docName)
	if ds == nil {
		return fmt.Errorf("sched: site %d does not hold document %q", s.id, docName)
	}
	ds.mu.Lock()
	if ds.proto.Name() == to.Name() {
		ds.mu.Unlock()
		return nil
	}
	if ds.draining {
		ds.mu.Unlock()
		return fmt.Errorf("sched: site %d: a protocol switch on %q is already in progress", s.id, docName)
	}
	from := ds.proto.Name()
	ds.draining = true

	// Drain: wait for every lock owner to release. Admissions are refused
	// from here on (processOperation checks draining under this mutex), so
	// the owner count is monotonically non-increasing except for operations
	// of transactions that already held locks — which strict 2PL guarantees
	// will release at their commit or abort. The poll releases the domain
	// mutex between checks so those releases can happen.
	timeout := s.cfg.Adaptive.DrainTimeout
	if timeout <= 0 {
		timeout = 250 * time.Millisecond
	}
	deadline := time.Now().Add(timeout)
	for ds.table.OwnerCount() > 0 {
		ds.mu.Unlock()
		if s.Killed() || s.stopRequested() || time.Now().After(deadline) {
			// Abandon: clear the barrier so refused transactions readmit on
			// their next retry. A cross-document workload can wedge a drain
			// (the barrier parks a transaction another owner waits on through
			// a different document — a cycle no wait-for graph sees), so the
			// timeout is the liveness guarantee, not an error to escalate.
			ds.mu.Lock()
			ds.draining = false
			ds.mu.Unlock()
			return fmt.Errorf("%w: drain of %q on site %d timed out (%s -> %s)",
				errSwitchAbandoned, docName, s.id, from, to.Name())
		}
		time.Sleep(200 * time.Microsecond)
		ds.mu.Lock()
	}
	ds.mu.Unlock()

	// Quiescent point reached: no owners, admissions blocked. The crash hook
	// fires outside every mutex (like the 2PC-stage hooks) so a chaos test
	// can kill the site exactly mid-switch; the protocol choice is in-memory
	// only, so a restarted site simply comes back under its configured
	// default — no recovery obligation is created here.
	if hooks := s.cfg.Hooks; hooks != nil && hooks.BeforeProtocolSwitch != nil {
		hooks.BeforeProtocolSwitch(docName, from, to.Name())
	}
	if s.Killed() || s.stopRequested() {
		ds.mu.Lock()
		ds.draining = false
		ds.mu.Unlock()
		return fmt.Errorf("%w: site %d died mid-switch of %q", errSwitchAbandoned, s.id, docName)
	}

	ds.mu.Lock()
	ds.proto = to
	ds.draining = false
	ds.mu.Unlock()
	ds.met.switches.Inc()
	return nil
}

// stopRequested reports whether Stop began (the lifecycle channel closed);
// Kill sets killed as well, so this covers both shutdown paths.
func (s *Site) stopRequested() bool {
	select {
	case <-s.stopCh:
		return true
	default:
		return false
	}
}

// docPolicy is the controller's per-document window state: the previous
// counter/bucket readings the deltas are computed against, the hysteresis
// streaks, and the burned-rung cooldown.
type docPolicy struct {
	ops, conflicts, deadlocks int64
	waitBuckets               []int64
	// hotStreak counts consecutive congested-but-deadlock-free windows (climb
	// signal), retreatStreak consecutive deadlocky windows (retreat signal),
	// coldStreak consecutive quiet windows (relax signal).
	hotStreak, retreatStreak, coldStreak int
	sinceSwitch                          int
	// burnedRung is the rung last abandoned under deadlock pressure, and
	// burnCooldown the windows remaining before a climb may re-enter it —
	// the anti-flap memory: the coarser rung below it will read as congested
	// (that is why it serializes), which must not immediately climb back
	// into the same abort storm.
	burnedRung   int
	burnCooldown int
}

// adaptLoop is the per-site policy goroutine, started by Attach when
// Config.Adaptive.Enabled. One loop serves every document at the site.
func (s *Site) adaptLoop() {
	defer s.wg.Done()
	// The policy reads the per-document lock-wait histograms; arming the
	// registry is what makes them record (counters are always live).
	s.m.reg.Arm()
	state := make(map[string]*docPolicy)
	ticker := time.NewTicker(s.cfg.Adaptive.Window)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.adaptTick(state)
		}
	}
}

// adaptTick runs one policy window over every document: read deltas, update
// hysteresis streaks, and fire at most one single-rung switch per document.
func (s *Site) adaptTick(state map[string]*docPolicy) {
	cfg := s.cfg.Adaptive
	for _, ds := range s.allDocs() {
		pol := state[ds.name]
		if pol == nil {
			pol = &docPolicy{burnedRung: -1}
			state[ds.name] = pol
		}

		ds.mu.Lock()
		cur := ds.proto.Name()
		draining := ds.draining
		ds.mu.Unlock()
		rung := ladderIndex(cur)
		if rung < 0 || draining {
			continue // unmanaged protocol, or a switch already in flight
		}

		ops := ds.met.ops.Value()
		conflicts := ds.met.conflicts.Value()
		deadlocks := ds.met.deadlocks.Value()
		waits := ds.met.lockWait.Snapshot()
		opsD := ops - pol.ops
		confD := conflicts - pol.conflicts
		deadD := deadlocks - pol.deadlocks
		waitD := bucketDelta(waits, pol.waitBuckets)
		pol.ops, pol.conflicts, pol.deadlocks, pol.waitBuckets = ops, conflicts, deadlocks, waits
		pol.sinceSwitch++
		if pol.burnCooldown > 0 {
			pol.burnCooldown--
		}

		if opsD == 0 && confD == 0 {
			// Idle window: no evidence either way. Streaks decay so stale
			// pressure from before an idle period cannot trigger a switch.
			pol.hotStreak, pol.retreatStreak, pol.coldStreak = 0, 0, 0
			continue
		}

		attempts := opsD + confD
		conflictRate := float64(confD) / float64(attempts)
		deadlockRate := float64(deadD) / math.Max(1, float64(opsD))
		waitP99 := obs.QuantileOverBuckets(0.99, ds.met.lockWait.Bounds(), waitD)
		deadlocky := deadlockRate > cfg.DeadlockHigh
		congested := conflictRate > cfg.ConflictHigh ||
			(!math.IsNaN(waitP99) && waitP99 > cfg.LockWaitHigh.Seconds())
		// Deadlock pressure retreats coarser — except at the ladder bottom,
		// where nothing coarser exists and finer granularity is the only
		// lever left (doclock deadlocks are cross-document cycles a smaller
		// footprint can break).
		retreat := deadlocky && rung > 0
		hot := (congested && !deadlocky) || (deadlocky && rung == 0)
		cold := conflictRate < cfg.ConflictLow && deadD == 0

		switch {
		case retreat:
			pol.retreatStreak++
			pol.hotStreak, pol.coldStreak = 0, 0
		case hot:
			pol.hotStreak++
			pol.retreatStreak, pol.coldStreak = 0, 0
		case cold:
			pol.coldStreak++
			pol.hotStreak, pol.retreatStreak = 0, 0
		default:
			pol.hotStreak, pol.retreatStreak, pol.coldStreak = 0, 0, 0
		}

		if pol.sinceSwitch < cfg.Dwell {
			continue
		}
		var target int
		burned := false
		switch {
		case pol.retreatStreak >= cfg.Consecutive && rung > 0:
			target, burned = rung-1, true
		case pol.hotStreak >= cfg.Consecutive && rung < len(protocolLadder)-1:
			target = rung + 1
			if target == pol.burnedRung && pol.burnCooldown > 0 {
				continue // that rung just caused an abort storm; wait it out
			}
		case pol.coldStreak >= cfg.Consecutive && rung > 0:
			target = rung - 1
		default:
			continue
		}
		if err := s.SwitchProtocol(ds.name, protocolLadder[target]); err != nil {
			continue // abandoned drains retry on a later window
		}
		if burned {
			pol.burnedRung, pol.burnCooldown = rung, 4*cfg.Dwell
		}
		pol.hotStreak, pol.retreatStreak, pol.coldStreak, pol.sinceSwitch = 0, 0, 0, 0
	}
}

// bucketDelta subtracts a previous bucket snapshot from the current one. A
// nil or mismatched previous snapshot (first window) yields the current
// counts unchanged.
func bucketDelta(cur, prev []int64) []int64 {
	out := make([]int64, len(cur))
	copy(out, cur)
	if len(prev) == len(cur) {
		for i := range out {
			out[i] -= prev[i]
		}
	}
	return out
}
