package sched

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/txn"
	"repro/internal/xupdate"
)

// policyConfig is an AdaptiveConfig with every dial explicit, for tests that
// drive adaptTick by hand (Enabled stays false so Attach starts no loop and
// the test owns the tick cadence).
func policyConfig() AdaptiveConfig {
	return AdaptiveConfig{
		Window:       50 * time.Millisecond,
		ConflictHigh: 0.20,
		ConflictLow:  0.02,
		DeadlockHigh: 0.01,
		LockWaitHigh: 25 * time.Millisecond,
		Consecutive:  2,
		Dwell:        3,
		DrainTimeout: 250 * time.Millisecond,
	}
}

// TestSwitchProtocolQuiescentPoint exercises the drain: a switch requested
// while a transaction holds locks must wait for its strict-2PL release, a
// transaction submitted mid-drain must be parked and readmitted under the
// new protocol, and afterwards the domain serves normally.
func TestSwitchProtocolQuiescentPoint(t *testing.T) {
	// Pinned to xdgl (not the DTX_PROTOCOL matrix): the test asserts the
	// specific xdgl -> doclock transition.
	sites, _ := newClusterWithProtocol(t, 1, "xdgl", func(c *Config) { c.OpDelay = 40 * time.Millisecond })
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	writerDone := make(chan *Result, 1)
	var writerCommitted time.Time
	go func() {
		res, err := s.Submit([]txn.Operation{
			txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "2.00"}),
			txn.NewQuery("d2", "//product/id"), // OpDelay keeps the X lock held
		})
		if err != nil {
			t.Error(err)
		}
		writerCommitted = time.Now()
		writerDone <- res
	}()
	time.Sleep(10 * time.Millisecond) // let the writer take its lock

	// A transaction arriving mid-drain: refused admission, parked in the
	// coordinator's wait mode, readmitted under the new protocol.
	midDone := make(chan *Result, 1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		res, err := s.Submit([]txn.Operation{txn.NewQuery("d2", "//product/price")})
		if err != nil {
			t.Error(err)
		}
		midDone <- res
	}()

	if err := s.SwitchProtocol("d2", lock.DocLock{}); err != nil {
		t.Fatal(err)
	}
	switched := time.Now()
	w := <-writerDone
	if w.State != txn.Committed {
		t.Fatalf("writer = %v (%s)", w.State, w.Reason)
	}
	if switched.Before(writerCommitted) {
		t.Fatal("switch completed while the writer still held locks")
	}
	if m := <-midDone; m.State != txn.Committed {
		t.Fatalf("mid-drain transaction = %v (%s)", m.State, m.Reason)
	}
	if got := s.DocProtocol("d2"); got != "doclock" {
		t.Fatalf("DocProtocol = %q, want doclock", got)
	}
	if n := s.ProtocolSwitches(); n != 1 {
		t.Fatalf("ProtocolSwitches = %d, want 1", n)
	}

	// The domain keeps serving under the new protocol.
	res, err := s.Submit([]txn.Operation{
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "3.00"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("post-switch transaction = %v (%s)", res.State, res.Reason)
	}
}

// TestSwitchProtocolDrainTimeout: a domain that cannot quiesce within
// DrainTimeout abandons the switch, keeps the old protocol and readmits the
// transactions the drain barrier had refused.
func TestSwitchProtocolDrainTimeout(t *testing.T) {
	sites, _ := newClusterWithProtocol(t, 1, "xdgl", func(c *Config) {
		c.OpDelay = 150 * time.Millisecond
		c.Adaptive.DrainTimeout = 25 * time.Millisecond
	})
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	writerDone := make(chan *Result, 1)
	go func() {
		res, _ := s.Submit([]txn.Operation{
			txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "2.00"}),
			txn.NewQuery("d2", "//product/id"), // holds the lock far past DrainTimeout
		})
		writerDone <- res
	}()
	time.Sleep(10 * time.Millisecond)

	parkedDone := make(chan *Result, 1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		res, _ := s.Submit([]txn.Operation{txn.NewQuery("d2", "//product/price")})
		parkedDone <- res
	}()

	err := s.SwitchProtocol("d2", lock.DocLock{})
	if !errors.Is(err, errSwitchAbandoned) {
		t.Fatalf("err = %v, want errSwitchAbandoned", err)
	}
	if got := s.DocProtocol("d2"); got != "xdgl" {
		t.Fatalf("protocol after abandoned switch = %q, want xdgl", got)
	}
	if n := s.ProtocolSwitches(); n != 0 {
		t.Fatalf("ProtocolSwitches = %d, want 0", n)
	}
	if w := <-writerDone; w.State != txn.Committed {
		t.Fatalf("writer = %v", w.State)
	}
	if p := <-parkedDone; p.State != txn.Committed {
		t.Fatalf("parked transaction = %v after abandoned switch", p.State)
	}
}

func TestSwitchProtocolValidation(t *testing.T) {
	sites, _ := newClusterWithProtocol(t, 1, "xdgl", nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	if err := s.SwitchProtocol("ghost", lock.DocLock{}); err == nil {
		t.Error("switch on unknown document accepted")
	}
	if err := s.SwitchProtocol("d2", nil); err == nil {
		t.Error("nil protocol accepted")
	}
	// Same protocol: a no-op, not a counted switch.
	if err := s.SwitchProtocol("d2", lock.XDGL{}); err != nil {
		t.Fatal(err)
	}
	if n := s.ProtocolSwitches(); n != 0 {
		t.Fatalf("no-op switch counted: %d", n)
	}
}

// TestAdaptivePolicyLadder drives the policy engine tick by tick with
// synthetic counter traffic: sustained conflict pressure must escalate
// node2pl -> xdgl only after Consecutive hot windows AND the Dwell pin, a
// cold document must relax back down, and idle windows must decay streaks.
func TestAdaptivePolicyLadder(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) {
		c.Protocol = lock.Node2PL{}
		c.Adaptive = policyConfig() // Enabled=false: the test ticks by hand
	})
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)
	ds := s.doc("d1")
	state := make(map[string]*docPolicy)

	hotWindow := func() {
		ds.met.ops.Add(100)
		ds.met.conflicts.Add(50) // conflict rate 1/3, above ConflictHigh
		s.adaptTick(state)
	}
	coldWindow := func() {
		ds.met.ops.Add(100) // zero conflicts, below ConflictLow
		s.adaptTick(state)
	}

	// Hot windows 1..2 build the streak but sinceSwitch < Dwell(3) pins.
	hotWindow()
	hotWindow()
	if got := s.DocProtocol("d1"); got != "node2pl" {
		t.Fatalf("escalated during dwell: %q", got)
	}
	hotWindow() // window 3: streak >= Consecutive and dwell satisfied
	if got := s.DocProtocol("d1"); got != "xdgl" {
		t.Fatalf("protocol = %q, want xdgl after sustained pressure", got)
	}

	// Already at the top: more pressure must not step past the ladder end.
	hotWindow()
	hotWindow()
	hotWindow()
	if got := s.DocProtocol("d1"); got != "xdgl" {
		t.Fatalf("protocol = %q, want xdgl at ladder top", got)
	}

	// An idle window decays the cold streak: cold, idle, cold, cold must
	// relax only on the second consecutive cold window after the gap.
	coldWindow()       // dwell counting restarts post-switch
	s.adaptTick(state) // idle: no traffic at all
	coldWindow()       // cold streak 1
	if got := s.DocProtocol("d1"); got != "xdgl" {
		t.Fatalf("relaxed after idle-decayed streak: %q", got)
	}
	coldWindow() // cold streak 2 -> relax one rung
	if got := s.DocProtocol("d1"); got != "node2pl" {
		t.Fatalf("protocol = %q, want node2pl after cold windows", got)
	}
	if n := s.ProtocolSwitches(); n != 2 {
		t.Fatalf("ProtocolSwitches = %d, want 2", n)
	}
}

// TestAdaptiveDeadlockRetreat: deadlock pressure above the ladder bottom
// retreats coarser — and the abandoned rung is burned, so the congestion the
// coarser lock then shows cannot immediately climb back into the abort storm.
func TestAdaptiveDeadlockRetreat(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) {
		c.Protocol = lock.Node2PL{}
		c.Adaptive = policyConfig()
	})
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)
	ds := s.doc("d1")
	state := make(map[string]*docPolicy)

	// Deadlocky windows: conflicts high too, but the retreat must win.
	for i := 0; i < 3; i++ {
		ds.met.ops.Add(100)
		ds.met.conflicts.Add(50)
		ds.met.deadlocks.Add(10)
		s.adaptTick(state)
	}
	if got := s.DocProtocol("d1"); got != "doclock" {
		t.Fatalf("protocol = %q, want doclock after deadlock pressure", got)
	}

	// The coarse lock now serializes: congested, zero deadlocks — exactly
	// the climb signal. The burned rung must hold it down for the cooldown.
	for i := 0; i < policyConfig().Dwell+2*policyConfig().Consecutive; i++ {
		ds.met.ops.Add(100)
		ds.met.conflicts.Add(50)
		s.adaptTick(state)
	}
	if got := s.DocProtocol("d1"); got != "doclock" {
		t.Fatalf("climbed back into the burned rung during cooldown: %q", got)
	}
}

// TestAdaptiveDeadlockSignal: a deadlock burst escalates even when the
// conflict rate stays under ConflictHigh.
func TestAdaptiveDeadlockSignal(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) {
		c.Protocol = lock.DocLock{}
		c.Adaptive = policyConfig()
	})
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)
	ds := s.doc("d1")
	state := make(map[string]*docPolicy)

	for i := 0; i < 3; i++ {
		ds.met.ops.Add(100)
		ds.met.conflicts.Add(5) // 4.8% conflicts: inside the hysteresis band
		ds.met.deadlocks.Add(5) // 5% deadlock rate, above DeadlockHigh
		s.adaptTick(state)
	}
	if got := s.DocProtocol("d1"); got != "node2pl" {
		t.Fatalf("protocol = %q, want node2pl after deadlock bursts", got)
	}
}

// TestAdaptiveLoopEndToEnd: with the policy goroutine running, a contended
// skewed write workload on a node2pl domain escalates it without any manual
// ticking, and the domain keeps committing throughout.
func TestAdaptiveLoopEndToEnd(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) {
		c.Protocol = lock.Node2PL{}
		c.Adaptive = AdaptiveConfig{
			Enabled:     true,
			Window:      10 * time.Millisecond,
			Consecutive: 1,
			Dwell:       1,
		}
		c.DeadlockInterval = 5 * time.Millisecond
	})
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	// The two goroutines acquire in opposite orders, so deadlock-victim
	// aborts are an expected outcome, not an error (resubmission policy is
	// the application's job, out of scope here); the test only requires
	// that commits keep happening and the policy loop reacts.
	var committed atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		// Every writer hammers the same element: near-total conflict.
		for i := 0; i < 40; i++ {
			res, err := s.Submit([]txn.Operation{
				txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "9.99"}),
				txn.NewQuery("d2", "//product/price"),
			})
			if err != nil {
				t.Errorf("writer %d: %v", i, err)
				return
			}
			if res.State == txn.Committed {
				committed.Add(1)
			}
		}
	}()
	contender := make(chan struct{})
	go func() {
		defer close(contender)
		for i := 0; i < 40; i++ {
			res, err := s.Submit([]txn.Operation{
				txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='14']/price", Value: "1.11"}),
				txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "8.88"}),
			})
			if err == nil && res.State == txn.Committed {
				committed.Add(1)
			}
		}
	}()
	<-done
	<-contender
	if committed.Load() == 0 {
		t.Fatal("nothing committed under the adaptive loop")
	}

	deadline := time.After(2 * time.Second)
	for s.ProtocolSwitches() == 0 {
		select {
		case <-deadline:
			t.Fatalf("adaptive loop never switched; protocol still %q", s.DocProtocol("d2"))
		case <-time.After(10 * time.Millisecond):
		}
	}
}
