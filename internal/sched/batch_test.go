package sched

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// TestExecBatchReadsConcurrently: a batch of reads returns every result in
// operation order, the locks stay held (strict 2PL) until the terminal
// commit, and the transaction commits cleanly.
func TestExecBatchReadsConcurrently(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	addDoc(t, sites[0], "d1", peopleXML)
	addDoc(t, sites[1], "d2", productsXML)

	sess, err := sites[0].Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res, err := sess.ExecBatch([]txn.Operation{
		txn.NewQuery("d1", "//person/name"),
		txn.NewQuery("d2", "//product/price"),
		txn.NewQuery("d1", "//person/id"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	if len(res[0]) != 2 || res[0][0] != "Ana" {
		t.Fatalf("batch result 0 = %v", res[0])
	}
	if len(res[1]) != 2 || res[1][0] != "50.00" {
		t.Fatalf("batch result 1 = %v", res[1])
	}
	if len(res[2]) != 2 || res[2][0] != "4" {
		t.Fatalf("batch result 2 = %v", res[2])
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestExecBatchRejectsUpdates: the concurrent path is read-only; an update
// in the batch is refused up front without dooming the transaction.
func TestExecBatchRejectsUpdates(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	addDoc(t, sites[0], "d1", peopleXML)

	sess, err := sites[0].Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.ExecBatch([]txn.Operation{
		txn.NewQuery("d1", "//person"),
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
			Pos: xmltree.Into, New: personSpec("9", "Nuno")}),
	})
	if err == nil {
		t.Fatal("expected rejection of a non-read-only batch")
	}
	if sess.Done() {
		t.Fatal("a rejected batch must not doom the transaction")
	}
	if _, err := sess.Exec(txn.NewQuery("d1", "//person/id")); err != nil {
		t.Fatalf("transaction unusable after rejected batch: %v", err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestExecBatchUnknownDocumentFailsTransaction: a batch step that cannot
// resolve terminates the whole transaction with the step's typed error, not
// the cancellation its siblings observe.
func TestExecBatchUnknownDocumentFailsTransaction(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	addDoc(t, sites[0], "d1", peopleXML)

	sess, err := sites[0].Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.ExecBatch([]txn.Operation{
		txn.NewQuery("d1", "//person/name"),
		txn.NewQuery("nope", "//x"),
	})
	if !errors.Is(err, txn.ErrUnknownDocument) {
		t.Fatalf("batch error = %v, want ErrUnknownDocument", err)
	}
	if !sess.Done() {
		t.Fatal("failed batch must resolve the transaction")
	}
}

// TestSubmitBatchesConsecutiveReads: the batch Submit path routes runs of
// read-only operations through the concurrent path (OpDelay zero) and the
// per-operation results land at their submission indexes.
func TestSubmitBatchesConsecutiveReads(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	addDoc(t, sites[0], "d1", peopleXML)
	addDoc(t, sites[1], "d2", productsXML)

	res, err := sites[0].Submit([]txn.Operation{
		txn.NewQuery("d1", "//person/name"),
		txn.NewQuery("d2", "//product/description"),
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "60.00"}),
		txn.NewQuery("d2", "//product[id='4']/price"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}
	if len(res.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(res.Results))
	}
	if res.Results[0][0] != "Ana" || res.Results[1][0] != "Chair" {
		t.Fatalf("batched read results misplaced: %v", res.Results[:2])
	}
	if res.Results[3][0] != "60.00" {
		t.Fatalf("read after update = %v, want the updated price", res.Results[3])
	}
}

// TestStaleOpAfterTerminationDoesNotResurrect: the pipelined transport can
// deliver an abandoned ExecOpReq after the transaction's abort (or commit)
// already cleaned the participant up. The stale operation must be refused —
// not re-create participant state and acquire locks nothing will release.
func TestStaleOpAfterTerminationDoesNotResurrect(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	addDoc(t, sites[1], "d1", peopleXML)
	part := sites[1]

	id := txn.ID{Site: 0, Seq: 99}
	// The abort outruns the operation (out-of-order delivery on the wire).
	if _, err := part.HandleMessage(0, transport.AbortReq{Txn: id}); err != nil {
		t.Fatal(err)
	}
	resp, err := part.HandleMessage(0, transport.ExecOpReq{
		Txn: id, TS: 5, Coordinator: 0, OpIdx: 0,
		Op: txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
			Pos: xmltree.Into, New: personSpec("z", "Zombie")}),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := resp.(transport.ExecOpResp)
	if !r.Failed || r.Executed {
		t.Fatalf("stale op was not refused: %+v", r)
	}
	// Nothing leaked: a fresh transaction locks and commits immediately.
	res, err := sites[1].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
			Pos: xmltree.Into, New: personSpec("9", "Nuno")}),
	})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("site unusable after stale op: %+v, %v", res, err)
	}
	doc, err := sites[1].Document("d1")
	if err != nil {
		t.Fatal(err)
	}
	if s := doc.String(); strings.Contains(s, "Zombie") {
		t.Fatal("stale operation's update was applied")
	}
}

// TestStopInterruptsDetectorPoll: Stop must cut a deadlock-detector sweep
// short via the site's lifecycle context instead of leaking a blocked WFG
// poll past Close — the detector previously polled on context.Background.
func TestStopInterruptsDetectorPoll(t *testing.T) {
	sites, network := newCluster(t, 2, func(c *Config) {
		c.DeadlockInterval = time.Millisecond
	})
	addDoc(t, sites[0], "d1", peopleXML)
	// Inject one-way latency so a sweep is very likely mid-poll when Stop
	// lands; the lifecycle context must still cut it short promptly.
	network.SetLatency(50 * time.Millisecond)
	time.Sleep(5 * time.Millisecond) // let the detector enter a sweep

	done := make(chan struct{})
	go func() {
		sites[0].Stop()
		sites[1].Stop()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop hung behind a blocked detector poll")
	}
}
