package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/txn"
)

// validateOp rejects malformed operations before they reach any scheduler.
func validateOp(i int, op txn.Operation) error {
	if op.Doc == "" {
		return fmt.Errorf("sched: operation %d has no document", i)
	}
	if op.Kind == txn.OpUpdate {
		if op.Update == nil {
			return fmt.Errorf("sched: operation %d is an update without a body", i)
		}
		if err := op.Update.Validate(); err != nil {
			return fmt.Errorf("sched: operation %d: %w", i, err)
		}
	}
	return nil
}

// Submit runs a batch transaction with this site as coordinator and blocks
// until it commits, aborts or fails (Algorithm 1). An error is returned only
// for malformed submissions; the transaction's own outcome — including its
// typed terminal error — is in the Result.
func (s *Site) Submit(ops []txn.Operation) (*Result, error) {
	return s.SubmitCtx(context.Background(), ops)
}

// SubmitCtx is Submit bound to a context: it is a thin wrapper over the
// interactive Session — Begin, one Exec per operation, Commit — so batch and
// interactive transactions share one code path. Cancelling the context
// aborts the transaction and releases its locks everywhere.
func (s *Site) SubmitCtx(ctx context.Context, ops []txn.Operation) (*Result, error) {
	return s.submitWith(ctx, ops, s.Begin)
}

// SubmitReadOnly runs a batch transaction through the MVCC snapshot-read
// path: every operation must be a query (anything else is refused up front
// with ErrReadOnly, before a transaction exists), no locks are taken, and the
// reads observe committed versions at or below the transaction's begin
// timestamp. See Site.BeginReadOnly for the semantics.
func (s *Site) SubmitReadOnly(ops []txn.Operation) (*Result, error) {
	return s.SubmitReadOnlyCtx(context.Background(), ops)
}

// SubmitReadOnlyCtx is SubmitReadOnly bound to a context.
func (s *Site) SubmitReadOnlyCtx(ctx context.Context, ops []txn.Operation) (*Result, error) {
	for i := range ops {
		if ops[i].Kind != txn.OpQuery {
			return nil, fmt.Errorf("%w: operation %d is not a query", txn.ErrReadOnly, i)
		}
	}
	return s.submitWith(ctx, ops, s.BeginReadOnly)
}

// submitWith is the shared batch-submission driver: begin a session with the
// given mode, step through the operations (auto-batching consecutive queries
// when there is no client think time to model), commit, and report.
func (s *Site) submitWith(ctx context.Context, ops []txn.Operation, begin func(context.Context) (*Session, error)) (*Result, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("sched: empty transaction")
	}
	for i := range ops {
		if err := validateOp(i, ops[i]); err != nil {
			return nil, err
		}
	}
	sess, err := begin(ctx)
	if err != nil {
		return nil, err
	}
	for i := 0; i < len(ops); {
		if i > 0 && s.cfg.OpDelay > 0 {
			// Client think time between operations; a cancellation during
			// the pause is observed by the next Exec (or by the session
			// watcher, whichever gets there first).
			timer := time.NewTimer(s.cfg.OpDelay)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
			case <-s.stopCh:
				timer.Stop()
			}
		}
		if s.cfg.OpDelay == 0 {
			// With no client think time to model, a run of consecutive
			// read-only operations has no ordering the client can observe —
			// under strict 2PL all their locks are held to the end either
			// way — so they ship through the concurrent path and overlap
			// their per-site round trips.
			j := i
			for j < len(ops) && ops[j].Kind == txn.OpQuery {
				j++
			}
			if j-i >= 2 {
				if _, err := sess.ExecBatch(ops[i:j]); err != nil {
					break
				}
				i = j
				continue
			}
		}
		if _, err := sess.Exec(ops[i]); err != nil {
			break
		}
		i++
	}
	if !sess.Done() {
		sess.Commit()
	}
	res := sess.Result()
	// Batch callers index Results by operation position; pad for the
	// operations an early abort never reached.
	for len(res.Results) < len(ops) {
		res.Results = append(res.Results, nil)
	}
	return res, nil
}

func (s *Site) beginTxn() *coordTxn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := txn.ID{Site: s.id, Seq: s.seq}
	ts := s.clock.Tick()
	ct := &coordTxn{
		t:        txn.New(id, ts, nil),
		wake:     make(chan struct{}),
		abortCh:  make(chan string, 1),
		sites:    make(map[int]bool),
		finished: make(chan struct{}),
	}
	if s.traceArmed {
		ct.trace = newTxnTrace()
		ct.trace.add("begin", "", 0, 0)
	}
	s.coord[id] = ct
	s.coordOf[id] = s.id
	return ct
}

// execOp executes one operation at every site holding its document, retrying
// with wait mode on lock conflicts (Algorithm 1, l. 5–23). It returns nil
// once the operation executed everywhere, or the typed terminal error that
// dooms the transaction: ErrDeadlock for victims, ErrUnknownDocument /
// ErrFailed for unresolvable operations, ErrAborted wrapping the context
// cause on cancellation.
func (s *Site) execOp(ctx context.Context, ct *coordTxn, opIdx int) error {
	op := ct.t.Ops[opIdx]
	id, ts := ct.t.ID, ct.t.TS
	sp := s.m.reg.Span() // whole execute phase of this operation (armed-gated)
	var waitStart time.Time
	for {
		// Fetched before the attempt: a wake broadcast during the attempt
		// closes exactly this channel, so it cannot be lost.
		wakeCh := ct.wakeChan()
		// A victim signal or cancellation can arrive at any point while the
		// operation retries; honour them before burning another attempt.
		select {
		case r := <-ct.abortCh:
			return fmt.Errorf("%w: %s", txn.ErrDeadlock, r)
		default:
		}
		if ctx.Err() != nil {
			return fmt.Errorf("%w: %w", txn.ErrAborted, context.Cause(ctx))
		}

		// Replica-aware routing: reads run on the replicas believed alive
		// and route around dead ones; writes must reach every copy, so a
		// partially-down replica set fails them fast with a typed error the
		// client can branch on (retry later, degrade, alert) instead of a
		// lock-timeout limbo.
		sites, down := s.cfg.Catalog.LiveSites(op.Doc, s.liveness)
		if len(sites) == 0 && len(down) == 0 {
			return fmt.Errorf("%w: no site holds %q", txn.ErrUnknownDocument, op.Doc)
		}
		if s.replLog != nil {
			// Quorum mode: every operation of a read-write transaction runs
			// at the document's primary only — lock state must live in one
			// place — and the committed effects reach the followers through
			// log shipping, so a down follower never blocks a write. Only a
			// down primary makes the document unavailable for writing.
			primary := s.primaryOf(op.Doc)
			alive := false
			for _, site := range sites {
				if site == primary {
					alive = true
					break
				}
			}
			if !alive {
				return fmt.Errorf("%w: primary site %d of %q is down", txn.ErrReplicaUnavailable, primary, op.Doc)
			}
			sites = []int{primary}
		} else {
			if op.Kind != txn.OpQuery && len(down) > 0 {
				return fmt.Errorf("%w: %q has down replica site(s) %v", txn.ErrReplicaUnavailable, op.Doc, down)
			}
			if len(sites) == 0 {
				return fmt.Errorf("%w: no live replica of %q", txn.ErrReplicaUnavailable, op.Doc)
			}
		}

		var res localResult
		if len(sites) == 1 && sites[0] == s.id {
			// Algorithm 1, l. 5–10: the operation involves only the
			// coordinator's site.
			res = s.processOperation(id, ts, s.id, opIdx, op)
			ct.addSite(s.id)
		} else {
			// Algorithm 1, l. 12–22: ship the operation to every
			// participant holding the document (the coordinator included,
			// if it holds a copy) and wait for all responses.
			res = s.execRemote(ctx, ct, opIdx, op, sites)
		}

		switch {
		case res.retryRouting:
			// A replica died mid-read; re-route immediately against the
			// survivors (the loop re-filters the replica set by liveness).
			continue
		case res.failed:
			if res.code == txn.CodeAborted && ctx.Err() != nil {
				// A send abandoned by cancellation classified the failure as
				// an abort; keep the actual cause in the chain instead of the
				// stringified transport error.
				return fmt.Errorf("%w: %w", txn.ErrAborted, context.Cause(ctx))
			}
			msg := res.err
			if msg == "" {
				msg = "operation failed"
			}
			return txn.FromCode(res.code, msg)
		case res.deadlock:
			return fmt.Errorf("%w: deadlock detected while locking", txn.ErrDeadlock)
		case res.executed:
			if op.Kind == txn.OpQuery {
				ct.results[opIdx] = res.results
			}
			ct.t.Ops[opIdx].Executed = true
			if sp.Active() {
				if !waitStart.IsZero() {
					wait := time.Since(waitStart)
					s.m.lockWait.With(op.Doc).ObserveDuration(wait)
					ct.trace.add("lock-wait", op.Doc, opIdx, wait)
				}
				s.m.opExec.With(op.Doc).ObserveDuration(sp.Elapsed())
				ct.trace.add("exec", op.Doc, opIdx, sp.Elapsed())
			}
			return nil
		}

		// Not acquired: wait mode (Algorithm 1, l. 9 / l. 17) until a
		// wake-up, a victim signal, cancellation, or the retry safety net.
		// The first conflicting attempt starts the lock-wait clock; it stops
		// at the grant (the executed case above).
		if sp.Active() && waitStart.IsZero() {
			waitStart = time.Now()
		}
		timer := time.NewTimer(s.cfg.RetryInterval)
		select {
		case <-wakeCh:
			timer.Stop()
		case r := <-ct.abortCh:
			timer.Stop()
			return fmt.Errorf("%w: %s", txn.ErrDeadlock, r)
		case <-ctx.Done():
			timer.Stop()
			return fmt.Errorf("%w: %w", txn.ErrAborted, context.Cause(ctx))
		case <-s.stopCh:
			timer.Stop()
			return fmt.Errorf("%w: site stopping", txn.ErrAborted)
		case <-timer.C:
		}
	}
}

// execOps runs n consecutive operations of the transaction, starting at
// base, concurrently — the batched read-only path. Each operation goes
// through the full machinery of the given executor (execOp with its per-site
// fan-out, wait mode and victim signals, or execSnapshotOp's pin-and-read)
// under a context that the first failing sibling cancels, so a doomed batch
// stops burning retries. The returned error is the batch's root cause: a
// typed terminal error from the operation that failed, in preference to the
// ErrAborted wrappers its cancelled siblings report.
func (s *Site) execOps(ctx context.Context, ct *coordTxn, base, n int, exec func(context.Context, *coordTxn, int) error) error {
	if n == 1 {
		return exec(ctx, ct, base)
	}
	bctx, cancel := context.WithCancelCause(ctx)
	defer cancel(nil)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := exec(bctx, ct, base+i); err != nil {
				errs[i] = err
				cancel(err)
			}
		}(i)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !errors.Is(err, txn.ErrAborted) {
			// A deadlock victim or unresolvable operation is the cause the
			// client should see, not the cancellation it spread.
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// execRemote fans one operation out to all sites holding the document and
// merges the participant statuses (Algorithm 1, l. 12–22).
func (s *Site) execRemote(ctx context.Context, ct *coordTxn, opIdx int, op txn.Operation, sites []int) localResult {
	id, ts := ct.t.ID, ct.t.TS
	type siteResult struct {
		site int
		res  localResult
		err  error
	}
	results := make([]siteResult, len(sites))
	var wg sync.WaitGroup
	for i, site := range sites {
		ct.addSite(site)
		wg.Add(1)
		go func(i, site int) {
			defer wg.Done()
			if site == s.id {
				results[i] = siteResult{site: site, res: s.processOperation(id, ts, s.id, opIdx, op)}
				return
			}
			s.m.remoteOpsSent.Inc()
			resp, err := s.send(ctx, site, transport.ExecOpReq{
				Txn: id, TS: ts, Coordinator: s.id, OpIdx: opIdx, Op: op,
			})
			if err != nil {
				results[i] = siteResult{site: site, err: err}
				return
			}
			r, ok := resp.(transport.ExecOpResp)
			if !ok {
				results[i] = siteResult{site: site, err: fmt.Errorf("unexpected response %T", resp)}
				return
			}
			results[i] = siteResult{site: site, res: localResult{
				executed: r.Executed,
				acquired: r.AcquireLocking,
				deadlock: r.Deadlock,
				failed:   r.Failed,
				code:     r.Code,
				err:      r.Error,
				results:  r.Results,
			}}
		}(i, site)
	}
	wg.Wait()

	merged := localResult{acquired: true, executed: true}
	anyExecuted := false
	for _, sr := range results {
		if sr.err != nil {
			// Communication failure (or a send abandoned by cancellation):
			// the operation fails; an abort follows. If the cancellation is
			// the cause, it wins over the failure classification so the
			// client sees ErrAborted, not ErrFailed.
			merged.failed = true
			if ctx.Err() != nil {
				merged.code = txn.CodeAborted
			}
			merged.err = sr.err.Error()
			continue
		}
		if sr.res.failed {
			merged.failed = true
			if merged.code == txn.CodeNone {
				merged.code = sr.res.code
			}
			merged.err = sr.res.err
		}
		if sr.res.deadlock {
			merged.deadlock = true
		}
		if !sr.res.acquired {
			merged.acquired = false
		}
		if sr.res.executed {
			anyExecuted = true
			if op.Kind == txn.OpQuery && merged.results == nil {
				merged.results = sr.res.results
			}
		}
	}
	merged.executed = merged.acquired && !merged.failed && !merged.deadlock && anyExecuted

	// Failover: a replica whose connection tore down mid-exchange has
	// already been demoted to Suspect by send; one that answered "replica
	// unavailable" (it is recovering, or was killed under this very
	// exchange) is demoted here — it responded, so send counted it Up. A
	// read rolls its partial execution back and retries against the
	// survivors (the routing loop re-filters by liveness); a write cannot
	// proceed with a partial replica set and fails with the typed replica
	// error.
	var closed []int
	for _, sr := range results {
		switch {
		case sr.err != nil && errors.Is(sr.err, transport.ErrPeerClosed):
			closed = append(closed, sr.site)
		case sr.err == nil && sr.res.failed && sr.res.code == txn.CodeReplicaUnavailable && sr.site != s.id:
			s.liveness.observeClosed(sr.site)
			closed = append(closed, sr.site)
		}
	}
	if len(closed) > 0 && ctx.Err() == nil && !merged.deadlock {
		// Re-routing is only productive when failure detection will actually
		// remove the dead replica from the next routing pass; with the
		// liveness view inert (no heartbeats) the retry would re-select the
		// same dead site forever, so the typed error surfaces instead.
		if op.Kind == txn.OpQuery && s.liveness.enabled {
			for _, sr := range results {
				if sr.err == nil && sr.res.executed {
					s.undoOpEverywhere(id, opIdx, sr.site)
				}
			}
			return localResult{retryRouting: true}
		}
		merged.failed = true
		merged.code = txn.CodeReplicaUnavailable
	}

	// Algorithm 1, l. 15–17: if the operation did not acquire locks at some
	// participant, undo it wherever it did execute, then wait.
	if !merged.failed && !merged.deadlock && !merged.acquired {
		for _, sr := range results {
			if sr.err == nil && sr.res.executed {
				s.undoOpEverywhere(ct.t.ID, opIdx, sr.site)
			}
		}
		// Locks acquired at sites that granted but did not need undo (e.g.
		// a query that executed) are released by undoOpEverywhere too; for
		// sites that merely granted locks without executing there is
		// nothing to release because participant lock acquisition and
		// execution are atomic under the site mutex.
	}
	return merged
}

// undoOpEverywhere undoes one operation at one site (local or remote). Undo
// is cleanup and must not be cut short by the client's cancellation, so it
// runs detached from the transaction context.
func (s *Site) undoOpEverywhere(id txn.ID, opIdx int, site int) {
	if site == s.id {
		s.undoOpLocal(id, opIdx)
		return
	}
	_, _ = s.send(context.Background(), site, transport.UndoOpReq{Txn: id, OpIdx: opIdx})
}

// fanOut runs fn for every site concurrently — the join of one concurrent
// 2PC phase — returning each branch's outcome (indexed like sites) and
// their conjunction. A single-site list runs inline, sparing the goroutine.
func fanOut(sites []int, fn func(site int) bool) ([]bool, bool) {
	oks := make([]bool, len(sites))
	if len(sites) == 1 {
		oks[0] = fn(sites[0])
		return oks, oks[0]
	}
	var wg sync.WaitGroup
	for i, site := range sites {
		wg.Add(1)
		go func(i, site int) {
			defer wg.Done()
			oks[i] = fn(site)
		}(i, site)
	}
	wg.Wait()
	all := true
	for _, ok := range oks {
		all = all && ok
	}
	return oks, all
}

// commitTransaction is Algorithm 5: ask every involved site to consolidate;
// if any refuses, abort. Returns true if the commit completed. The remote
// consolidations are issued concurrently and joined — the commit phase
// costs the slowest participant instead of the sum — but the coordinator's
// own persist deliberately stays LAST, exactly as in the serial protocol:
// a remote refusal then still finds the local replica unconsolidated.
//
// Refusal outcomes are reported honestly. If NO remote site consolidated
// (the common coordinator-plus-one-participant deployment, or an
// all-refuse round) the abort rolls everything back cleanly. If the
// concurrent round left some sites consolidated and some refusing, no
// clean cancellation exists — a consolidated participant has already
// persisted and released its locks — so the transaction fails everywhere
// (Algorithm 6, l. 5–10), rather than pretending the divergence away.
func (s *Site) commitTransaction(ct *coordTxn) bool {
	id := ct.t.ID
	remote := ct.remoteSites(s.id)
	// A read-only transaction has no persistent effects anywhere: its
	// consolidation is pure lock release, so it needs no decision record,
	// and a participant that died holding its read locks released them with
	// its life — a failed remote ack is vacuous, not a failure. The same
	// tolerance applies per participant in a mixed transaction: a site that
	// only served reads (no update targets a document it replicates) has
	// nothing to consolidate, so its death must not fail a commit whose
	// writes all reached live replicas. writeSites is computed lazily — it
	// is only consulted when a peer connection tore down mid-commit, and
	// the healthy hot path must not pay its catalog lookups per commit.
	readOnly := true
	for i := range ct.t.Ops {
		if ct.t.Ops[i].Kind != txn.OpQuery {
			readOnly = false
			break
		}
	}
	writeSites := sync.OnceValue(func() map[int]bool {
		out := make(map[int]bool)
		for i := range ct.t.Ops {
			if ct.t.Ops[i].Kind == txn.OpQuery {
				continue
			}
			for _, site := range s.cfg.Catalog.Sites(ct.t.Ops[i].Doc) {
				out[site] = true
			}
		}
		return out
	})
	if hooks := s.cfg.Hooks; hooks != nil && hooks.BeforeDecision != nil {
		hooks.BeforeDecision(id)
	}
	// Commit decision record, durable BEFORE any participant may
	// consolidate: the presumed-abort rule ("no decision record at the
	// coordinator means abort") is only sound under that order. A site
	// without a journal keeps the pre-recovery semantics (participants fall
	// back to each other when this coordinator crashes). With no remote
	// participants there is nobody the record could ever answer — and an
	// in-doubt local intent proves the commit by itself — so the local-only
	// commit path skips the extra fsync.
	if s.cfg.Journal != nil && !readOnly && len(remote) > 0 {
		dsp := s.m.reg.Span()
		if err := s.cfg.Journal.LogDecision(id.String()); err != nil {
			// The decision cannot be made durable (journal failure, or the
			// site is dying): do not commit anybody.
			s.abortTransaction(ct)
			return false
		}
		dsp.Done(s.m.decisionWrite)
		ct.trace.add("2pc-decision-write", "", 0, dsp.Elapsed())
	}
	if hooks := s.cfg.Hooks; hooks != nil && hooks.AfterDecision != nil {
		hooks.AfterDecision(id)
	}
	var oks []bool
	allOK := true
	var ackMu sync.Mutex
	vacuous := make(map[int]bool) // dead read-only participants: ok but consolidated nothing
	maybeConsolidated := false    // a write participant's ack was lost with its connection
	if len(remote) > 0 {
		fsp := s.m.reg.Span()
		oks, allOK = fanOut(remote, func(site int) bool {
			resp, err := s.send(context.Background(), site, transport.CommitReq{Txn: id})
			if err != nil && errors.Is(err, transport.ErrPeerClosed) {
				ackMu.Lock()
				defer ackMu.Unlock()
				if !writeSites()[site] {
					// The participant held only read locks for this
					// transaction and is gone — the locks died with it;
					// nothing to consolidate there. Counts as ok for the
					// join but never as a consolidation.
					vacuous[site] = true
					return true
				}
				// A write participant whose connection tore down
				// mid-exchange: ErrPeerClosed cannot distinguish "never
				// delivered" from "processed, ack lost", and the
				// participant may hold a durable consolidation. The commit
				// must NOT be rolled back on that uncertainty (a clean
				// abort would diverge from the maybe-consolidated replica
				// and void the decision record that reconciles it).
				maybeConsolidated = true
				return false
			}
			ack, _ := resp.(transport.Ack)
			if err == nil && !ack.OK && ack.Consolidated {
				// The participant applied the transaction past its point of
				// no return (e.g. a quorum shortfall after the local commit)
				// and refused only the outcome: no clean abort exists.
				ackMu.Lock()
				maybeConsolidated = true
				ackMu.Unlock()
			}
			return err == nil && ack.OK
		})
		fsp.Done(s.m.commitFanout)
		ct.trace.add("2pc-commit-fanout", "", 0, fsp.Elapsed())
	}
	// Algorithm 5, l. 10–11: persist locally and release the locks.
	if allOK {
		localErr := s.commitLocal(id)
		if localErr == nil {
			if s.cfg.Journal != nil && !readOnly {
				// A transaction that persisted nothing at this site has no local
				// commit record coming; seal the decision so it does not linger
				// as unresolved across restarts.
				_ = s.cfg.Journal.SealDecision(id.String())
			}
			s.noteWrites(ct)
			return true
		}
		if errors.Is(localErr, errQuorumShort) {
			// The local consolidation itself is done — persisted, locks
			// released — only the replication quorum fell short.
			maybeConsolidated = true
		}
	}
	// Algorithm 5, l. 5–7: commit rejected. A vacuous ok (dead read-only
	// participant) is not a consolidation; a lost ack from a write
	// participant must be presumed one.
	anyConsolidated := maybeConsolidated
	for i, ok := range oks {
		if ok && !vacuous[remote[i]] {
			anyConsolidated = true
		}
	}
	if anyConsolidated {
		// Some participant holds the consolidated state: the decision record
		// stays, truthfully — recovery reconciles against the survivors.
		s.failTransaction(ct)
	} else {
		// Nobody consolidated: roll back cleanly and void the decision so
		// the undelivered commit cannot resurface at a recovering
		// participant.
		s.abortTransaction(ct)
		if s.cfg.Journal != nil {
			_ = s.cfg.Journal.VoidDecision(id.String())
		}
	}
	return false
}

// abortTransaction is Algorithm 6: ask every involved site to cancel; if a
// site cannot, escalate to failure everywhere. Returns true if the abort
// completed cleanly (false means the transaction failed). Abort must run to
// completion even when triggered by a cancelled client context — it is what
// releases the locks — so its messages are sent detached. The remote
// cancellations are independent undo-and-release work and are issued
// concurrently; the local release deliberately comes LAST. Aborts dominate
// under deadlock churn, and releasing the coordinator's locks first hands
// the freed resources to the local waiters in lock-step with every other
// victim — a phase-locked storm where retrying victims perpetually rebuild
// the cycle and starve the old transactions the victim rule protects.
// Remote-first staggers the wake-ups exactly as the serial protocol did,
// which is what lets the oldest waiter slip in and make progress.
func (s *Site) abortTransaction(ct *coordTxn) bool {
	id := ct.t.ID
	remote := ct.remoteSites(s.id)
	ok := true
	if len(remote) > 0 {
		_, ok = fanOut(remote, func(site int) bool {
			resp, err := s.send(context.Background(), site, transport.AbortReq{Txn: id})
			ack, _ := resp.(transport.Ack)
			return err == nil && ack.OK
		})
	}
	if !ok {
		// Algorithm 6, l. 5–10: cancellation impossible somewhere — the
		// transaction fails everywhere.
		s.failTransaction(ct)
		return false
	}
	_ = s.abortLocal(id) // local cancellation cannot refuse
	return true
}

// failTransaction broadcasts failure (Algorithm 6, l. 6–9) to the remote
// sites concurrently, then marks the failure locally — the same
// remote-first release order as abort, for the same liveness reason.
func (s *Site) failTransaction(ct *coordTxn) {
	id := ct.t.ID
	if remote := ct.remoteSites(s.id); len(remote) > 0 {
		_, _ = fanOut(remote, func(site int) bool {
			_, _ = s.send(context.Background(), site, transport.FailReq{Txn: id})
			return true
		})
	}
	s.failLocal(id)
}
