package sched

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/txn"
)

// Submit runs a client transaction to completion at this site, which acts
// as its coordinator (Algorithm 1). The call blocks until the transaction
// commits, aborts or fails, and returns the outcome. An error is returned
// only for malformed submissions.
func (s *Site) Submit(ops []txn.Operation) (*Result, error) {
	if len(ops) == 0 {
		return nil, fmt.Errorf("sched: empty transaction")
	}
	for i := range ops {
		if ops[i].Doc == "" {
			return nil, fmt.Errorf("sched: operation %d has no document", i)
		}
		if ops[i].Kind == txn.OpUpdate {
			if ops[i].Update == nil {
				return nil, fmt.Errorf("sched: operation %d is an update without a body", i)
			}
			if err := ops[i].Update.Validate(); err != nil {
				return nil, fmt.Errorf("sched: operation %d: %w", i, err)
			}
		}
	}

	ct := s.beginTxn(ops)
	id := ct.t.ID

	reason, deadlock := s.runOps(ct)
	var state txn.State
	switch {
	case reason == "":
		if s.commitTransaction(ct) {
			state = txn.Committed
		} else {
			state = txn.Failed
			reason = "commit rejected at a participant site"
		}
	case reason == reasonFailed:
		s.failTransaction(ct)
		state = txn.Failed
	default:
		if s.abortTransaction(ct) {
			state = txn.Aborted
		} else {
			state = txn.Failed
		}
	}

	s.mu.Lock()
	switch state {
	case txn.Committed:
		s.stats.TxnsCommitted++
	case txn.Aborted:
		s.stats.TxnsAborted++
		if deadlock {
			s.stats.DeadlockAborts++
		}
	case txn.Failed:
		s.stats.TxnsFailed++
	}
	ct.t.State = state
	delete(s.coord, id)
	s.mu.Unlock()
	if s.cfg.History != nil {
		s.cfg.History.OnFinished(id, state == txn.Committed)
	}

	return &Result{Txn: id, State: state, Results: ct.results, Reason: reason}, nil
}

// reasonFailed is the sentinel reason for unrecoverable operation failures.
const reasonFailed = "operation failed"

func (s *Site) beginTxn(ops []txn.Operation) *coordTxn {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	id := txn.ID{Site: s.id, Seq: s.seq}
	ts := s.clock.Tick()
	ct := &coordTxn{
		t:       txn.New(id, ts, ops),
		wake:    make(chan struct{}, 1),
		abortCh: make(chan string, 1),
		sites:   make(map[int]bool),
		results: make([][]string, len(ops)),
	}
	s.coord[id] = ct
	s.coordOf[id] = s.id
	return ct
}

// runOps drives the operations of a transaction in order (Algorithm 1's
// inner loop). It returns an empty reason on success, or the abort/fail
// reason, plus whether the abort was due to a deadlock.
func (s *Site) runOps(ct *coordTxn) (reason string, deadlock bool) {
	for i := range ct.t.Ops {
		if i > 0 && s.cfg.OpDelay > 0 {
			select {
			case <-time.After(s.cfg.OpDelay):
			case <-s.stopCh:
				return "site stopping", false
			}
		}
		if r, dl := s.execOp(ct, i); r != "" {
			return r, dl
		}
	}
	return "", false
}

// execOp executes one operation at every site holding its document,
// retrying with wait mode on lock conflicts (Algorithm 1, l. 5–23).
func (s *Site) execOp(ct *coordTxn, opIdx int) (reason string, deadlock bool) {
	op := ct.t.Ops[opIdx]
	id, ts := ct.t.ID, ct.t.TS
	for {
		// A victim signal can arrive at any point while the operation
		// retries; honour it before burning another attempt.
		select {
		case r := <-ct.abortCh:
			return "deadlock: " + r, true
		default:
		}

		sites := s.cfg.Catalog.Sites(op.Doc)
		if len(sites) == 0 {
			return reasonFailed, false
		}

		var res localResult
		if len(sites) == 1 && sites[0] == s.id {
			// Algorithm 1, l. 5–10: the operation involves only the
			// coordinator's site.
			res = s.processOperation(id, ts, s.id, opIdx, op)
			ct.sites[s.id] = true
		} else {
			// Algorithm 1, l. 12–22: ship the operation to every
			// participant holding the document (the coordinator included,
			// if it holds a copy) and wait for all responses.
			res = s.execRemote(ct, opIdx, op, sites)
		}

		switch {
		case res.failed:
			return reasonFailed, false
		case res.deadlock:
			return "deadlock detected while locking", true
		case res.executed:
			if op.Kind == txn.OpQuery {
				ct.results[opIdx] = res.results
			}
			ct.t.Ops[opIdx].Executed = true
			return "", false
		}

		// Not acquired: wait mode (Algorithm 1, l. 9 / l. 17) until a
		// wake-up, a victim signal, or the retry safety net.
		timer := time.NewTimer(s.cfg.RetryInterval)
		select {
		case <-ct.wake:
			timer.Stop()
		case r := <-ct.abortCh:
			timer.Stop()
			return "deadlock: " + r, true
		case <-timer.C:
		case <-s.stopCh:
			timer.Stop()
			return "site stopping", false
		}
	}
}

// execRemote fans one operation out to all sites holding the document and
// merges the participant statuses (Algorithm 1, l. 12–22).
func (s *Site) execRemote(ct *coordTxn, opIdx int, op txn.Operation, sites []int) localResult {
	id, ts := ct.t.ID, ct.t.TS
	type siteResult struct {
		site int
		res  localResult
		err  error
	}
	results := make([]siteResult, len(sites))
	var wg sync.WaitGroup
	for i, site := range sites {
		ct.sites[site] = true
		wg.Add(1)
		go func(i, site int) {
			defer wg.Done()
			if site == s.id {
				results[i] = siteResult{site: site, res: s.processOperation(id, ts, s.id, opIdx, op)}
				return
			}
			s.mu.Lock()
			s.stats.RemoteOpsSent++
			s.mu.Unlock()
			resp, err := s.send(site, transport.ExecOpReq{
				Txn: id, TS: ts, Coordinator: s.id, OpIdx: opIdx, Op: op,
			})
			if err != nil {
				results[i] = siteResult{site: site, err: err}
				return
			}
			r, ok := resp.(transport.ExecOpResp)
			if !ok {
				results[i] = siteResult{site: site, err: fmt.Errorf("unexpected response %T", resp)}
				return
			}
			results[i] = siteResult{site: site, res: localResult{
				executed: r.Executed,
				acquired: r.AcquireLocking,
				deadlock: r.Deadlock,
				failed:   r.Failed,
				err:      r.Error,
				results:  r.Results,
			}}
		}(i, site)
	}
	wg.Wait()

	merged := localResult{acquired: true, executed: true}
	anyExecuted := false
	for _, sr := range results {
		if sr.err != nil {
			// Communication failure: the operation fails, the transaction
			// will be aborted (and may itself fail).
			merged.failed = true
			merged.err = sr.err.Error()
			continue
		}
		if sr.res.failed {
			merged.failed = true
			merged.err = sr.res.err
		}
		if sr.res.deadlock {
			merged.deadlock = true
		}
		if !sr.res.acquired {
			merged.acquired = false
		}
		if sr.res.executed {
			anyExecuted = true
			if op.Kind == txn.OpQuery && merged.results == nil {
				merged.results = sr.res.results
			}
		}
	}
	merged.executed = merged.acquired && !merged.failed && !merged.deadlock && anyExecuted

	// Algorithm 1, l. 15–17: if the operation did not acquire locks at some
	// participant, undo it wherever it did execute, then wait.
	if !merged.failed && !merged.deadlock && !merged.acquired {
		for _, sr := range results {
			if sr.err == nil && sr.res.executed {
				s.undoOpEverywhere(ct.t.ID, opIdx, sr.site)
			}
		}
		// Locks acquired at sites that granted but did not need undo (e.g.
		// a query that executed) are released by undoOpEverywhere too; for
		// sites that merely granted locks without executing there is
		// nothing to release because participant lock acquisition and
		// execution are atomic under the site mutex.
	}
	return merged
}

// undoOpEverywhere undoes one operation at one site (local or remote).
func (s *Site) undoOpEverywhere(id txn.ID, opIdx int, site int) {
	if site == s.id {
		s.undoOpLocal(id, opIdx)
		return
	}
	_, _ = s.send(site, transport.UndoOpReq{Txn: id, OpIdx: opIdx})
}

// commitTransaction is Algorithm 5: ask every involved site to consolidate;
// if any refuses, abort. Returns true if the commit completed.
func (s *Site) commitTransaction(ct *coordTxn) bool {
	id := ct.t.ID
	for site := range ct.sites {
		if site == s.id {
			continue
		}
		resp, err := s.send(site, transport.CommitReq{Txn: id})
		ack, _ := resp.(transport.Ack)
		if err != nil || !ack.OK {
			// Algorithm 5, l. 5–7: commit rejected — abort the transaction.
			s.abortTransaction(ct)
			return false
		}
	}
	// Algorithm 5, l. 10–11: persist locally and release the locks.
	if err := s.commitLocal(id); err != nil {
		s.abortTransaction(ct)
		return false
	}
	return true
}

// abortTransaction is Algorithm 6: ask every involved site to cancel; if a
// site cannot, escalate to failure everywhere. Returns true if the abort
// completed cleanly (false means the transaction failed).
func (s *Site) abortTransaction(ct *coordTxn) bool {
	id := ct.t.ID
	for site := range ct.sites {
		if site == s.id {
			continue
		}
		resp, err := s.send(site, transport.AbortReq{Txn: id})
		ack, _ := resp.(transport.Ack)
		if err != nil || !ack.OK {
			// Algorithm 6, l. 5–10: cancellation impossible somewhere —
			// the transaction fails everywhere.
			s.failTransaction(ct)
			return false
		}
	}
	_ = s.abortLocal(id)
	return true
}

// failTransaction broadcasts failure (Algorithm 6, l. 6–9).
func (s *Site) failTransaction(ct *coordTxn) {
	id := ct.t.ID
	for site := range ct.sites {
		if site == s.id {
			continue
		}
		_, _ = s.send(site, transport.FailReq{Txn: id})
	}
	s.failLocal(id)
}
