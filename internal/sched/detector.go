package sched

import (
	"sync"
	"time"

	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wfg"
)

// detectorLoop runs the periodic distributed deadlock check: "DTX has a
// process in the scheduler that periodically recovers the wait-for graphs
// from all the sites and checks for deadlocks".
func (s *Site) detectorLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.DeadlockInterval)
	defer ticker.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
			s.CheckDeadlocks()
		}
	}
}

// CheckDeadlocks is Algorithm 4 (process_deadlock_detection): union the
// wait-for graphs of all sites; if the union has a circle, abort the most
// recently started transaction in it. Returns true if a deadlock was found
// and a victim signalled.
//
// The per-site WFG snapshots are pulled concurrently and bound to the
// site's lifecycle context, so one slow peer neither stretches the sweep to
// the sum of the round trips nor leaks a blocked poll past Stop. Because
// victim selection is deterministic (newest timestamp, ties broken by
// transaction ID), several sites running the check concurrently converge
// on the same victim; duplicate victim signals are idempotent.
func (s *Site) CheckDeadlocks() bool {
	sp := s.m.reg.Span()
	defer sp.Done(s.m.detectorCycle)
	union := wfg.New()
	// Collect the local graphs first (Algorithm 4 walks all sites; the site
	// running the check contributes its own lock managers' graphs without
	// messaging).
	union.Union(s.localEdges())

	remote := make([][]wfg.Edge, len(s.cfg.Sites))
	var wg sync.WaitGroup
	for i, site := range s.cfg.Sites {
		if site == s.id || !s.liveness.Alive(site) {
			// A down or suspected site contributes no edges — its lock
			// managers are gone with it; wasting a poll on it only slows
			// the sweep.
			continue
		}
		wg.Add(1)
		go func(i, site int) {
			defer wg.Done()
			resp, err := s.send(s.ctx, site, transport.WFGReq{})
			if err != nil {
				// An unreachable site contributes no edges this round; its
				// cycles will be found when it answers again.
				return
			}
			if g, ok := resp.(transport.WFGResp); ok {
				remote[i] = g.Edges
			}
		}(i, site)
	}
	wg.Wait()
	for _, edges := range remote {
		if edges == nil {
			continue
		}
		union.Union(edges)
		// Check after each union so the first circle found is handled
		// immediately (Algorithm 4 checks inside the loop).
		if s.resolveCycle(union) {
			return true
		}
	}
	return s.resolveCycle(union)
}

// resolveCycle looks for a circle in the union graph and, if found, directs
// the victim's coordinator to abort it.
func (s *Site) resolveCycle(union *wfg.Graph) bool {
	cycle := union.FindCycle()
	if cycle == nil {
		return false
	}
	var victim txn.ID
	if s.cfg.VictimOldest {
		victim = union.OldestInCycle(cycle)
	} else {
		victim = union.NewestInCycle(cycle)
	}
	s.m.distDeadlocks.Inc()
	s.signalVictim(victim, "distributed deadlock victim")
	return true
}

// signalVictim routes the abort order to the victim's coordinator — the
// site embedded in the transaction ID.
func (s *Site) signalVictim(victim txn.ID, reason string) {
	if victim == txn.Zero {
		return
	}
	if victim.Site == s.id {
		s.signalAbort(victim, reason)
		return
	}
	_, _ = s.send(s.ctx, victim.Site, transport.VictimReq{Txn: victim, Reason: reason})
}
