package sched

import (
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// driveCrossedInserts launches two transactions whose second operations
// block on each other's first-operation locks across two documents,
// creating a two-site distributed deadlock. Returns their results.
func driveCrossedInserts(t *testing.T, s1, s2 *Site) (*Result, *Result) {
	t.Helper()
	var wg sync.WaitGroup
	var res1, res2 *Result
	wg.Add(2)
	go func() {
		defer wg.Done()
		var err error
		res1, err = s1.Submit([]txn.Operation{
			txn.NewQuery("d1", "//person"),
			txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Insert, Target: "/products",
				Pos: xmltree.Into, New: productSpec("13", "Mouse", "10.30")}),
		})
		if err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond)
		var err error
		res2, err = s2.Submit([]txn.Operation{
			txn.NewQuery("d2", "//product"),
			txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
				Pos: xmltree.Into, New: personSpec("22", "Patricia")}),
		})
		if err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()
	return res1, res2
}

func TestDetectorOldestVictim(t *testing.T) {
	// With VictimOldest, the cycle of §2.4 kills t1 instead of t2.
	sites, _ := newCluster(t, 2, func(c *Config) {
		c.OpDelay = 40 * time.Millisecond
		c.VictimOldest = true
		c.DeadlockInterval = 8 * time.Millisecond
	})
	s1, s2 := sites[0], sites[1]
	addDoc(t, s1, "d1", peopleXML)
	addDoc(t, s2, "d1", peopleXML)
	addDoc(t, s2, "d2", productsXML)

	res1, res2 := driveCrossedInserts(t, s1, s2)
	if res1.State != txn.Aborted {
		t.Fatalf("t1 = %v (%s), want aborted under oldest-victim", res1.State, res1.Reason)
	}
	if res2.State != txn.Committed {
		t.Fatalf("t2 = %v (%s), want committed under oldest-victim", res2.State, res2.Reason)
	}
}

func TestDetectorBackgroundResolves(t *testing.T) {
	// Same tangle, background detector only (no manual CheckDeadlocks):
	// both transactions must terminate, newest aborted.
	sites, _ := newCluster(t, 2, func(c *Config) {
		c.OpDelay = 40 * time.Millisecond
		c.DeadlockInterval = 8 * time.Millisecond
	})
	s1, s2 := sites[0], sites[1]
	addDoc(t, s1, "d1", peopleXML)
	addDoc(t, s2, "d1", peopleXML)
	addDoc(t, s2, "d2", productsXML)

	res1, res2 := driveCrossedInserts(t, s1, s2)
	if res1.State != txn.Committed || res2.State != txn.Aborted {
		t.Fatalf("t1=%v t2=%v, want committed/aborted", res1.State, res2.State)
	}
	// At least one site recorded the distributed detection.
	dist := sites[0].Stats().DistDeadlocks + sites[1].Stats().DistDeadlocks
	if dist == 0 {
		t.Fatal("no distributed deadlock recorded")
	}
}

func TestCheckDeadlocksNoFalsePositive(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	addDoc(t, sites[0], "d1", peopleXML)
	if sites[0].CheckDeadlocks() {
		t.Fatal("deadlock reported on idle cluster")
	}
	// A single waiting transaction (no cycle) must not be killed.
	done := make(chan *Result, 1)
	go func() {
		r, _ := sites[0].Submit([]txn.Operation{
			txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change, Target: "//name", Value: "X"}),
			txn.NewQuery("d1", "//person"),
		})
		done <- r
	}()
	time.Sleep(10 * time.Millisecond)
	if sites[0].CheckDeadlocks() {
		t.Fatal("deadlock reported for a plain wait")
	}
	if r := <-done; r.State != txn.Committed {
		t.Fatalf("writer = %v", r.State)
	}
}

func TestVictimSignalIdempotent(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	// Signalling an unknown transaction is a no-op.
	s.signalAbort(txn.ID{Site: 0, Seq: 999}, "test")
	s.signalWake(txn.ID{Site: 0, Seq: 999})
	s.signalVictim(txn.Zero, "ignored")
	// Remote victim routing: signalling a transaction of another site sends
	// a message; with one site it is unreachable, which must not panic.
	s.signalVictim(txn.ID{Site: 7, Seq: 1}, "remote")
}
