// Cross-protocol equivalence and adaptive scenario tests. These live in the
// external test package so they can drive the full harness (which imports
// sched) against every lock protocol, including the adaptive scheduler.
package sched_test

import (
	"context"
	"math"
	"testing"
	"time"

	"repro/internal/harness"
)

// equivalenceProtocols is the table every cross-protocol test iterates: the
// three static rungs of the granularity ladder plus the run-time adaptive
// scheduler. A new lock protocol must be added here (see CONTRIBUTING.md).
var equivalenceProtocols = []string{"xdgl", "node2pl", "doclock", "adaptive"}

// TestCrossProtocolEquivalence runs the same seeded serial workload under
// every protocol and requires byte-identical serialized XML on every replica:
// with one client the submission order is deterministic, so any divergence
// means a protocol (or a mid-run protocol switch) corrupted scheduling.
func TestCrossProtocolEquivalence(t *testing.T) {
	base := harness.Params{
		Sites: 3, Clients: 1, TxPerClient: 10, OpsPerTx: 4,
		UpdateTxPct: 70, UpdateOpPct: 50,
		BaseBytes: 24 << 10, Seed: 42,
		// A short window so the adaptive run has a real chance to switch
		// mid-workload — equivalence must hold across switches too.
		AdaptiveWindow: 5 * time.Millisecond,
	}
	digests := make(map[string]string)
	for _, proto := range equivalenceProtocols {
		t.Run(proto, func(t *testing.T) {
			p := base
			p.Protocol = proto
			cluster, err := harness.BuildCluster(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Stop()
			res := harness.RunOn(context.Background(), cluster, p)
			// Serial workload: no lock conflicts, so everything commits.
			if res.Committed != res.Total {
				t.Fatalf("committed %d of %d (aborted %d, failed %d)",
					res.Committed, res.Total, res.Aborted, res.Failed)
			}
			digest, err := harness.FinalStateDigest(cluster)
			if err != nil {
				t.Fatal(err)
			}
			digests[proto] = digest
		})
	}
	want := digests[equivalenceProtocols[0]]
	for proto, digest := range digests {
		if digest == "" {
			t.Fatalf("%s: subtest did not produce a digest", proto)
		}
		if digest != want {
			t.Errorf("final state under %s diverges from %s:\n  %s\n  %s",
				proto, equivalenceProtocols[0], digest, want)
		}
	}
}

// TestCrossProtocolConvergence is the concurrent companion: with many
// clients the commit order is protocol-dependent, so final states may differ
// ACROSS protocols — but within one run every replica must still converge to
// identical XML, under every protocol including adaptive (whose per-document
// switches are per-replica and unsynchronized).
func TestCrossProtocolConvergence(t *testing.T) {
	for _, proto := range equivalenceProtocols {
		t.Run(proto, func(t *testing.T) {
			p := harness.Params{
				Sites: 3, Clients: 8, TxPerClient: 5, OpsPerTx: 4,
				UpdateTxPct: 60, UpdateOpPct: 50,
				BaseBytes: 24 << 10, Seed: 77,
				Protocol:             proto,
				AdaptiveWindow:       5 * time.Millisecond,
				DeadlockInterval:     5 * time.Millisecond,
				CheckSerializability: true,
			}
			res, err := harness.Run(p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Committed == 0 {
				t.Fatal("nothing committed")
			}
		})
	}
}

// TestCrossProtocolConvergenceDigest repeats the concurrent run but keeps
// the cluster handle so the replica-divergence check inside FinalStateDigest
// runs against the live sites.
func TestCrossProtocolConvergenceDigest(t *testing.T) {
	for _, proto := range equivalenceProtocols {
		t.Run(proto, func(t *testing.T) {
			p := harness.Params{
				Sites: 3, Clients: 8, TxPerClient: 5, OpsPerTx: 4,
				UpdateTxPct: 60, UpdateOpPct: 50,
				BaseBytes: 24 << 10, Seed: 99,
				Protocol:         proto,
				AdaptiveWindow:   5 * time.Millisecond,
				DeadlockInterval: 5 * time.Millisecond,
			}
			cluster, err := harness.BuildCluster(p, nil)
			if err != nil {
				t.Fatal(err)
			}
			defer cluster.Stop()
			res := harness.RunOn(context.Background(), cluster, p)
			if res.Committed == 0 {
				t.Fatal("nothing committed")
			}
			if _, err := harness.FinalStateDigest(cluster); err != nil {
				t.Fatalf("replicas diverged under %s: %v", proto, err)
			}
		})
	}
}

// TestAdaptiveSwitchesUnderSkew is the headline scenario: a hot-key skewed
// mixed OLTP/analytics workload that a static protocol choice serves badly
// from one end of the ladder or the other. The adaptive scheduler must (a)
// actually switch at least once, and (b) not lose to the worse static
// protocol on committed work.
func TestAdaptiveSwitchesUnderSkew(t *testing.T) {
	if testing.Short() {
		t.Skip("scenario run takes ~1s per protocol")
	}
	// Long enough that the adaptive run spends most of its wall clock AFTER
	// its switches (the hysteresis dwell pins the first ~100ms), so the
	// comparison measures the adapted regime, not the ramp.
	base := harness.Params{
		Sites: 2, Clients: 10, TxPerClient: 40, OpsPerTx: 4,
		UpdateTxPct: 80, UpdateOpPct: 60,
		HotKeyZipf: 2.5, AnalyticsPct: 30,
		BaseBytes: 16 << 10, Seed: 7,
		DeadlockInterval: 5 * time.Millisecond,
		AdaptiveWindow:   10 * time.Millisecond,
	}
	run := func(proto string) *harness.Result {
		p := base
		p.Protocol = proto
		res, err := harness.Run(p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Committed == 0 {
			t.Fatalf("%s: nothing committed", proto)
		}
		t.Logf("%s: %v", proto, res)
		return res
	}
	adaptive := run("adaptive")
	xdgl := run("xdgl")
	doclock := run("doclock")

	if adaptive.ProtocolSwitches == 0 {
		t.Error("adaptive run under skew never switched protocols")
	}
	// The adaptive run must at least match the losing static choice. The
	// comparison uses committed transactions, not wall-clock throughput:
	// all three runs submit the identical transaction set, so committed
	// count measures how much of it the protocol saved from deadlock
	// aborts — while tx/s is dominated by host CPU contention when the
	// suite runs alongside other -race tests. The 0.85 factor absorbs
	// scheduler-noise variance in these short CI runs — the real gap
	// between the static extremes is far larger than 15%.
	worst := math.Min(float64(xdgl.Committed), float64(doclock.Committed))
	if float64(adaptive.Committed) < 0.85*worst {
		t.Errorf("adaptive committed %d of %d, lost to the worse static protocol (%.0f)",
			adaptive.Committed, adaptive.Total, worst)
	}
}
