package sched

import (
	"path/filepath"
	"testing"

	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// TestCommitJournaling: a committed update produces an intent + commit pair
// in the journal, an aborted one produces nothing, and recovery over the
// resulting journal reports no in-doubt transactions.
func TestCommitJournaling(t *testing.T) {
	dir := t.TempDir()
	journal, err := store.OpenJournal(filepath.Join(dir, "commit.log"))
	if err != nil {
		t.Fatal(err)
	}
	sites, _ := newCluster(t, 1, func(c *Config) { c.Journal = journal })
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	res, err := s.Submit([]txn.Operation{
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Insert, Target: "/products",
			Pos: xmltree.Into, New: productSpec("13", "Mouse", "10.30")}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v", res.State)
	}

	// A failed transaction (missing doc) must not journal anything.
	if _, err := s.Submit([]txn.Operation{txn.NewQuery("ghost", "/x")}); err != nil {
		t.Fatal(err)
	}
	// A read-only transaction persists nothing, so no journal records.
	if _, err := s.Submit([]txn.Operation{txn.NewQuery("d2", "//product")}); err != nil {
		t.Fatal(err)
	}
	// The persist pipeline writes commit records asynchronously; drain it
	// before closing the journal.
	s.Sync()
	journal.Close()

	inDoubt, err := store.Recover(journal.Path())
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("in doubt after clean run: %+v", inDoubt)
	}
}

// TestRecoveryDetectsTornCommit simulates a crash between the intent record
// and the commit record: recovery flags the transaction.
func TestRecoveryDetectsTornCommit(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "commit.log")
	journal, err := store.OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Write the intent by hand, as if the site crashed mid-persist.
	if err := journal.LogIntent("t0.7", []string{"d2"}); err != nil {
		t.Fatal(err)
	}
	journal.Close()

	inDoubt, err := store.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 || inDoubt[0].Txn != "t0.7" || inDoubt[0].Docs[0] != "d2" {
		t.Fatalf("in doubt = %+v", inDoubt)
	}

	// A restarted site over the same store can reload its documents and
	// resume service while the in-doubt set is resolved out of band.
	st := store.NewMemStore()
	doc, _ := xmltree.ParseString("d2", productsXML)
	if err := st.Save(doc); err != nil {
		t.Fatal(err)
	}
	sites, _ := newCluster(t, 1, func(c *Config) { c.Store = st })
	if err := sites[0].LoadDocument("d2"); err != nil {
		t.Fatal(err)
	}
	res, err := sites[0].Submit([]txn.Operation{txn.NewQuery("d2", "//product")})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("restarted site not serving: %v %v", err, res)
	}
}

// TestBootstrap: a restarted site recovers every stored document and
// reports journal in-doubt transactions.
func TestBootstrap(t *testing.T) {
	dir := t.TempDir()
	st, err := store.NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"d1", "d2"} {
		doc, _ := xmltree.ParseString(name, peopleXML)
		if err := st.Save(doc); err != nil {
			t.Fatal(err)
		}
	}
	journal, err := store.OpenJournal(filepath.Join(dir, "commit.log"))
	if err != nil {
		t.Fatal(err)
	}
	if err := journal.LogIntent("t0.3", []string{"d1"}); err != nil {
		t.Fatal(err)
	}
	journal.Close()
	journal2, err := store.OpenJournal(filepath.Join(dir, "commit.log"))
	if err != nil {
		t.Fatal(err)
	}
	sites, _ := newCluster(t, 1, func(c *Config) {
		c.Store = st
		c.Journal = journal2
	})
	inDoubt, err := sites[0].Bootstrap()
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 || inDoubt[0].Txn != "t0.3" {
		t.Fatalf("in doubt = %+v", inDoubt)
	}
	if got := len(sites[0].Documents()); got != 2 {
		t.Fatalf("recovered %d documents", got)
	}
	res, err := sites[0].Submit([]txn.Operation{txn.NewQuery("d2", "//person")})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("recovered site not serving: %v %+v", err, res)
	}
}
