package sched

import (
	"context"
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/internal/txn"
)

// PeerState is a site's belief about one peer. The view is optimistic: every
// peer starts Up, a transport-level ErrPeerClosed (the peer crashed, closed,
// or departed) demotes it to Suspect instead of surfacing as a hard error
// on every later operation, and only repeated heartbeat misses confirm Down.
// Any successful exchange with the peer — a heartbeat or regular scheduler
// traffic — restores Up.
type PeerState int

// Peer states.
const (
	PeerUp PeerState = iota
	PeerSuspect
	PeerDown
)

func (p PeerState) String() string {
	switch p {
	case PeerUp:
		return "up"
	case PeerSuspect:
		return "suspect"
	case PeerDown:
		return "down"
	default:
		return "unknown"
	}
}

// liveness is the per-site failure detector state: the peer map fed by
// heartbeats and by outcome observation on every transport exchange.
// onDown fires once per Up/Suspect→Down transition, outside the mutex.
// With failure detection disabled (no heartbeat configured) the view is
// inert: every peer stays believed Up — a one-off ErrPeerClosed must not
// demote a peer that nothing will ever probe back to Up.
type liveness struct {
	enabled bool
	mu      sync.Mutex
	peers   map[int]*peerInfo
	onDown  func(site int)
}

type peerInfo struct {
	state  PeerState
	misses int
}

func newLiveness(enabled bool, onDown func(site int)) *liveness {
	return &liveness{enabled: enabled, peers: make(map[int]*peerInfo), onDown: onDown}
}

func (l *liveness) peer(site int) *peerInfo {
	p := l.peers[site]
	if p == nil {
		p = &peerInfo{state: PeerUp}
		l.peers[site] = p
	}
	return p
}

// Alive implements replica.Liveness: only Up peers serve operations. The
// local site is always alive to itself.
func (l *liveness) Alive(site int) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	p := l.peers[site]
	return p == nil || p.state == PeerUp
}

// state returns the current belief about a peer.
func (l *liveness) state(site int) PeerState {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p := l.peers[site]; p != nil {
		return p.state
	}
	return PeerUp
}

// observeUp records a successful exchange with the peer: whatever the
// suspicion was, the peer answered, so it is Up.
func (l *liveness) observeUp(site int) {
	l.mu.Lock()
	p := l.peer(site)
	p.state = PeerUp
	p.misses = 0
	l.mu.Unlock()
}

// observeClosed promotes a transport ErrPeerClosed into suspicion: the peer
// is not failed-hard, it is routed around until a heartbeat settles it.
func (l *liveness) observeClosed(site int) {
	if !l.enabled {
		return
	}
	l.mu.Lock()
	p := l.peer(site)
	if p.state == PeerUp {
		p.state = PeerSuspect
	}
	l.mu.Unlock()
}

// observeMiss records one failed (or not-ready) heartbeat and escalates
// Suspect to Down after the configured number of consecutive misses.
func (l *liveness) observeMiss(site int, maxMisses int) {
	if !l.enabled {
		return
	}
	l.mu.Lock()
	p := l.peer(site)
	p.misses++
	if p.state == PeerUp {
		p.state = PeerSuspect
	}
	transitioned := false
	if p.state == PeerSuspect && p.misses >= maxMisses {
		p.state = PeerDown
		transitioned = true
	}
	onDown := l.onDown
	l.mu.Unlock()
	if transitioned && onDown != nil {
		onDown(site)
	}
}

// snapshot renders the view for status reporting, sorted by site.
func (l *liveness) snapshot() []transport.PeerStatus {
	l.mu.Lock()
	sites := make([]int, 0, len(l.peers))
	for s := range l.peers {
		sites = append(sites, s)
	}
	states := make(map[int]PeerState, len(l.peers))
	for s, p := range l.peers {
		states[s] = p.state
	}
	l.mu.Unlock()
	sort.Ints(sites)
	out := make([]transport.PeerStatus, 0, len(sites))
	for _, s := range sites {
		out = append(out, transport.PeerStatus{Site: s, Status: states[s].String()})
	}
	return out
}

// heartbeatLoop pings every peer each interval and feeds the liveness view —
// the failure-detection half of the recovery subsystem. It is started by
// Attach when Config.HeartbeatInterval > 0. Every sweepRounds ticks it also
// runs the orphan sweep: the Down-edge trigger alone misses a coordinator
// that crashed and was replaced within the detection window (its fresh
// incarnation answers pings before the misses accumulate), which would
// strand its old transactions' locks here forever.
func (s *Site) heartbeatLoop() {
	defer s.wg.Done()
	ticker := time.NewTicker(s.cfg.HeartbeatInterval)
	defer ticker.Stop()
	// One sweep per ~10 heartbeat intervals, at least every second of ticks.
	sweepRounds := 10
	rounds := 0
	for {
		select {
		case <-s.stopCh:
			return
		case <-ticker.C:
		}
		if rounds++; rounds >= sweepRounds {
			rounds = 0
			// Detached, one at a time: the sweep's bounded exchanges can
			// still take seconds against hung peers, and failure detection
			// must not stall behind them.
			if atomic.CompareAndSwapInt32(&s.sweeping, 0, 1) {
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					defer atomic.StoreInt32(&s.sweeping, 0)
					s.sweepOrphans()
				}()
			}
		}
		var wg sync.WaitGroup
		for _, site := range s.cfg.Sites {
			if site == s.id {
				continue
			}
			wg.Add(1)
			go func(site int) {
				defer wg.Done()
				// Bounded at a few intervals, not one: a ping must survive a
				// round trip whose latency approaches the interval (the
				// in-process network charges the synthetic latency twice),
				// or a merely-distant peer reads as permanently down.
				ctx, cancel := context.WithTimeout(s.ctx, 3*s.cfg.HeartbeatInterval)
				resp, err := s.send(ctx, site, transport.PingReq{})
				cancel()
				ack, _ := resp.(transport.Ack)
				if err != nil || !ack.OK {
					s.liveness.observeMiss(site, s.cfg.HeartbeatMisses)
					return
				}
				// send already observed the success; nothing more to do.
			}(site)
		}
		wg.Wait()
	}
}

// abortOrphans cancels every participant-side transaction whose coordinator
// is the given (now Down) site — presumed abort for transactions whose
// coordinator can no longer decide. Before presuming, each transaction's
// outcome is checked against the other live sites: a coordinator that died
// mid commit fan-out may have consolidated the transaction at some
// participant, and that knowledge must win over the presumption, or
// replicas diverge. A participant still consolidating ("active") defers
// the presumption — the transaction is about to commit there, and aborting
// our half would diverge just the same; the retry loop re-resolves until
// the peer settles. It runs detached from the heartbeat loop (it performs
// its own transport exchanges and may wait out an active peer).
func (s *Site) abortOrphans(coordSite int) {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.mu.Lock()
		var orphans []txn.ID
		for id, pt := range s.part {
			if pt.coordinator == coordSite {
				orphans = append(orphans, id)
			}
		}
		s.mu.Unlock()
		for _, id := range orphans {
			s.resolveOrphan(id)
		}
		// Snapshot pins whose coordinator is down are released outright: a
		// read-only transaction has no outcome to resolve — no effects, no
		// locks, nothing to diverge — and its SnapshotReleaseReq died with
		// the coordinator. Releasing frees the pinned versions for GC.
		s.roMu.Lock()
		var roOrphans []txn.ID
		for id, set := range s.roPins {
			if set.coordinator == coordSite {
				roOrphans = append(roOrphans, id)
			}
		}
		s.roMu.Unlock()
		for _, id := range roOrphans {
			s.snapshotRelease(id)
		}
	}()
}

// sweepOrphans resolves participant transactions that have lingered here
// beyond any plausible in-flight window, whatever their coordinator's
// liveness state looks like — the backstop for crashes the Down edge never
// saw. Only definitive answers act: a live coordinator reports its
// long-running transaction active and the sweep leaves it alone; a
// restarted coordinator answers presumed abort for the transactions its
// previous incarnation left behind, releasing their locks.
func (s *Site) sweepOrphans() {
	age := 10 * s.cfg.HeartbeatInterval
	if age < 500*time.Millisecond {
		age = 500 * time.Millisecond
	}
	cutoff := time.Now().Add(-age)
	s.mu.Lock()
	var stale []txn.ID
	for id, pt := range s.part {
		if pt.created.Before(cutoff) {
			stale = append(stale, id)
		}
	}
	s.mu.Unlock()
	for _, id := range stale {
		ctx, cancel := context.WithTimeout(s.ctx, 2*time.Second)
		outcome := s.resolveOutcome(ctx, id)
		cancel()
		switch outcome {
		case transport.OutcomeCommitted:
			_ = s.commitLocal(id)
		case transport.OutcomeAborted:
			_ = s.abortLocal(id)
		}
	}

	// Aged snapshot pin sets get the same backstop: a coordinator that died
	// (or was replaced) without its release reaching this site would pin a
	// version — and block its GC — forever. A coordinator that still reports
	// the transaction active (a genuinely long reader) keeps its pins.
	s.roMu.Lock()
	var roStale []txn.ID
	for id, set := range s.roPins {
		if set.created.Before(cutoff) {
			roStale = append(roStale, id)
		}
	}
	s.roMu.Unlock()
	for _, id := range roStale {
		ctx, cancel := context.WithTimeout(s.ctx, 2*time.Second)
		outcome := s.resolveOutcome(ctx, id)
		cancel()
		if outcome != transport.OutcomeActive {
			s.snapshotRelease(id)
		}
	}
}

// resolveOrphan settles one orphaned participant transaction. "Active" — a
// site (a falsely-suspected live coordinator) still DRIVES the transaction —
// is waited out for as long as it keeps being said: presuming abort against
// a live driver is exactly the divergence the protocol exists to prevent.
// Commit and abort answers apply directly. "Unknown" (nobody reachable
// knows a verdict) presumes abort: releasing the orphan's locks is what
// keeps the surviving replicas readable while the coordinator is down, and
// any participant that consolidated would have answered committed. The
// presumption is heuristic in exactly one corner — a consolidated
// participant that is ALSO unreachable during the poll (a second,
// simultaneous failure) diverges until it restarts through recovery, which
// re-converges it against this site's abort verdict.
func (s *Site) resolveOrphan(id txn.ID) {
	for {
		// Each resolution round is bounded: a partitioned (hung but
		// connected) peer must not block lock release forever.
		ctx, cancel := context.WithTimeout(s.ctx, 2*time.Second)
		outcome := s.resolveOutcome(ctx, id)
		cancel()
		switch outcome {
		case transport.OutcomeCommitted:
			_ = s.commitLocal(id)
			return
		case transport.OutcomeActive:
			timer := time.NewTimer(25 * time.Millisecond)
			select {
			case <-timer.C:
			case <-s.stopCh:
				timer.Stop()
				return
			}
		default:
			_ = s.abortLocal(id)
			return
		}
	}
}

// resolveOutcome runs the read side of the termination protocol for one
// transaction: ask the coordinator (authoritative — decision record or
// presumed abort), then fall back to polling the other live sites, where
// any "committed" wins and any "active" (a participant still
// consolidating) defers the verdict. OutcomeUnknown means no live site
// could answer.
func (s *Site) resolveOutcome(ctx context.Context, id txn.ID) string {
	if id.Site == s.id {
		resp := s.txnStatusLocal(id)
		return resp.Outcome
	}
	if resp, err := s.askStatus(ctx, id.Site, id); err == nil {
		// An authoritative verdict stands on its own. "Active" is honoured
		// too, authoritative or not: it means the coordinator is alive and
		// still DRIVING the transaction (a false suspicion), and discarding
		// it would let the peer poll presume abort under a live commit.
		if resp.Authoritative || resp.Outcome == transport.OutcomeActive {
			return resp.Outcome
		}
	}
	return s.pollPeers(ctx, id)
}

// pollPeers is the participant-poll half of the termination protocol: every
// site except this one and the transaction's coordinator is asked, and the
// answers fold with the precedence committed > active > aborted > unknown —
// a consolidated participant proves the commit decision, one still
// consolidating defers the verdict, and the rest is the survivors'
// collective presumption. Shared by survivor-side orphan resolution and
// (via PollPeersOutcome) restart-time decision reconciliation, so the two
// can never disagree on the fold.
func (s *Site) pollPeers(ctx context.Context, id txn.ID) string {
	outcome := transport.OutcomeUnknown
	for _, site := range s.cfg.Sites {
		if site == s.id || site == id.Site {
			continue
		}
		resp, err := s.askStatus(ctx, site, id)
		if err != nil {
			continue
		}
		switch resp.Outcome {
		case transport.OutcomeCommitted:
			return transport.OutcomeCommitted
		case transport.OutcomeActive:
			outcome = transport.OutcomeActive
		case transport.OutcomeAborted:
			if outcome == transport.OutcomeUnknown {
				outcome = transport.OutcomeAborted
			}
		}
	}
	return outcome
}

// PollPeersOutcome exposes the participant poll for internal/recovery.
func (s *Site) PollPeersOutcome(ctx context.Context, id txn.ID) string {
	return s.pollPeers(ctx, id)
}

// askStatus sends one TxnStatusReq.
func (s *Site) askStatus(ctx context.Context, site int, id txn.ID) (transport.TxnStatusResp, error) {
	resp, err := s.send(ctx, site, transport.TxnStatusReq{Txn: id})
	if err != nil {
		return transport.TxnStatusResp{}, err
	}
	st, ok := resp.(transport.TxnStatusResp)
	if !ok {
		return transport.TxnStatusResp{}, errors.New("sched: unexpected status response")
	}
	return st, nil
}

// txnStatusLocal answers a TxnStatusReq from this site's knowledge, in
// precedence order: committed tombstone, live transaction, live journal
// decision, aborted tombstone, then — authoritatively, for transactions
// this site coordinates — the presumed-abort rule. The live decision
// outranks an aborted tombstone deliberately: a coordinator whose commit
// fan-out partially consolidated fails the transaction locally (tombstone
// aborted) but keeps the decision record, and a recovering participant
// asking about it must hear "committed" — commit-wins is what lets it
// converge with the participant that did consolidate, instead of sealing an
// abort over persisted state.
func (s *Site) txnStatusLocal(id txn.ID) transport.TxnStatusResp {
	s.mu.Lock()
	committed, known := s.finished[id]
	_, activeCoord := s.coord[id]
	_, activePart := s.part[id]
	s.mu.Unlock()
	coordinator := id.Site == s.id
	if known && committed {
		return transport.TxnStatusResp{Outcome: transport.OutcomeCommitted, Authoritative: coordinator}
	}
	if s.cfg.Journal != nil && s.cfg.Journal.Decision(id.String()) {
		// The decision outranks "active" and an aborted tombstone alike: a
		// durable commit decision means the outcome IS commit — whether the
		// fan-out is still in flight or a partial consolidation made the
		// coordinator fail the transaction locally, an asker must hear
		// commit-wins or it diverges from the participant that persisted.
		return transport.TxnStatusResp{Outcome: transport.OutcomeCommitted, Authoritative: coordinator}
	}
	if activeCoord {
		// This site DRIVES the transaction; askers must wait it out.
		return transport.TxnStatusResp{Outcome: transport.OutcomeActive}
	}
	if known {
		return transport.TxnStatusResp{Outcome: transport.OutcomeAborted, Authoritative: coordinator}
	}
	if activePart {
		// Passive participant state: operations executed, no verdict yet.
		// Not "active" — this site is waiting for one, exactly like the
		// asker — and not an answer either.
		return transport.TxnStatusResp{Outcome: transport.OutcomeUnknown}
	}
	if coordinator && s.Ready() {
		// Presumed abort: this site coordinates the transaction, has no
		// record of it and no decision — it cannot have told any participant
		// to consolidate.
		return transport.TxnStatusResp{Outcome: transport.OutcomeAborted, Authoritative: true}
	}
	return transport.TxnStatusResp{Outcome: transport.OutcomeUnknown}
}
