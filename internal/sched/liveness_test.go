package sched

import (
	"testing"
	"time"

	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xupdate"
)

// TestHeartbeatDetectsCrash: a killed peer transitions Up -> Suspect ->
// Down in the survivor's liveness view, and comes back Up when a ready site
// rejoins under the same id.
func TestHeartbeatDetectsCrash(t *testing.T) {
	sites, net := newCluster(t, 2, func(c *Config) {
		c.HeartbeatInterval = 5 * time.Millisecond
		c.HeartbeatMisses = 2
	})
	if got := sites[0].PeerState(1); got != PeerUp {
		t.Fatalf("initial state = %v", got)
	}
	sites[1].Kill()
	deadline := time.Now().Add(5 * time.Second)
	for sites[0].PeerState(1) != PeerDown {
		if time.Now().After(deadline) {
			t.Fatalf("peer never declared down; state = %v", sites[0].PeerState(1))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// A fresh ready site under the same id is readmitted by the heartbeat.
	replacement := New(Config{
		SiteID: 1, Sites: []int{0, 1}, Catalog: sites[0].Catalog(),
		HeartbeatInterval: 5 * time.Millisecond, HeartbeatMisses: 2,
	})
	if err := replacement.AttachNetwork(net); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(replacement.Stop)
	for sites[0].PeerState(1) != PeerUp {
		if time.Now().After(deadline) {
			t.Fatalf("peer never readmitted; state = %v", sites[0].PeerState(1))
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestRecoveringSiteRefusesTraffic: a site in recovering state answers
// heartbeats not-ready and refuses operations with the replica code until
// FinishRecovery.
func TestRecoveringSiteRefusesTraffic(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) { c.Recovering = true })
	s := sites[0]
	resp, err := s.HandleMessage(99, transport.PingReq{})
	if err != nil || resp.(transport.Ack).OK {
		t.Fatalf("recovering site answered ready: %v %v", resp, err)
	}
	op, err := s.HandleMessage(99, transport.ExecOpReq{Txn: txn.ID{Site: 9, Seq: 1}, Op: txn.NewQuery("d", "/x")})
	if err != nil {
		t.Fatal(err)
	}
	if r := op.(transport.ExecOpResp); !r.Failed || r.Code != txn.CodeReplicaUnavailable {
		t.Fatalf("recovering site served an operation: %+v", r)
	}
	s.FinishRecovery()
	resp, _ = s.HandleMessage(99, transport.PingReq{})
	if !resp.(transport.Ack).OK {
		t.Fatal("ready site answered not-ready")
	}
}

// TestCommitRefusedAfterLocalAbort: once a participant resolved a
// transaction as aborted (orphan cleanup after a suspected coordinator), a
// late consolidation request must be refused, not silently acknowledged —
// otherwise the coordinator reports commit over diverged replicas.
func TestCommitRefusedAfterLocalAbort(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	id := txn.ID{Site: 7, Seq: 1}
	resp, err := s.HandleMessage(7, transport.ExecOpReq{
		Txn: id, TS: 1, Coordinator: 7, OpIdx: 0,
		Op: txn.NewUpdate("d2", &xupdate.Update{
			Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "1.00",
		}),
	})
	if err != nil || !resp.(transport.ExecOpResp).Executed {
		t.Fatalf("remote op: %v %+v", err, resp)
	}
	if err := s.abortLocal(id); err != nil {
		t.Fatal(err)
	}
	ack, err := s.HandleMessage(7, transport.CommitReq{Txn: id})
	if err != nil {
		t.Fatal(err)
	}
	if ack.(transport.Ack).OK {
		t.Fatal("consolidation of a locally-aborted transaction acknowledged")
	}
	// The other direction is idempotent: committing twice stays OK.
	resp, _ = s.HandleMessage(7, transport.ExecOpReq{
		Txn: txn.ID{Site: 7, Seq: 2}, TS: 2, Coordinator: 7, OpIdx: 0,
		Op: txn.NewQuery("d2", "//product"),
	})
	if !resp.(transport.ExecOpResp).Executed {
		t.Fatalf("follow-up op refused: %+v", resp)
	}
	id2 := txn.ID{Site: 7, Seq: 2}
	if ack, _ := s.HandleMessage(7, transport.CommitReq{Txn: id2}); !ack.(transport.Ack).OK {
		t.Fatal("first commit refused")
	}
	if ack, _ := s.HandleMessage(7, transport.CommitReq{Txn: id2}); !ack.(transport.Ack).OK {
		t.Fatal("repeat commit refused")
	}
}

// TestStatusMessage: the site status handler reports documents, peers and
// counters.
func TestStatusMessage(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	addDoc(t, sites[0], "d1", peopleXML)
	if _, err := sites[0].Submit([]txn.Operation{txn.NewQuery("d1", "//person")}); err != nil {
		t.Fatal(err)
	}
	resp, err := sites[0].HandleMessage(99, transport.SiteStatusReq{})
	if err != nil {
		t.Fatal(err)
	}
	st := resp.(transport.SiteStatusResp)
	if !st.Ready || st.Site != 0 || len(st.Documents) != 1 || st.Committed != 1 {
		t.Fatalf("status = %+v", st)
	}
}
