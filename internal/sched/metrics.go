package sched

import (
	"encoding/json"
	"math"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/txn"
)

// siteMetrics holds the site's pre-resolved metric handles. The counters are
// the ONE source of truth behind the Stats compatibility view — each is the
// same single atomic add the old Stats struct fields were. Histograms and
// spans are gated on the registry's armed flag (see internal/obs), so an
// unconfigured site pays one atomic load per would-be observation and
// nothing else. Per-document children are resolved once in newDocState and
// cached on the docState (docMetrics), keeping map lookups off the hot path.
type siteMetrics struct {
	reg *obs.Registry

	// Stats-fold counters (always live).
	txnsCommitted, txnsAborted, txnsFailed         *obs.Counter
	deadlockAborts, localDeadlocks, distDeadlocks  *obs.Counter
	opsExecuted, remoteOpsSent, remoteOpsProcessed *obs.Counter
	locksAcquired, persistErrors                   *obs.Counter
	snapshotReads, snapshotPublishes               *obs.Counter
	logShipped, logApplied                         *obs.Counter
	staleRefusals, catchupRecords                  *obs.Counter
	indexedQueries                                 *obs.Counter
	conflicts                                      *obs.CounterVec // per doc; Stats folds Total
	docOps                                         *obs.CounterVec // per doc; adaptive-policy signal
	docDeadlocks                                   *obs.CounterVec // per doc; adaptive-policy signal
	protocolSwitches                               *obs.CounterVec // per doc; Stats folds Total

	// Latency histograms (armed-gated).
	lockWait      *obs.HistogramVec // per doc: first conflict -> grant
	opExec        *obs.HistogramVec // per doc: whole execute phase of one op
	decisionWrite *obs.Histogram    // 2PC: coordinator decision record write
	commitFanout  *obs.Histogram    // 2PC: CommitReq fan-out until every ack
	quorumAck     *obs.Histogram    // 2PC: shipQuorum wait for WriteQuorum acks
	detectorCycle *obs.Histogram    // one distributed deadlock sweep
	persistSave   *obs.HistogramVec // per doc: Store.Save of one snapshot
	persistBatch  *obs.HistogramVec // per doc: commits covered per save
	replShip      *obs.HistogramVec // per peer: one LogShipReq round trip
	replApply     *obs.HistogramVec // per doc: applying one shipped span
}

// docMetrics are the per-document child handles cached on each docState.
// ops, deadlocks and the lock-wait histogram double as the adaptive policy
// engine's per-document signals (adapt.go): counters are always live, and
// the policy loop arms the registry so the histogram records too.
type docMetrics struct {
	lockWait     *obs.Histogram
	opExec       *obs.Histogram
	conflicts    *obs.Counter
	ops          *obs.Counter
	deadlocks    *obs.Counter
	switches     *obs.Counter
	persistSave  *obs.Histogram
	persistBatch *obs.Histogram
	replApply    *obs.Histogram
}

func (m *siteMetrics) docMetrics(doc string) docMetrics {
	return docMetrics{
		lockWait:     m.lockWait.With(doc),
		opExec:       m.opExec.With(doc),
		conflicts:    m.conflicts.With(doc),
		ops:          m.docOps.With(doc),
		deadlocks:    m.docDeadlocks.With(doc),
		switches:     m.protocolSwitches.With(doc),
		persistSave:  m.persistSave.With(doc),
		persistBatch: m.persistBatch.With(doc),
		replApply:    m.replApply.With(doc),
	}
}

// newSiteMetrics registers the scheduler's metric families on the registry
// (creating an unarmed one when the config brought none) and wires the
// exposition-time gauges over the site's live state.
func newSiteMetrics(s *Site, reg *obs.Registry) *siteMetrics {
	if reg == nil {
		reg = obs.New()
	}
	reg.SetLabel("site", strconv.Itoa(s.id))
	m := &siteMetrics{
		reg:                reg,
		txnsCommitted:      reg.Counter("dtx_txns_committed_total", "Transactions committed at this coordinator."),
		txnsAborted:        reg.Counter("dtx_txns_aborted_total", "Transactions aborted at this coordinator."),
		txnsFailed:         reg.Counter("dtx_txns_failed_total", "Transactions failed (not cleanly resolved) at this coordinator."),
		deadlockAborts:     reg.Counter("dtx_deadlock_aborts_total", "Transactions aborted as deadlock victims."),
		localDeadlocks:     reg.Counter("dtx_deadlocks_local_total", "Cycles found while adding a wait edge (Alg. 3)."),
		distDeadlocks:      reg.Counter("dtx_deadlocks_distributed_total", "Cycles found by the periodic distributed detector (Alg. 4)."),
		opsExecuted:        reg.Counter("dtx_ops_executed_total", "Operations executed at this site."),
		remoteOpsSent:      reg.Counter("dtx_remote_ops_sent_total", "Operations shipped to remote participants."),
		remoteOpsProcessed: reg.Counter("dtx_remote_ops_processed_total", "Remote operations processed at this participant."),
		locksAcquired:      reg.Counter("dtx_locks_acquired_total", "Locks granted."),
		persistErrors:      reg.Counter("dtx_persist_errors_total", "Background persist failures (latched per document)."),
		snapshotReads:      reg.Counter("dtx_snapshot_reads_total", "Queries served lock-free from MVCC versions."),
		snapshotPublishes:  reg.Counter("dtx_snapshot_publishes_total", "Committed versions materialised into an MVCC chain."),
		logShipped:         reg.Counter("dtx_repl_records_shipped_total", "Replication records acked by a follower (per record, per follower)."),
		logApplied:         reg.Counter("dtx_repl_records_applied_total", "Shipped replication records applied at this follower."),
		staleRefusals:      reg.Counter("dtx_repl_stale_refusals_total", "Snapshot reads refused for exceeding the staleness bound."),
		catchupRecords:     reg.Counter("dtx_repl_catchup_records_total", "Replication records applied during recovery catch-up."),
		indexedQueries:     reg.Counter("dtx_indexed_queries_total", "Queries answered from a value index instead of an extent scan."),
		conflicts:          reg.CounterVec("dtx_op_conflicts_total", "Lock acquisition failures.", "doc"),
		docOps:             reg.CounterVec("dtx_doc_ops_executed_total", "Operations executed, per document (adaptive-policy signal).", "doc"),
		docDeadlocks:       reg.CounterVec("dtx_doc_deadlocks_total", "Local deadlock cycles found, per document (adaptive-policy signal).", "doc"),
		protocolSwitches:   reg.CounterVec("dtx_protocol_switches_total", "Completed online lock-protocol switches, per document.", "doc"),

		lockWait:      reg.HistogramVec("dtx_lock_wait_seconds", "Lock-wait time per operation: first conflicting attempt to grant.", "doc", obs.LatencyBuckets),
		opExec:        reg.HistogramVec("dtx_op_exec_seconds", "2PC execute phase: one operation routed, executed and acknowledged.", "doc", obs.LatencyBuckets),
		decisionWrite: reg.Histogram("dtx_2pc_decision_write_seconds", "2PC decision phase: journaling the coordinator commit decision.", obs.LatencyBuckets),
		commitFanout:  reg.Histogram("dtx_2pc_commit_fanout_seconds", "2PC commit phase: consolidation fan-out until every participant acked.", obs.LatencyBuckets),
		quorumAck:     reg.Histogram("dtx_2pc_quorum_ack_seconds", "Quorum replication: shipQuorum wait for WriteQuorum durable acks.", obs.LatencyBuckets),
		detectorCycle: reg.Histogram("dtx_deadlock_cycle_seconds", "One distributed deadlock-detection sweep (Alg. 4).", obs.LatencyBuckets),
		persistSave:   reg.HistogramVec("dtx_persist_save_seconds", "Persist pipeline: one snapshot marshal+write to the Store.", "doc", obs.LatencyBuckets),
		persistBatch:  reg.HistogramVec("dtx_persist_batch_size", "Persist pipeline: commits covered by one snapshot write.", "doc", obs.SizeBuckets),
		replShip:      reg.HistogramVec("dtx_repl_ship_seconds", "Replication: one LogShipReq round trip to a follower.", "peer", obs.LatencyBuckets),
		replApply:     reg.HistogramVec("dtx_repl_apply_seconds", "Replication: applying one shipped span at this follower.", "doc", obs.LatencyBuckets),
	}

	// Exposition-time gauges read the live state the subsystems already
	// maintain, so the write paths never touch them.
	reg.GaugeFunc("dtx_site_ready", "1 when the site serves traffic, 0 while recovering or killed.", func() float64 {
		if s.Ready() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("dtx_persist_queue_depth", "Persist pipeline: commits acknowledged but not yet covered by a Store write.", func() float64 {
		return float64(atomic.LoadInt64(&s.persistCount))
	})
	reg.CounterFunc("dtx_mvcc_gc_reclaimed_total", "MVCC versions retired by chain GC.", func() float64 {
		var n int64
		for _, ds := range s.allDocs() {
			n += ds.versions.Reclaimed()
		}
		return float64(n)
	})
	reg.LabeledGaugeFunc("dtx_mvcc_chain_length", "Retained MVCC versions per document.", "doc", func() []obs.LabeledValue {
		var out []obs.LabeledValue
		for _, ds := range s.allDocs() {
			out = append(out, obs.LabeledValue{Label: ds.name, Value: float64(ds.versions.Len())})
		}
		return out
	})
	reg.LabeledGaugeFunc("dtx_mvcc_pinned_versions", "MVCC versions pinned by live readers per document.", "doc", func() []obs.LabeledValue {
		var out []obs.LabeledValue
		for _, ds := range s.allDocs() {
			out = append(out, obs.LabeledValue{Label: ds.name, Value: float64(ds.versions.Pinned())})
		}
		return out
	})
	reg.LabeledGaugeFunc("dtx_doc_protocol_rung", "Active lock protocol per document on the granularity ladder: 0=doclock, 1=node2pl, 2=xdgl, -1=unmanaged.", "doc", func() []obs.LabeledValue {
		var out []obs.LabeledValue
		for _, ds := range s.allDocs() {
			ds.mu.Lock()
			rung := ladderIndex(ds.proto.Name())
			ds.mu.Unlock()
			out = append(out, obs.LabeledValue{Label: ds.name, Value: float64(rung)})
		}
		return out
	})
	reg.LabeledGaugeFunc("dtx_repl_behind_records", "Replication lag: known primary head minus last applied record, per document.", "doc", func() []obs.LabeledValue {
		var out []obs.LabeledValue
		for _, ds := range s.allDocs() {
			ds.mu.Lock()
			behind := ds.knownHead - ds.replApplied
			ds.mu.Unlock()
			if behind < 0 {
				behind = 0
			}
			out = append(out, obs.LabeledValue{Label: ds.name, Value: float64(behind)})
		}
		return out
	})
	reg.LabeledGaugeFunc("dtx_repl_staleness_seconds", "Replication lag age: how long this follower has known itself behind, per document.", "doc", func() []obs.LabeledValue {
		var out []obs.LabeledValue
		for _, ds := range s.allDocs() {
			ds.mu.Lock()
			var age float64
			if !ds.staleSince.IsZero() && ds.knownHead > ds.replApplied {
				age = time.Since(ds.staleSince).Seconds()
			}
			ds.mu.Unlock()
			out = append(out, obs.LabeledValue{Label: ds.name, Value: age})
		}
		return out
	})
	return m
}

// Metrics returns the site's registry, for consumers that expose or arm it
// (dtxd's -metrics-addr listener, the harness's latency breakdown).
func (s *Site) Metrics() *obs.Registry { return s.m.reg }

// MetricsText renders the registry — the payload of the MetricsReq RPC, so
// dtxctl can dump any site's metrics over the scheduler transport without an
// HTTP listener. Serving the RPC arms the registry like an HTTP scrape does.
func (s *Site) MetricsText() string {
	s.m.reg.Arm()
	return s.m.reg.Text()
}

// ---- slow-transaction tracer ----

// traceEvent is one step of a transaction's timeline. At is the offset from
// the transaction's begin; Ms is the step's own duration where one is
// measured (lock waits, phase spans).
type traceEvent struct {
	Ev  string  `json:"ev"`
	Doc string  `json:"doc,omitempty"`
	Op  int     `json:"op,omitempty"`
	At  float64 `json:"at_ms"`
	Ms  float64 `json:"ms,omitempty"`
}

// txnTrace is the lightweight per-transaction event timeline. It exists only
// while tracing is armed (Config.TraceSink set, or SlowTxnThreshold > 0);
// fast transactions' traces are dropped on the floor at finish, slow ones
// are rendered as one JSON line. The mutex is a leaf: batched read-only
// steps append concurrently.
type txnTrace struct {
	begin time.Time
	mu    sync.Mutex
	ev    []traceEvent
}

func newTxnTrace() *txnTrace {
	return &txnTrace{begin: time.Now()}
}

// add appends one event. dur <= 0 omits the ms field.
func (tr *txnTrace) add(ev, doc string, op int, dur time.Duration) {
	if tr == nil {
		return
	}
	e := traceEvent{Ev: ev, Doc: doc, Op: op, At: roundMs(time.Since(tr.begin))}
	if dur > 0 {
		e.Ms = roundMs(dur)
	}
	tr.mu.Lock()
	tr.ev = append(tr.ev, e)
	tr.mu.Unlock()
}

func roundMs(d time.Duration) float64 {
	return math.Round(float64(d)/float64(time.Millisecond)*1000) / 1000
}

// traceLine is the emitted structure: one line of JSON per slow transaction.
type traceLine struct {
	Txn     string       `json:"txn"`
	Site    int          `json:"site"`
	State   string       `json:"state"`
	Reason  string       `json:"reason,omitempty"`
	TotalMs float64      `json:"total_ms"`
	Events  []traceEvent `json:"events"`
}

// emitTrace renders and emits the transaction's timeline when it qualifies:
// tracing configured, and the transaction's total time at or above the
// threshold (a zero threshold with a sink traces everything — the
// trace-every-transaction debugging mode). Called after the terminal state
// is recorded; the sink must not call back into the site.
func (s *Site) emitTrace(id txn.ID, state txn.State, reason string, tr *txnTrace) {
	if tr == nil || s.cfg.TraceSink == nil {
		return
	}
	total := time.Since(tr.begin)
	if total < s.cfg.SlowTxnThreshold {
		return
	}
	tr.mu.Lock()
	events := append([]traceEvent(nil), tr.ev...)
	tr.mu.Unlock()
	line := traceLine{
		Txn:     id.String(),
		Site:    s.id,
		State:   state.String(),
		Reason:  reason,
		TotalMs: roundMs(total),
		Events:  events,
	}
	buf, err := json.Marshal(line)
	if err != nil {
		return
	}
	s.cfg.TraceSink(string(buf))
}

// traceFor returns the coordinator-side trace of a transaction, or nil.
// Participant-side code (commitLocal's quorum wait) uses it to attach phase
// events when the coordinator is local; remote participants' phases surface
// through their own site's histograms instead.
func (s *Site) traceFor(id txn.ID) *txnTrace {
	if !s.traceArmed {
		return nil
	}
	s.mu.Lock()
	ct := s.coord[id]
	s.mu.Unlock()
	if ct == nil {
		return nil
	}
	return ct.trace
}
