package sched

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/xupdate"
)

// histCount sums a family's observations across its children.
func histCount(v *obs.HistogramVec) int64 {
	var n int64
	for _, h := range v.Children() {
		n += h.Count()
	}
	return n
}

// withJournal gives every site of a cluster its own journal, enabling the
// durable 2PC decision record (and its latency span) on the commit path.
func withJournal(t *testing.T) func(*Config) {
	t.Helper()
	dir := t.TempDir()
	return func(cfg *Config) {
		j, err := store.OpenJournal(filepath.Join(dir, fmt.Sprintf("site%d.log", cfg.SiteID)))
		if err != nil {
			t.Fatal(err)
		}
		cfg.Journal = j
	}
}

// TestMetricsContention drives conflicting writers over one replicated
// document with the registry armed and asserts the gated histograms actually
// filled: a contended workload must leave lock-wait observations, and every
// distributed commit a decision-write and commit-fanout sample.
func TestMetricsContention(t *testing.T) {
	sites, _ := newCluster(t, 2, withJournal(t))
	s0, s1 := sites[0], sites[1]
	addDoc(t, s0, "d2", productsXML)
	addDoc(t, s1, "d2", productsXML)
	s0.Metrics().Arm()
	s1.Metrics().Arm()

	const writers, txns = 8, 5
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < txns; i++ {
				_, _ = s0.Submit([]txn.Operation{
					txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change,
						Target: "//product[id='4']/price", Value: "9.99"}),
				})
			}
		}()
	}
	wg.Wait()

	st := s0.Stats()
	if st.TxnsCommitted == 0 {
		t.Fatalf("no commits: %+v", st)
	}
	if n := histCount(s0.m.opExec); n == 0 {
		t.Error("dtx_op_exec_seconds empty after committed work")
	}
	if n := histCount(s0.m.lockWait); n == 0 {
		t.Error("dtx_lock_wait_seconds empty after contended workload")
	}
	if n := s0.m.decisionWrite.Count(); n < st.TxnsCommitted || n == 0 {
		t.Errorf("dtx_2pc_decision_write_seconds count = %d, want >= %d (one per distributed commit)",
			n, st.TxnsCommitted)
	}
	if n := s0.m.commitFanout.Count(); n < st.TxnsCommitted || n == 0 {
		t.Errorf("dtx_2pc_commit_fanout_seconds count = %d, want >= %d (one per distributed commit)",
			n, st.TxnsCommitted)
	}
	s0.Sync()
	if n := histCount(s0.m.persistSave); n == 0 {
		t.Error("dtx_persist_save_seconds empty after synced commits")
	}

	// The same numbers must survive the trip through the exposition text.
	text := s0.MetricsText()
	for _, want := range []string{
		"dtx_lock_wait_seconds_bucket",
		`dtx_op_conflicts_total{site="0",doc="d2"}`,
		"dtx_2pc_decision_write_seconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// TestSlowTxnTrace configures the tracer with threshold zero — trace every
// transaction — and checks one committed distributed update emits a JSON
// line whose timeline covers begin, execute and both 2PC phases.
func TestSlowTxnTrace(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	journal := withJournal(t)
	sites, _ := newCluster(t, 2, func(cfg *Config) {
		journal(cfg)
		if cfg.SiteID == 0 {
			cfg.TraceSink = func(line string) {
				mu.Lock()
				lines = append(lines, line)
				mu.Unlock()
			}
		}
	})
	s0, s1 := sites[0], sites[1]
	addDoc(t, s0, "d2", productsXML)
	addDoc(t, s1, "d2", productsXML)

	if _, err := s0.Submit([]txn.Operation{
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change,
			Target: "//product[id='14']/price", Value: "99.00"}),
	}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(lines) != 1 {
		t.Fatalf("trace lines = %d, want 1", len(lines))
	}
	var tl struct {
		Txn    string  `json:"txn"`
		State  string  `json:"state"`
		Total  float64 `json:"total_ms"`
		Events []struct {
			Ev string `json:"ev"`
		} `json:"events"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &tl); err != nil {
		t.Fatalf("trace line not JSON: %v\n%s", err, lines[0])
	}
	if tl.State != "committed" || tl.Txn == "" {
		t.Fatalf("trace line = %+v", tl)
	}
	seen := map[string]bool{}
	for _, e := range tl.Events {
		seen[e.Ev] = true
	}
	for _, ev := range []string{"begin", "exec", "2pc-decision-write", "2pc-commit-fanout", "finish"} {
		if !seen[ev] {
			t.Errorf("trace timeline missing %q event: %s", ev, lines[0])
		}
	}
}

// TestMetricsQuorumAck pins the quorum-replication phase: in quorum mode a
// committed update at the primary must leave a quorum-ack wait sample and,
// with tracing on, the matching timeline event.
func TestMetricsQuorumAck(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	sites := quorumCluster(t, 2, func(cfg *Config) {
		if cfg.SiteID == 0 {
			cfg.TraceSink = func(line string) {
				mu.Lock()
				lines = append(lines, line)
				mu.Unlock()
			}
		}
	})
	s0, s1 := sites[0], sites[1]
	addDoc(t, s0, "d1", peopleXML)
	addDoc(t, s1, "d1", peopleXML)

	res, err := s0.Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change,
			Target: "//person[id='4']/name", Value: "Zoe"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}
	if n := s0.m.quorumAck.Count(); n == 0 {
		t.Error("dtx_2pc_quorum_ack_seconds empty after quorum commit")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 || !strings.Contains(lines[0], `"2pc-quorum-ack"`) {
		t.Errorf("trace missing 2pc-quorum-ack event: %v", lines)
	}
}

// TestSlowTxnThresholdFilters sets a threshold no real transaction reaches
// and checks nothing is emitted.
func TestSlowTxnThresholdFilters(t *testing.T) {
	var mu sync.Mutex
	count := 0
	sites, _ := newCluster(t, 1, func(cfg *Config) {
		cfg.SlowTxnThreshold = 10 * time.Minute
		cfg.TraceSink = func(string) {
			mu.Lock()
			count++
			mu.Unlock()
		}
	})
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	if _, err := s.Submit([]txn.Operation{txn.NewQuery("d2", "//product/price")}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if count != 0 {
		t.Fatalf("fast transaction traced %d time(s)", count)
	}
}
