package sched

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/lock"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wfg"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

// localResult is the outcome of one lock-manager operation attempt —
// Algorithm 3's return enriched with the status flags Algorithm 2 tags onto
// remote operations. code classifies failures with a txn error code so the
// coordinator reconstructs typed errors across the wire.
type localResult struct {
	executed  bool
	acquired  bool
	deadlock  bool
	failed    bool
	code      string
	err       string
	results   []string
	conflicts []lock.Conflict
	// retryRouting asks the coordinator loop to re-route the operation: a
	// replica's connection tore down mid-exchange (now marked Suspect) and
	// the read can run again against the survivors.
	retryRouting bool
}

// handleExecOp processes one remote operation shipped by a coordinator —
// the body of Algorithm 2's loop for a single dequeued remote operation.
func (s *Site) handleExecOp(req transport.ExecOpReq) transport.ExecOpResp {
	s.mu.Lock()
	s.clock.Observe(req.TS)
	s.mu.Unlock()
	s.m.remoteOpsProcessed.Inc()

	res := s.processOperation(req.Txn, req.TS, req.Coordinator, req.OpIdx, req.Op)
	resp := transport.ExecOpResp{
		Site:           s.id,
		Executed:       res.executed,
		AcquireLocking: res.acquired,
		Deadlock:       res.deadlock,
		Failed:         res.failed,
		Code:           res.code,
		Error:          res.err,
		Results:        res.results,
	}
	for _, c := range res.conflicts {
		resp.Conflicts = append(resp.Conflicts, transport.Conflict{Txn: c.Txn, TS: c.TS})
	}
	return resp
}

// terminatedResult refuses a stale operation outrun by the transaction's
// own commit or abort (the pipelined transport does not order an abandoned
// exchange against later cleanup) rather than resurrect the terminated
// transaction's participant state and leak its locks.
func (s *Site) terminatedResult(id txn.ID) localResult {
	return localResult{failed: true, code: txn.CodeAborted,
		err: fmt.Sprintf("site %d: transaction %s already terminated", s.id, id)}
}

// processOperation is Algorithm 3 (process_operation): acquire the locks the
// protocol demands for the operation; on success execute it against the
// in-memory document; on conflict add wait-for edges and check for a local
// deadlock; partial effects of a failed attempt are undone before returning.
// Everything document-shaped happens under the document's own mutex — the
// per-document scheduling domain — so operations on different documents at
// this site run fully in parallel.
func (s *Site) processOperation(id txn.ID, ts txn.TS, coordinator, opIdx int, op txn.Operation) localResult {
	ds := s.doc(op.Doc)
	if ds == nil {
		return localResult{failed: true, code: txn.CodeUnknownDocument,
			err: fmt.Sprintf("site %d does not hold document %q", s.id, op.Doc)}
	}

	// Register participant-side state so commit/abort can find this
	// transaction even if it never acquires a single lock here.
	s.mu.Lock()
	if _, dead := s.finished[id]; dead {
		s.mu.Unlock()
		return s.terminatedResult(id)
	}
	pt := s.part[id]
	if pt == nil {
		pt = &partTxn{
			id:          id,
			ts:          ts,
			coordinator: coordinator,
			created:     time.Now(),
			undo:        make(map[int][]undoEntry),
			docs:        make(map[string]bool),
		}
		s.part[id] = pt
		s.coordOf[id] = coordinator
	}
	s.mu.Unlock()
	pt.touch(op.Doc)

	ds.mu.Lock()
	defer ds.mu.Unlock()

	// A protocol switch is draining this domain: transactions holding no
	// locks here yet are refused admission — acquired:false with no
	// conflicts parks them in the coordinator's wait mode, and the retry
	// interval readmits them under the new protocol once the swap lands.
	// Transactions already holding locks pass, so the drain's quiescence
	// condition (zero lock owners) is reachable: strict 2PL releases their
	// footprint at commit or abort.
	if ds.draining && !ds.table.Held(id) {
		return localResult{acquired: false}
	}

	// Translate the operation into lock requests under the domain's active
	// protocol. Queries go through the site's parse cache; update targets
	// are pre-parsed on the Update itself.
	var reqs []lock.Request
	var q *xpath.Query
	var err error
	switch op.Kind {
	case txn.OpQuery:
		q, err = s.queries.Get(op.Query)
		if err == nil {
			reqs, err = ds.proto.QueryRequests(ds.doc, ds.guide, q)
		}
	case txn.OpUpdate:
		reqs, err = ds.proto.UpdateRequests(ds.doc, ds.guide, op.Update)
	default:
		err = fmt.Errorf("unknown operation kind %d", op.Kind)
	}
	if err != nil {
		return localResult{failed: true, err: err.Error()}
	}

	// Re-check the tombstone now that the domain mutex is held: a cleanup
	// racing this operation marks the transaction finished BEFORE taking
	// the domain mutex to release its locks, so a grant made after this
	// check is always observed (and released) by that cleanup, and a grant
	// refused here leaks nothing.
	if s.isFinished(id) {
		return s.terminatedResult(id)
	}

	conflicts := ds.table.Acquire(lock.Owner{Txn: id, TS: ts, Op: opIdx}, reqs)
	if len(conflicts) > 0 {
		// Algorithm 3, l. 8: link the conflicting transactions in the
		// wait-for graph, then check whether the new edges close a circle
		// through this transaction. Stale edges from a previous attempt of
		// the same operation are replaced by the fresh conflict set.
		ds.met.conflicts.Inc()
		ds.graph.ClearWaiter(id)
		for _, c := range conflicts {
			ds.graph.AddEdge(id, ts, c.Txn, c.TS)
		}
		deadlock := ds.graph.CycleThrough(id) != nil
		if deadlock {
			s.m.localDeadlocks.Inc()
			ds.met.deadlocks.Inc()
		}
		return localResult{acquired: false, deadlock: deadlock, conflicts: conflicts}
	}

	// Locks granted: the transaction is no longer waiting on anybody here.
	ds.graph.ClearWaiter(id)
	s.m.locksAcquired.Add(int64(len(reqs)))
	if s.cfg.History != nil {
		grants := make([]GrantInfo, 0, len(reqs))
		for _, r := range reqs {
			if r.Node != nil || r.DocNode != nil {
				grants = append(grants, GrantInfo{Path: r.Path(), Mode: r.Mode, Guard: r.Guard})
			}
		}
		// Under ds.mu, so the hook's sequence numbers order conflicting
		// grants on one document exactly as the lock manager granted them.
		s.cfg.History.OnAcquired(s.id, id, opIdx, op.Doc, op.Kind == txn.OpUpdate, grants)
	}

	// Execute the operation against the main-memory representation.
	var out localResult
	out.acquired = true
	switch op.Kind {
	case txn.OpQuery:
		// Indexed path first: a predicate over an indexed key is answered
		// from postings (plus residual filters) instead of scanning the
		// matched extents. Falls back to the scan — and feeds the auto-index
		// miss counters — when no index covers the query. Both run under
		// ds.mu, so the index is exactly as current as the tree.
		if nodes, ok := ds.guide.EvalIndexed(q, ds.doc); ok {
			out.results = xpath.RenderStrings(q, nodes)
			s.m.indexedQueries.Inc()
		} else {
			out.results = xpath.EvalStrings(q, ds.doc)
		}
		out.executed = true
	case txn.OpUpdate:
		// Copy-on-first-write materialisation: the first update on a clean
		// document whose version chain lags its commit clock snapshots the
		// committed tree BEFORE mutating it — the last clean point until this
		// writer (and any it overlaps with) consolidates. Commit itself stays
		// O(1): it only advances the chain's commit clock (commitLocal), and
		// whoever next needs the committed tree — this branch, or a snapshot
		// reader at a clean point — pays for the copy.
		if len(ds.dirty) == 0 && ds.versions.Stale() {
			if ds.versions.Publish(ds.doc.Snapshot(), ds.versions.CommitTS()) {
				s.m.snapshotPublishes.Inc()
			}
		}
		rec, _, aerr := xupdate.Apply(op.Update, ds.doc, ds.guide)
		if aerr != nil {
			// The update itself failed (not a lock problem): Algorithm 2
			// l. 10–11 tags the operation for abort.
			out.failed = true
			out.err = aerr.Error()
		} else {
			pt.addUndo(opIdx, undoEntry{doc: op.Doc, rec: rec})
			if s.replLog != nil {
				pt.addApplied(opIdx, op)
			}
			ds.dirty[id] = true
			out.executed = true
		}
	}
	if out.executed {
		s.m.opsExecuted.Inc()
		ds.met.ops.Inc()
	}
	return out
}

// undoOpLocal undoes the effects of one operation of a transaction and
// releases the locks that operation acquired (Algorithm 1, l. 16: an
// operation that could not lock everywhere is undone wherever it ran).
// cleanupMu serialises the undo application against a concurrent abort of
// the same transaction: whichever takes the entries applies them, and the
// abort cannot release the transaction's locks in between.
func (s *Site) undoOpLocal(id txn.ID, opIdx int) {
	s.mu.Lock()
	pt := s.part[id]
	s.mu.Unlock()
	if pt == nil {
		// Already cleaned up (commit or abort outran this undo); the
		// cleanup released everything, including this operation's locks.
		return
	}
	pt.cleanupMu.Lock()
	entries := pt.takeUndo(opIdx)
	pt.dropApplied(opIdx)
	for i := len(entries) - 1; i >= 0; i-- {
		e := entries[i]
		if ds := s.doc(e.doc); ds != nil {
			ds.mu.Lock()
			// Undo failures here would mean corrupted undo state; the
			// tree operations involved cannot fail on records produced
			// by a successful apply.
			if err := e.rec.Undo(ds.doc, ds.guide); err != nil {
				ds.mu.Unlock()
				pt.cleanupMu.Unlock()
				panic(fmt.Sprintf("sched: undo of %s op %d failed: %v", id, opIdx, err))
			}
			ds.mu.Unlock()
		}
	}
	pt.cleanupMu.Unlock()
	var released int
	var waiters []txn.ID
	for _, name := range pt.docNames() {
		ds := s.doc(name)
		if ds == nil {
			continue
		}
		ds.mu.Lock()
		released += ds.table.ReleaseOp(id, opIdx)
		waiters = collectWaitersLocked(ds, id, waiters)
		ds.mu.Unlock()
	}
	wake := s.waiterCoordinators(waiters)
	if s.cfg.History != nil {
		s.cfg.History.OnUndone(s.id, id, opIdx)
	}
	if released > 0 {
		s.notifyWaiters(wake)
	}
}

// collectWaitersLocked appends the transactions waiting on id in one
// document's lock manager, removing the satisfied wait edges. Callers hold
// ds.mu.
func collectWaitersLocked(ds *docState, id txn.ID, waiters []txn.ID) []txn.ID {
	for _, w := range ds.graph.Waiters(id) {
		ds.graph.RemoveEdge(w, id)
		waiters = append(waiters, w)
	}
	return waiters
}

// waiterCoordinators maps waiting transactions to their coordinator sites.
// The returned map is consumed by notifyWaiters outside any mutex
// (transport sends must never happen under a scheduler mutex).
func (s *Site) waiterCoordinators(waiters []txn.ID) map[txn.ID]int {
	if len(waiters) == 0 {
		return nil
	}
	out := make(map[txn.ID]int, len(waiters))
	s.mu.Lock()
	for _, w := range waiters {
		coordSite, ok := s.coordOf[w]
		if !ok {
			coordSite = w.Site // transaction IDs embed their coordinator
		}
		out[w] = coordSite
	}
	s.mu.Unlock()
	return out
}

// releaseLocks releases every lock of the transaction in the named
// documents (strict-2PL release) and returns the waiters to wake, mapped
// to their coordinator sites. It also drops the transaction from those
// documents' wait-for graphs. Locks and wait edges can only exist in
// documents the transaction touched (partTxn.docs), so passing
// pt.docNames() keeps release O(touched documents), not O(site documents).
func (s *Site) releaseLocks(id txn.ID, names []string) map[txn.ID]int {
	var waiters []txn.ID
	for _, name := range names {
		ds := s.doc(name)
		if ds == nil {
			continue
		}
		ds.mu.Lock()
		ds.table.ReleaseAll(id)
		// Capture waiters before dropping the transaction from the graph,
		// so exactly those that were blocked on it are woken.
		waiters = collectWaitersLocked(ds, id, waiters)
		ds.graph.RemoveTxn(id)
		ds.mu.Unlock()
	}
	return s.waiterCoordinators(waiters)
}

// localEdges snapshots the union of this site's per-document wait-for
// graphs — the site's contribution to Algorithm 4.
func (s *Site) localEdges() []wfg.Edge {
	var out []wfg.Edge
	for _, ds := range s.allDocs() {
		ds.mu.Lock()
		out = append(out, ds.graph.Edges()...)
		ds.mu.Unlock()
	}
	return out
}

// notifyWaiters delivers wake-ups: "when a transaction commits, those that
// entered wait mode waiting for the locks of the one that committed, start
// executing again".
func (s *Site) notifyWaiters(targets map[txn.ID]int) {
	// Deterministic order keeps tests stable.
	ids := make([]txn.ID, 0, len(targets))
	for id := range targets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		coordSite := targets[id]
		if coordSite == s.id {
			s.signalWake(id)
			continue
		}
		// Best effort: a lost wake-up is recovered by the retry interval.
		// Bound to the lifecycle context so a wake to an unresponsive peer
		// cannot outlive the site.
		go func(site int, id txn.ID) {
			_, _ = s.send(s.ctx, site, transport.WakeReq{Txn: id})
		}(coordSite, id)
	}
}

// tombstone marks a transaction terminated with its outcome and unregisters
// its participant state, returning the record. Marking BEFORE releasing any
// lock or undoing any effect is what closes the race with a stale in-flight
// operation: the operation re-checks the tombstone under the document mutex
// before granting, so it either grants before the cleanup's release (which
// then observes and frees the grant) or refuses.
//
// The first outcome recorded wins; won reports whether THIS call recorded
// it, and prevCommitted the outcome that beat it otherwise — the atomic
// decision point between a consolidation and a concurrent local resolution
// (orphan abort) of the same transaction.
func (s *Site) tombstone(id txn.ID, committed bool) (pt *partTxn, won bool, prevCommitted bool) {
	s.mu.Lock()
	pt = s.part[id]
	prevCommitted, terminated := s.finished[id]
	won = !terminated
	s.markFinishedLocked(id, committed)
	delete(s.part, id)
	delete(s.coordOf, id)
	s.mu.Unlock()
	return pt, won, prevCommitted
}

// commitLocal consolidates a transaction at this site: hand its documents
// to the persist pipeline and release its locks (Algorithm 5, l. 10–11).
// The commit path itself does no serialization and no I/O beyond the
// journal intent — the pipeline snapshots the document under its mutex and
// marshals + writes outside it, in commit order (persist.go).
//
// Refusals (a latched background persist failure, a journal error) happen
// before any teardown, so the coordinator's subsequent abort still finds
// the participant state intact and rolls the transaction back cleanly. The
// coordinator only commits once every operation has completed at every
// site, so no operation of the transaction is in flight here during the
// dirty scan.
func (s *Site) commitLocal(id txn.ID) error {
	s.mu.Lock()
	pt := s.part[id]
	committed, terminated := s.finished[id]
	s.mu.Unlock()
	if terminated {
		// A consolidation request outrun by this site's own resolution of
		// the transaction (e.g. an orphan abort after a false suspicion of
		// the coordinator): re-committing is a no-op, but consolidating a
		// transaction this site already rolled back must be refused, or the
		// coordinator would report commit over diverged replicas.
		if committed {
			return nil
		}
		return fmt.Errorf("sched: site %d: %s already aborted here", s.id, id)
	}
	if !s.enterCommit() {
		return fmt.Errorf("sched: site %d is stopping", s.id)
	}
	defer s.exitCommit()

	// Collect the documents with unpersisted changes and refuse if any of
	// them has a latched background persist failure.
	var names []string
	var toPersist []*docState
	if pt != nil {
		names = pt.docNames()
		for _, name := range names {
			ds := s.doc(name)
			if ds == nil {
				continue
			}
			ds.mu.Lock()
			perr := ds.persistErr
			dirty := ds.dirty[id]
			ds.mu.Unlock()
			if perr != nil {
				return perr
			}
			if dirty {
				toPersist = append(toPersist, ds)
			}
		}
	}

	// WAL intent before any snapshot can reach the Store; written
	// synchronously so a crash after the commit ack still leaves the
	// in-doubt record Recover looks for.
	var group *persistGroup
	if s.cfg.Journal != nil && len(toPersist) > 0 {
		docs := make([]string, len(toPersist))
		for i, ds := range toPersist {
			docs[i] = ds.doc.Name
		}
		if hooks := s.cfg.Hooks; hooks != nil && hooks.BeforeIntent != nil {
			hooks.BeforeIntent(id, docs)
		}
		if err := s.cfg.Journal.LogIntent(id.String(), docs); err != nil {
			return fmt.Errorf("sched: journal intent: %w", err)
		}
		if hooks := s.cfg.Hooks; hooks != nil && hooks.AfterIntent != nil {
			hooks.AfterIntent(id, docs)
		}
		group = &persistGroup{id: id, remaining: int64(len(toPersist))}
	}

	// Point of no return: tombstone (see tombstone), then hand the
	// documents to the persist pipeline, then release. The pipeline's next
	// flush of each document necessarily includes this transaction's
	// committed changes — the tree only moves forward from here (later
	// commits add theirs; aborts undo only their own). The tombstone is
	// also the decision point against a concurrent local resolution: the
	// entry check above is advisory (TOCTOU), only winning the tombstone
	// authorises the consolidation.
	if _, won, prevCommitted := s.tombstone(id, true); !won {
		if prevCommitted {
			return nil // a duplicate consolidation already did the work
		}
		// An orphan abort slipped in after the entry check and rolled the
		// transaction back; acknowledging the commit now would report
		// consolidation over an undone state. Close our own intent record
		// so it cannot dangle in-doubt.
		if s.cfg.Journal != nil && group != nil {
			_ = s.cfg.Journal.LogAbort(id.String())
		}
		return fmt.Errorf("sched: site %d: %s aborted during consolidation", s.id, id)
	}
	// Stamp the consolidation on each touched document's version chain —
	// O(1) commit publication: only the chain's commit clock advances here;
	// the committed tree is materialised lazily, by the next writer's first
	// update at a clean point or by a snapshot reader (pinDocVersion). One
	// clock tick stamps the whole local consolidation.
	var cts txn.TS
	if len(toPersist) > 0 {
		s.mu.Lock()
		cts = s.clock.Tick()
		s.mu.Unlock()
		for _, ds := range toPersist {
			ds.versions.Advance(cts)
		}
	}
	var byDoc map[string][]txn.Operation
	if s.replLog != nil && pt != nil {
		byDoc = pt.appliedByDoc()
	}
	var ships []shipItem
	for _, ds := range toPersist {
		ds.mu.Lock()
		delete(ds.dirty, id)
		if ops := byDoc[ds.doc.Name]; len(ops) > 0 {
			// Quorum mode: append this transaction's effects on the document
			// to the shipping log and journal the record, all under the
			// domain mutex — racing commits on one document must hit the
			// journal in index order, or the replayed tail would gap-reset
			// and re-mint an index a follower already applied.
			rec := store.ReplRecord{Txn: id, TS: cts, Ops: ops}
			rec.Index = s.replLog.Append(ds.doc.Name, rec)
			ds.replApplied = rec.Index
			if j := s.cfg.Journal; j != nil && !s.Killed() {
				if payload, perr := store.EncodeReplRecord(rec); perr == nil {
					_ = j.LogRepl(ds.doc.Name, rec.Index, payload)
				}
			}
			ships = append(ships, shipItem{ds: ds, rec: rec})
		}
		s.schedulePersistLocked(ds, group)
		ds.mu.Unlock()
	}
	wake := s.releaseLocks(id, names)
	s.notifyWaiters(wake)
	if len(ships) > 0 {
		// Ship after the local point of no return: locks are released and
		// the persist pipeline holds the changes, so a quorum shortfall is a
		// consolidated-but-uncertain outcome (errQuorumShort), never a clean
		// abort.
		qsp := s.m.reg.Span()
		if err := s.shipQuorum(ships); err != nil {
			return err
		}
		qsp.Done(s.m.quorumAck)
		s.traceFor(id).add("2pc-quorum-ack", "", 0, qsp.Elapsed())
	}
	return nil
}

// abortLocal cancels a transaction at this site: undo every operation in
// reverse order and release all locks (Algorithm 6, l. 13–14). Unlike
// commit, an abort CAN race a stale in-flight operation of the same
// transaction (an exchange abandoned by cancellation); the tombstone plus
// the per-document barrier below make the undo set complete.
func (s *Site) abortLocal(id txn.ID) error {
	pt, _, _ := s.tombstone(id, false)
	var names []string
	if pt != nil {
		names = pt.docNames()
		pt.cleanupMu.Lock()
		// Barrier: an in-flight operation that passed its tombstone
		// re-check holds the document mutex from that check through its
		// undo recording, so acquiring each touched document's mutex once
		// orders every such operation's effects before the undo snapshot
		// below; operations arriving later are refused by the tombstone.
		for _, name := range names {
			if ds := s.doc(name); ds != nil {
				ds.mu.Lock()
				_ = ds // the empty critical section is the barrier
				ds.mu.Unlock()
			}
		}
		// Undo operations newest-first.
		undo := pt.takeAllUndo()
		var opIdxs []int
		for idx := range undo {
			opIdxs = append(opIdxs, idx)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(opIdxs)))
		for _, idx := range opIdxs {
			entries := undo[idx]
			for i := len(entries) - 1; i >= 0; i-- {
				e := entries[i]
				if ds := s.doc(e.doc); ds != nil {
					ds.mu.Lock()
					if err := e.rec.Undo(ds.doc, ds.guide); err != nil {
						ds.mu.Unlock()
						pt.cleanupMu.Unlock()
						panic(fmt.Sprintf("sched: undo of %s op %d failed: %v", id, idx, err))
					}
					ds.mu.Unlock()
				}
			}
		}
		pt.cleanupMu.Unlock()
		for _, name := range names {
			if ds := s.doc(name); ds != nil {
				ds.mu.Lock()
				if ds.dirty[id] {
					delete(ds.dirty, id)
					// A flush inside the batching window may have captured
					// this transaction's now-undone changes; schedule a
					// corrective write so the Store converges back to the
					// committed state instead of retaining an aborted one.
					s.schedulePersistLocked(ds, nil)
				}
				ds.mu.Unlock()
			}
		}
	}
	wake := s.releaseLocks(id, names)
	s.notifyWaiters(wake)
	return nil
}

// failLocal marks a transaction failed at this site. The paper's failure
// path (Algorithm 6, l. 6–9) gives up on clean cancellation; locally we
// still undo what we can and release locks so the site stays usable — the
// distinction from abort is the reported client outcome.
func (s *Site) failLocal(id txn.ID) {
	_ = s.abortLocal(id)
}
