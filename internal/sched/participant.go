package sched

import (
	"fmt"
	"sort"

	"repro/internal/lock"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/wfg"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

// localResult is the outcome of one lock-manager operation attempt —
// Algorithm 3's return enriched with the status flags Algorithm 2 tags onto
// remote operations. code classifies failures with a txn error code so the
// coordinator reconstructs typed errors across the wire.
type localResult struct {
	executed  bool
	acquired  bool
	deadlock  bool
	failed    bool
	code      string
	err       string
	results   []string
	conflicts []lock.Conflict
}

// handleExecOp processes one remote operation shipped by a coordinator —
// the body of Algorithm 2's loop for a single dequeued remote operation.
func (s *Site) handleExecOp(req transport.ExecOpReq) transport.ExecOpResp {
	s.mu.Lock()
	s.clock.Observe(req.TS)
	s.stats.RemoteOpsProcessed++
	s.mu.Unlock()

	res := s.processOperation(req.Txn, req.TS, req.Coordinator, req.OpIdx, req.Op)
	resp := transport.ExecOpResp{
		Site:           s.id,
		Executed:       res.executed,
		AcquireLocking: res.acquired,
		Deadlock:       res.deadlock,
		Failed:         res.failed,
		Code:           res.code,
		Error:          res.err,
		Results:        res.results,
	}
	for _, c := range res.conflicts {
		resp.Conflicts = append(resp.Conflicts, transport.Conflict{Txn: c.Txn, TS: c.TS})
	}
	return resp
}

// processOperation is Algorithm 3 (process_operation): acquire the locks the
// protocol demands for the operation; on success execute it against the
// in-memory document; on conflict add wait-for edges and check for a local
// deadlock; partial effects of a failed attempt are undone before returning.
func (s *Site) processOperation(id txn.ID, ts txn.TS, coordinator, opIdx int, op txn.Operation) localResult {
	s.mu.Lock()

	if _, dead := s.finished[id]; dead {
		// A stale operation outrun by the transaction's own commit or abort
		// (the pipelined transport does not order an abandoned exchange
		// against later cleanup): refuse it rather than resurrect the
		// terminated transaction's participant state and leak its locks.
		s.mu.Unlock()
		return localResult{failed: true, code: txn.CodeAborted,
			err: fmt.Sprintf("site %d: transaction %s already terminated", s.id, id)}
	}

	ds := s.docs[op.Doc]
	if ds == nil {
		s.mu.Unlock()
		return localResult{failed: true, code: txn.CodeUnknownDocument,
			err: fmt.Sprintf("site %d does not hold document %q", s.id, op.Doc)}
	}

	// Register participant-side state so commit/abort can find this
	// transaction even if it never acquires a single lock here.
	pt := s.part[id]
	if pt == nil {
		pt = &partTxn{
			id:          id,
			ts:          ts,
			coordinator: coordinator,
			undo:        make(map[int][]undoEntry),
			docs:        make(map[string]bool),
		}
		s.part[id] = pt
		s.coordOf[id] = coordinator
	}
	pt.docs[op.Doc] = true

	// Translate the operation into lock requests under the configured
	// protocol.
	var reqs []lock.Request
	var q *xpath.Query
	var err error
	switch op.Kind {
	case txn.OpQuery:
		q, err = xpath.Parse(op.Query)
		if err == nil {
			reqs, err = s.cfg.Protocol.QueryRequests(ds.doc, ds.guide, q)
		}
	case txn.OpUpdate:
		reqs, err = s.cfg.Protocol.UpdateRequests(ds.doc, ds.guide, op.Update)
	default:
		err = fmt.Errorf("unknown operation kind %d", op.Kind)
	}
	if err != nil {
		s.mu.Unlock()
		return localResult{failed: true, err: err.Error()}
	}

	conflicts := ds.table.Acquire(lock.Owner{Txn: id, TS: ts, Op: opIdx}, reqs)
	if len(conflicts) > 0 {
		// Algorithm 3, l. 8: link the conflicting transactions in the
		// wait-for graph, then check whether the new edges close a circle
		// through this transaction. Stale edges from a previous attempt of
		// the same operation are replaced by the fresh conflict set.
		s.stats.OpConflicts++
		ds.graph.ClearWaiter(id)
		for _, c := range conflicts {
			ds.graph.AddEdge(id, ts, c.Txn, c.TS)
		}
		deadlock := ds.graph.CycleThrough(id) != nil
		if deadlock {
			s.stats.LocalDeadlocks++
		}
		s.mu.Unlock()
		return localResult{acquired: false, deadlock: deadlock, conflicts: conflicts}
	}

	// Locks granted: the transaction is no longer waiting on anybody here.
	ds.graph.ClearWaiter(id)
	s.stats.LocksAcquired += int64(len(reqs))
	if s.cfg.History != nil {
		grants := make([]GrantInfo, 0, len(reqs))
		for _, r := range reqs {
			if r.Node != nil || r.DocNode != nil {
				grants = append(grants, GrantInfo{Path: r.Path(), Mode: r.Mode})
			}
		}
		s.cfg.History.OnAcquired(s.id, id, opIdx, op.Doc, op.Kind == txn.OpUpdate, grants)
	}

	// Execute the operation against the main-memory representation.
	var out localResult
	out.acquired = true
	switch op.Kind {
	case txn.OpQuery:
		out.results = xpath.EvalStrings(q, ds.doc)
		out.executed = true
	case txn.OpUpdate:
		rec, _, aerr := xupdate.Apply(op.Update, ds.doc, ds.guide)
		if aerr != nil {
			// The update itself failed (not a lock problem): Algorithm 2
			// l. 10–11 tags the operation for abort.
			out.failed = true
			out.err = aerr.Error()
		} else {
			pt.undo[opIdx] = append(pt.undo[opIdx], undoEntry{doc: op.Doc, rec: rec})
			ds.dirty[id] = true
			out.executed = true
		}
	}
	if out.executed {
		s.stats.OpsExecuted++
	}
	s.mu.Unlock()
	return out
}

// undoOpLocal undoes the effects of one operation of a transaction and
// releases the locks that operation acquired (Algorithm 1, l. 16: an
// operation that could not lock everywhere is undone wherever it ran).
func (s *Site) undoOpLocal(id txn.ID, opIdx int) {
	s.mu.Lock()
	pt := s.part[id]
	if pt != nil {
		entries := pt.undo[opIdx]
		for i := len(entries) - 1; i >= 0; i-- {
			e := entries[i]
			if ds := s.docs[e.doc]; ds != nil {
				// Undo failures here would mean corrupted undo state; the
				// tree operations involved cannot fail on records produced
				// by a successful apply.
				if err := e.rec.Undo(ds.doc, ds.guide); err != nil {
					panic(fmt.Sprintf("sched: undo of %s op %d failed: %v", id, opIdx, err))
				}
			}
		}
		delete(pt.undo, opIdx)
	}
	var released int
	for _, ds := range s.docs {
		released += ds.table.ReleaseOp(id, opIdx)
	}
	wake := s.wakeTargetsLocked(id)
	if s.cfg.History != nil {
		s.cfg.History.OnUndone(s.id, id, opIdx)
	}
	s.mu.Unlock()
	if released > 0 {
		s.notifyWaiters(wake)
	}
}

// wakeTargetsLocked collects, across every document's lock manager, the
// transactions waiting on id together with their coordinator sites, and
// removes the satisfied wait edges. Callers hold s.mu; the returned map is
// consumed by notifyWaiters outside the lock (transport sends must never
// happen under the site mutex).
func (s *Site) wakeTargetsLocked(id txn.ID) map[txn.ID]int {
	var out map[txn.ID]int
	for _, ds := range s.docs {
		for _, w := range ds.graph.Waiters(id) {
			ds.graph.RemoveEdge(w, id)
			coordSite, ok := s.coordOf[w]
			if !ok {
				coordSite = w.Site // transaction IDs embed their coordinator
			}
			if out == nil {
				out = make(map[txn.ID]int)
			}
			out[w] = coordSite
		}
	}
	return out
}

// localEdgesLocked snapshots the union of this site's per-document wait-for
// graphs — the site's contribution to Algorithm 4. Callers hold s.mu.
func (s *Site) localEdgesLocked() []wfg.Edge {
	var out []wfg.Edge
	for _, ds := range s.docs {
		out = append(out, ds.graph.Edges()...)
	}
	return out
}

// notifyWaiters delivers wake-ups: "when a transaction commits, those that
// entered wait mode waiting for the locks of the one that committed, start
// executing again".
func (s *Site) notifyWaiters(targets map[txn.ID]int) {
	// Deterministic order keeps tests stable.
	ids := make([]txn.ID, 0, len(targets))
	for id := range targets {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i].Less(ids[j]) })
	for _, id := range ids {
		coordSite := targets[id]
		if coordSite == s.id {
			s.signalWake(id)
			continue
		}
		// Best effort: a lost wake-up is recovered by the retry interval.
		// Bound to the lifecycle context so a wake to an unresponsive peer
		// cannot outlive the site.
		go func(site int, id txn.ID) {
			_, _ = s.send(s.ctx, site, transport.WakeReq{Txn: id})
		}(coordSite, id)
	}
}

// commitLocal consolidates a transaction at this site: persist its changes
// through the DataManager and release its locks (Algorithm 5, l. 10–11).
func (s *Site) commitLocal(id txn.ID) error {
	s.mu.Lock()
	pt := s.part[id]
	var toPersist []*docState
	if pt != nil {
		for name := range pt.docs {
			if ds := s.docs[name]; ds != nil && ds.dirty[id] {
				toPersist = append(toPersist, ds)
			}
		}
	}
	// Persist before releasing locks: the lock set still protects the
	// modified regions, so the snapshot written is the committed state. With
	// a journal configured, an intent record precedes the persists and a
	// commit record seals them, so a crash in between is detectable.
	if s.cfg.Journal != nil && len(toPersist) > 0 {
		docs := make([]string, len(toPersist))
		for i, ds := range toPersist {
			docs[i] = ds.doc.Name
		}
		if err := s.cfg.Journal.LogIntent(id.String(), docs); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("sched: journal intent: %w", err)
		}
	}
	for _, ds := range toPersist {
		if err := s.cfg.Store.Save(ds.doc); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("sched: persist %s: %w", ds.doc.Name, err)
		}
		delete(ds.dirty, id)
	}
	if s.cfg.Journal != nil && len(toPersist) > 0 {
		if err := s.cfg.Journal.LogCommit(id.String()); err != nil {
			s.mu.Unlock()
			return fmt.Errorf("sched: journal commit: %w", err)
		}
	}
	for _, ds := range s.docs {
		ds.table.ReleaseAll(id)
	}
	// Capture waiters before dropping the transaction from the graphs, so
	// exactly those that were blocked on it are woken.
	wake := s.wakeTargetsLocked(id)
	for _, ds := range s.docs {
		ds.graph.RemoveTxn(id)
	}
	delete(s.part, id)
	delete(s.coordOf, id)
	s.markFinishedLocked(id)
	s.mu.Unlock()
	s.notifyWaiters(wake)
	return nil
}

// abortLocal cancels a transaction at this site: undo every operation in
// reverse order and release all locks (Algorithm 6, l. 13–14).
func (s *Site) abortLocal(id txn.ID) error {
	s.mu.Lock()
	pt := s.part[id]
	if pt != nil {
		// Undo operations newest-first.
		var opIdxs []int
		for idx := range pt.undo {
			opIdxs = append(opIdxs, idx)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(opIdxs)))
		for _, idx := range opIdxs {
			entries := pt.undo[idx]
			for i := len(entries) - 1; i >= 0; i-- {
				e := entries[i]
				if ds := s.docs[e.doc]; ds != nil {
					if err := e.rec.Undo(ds.doc, ds.guide); err != nil {
						panic(fmt.Sprintf("sched: undo of %s op %d failed: %v", id, idx, err))
					}
				}
			}
		}
		for name := range pt.docs {
			if ds := s.docs[name]; ds != nil {
				delete(ds.dirty, id)
			}
		}
	}
	for _, ds := range s.docs {
		ds.table.ReleaseAll(id)
	}
	wake := s.wakeTargetsLocked(id)
	for _, ds := range s.docs {
		ds.graph.RemoveTxn(id)
	}
	delete(s.part, id)
	delete(s.coordOf, id)
	s.markFinishedLocked(id)
	s.mu.Unlock()
	s.notifyWaiters(wake)
	return nil
}

// failLocal marks a transaction failed at this site. The paper's failure
// path (Algorithm 6, l. 6–9) gives up on clean cancellation; locally we
// still undo what we can and release locks so the site stays usable — the
// distinction from abort is the reported client outcome.
func (s *Site) failLocal(id txn.ID) {
	_ = s.abortLocal(id)
}
