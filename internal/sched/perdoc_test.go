package sched

import (
	"context"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// TestPerDocumentProgress verifies the per-document scheduling domains:
// while one transaction is parked in lock-wait on document A, transactions
// on document B at the same site run to completion. Under the former
// per-site mutex model the waiter's retries and the other document's work
// serialised on one lock; now only the same document contends.
func TestPerDocumentProgress(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "dA", peopleXML)
	addDoc(t, s, "dB", productsXML)

	holder, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// X lock on dA's person name class.
	if _, err := holder.Exec(txn.NewUpdate("dA", &xupdate.Update{
		Kind: xupdate.Change, Target: "//person/name", Value: "held"})); err != nil {
		t.Fatal(err)
	}

	// A second transaction conflicts on the same class and parks in wait
	// mode.
	waiterDone := make(chan error, 1)
	go func() {
		waiter, err := s.Begin(context.Background())
		if err != nil {
			waiterDone <- err
			return
		}
		if _, err := waiter.Exec(txn.NewUpdate("dA", &xupdate.Update{
			Kind: xupdate.Change, Target: "//person/name", Value: "waited"})); err != nil {
			waiterDone <- err
			return
		}
		waiterDone <- waiter.Commit()
	}()

	// Wait until the conflict is registered (the waiter is parked).
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().OpConflicts == 0 {
		if time.Now().After(deadline) {
			t.Fatal("waiter never conflicted")
		}
		time.Sleep(time.Millisecond)
	}

	// Transactions on dB must make progress while dA's waiter is parked.
	done := make(chan error, 1)
	go func() {
		res, err := s.Submit([]txn.Operation{
			txn.NewQuery("dB", "//product[id='4']/description"),
			txn.NewUpdate("dB", &xupdate.Update{
				Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "55.00"}),
		})
		if err == nil && res.State != txn.Committed {
			err = res.Err
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("transaction on other document failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("transaction on other document blocked behind a lock-wait on a different document")
	}

	select {
	case err := <-waiterDone:
		t.Fatalf("waiter finished while the conflicting lock was held: %v", err)
	default:
	}

	// Release; the waiter must now complete.
	if err := holder.Commit(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waiterDone:
		if err != nil {
			t.Fatalf("waiter failed after wake-up: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never woke up")
	}
}

// orderStore wraps a MemStore and records, per document, the number of
// top-level children in every state saved — the observation the
// persist-ordering test asserts on.
type orderStore struct {
	store.Store
	mu    sync.Mutex
	seen  map[string][]int
	saves int
}

func (o *orderStore) Save(doc *xmltree.Document) error {
	o.mu.Lock()
	o.seen[doc.Name] = append(o.seen[doc.Name], len(doc.Root.Children))
	o.saves++
	o.mu.Unlock()
	return o.Store.Save(doc)
}

// TestPersistOrdering drives many concurrent single-insert transactions on
// one document and asserts that Store writes observe per-document commit
// order: every saved state has strictly more inserts than the previous one
// (the pipeline may coalesce commits, so counts can skip, never regress),
// and the final saved state contains every commit.
func TestPersistOrdering(t *testing.T) {
	os := &orderStore{Store: store.NewMemStore(), seen: make(map[string][]int)}
	sites, _ := newCluster(t, 1, func(cfg *Config) {
		cfg.Store = os
	})
	s := sites[0]
	addDoc(t, s, "d", "<people></people>")

	const workers = 8
	const perWorker = 5
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := strconv.Itoa(w*perWorker + i)
				res, err := s.Submit([]txn.Operation{
					txn.NewUpdate("d", &xupdate.Update{
						Kind: xupdate.Insert, Target: "/people",
						Pos: xmltree.Into, New: personSpec(id, "p"+id)}),
				})
				if err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if res.State != txn.Committed {
					t.Errorf("txn %s: %v", res.Txn, res.Err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	s.Sync()

	os.mu.Lock()
	defer os.mu.Unlock()
	counts := os.seen["d"]
	if len(counts) < 2 {
		t.Fatalf("too few saves to observe ordering: %v", counts)
	}
	// counts[0] is the AddDocument install (0 children).
	for i := 1; i < len(counts); i++ {
		if counts[i] <= counts[i-1] {
			t.Fatalf("save %d regressed: %v", i, counts)
		}
	}
	if final := counts[len(counts)-1]; final != workers*perWorker {
		t.Fatalf("final saved state has %d inserts, want %d", final, workers*perWorker)
	}
}
