package sched

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/store"
	"repro/internal/txn"
)

// The persist pipeline gets XML serialization out of the scheduling domain
// and off the commit path entirely. A commit only marks its document
// persist-pending (O(1) under the domain mutex); a per-document worker
// wakes after a short batching window, snapshots the document under the
// domain mutex (an arena tree copy, no I/O), and marshals + writes the
// snapshot to the Store outside every scheduler mutex. Snapshots are
// cumulative document states, so one write makes every commit of the
// window durable — group persistence: under heavy commit traffic the Store
// converges to the latest committed state through a subsequence of the
// commit history instead of absorbing one full serialization per commit,
// and the write rate per document is bounded by the window, not the load.
// Writes per document are issued by a single worker, strictly in commit
// order.
//
// The WAL contract holds around the pipeline: the journal intent record is
// written synchronously in commitLocal before the commit is acknowledged,
// and the commit record is written after the LAST of the transaction's
// documents has actually been saved (persistGroup). Between the two — the
// ack-to-write window — a crash leaves an in-doubt record, exactly the
// recovery semantics the journal documents.
//
// A background Save failure is latched on the document (persistErr) and
// counted in Stats.PersistErrors: the document's persistent state can no
// longer be assumed to converge, so subsequent commits touching it refuse
// consolidation — the failure surfaces on the next commit instead of being
// silently dropped. Site.Sync waits for every acknowledged commit to reach
// the Store; Site.Stop drains the same way before returning.

// persistGroup joins the per-document persists of one multi-document
// commit: the flush that covers the last outstanding document writes the
// journal commit record.
type persistGroup struct {
	id        txn.ID
	remaining int64
	failed    int64 // any Save covering the group failed: leave the txn in-doubt
}

// Sync blocks until every persist pending from already-acknowledged commits
// has reached the Store (and, with a journal configured, their commit
// records are written). Commits acknowledged while Sync is blocked may or
// may not be covered. Tools and tests use it to observe the Store at a
// quiescent point without stopping the site.
func (s *Site) Sync() {
	s.persistMu.Lock()
	for s.persistCount > 0 {
		s.persistCond.Wait()
	}
	s.persistMu.Unlock()
}

// schedulePersistLocked marks the document persist-pending on behalf of one
// terminating transaction and starts the drain worker if none is running.
// Callers hold ds.mu.
func (s *Site) schedulePersistLocked(ds *docState, group *persistGroup) {
	if group == nil && s.Killed() {
		// A corrective (abort-path) persist on a crashed site: the store is
		// abandoned mid-state anyway and recovery catch-up converges it;
		// scheduling would only leave a write racing the wreckage.
		return
	}
	ds.persistPending++
	if group != nil {
		ds.persistGroups = append(ds.persistGroups, group)
	}
	s.persistMu.Lock()
	s.persistCount++
	if !ds.persistActive {
		ds.persistActive = true
		s.workerCount++
		go s.persistWorker(ds)
	}
	s.persistMu.Unlock()
}

// workerDone retires one persist worker and wakes Quiesce waiters.
func (s *Site) workerDone() {
	s.persistMu.Lock()
	s.workerCount--
	if s.workerCount == 0 {
		s.persistCond.Broadcast()
	}
	s.persistMu.Unlock()
}

// Quiesce blocks until no persist worker is running — including, after
// Kill, a worker caught mid Store write. A crashed in-process site shares
// its Store with the instance that will replace it, so the replacement must
// not start catch-up while a dead incarnation's Save could still land over
// the caught-up bytes (a real process crash needs nothing: the workers die
// with the process). Do not call from inside a CrashHooks callback — the
// BeforeSave hook runs on the worker being waited for.
func (s *Site) Quiesce() {
	s.persistMu.Lock()
	for s.workerCount > 0 {
		s.persistCond.Wait()
	}
	s.persistMu.Unlock()
}

// persistDone retires n pending persists and wakes Sync waiters at zero.
func (s *Site) persistDone(n int64) {
	s.persistMu.Lock()
	s.persistCount -= n
	if s.persistCount == 0 {
		s.persistCond.Broadcast()
	}
	s.persistMu.Unlock()
}

// persistWorker flushes one document's pending commits and exits when none
// remain. At most one worker runs per document (persistActive), which is
// what keeps Store writes in commit order.
func (s *Site) persistWorker(ds *docState) {
	defer s.workerDone()
	for {
		// Batching window: let a burst of commits accumulate behind one
		// snapshot. Stop short-circuits the wait so shutdown drains
		// promptly.
		if delay := s.cfg.PersistDelay; delay > 0 {
			timer := time.NewTimer(delay)
			select {
			case <-timer.C:
			case <-s.stopCh:
				timer.Stop()
			}
		}

		ds.mu.Lock()
		if ds.persistPending == 0 {
			ds.persistActive = false
			ds.mu.Unlock()
			return
		}
		covered := ds.persistPending
		groups := ds.persistGroups
		ds.persistPending = 0
		ds.persistGroups = nil
		// The snapshot is the only persist work under the domain mutex: an
		// arena copy of the tree. Marshal and I/O happen below, unlocked.
		snap := ds.doc.Snapshot()
		replIdx := ds.replApplied
		ds.mu.Unlock()

		if hooks := s.cfg.Hooks; hooks != nil && hooks.BeforeSave != nil {
			hooks.BeforeSave(snap.Name)
		}
		if s.Killed() {
			// The site crashed between the commit acknowledgement and the
			// covering write: nothing may reach the Store or the journal —
			// the open intents are exactly the in-doubt transactions a
			// restart must resolve. The accounting (including anything that
			// accumulated behind this flush) is still retired so a Stop
			// after Kill cannot hang on the drain.
			ds.mu.Lock()
			covered += ds.persistPending
			ds.persistPending = 0
			ds.persistGroups = nil
			ds.persistActive = false
			ds.mu.Unlock()
			s.persistDone(covered)
			return
		}

		// Quorum mode: bracket the Save with the replication-position meta
		// record. "pending" before means a crash mid-write leaves the bytes
		// untrusted (recovery falls back to whole-document transfer); "clean"
		// after certifies the saved bytes sit exactly at replIdx, the index
		// incremental catch-up resumes from. replIdx was captured atomically
		// with the snapshot, so the pair is consistent even as the document
		// advances behind this flush.
		var meta store.MetaStore
		if s.replLog != nil {
			meta, _ = s.cfg.Store.(store.MetaStore)
		}
		if meta != nil {
			_ = meta.SaveMeta(snap.Name, fmt.Sprintf("%d pending", replIdx))
		}
		sp := s.m.reg.Span()
		err := s.cfg.Store.Save(snap)
		sp.Done(ds.met.persistSave)
		ds.met.persistBatch.Observe(float64(covered))
		if err == nil && meta != nil {
			_ = meta.SaveMeta(snap.Name, fmt.Sprintf("%d clean", replIdx))
		}
		if err != nil {
			s.m.persistErrors.Inc()
			ds.mu.Lock()
			if ds.persistErr == nil {
				ds.persistErr = fmt.Errorf("sched: persist %s: %w", ds.doc.Name, err)
			}
			ds.mu.Unlock()
		}
		for _, group := range groups {
			if err != nil {
				atomic.StoreInt64(&group.failed, 1)
			}
			if atomic.AddInt64(&group.remaining, -1) == 0 &&
				atomic.LoadInt64(&group.failed) == 0 {
				// Sealing record once every document of the transaction is
				// in the Store. Best effort, like the Save itself: a failed
				// or skipped commit record leaves the transaction in-doubt,
				// which Recover reports.
				_ = s.cfg.Journal.LogCommit(group.id.String())
			}
		}
		s.persistDone(covered)
	}
}
