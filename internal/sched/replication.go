package sched

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"time"

	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xupdate"
)

// This file is the quorum-replication subsystem: the recovery journal's
// O-records turned into a continuously shipped replication log. In
// ReplicationQuorum mode every operation of a read-write transaction runs at
// its document's primary (the lowest-numbered catalog site); at commit the
// primary appends one record per touched document — the transaction's
// applied updates, in order — to an in-memory shipping log (store.ReplLog),
// journals it, and streams the unacked suffix to each follower. The commit
// acknowledges once Config.WriteQuorum replicas (primary included) have
// durably acked, so a partially-down replica set keeps accepting writes —
// the availability the eager mode's write-to-every-copy rule gives up.
//
// Followers apply records strictly in index order (idempotent on overlap,
// NACK-with-NeedFrom on gaps), journal them for durability, advance their
// MVCC chains with the primary's commit timestamp, and serve snapshot reads
// as long as they are not knowingly behind for longer than
// Config.MaxStaleness; past the bound they refuse with CodeReplicaStale and
// the coordinator retries at the primary without marking them suspect. A
// restarted follower resumes from the exact index its store's meta record
// certifies (persist.go writes it around every Save) by fetching the missing
// span from the primary's log; only past the compaction horizon does it fall
// back to whole-document transfer.

// Replication modes for Config.Replication.
const (
	// ReplicationEager is the original write path: every write executes at
	// every replica, and a partially-down replica set refuses writes.
	ReplicationEager = "eager"
	// ReplicationQuorum is primary-routed writes with log-shipping
	// replication and quorum acknowledgement.
	ReplicationQuorum = "quorum"
)

// errQuorumShort reports a commit that consolidated locally — past the point
// of no return: persisted, locks released — but could not gather the write
// quorum for its replication records. The outcome is "commit uncertain", not
// a clean abort: the coordinator must fail the transaction, and convergence
// is restored by follower catch-up or recovery.
var errQuorumShort = errors.New("sched: local commit is consolidated but the write quorum was not reached")

// shipItem is one freshly appended replication record awaiting quorum.
type shipItem struct {
	ds  *docState
	rec store.ReplRecord
}

// primaryOf returns the document's primary site — the first site of its
// (sorted) catalog entry — or -1 for an unknown document.
func (s *Site) primaryOf(doc string) int {
	sites := s.cfg.Catalog.Sites(doc)
	if len(sites) == 0 {
		return -1
	}
	return sites[0]
}

// quorumFor resolves the configured write quorum against a document's
// replica count: explicit Config.WriteQuorum (capped at the replica count),
// or a majority by default.
func (s *Site) quorumFor(replicas int) int {
	q := s.cfg.WriteQuorum
	if q <= 0 {
		q = replicas/2 + 1
	}
	if q > replicas {
		q = replicas
	}
	return q
}

// seedReplPosition initialises a freshly loaded document's replication
// position from the store's meta record. Only a "clean" record is trusted —
// it was written after the Save it describes completed; "pending" means the
// crash hit mid-flush and the bytes sit between two positions, so the
// document is marked untrusted and recovery falls back to whole-document
// transfer. Called before the docState is published, so no lock is needed.
func (s *Site) seedReplPosition(ds *docState) {
	if s.replLog == nil {
		return
	}
	ms, ok := s.cfg.Store.(store.MetaStore)
	if !ok {
		return
	}
	data, ok, err := ms.LoadMeta(ds.doc.Name)
	if err != nil || !ok {
		return // never persisted under quorum mode: position 0
	}
	var idx int64
	var state string
	if _, err := fmt.Sscanf(data, "%d %s", &idx, &state); err != nil || state != "clean" {
		ds.replUntrusted = true
		return
	}
	ds.replApplied = idx
	ds.knownHead = idx
}

// noteWrites records the documents a just-committed read-write transaction
// updated through this site, so subsequent snapshot reads here prefer the
// primary within the staleness window (read-your-writes: a follower may not
// have applied the write yet without knowing it is behind).
func (s *Site) noteWrites(ct *coordTxn) {
	if s.replLog == nil {
		return
	}
	now := time.Now()
	s.rywMu.Lock()
	for i := range ct.t.Ops {
		if ct.t.Ops[i].Kind != txn.OpQuery {
			s.recentWrites[ct.t.Ops[i].Doc] = now
		}
	}
	s.rywMu.Unlock()
}

// recentlyWritten reports whether a read-write transaction submitted through
// this site committed an update to doc within the staleness window.
func (s *Site) recentlyWritten(doc string) bool {
	if s.replLog == nil {
		return false
	}
	s.rywMu.Lock()
	t, ok := s.recentWrites[doc]
	s.rywMu.Unlock()
	return ok && time.Since(t) <= s.cfg.MaxStaleness
}

// replicaStale decides whether this replica must refuse a snapshot read of
// the document: it is a follower that KNOWS it is behind (a ship told it a
// newer head exists) and has been behind for longer than the staleness
// bound — or its primary is believed down while it still lags, so no ship
// will ever close the gap. A follower that is behind within the bound keeps
// serving (bounded staleness); the primary never refuses.
func (s *Site) replicaStale(docName string, ds *docState) (bool, string) {
	if s.replLog == nil {
		return false, ""
	}
	primary := s.primaryOf(docName)
	if primary < 0 || primary == s.id {
		return false, ""
	}
	ds.mu.Lock()
	behind := ds.knownHead > ds.replApplied
	since := ds.staleSince
	ds.mu.Unlock()
	if !behind {
		return false, ""
	}
	if time.Since(since) > s.cfg.MaxStaleness || s.PeerState(primary) == PeerDown {
		return true, fmt.Sprintf("site %d lags %q beyond the staleness bound; retry at primary %d",
			s.id, docName, primary)
	}
	return false, ""
}

// shipQuorum streams freshly appended records to every follower of their
// documents and blocks until each record has the write quorum (the primary
// itself counts as one ack). Called by commitLocal AFTER the local point of
// no return — locks released, persists scheduled — so a shortfall cannot
// roll the commit back; it returns errQuorumShort and the coordinator fails
// the transaction honestly.
func (s *Site) shipQuorum(items []shipItem) error {
	for _, item := range items {
		doc := item.ds.doc.Name
		replicas := s.cfg.Catalog.Sites(doc)
		need := s.quorumFor(len(replicas))
		var followers []int
		for _, f := range replicas {
			if f != s.id {
				followers = append(followers, f)
			}
		}
		acked := make(chan bool, len(followers))
		for _, f := range followers {
			go func(f int) { acked <- s.shipTo(f, item.ds, doc, item.rec.Index) }(f)
		}
		// Block only until the quorum is met: a slow follower delays no
		// commit past it — its ship completes in the background (the buffered
		// channel never blocks the goroutine) and shipTo still advances the
		// acked bookkeeping when it lands.
		acks := 1 // self: appended and journaled locally
		for responded := 0; acks < need && responded < len(followers); responded++ {
			if <-acked {
				acks++
			}
		}
		if acks < need {
			return fmt.Errorf("%w: %q acked by %d of %d replicas (quorum %d)",
				errQuorumShort, doc, acks, len(replicas), need)
		}
	}
	return nil
}

// shipTo sends one follower the unacked suffix of a document's log and
// reports whether the follower's durable position reached upTo. A gap NACK
// (the follower is further behind than our acked bookkeeping says) earns
// one in-call rewind from the index the follower names.
func (s *Site) shipTo(follower int, ds *docState, doc string, upTo int64) bool {
	sp := s.m.reg.Span()
	ds.mu.Lock()
	acked := ds.replAcked[follower]
	ds.mu.Unlock()
	ack, ok := s.shipSpan(follower, doc, acked)
	switch {
	case ok && !ack.OK && ack.NeedFrom > 0 && ack.NeedFrom <= acked:
		// Gap NACK: the follower is behind where the span started.
		ack, ok = s.shipSpan(follower, doc, ack.NeedFrom-1)
	case ok && ack.OK && ack.Applied < upTo && ack.Applied < acked:
		// OK ack below our bookkeeping: the follower is further behind than
		// replAcked claimed (it restarted, or the bookkeeping is from a
		// previous incarnation). Re-ship from its actual position.
		ack, ok = s.shipSpan(follower, doc, ack.Applied)
	}
	if sp.Active() {
		s.m.replShip.With(strconv.Itoa(follower)).ObserveDuration(sp.Elapsed())
	}
	if !ok || !ack.OK {
		return false
	}
	ds.mu.Lock()
	if ds.replAcked == nil {
		ds.replAcked = make(map[int]int64)
	}
	prev := ds.replAcked[follower]
	if ack.Applied > prev {
		ds.replAcked[follower] = ack.Applied
		s.m.logShipped.Add(ack.Applied - prev)
	}
	ds.mu.Unlock()
	return ack.Applied >= upTo
}

// shipSpan sends the retained records after `after` to one follower. When
// the span has fallen past the compaction horizon the ship degrades to a
// head-only notification — the follower learns how far behind it is (and
// starts its staleness clock) but converges through restart catch-up.
func (s *Site) shipSpan(follower int, doc string, after int64) (transport.LogAck, bool) {
	recs, retained := s.replLog.Since(doc, after)
	if !retained {
		recs = nil
	}
	resp, err := s.send(context.Background(), follower, transport.LogShipReq{
		Doc: doc, From: s.id, Primary: s.id,
		Head: s.replLog.Head(doc), Records: recs,
	})
	if err != nil {
		return transport.LogAck{}, false
	}
	ack, ok := resp.(transport.LogAck)
	return ack, ok
}

// handleLogShip is the follower half of the shipping protocol: record how
// far ahead the primary is, apply the in-order span, journal it (the
// durability the primary's quorum counts), and ack the new applied index.
// Records at or below the applied index are overlap from a resend and are
// skipped; a span starting past applied+1 is NACKed with NeedFrom so the
// primary rewinds.
func (s *Site) handleLogShip(m transport.LogShipReq) transport.LogAck {
	ack := transport.LogAck{Site: s.id}
	if s.replLog == nil {
		ack.Error = fmt.Sprintf("site %d is not in quorum-replication mode", s.id)
		return ack
	}
	ds := s.doc(m.Doc)
	if ds == nil {
		ack.Error = fmt.Sprintf("site %d does not hold %q", s.id, m.Doc)
		return ack
	}
	// Head bookkeeping happens BEFORE the lag hook and the apply: even if
	// the apply stalls, this replica now knows it is behind, which is what
	// the bounded-staleness refusal keys on.
	ds.mu.Lock()
	if m.Head > ds.knownHead {
		ds.knownHead = m.Head
	}
	if ds.knownHead > ds.replApplied && ds.staleSince.IsZero() {
		ds.staleSince = time.Now()
	}
	ack.Applied = ds.replApplied
	ds.mu.Unlock()
	// The follower's clock observes the shipped commit timestamps NOW, before
	// the (possibly slow) apply: a read-only transaction beginning here while
	// the apply lags must get a begin timestamp that covers the primary's
	// commit, or the staleness reroute to the primary would still pin the old
	// version.
	var shipTS txn.TS
	for _, rec := range m.Records {
		if rec.TS > shipTS {
			shipTS = rec.TS
		}
	}
	if shipTS > 0 {
		s.mu.Lock()
		s.clock.Observe(shipTS)
		s.mu.Unlock()
	}
	if !s.Ready() {
		ack.Error = fmt.Sprintf("site %d is recovering", s.id)
		return ack
	}
	if hooks := s.cfg.Hooks; hooks != nil && hooks.BeforeReplApply != nil {
		hooks.BeforeReplApply(m.Doc, m.From)
	}

	var fresh []store.ReplRecord
	var maxTS txn.TS
	asp := s.m.reg.Span()
	ds.mu.Lock()
	for _, rec := range m.Records {
		if rec.Index <= ds.replApplied {
			continue
		}
		if rec.Index != ds.replApplied+1 {
			ack.Applied = ds.replApplied
			ack.NeedFrom = ds.replApplied + 1
			ds.mu.Unlock()
			return ack
		}
		if err := applyRecordLocked(ds, rec); err != nil {
			ack.Applied = ds.replApplied
			ack.Error = fmt.Sprintf("site %d: apply record %d of %q: %v", s.id, rec.Index, m.Doc, err)
			ds.mu.Unlock()
			return ack
		}
		ds.replApplied = rec.Index
		if rec.TS > maxTS {
			maxTS = rec.TS
		}
		fresh = append(fresh, rec)
	}
	ack.Applied = ds.replApplied
	if ds.replApplied >= ds.knownHead {
		ds.staleSince = time.Time{}
	}
	ds.mu.Unlock()

	if len(fresh) > 0 {
		s.m.logApplied.Add(int64(len(fresh)))
		asp.Done(ds.met.replApply)
		s.mu.Lock()
		s.clock.Observe(maxTS)
		s.mu.Unlock()
		ds.versions.Advance(maxTS)
		for _, rec := range fresh {
			// Mirror the records into this replica's own shipping log and
			// journal: the journal append is the durable ack the primary's
			// quorum counts, and the mirrored log lets this site serve
			// incremental catch-up (or survive its own restart) too.
			s.replLog.Seed(m.Doc, rec)
			if j := s.cfg.Journal; j != nil && !s.Killed() {
				if payload, err := store.EncodeReplRecord(rec); err == nil {
					_ = j.LogRepl(m.Doc, rec.Index, payload)
				}
			}
		}
		ds.mu.Lock()
		s.schedulePersistLocked(ds, nil)
		ds.mu.Unlock()
	}
	ack.OK = true
	return ack
}

// handleLogFetch serves a follower's catch-up request: the retained records
// after the index it resumes from, or PastHorizon when compaction already
// discarded part of that span.
func (s *Site) handleLogFetch(m transport.LogFetchReq) transport.LogFetchResp {
	if s.replLog == nil || !s.Ready() || s.doc(m.Doc) == nil {
		return transport.LogFetchResp{}
	}
	head := s.replLog.Head(m.Doc)
	recs, ok := s.replLog.Since(m.Doc, m.After)
	if !ok {
		return transport.LogFetchResp{Found: true, PastHorizon: true, Head: head}
	}
	return transport.LogFetchResp{Found: true, Head: head, Records: recs}
}

// applyRecordLocked applies one replication record's updates to the
// document, discarding the undo records — replicated effects are already
// committed and are never rolled back. Callers hold ds.mu.
func applyRecordLocked(ds *docState, rec store.ReplRecord) error {
	for _, op := range rec.Ops {
		if op.Kind != txn.OpUpdate || op.Update == nil {
			continue
		}
		if _, _, err := xupdate.Apply(op.Update, ds.doc, ds.guide); err != nil {
			return err
		}
	}
	return nil
}

// QuorumReplication reports whether the site runs in quorum-replication
// mode; internal/recovery branches its catch-up strategy on it.
func (s *Site) QuorumReplication() bool { return s.replLog != nil }

// ReplCatchUp attempts incremental catch-up of one document on a recovering
// site: resume from the position the store's meta record certifies, fetch
// the missing span — from this site's own journal-reseeded log when it is
// the primary, from the primary otherwise — and apply it. It returns the
// number of records applied and whether the document is now current; false
// means the caller must fall back to whole-document transfer (untrusted
// position, span past the compaction horizon, or an unreachable primary).
func (s *Site) ReplCatchUp(ctx context.Context, doc string) (int, bool) {
	if s.replLog == nil || s.Ready() {
		return 0, false
	}
	ds := s.doc(doc)
	if ds == nil {
		return 0, false
	}
	ds.mu.Lock()
	after := ds.replApplied
	untrusted := ds.replUntrusted
	ds.mu.Unlock()
	if untrusted {
		return 0, false
	}
	var recs []store.ReplRecord
	var head int64
	if primary := s.primaryOf(doc); primary == s.id {
		var ok bool
		recs, ok = s.replLog.Since(doc, after)
		if !ok {
			return 0, false
		}
		head = s.replLog.Head(doc)
	} else {
		resp, err := s.Call(ctx, primary, transport.LogFetchReq{Doc: doc, After: after})
		if err != nil {
			return 0, false
		}
		fr, ok := resp.(transport.LogFetchResp)
		if !ok || !fr.Found || fr.PastHorizon {
			return 0, false
		}
		recs, head = fr.Records, fr.Head
	}

	var n int
	var maxTS txn.TS
	ds.mu.Lock()
	for _, rec := range recs {
		if rec.Index <= ds.replApplied {
			continue
		}
		if rec.Index != ds.replApplied+1 || applyRecordLocked(ds, rec) != nil {
			ds.mu.Unlock()
			return n, false
		}
		ds.replApplied = rec.Index
		if rec.TS > maxTS {
			maxTS = rec.TS
		}
		n++
	}
	if head > ds.knownHead {
		ds.knownHead = head
	}
	current := ds.replApplied >= ds.knownHead
	if current {
		ds.staleSince = time.Time{}
	}
	ds.mu.Unlock()
	if n > 0 {
		s.m.catchupRecords.Add(int64(n))
		s.mu.Lock()
		s.clock.Observe(maxTS)
		s.mu.Unlock()
		ds.versions.Advance(maxTS)
		for _, rec := range recs {
			s.replLog.Seed(doc, rec)
			if j := s.cfg.Journal; j != nil && !s.Killed() {
				if payload, err := store.EncodeReplRecord(rec); err == nil {
					_ = j.LogRepl(doc, rec.Index, payload)
				}
			}
		}
		ds.mu.Lock()
		s.schedulePersistLocked(ds, nil)
		ds.mu.Unlock()
	}
	return n, current
}

// ResetReplPosition pins a freshly transferred document at the given
// replication-log position: the whole-document fallback established the
// bytes, so the incremental protocol resumes just past them. The local log
// window restarts empty at that head (there is no record history behind a
// full transfer).
func (s *Site) ResetReplPosition(doc string, head int64) {
	if s.replLog == nil {
		return
	}
	ds := s.doc(doc)
	if ds == nil {
		return
	}
	ds.mu.Lock()
	ds.replApplied = head
	ds.replUntrusted = false
	if head > ds.knownHead {
		ds.knownHead = head
	}
	ds.staleSince = time.Time{}
	ds.mu.Unlock()
	s.replLog.Reset(doc, head)
	if ms, ok := s.cfg.Store.(store.MetaStore); ok && !s.Killed() {
		_ = ms.SaveMeta(doc, fmt.Sprintf("%d clean", head))
	}
}
