package sched

import (
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// quorumCluster builds n sites in quorum-replication mode with optional
// extra config mutation.
func quorumCluster(t *testing.T, n int, mutate func(*Config)) []*Site {
	t.Helper()
	sites, _ := newCluster(t, n, func(cfg *Config) {
		cfg.Replication = ReplicationQuorum
		if mutate != nil {
			mutate(cfg)
		}
	})
	return sites
}

// TestReplicationLogShipToFollower: a committed update at the primary is
// shipped, applied at the follower, and both trees converge.
func TestReplicationLogShipToFollower(t *testing.T) {
	sites := quorumCluster(t, 2, nil)
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
	}

	res, err := sites[0].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change,
			Target: "//person[id='4']/name", Value: "Zoe"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}

	// The write quorum (majority of 2 = 2) includes the follower, so the
	// applied effects are there by the time the commit acknowledged.
	d0, err := sites[0].Document("d1")
	if err != nil {
		t.Fatal(err)
	}
	d1, err := sites[1].Document("d1")
	if err != nil {
		t.Fatal(err)
	}
	if d0.String() != d1.String() {
		t.Fatalf("follower diverged:\nprimary  %s\nfollower %s", d0, d1)
	}
	if got := sites[0].Stats().LogRecordsShipped; got < 1 {
		t.Fatalf("LogRecordsShipped = %d, want >= 1", got)
	}
	if got := sites[1].Stats().LogRecordsApplied; got < 1 {
		t.Fatalf("LogRecordsApplied = %d, want >= 1", got)
	}
}

// TestReplicationFollowerStaleRefusal: a follower that knows it lags beyond
// MaxStaleness refuses the snapshot read and the coordinator retries at the
// primary — the read succeeds and observes the committed write.
func TestReplicationFollowerStaleRefusal(t *testing.T) {
	const lag = 150 * time.Millisecond
	sites := quorumCluster(t, 2, func(cfg *Config) {
		cfg.WriteQuorum = 1 // commit must not wait out the lagging follower
		cfg.MaxStaleness = 5 * time.Millisecond
		if cfg.SiteID == 1 {
			cfg.Hooks = &CrashHooks{BeforeReplApply: func(string, int) { time.Sleep(lag) }}
		}
	})
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
	}

	res, err := sites[0].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change,
			Target: "//person[id='4']/name", Value: "Zoe"}),
	})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("commit: %v / %+v", err, res)
	}

	// Let the ship's head notification land at the follower (it records the
	// lag BEFORE the delayed apply) and the staleness bound expire.
	time.Sleep(30 * time.Millisecond)

	ro, err := sites[1].SubmitReadOnly([]txn.Operation{
		txn.NewQuery("d1", "//person[id='4']/name"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ro.State != txn.Committed {
		t.Fatalf("read-only state = %v (%s)", ro.State, ro.Reason)
	}
	if len(ro.Results[0]) != 1 || ro.Results[0][0] != "Zoe" {
		t.Fatalf("stale read served: %v (want the primary's committed value)", ro.Results[0])
	}
	if got := sites[1].Stats().ReplStaleRefusals; got < 1 {
		t.Fatalf("ReplStaleRefusals = %d, want >= 1", got)
	}
}

// TestReplicationReadYourWrites: a read-only transaction at the site that
// just committed a write is routed to the primary even though the local
// follower is still within the staleness bound (and therefore would serve
// the stale version).
func TestReplicationReadYourWrites(t *testing.T) {
	const lag = 150 * time.Millisecond
	sites := quorumCluster(t, 2, func(cfg *Config) {
		cfg.WriteQuorum = 1
		cfg.MaxStaleness = 10 * time.Second // follower never refuses
		if cfg.SiteID == 1 {
			cfg.Hooks = &CrashHooks{BeforeReplApply: func(string, int) { time.Sleep(lag) }}
		}
	})
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
	}

	// The write is submitted THROUGH site 1 (the follower); quorum routing
	// executes it at the primary, site 0.
	res, err := sites[1].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change,
			Target: "//person[id='4']/name", Value: "Zoe"}),
	})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("commit: %v / %+v", err, res)
	}

	// An immediate read-only transaction at site 1 must observe the write:
	// the local replica has not applied it yet, so read-your-writes pinning
	// must route the read to the primary.
	ro, err := sites[1].SubmitReadOnly([]txn.Operation{
		txn.NewQuery("d1", "//person[id='4']/name"),
	})
	if err != nil || ro.State != txn.Committed {
		t.Fatalf("read-only: %v / %+v", err, ro)
	}
	if len(ro.Results[0]) != 1 || ro.Results[0][0] != "Zoe" {
		t.Fatalf("read-your-writes violated: %v", ro.Results[0])
	}
}

// TestReplicationShipRewindOnGap: a follower that missed a span (simulated
// by seeding the primary's acked bookkeeping too far ahead) NACKs with
// NeedFrom and the primary rewinds within the same commit.
func TestReplicationShipRewindOnGap(t *testing.T) {
	sites := quorumCluster(t, 2, nil)
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
	}
	// First commit replicates index 1 normally.
	if res, err := sites[0].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change,
			Target: "//person[id='4']/name", Value: "One"}),
	}); err != nil || res.State != txn.Committed {
		t.Fatalf("commit 1: %v / %+v", err, res)
	}
	// Corrupt the primary's view of the follower's position: pretend it has
	// acked far ahead, so the next ship sends an empty span with a gap.
	ds := sites[0].doc("d1")
	ds.mu.Lock()
	ds.replAcked[1] = 5
	ds.mu.Unlock()

	if res, err := sites[0].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change,
			Target: "//person[id='4']/name", Value: "Two"}),
	}); err != nil || res.State != txn.Committed {
		t.Fatalf("commit 2 (rewind path): %v / %+v", err, res)
	}
	d0, _ := sites[0].Document("d1")
	d1, _ := sites[1].Document("d1")
	if d0.String() != d1.String() {
		t.Fatalf("follower diverged after rewind:\nprimary  %s\nfollower %s", d0, d1)
	}
}

// TestReplicationEagerModeUnchanged: without Replication set the legacy
// write path is untouched — no shipping log exists and writes still execute
// at every replica directly.
func TestReplicationEagerModeUnchanged(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
	}
	if sites[0].QuorumReplication() {
		t.Fatal("replication log allocated without quorum mode")
	}
	res, err := sites[0].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Change,
			Target: "//person[id='4']/name", Value: "Zoe"}),
	})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("commit: %v / %+v", err, res)
	}
	if got := sites[0].Stats().LogRecordsShipped; got != 0 {
		t.Fatalf("LogRecordsShipped = %d in eager mode", got)
	}
	d1, err := sites[1].Document("d1")
	if err != nil {
		t.Fatal(err)
	}
	if want := "Zoe"; !contains(d1, want) {
		t.Fatalf("replica missing eager write: %s", d1)
	}
}

func contains(doc *xmltree.Document, sub string) bool {
	s := doc.String()
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
