package sched

import (
	"fmt"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/lock"
	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

const peopleXML = `<people>
  <person><id>4</id><name>Ana</name></person>
  <person><id>7</id><name>Bruno</name></person>
</people>`

const productsXML = `<products>
  <product><id>4</id><description>Chair</description><price>50.00</price></product>
  <product><id>14</id><description>Desk</description><price>120.00</price></product>
</products>`

func productSpec(id, desc, price string) *xupdate.NodeSpec {
	return &xupdate.NodeSpec{Name: "product", Children: []*xupdate.NodeSpec{
		{Name: "id", Text: id},
		{Name: "description", Text: desc},
		{Name: "price", Text: price},
	}}
}

func personSpec(id, name string) *xupdate.NodeSpec {
	return &xupdate.NodeSpec{Name: "person", Children: []*xupdate.NodeSpec{
		{Name: "id", Text: id},
		{Name: "name", Text: name},
	}}
}

// newCluster builds n in-process sites sharing a catalog and network. The
// protocol comes from DTX_PROTOCOL when set — the nightly protocol-matrix CI
// job runs the whole suite once per protocol that way — and is the scheduler
// default (xdgl) otherwise.
func newCluster(t *testing.T, n int, mutate func(*Config)) ([]*Site, *transport.Network) {
	t.Helper()
	return newClusterWithProtocol(t, n, os.Getenv("DTX_PROTOCOL"), mutate)
}

// newClusterWithProtocol pins the cluster to a named protocol, so
// cross-protocol tests take the protocol as a table parameter instead of
// hardcoding one in the mutate closure. "" keeps the default; "adaptive"
// starts from the default and enables the run-time adaptive policy.
func newClusterWithProtocol(t *testing.T, n int, protocol string, mutate func(*Config)) ([]*Site, *transport.Network) {
	t.Helper()
	net := transport.NewNetwork()
	catalog := replica.NewCatalog()
	ids := make([]int, n)
	for i := range ids {
		ids[i] = i
	}
	sites := make([]*Site, n)
	for i := 0; i < n; i++ {
		cfg := Config{
			SiteID:        i,
			Sites:         ids,
			Catalog:       catalog,
			RetryInterval: 5 * time.Millisecond,
		}
		switch protocol {
		case "":
		case "adaptive":
			cfg.Adaptive = AdaptiveConfig{Enabled: true}
		default:
			p, err := lock.ByName(protocol)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Protocol = p
		}
		if mutate != nil {
			mutate(&cfg)
		}
		sites[i] = New(cfg)
		if err := sites[i].AttachNetwork(net); err != nil {
			t.Fatal(err)
		}
	}
	t.Cleanup(func() {
		for _, s := range sites {
			s.Stop()
		}
	})
	return sites, net
}

func addDoc(t *testing.T, s *Site, name, xml string) {
	t.Helper()
	doc, err := xmltree.ParseString(name, xml)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddDocument(doc); err != nil {
		t.Fatal(err)
	}
}

func TestSingleSiteQueryAndUpdate(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	res, err := s.Submit([]txn.Operation{
		txn.NewQuery("d2", "//product[id='4']/description"),
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Insert, Target: "/products",
			Pos: xmltree.Into, New: productSpec("13", "Mouse", "10.30")}),
		txn.NewQuery("d2", "//product/description"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}
	if len(res.Results[0]) != 1 || res.Results[0][0] != "Chair" {
		t.Fatalf("op0 results = %v", res.Results[0])
	}
	if len(res.Results[2]) != 3 {
		t.Fatalf("op2 results = %v (insert not visible to own txn)", res.Results[2])
	}
	// Committed data persisted through the DataManager; drain the async
	// persist pipeline before observing the Store.
	s.Sync()
	stored, err := s.cfg.Store.Load("d2")
	if err != nil {
		t.Fatal(err)
	}
	if stored.Len() != 1+3*4 {
		t.Fatalf("persisted doc has %d nodes, want 13", stored.Len())
	}
	st := s.Stats()
	if st.TxnsCommitted != 1 || st.TxnsAborted != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSubmitValidation(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	if _, err := s.Submit(nil); err == nil {
		t.Error("empty transaction accepted")
	}
	if _, err := s.Submit([]txn.Operation{{Kind: txn.OpQuery, Query: "/x"}}); err == nil {
		t.Error("operation without document accepted")
	}
	if _, err := s.Submit([]txn.Operation{{Kind: txn.OpUpdate, Doc: "d"}}); err == nil {
		t.Error("update without body accepted")
	}
	if _, err := s.Submit([]txn.Operation{txn.NewUpdate("d", &xupdate.Update{Kind: xupdate.Rename, Target: "/x"})}); err == nil {
		t.Error("invalid update accepted")
	}
}

func TestUnknownDocumentFailsTxn(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	res, err := sites[0].Submit([]txn.Operation{txn.NewQuery("ghost", "/x")})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Failed {
		t.Fatalf("state = %v, want failed", res.State)
	}
}

func TestStrict2PLBlocksConflictingReader(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) { c.OpDelay = 30 * time.Millisecond })
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	// Writer: change price, then (after OpDelay) a second op keeps the
	// transaction alive while the reader tries to look at the price.
	writerDone := make(chan *Result, 1)
	readerDone := make(chan *Result, 1)
	var writerCommitted time.Time
	go func() {
		res, err := s.Submit([]txn.Operation{
			txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "99.99"}),
			txn.NewQuery("d2", "//product/id"),
		})
		if err != nil {
			t.Error(err)
		}
		writerCommitted = time.Now()
		writerDone <- res
	}()
	time.Sleep(10 * time.Millisecond) // let the writer take its X lock
	res, err := s.Submit([]txn.Operation{
		txn.NewQuery("d2", "//product[id='4']/price"),
	})
	readerAt := time.Now()
	if err != nil {
		t.Fatal(err)
	}
	readerDone <- res

	w := <-writerDone
	r := <-readerDone
	if w.State != txn.Committed || r.State != txn.Committed {
		t.Fatalf("writer=%v reader=%v", w.State, r.State)
	}
	// Read-committed isolation: the reader must have seen the committed
	// value, never the pending one mid-transaction.
	if len(r.Results[0]) != 1 || r.Results[0][0] != "99.99" {
		t.Fatalf("reader saw %v, want the committed 99.99", r.Results[0])
	}
	if readerAt.Before(writerCommitted) {
		t.Fatal("reader finished before writer committed — 2PL violated")
	}
}

func TestAbortUndoesEverything(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	before, _ := s.Document("d2")

	// Second op targets a missing document, failing the transaction; the
	// first op's insert must be rolled back.
	res, err := s.Submit([]txn.Operation{
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Insert, Target: "/products",
			Pos: xmltree.Into, New: productSpec("99", "Ghost", "0")}),
		txn.NewQuery("nowhere", "/x"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Failed {
		t.Fatalf("state = %v", res.State)
	}
	after, _ := s.Document("d2")
	if !xmltree.Equal(before, after) {
		t.Fatalf("abort left effects:\n%s", after.String())
	}
	// All locks released.
	s.mu.Lock()
	grants := s.docs["d2"].table.GrantCount()
	s.mu.Unlock()
	if grants != 0 {
		t.Fatalf("%d grants leaked", grants)
	}
}

func TestReplicatedUpdateAppliesAtAllSites(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
	}
	// Both sites hold d1 (AddDocument registered each in the catalog).
	res, err := sites[0].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
			Pos: xmltree.Into, New: personSpec("22", "Patricia")}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}
	for i, s := range sites {
		doc, err := s.Document("d1")
		if err != nil {
			t.Fatal(err)
		}
		if len(doc.Root.Children) != 3 {
			t.Fatalf("site %d has %d persons, want 3", i, len(doc.Root.Children))
		}
	}
}

func TestRemoteOnlyDocument(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	addDoc(t, sites[1], "d2", productsXML) // only site 1 holds d2
	res, err := sites[0].Submit([]txn.Operation{
		txn.NewQuery("d2", "//product[id='14']/description"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}
	if len(res.Results[0]) != 1 || res.Results[0][0] != "Desk" {
		t.Fatalf("results = %v", res.Results[0])
	}
	if sites[0].Stats().RemoteOpsSent == 0 {
		t.Fatal("operation did not go remote")
	}
	if sites[1].Stats().RemoteOpsProcessed == 0 {
		t.Fatal("participant processed nothing")
	}
}

// TestScenario24 reproduces the worked example of §2.4: d1 on both sites,
// d2 only on s2; t1 = (query d1, insert into d2), t2 = (query d2, insert
// into d1). Their second operations block on each other's first-operation
// locks, a distributed deadlock arises, the most recent transaction (t2) is
// aborted, and t1 commits. Afterwards t3 executes cleanly.
func TestScenario24(t *testing.T) {
	sites, _ := newCluster(t, 2, func(c *Config) { c.OpDelay = 40 * time.Millisecond })
	s1, s2 := sites[0], sites[1]
	addDoc(t, s1, "d1", peopleXML)
	addDoc(t, s2, "d1", peopleXML)
	addDoc(t, s2, "d2", productsXML)

	var wg sync.WaitGroup
	var res1, res2 *Result
	wg.Add(2)
	go func() {
		defer wg.Done()
		var err error
		res1, err = s1.Submit([]txn.Operation{
			txn.NewQuery("d1", "//person"),
			txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Insert, Target: "/products",
				Pos: xmltree.Into, New: productSpec("13", "Mouse", "10.30")}),
		})
		if err != nil {
			t.Error(err)
		}
	}()
	go func() {
		defer wg.Done()
		time.Sleep(5 * time.Millisecond) // t2 starts just after t1: t2 is newer
		var err error
		res2, err = s2.Submit([]txn.Operation{
			txn.NewQuery("d2", "//product"),
			txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
				Pos: xmltree.Into, New: personSpec("22", "Patricia")}),
		})
		if err != nil {
			t.Error(err)
		}
	}()

	// Drive the deadlock detector until the tangle resolves.
	detectorStop := make(chan struct{})
	detectorDone := make(chan struct{})
	go func() {
		defer close(detectorDone)
		for i := 0; i < 2000; i++ {
			s1.CheckDeadlocks()
			time.Sleep(5 * time.Millisecond)
			select {
			case <-detectorStop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(detectorStop)
	<-detectorDone

	if res1.State != txn.Committed {
		t.Fatalf("t1 = %v (%s), want committed", res1.State, res1.Reason)
	}
	if res2.State != txn.Aborted {
		t.Fatalf("t2 = %v (%s), want aborted (deadlock victim)", res2.State, res2.Reason)
	}
	// t2's effects are fully undone: d2 has the new Mouse from t1, d1 has
	// no Patricia.
	d1, _ := s1.Document("d1")
	if len(d1.Root.Children) != 2 {
		t.Fatalf("d1 at s1 has %d persons, want 2", len(d1.Root.Children))
	}
	d2, _ := s2.Document("d2")
	if len(d2.Root.Children) != 3 {
		t.Fatalf("d2 at s2 has %d products, want 3", len(d2.Root.Children))
	}

	// The client resubmits its work as t3, which now runs cleanly.
	res3, err := s2.Submit([]txn.Operation{
		txn.NewQuery("d2", "//product[id='14']"),
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Insert, Target: "/products",
			Pos: xmltree.Into, New: productSpec("32", "Keyboard", "9.90")}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res3.State != txn.Committed {
		t.Fatalf("t3 = %v (%s)", res3.State, res3.Reason)
	}
}

func TestConcurrentInsertsAllCommitExactlyOnce(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) { c.DeadlockInterval = 10 * time.Millisecond })
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	const n = 24
	var wg sync.WaitGroup
	committed := make([]bool, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				res, err := s.Submit([]txn.Operation{
					txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
						Pos: xmltree.Into, New: personSpec(fmt.Sprintf("n%d", i), fmt.Sprintf("P%d", i))}),
				})
				if err != nil {
					t.Error(err)
					return
				}
				if res.State == txn.Committed {
					committed[i] = true
					return
				}
				// Deadlock victims retry, as the paper leaves resubmission
				// to the client.
			}
		}(i)
	}
	wg.Wait()
	doc, _ := s.Document("d1")
	if got := len(doc.Root.Children); got != 2+n {
		t.Fatalf("persons = %d, want %d", got, 2+n)
	}
	for i, ok := range committed {
		if !ok {
			t.Fatalf("client %d never committed", i)
		}
	}
}

func TestLivenessUnderContention(t *testing.T) {
	// Mixed readers/writers over a replicated document with background
	// deadlock detection: every transaction must terminate.
	sites, _ := newCluster(t, 2, func(c *Config) {
		c.DeadlockInterval = 8 * time.Millisecond
		c.OpDelay = time.Millisecond
	})
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
		addDoc(t, s, "d2", productsXML)
	}
	const clients = 10
	var wg sync.WaitGroup
	outcomes := make(chan txn.State, clients*3)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			site := sites[c%2]
			for k := 0; k < 3; k++ {
				var ops []txn.Operation
				if k%2 == 0 {
					ops = []txn.Operation{
						txn.NewQuery("d1", "//person/name"),
						txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change,
							Target: "//product[id='4']/price", Value: fmt.Sprintf("%d.00", c)}),
					}
				} else {
					ops = []txn.Operation{
						txn.NewQuery("d2", "//product/price"),
						txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
							Pos: xmltree.Into, New: personSpec(fmt.Sprintf("c%dk%d", c, k), "X")}),
					}
				}
				res, err := site.Submit(ops)
				if err != nil {
					t.Error(err)
					return
				}
				outcomes <- res.State
			}
		}(c)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("liveness violated: transactions did not all terminate")
	}
	close(outcomes)
	var commits, aborts int
	for st := range outcomes {
		switch st {
		case txn.Committed:
			commits++
		case txn.Aborted:
			aborts++
		default:
			t.Fatalf("unexpected state %v", st)
		}
	}
	if commits == 0 {
		t.Fatal("nothing committed under contention")
	}
	t.Logf("commits=%d aborts=%d", commits, aborts)
	// Replicas converge for committed state: compare site documents.
	d0, _ := sites[0].Document("d1")
	d1, _ := sites[1].Document("d1")
	if !xmltree.Equal(d0, d1) {
		t.Fatal("replicas diverged")
	}
}

// TestProtocolSwap runs the same read/write transaction under every static
// protocol on the granularity ladder, taking the protocol as a table
// parameter rather than hardcoding one configuration.
func TestProtocolSwap(t *testing.T) {
	for _, proto := range []string{"xdgl", "node2pl", "doclock"} {
		t.Run(proto, func(t *testing.T) {
			sites, _ := newClusterWithProtocol(t, 1, proto, nil)
			s := sites[0]
			addDoc(t, s, "d2", productsXML)
			res, err := s.Submit([]txn.Operation{
				txn.NewQuery("d2", "//product/price"),
				txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "1.00"}),
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.State != txn.Committed {
				t.Fatalf("state = %v (%s)", res.State, res.Reason)
			}
			if s.Protocol().Name() != proto {
				t.Fatalf("configured protocol = %s, want %s", s.Protocol().Name(), proto)
			}
		})
	}
}

func TestStopUnblocksWaiters(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) { c.OpDelay = 200 * time.Millisecond })
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	// Long-running writer keeps an X lock while its second op sleeps.
	go s.Submit([]txn.Operation{
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Change, Target: "//price", Value: "0"}),
		txn.NewQuery("d2", "//product"),
	})
	time.Sleep(20 * time.Millisecond)
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Submit([]txn.Operation{txn.NewQuery("d2", "//price")})
	}()
	time.Sleep(20 * time.Millisecond)
	s.Stop()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("waiter not unblocked by Stop")
	}
}
