package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/txn"
)

// Session is an interactive coordinator-side transaction: operations are
// executed one at a time with Exec, each returning its result immediately so
// the client can branch on what it read while the locks of every prior step
// are still held (strict 2PL — nothing is released before the terminal
// commit or abort). A Session is bound to the context passed to Begin:
// cancelling it aborts the transaction and releases its locks at every
// participant site, whether a step is in flight or the client is between
// operations.
//
// A Session is not safe for concurrent steps — like database/sql.Tx, one
// goroutine drives it. Cancellation and deadlock-victim signals arrive from
// other goroutines and are serialised internally.
type Session struct {
	site     *Site
	ctx      context.Context
	ct       *coordTxn
	readOnly bool // immutable after begin: steps go through the MVCC snapshot path

	mu     sync.Mutex
	inStep bool
	done   bool
	state  txn.State
	err    error // terminal cause; nil after a successful commit
}

// Begin opens an interactive transaction with this site as coordinator.
// The context governs the whole transaction: when it is cancelled, the
// transaction is aborted (Algorithm 6) and every lock it holds anywhere in
// the cluster is released.
func (s *Site) Begin(ctx context.Context) (*Session, error) {
	return s.begin(ctx, false)
}

// BeginReadOnly opens an interactive read-only transaction with this site as
// coordinator. Its begin timestamp (the Lamport timestamp every transaction
// resolves at begin) doubles as the snapshot timestamp: each query pins and
// reads the newest committed version of its document at or below it, taking
// no locks and adding no wait-for edges, so read-only transactions can never
// deadlock with writers or be chosen as deadlock victims. Updates are refused
// with ErrReadOnly (non-terminal — the session stays live); Commit is the
// trivially vacuous release of the pinned versions.
func (s *Site) BeginReadOnly(ctx context.Context) (*Session, error) {
	return s.begin(ctx, true)
}

func (s *Site) begin(ctx context.Context, readOnly bool) (*Session, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	select {
	case <-s.stopCh:
		return nil, fmt.Errorf("sched: site %d is stopped", s.id)
	default:
	}
	if !s.Ready() {
		// A recovering site must not coordinate either: an acknowledged
		// write would race the catch-up that replaces its documents.
		return nil, fmt.Errorf("%w: site %d is recovering", txn.ErrReplicaUnavailable, s.id)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %w", txn.ErrAborted, context.Cause(ctx))
	}
	sess := &Session{site: s, ctx: ctx, ct: s.beginTxn(), readOnly: readOnly}
	go sess.watch()
	return sess, nil
}

// ID returns the transaction identifier.
func (sess *Session) ID() txn.ID { return sess.ct.t.ID }

// ReadOnly reports whether the session was opened with BeginReadOnly.
func (sess *Session) ReadOnly() bool { return sess.readOnly }

// step returns the executor for one operation of this session: the locking
// execOp for read-write transactions, the pin-and-read snapshot path for
// read-only ones.
func (sess *Session) step() func(context.Context, *coordTxn, int) error {
	if sess.readOnly {
		return sess.site.execSnapshotOp
	}
	return sess.site.execOp
}

// Done reports whether the transaction has reached a terminal state.
func (sess *Session) Done() bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.done
}

// Err returns the terminal cause: nil while the transaction is running or
// after it committed, the typed abort/failure error otherwise.
func (sess *Session) Err() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.err
}

// watch aborts the transaction when its context is cancelled (or the site
// stops) while no step is in flight; an in-flight step observes the same
// conditions in its own wait loop. Exactly one of the three arms fires.
func (sess *Session) watch() {
	select {
	case <-sess.ct.finished:
	case <-sess.ctx.Done():
		sess.cancel(fmt.Errorf("%w: %w", txn.ErrAborted, context.Cause(sess.ctx)))
	case <-sess.site.stopCh:
		sess.cancel(fmt.Errorf("%w: site stopping", txn.ErrAborted))
	}
}

// cancel terminates an idle session. If a step is in flight it does nothing:
// the step's own context/stop checks terminate the session, including the
// post-step re-check that closes the race with a cancellation arriving just
// as the step completes.
func (sess *Session) cancel(cause error) {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.done || sess.inStep {
		return
	}
	sess.terminateLocked(cause)
}

// interrupted reports why the session must stop accepting work — the site
// shutting down or the context being cancelled — or nil. The watcher fires
// only once and defers to an in-flight step, so every Exec/Commit boundary
// re-checks both conditions here; without this a stop racing a step would be
// lost for the session's remaining lifetime.
func (sess *Session) interrupted() error {
	select {
	case <-sess.site.stopCh:
		return fmt.Errorf("%w: site stopping", txn.ErrAborted)
	default:
	}
	if sess.ctx.Err() != nil {
		return fmt.Errorf("%w: %w", txn.ErrAborted, context.Cause(sess.ctx))
	}
	return nil
}

// Exec runs one operation of the transaction at every site holding its
// document and returns the operation's query results (nil for updates). On
// error the transaction has already been resolved — aborted or failed
// cluster-wide, locks released — and the same terminal error is returned by
// any further call.
func (sess *Session) Exec(op txn.Operation) ([]string, error) {
	sess.mu.Lock()
	if sess.done {
		err := sess.err
		sess.mu.Unlock()
		if err == nil {
			err = txn.ErrTxnDone
		}
		return nil, err
	}
	if sess.inStep {
		sess.mu.Unlock()
		return nil, fmt.Errorf("sched: %s: concurrent step on one transaction", sess.ct.t.ID)
	}
	opIdx := len(sess.ct.t.Ops)
	if sess.readOnly && op.Kind != txn.OpQuery {
		// Non-terminal refusal, before the operation is recorded: the
		// transaction stays live and keeps serving snapshot reads.
		sess.mu.Unlock()
		return nil, fmt.Errorf("%w: operation %d is an update", txn.ErrReadOnly, opIdx)
	}
	if err := validateOp(opIdx, op); err != nil {
		sess.mu.Unlock()
		return nil, err
	}
	if ierr := sess.interrupted(); ierr != nil {
		sess.terminateLocked(ierr)
		err := sess.err
		sess.mu.Unlock()
		return nil, err
	}
	sess.ct.t.Ops = append(sess.ct.t.Ops, op)
	sess.ct.results = append(sess.ct.results, nil)
	sess.inStep = true
	sess.mu.Unlock()

	stepErr := sess.step()(sess.ctx, sess.ct, opIdx)

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.inStep = false
	if stepErr == nil {
		// Cancelled or stopped in the instant the step succeeded: the
		// watcher saw a step in flight and deferred to us.
		stepErr = sess.interrupted()
	}
	if stepErr != nil {
		sess.terminateLocked(stepErr)
		return nil, sess.err
	}
	return sess.ct.results[opIdx], nil
}

// ExecBatch runs several read-only operations of the transaction
// concurrently and returns their query results in operation order. The
// operations must all be queries: reads of one transaction have no mutual
// ordering a client can observe — under strict 2PL their locks are all held
// until the terminal commit or abort either way — so they may overlap their
// per-site round trips; updates order against other operations and must go
// through Exec. A batch refused up front (a non-query or malformed
// operation) returns an error without affecting the session, which stays
// live and usable; an error from executing the batch means the transaction
// has already been resolved cluster-wide, exactly as for Exec.
func (sess *Session) ExecBatch(ops []txn.Operation) ([][]string, error) {
	if len(ops) == 0 {
		return nil, nil
	}
	sess.mu.Lock()
	if sess.done {
		err := sess.err
		sess.mu.Unlock()
		if err == nil {
			err = txn.ErrTxnDone
		}
		return nil, err
	}
	if sess.inStep {
		sess.mu.Unlock()
		return nil, fmt.Errorf("sched: %s: concurrent step on one transaction", sess.ct.t.ID)
	}
	base := len(sess.ct.t.Ops)
	for i := range ops {
		if ops[i].Kind != txn.OpQuery {
			sess.mu.Unlock()
			return nil, fmt.Errorf("sched: batch operation %d is not read-only", i)
		}
		if err := validateOp(base+i, ops[i]); err != nil {
			sess.mu.Unlock()
			return nil, err
		}
	}
	if ierr := sess.interrupted(); ierr != nil {
		sess.terminateLocked(ierr)
		err := sess.err
		sess.mu.Unlock()
		return nil, err
	}
	sess.ct.t.Ops = append(sess.ct.t.Ops, ops...)
	sess.ct.results = append(sess.ct.results, make([][]string, len(ops))...)
	sess.inStep = true
	sess.mu.Unlock()

	stepErr := sess.site.execOps(sess.ctx, sess.ct, base, len(ops), sess.step())

	sess.mu.Lock()
	defer sess.mu.Unlock()
	sess.inStep = false
	if stepErr == nil {
		stepErr = sess.interrupted()
	}
	if stepErr != nil {
		sess.terminateLocked(stepErr)
		return nil, sess.err
	}
	return sess.ct.results[base : base+len(ops)], nil
}

// Commit consolidates the transaction at every involved site (Algorithm 5).
// A pending deadlock-victim signal or context cancellation takes precedence
// and aborts instead.
func (sess *Session) Commit() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.done {
		if sess.err != nil {
			return sess.err
		}
		return txn.ErrTxnDone
	}
	if sess.inStep {
		return fmt.Errorf("sched: %s: commit while a step is in flight", sess.ct.t.ID)
	}
	select {
	case r := <-sess.ct.abortCh:
		sess.terminateLocked(fmt.Errorf("%w: %s", txn.ErrDeadlock, r))
		return sess.err
	default:
	}
	if ierr := sess.interrupted(); ierr != nil {
		sess.terminateLocked(ierr)
		return sess.err
	}
	if sess.readOnly {
		// Trivially vacuous commit: a read-only transaction has no effects
		// anywhere — no 2PC round, no decision record; just release the
		// pinned versions, local and remote.
		sess.site.releaseReadOnly(sess.ct)
		sess.finishLocked(txn.Committed, nil)
		return nil
	}
	if sess.site.commitTransaction(sess.ct) {
		sess.finishLocked(txn.Committed, nil)
		return nil
	}
	sess.finishLocked(txn.Failed, fmt.Errorf("%w: commit rejected at a participant site", txn.ErrFailed))
	return sess.err
}

// Abort cancels the transaction at every involved site (Algorithm 6),
// undoing its operations and releasing its locks. Returns nil on a clean
// abort; aborting an already-finished transaction returns its terminal
// error (or ErrTxnDone after a commit).
func (sess *Session) Abort() error {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.done {
		if sess.err != nil {
			return sess.err
		}
		return txn.ErrTxnDone
	}
	if sess.inStep {
		return fmt.Errorf("sched: %s: abort while a step is in flight", sess.ct.t.ID)
	}
	if sess.readOnly {
		sess.site.releaseReadOnly(sess.ct)
		sess.finishLocked(txn.Aborted, fmt.Errorf("%w: rolled back by the client", txn.ErrAborted))
		return nil
	}
	if sess.site.abortTransaction(sess.ct) {
		sess.finishLocked(txn.Aborted, fmt.Errorf("%w: rolled back by the client", txn.ErrAborted))
		return nil
	}
	sess.finishLocked(txn.Failed, fmt.Errorf("%w: abort could not cancel at every site", txn.ErrFailed))
	return sess.err
}

// Result snapshots the terminal outcome in the batch-submission shape. Valid
// once the session is done; the batch Submit path uses it.
func (sess *Session) Result() *Result {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	reason := ""
	if sess.err != nil {
		reason = sess.err.Error()
	}
	return &Result{
		Txn:     sess.ct.t.ID,
		State:   sess.state,
		Results: sess.ct.results,
		Reason:  reason,
		Err:     sess.err,
	}
}

// terminateLocked resolves a live transaction after a step error or
// cancellation: failures (unresolvable state) broadcast failure, everything
// else aborts cleanly — escalating to failure if some participant cannot
// cancel (Algorithm 6, l. 5–10). Callers hold sess.mu.
func (sess *Session) terminateLocked(cause error) {
	s := sess.site
	if sess.readOnly {
		// Nothing to undo and no locks to release anywhere: terminating a
		// read-only transaction is pin release, never a failure broadcast.
		s.releaseReadOnly(sess.ct)
		if errors.Is(cause, txn.ErrFailed) || errors.Is(cause, txn.ErrUnknownDocument) {
			sess.finishLocked(txn.Failed, cause)
		} else {
			sess.finishLocked(txn.Aborted, cause)
		}
		return
	}
	switch {
	case errors.Is(cause, txn.ErrFailed) || errors.Is(cause, txn.ErrUnknownDocument):
		s.failTransaction(sess.ct)
		sess.finishLocked(txn.Failed, cause)
	default:
		if s.abortTransaction(sess.ct) {
			sess.finishLocked(txn.Aborted, cause)
		} else {
			sess.finishLocked(txn.Failed, cause)
		}
	}
}

// finishLocked records the terminal state, updates the site counters, and
// unregisters the coordinator-side transaction. Callers hold sess.mu.
func (sess *Session) finishLocked(state txn.State, cause error) {
	s := sess.site
	id := sess.ct.t.ID
	sess.done = true
	sess.state = state
	sess.err = cause
	switch state {
	case txn.Committed:
		s.m.txnsCommitted.Inc()
	case txn.Aborted:
		s.m.txnsAborted.Inc()
		if errors.Is(cause, txn.ErrDeadlock) {
			s.m.deadlockAborts.Inc()
		}
	case txn.Failed:
		s.m.txnsFailed.Inc()
	}
	sess.ct.t.State = state
	s.mu.Lock()
	delete(s.coord, id)
	s.mu.Unlock()
	close(sess.ct.finished)
	if tr := sess.ct.trace; tr != nil {
		reason := ""
		if cause != nil {
			reason = cause.Error()
		}
		tr.add("finish", "", 0, 0)
		s.emitTrace(id, state, reason, tr)
	}
	if s.cfg.History != nil {
		s.cfg.History.OnFinished(id, state == txn.Committed)
	}
}
