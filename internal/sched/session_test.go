package sched

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// TestSessionInteractive drives a read-branch-write transaction step by
// step: the query result is visible before the transaction commits, and the
// update decided from it persists after Commit.
func TestSessionInteractive(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	sess, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	prices, err := sess.Exec(txn.NewQuery("d2", "//product[id='4']/price"))
	if err != nil {
		t.Fatal(err)
	}
	if len(prices) != 1 || prices[0] != "50.00" {
		t.Fatalf("read %v", prices)
	}
	// Branch on the read: the price is under 100, so raise it.
	if _, err := sess.Exec(txn.NewUpdate("d2", &xupdate.Update{
		Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "60.00",
	})); err != nil {
		t.Fatal(err)
	}
	if err := sess.Commit(); err != nil {
		t.Fatal(err)
	}
	if !sess.Done() || sess.Err() != nil {
		t.Fatalf("session not cleanly done: %v", sess.Err())
	}
	doc, _ := s.Document("d2")
	if doc.String() == "" || !containsText(doc, "60.00") {
		t.Fatal("committed update lost")
	}
	// Steps after the terminal state report ErrTxnDone.
	if _, err := sess.Exec(txn.NewQuery("d2", "//product")); !errors.Is(err, txn.ErrTxnDone) {
		t.Fatalf("step after commit = %v", err)
	}
	if err := sess.Commit(); !errors.Is(err, txn.ErrTxnDone) {
		t.Fatalf("second commit = %v", err)
	}
	if st := s.Stats(); st.TxnsCommitted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func containsText(doc *xmltree.Document, s string) bool {
	var walk func(n *xmltree.Node) bool
	walk = func(n *xmltree.Node) bool {
		if n.Text == s {
			return true
		}
		for _, c := range n.Children {
			if walk(c) {
				return true
			}
		}
		return false
	}
	return walk(doc.Root)
}

// TestSessionAbortRollsBack aborts an interactive transaction after an
// executed update: effects are undone and locks released.
func TestSessionAbortRollsBack(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	before, _ := s.Document("d2")

	sess, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(txn.NewUpdate("d2", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/products", Pos: xmltree.Into,
		New: productSpec("99", "Ghost", "1"),
	})); err != nil {
		t.Fatal(err)
	}
	if err := sess.Abort(); err != nil {
		t.Fatalf("clean abort returned %v", err)
	}
	after, _ := s.Document("d2")
	if !xmltree.Equal(before, after) {
		t.Fatalf("abort left effects:\n%s", after.String())
	}
	s.mu.Lock()
	grants := s.docs["d2"].table.GrantCount()
	s.mu.Unlock()
	if grants != 0 {
		t.Fatalf("%d grants leaked after abort", grants)
	}
	if err := sess.Abort(); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("second abort = %v", err)
	}
	if st := s.Stats(); st.TxnsAborted != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSessionCancelWhileWaiting cancels a transaction blocked in lock-wait:
// the pending Exec returns an error wrapping ErrAborted (and the context
// cause), and the locks it held are released so the conflicting transaction
// can proceed.
func TestSessionCancelWhileWaiting(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	for _, s := range sites {
		addDoc(t, s, "d1", peopleXML)
	}

	// T1 takes X locks on /people at both sites and stays open.
	hold, err := sites[0].Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hold.Exec(txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
		New: personSpec("h", "Holder"),
	})); err != nil {
		t.Fatal(err)
	}

	// T2 blocks behind T1's locks.
	ctx, cancel := context.WithCancel(context.Background())
	blocked, err := sites[1].Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	stepErr := make(chan error, 1)
	go func() {
		_, err := blocked.Exec(txn.NewUpdate("d1", &xupdate.Update{
			Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
			New: personSpec("b", "Blocked"),
		}))
		stepErr <- err
	}()
	time.Sleep(30 * time.Millisecond) // let T2 enter wait mode
	cancel()
	select {
	case err := <-stepErr:
		if !errors.Is(err, txn.ErrAborted) {
			t.Fatalf("cancelled step = %v, want ErrAborted", err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled step = %v, want context.Canceled cause", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not unblock the waiting step")
	}
	if !blocked.Done() {
		t.Fatal("cancelled session not terminal")
	}

	// T1 still commits, and afterwards a fresh transaction acquires the
	// locks T2 gave up — proof nothing leaked.
	if err := hold.Commit(); err != nil {
		t.Fatal(err)
	}
	res, err := sites[1].Submit([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
		New: personSpec("f", "Fresh"),
	})})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("post-cancel transaction: %v %+v", err, res)
	}
}

// TestSessionCancelIdle cancels a transaction between steps: the watcher
// aborts it, releases its locks, and later steps report the abort.
func TestSessionCancelIdle(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	ctx, cancel := context.WithCancel(context.Background())
	sess, err := s.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(txn.NewUpdate("d2", &xupdate.Update{
		Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "1.00",
	})); err != nil {
		t.Fatal(err)
	}
	cancel()
	// The watcher aborts asynchronously; wait for the terminal state.
	deadline := time.Now().Add(5 * time.Second)
	for !sess.Done() {
		if time.Now().After(deadline) {
			t.Fatal("idle cancellation did not abort the session")
		}
		time.Sleep(time.Millisecond)
	}
	if err := sess.Err(); !errors.Is(err, txn.ErrAborted) || !errors.Is(err, context.Canceled) {
		t.Fatalf("terminal error = %v", err)
	}
	s.mu.Lock()
	grants := s.docs["d2"].table.GrantCount()
	s.mu.Unlock()
	if grants != 0 {
		t.Fatalf("%d grants leaked after idle cancellation", grants)
	}
	// The change was rolled back.
	doc, _ := s.Document("d2")
	if containsText(doc, "1.00") {
		t.Fatal("cancelled update persisted")
	}
}

// TestSessionDeadlineExceeded: a deadline doubles as a statement timeout for
// a blocked step.
func TestSessionDeadlineExceeded(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)

	hold, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := hold.Exec(txn.NewUpdate("d2", &xupdate.Update{
		Kind: xupdate.Change, Target: "//product[id='4']/price", Value: "2.00",
	})); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	defer cancel()
	sess, err := s.Begin(ctx)
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Exec(txn.NewQuery("d2", "//product[id='4']/price"))
	if !errors.Is(err, txn.ErrAborted) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline step = %v", err)
	}
	if err := hold.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSessionUnknownDocument: a typed failure ends the transaction.
func TestSessionUnknownDocument(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	sess, err := sites[0].Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Exec(txn.NewQuery("ghost", "/x"))
	if !errors.Is(err, txn.ErrUnknownDocument) {
		t.Fatalf("unknown document = %v", err)
	}
	if sess.Result().State != txn.Failed {
		t.Fatalf("state = %v", sess.Result().State)
	}
}

// TestSessionUnknownDocumentRemote: the typed classification survives the
// wire when the document is known to the catalog but missing at a
// participant.
func TestSessionUnknownDocumentRemote(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	// Catalog claims d2 lives at site 1, but site 1 never loaded it.
	sites[0].Catalog().Place("d2", 1)
	sess, err := sites[0].Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = sess.Exec(txn.NewQuery("d2", "/x"))
	if !errors.Is(err, txn.ErrUnknownDocument) {
		t.Fatalf("remote unknown document = %v", err)
	}
}

// TestSessionStopTerminates: Site.Stop ends live sessions — the idle one
// via the watcher, and any session observes the stop at its next step even
// if the single-shot watcher already fired while a step was in flight.
func TestSessionStopTerminates(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	sess, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sess.Exec(txn.NewQuery("d2", "//product")); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	// Whether the watcher got there first (idle abort) or the next step
	// trips the boundary check, the session must end with ErrAborted and
	// never execute on the stopped site.
	if _, err := sess.Exec(txn.NewQuery("d2", "//product")); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("step after Stop = %v", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for !sess.Done() {
		if time.Now().After(deadline) {
			t.Fatal("session survived Site.Stop")
		}
		time.Sleep(time.Millisecond)
	}
	s.mu.Lock()
	grants := s.docs["d2"].table.GrantCount()
	s.mu.Unlock()
	if grants != 0 {
		t.Fatalf("%d grants leaked past Stop", grants)
	}
}

// TestSessionBeginAfterStop: no sessions on a stopped site.
func TestSessionBeginAfterStop(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	sites[0].Stop()
	if _, err := sites[0].Begin(context.Background()); err == nil {
		t.Fatal("Begin on a stopped site accepted")
	}
}

// TestSessionBeginCancelledContext: a dead context never opens a session.
func TestSessionBeginCancelledContext(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sites[0].Begin(ctx); !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("Begin with cancelled context = %v", err)
	}
}

// TestSubmitCtxCancelled: the batch wrapper inherits session cancellation
// and reports the typed outcome in Result.Err.
func TestSubmitCtxCancelled(t *testing.T) {
	sites, _ := newCluster(t, 1, func(c *Config) { c.OpDelay = 50 * time.Millisecond })
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	res, err := s.SubmitCtx(ctx, []txn.Operation{
		txn.NewQuery("d2", "//product"),
		txn.NewQuery("d2", "//product/price"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Aborted || !errors.Is(res.Err, txn.ErrAborted) {
		t.Fatalf("cancelled submit = %+v (err %v)", res.State, res.Err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("results not padded: %d", len(res.Results))
	}
}
