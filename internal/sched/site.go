// Package sched implements the DTX instance that runs at every site: the
// Listener, the TransactionManager (Scheduler + LockManager) and the
// DataManager of Fig. 1, together with the six algorithms of §2.3 —
// coordinator transaction processing (Alg. 1), participant remote-operation
// processing (Alg. 2), lock-manager operation processing (Alg. 3),
// distributed deadlock detection (Alg. 4), distributed commit (Alg. 5) and
// distributed abort (Alg. 6).
//
// Concurrency model: the paper's Algorithm 1 is a scheduler loop that
// multiplexes transactions from a queue; here each client transaction runs
// in its submitting goroutine and a per-DOCUMENT mutex serialises that
// document's lock manager, DataGuide and tree, which yields the same
// histories (operations of one transaction are sequential; operations of
// different transactions interleave only at lock-manager granularity) in
// idiomatic Go. Each document is its own scheduling domain: transactions
// touching different documents at one site never contend on a mutex, and
// commit-time persistence snapshots the document under its lock but
// marshals and writes to the Store outside it (see persist.go). The slim
// site mutex guards only site-lifecycle state — the clock, transaction
// registries, and the finished-transaction tombstones.
//
// Lock ordering: a docState mutex may be held while taking site.mu or a
// partTxn mutex; neither may be held while taking a docState mutex. The
// partTxn mutex is a leaf. The snapshot-read registry (roMu) may be held
// while taking site.mu; an roPinSet mutex may be held while taking a
// docState mutex; nothing takes roMu while holding site.mu or a docState
// mutex. An mvcc.Chain mutex is a leaf below everything.
package sched

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dataguide"
	"repro/internal/lock"
	"repro/internal/mvcc"
	"repro/internal/obs"
	"repro/internal/replica"
	"repro/internal/store"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/vindex"
	"repro/internal/wfg"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

// Config configures one DTX site instance.
type Config struct {
	// SiteID is this site's identifier; transaction IDs embed it, so it
	// doubles as the coordinator address of every transaction started here.
	SiteID int
	// Sites lists every site in the system, for deadlock detection sweeps.
	Sites []int
	// Protocol is the concurrency-control protocol (default XDGL). With the
	// adaptive scheduler enabled it is the protocol every document STARTS
	// under; each document may then move along the granularity ladder at
	// run time (adapt.go).
	Protocol lock.Protocol
	// Adaptive configures run-time adaptive concurrency control: when
	// Enabled, a per-site policy loop samples each document's conflict rate,
	// windowed lock-wait p99 and deadlock rate every Window and switches the
	// document between DocLock, Node2PL and XDGL at quiescent points, with
	// hysteresis (see AdaptiveConfig).
	Adaptive AdaptiveConfig
	// Catalog maps documents to the sites holding replicas.
	Catalog *replica.Catalog
	// Store is the persistence backend (default in-memory).
	Store store.Store
	// DeadlockInterval is the period of the distributed deadlock detector;
	// zero disables the background process (tests drive CheckDeadlocks
	// directly).
	DeadlockInterval time.Duration
	// RetryInterval bounds how long a waiting transaction sleeps before
	// re-attempting lock acquisition if no wake-up arrives (safety net).
	RetryInterval time.Duration
	// OpDelay inserts a pause between consecutive operations of a
	// transaction, modelling client think time. The evaluation workloads
	// use it to create the contention windows the paper's experiments
	// exhibit; tests use it to build deterministic interleavings.
	OpDelay time.Duration
	// History, when set, receives lock-footprint events for offline
	// serializability checking (see internal/harness). All sites of a
	// cluster share one hook so the event order is globally consistent.
	History HistoryHook
	// VictimOldest switches the distributed deadlock victim rule from the
	// paper's "most recent transaction in the circle" to the oldest — an
	// ablation knob; both rules guarantee progress.
	VictimOldest bool
	// Journal, when set, write-ahead logs every local commit (intent before
	// persisting, commit after) so a restarted site can detect in-doubt
	// transactions — the durability direction of the paper's future work.
	Journal *store.Journal
	// PersistDelay is the batching window of the persist pipeline: commits
	// acknowledge immediately and the document is written to the Store at
	// most once per window, covering every commit that accumulated behind
	// it (persist.go). Zero selects the default (2ms); negative flushes
	// with no window (still asynchronous). Site.Sync / Site.Stop drain the
	// pipeline.
	PersistDelay time.Duration
	// HeartbeatInterval is the period of the liveness heartbeat to every
	// peer site; zero disables failure detection (every peer stays believed
	// Up, the pre-recovery behaviour). With heartbeats on, a peer that
	// misses HeartbeatMisses consecutive rounds is declared Down:
	// participant transactions it coordinated are resolved by the
	// termination protocol, reads route to the surviving replicas of its
	// documents, and writes touching them fail fast with
	// ErrReplicaUnavailable.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is the consecutive-miss threshold before a Suspect
	// peer is declared Down (default 3).
	HeartbeatMisses int
	// SnapshotVersions bounds how many unpinned committed versions each
	// document's MVCC chain retains for read-only transactions (default
	// mvcc.DefaultMaxVersions). Versions pinned by live readers are always
	// kept; a reader whose begin timestamp falls below every retained
	// version is aborted with ErrSnapshotUnavailable.
	SnapshotVersions int
	// SnapshotRetention, when positive, additionally retires unpinned old
	// versions past this age even while the chain is under SnapshotVersions.
	SnapshotRetention time.Duration
	// Replication selects the write-replication mode. The default ("", or
	// ReplicationEager explicitly) keeps the original semantics: every write
	// executes at every replica and a partially-down replica set refuses
	// writes. ReplicationQuorum routes every operation of a read-write
	// transaction to each document's primary (the lowest-numbered catalog
	// site) and replicates committed effects by shipping the replication log
	// to the followers: a commit acknowledges once WriteQuorum replicas have
	// durably acked its records, so a partially-down replica set keeps
	// accepting writes, and lagging followers catch up incrementally from
	// the log. Followers serve snapshot reads within MaxStaleness.
	Replication string
	// WriteQuorum is the number of replicas (the primary included) that must
	// durably ack a commit's replication records before the commit
	// acknowledges in quorum mode; zero selects a majority of each
	// document's replica set.
	WriteQuorum int
	// MaxStaleness bounds how far behind its primary a follower may
	// knowingly lag and still serve snapshot reads in quorum mode (zero
	// selects 1s). A follower past the bound refuses with a retry-at-primary
	// code instead of serving arbitrarily old data.
	MaxStaleness time.Duration
	// ReplHorizon bounds how many replication-log records are retained per
	// document for incremental follower catch-up (zero selects 512); a
	// follower further behind falls back to whole-document transfer.
	ReplHorizon int
	// IndexedKeys lists the value-index keys maintained on every document at
	// this site: "@name" indexes the values of attribute name, a bare name
	// indexes the text of elements with that label (serving [name='v'] child
	// predicates and [text()='v'] on steps named name). Covered equality and
	// range predicates are answered from postings instead of scanning the
	// extent; everything else falls back to the scan.
	IndexedKeys []string
	// AutoIndexAfter, when positive, enables the auto-index heuristic: a
	// key that would have served a predicate but is not indexed is counted
	// on every scan fallback, and after this many misses it is indexed
	// automatically (postings built under the domain mutex on the next
	// locked query). Zero disables the heuristic.
	AutoIndexAfter int
	// Recovering starts the site in recovering state: it answers heartbeats
	// not-ready and refuses operations until FinishRecovery, so peers keep
	// routing around it while internal/recovery replays the journal and
	// catches its documents up.
	Recovering bool
	// Metrics, when set, is the observability registry the site registers its
	// metric families on (internal/obs); nil builds a private unarmed one.
	// The site's counters are always live either way — they back Stats — but
	// histogram/span collection only happens once the registry is armed
	// (dtxd's -metrics-addr listener, a MetricsReq scrape, or the harness's
	// latency breakdown arm it). Unarmed, each would-be observation costs one
	// atomic load.
	Metrics *obs.Registry
	// SlowTxnThreshold is the slow-transaction tracer's emission bound: a
	// transaction whose total time reaches it has its event timeline (begin,
	// per-op lock waits, each 2PC phase, quorum ack, commit) emitted as one
	// JSON line through TraceSink. Tracing is armed when TraceSink is set or
	// the threshold is positive; a set sink with a zero threshold traces
	// every transaction (the debugging mode dtxd's `-slow-txn 0` selects).
	// With both unset (the default) transactions carry no timeline at all.
	SlowTxnThreshold time.Duration
	// TraceSink receives one line of JSON per qualifying slow transaction.
	// It is called synchronously on the transaction's finishing goroutine and
	// must be fast, concurrency-safe and never call back into the site.
	TraceSink func(line string)
	// Hooks are test-only crash-point callbacks (see CrashHooks). Shared by
	// pointer so a harness can install hooks on an already-built site (but
	// never while transactions are in flight).
	Hooks *CrashHooks
}

// CrashHooks are fault-injection callbacks fired at the 2PC stage
// boundaries, for crash tests and the harness's chaos mode. Each hook runs
// outside every scheduler mutex, so a hook may call Site.Kill to simulate a
// crash exactly at that stage; the code after the hook observes the death
// the way it would observe a real one (journal writes fail, the transport
// endpoint is gone, persists are abandoned). Nil hooks cost nothing.
type CrashHooks struct {
	// BeforeDecision fires at the coordinator after every operation
	// executed, before the commit decision record is logged.
	BeforeDecision func(id txn.ID)
	// AfterDecision fires at the coordinator once the decision record is
	// durable, before the commit fan-out.
	AfterDecision func(id txn.ID)
	// BeforeIntent fires in commitLocal before the journal intent record.
	BeforeIntent func(id txn.ID, docs []string)
	// AfterIntent fires in commitLocal once the intent record is durable,
	// before the documents reach the persist pipeline.
	AfterIntent func(id txn.ID, docs []string)
	// BeforeSave fires in the persist worker after the snapshot is taken,
	// before the Store write — the "mid-persist" crash point.
	BeforeSave func(doc string)
	// BeforeReplApply fires at a follower when a shipped replication-log
	// span for doc arrives from site from, after the follower has recorded
	// how far ahead the primary is but before the records are applied — the
	// replication-lag injection point (a sleeping hook makes a follower that
	// knows it lags, which is what the bounded-staleness refusal keys on).
	BeforeReplApply func(doc string, from int)
	// BeforeProtocolSwitch fires at the quiescent point of an online
	// protocol switch: the domain's lock table has drained to zero owners
	// and admissions are blocked, immediately before the protocol is
	// swapped — the "mid-switch" crash point. The active protocol is never
	// persisted, so a site killed here restarts under its configured
	// default.
	BeforeProtocolSwitch func(doc, from, to string)
}

// GrantInfo describes one granted lock for history recording. Guard carries
// the predicate annotation of XDGL locks: the table lets checker-visibly
// incompatible modes coexist on one DataGuide path when their guards are
// provably disjoint, so any consumer reasoning about conflicts must apply
// the same Disjoint test the table does.
type GrantInfo struct {
	Path  string
	Mode  lock.Mode
	Guard *lock.Guard
}

// HistoryHook observes committed-history-relevant events. Implementations
// must be safe for concurrent use; calls may occur under site mutexes, so
// hooks must not call back into the site.
type HistoryHook interface {
	// OnAcquired fires when an operation's locks are granted at a site,
	// with the operation's full lock footprint.
	OnAcquired(site int, id txn.ID, op int, doc string, write bool, grants []GrantInfo)
	// OnUndone fires when an operation is undone at a site (its footprint
	// there no longer counts).
	OnUndone(site int, id txn.ID, op int)
	// OnFinished fires once per transaction at its coordinator.
	OnFinished(id txn.ID, committed bool)
}

func (c Config) withDefaults() Config {
	if c.Protocol == nil {
		c.Protocol = lock.XDGL{}
	}
	if c.Adaptive.Enabled {
		c.Adaptive = c.Adaptive.withDefaults()
	}
	if c.Catalog == nil {
		c.Catalog = replica.NewCatalog()
	}
	if c.Store == nil {
		c.Store = store.NewMemStore()
	}
	if c.RetryInterval <= 0 {
		c.RetryInterval = 25 * time.Millisecond
	}
	if c.PersistDelay == 0 {
		c.PersistDelay = 2 * time.Millisecond
	}
	if c.HeartbeatMisses <= 0 {
		c.HeartbeatMisses = 3
	}
	if len(c.Sites) == 0 {
		c.Sites = []int{c.SiteID}
	}
	if c.Replication == ReplicationQuorum {
		if c.MaxStaleness <= 0 {
			c.MaxStaleness = time.Second
		}
		if c.ReplHorizon <= 0 {
			c.ReplHorizon = 512
		}
	}
	return c
}

// Stats counts site-level events; all counters are monotonic. It is the
// compatibility view over the site's obs registry: each field is assembled
// from the registry counter of the same meaning by Site.Stats, so the
// registry is the one source of truth and this struct stays a cheap
// value-type snapshot for callers (harness, dtxbench, the public SiteStats).
type Stats struct {
	TxnsCommitted      int64
	TxnsAborted        int64
	TxnsFailed         int64
	DeadlockAborts     int64 // transactions aborted because of a deadlock
	LocalDeadlocks     int64 // cycles found while adding a wait edge (Alg. 3)
	DistDeadlocks      int64 // cycles found by the periodic detector (Alg. 4)
	OpsExecuted        int64
	OpConflicts        int64 // lock acquisition failures
	RemoteOpsSent      int64
	RemoteOpsProcessed int64
	LocksAcquired      int64
	PersistErrors      int64 // background persist failures (see persist.go)
	SnapshotReads      int64 // queries served from MVCC versions, lock-free
	SnapshotPublishes  int64 // committed versions materialised into a chain
	LogRecordsShipped  int64 // replication records acked by a follower (per record, per follower)
	LogRecordsApplied  int64 // shipped replication records applied at this follower
	ReplStaleRefusals  int64 // snapshot reads refused for exceeding the staleness bound
	ReplCatchupRecords int64 // replication records applied during recovery catch-up
	IndexedQueries     int64 // queries answered from a value index instead of an extent scan
	ProtocolSwitches   int64 // completed online protocol switches (adapt.go)
}

// docState bundles the in-memory representation of one document at a site:
// the tree, its DataGuide, the lock table over the DataGuide, and the
// wait-for graph of that lock manager. The graph is per lock manager (not
// per site): in §2.4 both wait edges of the cross-document deadlock arise at
// site s2 but in different documents' lock managers, and the paper resolves
// the cycle with the *periodic distributed* check, not the local one —
// which is only possible if the local graphs are disjoint per document.
//
// Each docState is one scheduling domain: its mutex serialises every access
// to the document, guide, table, graph, dirty set and persist queue, so
// transactions on different documents at one site proceed fully in
// parallel.
type docState struct {
	mu    sync.Mutex
	name  string // the document name, immutable; for metric labels
	doc   *xmltree.Document
	guide *dataguide.DataGuide
	table *lock.Table
	graph *wfg.Graph
	dirty map[txn.ID]bool // transactions with unpersisted changes

	// proto is the lock protocol currently active on this domain, seeded
	// from Config.Protocol and swapped at quiescent points by SwitchProtocol
	// (adapt.go). draining blocks new admissions while a switch waits for
	// the lock table to empty: processOperation refuses transactions that
	// hold nothing here yet (the coordinator's wait mode retries them) and
	// admits the rest so the drain can complete. Both guarded by mu.
	proto    lock.Protocol
	draining bool

	// met caches this document's child metric handles (resolved once here,
	// so the hot paths never do a labelled-vec map lookup).
	met docMetrics

	// versions is the document's MVCC chain: committed immutable snapshots
	// that read-only transactions pin and query without entering the lock
	// table or the wait-for graph (snapshot.go). Commits advance the chain's
	// commit timestamp in O(1); materialisation of a fresh version is
	// deferred to the next clean point — a reader needing it, or the next
	// writer's first change (processOperation). The chain has its own leaf
	// mutex, so it is safe to touch with or without ds.mu held.
	versions *mvcc.Chain

	// Persist pipeline (persist.go). Commits bump persistPending under mu;
	// a single on-demand worker snapshots and writes the document once per
	// batching window, so Store writes observe per-document commit order
	// while the marshal and I/O happen outside the domain mutex.
	// persistErr latches the first background write failure: the document's
	// persistent state can no longer be trusted to converge, so later
	// commits on it are refused.
	persistPending int64
	persistGroups  []*persistGroup
	persistActive  bool
	persistErr     error

	// Quorum replication position (replication.go), guarded by mu like the
	// rest of the domain. replApplied is the index of the newest
	// replication-log record reflected in the document here (at the primary:
	// the newest appended). knownHead and staleSince track, at a follower,
	// the newest primary index heard of and since when the replica has known
	// itself behind — the inputs of the bounded-staleness refusal. replAcked
	// tracks, at the primary, each follower's durably acked index, so ships
	// resend exactly the unacked suffix. replUntrusted marks a loaded copy
	// whose meta record was pending or unparseable — its bytes sit at an
	// unknown position, so incremental catch-up must not resume from it.
	replApplied   int64
	knownHead     int64
	staleSince    time.Time
	replAcked     map[int]int64
	replUntrusted bool
}

// undoEntry is one applied update of one operation, with its inverse.
type undoEntry struct {
	doc string
	rec *xupdate.UndoRec
}

// partTxn is the participant-side record of a transaction that has executed
// (or tried to execute) operations at this site. The coordinator's own site
// keeps one too, so commit/abort treat all sites uniformly. The mutex (a
// leaf in the lock order) guards undo and docs: concurrent batched reads of
// one transaction, and a stale operation racing the transaction's cleanup,
// can touch them from different document domains.
type partTxn struct {
	id          txn.ID
	ts          txn.TS
	coordinator int
	created     time.Time // for the orphan sweep's age threshold

	// cleanupMu serialises undo application between an operation-level undo
	// (undoOpLocal) and the transaction-level abort: whichever takes an
	// op's undo entries applies them before the other proceeds, so an
	// abort can never release locks while an operation undo is still being
	// applied. Ordering: cleanupMu may be held while taking a docState
	// mutex; never the reverse.
	cleanupMu sync.Mutex

	mu      sync.Mutex
	undo    map[int][]undoEntry   // op index -> applied updates
	docs    map[string]bool       // documents touched here
	applied map[int]txn.Operation // op index -> executed update (quorum mode)
}

// touch records a document as touched by the transaction at this site.
func (pt *partTxn) touch(doc string) {
	pt.mu.Lock()
	pt.docs[doc] = true
	pt.mu.Unlock()
}

// docNames snapshots the touched documents.
func (pt *partTxn) docNames() []string {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	out := make([]string, 0, len(pt.docs))
	for name := range pt.docs {
		out = append(out, name)
	}
	return out
}

// addUndo appends one applied update of one operation.
func (pt *partTxn) addUndo(opIdx int, e undoEntry) {
	pt.mu.Lock()
	pt.undo[opIdx] = append(pt.undo[opIdx], e)
	pt.mu.Unlock()
}

// takeUndo removes and returns the undo entries of one operation.
func (pt *partTxn) takeUndo(opIdx int) []undoEntry {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	entries := pt.undo[opIdx]
	delete(pt.undo, opIdx)
	return entries
}

// addApplied records a successfully executed update operation so a quorum
// commit can replicate exactly what ran here, in op-index order.
func (pt *partTxn) addApplied(opIdx int, op txn.Operation) {
	pt.mu.Lock()
	if pt.applied == nil {
		pt.applied = make(map[int]txn.Operation)
	}
	pt.applied[opIdx] = op
	pt.mu.Unlock()
}

// dropApplied forgets an operation that was undone (a failed multi-site
// attempt): its effects are gone, so it must not be replicated.
func (pt *partTxn) dropApplied(opIdx int) {
	pt.mu.Lock()
	delete(pt.applied, opIdx)
	pt.mu.Unlock()
}

// appliedByDoc groups the surviving update operations by document, each
// group in op-index order — the order they executed against the tree, which
// is the order followers must replay them in.
func (pt *partTxn) appliedByDoc() map[string][]txn.Operation {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	if len(pt.applied) == 0 {
		return nil
	}
	idxs := make([]int, 0, len(pt.applied))
	for idx := range pt.applied {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	out := make(map[string][]txn.Operation)
	for _, idx := range idxs {
		op := pt.applied[idx]
		out[op.Doc] = append(out[op.Doc], op)
	}
	return out
}

// takeAllUndo removes and returns every undo entry, keyed by operation.
func (pt *partTxn) takeAllUndo() map[int][]undoEntry {
	pt.mu.Lock()
	defer pt.mu.Unlock()
	undo := pt.undo
	pt.undo = make(map[int][]undoEntry)
	return undo
}

// coordTxn is the coordinator-side state of a transaction submitted here.
// Interactive sessions grow t.Ops and results one operation at a time;
// batched read-only steps (Session.ExecBatch) run their operations
// concurrently, so the sites map and the wake channel carry a mutex.
type coordTxn struct {
	t        *txn.Transaction
	abortCh  chan string
	mu       sync.Mutex    // guards sites, wake and roDocSites
	sites    map[int]bool  // sites that received at least one operation
	wake     chan struct{} // closed to broadcast a wake-up, then replaced
	results  [][]string
	finished chan struct{} // closed once the transaction reaches a terminal state

	// trace is the slow-transaction event timeline, non-nil exactly when the
	// site's tracer is armed (metrics.go); fast transactions drop it at
	// finish.
	trace *txnTrace

	// roDocSites tracks, for a read-only transaction, which site each
	// document's reads are bound to — reads of one document must stick to
	// one site or repeatable reads break (snapshot.go). A binding is claimed
	// BEFORE the first read is dispatched, so concurrent batched reads of
	// one document agree on the site, and a terminal release reaches every
	// site that may hold a pin.
	roDocSites map[string]roRoute
}

// roRoute is one document's read-routing binding of a read-only transaction.
type roRoute struct {
	site   int
	pinned bool // a read succeeded there: the site holds the version pin
}

// addSite records a site as involved in the transaction.
func (ct *coordTxn) addSite(site int) {
	ct.mu.Lock()
	ct.sites[site] = true
	ct.mu.Unlock()
}

// remoteSites snapshots the involved sites excluding the coordinator's
// own. The local step of every 2PC phase runs unconditionally instead — a
// no-op when the transaction never touched the coordinator's site.
func (ct *coordTxn) remoteSites(self int) []int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	sites := make([]int, 0, len(ct.sites))
	for site := range ct.sites {
		if site != self {
			sites = append(sites, site)
		}
	}
	return sites
}

// roSiteFor returns the document's read-routing binding, if one exists.
func (ct *coordTxn) roSiteFor(doc string) (roRoute, bool) {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	route, ok := ct.roDocSites[doc]
	return route, ok
}

// claimRoSite binds the document's reads to candidate unless another
// goroutine bound it first, and returns the winning binding.
func (ct *coordTxn) claimRoSite(doc string, candidate int) roRoute {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	if ct.roDocSites == nil {
		ct.roDocSites = make(map[string]roRoute)
	}
	if route, ok := ct.roDocSites[doc]; ok {
		return route
	}
	route := roRoute{site: candidate}
	ct.roDocSites[doc] = route
	return route
}

// markRoPinned records that a read succeeded at the document's bound site:
// the version is pinned there and the binding must never move again.
func (ct *coordTxn) markRoPinned(doc string, site int) {
	ct.mu.Lock()
	if route, ok := ct.roDocSites[doc]; ok && route.site == site {
		route.pinned = true
		ct.roDocSites[doc] = route
	}
	ct.mu.Unlock()
}

// rebindRoSite drops a binding whose site died before any read of the
// document succeeded there, so the next routing pass can pick a survivor.
// Returns false — and leaves the binding — when a concurrent sibling's read
// DID succeed at that site: the pin exists, the snapshot died with the
// site, and rerouting would serve a different version of the document.
func (ct *coordTxn) rebindRoSite(doc string, site int) bool {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	route, ok := ct.roDocSites[doc]
	if !ok || route.site != site {
		return true // a sibling already rebound it
	}
	if route.pinned {
		return false
	}
	delete(ct.roDocSites, doc)
	return true
}

// roRemoteSites snapshots the distinct remote sites that may hold pins for
// a read-only transaction (every bound site, pinned or merely claimed — a
// claim whose read errored mid-flight may still have pinned).
func (ct *coordTxn) roRemoteSites(self int) []int {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	seen := make(map[int]bool, len(ct.roDocSites))
	var out []int
	for _, route := range ct.roDocSites {
		if route.site != self && !seen[route.site] {
			seen[route.site] = true
			out = append(out, route.site)
		}
	}
	return out
}

// wakeChan returns the channel a wait-mode goroutine should select on. It
// must be fetched before the lock attempt: a wake broadcast during the
// attempt then closes exactly this channel, so the signal cannot be lost.
func (ct *coordTxn) wakeChan() <-chan struct{} {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	return ct.wake
}

// broadcastWake wakes every goroutine of the transaction currently in (or
// entering) wait mode — batched read-only steps can have several waiting
// concurrently, and a single-token channel would wake only one of them.
func (ct *coordTxn) broadcastWake() {
	ct.mu.Lock()
	defer ct.mu.Unlock()
	close(ct.wake)
	ct.wake = make(chan struct{})
}

// Result is what a client gets back for a submitted transaction.
type Result struct {
	Txn     txn.ID
	State   txn.State
	Results [][]string // per-operation query results
	Reason  string     // why the transaction aborted or failed
	Err     error      // typed terminal error (nil when committed); works with errors.Is
}

// Site is one DTX instance. Create with New, attach to a transport with
// Attach (or AttachTCP via cmd/dtxd), then Submit transactions.
type Site struct {
	cfg Config
	id  int

	// mu guards site-lifecycle state only: the logical clock, the sequence
	// counter, the transaction registries and the finished tombstones.
	// Document state lives behind each docState's own mutex, so the hot
	// path holds mu for map lookups and counter ticks, never for lock-table
	// work, query evaluation or persistence.
	mu      sync.Mutex
	clock   txn.Clock
	seq     int64
	coord   map[txn.ID]*coordTxn
	part    map[txn.ID]*partTxn
	coordOf map[txn.ID]int // any transaction seen here -> its coordinator site
	// finished tombstones recently-terminated transactions, mapped to their
	// outcome (true = committed). The pipelined transport does not order an
	// abandoned operation exchange against the cleanup messages sent after
	// it, so a stale ExecOpReq can reach a participant after the
	// transaction's abort or commit; without the tombstone it would
	// re-create participant state and acquire locks that nothing ever
	// releases. The outcome additionally answers the termination protocol's
	// TxnStatusReq. Bounded by finishedRing (oldest evicted).
	finished     map[txn.ID]bool
	finishedRing []txn.ID
	finishedIdx  int

	// roMu guards the roPins registry map only — the per-transaction pin
	// sets carry their own mutex (snapshot.go), so the registry lock is
	// never held across version pinning or query evaluation.
	roMu   sync.Mutex
	roPins map[txn.ID]*roPinSet

	// docsMu guards the docs map itself (installation of new documents);
	// docStates are never removed, so a looked-up pointer stays valid.
	docsMu sync.RWMutex
	docs   map[string]*docState

	// m holds the site's metric handles; its counters back Stats. traceArmed
	// is fixed at construction from the trace config (read lock-free on the
	// hot path).
	m          *siteMetrics
	traceArmed bool

	// replLog is the in-memory per-document shipping log, non-nil exactly in
	// quorum-replication mode (replication.go). rywMu/recentWrites track the
	// last committed write per document submitted through this site, so
	// snapshot reads that follow a write here prefer the primary within the
	// staleness window (read-your-writes).
	replLog      *store.ReplLog
	rywMu        sync.Mutex
	recentWrites map[string]time.Time

	// queries caches parsed XPath per raw query text, site-wide: repeated
	// query templates skip the lexer and parser entirely. Update target
	// paths are pre-parsed on the Update itself (xupdate.Validate).
	queries *xpath.Cache

	// liveness is the failure-detector view of the peers, fed by heartbeats
	// and by the outcome of every transport exchange.
	liveness *liveness
	// ready gates service: 0 while the site is recovering (heartbeats
	// answer not-ready, operations are refused), 1 once it serves.
	ready int32
	// killed is set by Kill: the site died abruptly and must not write to
	// its store or journal again.
	killed int32
	// sweeping serialises the background orphan sweep (liveness.go).
	sweeping int32

	node     transport.Node
	stopCh   chan struct{}
	stopOnce sync.Once // Stop and Kill race on closing stopCh
	// ctx is the site's lifecycle context: background processes (the
	// deadlock detector, wake-up notifications) bind their transport
	// exchanges to it so Stop can cut a blocked poll short instead of
	// leaking it past Close.
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	// persistMu/persistCond/persistCount track in-flight background
	// persists so Sync and Stop can wait for every acknowledged commit to
	// reach the Store. A plain counter with a condition variable, not a
	// WaitGroup: commits keep incrementing while other goroutines wait,
	// which WaitGroup forbids (Add racing Wait across a zero crossing).
	// stopping/commitGate close the shutdown race between a late local
	// consolidation and the journal close: once stopping is set no new
	// commitLocal may begin, and Stop waits for the in-flight ones
	// (commitGate) before the final drain — so the journal is closed only
	// after every intent it will ever carry has been written and its
	// covering persist drained.
	persistMu    sync.Mutex
	persistCond  *sync.Cond
	persistCount int64
	workerCount  int64 // running persist workers, for Quiesce
	stopping     bool
	commitGate   int64
}

// New creates a site instance. Documents must be loaded with LoadDocument
// or AddDocument before transactions touch them.
func New(cfg Config) *Site {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Site{
		cfg:          cfg,
		id:           cfg.SiteID,
		docs:         make(map[string]*docState),
		coord:        make(map[txn.ID]*coordTxn),
		part:         make(map[txn.ID]*partTxn),
		coordOf:      make(map[txn.ID]int),
		roPins:       make(map[txn.ID]*roPinSet),
		finished:     make(map[txn.ID]bool),
		finishedRing: make([]txn.ID, 4096),
		queries:      xpath.NewCache(4096),
		stopCh:       make(chan struct{}),
		ctx:          ctx,
		cancel:       cancel,
	}
	if !cfg.Recovering {
		s.ready = 1
	}
	s.m = newSiteMetrics(s, cfg.Metrics)
	s.traceArmed = cfg.TraceSink != nil || cfg.SlowTxnThreshold > 0
	if s.traceArmed {
		// Traces carry the same timings the histograms do; configuring the
		// tracer is configuring observability, so arm the gated paths.
		s.m.reg.Arm()
	}
	s.liveness = newLiveness(cfg.HeartbeatInterval > 0, s.abortOrphans)
	s.persistCond = sync.NewCond(&s.persistMu)
	if cfg.Replication == ReplicationQuorum {
		s.replLog = store.NewReplLog(cfg.ReplHorizon)
		s.recentWrites = make(map[string]time.Time)
		if cfg.Journal != nil {
			// Reseed the shipping log from the journal's O-record tail: a
			// restarted primary keeps serving incremental catch-up over the
			// span it journaled before the crash.
			for _, doc := range cfg.Journal.ReplDocs() {
				for _, e := range cfg.Journal.ReplTail(doc) {
					rec, err := store.DecodeReplRecord(e.Payload)
					if err != nil || rec.Index != e.Index {
						continue
					}
					s.replLog.Seed(doc, rec)
				}
			}
		}
	}
	if cfg.Journal != nil {
		// Fence the identifier space on EVERY journaled construction, not
		// just the recovery path: an incarnation that re-minted a prior ID
		// would have its commit record silently seal the crashed
		// incarnation's unrelated in-doubt intent.
		if m := cfg.Journal.MaxSeq(cfg.SiteID); m > 0 {
			s.AdvancePast(m + SeqFenceGap)
		}
	}
	return s
}

// Ready reports whether the site is serving (recovery, if any, completed).
func (s *Site) Ready() bool { return atomic.LoadInt32(&s.ready) == 1 }

// FinishRecovery marks a recovering site ready to serve: heartbeats start
// answering OK, so peers route traffic to it again.
func (s *Site) FinishRecovery() { atomic.StoreInt32(&s.ready, 1) }

// Killed reports whether the site was crashed with Kill.
func (s *Site) Killed() bool { return atomic.LoadInt32(&s.killed) == 1 }

// Journal returns the site's commit journal, or nil.
func (s *Site) Journal() *store.Journal { return s.cfg.Journal }

// PeerStates snapshots the liveness view for status reporting.
func (s *Site) PeerStates() []transport.PeerStatus { return s.liveness.snapshot() }

// PeerState returns the current belief about one peer.
func (s *Site) PeerState(site int) PeerState { return s.liveness.state(site) }

// doc returns the scheduling domain of a document, or nil.
func (s *Site) doc(name string) *docState {
	s.docsMu.RLock()
	ds := s.docs[name]
	s.docsMu.RUnlock()
	return ds
}

// allDocs snapshots every scheduling domain at the site.
func (s *Site) allDocs() []*docState {
	s.docsMu.RLock()
	out := make([]*docState, 0, len(s.docs))
	for _, ds := range s.docs {
		out = append(out, ds)
	}
	s.docsMu.RUnlock()
	return out
}

// isFinished reports whether the transaction is tombstoned at this site.
func (s *Site) isFinished(id txn.ID) bool {
	s.mu.Lock()
	_, dead := s.finished[id]
	s.mu.Unlock()
	return dead
}

// markFinishedLocked tombstones a terminated transaction with its outcome.
// Callers hold s.mu. The first outcome recorded wins: a stale cleanup
// message arriving after the transaction was resolved cannot flip it. The
// ring bounds memory: after its capacity in newer terminations the
// tombstone is evicted, which is far beyond any realistic in-flight window
// for a stale operation.
func (s *Site) markFinishedLocked(id txn.ID, committed bool) {
	if _, ok := s.finished[id]; ok {
		return
	}
	if old := s.finishedRing[s.finishedIdx]; old != txn.Zero {
		delete(s.finished, old)
	}
	s.finishedRing[s.finishedIdx] = id
	s.finishedIdx = (s.finishedIdx + 1) % len(s.finishedRing)
	s.finished[id] = committed
}

// ID returns the site identifier.
func (s *Site) ID() int { return s.id }

// Protocol returns the configured concurrency-control protocol — the one
// every document starts under. With the adaptive scheduler enabled, a
// document's currently ACTIVE protocol may differ; DocProtocol reports it.
func (s *Site) Protocol() lock.Protocol { return s.cfg.Protocol }

// Catalog returns the replica catalog the site routes with.
func (s *Site) Catalog() *replica.Catalog { return s.cfg.Catalog }

// Attach connects the site to a transport network endpoint and starts the
// configured background processes: the periodic deadlock detector and the
// liveness heartbeat.
func (s *Site) Attach(join func(transport.Handler) (transport.Node, error)) error {
	node, err := join(transport.HandlerFunc(s.HandleMessage))
	if err != nil {
		return err
	}
	s.node = node
	if s.cfg.DeadlockInterval > 0 {
		s.wg.Add(1)
		go s.detectorLoop()
	}
	if s.cfg.HeartbeatInterval > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	if s.cfg.Adaptive.Enabled {
		s.wg.Add(1)
		go s.adaptLoop()
	}
	return nil
}

// AttachNetwork joins an in-process network.
func (s *Site) AttachNetwork(net *transport.Network) error {
	return s.Attach(func(h transport.Handler) (transport.Node, error) {
		return net.Join(s.id, h)
	})
}

// Stop terminates background processes, drains in-flight work and detaches
// from the network. Cancelling the lifecycle context unblocks a detector
// poll that is waiting on an unresponsive peer, so Stop never hangs behind
// it. Stop drains the persist pipeline — every commit acknowledged before
// Stop is in the Store when Stop returns — and only then closes the site's
// journal: the stopping flag refuses consolidations that would race the
// close, and the commit gate waits out the ones already in flight, so no
// intent record can ever chase a closed journal (which would manufacture a
// phantom in-doubt transaction).
func (s *Site) Stop() {
	s.persistMu.Lock()
	s.stopping = true
	s.persistMu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cancel()
	s.wg.Wait()
	// Wait for in-flight local consolidations, then drain their persists.
	s.persistMu.Lock()
	for s.commitGate > 0 {
		s.persistCond.Wait()
	}
	s.persistMu.Unlock()
	s.Sync()
	if s.node != nil {
		s.node.Close()
	}
	if s.cfg.Journal != nil && !s.Killed() {
		s.cfg.Journal.Close()
	}
}

// Kill crashes the site abruptly, simulating a process or machine failure:
// the transport endpoint drops (peers' in-flight calls fail with
// ErrPeerClosed and feed their suspicion state), the journal file handle
// closes without any final records, and the persist pipeline abandons
// writes that have not reached the Store — acknowledged commits whose
// covering write never landed stay in-doubt in the journal, exactly as
// after a real crash. The Store and journal files survive for a restart
// through internal/recovery.
func (s *Site) Kill() {
	if !atomic.CompareAndSwapInt32(&s.killed, 0, 1) {
		return
	}
	atomic.StoreInt32(&s.ready, 0)
	s.persistMu.Lock()
	s.stopping = true
	s.persistMu.Unlock()
	s.stopOnce.Do(func() { close(s.stopCh) })
	s.cancel()
	if s.node != nil {
		s.node.Close()
	}
	if s.cfg.Journal != nil {
		s.cfg.Journal.Close()
	}
}

// enterCommit admits one local consolidation under the shutdown gate.
func (s *Site) enterCommit() bool {
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	if s.stopping {
		return false
	}
	s.commitGate++
	return true
}

// exitCommit retires one admitted consolidation.
func (s *Site) exitCommit() {
	s.persistMu.Lock()
	s.commitGate--
	if s.commitGate == 0 {
		s.persistCond.Broadcast()
	}
	s.persistMu.Unlock()
}

// Stats returns a snapshot of the site's counters, assembled from the obs
// registry (the storage; see metrics.go).
func (s *Site) Stats() Stats {
	m := s.m
	return Stats{
		TxnsCommitted:      m.txnsCommitted.Value(),
		TxnsAborted:        m.txnsAborted.Value(),
		TxnsFailed:         m.txnsFailed.Value(),
		DeadlockAborts:     m.deadlockAborts.Value(),
		LocalDeadlocks:     m.localDeadlocks.Value(),
		DistDeadlocks:      m.distDeadlocks.Value(),
		OpsExecuted:        m.opsExecuted.Value(),
		OpConflicts:        m.conflicts.Total(),
		RemoteOpsSent:      m.remoteOpsSent.Value(),
		RemoteOpsProcessed: m.remoteOpsProcessed.Value(),
		LocksAcquired:      m.locksAcquired.Value(),
		PersistErrors:      m.persistErrors.Value(),
		SnapshotReads:      m.snapshotReads.Value(),
		SnapshotPublishes:  m.snapshotPublishes.Value(),
		LogRecordsShipped:  m.logShipped.Value(),
		LogRecordsApplied:  m.logApplied.Value(),
		ReplStaleRefusals:  m.staleRefusals.Value(),
		ReplCatchupRecords: m.catchupRecords.Value(),
		IndexedQueries:     m.indexedQueries.Value(),
		ProtocolSwitches:   m.protocolSwitches.Total(),
	}
}

// newDocState builds the scheduling domain of a freshly installed document,
// seeding its MVCC chain with an initial committed version at timestamp 0:
// the as-installed state is committed by definition, and the floor version
// lets a reader that begins before the first local commit pin something.
// After a restart this makes versions survive trivially — the chain reseeds
// from the latest persisted state the Store (or catch-up) hands back.
func (s *Site) newDocState(doc *xmltree.Document, g *dataguide.DataGuide) *docState {
	if len(s.cfg.IndexedKeys) > 0 || s.cfg.AutoIndexAfter > 0 {
		// Attaching here covers both install paths — AddDocument and the
		// restart/recovery LoadDocument — so a replayed or caught-up document
		// always rebuilds its postings from the recovered tree; subsequent
		// updates (writers, follower log application, journal replay) maintain
		// them through the guide hooks inside the same ds.mu section.
		g.AttachIndex(vindex.New(s.cfg.IndexedKeys, s.cfg.AutoIndexAfter))
		g.ReindexAll(doc)
	}
	ch := mvcc.NewChain(mvcc.Options{
		MaxVersions: s.cfg.SnapshotVersions,
		Retention:   s.cfg.SnapshotRetention,
	})
	ch.Publish(doc.Snapshot(), 0)
	return &docState{
		name:     doc.Name,
		doc:      doc,
		guide:    g,
		table:    lock.NewTable(g),
		graph:    wfg.New(),
		dirty:    make(map[txn.ID]bool),
		proto:    s.cfg.Protocol,
		versions: ch,
		met:      s.m.docMetrics(doc.Name),
	}
}

// AddDocument installs a document at this site (in memory and in the store)
// and registers it in the catalog for this site if absent.
func (s *Site) AddDocument(doc *xmltree.Document) error {
	if err := s.cfg.Store.Save(doc); err != nil {
		return err
	}
	ds := s.newDocState(doc, dataguide.Build(doc))
	s.docsMu.Lock()
	s.docs[doc.Name] = ds
	s.docsMu.Unlock()
	if !s.cfg.Catalog.Holds(doc.Name, s.id) {
		sites := append(s.cfg.Catalog.Sites(doc.Name), s.id)
		s.cfg.Catalog.Place(doc.Name, sites...)
	}
	return nil
}

// LoadDocument recovers a document from the storage structure into memory —
// the DataManager role of Fig. 1 — and registers this site as a holder in
// the catalog.
func (s *Site) LoadDocument(name string) error {
	doc, err := s.cfg.Store.Load(name)
	if err != nil {
		return err
	}
	ds := s.newDocState(doc, dataguide.Build(doc))
	s.seedReplPosition(ds)
	s.docsMu.Lock()
	s.docs[name] = ds
	s.docsMu.Unlock()
	if !s.cfg.Catalog.Holds(name, s.id) {
		s.cfg.Catalog.Place(name, append(s.cfg.Catalog.Sites(name), s.id)...)
	}
	return nil
}

// SeqFenceGap is added to a journal's maximum recorded sequence number when
// fencing a restarted site's identifier space. Read-only transactions never
// journal, so the journal's maximum undercounts the previous incarnation;
// the gap puts the new incarnation far past any plausibly unjournaled ID.
const SeqFenceGap = 1 << 20

// Bootstrap loads every document present in the site's store into memory
// (the DataManager recovering state after a restart) and, when a journal is
// configured, returns the in-doubt transactions found in it — transactions
// whose persistence may be partial and must be resolved with the
// presumed-abort termination protocol (internal/recovery) before their
// documents are trusted. (The identifier-space fence past the journal's
// records is applied by New on every journaled construction.)
func (s *Site) Bootstrap() ([]store.InDoubt, error) {
	names, err := s.cfg.Store.List()
	if err != nil {
		return nil, err
	}
	for _, name := range names {
		if err := s.LoadDocument(name); err != nil {
			return nil, err
		}
	}
	if s.cfg.Journal == nil {
		return nil, nil
	}
	return s.cfg.Journal.InDoubt(), nil
}

// PersistFailed reports whether any of the documents carries a latched
// background persist failure — its Store bytes cannot be assumed to match
// the committed state, so recovery must not certify its intents durable.
func (s *Site) PersistFailed(docs []string) bool {
	for _, name := range docs {
		ds := s.doc(name)
		if ds == nil {
			continue
		}
		ds.mu.Lock()
		failed := ds.persistErr != nil
		ds.mu.Unlock()
		if failed {
			return true
		}
	}
	return false
}

// ReplaceDocument installs a fresh copy of a document, replacing the
// in-memory state and the Store copy — the catch-up path a restarted
// replica uses after fetching the current XML from a live peer. Only safe
// while the site is not serving (recovering): live docState pointers are
// never replaced under traffic.
func (s *Site) ReplaceDocument(doc *xmltree.Document) error {
	if s.Ready() {
		return fmt.Errorf("sched: site %d: ReplaceDocument while serving", s.id)
	}
	return s.AddDocument(doc)
}

// AdvancePast fences the site's transaction-identifier space and clock past
// the given sequence number. A restarted site calls it with the journal's
// maximum recorded sequence (plus a generous gap for unjournaled, read-only
// transactions), so the new incarnation can never mint an ID that collides
// with one from before the crash — peers may still hold tombstones or
// journal records naming those.
func (s *Site) AdvancePast(seq int64) {
	s.mu.Lock()
	if seq > s.seq {
		s.seq = seq
	}
	s.clock.Observe(txn.TS(seq))
	s.mu.Unlock()
}

// Call sends a message to a peer site and returns the response — the
// transport access internal/recovery uses for the termination protocol and
// document catch-up.
func (s *Site) Call(ctx context.Context, to int, msg any) (any, error) {
	return s.send(ctx, to, msg)
}

// ResolveOutcome runs the read side of the termination protocol for one
// transaction id (see liveness.go); exported for internal/recovery.
func (s *Site) ResolveOutcome(ctx context.Context, id txn.ID) string {
	return s.resolveOutcome(ctx, id)
}

// Document returns a deep copy of the current in-memory document, for
// inspection by tests and tools without racing the schedulers.
func (s *Site) Document(name string) (*xmltree.Document, error) {
	ds := s.doc(name)
	if ds == nil {
		return nil, fmt.Errorf("sched: site %d does not hold %q", s.id, name)
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.doc.Clone(), nil
}

// Documents lists the documents held in memory at this site.
func (s *Site) Documents() []string {
	s.docsMu.RLock()
	defer s.docsMu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for name := range s.docs {
		out = append(out, name)
	}
	return out
}

// HandleMessage implements the Listener role: "receive, handle and forward
// the requests from other schedulers to the DTX scheduler".
func (s *Site) HandleMessage(from int, msg any) (any, error) {
	switch m := msg.(type) {
	case transport.ExecOpReq:
		if !s.Ready() {
			return transport.ExecOpResp{Site: s.id, Failed: true,
				Code:  txn.CodeReplicaUnavailable,
				Error: fmt.Sprintf("site %d is recovering", s.id)}, nil
		}
		return s.handleExecOp(m), nil
	case transport.SnapshotReadReq:
		if !s.Ready() {
			return transport.SnapshotReadResp{Site: s.id, Failed: true,
				Code:  txn.CodeReplicaUnavailable,
				Error: fmt.Sprintf("site %d is recovering", s.id)}, nil
		}
		return s.handleSnapshotRead(m), nil
	case transport.SnapshotReleaseReq:
		s.snapshotRelease(m.Txn)
		return transport.Ack{OK: true}, nil
	case transport.PingReq:
		return transport.Ack{OK: s.Ready()}, nil
	case transport.TxnStatusReq:
		return s.txnStatusLocal(m.Txn), nil
	case transport.FetchDocReq:
		return s.handleFetchDoc(m), nil
	case transport.SiteStatusReq:
		return s.siteStatus(), nil
	case transport.MetricsReq:
		return transport.MetricsResp{Site: s.id, Text: s.MetricsText()}, nil
	case transport.UndoOpReq:
		s.undoOpLocal(m.Txn, m.OpIdx)
		return transport.Ack{OK: true}, nil
	case transport.CommitReq:
		// A remote consolidation request for a transaction this site has no
		// record of must be refused, not vacuously acknowledged: a site that
		// crashed and restarted between executing the operations and
		// receiving the commit lost the effects with its old incarnation,
		// and acking would report commit over bytes that do not exist. (The
		// coordinator's LOCAL commitLocal call legitimately no-ops for a
		// transaction that never touched its site; that call does not come
		// through here.)
		s.mu.Lock()
		_, inPart := s.part[m.Txn]
		_, terminated := s.finished[m.Txn]
		s.mu.Unlock()
		if !inPart && !terminated {
			return transport.Ack{OK: false,
				Error: fmt.Sprintf("site %d has no state for %s (restarted?)", s.id, m.Txn)}, nil
		}
		err := s.commitLocal(m.Txn)
		if err != nil {
			// A quorum shortfall happens past the local point of no return:
			// this site consolidated (persisted, locks released) but could
			// not replicate widely enough. Consolidated tells the
			// coordinator to fail the transaction honestly instead of
			// aborting over effects that cannot be undone.
			return transport.Ack{OK: false,
				Consolidated: errors.Is(err, errQuorumShort), Error: err.Error()}, nil
		}
		return transport.Ack{OK: true}, nil
	case transport.LogShipReq:
		return s.handleLogShip(m), nil
	case transport.LogFetchReq:
		return s.handleLogFetch(m), nil
	case transport.AbortReq:
		err := s.abortLocal(m.Txn)
		if err != nil {
			return transport.Ack{OK: false, Error: err.Error()}, nil
		}
		return transport.Ack{OK: true}, nil
	case transport.FailReq:
		s.failLocal(m.Txn)
		return transport.Ack{OK: true}, nil
	case transport.WFGReq:
		return transport.WFGResp{Edges: s.localEdges()}, nil
	case transport.VictimReq:
		s.signalAbort(m.Txn, m.Reason)
		return transport.Ack{OK: true}, nil
	case transport.WakeReq:
		s.signalWake(m.Txn)
		return transport.Ack{OK: true}, nil
	case transport.SubmitReq:
		var res *Result
		var err error
		if m.ReadOnly {
			res, err = s.SubmitReadOnly(m.Ops)
		} else {
			res, err = s.Submit(m.Ops)
		}
		if err != nil {
			return transport.SubmitResp{Error: err.Error()}, nil
		}
		return transport.SubmitResp{
			Txn:     res.Txn,
			State:   res.State.String(),
			Results: res.Results,
			Code:    txn.ErrorCode(res.Err),
			Error:   res.Reason,
		}, nil
	default:
		return nil, fmt.Errorf("sched: site %d: unknown message %T", s.id, msg)
	}
}

// signalWake nudges a coordinator-side transaction out of wait mode. The
// broadcast reaches every waiting goroutine of the transaction, including
// one that is mid-attempt and only selects on the channel afterwards.
func (s *Site) signalWake(id txn.ID) {
	s.mu.Lock()
	ct := s.coord[id]
	s.mu.Unlock()
	if ct == nil {
		return
	}
	ct.broadcastWake()
}

// signalAbort delivers a deadlock-victim signal to a coordinator-side
// transaction.
func (s *Site) signalAbort(id txn.ID, reason string) {
	s.mu.Lock()
	ct := s.coord[id]
	s.mu.Unlock()
	if ct == nil {
		return
	}
	select {
	case ct.abortCh <- reason:
	default:
	}
}

// send delivers a message to a peer site (never to self). The context bounds
// the exchange: transaction-scoped messages pass the transaction's context,
// cleanup messages (undo, commit, abort, fail, wake-ups) pass a detached one
// because they must complete even after the client gave up. Every exchange
// feeds the liveness view: an answer restores the peer to Up, a torn-down
// connection (ErrPeerClosed) demotes it to Suspect instead of staying a
// per-call hard error.
func (s *Site) send(ctx context.Context, to int, msg any) (any, error) {
	if s.node == nil {
		return nil, fmt.Errorf("sched: site %d is not attached to a network", s.id)
	}
	resp, err := s.node.Send(ctx, to, msg)
	switch {
	case err == nil:
		s.liveness.observeUp(to)
	case errors.Is(err, transport.ErrPeerClosed):
		s.liveness.observeClosed(to)
	}
	return resp, err
}

// handleFetchDoc serves a catch-up request: the current serialized form of
// a locally held document. A recovering site refuses — it cannot vouch for
// its copy until its own catch-up completes. In quorum mode the response
// additionally carries the replication-log position the clone corresponds
// to, captured under the same domain-mutex hold as the clone so the
// (document, index) pair is atomic; the fetcher resumes incremental
// replication from exactly that index. (A clone taken while writers are
// mid-transaction can carry their uncommitted effects — the same caveat the
// eager-mode catch-up has always had; quorum callers fetch at quiescent
// points or accept convergence through subsequent ships.)
func (s *Site) handleFetchDoc(req transport.FetchDocReq) transport.FetchDocResp {
	if !s.Ready() {
		return transport.FetchDocResp{}
	}
	ds := s.doc(req.Doc)
	if ds == nil {
		return transport.FetchDocResp{}
	}
	ds.mu.Lock()
	doc := ds.doc.Clone()
	head := ds.replApplied
	ds.mu.Unlock()
	return transport.FetchDocResp{Found: true, XML: doc.String(), Head: head}
}

// siteStatus reports the site's operational state for dtxctl -status.
func (s *Site) siteStatus() transport.SiteStatusResp {
	st := s.Stats()
	resp := transport.SiteStatusResp{
		Site:      s.id,
		Ready:     s.Ready(),
		Documents: s.Documents(),
		Peers:     s.PeerStates(),
		Committed: st.TxnsCommitted,
		Aborted:   st.TxnsAborted,
		Failed:    st.TxnsFailed,
	}
	sort.Strings(resp.Documents)
	for _, name := range resp.Documents {
		ds := s.doc(name)
		if ds == nil {
			continue
		}
		d := transport.DocStatus{Name: name, Role: "replica", Primary: s.primaryOf(name)}
		if s.replLog == nil || d.Primary == s.id {
			// Eager mode has no primaries; every replica reports as one so the
			// status view never suggests a lag that cannot exist.
			d.Role = "primary"
		}
		ds.mu.Lock()
		d.Applied = ds.replApplied
		d.Head = ds.knownHead
		d.Protocol = ds.proto.Name()
		ds.mu.Unlock()
		if d.Applied > d.Head {
			// The primary's own applied position IS the head.
			d.Head = d.Applied
		}
		d.Behind = d.Head - d.Applied
		resp.Docs = append(resp.Docs, d)
	}
	if s.cfg.Journal != nil {
		for _, d := range s.cfg.Journal.InDoubt() {
			resp.InDoubt = append(resp.InDoubt, transport.InDoubtTxn{Txn: d.Txn, Docs: d.Docs})
		}
	}
	return resp
}
