package sched

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/mvcc"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/vindex"
	"repro/internal/xpath"
)

// This file is the scheduler half of the MVCC snapshot-read subsystem
// (internal/mvcc holds the version chains). A read-only transaction resolves
// a begin timestamp at its coordinator, and every query pins — at whichever
// site serves it — the newest committed version of its document at or below
// that timestamp. Pinned versions are immutable trees, so queries evaluate
// against them with zero lock-table footprint and zero wait-for-graph edges;
// commit and abort reduce to releasing the pins.
//
// Consistency: every read observes a committed prefix of its document's
// history — never a writer's mid-transaction state — and repeated reads of
// one document observe the same version (the pin is per transaction per
// document and never re-taken). Under writers overlapping on one document
// the published head can lag the newest commit until the overlap drains, so
// a reader may be served a slightly older committed version rather than
// block; strict 2PL writers are unaffected.

// roPinSet is the per-site pin state of one read-only transaction. The
// registry map (Site.roPins, guarded by Site.roMu) holds one per transaction
// that has read here; the set's own mutex serialises pinning against
// release, so the site-wide registry lock is never held across version
// pinning or materialisation. closed marks a released set: a stale read
// arriving after release must refuse, not leak a fresh pin.
type roPinSet struct {
	ts          txn.TS
	coordinator int
	created     time.Time // for the orphan sweep's age threshold

	mu     sync.Mutex
	closed bool
	pins   map[string]roPin // document -> pinned version
}

type roPin struct {
	ver   *mvcc.Version
	chain *mvcc.Chain
}

// handleSnapshotRead serves one remote snapshot read. The reader's begin
// timestamp is folded into this site's clock BEFORE pinning: every commit
// stamped here afterwards gets a timestamp strictly above it, so the version
// pinned now stays the correct one for this reader — later commits cannot
// retroactively fall under its begin timestamp.
func (s *Site) handleSnapshotRead(req transport.SnapshotReadReq) transport.SnapshotReadResp {
	s.mu.Lock()
	s.clock.Observe(req.TS)
	s.mu.Unlock()
	res, verTS := s.snapshotRead(req.Txn, req.TS, req.Coordinator, req.Doc, req.Query)
	return transport.SnapshotReadResp{
		Site:      s.id,
		Failed:    res.failed,
		Code:      res.code,
		Error:     res.err,
		Results:   res.results,
		VersionTS: verTS,
	}
}

// snapshotRead evaluates one query of a read-only transaction against the
// version of the document pinned for it here, pinning one first if this is
// the transaction's first read of the document at this site.
func (s *Site) snapshotRead(id txn.ID, ts txn.TS, coordinator int, docName, query string) (localResult, txn.TS) {
	ds := s.doc(docName)
	if ds == nil {
		return localResult{failed: true, code: txn.CodeUnknownDocument,
			err: fmt.Sprintf("site %d does not hold document %q", s.id, docName)}, 0
	}
	if stale, msg := s.replicaStale(docName, ds); stale {
		// Quorum mode: this follower knows it lags the primary beyond the
		// staleness bound; refuse so the coordinator retries at the primary.
		s.m.staleRefusals.Inc()
		return localResult{failed: true, code: txn.CodeReplicaStale, err: msg}, 0
	}
	q, err := s.queries.Get(query)
	if err != nil {
		return localResult{failed: true, err: err.Error()}, 0
	}

	s.roMu.Lock()
	if s.isFinished(id) {
		s.roMu.Unlock()
		return s.terminatedResult(id), 0
	}
	set := s.roPins[id]
	if set == nil {
		set = &roPinSet{ts: ts, coordinator: coordinator, created: time.Now(),
			pins: make(map[string]roPin)}
		s.roPins[id] = set
	}
	s.roMu.Unlock()

	set.mu.Lock()
	// Re-check under the set mutex: a release that fetched the set between
	// our registry lookup and here has closed it (and unpinned everything).
	if set.closed {
		set.mu.Unlock()
		return s.terminatedResult(id), 0
	}
	pin, ok := set.pins[docName]
	if !ok {
		ver := s.pinDocVersion(ds, ts)
		if ver == nil {
			set.mu.Unlock()
			return localResult{failed: true, code: txn.CodeSnapshotUnavailable,
				err: fmt.Sprintf("site %d retains no version of %q at or below ts %d", s.id, docName, ts)}, 0
		}
		pin = roPin{ver: ver, chain: ds.versions}
		set.pins[docName] = pin
	}
	set.mu.Unlock()

	// The pinned tree is immutable: evaluate outside every mutex. An
	// indexable query is answered from the version's own snapshot index —
	// built lazily from the pinned tree, never from the live postings, so
	// the read stays consistent with its pin no matter how far writers have
	// advanced the live index.
	results, indexed := s.snapshotEval(ds, q, pin.ver)
	if indexed {
		s.m.indexedQueries.Inc()
	}
	s.m.snapshotReads.Inc()
	return localResult{executed: true, acquired: true, results: results}, pin.ver.TS
}

// snapshotEval evaluates a snapshot read's query against its pinned
// version, through the version's value index when one covers the query.
// Keys enabled after the version's index was built are absent from it, so
// those reads fall back to scanning the pinned tree; cold keys still feed
// the live index's auto-index miss counters (a lock-free counter bump).
func (s *Site) snapshotEval(ds *docState, q *xpath.Query, ver *mvcc.Version) ([]string, bool) {
	if ix := ds.guide.ValueIndex(); ix != nil {
		if plan, ok := vindex.PlanQuery(q); ok {
			if ix.Enabled(plan.Key) {
				if nodes, ok := ver.ValueIndex(ix.Keys).Eval(q, plan); ok {
					return xpath.RenderStrings(q, nodes), true
				}
			} else {
				ix.NoteMiss(plan.Key)
			}
		}
	}
	return xpath.EvalStrings(q, ver.Doc), false
}

// pinDocVersion pins the newest committed version of the document at or
// below ts, materialising a fresh one first when the chain's head lags the
// commit timestamp and the document is at a clean point (no uncommitted
// writer effects in the tree). Returns nil when every retained version is
// newer than ts — the reader's snapshot has been GC'd away.
func (s *Site) pinDocVersion(ds *docState, ts txn.TS) *mvcc.Version {
	if ds.versions.Stale() {
		ds.mu.Lock()
		// Only a clean tree is materialisable: uncommitted writers mutate
		// the document in place, and their undo records hold live node
		// pointers, so a mid-transaction snapshot would leak exactly the
		// state snapshot isolation exists to hide. When writers keep the
		// document dirty the reader is served the best retained version
		// instead of blocking behind them.
		if len(ds.dirty) == 0 && ds.versions.Stale() {
			snap := ds.doc.Snapshot()
			if ds.versions.Publish(snap, ds.versions.CommitTS()) {
				s.m.snapshotPublishes.Inc()
			}
		}
		ds.mu.Unlock()
	}
	return ds.versions.Pin(ts)
}

// snapshotRelease releases every version a read-only transaction pinned at
// this site and tombstones the transaction so a stale in-flight read cannot
// re-pin after the release. Safe to call for transactions that never read
// here. The tombstone outcome is recorded as committed: a read-only
// transaction has no effects, so the distinction is unobservable, and the
// termination protocol never has to resolve it.
func (s *Site) snapshotRelease(id txn.ID) {
	s.roMu.Lock()
	s.mu.Lock()
	s.markFinishedLocked(id, true)
	s.mu.Unlock()
	set := s.roPins[id]
	delete(s.roPins, id)
	s.roMu.Unlock()
	if set == nil {
		return
	}
	set.mu.Lock()
	set.closed = true
	pins := set.pins
	set.pins = nil
	set.mu.Unlock()
	for _, p := range pins {
		p.chain.Unpin(p.ver)
	}
}

// releaseReadOnly finishes a read-only transaction: release the local pins
// and tell every remote site that served a read to release theirs. The
// remote releases are detached cleanup (they must complete even after the
// client gave up) and best-effort — a lost release is recovered by the
// orphan sweep at the pinning site.
func (s *Site) releaseReadOnly(ct *coordTxn) {
	id := ct.t.ID
	s.snapshotRelease(id)
	if remote := ct.roRemoteSites(s.id); len(remote) > 0 {
		_, _ = fanOut(remote, func(site int) bool {
			_, _ = s.send(context.Background(), site, transport.SnapshotReleaseReq{Txn: id})
			return true
		})
	}
}

// execSnapshotOp runs one query of a read-only transaction: route it to a
// site holding the document, pin-and-evaluate there, and record the result.
// Routing is sticky per document — once a site has pinned a version for
// this transaction, every later read of that document must return to it, or
// repeatable reads break. A site that dies before the first read of a
// document is routed around like any dead replica; one that dies holding
// the transaction's pin makes further reads of that document fail with
// ErrReplicaUnavailable (the snapshot died with the pin).
func (s *Site) execSnapshotOp(ctx context.Context, ct *coordTxn, opIdx int) error {
	op := ct.t.Ops[opIdx]
	id, ts := ct.t.ID, ct.t.TS
	for {
		if ctx.Err() != nil {
			return fmt.Errorf("%w: %w", txn.ErrAborted, context.Cause(ctx))
		}
		route, bound := ct.roSiteFor(op.Doc)
		if !bound {
			sites, down := s.cfg.Catalog.LiveSites(op.Doc, s.liveness)
			if len(sites) == 0 && len(down) == 0 {
				return fmt.Errorf("%w: no site holds %q", txn.ErrUnknownDocument, op.Doc)
			}
			if len(sites) == 0 {
				return fmt.Errorf("%w: no live replica of %q", txn.ErrReplicaUnavailable, op.Doc)
			}
			// Prefer the local replica: no round trip, and the begin
			// timestamp came from this site's own clock. The claim is taken
			// BEFORE dispatch so concurrent batched reads of one document
			// agree on the site, and the terminal release reaches it even if
			// this read errors mid-flight.
			candidate := sites[0]
			for _, site := range sites {
				if site == s.id {
					candidate = s.id
					break
				}
			}
			if s.replLog != nil && s.recentlyWritten(op.Doc) {
				// Read-your-writes: a transaction submitted through this site
				// committed an update to the document within the staleness
				// window, and only the primary is guaranteed to reflect it.
				if p := s.primaryOf(op.Doc); p >= 0 {
					for _, site := range sites {
						if site == p {
							candidate = p
							break
						}
					}
				}
			}
			route = ct.claimRoSite(op.Doc, candidate)
		}
		target := route.site

		var res localResult
		if target == s.id {
			res, _ = s.snapshotRead(id, ts, s.id, op.Doc, op.Query)
		} else {
			s.m.remoteOpsSent.Inc()
			resp, err := s.send(ctx, target, transport.SnapshotReadReq{
				Txn: id, TS: ts, Coordinator: s.id, Doc: op.Doc, Query: op.Query,
			})
			if err != nil {
				if s.liveness.enabled && ctx.Err() == nil && ct.rebindRoSite(op.Doc, target) {
					// The site died before any read of this document
					// succeeded there — no pin to honour; the next pass
					// routes around it.
					continue
				}
				// The snapshot died with the pinning site: rerouting would
				// serve a different version, so the read fails typed.
				return fmt.Errorf("%w: snapshot read at site %d: %v", txn.ErrReplicaUnavailable, target, err)
			}
			r, ok := resp.(transport.SnapshotReadResp)
			if !ok {
				return fmt.Errorf("%w: unexpected response %T", txn.ErrFailed, resp)
			}
			if r.Failed && r.Code == txn.CodeReplicaUnavailable && s.liveness.enabled {
				// Recovering or freshly killed under this exchange: it
				// refused rather than pinned, so rebinding is safe unless a
				// sibling pinned there first.
				s.liveness.observeClosed(target)
				if ct.rebindRoSite(op.Doc, target) {
					continue
				}
			}
			res = localResult{executed: !r.Failed, failed: r.Failed, code: r.Code, err: r.Error, results: r.Results}
		}
		if res.failed && res.code == txn.CodeReplicaStale {
			// A healthy but lagging follower refused inside the bounded-
			// staleness contract. Retry at the primary — without marking the
			// follower suspect; it answered, it is just behind.
			if p := s.primaryOf(op.Doc); p >= 0 && p != target && ct.rebindRoSite(op.Doc, target) {
				ct.claimRoSite(op.Doc, p)
				continue
			}
		}
		if res.failed {
			msg := res.err
			if msg == "" {
				msg = "snapshot read failed"
			}
			return txn.FromCode(res.code, msg)
		}
		ct.markRoPinned(op.Doc, target)
		ct.results[opIdx] = res.results
		ct.t.Ops[opIdx].Executed = true
		return nil
	}
}
