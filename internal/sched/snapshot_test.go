package sched

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// TestSnapshotReadZeroLocks is the subsystem's core claim: a read-only
// transaction acquires zero locks and adds zero wait-for edges, even while a
// writer holds exclusive locks on the very document it reads.
func TestSnapshotReadZeroLocks(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	// Writer takes X locks on /people and stays open.
	writer, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
		New: personSpec("9", "Carla"),
	})); err != nil {
		t.Fatal(err)
	}
	locksBefore := s.Stats().LocksAcquired

	reader, err := s.BeginReadOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !reader.ReadOnly() {
		t.Fatal("BeginReadOnly session does not report ReadOnly")
	}
	names, err := reader.Exec(txn.NewQuery("d1", "//person/name"))
	if err != nil {
		t.Fatalf("snapshot read blocked or failed: %v", err)
	}
	if len(names) != 2 {
		t.Fatalf("snapshot read = %v, want the 2 committed names (writer's insert is uncommitted)", names)
	}
	if got := s.Stats().LocksAcquired; got != locksBefore {
		t.Fatalf("read-only transaction acquired %d locks, want 0", got-locksBefore)
	}
	if edges := s.localEdges(); len(edges) != 0 {
		t.Fatalf("read-only transaction left wait-for edges: %v", edges)
	}
	if err := reader.Commit(); err != nil {
		t.Fatalf("vacuous commit: %v", err)
	}
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIsolationNeverMidTxn: a snapshot reader never observes a
// writer's uncommitted state, and observes it promptly once committed.
func TestSnapshotIsolationNeverMidTxn(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	writer, err := s.Begin(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := writer.Exec(txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
		New: personSpec("9", "Carla"),
	})); err != nil {
		t.Fatal(err)
	}

	// Mid-transaction: the insert must be invisible.
	res, err := s.SubmitReadOnly([]txn.Operation{txn.NewQuery("d1", "//person/id")})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("mid-txn snapshot read: %v %+v", err, res)
	}
	if len(res.Results[0]) != 2 {
		t.Fatalf("mid-txn snapshot saw %v, want the 2 committed ids", res.Results[0])
	}

	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// Post-commit: a fresh snapshot transaction sees the insert.
	res, err = s.SubmitReadOnly([]txn.Operation{txn.NewQuery("d1", "//person/id")})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("post-commit snapshot read: %v %+v", err, res)
	}
	if len(res.Results[0]) != 3 {
		t.Fatalf("post-commit snapshot saw %v, want 3 ids", res.Results[0])
	}
}

// TestSnapshotRepeatableRead: re-reading a document inside one read-only
// transaction observes the same pinned version, across intervening commits.
func TestSnapshotRepeatableRead(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	reader, err := s.BeginReadOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first, err := reader.Exec(txn.NewQuery("d1", "//person/id"))
	if err != nil {
		t.Fatal(err)
	}

	// A writer commits between the reader's two reads.
	res, err := s.Submit([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
		New: personSpec("9", "Carla"),
	})})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("writer: %v %+v", err, res)
	}

	second, err := reader.Exec(txn.NewQuery("d1", "//person/id"))
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != len(second) {
		t.Fatalf("repeatable read broken: first %v, second %v", first, second)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotUpdateRefusedNonTerminal: an update on a read-only transaction
// is refused with ErrReadOnly without terminating the session.
func TestSnapshotUpdateRefusedNonTerminal(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	reader, err := s.BeginReadOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	_, err = reader.Exec(txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
		New: personSpec("9", "Carla"),
	}))
	if !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("update on read-only txn = %v, want ErrReadOnly", err)
	}
	if reader.Done() {
		t.Fatal("ErrReadOnly refusal terminated the session")
	}
	if _, err := reader.Exec(txn.NewQuery("d1", "//person/id")); err != nil {
		t.Fatalf("session dead after refusal: %v", err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}

	// The batch submission path refuses before a transaction exists.
	if _, err := s.SubmitReadOnly([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Remove, Target: "//person",
	})}); !errors.Is(err, txn.ErrReadOnly) {
		t.Fatalf("SubmitReadOnly with update = %v, want ErrReadOnly", err)
	}
}

// TestSnapshotVersionGCBounded: the per-document version chain stays bounded
// while commits churn, even with a long-running reader pinning an old
// version — the pin shields that version, not unbounded growth.
func TestSnapshotVersionGCBounded(t *testing.T) {
	const maxKeep = 3
	sites, _ := newCluster(t, 1, func(cfg *Config) {
		cfg.SnapshotVersions = maxKeep
	})
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	// Long reader pins the initial version.
	reader, err := s.BeginReadOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	first, err := reader.Exec(txn.NewQuery("d1", "//person/id"))
	if err != nil {
		t.Fatal(err)
	}

	// Churn: every write transaction advances the chain; each snapshot read
	// in between forces materialisation so versions actually accumulate.
	for i := 0; i < 20; i++ {
		res, err := s.Submit([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
			Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
			New: personSpec(fmt.Sprintf("g%d", i), "Churn"),
		})})
		if err != nil || res.State != txn.Committed {
			t.Fatalf("churn writer %d: %v %+v", i, err, res)
		}
		if _, err := s.SubmitReadOnly([]txn.Operation{txn.NewQuery("d1", "//person/id")}); err != nil {
			t.Fatalf("churn reader %d: %v", i, err)
		}
	}

	ds := s.doc("d1")
	if n := ds.versions.Len(); n > maxKeep+1 {
		t.Fatalf("version chain grew to %d under a pinned long reader, want <= %d", n, maxKeep+1)
	}
	// The pinned version is still served, unchanged.
	again, err := reader.Exec(txn.NewQuery("d1", "//person/id"))
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != len(first) {
		t.Fatalf("long reader's pinned version changed: %v -> %v", first, again)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	// With the pin gone, the next publish compacts the chain to the bound.
	res, err := s.Submit([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
		Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
		New: personSpec("last", "Churn"),
	})})
	if err != nil || res.State != txn.Committed {
		t.Fatalf("final writer: %v %+v", err, res)
	}
	if _, err := s.SubmitReadOnly([]txn.Operation{txn.NewQuery("d1", "//person/id")}); err != nil {
		t.Fatal(err)
	}
	if n := ds.versions.Len(); n > maxKeep {
		t.Fatalf("version chain = %d after pin release, want <= %d", n, maxKeep)
	}
}

// TestSnapshotUnavailableTooOld: a reader whose begin timestamp predates
// every retained version fails with the typed ErrSnapshotUnavailable
// ("snapshot too old"), which wraps ErrAborted so retry policies resubmit.
func TestSnapshotUnavailableTooOld(t *testing.T) {
	sites, _ := newCluster(t, 1, func(cfg *Config) {
		cfg.SnapshotVersions = 1
	})
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	// The reader resolves its begin timestamp now and waits.
	reader, err := s.BeginReadOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Two write transactions: the second's copy-on-first-write publishes a
	// version newer than the reader's timestamp, and MaxVersions=1 GC
	// retires everything older.
	for i := 0; i < 2; i++ {
		res, err := s.Submit([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
			Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
			New: personSpec(fmt.Sprintf("w%d", i), "Writer"),
		})})
		if err != nil || res.State != txn.Committed {
			t.Fatalf("writer %d: %v %+v", i, err, res)
		}
	}

	_, err = reader.Exec(txn.NewQuery("d1", "//person/id"))
	if !errors.Is(err, txn.ErrSnapshotUnavailable) {
		t.Fatalf("stale reader = %v, want ErrSnapshotUnavailable", err)
	}
	if !errors.Is(err, txn.ErrAborted) {
		t.Fatalf("ErrSnapshotUnavailable must wrap ErrAborted, got %v", err)
	}
	if !reader.Done() {
		t.Fatal("snapshot-unavailable reader not terminal")
	}
}

// TestSnapshotReadRemote: a read-only transaction reads a document held only
// at another site through the versioned-read transport request, and its
// terminal release frees the pins there.
func TestSnapshotReadRemote(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	addDoc(t, sites[1], "d1", peopleXML)

	reader, err := sites[0].BeginReadOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ids, err := reader.Exec(txn.NewQuery("d1", "//person/id"))
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 {
		t.Fatalf("remote snapshot read = %v, want 2 ids", ids)
	}
	sites[1].roMu.Lock()
	pinned := len(sites[1].roPins)
	sites[1].roMu.Unlock()
	if pinned != 1 {
		t.Fatalf("remote site holds %d pin sets mid-transaction, want 1", pinned)
	}
	if err := reader.Commit(); err != nil {
		t.Fatal(err)
	}
	sites[1].roMu.Lock()
	pinned = len(sites[1].roPins)
	sites[1].roMu.Unlock()
	if pinned != 0 {
		t.Fatalf("remote site still holds %d pin sets after commit", pinned)
	}
	if got := sites[1].Stats().SnapshotReads; got != 1 {
		t.Fatalf("remote SnapshotReads = %d, want 1", got)
	}
}

// TestSnapshotConcurrentReadersWriters races snapshot readers against
// writers on one document — the publish/pin/retire interleavings the race
// detector should sweep (this test runs under -race in CI's chaos job).
func TestSnapshotConcurrentReadersWriters(t *testing.T) {
	sites, _ := newCluster(t, 1, func(cfg *Config) {
		cfg.SnapshotVersions = 2
	})
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	const writers, readers, rounds = 2, 4, 15
	var wg sync.WaitGroup
	errCh := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := s.Submit([]txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
					Kind: xupdate.Insert, Target: "/people", Pos: xmltree.Into,
					New: personSpec(fmt.Sprintf("w%d-%d", w, i), "W"),
				})})
				if err != nil {
					errCh <- err
					return
				}
				if res.State != txn.Committed && !errors.Is(res.Err, txn.ErrAborted) {
					errCh <- fmt.Errorf("writer %d round %d: %s (%s)", w, i, res.State, res.Reason)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				res, err := s.SubmitReadOnly([]txn.Operation{
					txn.NewQuery("d1", "//person/id"),
					txn.NewQuery("d1", "//person/name"),
				})
				if err != nil {
					errCh <- err
					return
				}
				if res.State != txn.Committed {
					// GC under MaxVersions=2 may retire a slow reader's
					// snapshot; that typed outcome is legal here.
					if errors.Is(res.Err, txn.ErrSnapshotUnavailable) {
						continue
					}
					errCh <- fmt.Errorf("reader %d round %d: %s (%s)", r, i, res.State, res.Reason)
					return
				}
				// Both queries of one transaction read the same pinned
				// version: ids and names must agree in cardinality.
				if len(res.Results[0]) != len(res.Results[1]) {
					errCh <- fmt.Errorf("reader %d round %d: %d ids vs %d names from one snapshot",
						r, i, len(res.Results[0]), len(res.Results[1]))
					return
				}
			}
		}(r)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if t.Failed() {
		return
	}
	// No reader was ever a deadlock victim.
	if v := s.Stats().DeadlockAborts; v != 0 {
		t.Fatalf("deadlock victims = %d in a snapshot-reader workload, want 0", v)
	}
}

// TestSnapshotOrphanPinsSweep: pins left by a dead coordinator are released
// by the orphan sweep so version GC is not blocked forever.
func TestSnapshotOrphanPinsSweep(t *testing.T) {
	sites, _ := newCluster(t, 2, func(cfg *Config) {
		cfg.HeartbeatInterval = 10 * time.Millisecond
		cfg.HeartbeatMisses = 2
	})
	addDoc(t, sites[1], "d1", peopleXML)

	reader, err := sites[0].BeginReadOnly(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := reader.Exec(txn.NewQuery("d1", "//person/id")); err != nil {
		t.Fatal(err)
	}
	// Coordinator dies holding the remote pin; its release never arrives.
	sites[0].Kill()

	deadline := time.Now().Add(5 * time.Second)
	for {
		sites[1].roMu.Lock()
		n := len(sites[1].roPins)
		sites[1].roMu.Unlock()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphaned snapshot pins not swept: %d sets remain", n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}
