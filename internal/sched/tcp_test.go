package sched

import (
	"context"
	"testing"
	"time"

	"repro/internal/replica"
	"repro/internal/transport"
	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// newTCPCluster wires two sites over real TCP sockets, as cmd/dtxd does,
// returning the sites and their listen addresses.
func newTCPCluster(t *testing.T) ([]*Site, []string) {
	t.Helper()
	catalog := replica.NewCatalog()
	sites := make([]*Site, 2)
	nodes := make([]*transport.TCPNode, 2)
	for i := range sites {
		sites[i] = New(Config{
			SiteID:        i,
			Sites:         []int{0, 1},
			Catalog:       catalog,
			RetryInterval: 5 * time.Millisecond,
		})
		s := sites[i]
		if err := s.Attach(func(h transport.Handler) (transport.Node, error) {
			n, err := transport.ListenTCP(s.ID(), "127.0.0.1:0", h)
			if err != nil {
				return nil, err
			}
			nodes[s.ID()] = n
			return n, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	nodes[0].SetPeer(1, nodes[1].Addr())
	nodes[1].SetPeer(0, nodes[0].Addr())
	t.Cleanup(func() {
		for _, s := range sites {
			s.Stop()
		}
	})
	return sites, []string{nodes[0].Addr(), nodes[1].Addr()}
}

func TestTCPDistributedTransaction(t *testing.T) {
	sites, _ := newTCPCluster(t)
	addDoc(t, sites[0], "d1", peopleXML)
	addDoc(t, sites[1], "d1", peopleXML)
	addDoc(t, sites[1], "d2", productsXML)

	// A transaction from site 0 touching both documents: the replicated d1
	// update fans out over TCP; the d2 query is remote-only.
	res, err := sites[0].Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
			Pos: xmltree.Into, New: personSpec("99", "Remote")}),
		txn.NewQuery("d2", "//product[id='4']/description"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}
	if len(res.Results[1]) != 1 || res.Results[1][0] != "Chair" {
		t.Fatalf("remote query = %v", res.Results[1])
	}
	for i, s := range sites {
		doc, err := s.Document("d1")
		if err != nil {
			t.Fatal(err)
		}
		if len(doc.Root.Children) != 3 {
			t.Fatalf("site %d persons = %d", i, len(doc.Root.Children))
		}
	}
}

func TestTCPClientSubmitMessage(t *testing.T) {
	sites, addrs := newTCPCluster(t)
	addDoc(t, sites[0], "d1", peopleXML)
	addDoc(t, sites[1], "d1", peopleXML)

	// A dtxctl-style client: its own TCP endpoint, submitting transactions
	// to site 0's Listener over the wire.
	client, err := transport.ListenTCP(1<<20, "127.0.0.1:0",
		transport.HandlerFunc(func(from int, msg any) (any, error) {
			return transport.Ack{OK: true}, nil
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	client.SetPeer(0, addrs[0])

	resp, err := client.Send(context.Background(), 0, transport.SubmitReq{
		Ops: []txn.Operation{txn.NewQuery("d1", "//person/name")},
	})
	if err != nil {
		t.Fatal(err)
	}
	sub, ok := resp.(transport.SubmitResp)
	if !ok || sub.State != "committed" {
		t.Fatalf("submit response = %#v", resp)
	}
	if len(sub.Results[0]) != 2 {
		t.Fatalf("results = %v", sub.Results)
	}
}

func TestTCPWFGCollection(t *testing.T) {
	sites, _ := newTCPCluster(t)
	addDoc(t, sites[1], "d2", productsXML)
	// No waiting transactions: the sweep must report no deadlock, and the
	// WFG pull over TCP must succeed.
	if found := sites[0].CheckDeadlocks(); found {
		t.Fatal("phantom deadlock")
	}
	resp, err := sites[0].HandleMessage(1, transport.WFGReq{})
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := resp.(transport.WFGResp); !ok || len(g.Edges) != 0 {
		t.Fatalf("wfg = %#v", resp)
	}
}
