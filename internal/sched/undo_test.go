package sched

import (
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// TestPartialAcquireUndoneEverywhere pins Algorithm 1 l. 15–17: an
// operation that executes at one replica site but cannot lock at another is
// undone at the site where it ran, and the transaction waits; when the
// blocker releases, the operation re-executes and commits everywhere.
func TestPartialAcquireUndoneEverywhere(t *testing.T) {
	sites, _ := newCluster(t, 2, nil)
	s0, s1 := sites[0], sites[1]
	addDoc(t, s0, "d1", peopleXML)
	addDoc(t, s1, "d1", peopleXML)

	// A foreign transaction holds conflicting locks at site 1 only, via the
	// participant interface (as if coordinated elsewhere).
	blocker := txn.ID{Site: 1, Seq: 999}
	res := s1.processOperation(blocker, 50, 1, 0, txn.NewQuery("d1", "//person"))
	if !res.executed {
		t.Fatalf("blocker setup failed: %+v", res)
	}

	// The insert conflicts with the query's ST locks at site 1 but not at
	// site 0 — it must execute at site 0, be undone there, and wait.
	done := make(chan *Result, 1)
	go func() {
		r, err := s0.Submit([]txn.Operation{
			txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Insert, Target: "/people",
				Pos: xmltree.Into, New: personSpec("22", "Patricia")}),
		})
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()

	// While blocked, site 0's document must show no trace of the insert
	// (the partial execution was undone).
	deadline := time.Now().Add(2 * time.Second)
	for {
		conflicts := s0.Stats().OpConflicts + s1.Stats().OpConflicts
		if conflicts > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("transaction never blocked")
		}
		time.Sleep(2 * time.Millisecond)
	}
	// The conflict is counted at site 1's lock table before the coordinator
	// undoes the partial execution at site 0 (and each wait-mode retry
	// re-executes and re-undoes), so poll for the undone state rather than
	// sampling the execute/undo window.
	deadline = time.Now().Add(2 * time.Second)
	for {
		doc0, _ := s0.Document("d1")
		if len(doc0.Root.Children) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("partial insert still visible at site 0: %d persons", len(doc0.Root.Children))
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Release the blocker; the insert must now complete at both sites.
	if err := s1.abortLocal(blocker); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-done:
		if r.State != txn.Committed {
			t.Fatalf("state = %v (%s)", r.State, r.Reason)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("transaction never completed after release")
	}
	for i, s := range sites {
		doc, _ := s.Document("d1")
		if len(doc.Root.Children) != 3 {
			t.Fatalf("site %d persons = %d after commit", i, len(doc.Root.Children))
		}
	}
}

// TestFailedUpdateAbortsTransaction: an update that matches targets but
// fails during execution (transpose arity) aborts the whole transaction and
// rolls back its earlier effects.
func TestFailedUpdateAbortsTransaction(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d2", productsXML)
	before, _ := s.Document("d2")

	res, err := s.Submit([]txn.Operation{
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Insert, Target: "/products",
			Pos: xmltree.Into, New: productSpec("99", "Temp", "1")}),
		// Transpose with a multi-match path fails its arity check.
		txn.NewUpdate("d2", &xupdate.Update{Kind: xupdate.Transpose,
			Target: "//product", Target2: "//product[id='4']"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Failed {
		t.Fatalf("state = %v (%s)", res.State, res.Reason)
	}
	after, _ := s.Document("d2")
	if !xmltree.Equal(before, after) {
		t.Fatal("failed transaction left effects")
	}
}

// TestStatsAccounting: commits, aborts and executed-op counters add up for
// a known sequence.
func TestStatsAccounting(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)

	for i := 0; i < 3; i++ {
		if _, err := s.Submit([]txn.Operation{txn.NewQuery("d1", "//person")}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Submit([]txn.Operation{txn.NewQuery("missing", "/x")}); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.TxnsCommitted != 3 || st.TxnsFailed != 1 || st.TxnsAborted != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.OpsExecuted != 3 {
		t.Fatalf("ops executed = %d", st.OpsExecuted)
	}
	if st.LocksAcquired == 0 {
		t.Fatal("no locks recorded")
	}
}

// TestNoOpUpdateCommits: an update whose target matches nothing is a no-op
// but the transaction still commits (locks are class-level, protecting the
// phantom range).
func TestNoOpUpdateCommits(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)
	res, err := s.Submit([]txn.Operation{
		txn.NewUpdate("d1", &xupdate.Update{Kind: xupdate.Remove, Target: "//person[id='404']"}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != txn.Committed {
		t.Fatalf("state = %v", res.State)
	}
}

// TestDocumentAccessors covers Documents and the error path of Document.
func TestDocumentAccessors(t *testing.T) {
	sites, _ := newCluster(t, 1, nil)
	s := sites[0]
	addDoc(t, s, "d1", peopleXML)
	if got := s.Documents(); len(got) != 1 || got[0] != "d1" {
		t.Fatalf("documents = %v", got)
	}
	if _, err := s.Document("nope"); err == nil {
		t.Fatal("missing document returned")
	}
}
