package store

import (
	"bufio"
	"fmt"
	"os"
	"strings"
	"sync"
)

// Journal is a write-ahead commit log for multi-document transactions —
// the durability/atomicity direction the paper defers to future work ("the
// authors intend to develop solutions for DTX to work with the properties
// of atomicity and durability", §5).
//
// A site logs an intent record naming every document a transaction will
// persist, persists the documents (each individually atomic via the
// FileStore's temp-file + rename), then logs a commit record. After a
// crash, Recover reports transactions with an intent but no commit —
// in-doubt transactions whose document set may be partially persisted and
// whose outcome must be resolved against the coordinator.
//
// Record format, one per line:
//
//	I <txn> <doc>...
//	C <txn>
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
}

// OpenJournal opens (creating if needed) a journal file for appending.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	return &Journal{f: f, path: path}, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

func validToken(s string) bool {
	return s != "" && !strings.ContainsAny(s, " \n\r\t")
}

// LogIntent records that the transaction is about to persist the documents.
// The record is flushed to stable storage before returning.
func (j *Journal) LogIntent(txn string, docs []string) error {
	if !validToken(txn) {
		return fmt.Errorf("store: journal: invalid txn id %q", txn)
	}
	for _, d := range docs {
		if !validToken(d) {
			return fmt.Errorf("store: journal: invalid document name %q", d)
		}
	}
	line := "I " + txn
	if len(docs) > 0 {
		line += " " + strings.Join(docs, " ")
	}
	return j.append(line)
}

// LogCommit records that every document of the transaction is persisted.
func (j *Journal) LogCommit(txn string) error {
	if !validToken(txn) {
		return fmt.Errorf("store: journal: invalid txn id %q", txn)
	}
	return j.append("C " + txn)
}

func (j *Journal) append(line string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal is closed")
	}
	if _, err := j.f.WriteString(line + "\n"); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// InDoubt describes a transaction found in the journal with an intent
// record but no commit record: its persistence may be partial.
type InDoubt struct {
	Txn  string
	Docs []string
}

// Recover scans a journal file and returns the in-doubt transactions, in
// intent order. A missing journal file means nothing to recover. Torn
// trailing lines (a crash mid-append) are ignored.
func Recover(path string) ([]InDoubt, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	defer f.Close()

	intents := make(map[string][]string)
	var order []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 2 {
			continue // torn or blank line
		}
		switch fields[0] {
		case "I":
			txn := fields[1]
			if _, seen := intents[txn]; !seen {
				order = append(order, txn)
			}
			intents[txn] = fields[2:]
		case "C":
			delete(intents, fields[1])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	var out []InDoubt
	for _, txn := range order {
		if docs, ok := intents[txn]; ok {
			out = append(out, InDoubt{Txn: txn, Docs: docs})
		}
	}
	return out, nil
}
