package store

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/txn"
)

// Journal is a write-ahead commit log for multi-document transactions —
// the durability/atomicity direction the paper defers to future work ("the
// authors intend to develop solutions for DTX to work with the properties
// of atomicity and durability", §5).
//
// A site logs an intent record naming every document a transaction will
// persist, persists the documents (each individually atomic via the
// FileStore's temp-file + rename), then logs a commit record. After a
// crash, the open intents are the in-doubt transactions: their document set
// may be partially persisted and their outcome must be resolved with the
// presumed-abort termination protocol (internal/recovery).
//
// A coordinator additionally logs a decision record BEFORE fanning the
// commit out to the participants. The decision record is what makes
// presumed abort sound: a recovering participant asks the coordinator, and
// the coordinator answers commit if (and only if) a decision record exists —
// no record means no participant can have consolidated, so abort is safe to
// presume.
//
// Record format, one per line:
//
//	I <txn> <doc>...   intent: the transaction is about to persist the docs
//	C <txn>            commit: every document of the transaction is persisted
//	A <txn>            abort: the transaction was resolved as aborted
//	                   (closes the intent and voids any decision)
//	D <txn>            coordinator commit decision
//	K <site>:<seq>,... checkpoint marker carrying the max sequence number
//	                   seen per site, for restart identifier fencing
//
// The journal keeps its live state (open intents, live decisions, max
// sequence numbers) in memory, rebuilt by OpenJournal from the file, so a
// restarted site resumes from the last checkpoint without a full replay by
// its callers. Once every intent of a batch is sealed the file is compacted:
// a checkpoint record plus the still-live records are rewritten atomically
// (temp file + rename), so the journal does not grow without bound.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string

	// Live state, maintained across appends and rebuilt on open.
	open          map[string][]string // in-doubt intents: txn -> docs
	openOrder     []string            // intent order, for deterministic reports
	decisions     map[string]bool     // live coordinator commit decisions
	decisionOrder []string
	decisionHead  int                    // decisionOrder index of the oldest possibly-live entry
	maxSeq        map[int]int64          // max sequence number seen per site
	repl          map[string][]ReplEntry // bounded per-doc replication-record tail (O records)

	// records counts appended lines since the last compaction; when it
	// passes checkpointEvery and the journal has at least one sealed record
	// to drop, the file is compacted in place.
	records         int
	checkpointEvery int
}

// maxDecisions bounds the live decision set. Decisions for cleanly completed
// local transactions are dropped as their commit record lands; the cap
// protects against a pathological run of decided transactions that never
// seal (each one would otherwise be carried across every checkpoint
// forever).
//
// Both discard rules approximate the textbook protocol, which retains a
// decision until every PARTICIPANT acknowledges its own durability: here the
// coordinator forgets on its own seal (or at the cap), so a participant that
// stays crashed past the retention window — beyond this site's tombstone
// ring AND its decision set — hears presumed abort for a transaction that
// committed. The window is generous (thousands of transactions), and the
// participant's documents still converge by catching up from a live
// replica; only the journal's outcome label for that corner is wrong. The
// honest fix is participant acks; until then this comment is the contract.
const maxDecisions = 8192

// defaultCheckpointEvery is the compaction threshold in appended records.
const defaultCheckpointEvery = 4096

// replTailLen bounds the per-document replication-record tail retained
// across compactions. The tail only has to cover the lag a follower can
// accumulate while the primary restarts — anything longer falls back to
// whole-document transfer anyway — so it is kept much shorter than the
// in-memory shipping log's horizon.
const replTailLen = 128

// OpenJournal opens (creating if needed) a journal file for appending and
// rebuilds the live state — open intents, live decisions, per-site sequence
// fences — from its records, resuming from the last checkpoint.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{
		path:            path,
		open:            make(map[string][]string),
		decisions:       make(map[string]bool),
		maxSeq:          make(map[int]int64),
		checkpointEvery: defaultCheckpointEvery,
	}
	if err := j.replay(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	j.f = f
	return j, nil
}

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// SetCheckpointEvery overrides the compaction threshold (records appended
// between compactions). Values below 1 restore the default.
func (j *Journal) SetCheckpointEvery(n int) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if n < 1 {
		n = defaultCheckpointEvery
	}
	j.checkpointEvery = n
}

func validToken(s string) bool {
	return s != "" && !strings.ContainsAny(s, " \n\r\t")
}

// replay rebuilds the live state from the journal file. A missing file means
// a fresh journal; torn trailing lines (a crash mid-append) are skipped.
func (j *Journal) replay() error {
	f, err := os.Open(j.path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		j.applyLine(sc.Text())
		j.records++
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	return nil
}

// applyLine folds one record into the live state. Unknown or torn lines are
// ignored, matching Recover.
func (j *Journal) applyLine(line string) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return
	}
	switch fields[0] {
	case "I":
		j.noteIntent(fields[1], fields[2:])
	case "C":
		j.noteSealed(fields[1])
	case "A":
		j.noteSealed(fields[1])
	case "D":
		j.noteDecision(fields[1])
	case "O":
		if len(fields) == 4 {
			if idx, err := strconv.ParseInt(fields[2], 10, 64); err == nil {
				j.noteRepl(fields[1], idx, fields[3])
			}
		}
	case "K":
		for _, part := range strings.Split(fields[1], ",") {
			colon := strings.IndexByte(part, ':')
			if colon < 0 {
				continue
			}
			site, err1 := strconv.Atoi(part[:colon])
			seq, err2 := strconv.ParseInt(part[colon+1:], 10, 64)
			if err1 == nil && err2 == nil && seq > j.maxSeq[site] {
				j.maxSeq[site] = seq
			}
		}
	}
}

func (j *Journal) noteID(t string) {
	if id, err := txn.ParseID(t); err == nil && id.Seq > j.maxSeq[id.Site] {
		j.maxSeq[id.Site] = id.Seq
	}
}

func (j *Journal) noteIntent(t string, docs []string) {
	if _, seen := j.open[t]; !seen {
		j.openOrder = append(j.openOrder, t)
	}
	j.open[t] = docs
	j.noteID(t)
}

// noteSealed closes an intent and voids any decision for the transaction: a
// commit record means the covering write landed (the decision is no longer
// needed for in-doubt queries about a cleanly completed transaction), an
// abort record means the transaction was resolved as aborted.
func (j *Journal) noteSealed(t string) {
	delete(j.open, t)
	delete(j.decisions, t)
	j.noteID(t)
}

func (j *Journal) noteDecision(t string) {
	if !j.decisions[t] {
		j.decisionOrder = append(j.decisionOrder, t)
		j.decisions[t] = true
	}
	j.noteID(t)
	// Cap the live decision set (see maxDecisions): walk forward from the
	// oldest entry, skipping ones already sealed, until the cap holds.
	for len(j.decisions) > maxDecisions && j.decisionHead < len(j.decisionOrder) {
		delete(j.decisions, j.decisionOrder[j.decisionHead])
		j.decisionHead++
	}
}

// noteRepl folds one O record into the per-doc tail, keeping it contiguous
// (a gap resets the window to the newer record — followers must never be
// served a span with holes) and bounded at replTailLen.
func (j *Journal) noteRepl(doc string, index int64, payload string) {
	if j.repl == nil {
		j.repl = make(map[string][]ReplEntry)
	}
	tail := j.repl[doc]
	if n := len(tail); n > 0 && index != tail[n-1].Index+1 {
		tail = tail[:0]
	}
	tail = append(tail, ReplEntry{Index: index, Payload: payload})
	if len(tail) > replTailLen {
		tail = append([]ReplEntry(nil), tail[len(tail)-replTailLen:]...)
	}
	j.repl[doc] = tail
}

// LogIntent records that the transaction is about to persist the documents.
// The record is flushed to stable storage before returning.
func (j *Journal) LogIntent(t string, docs []string) error {
	if !validToken(t) {
		return fmt.Errorf("store: journal: invalid txn id %q", t)
	}
	for _, d := range docs {
		if !validToken(d) {
			return fmt.Errorf("store: journal: invalid document name %q", d)
		}
	}
	line := "I " + t
	if len(docs) > 0 {
		line += " " + strings.Join(docs, " ")
	}
	return j.append(line)
}

// LogCommit records that every document of the transaction is persisted.
func (j *Journal) LogCommit(t string) error {
	if !validToken(t) {
		return fmt.Errorf("store: journal: invalid txn id %q", t)
	}
	return j.append("C " + t)
}

// LogAbort records that the transaction was resolved as aborted — written by
// the recovery termination protocol when it presumes (or learns of) an
// abort, so a later restart does not re-report the transaction in-doubt.
func (j *Journal) LogAbort(t string) error {
	if !validToken(t) {
		return fmt.Errorf("store: journal: invalid txn id %q", t)
	}
	return j.append("A " + t)
}

// LogDecision records the coordinator's commit decision for the transaction.
// It must be flushed BEFORE any commit message leaves the coordinator: the
// presumed-abort rule ("no decision record means abort") is only sound if no
// participant can consolidate ahead of the record.
func (j *Journal) LogDecision(t string) error {
	if !validToken(t) {
		return fmt.Errorf("store: journal: invalid txn id %q", t)
	}
	return j.append("D " + t)
}

// LogRepl records one shipped replication record: the primary writes an O
// line per quorum commit so a restarted primary can reseed its in-memory
// shipping log and keep serving incremental catch-up. The payload must be a
// single whitespace-free token (EncodeReplRecord produces one).
func (j *Journal) LogRepl(doc string, index int64, payload string) error {
	if !validToken(doc) {
		return fmt.Errorf("store: journal: invalid document name %q", doc)
	}
	if !validToken(payload) {
		return fmt.Errorf("store: journal: invalid repl payload for %q", doc)
	}
	return j.append(fmt.Sprintf("O %s %d %s", doc, index, payload))
}

// ReplEntry is one retained replication record: its log index and the
// encoded payload as written to the journal.
type ReplEntry struct {
	Index   int64
	Payload string
}

// ReplTail returns the retained replication-record tail for the document,
// oldest first — the contiguous span a restarted primary reseeds its
// shipping log from.
func (j *Journal) ReplTail(doc string) []ReplEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	return append([]ReplEntry(nil), j.repl[doc]...)
}

// ReplDocs lists the documents with a retained replication tail, sorted.
func (j *Journal) ReplDocs() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.repl))
	for doc := range j.repl {
		out = append(out, doc)
	}
	sort.Strings(out)
	return out
}

// SealDecision closes a live decision whose transaction persisted nothing at
// the coordinator's own site (so no local commit record will ever seal it).
// With an intent still open the seal is deferred to the persist pipeline's
// commit record — sealing early would erase the in-doubt window.
func (j *Journal) SealDecision(t string) error { return j.closeDecision(t, "C") }

// VoidDecision writes an abort record for the transaction if (and only if)
// a live decision exists for it — the coordinator's clean-abort path after a
// participant refused the commit fan-out, where the decided-but-undelivered
// commit must not survive as a live decision a recovering participant could
// later read.
func (j *Journal) VoidDecision(t string) error { return j.closeDecision(t, "A") }

// closeDecision writes rec for a still-live decision, checked and appended
// under one critical section: a no-op if the decision was already sealed,
// and deferred if an intent appeared since the caller's snapshot — the
// transaction is consolidating after all, and this record would close its
// in-doubt window; the persist pipeline owns the sealing then.
func (j *Journal) closeDecision(t, rec string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if !j.decisions[t] {
		return nil
	}
	if _, open := j.open[t]; open {
		return nil
	}
	return j.appendLocked(rec + " " + t)
}

// Decision reports whether a live commit-decision record exists for the
// transaction.
func (j *Journal) Decision(t string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.decisions[t]
}

// Decisions returns the transactions with a live commit decision, in
// decision order — the set a restarted coordinator must reconcile (a live
// decision whose transaction never sealed may have reached some, none, or
// all of its participants).
func (j *Journal) Decisions() []string {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]string, 0, len(j.decisions))
	for _, t := range j.decisionOrder {
		if j.decisions[t] {
			out = append(out, t)
		}
	}
	return out
}

// InDoubt returns the open intents — transactions whose persistence may be
// partial — in intent order.
func (j *Journal) InDoubt() []InDoubt {
	j.mu.Lock()
	defer j.mu.Unlock()
	var out []InDoubt
	for _, t := range j.openOrder {
		if docs, ok := j.open[t]; ok {
			out = append(out, InDoubt{Txn: t, Docs: docs})
		}
	}
	return out
}

// MaxSeq returns the highest transaction sequence number the journal has
// seen for the site, across checkpoints. A restarted site fences its
// identifier space past this so new transactions cannot collide with
// journaled ones from the previous incarnation.
func (j *Journal) MaxSeq(site int) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.maxSeq[site]
}

func (j *Journal) append(line string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appendLocked(line)
}

// appendLocked writes and fsyncs one record. Callers hold j.mu.
func (j *Journal) appendLocked(line string) error {
	if j.f == nil {
		return fmt.Errorf("store: journal is closed")
	}
	if _, err := j.f.WriteString(line + "\n"); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal: %w", err)
	}
	j.applyLine(line)
	j.records++
	// Compact once the threshold is reached AND at least half the file is
	// droppable (sealed records); without the second condition a journal
	// whose live state alone exceeds the threshold would rewrite itself on
	// every append. The factor keeps compaction amortised O(1) per record.
	live := 1 + len(j.open) + len(j.decisions)
	for _, tail := range j.repl {
		live += len(tail)
	}
	if j.records >= j.checkpointEvery && j.records >= 2*live {
		// Best effort: a failed compaction leaves the (valid, longer) file
		// in place and the next append retries.
		_ = j.compactLocked()
	}
	return nil
}

// Checkpoint forces a compaction: the file is rewritten as a checkpoint
// record plus the still-live records (open intents, live decisions).
func (j *Journal) Checkpoint() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("store: journal is closed")
	}
	return j.compactLocked()
}

// compactLocked rewrites the journal to its live state. Callers hold j.mu.
func (j *Journal) compactLocked() error {
	tmp, err := os.CreateTemp(filepath.Dir(j.path), ".journal-*")
	if err != nil {
		return fmt.Errorf("store: journal: checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name())
	w := bufio.NewWriter(tmp)
	lines := 1
	fmt.Fprintf(w, "K %s\n", j.seqFenceLocked())
	for _, t := range j.openOrder {
		docs, ok := j.open[t]
		if !ok {
			continue
		}
		line := "I " + t
		if len(docs) > 0 {
			line += " " + strings.Join(docs, " ")
		}
		fmt.Fprintln(w, line)
		lines++
	}
	for _, t := range j.decisionOrder {
		if j.decisions[t] {
			fmt.Fprintln(w, "D "+t)
			lines++
		}
	}
	docs := make([]string, 0, len(j.repl))
	for d := range j.repl {
		docs = append(docs, d)
	}
	sort.Strings(docs)
	for _, d := range docs {
		for _, e := range j.repl[d] {
			fmt.Fprintf(w, "O %s %d %s\n", d, e.Index, e.Payload)
			lines++
		}
	}
	if err := w.Flush(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: journal: checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("store: journal: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: journal: checkpoint: %w", err)
	}
	// Open the replacement append handle on the temp file BEFORE the
	// rename: the handle follows the inode, so after the rename it is the
	// journal — and any failure up to that point aborts the compaction with
	// the old (longer but valid) file and handle fully intact. Opening
	// after the rename instead would leave a failure window where j.f
	// points at the unlinked old inode and every later append is silently
	// invisible to recovery.
	f, err := os.OpenFile(tmp.Name(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: journal: checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), j.path); err != nil {
		f.Close()
		return fmt.Errorf("store: journal: checkpoint: %w", err)
	}
	j.f.Close()
	j.f = f
	// Compact the order slices alongside the file.
	j.openOrder = liveOrder(j.openOrder, func(t string) bool { _, ok := j.open[t]; return ok })
	j.decisionOrder = liveOrder(j.decisionOrder, func(t string) bool { return j.decisions[t] })
	j.decisionHead = 0
	j.records = lines
	return nil
}

func liveOrder(order []string, live func(string) bool) []string {
	out := order[:0]
	for _, t := range order {
		if live(t) {
			out = append(out, t)
		}
	}
	return out
}

// seqFenceLocked renders the per-site max sequence numbers for the
// checkpoint record. Callers hold j.mu.
func (j *Journal) seqFenceLocked() string {
	sites := make([]int, 0, len(j.maxSeq))
	for s := range j.maxSeq {
		sites = append(sites, s)
	}
	sort.Ints(sites)
	var b strings.Builder
	for i, s := range sites {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d:%d", s, j.maxSeq[s])
	}
	if b.Len() == 0 {
		return "0:0"
	}
	return b.String()
}

// Close closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// InDoubt describes a transaction found in the journal with an intent
// record but no commit record: its persistence may be partial.
type InDoubt struct {
	Txn  string
	Docs []string
}

// Recover scans a journal file and returns the in-doubt transactions, in
// intent order. A missing journal file means nothing to recover. Torn
// trailing lines (a crash mid-append) are ignored. Recover is the offline
// view; a live Journal answers the same question from memory with InDoubt.
func Recover(path string) ([]InDoubt, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	defer f.Close()
	return recoverFrom(f)
}

func recoverFrom(r io.Reader) ([]InDoubt, error) {
	// One record grammar: the offline view folds records through the same
	// applyLine the live journal uses, over a detached state.
	j := &Journal{
		open:      make(map[string][]string),
		decisions: make(map[string]bool),
		maxSeq:    make(map[int]int64),
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		j.applyLine(sc.Text())
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("store: journal: %w", err)
	}
	return j.InDoubt(), nil
}
