package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Path() != path {
		t.Fatal("path mismatch")
	}
	if err := j.LogIntent("t1.1", []string{"d1", "d2"}); err != nil {
		t.Fatal(err)
	}
	if err := j.LogCommit("t1.1"); err != nil {
		t.Fatal(err)
	}
	if err := j.LogIntent("t1.2", []string{"d1"}); err != nil {
		t.Fatal(err)
	}
	// No commit record for t1.2: crash here.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 || inDoubt[0].Txn != "t1.2" {
		t.Fatalf("in doubt = %+v", inDoubt)
	}
	if len(inDoubt[0].Docs) != 1 || inDoubt[0].Docs[0] != "d1" {
		t.Fatalf("docs = %v", inDoubt[0].Docs)
	}
}

func TestJournalCleanRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		if err := j.LogIntent(id, []string{"d"}); err != nil {
			t.Fatal(err)
		}
		if err := j.LogCommit(id); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("clean journal reports %v", inDoubt)
	}
}

func TestJournalMissingFile(t *testing.T) {
	inDoubt, err := Recover(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || inDoubt != nil {
		t.Fatalf("missing journal: %v %v", inDoubt, err)
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, _ := OpenJournal(path)
	j.LogIntent("t1", []string{"d"})
	j.LogCommit("t1")
	j.Close()
	// Simulate a crash mid-append: garbage half-line at the end.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("I t2 d1 d") // no newline, counts as a torn intent
	f.Close()
	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	// The torn line still parses as an intent for t2 — conservative: it is
	// reported in doubt, never silently dropped.
	if len(inDoubt) != 1 || inDoubt[0].Txn != "t2" {
		t.Fatalf("in doubt = %+v", inDoubt)
	}
}

func TestJournalValidation(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.LogIntent("", nil); err == nil {
		t.Error("empty txn accepted")
	}
	if err := j.LogIntent("t 1", nil); err == nil {
		t.Error("txn with space accepted")
	}
	if err := j.LogIntent("t1", []string{"bad doc"}); err == nil {
		t.Error("doc with space accepted")
	}
	if err := j.LogCommit("bad txn"); err == nil {
		t.Error("commit with space accepted")
	}
	j.Close()
	if err := j.LogCommit("t1"); err == nil {
		t.Error("write after close accepted")
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			for k := 0; k < 20; k++ {
				if err := j.LogIntent(id, []string{"d"}); err != nil {
					t.Error(err)
					return
				}
				if err := j.LogCommit(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("in doubt after clean concurrent run: %v", inDoubt)
	}
}
