package store

import (
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
)

func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if j.Path() != path {
		t.Fatal("path mismatch")
	}
	if err := j.LogIntent("t1.1", []string{"d1", "d2"}); err != nil {
		t.Fatal(err)
	}
	if err := j.LogCommit("t1.1"); err != nil {
		t.Fatal(err)
	}
	if err := j.LogIntent("t1.2", []string{"d1"}); err != nil {
		t.Fatal(err)
	}
	// No commit record for t1.2: crash here.
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 || inDoubt[0].Txn != "t1.2" {
		t.Fatalf("in doubt = %+v", inDoubt)
	}
	if len(inDoubt[0].Docs) != 1 || inDoubt[0].Docs[0] != "d1" {
		t.Fatalf("docs = %v", inDoubt[0].Docs)
	}
}

func TestJournalCleanRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		id := string(rune('a' + i))
		if err := j.LogIntent(id, []string{"d"}); err != nil {
			t.Fatal(err)
		}
		if err := j.LogCommit(id); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("clean journal reports %v", inDoubt)
	}
}

func TestJournalMissingFile(t *testing.T) {
	inDoubt, err := Recover(filepath.Join(t.TempDir(), "absent.log"))
	if err != nil || inDoubt != nil {
		t.Fatalf("missing journal: %v %v", inDoubt, err)
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, _ := OpenJournal(path)
	j.LogIntent("t1", []string{"d"})
	j.LogCommit("t1")
	j.Close()
	// Simulate a crash mid-append: garbage half-line at the end.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString("I t2 d1 d") // no newline, counts as a torn intent
	f.Close()
	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	// The torn line still parses as an intent for t2 — conservative: it is
	// reported in doubt, never silently dropped.
	if len(inDoubt) != 1 || inDoubt[0].Txn != "t2" {
		t.Fatalf("in doubt = %+v", inDoubt)
	}
}

func TestJournalValidation(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "j.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if err := j.LogIntent("", nil); err == nil {
		t.Error("empty txn accepted")
	}
	if err := j.LogIntent("t 1", nil); err == nil {
		t.Error("txn with space accepted")
	}
	if err := j.LogIntent("t1", []string{"bad doc"}); err == nil {
		t.Error("doc with space accepted")
	}
	if err := j.LogCommit("bad txn"); err == nil {
		t.Error("commit with space accepted")
	}
	j.Close()
	if err := j.LogCommit("t1"); err == nil {
		t.Error("write after close accepted")
	}
}

func TestJournalConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			for k := 0; k < 20; k++ {
				if err := j.LogIntent(id, []string{"d"}); err != nil {
					t.Error(err)
					return
				}
				if err := j.LogCommit(id); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	j.Close()
	inDoubt, err := Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("in doubt after clean concurrent run: %v", inDoubt)
	}
}

func TestJournalDecisionLifecycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	// Coordinator decides commit, participant-side intent follows, covering
	// write seals both.
	if err := j.LogDecision("t0.1"); err != nil {
		t.Fatal(err)
	}
	if !j.Decision("t0.1") {
		t.Fatal("decision not live after LogDecision")
	}
	if err := j.LogIntent("t0.1", []string{"d1"}); err != nil {
		t.Fatal(err)
	}
	if err := j.LogCommit("t0.1"); err != nil {
		t.Fatal(err)
	}
	if j.Decision("t0.1") {
		t.Fatal("decision still live after commit record")
	}

	// A decision with no local persistence is sealed explicitly.
	j.LogDecision("t0.2")
	if err := j.SealDecision("t0.2"); err != nil {
		t.Fatal(err)
	}
	if j.Decision("t0.2") {
		t.Fatal("decision still live after SealDecision")
	}
	// Sealing with an open intent defers to the pipeline's commit record.
	j.LogDecision("t0.3")
	j.LogIntent("t0.3", []string{"d1"})
	if err := j.SealDecision("t0.3"); err != nil {
		t.Fatal(err)
	}
	if !j.Decision("t0.3") {
		t.Fatal("open-intent decision sealed early")
	}
	// An abort resolution voids the decision and closes the intent.
	if err := j.LogAbort("t0.3"); err != nil {
		t.Fatal(err)
	}
	if j.Decision("t0.3") || len(j.InDoubt()) != 0 {
		t.Fatalf("abort did not void: decisions=%v inDoubt=%v", j.Decisions(), j.InDoubt())
	}
	j.Close()

	// The offline view agrees.
	inDoubt, err := Recover(path)
	if err != nil || len(inDoubt) != 0 {
		t.Fatalf("recover: %v %v", inDoubt, err)
	}
}

func TestJournalCheckpointCompacts(t *testing.T) {
	path := filepath.Join(t.TempDir(), "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.SetCheckpointEvery(10)
	// Leave one intent open and one decision live; everything else seals.
	j.LogIntent("t0.1", []string{"dA", "dB"})
	j.LogDecision("t0.99")
	for i := 2; i < 60; i++ {
		id := "t0." + strconv.Itoa(i)
		j.LogIntent(id, []string{"d"})
		j.LogCommit(id)
	}
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// 58 intent+commit pairs would be >115 lines uncompacted; the rotated
	// file holds only the checkpoint marker plus the live records.
	if lines := countLines(t, path); lines > 10 {
		t.Fatalf("journal not compacted: %d lines, %d bytes", lines, st.Size())
	}
	j.Close()

	// Reopen: live state survives the checkpoint.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	inDoubt := j2.InDoubt()
	if len(inDoubt) != 1 || inDoubt[0].Txn != "t0.1" || len(inDoubt[0].Docs) != 2 {
		t.Fatalf("in doubt after reopen = %+v", inDoubt)
	}
	if !j2.Decision("t0.99") {
		t.Fatal("decision lost across checkpoint")
	}
	// The checkpoint record fences the sequence space even though the
	// sealed records themselves are gone.
	if got := j2.MaxSeq(0); got != 99 {
		t.Fatalf("MaxSeq(0) = %d, want 99", got)
	}
}

func countLines(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return strings.Count(string(data), "\n")
}
