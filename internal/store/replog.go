package store

import (
	"bytes"
	"encoding/base64"
	"encoding/gob"
	"fmt"
	"sync"

	"repro/internal/txn"
)

// ReplRecord is one replicated commit: the ordered update operations a
// transaction applied to one document, stamped with the primary's per-doc
// log index (contiguous, starting at 1) and the commit timestamp. Followers
// apply records strictly in index order, so the pair (doc, index) is the
// whole replication protocol's notion of position.
type ReplRecord struct {
	Index int64
	Txn   txn.ID
	TS    txn.TS
	Ops   []txn.Operation
}

// ReplLog is the primary-side in-memory shipping log for one site: a bounded
// per-document record window. Records older than the horizon are discarded
// (compaction); a follower asking for records past the horizon must fall
// back to whole-document transfer. The log is rebuilt from the journal's
// O-record tail on restart, so a primary crash narrows — but does not
// poison — the incremental catch-up window.
type ReplLog struct {
	mu      sync.Mutex
	horizon int
	docs    map[string]*docLog
}

type docLog struct {
	floor int64 // index of recs[0]; floor+len(recs)-1 is the head
	recs  []ReplRecord
}

// NewReplLog creates a log retaining up to horizon records per document.
func NewReplLog(horizon int) *ReplLog {
	if horizon <= 0 {
		horizon = 512
	}
	return &ReplLog{horizon: horizon, docs: make(map[string]*docLog)}
}

// Append stamps the record with the next index for doc, appends it, and
// returns the assigned index (the new head).
func (l *ReplLog) Append(doc string, rec ReplRecord) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.docs[doc]
	if d == nil {
		d = &docLog{floor: 1}
		l.docs[doc] = d
	}
	rec.Index = d.floor + int64(len(d.recs))
	d.recs = append(d.recs, rec)
	if len(d.recs) > l.horizon {
		drop := len(d.recs) - l.horizon
		d.recs = append([]ReplRecord(nil), d.recs[drop:]...)
		d.floor += int64(drop)
	}
	return rec.Index
}

// Seed reinstates a record tail recovered from the journal. Records must be
// presented in index order; gaps reset the window to the newer record (the
// incremental span must stay contiguous or followers would apply holes).
func (l *ReplLog) Seed(doc string, rec ReplRecord) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.docs[doc]
	if d == nil {
		d = &docLog{floor: rec.Index}
		l.docs[doc] = d
	}
	if want := d.floor + int64(len(d.recs)); len(d.recs) > 0 && rec.Index != want {
		d.floor = rec.Index
		d.recs = d.recs[:0]
	} else if len(d.recs) == 0 {
		d.floor = rec.Index
	}
	d.recs = append(d.recs, rec)
	if len(d.recs) > l.horizon {
		drop := len(d.recs) - l.horizon
		d.recs = append([]ReplRecord(nil), d.recs[drop:]...)
		d.floor += int64(drop)
	}
}

// Reset discards every retained record for doc and restarts the window
// empty, just past head: Head reports head, and only spans starting at or
// after it are servable. Used after a whole-document transfer established a
// replica at a known position with no record history behind it.
func (l *ReplLog) Reset(doc string, head int64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.docs[doc] = &docLog{floor: head + 1}
}

// Head returns the index of the newest record for doc (0 if none).
func (l *ReplLog) Head(doc string) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.docs[doc]
	if d == nil {
		return 0
	}
	return d.floor + int64(len(d.recs)) - 1
}

// Since returns all retained records for doc with Index > after, in order.
// ok is false when the span is not fully retained — `after` has fallen past
// the compaction horizon — in which case the caller must fall back to a
// whole-document transfer.
func (l *ReplLog) Since(doc string, after int64) (recs []ReplRecord, ok bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	d := l.docs[doc]
	if d == nil {
		return nil, after == 0
	}
	if after+1 < d.floor {
		return nil, false
	}
	start := int(after + 1 - d.floor)
	if start >= len(d.recs) {
		return nil, true
	}
	return append([]ReplRecord(nil), d.recs[start:]...), true
}

// EncodeReplRecord renders a record as a single whitespace-free token
// (base64 of the gob encoding), the shape the journal's line grammar
// requires of payloads.
func EncodeReplRecord(rec ReplRecord) (string, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec); err != nil {
		return "", fmt.Errorf("store: encode repl record: %w", err)
	}
	return base64.StdEncoding.EncodeToString(buf.Bytes()), nil
}

// DecodeReplRecord is the inverse of EncodeReplRecord.
func DecodeReplRecord(payload string) (ReplRecord, error) {
	raw, err := base64.StdEncoding.DecodeString(payload)
	if err != nil {
		return ReplRecord{}, fmt.Errorf("store: decode repl record: %w", err)
	}
	var rec ReplRecord
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&rec); err != nil {
		return ReplRecord{}, fmt.Errorf("store: decode repl record: %w", err)
	}
	return rec, nil
}
