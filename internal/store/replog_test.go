package store

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/txn"
	"repro/internal/xupdate"
)

func mkRec(site int, seq int64) ReplRecord {
	return ReplRecord{
		Txn: txn.ID{Site: site, Seq: seq},
		TS:  txn.TS(seq),
		Ops: []txn.Operation{txn.NewUpdate("d1", &xupdate.Update{
			Kind: xupdate.Change, Target: "/a/b", Value: "v",
		})},
	}
}

func TestReplLogAppendSince(t *testing.T) {
	l := NewReplLog(4)
	for i := int64(1); i <= 6; i++ {
		if got := l.Append("d1", mkRec(0, i)); got != i {
			t.Fatalf("Append #%d assigned index %d", i, got)
		}
	}
	if h := l.Head("d1"); h != 6 {
		t.Fatalf("Head = %d, want 6", h)
	}
	// Horizon 4: indices 3..6 retained; asking after=2 is the oldest servable.
	recs, ok := l.Since("d1", 2)
	if !ok || len(recs) != 4 || recs[0].Index != 3 || recs[3].Index != 6 {
		t.Fatalf("Since(2) = %v records, ok=%v", len(recs), ok)
	}
	// after=1 needs index 2, which was compacted away.
	if _, ok := l.Since("d1", 1); ok {
		t.Fatal("Since(1) should report past-horizon")
	}
	// Fully caught up.
	recs, ok = l.Since("d1", 6)
	if !ok || len(recs) != 0 {
		t.Fatalf("Since(6) = %d records, ok=%v", len(recs), ok)
	}
	// Unknown doc: only after=0 is servable (empty history).
	if _, ok := l.Since("nope", 0); !ok {
		t.Fatal("Since on unknown doc at 0 should be ok (nothing to send)")
	}
	if _, ok := l.Since("nope", 3); ok {
		t.Fatal("Since on unknown doc past 0 should report past-horizon")
	}
}

func TestReplLogSeedContiguity(t *testing.T) {
	l := NewReplLog(8)
	r5 := mkRec(0, 5)
	r5.Index = 5
	r6 := mkRec(0, 6)
	r6.Index = 6
	r9 := mkRec(0, 9)
	r9.Index = 9
	l.Seed("d1", r5)
	l.Seed("d1", r6)
	l.Seed("d1", r9) // gap: window must reset to [9,9]
	if h := l.Head("d1"); h != 9 {
		t.Fatalf("Head = %d, want 9", h)
	}
	if _, ok := l.Since("d1", 5); ok {
		t.Fatal("span across the seeded gap must report past-horizon")
	}
	recs, ok := l.Since("d1", 8)
	if !ok || len(recs) != 1 || recs[0].Index != 9 {
		t.Fatalf("Since(8) = %v, ok=%v", recs, ok)
	}
	// Appending after a seed continues from the seeded head.
	if got := l.Append("d1", mkRec(0, 10)); got != 10 {
		t.Fatalf("Append after seed assigned %d, want 10", got)
	}
}

func TestReplRecordRoundTrip(t *testing.T) {
	rec := mkRec(2, 7)
	rec.Index = 41
	payload, err := EncodeReplRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if !validToken(payload) {
		t.Fatalf("payload %q is not a single journal token", payload)
	}
	got, err := DecodeReplRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Index != 41 || got.Txn != rec.Txn || got.TS != rec.TS || len(got.Ops) != 1 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	op := got.Ops[0]
	if op.Kind != txn.OpUpdate || op.Doc != "d1" || op.Update == nil || op.Update.Value != "v" {
		t.Fatalf("op mismatch: %+v", op)
	}
	if _, err := DecodeReplRecord("not!base64?"); err == nil {
		t.Fatal("decoding garbage should fail")
	}
}

func TestMetaStoreRoundTrip(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, ms := range []MetaStore{NewMemStore(), fs} {
		if _, ok, err := ms.LoadMeta("d1"); err != nil || ok {
			t.Fatalf("%T: fresh LoadMeta = ok=%v err=%v", ms, ok, err)
		}
		if err := ms.SaveMeta("d1", "17 clean"); err != nil {
			t.Fatal(err)
		}
		if err := ms.SaveMeta("d1", "18 pending"); err != nil {
			t.Fatal(err)
		}
		data, ok, err := ms.LoadMeta("d1")
		if err != nil || !ok || data != "18 pending" {
			t.Fatalf("%T: LoadMeta = %q ok=%v err=%v", ms, data, ok, err)
		}
	}
}

func TestJournalReplTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "commit.log")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		payload, err := EncodeReplRecord(mkRec(0, i))
		if err != nil {
			t.Fatal(err)
		}
		if err := j.LogRepl("d1", i, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.LogRepl("d1", 1, "gap-resets-window"); err != nil {
		t.Fatal(err)
	}
	tail := j.ReplTail("d1")
	if len(tail) != 1 || tail[0].Index != 1 || tail[0].Payload != "gap-resets-window" {
		t.Fatalf("tail after gap = %+v", tail)
	}
	if err := j.LogRepl("d1", 2, "x2"); err != nil {
		t.Fatal(err)
	}
	// The tail must survive a compaction and a reopen.
	if err := j.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	defer j2.Close()
	tail = j2.ReplTail("d1")
	if len(tail) != 2 || tail[0].Index != 1 || tail[1].Payload != "x2" {
		t.Fatalf("tail after checkpoint+reopen = %+v", tail)
	}
	if err := j2.LogRepl("d1", 3, "x x"); err == nil {
		t.Fatal("whitespace payload must be rejected")
	}
}

// FuzzJournalReplay feeds arbitrary bytes through the journal replay path:
// whatever the file contains — torn lines, hostile records, binary noise —
// opening it must not panic, and the live-state queries must stay callable.
func FuzzJournalReplay(f *testing.F) {
	f.Add([]byte("I t0.1 d1 d2\nD t0.1\nC t0.1\n"))
	f.Add([]byte("O d1 1 cGF5bG9hZA==\nO d1 2 x\nO d1 9 y\n"))
	f.Add([]byte("K 0:5,1:9\nI t1.3 d7"))
	f.Add([]byte("O d1\nO d1 notanint z\nI\n\x00\xff\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "commit.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		j, err := OpenJournal(path)
		if err != nil {
			return // unreadable is fine; panics are not
		}
		defer j.Close()
		_ = j.InDoubt()
		_ = j.Decisions()
		_ = j.MaxSeq(0)
		for _, e := range j.ReplTail("d1") {
			_, _ = DecodeReplRecord(e.Payload)
		}
		if _, err := Recover(path); err != nil {
			t.Fatalf("Recover after OpenJournal succeeded: %v", err)
		}
	})
}
