// Package store implements DTX's DataManager substrate: the component that
// "recovers XML data from the storage structure, converting it into a proper
// representation structure, and provid[es] means for updating the data in
// the storage structure". The paper used the Sedna native XML DBMS; DTX's
// storage structures are explicitly pluggable ("DTX supports communication
// with any XML document storage method"), so this package provides the same
// interface with two backends: an in-memory store and a file-system store
// (a directory of .xml documents — the paper's site s2 example persists XML
// in a file system).
package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"repro/internal/xmltree"
)

// Store is the persistence interface DTX's DataManager drives.
type Store interface {
	// List returns the names of the stored documents, sorted.
	List() ([]string, error)
	// Load retrieves and parses a document.
	Load(name string) (*xmltree.Document, error)
	// Save persists the document under its name, replacing any previous
	// version.
	Save(doc *xmltree.Document) error
	// Delete removes a document. Deleting a missing document is an error.
	Delete(name string) error
}

// MetaStore is the optional side-channel a Store may offer for small named
// metadata blobs — replication uses it to record, next to each document, the
// exact log index the persisted bytes correspond to. LoadMeta returns
// ("", false, nil) when no value was ever saved; both backends implement it.
type MetaStore interface {
	// SaveMeta persists a metadata blob under the name, replacing any
	// previous value.
	SaveMeta(name, data string) error
	// LoadMeta retrieves a metadata blob; ok is false when absent.
	LoadMeta(name string) (data string, ok bool, err error)
}

// NotFoundError reports a missing document.
type NotFoundError struct{ Name string }

func (e *NotFoundError) Error() string {
	return fmt.Sprintf("store: document %q not found", e.Name)
}

// MemStore is an in-memory Store. Safe for concurrent use. The zero value
// is ready to use.
type MemStore struct {
	mu   sync.RWMutex
	docs map[string][]byte
	meta map[string]string
}

// NewMemStore creates an empty in-memory store.
func NewMemStore() *MemStore { return &MemStore{} }

// List implements Store.
func (s *MemStore) List() ([]string, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]string, 0, len(s.docs))
	for name := range s.docs {
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// Load implements Store.
func (s *MemStore) Load(name string) (*xmltree.Document, error) {
	s.mu.RLock()
	data, ok := s.docs[name]
	s.mu.RUnlock()
	if !ok {
		return nil, &NotFoundError{Name: name}
	}
	return xmltree.Parse(name, bytes.NewReader(data))
}

// Save implements Store.
func (s *MemStore) Save(doc *xmltree.Document) error {
	var buf bytes.Buffer
	if _, err := doc.WriteTo(&buf); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.docs == nil {
		s.docs = make(map[string][]byte)
	}
	s.docs[doc.Name] = buf.Bytes()
	return nil
}

// Delete implements Store.
func (s *MemStore) Delete(name string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.docs[name]; !ok {
		return &NotFoundError{Name: name}
	}
	delete(s.docs, name)
	return nil
}

// SaveMeta implements MetaStore.
func (s *MemStore) SaveMeta(name, data string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.meta == nil {
		s.meta = make(map[string]string)
	}
	s.meta[name] = data
	return nil
}

// LoadMeta implements MetaStore.
func (s *MemStore) LoadMeta(name string) (string, bool, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.meta[name]
	return data, ok, nil
}

// FileStore persists documents as .xml files in a directory. Document names
// map to file names; names with path separators are rejected.
type FileStore struct {
	dir string
}

// NewFileStore creates (if needed) and opens a directory-backed store.
func NewFileStore(dir string) (*FileStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	return &FileStore{dir: dir}, nil
}

func (s *FileStore) path(name string) (string, error) {
	if name == "" || strings.ContainsAny(name, `/\`) {
		return "", fmt.Errorf("store: invalid document name %q", name)
	}
	return filepath.Join(s.dir, name+".xml"), nil
}

// List implements Store.
func (s *FileStore) List() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".xml") {
			continue
		}
		out = append(out, strings.TrimSuffix(e.Name(), ".xml"))
	}
	sort.Strings(out)
	return out, nil
}

// Load implements Store.
func (s *FileStore) Load(name string) (*xmltree.Document, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if os.IsNotExist(err) {
		return nil, &NotFoundError{Name: name}
	}
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	defer f.Close()
	return xmltree.Parse(name, f)
}

// Save implements Store. The write goes through a temp file + rename so a
// crash never leaves a half-written document.
func (s *FileStore) Save(doc *xmltree.Document) error {
	p, err := s.path(doc.Name)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := doc.WriteTo(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// SaveMeta implements MetaStore: the blob lands in <name>.meta via the same
// temp + rename discipline as Save, so a crash never leaves a torn value.
func (s *FileStore) SaveMeta(name, data string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	p = strings.TrimSuffix(p, ".xml") + ".meta"
	tmp, err := os.CreateTemp(s.dir, ".tmp-*")
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.WriteString(data); err != nil {
		tmp.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// LoadMeta implements MetaStore.
func (s *FileStore) LoadMeta(name string) (string, bool, error) {
	p, err := s.path(name)
	if err != nil {
		return "", false, err
	}
	p = strings.TrimSuffix(p, ".xml") + ".meta"
	data, err := os.ReadFile(p)
	if os.IsNotExist(err) {
		return "", false, nil
	}
	if err != nil {
		return "", false, fmt.Errorf("store: %w", err)
	}
	return string(data), true, nil
}

// Delete implements Store.
func (s *FileStore) Delete(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	if err := os.Remove(p); os.IsNotExist(err) {
		return &NotFoundError{Name: name}
	} else if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}
