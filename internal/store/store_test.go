package store

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/xmltree"
)

func testStore(t *testing.T, s Store) {
	t.Helper()
	// Empty store.
	names, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 0 {
		t.Fatalf("fresh store lists %v", names)
	}
	if _, err := s.Load("missing"); err == nil {
		t.Fatal("expected not-found")
	} else {
		var nf *NotFoundError
		if !errors.As(err, &nf) {
			t.Fatalf("want NotFoundError, got %T: %v", err, err)
		}
	}
	// Save and load round trip.
	doc, err := xmltree.ParseString("d1", `<people><person id="p1"><name>Ana</name></person></people>`)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Save(doc); err != nil {
		t.Fatal(err)
	}
	got, err := s.Load("d1")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, got) {
		t.Fatal("round trip mismatch")
	}
	// Overwrite.
	doc2, _ := xmltree.ParseString("d1", `<people/>`)
	if err := s.Save(doc2); err != nil {
		t.Fatal(err)
	}
	got, err = s.Load("d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Root.Children) != 0 {
		t.Fatal("overwrite did not replace")
	}
	// List.
	doc3, _ := xmltree.ParseString("a0", `<x/>`)
	if err := s.Save(doc3); err != nil {
		t.Fatal(err)
	}
	names, err = s.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "a0" || names[1] != "d1" {
		t.Fatalf("list = %v", names)
	}
	// Delete.
	if err := s.Delete("a0"); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete("a0"); err == nil {
		t.Fatal("double delete succeeded")
	}
	names, _ = s.List()
	if len(names) != 1 {
		t.Fatalf("list after delete = %v", names)
	}
}

func TestMemStore(t *testing.T) {
	testStore(t, NewMemStore())
}

func TestFileStore(t *testing.T) {
	fs, err := NewFileStore(t.TempDir() + "/docs")
	if err != nil {
		t.Fatal(err)
	}
	testStore(t, fs)
}

func TestFileStoreRejectsBadNames(t *testing.T) {
	fs, err := NewFileStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	doc := xmltree.NewDocument("../evil", "r")
	if err := fs.Save(doc); err == nil {
		t.Fatal("path traversal name accepted")
	}
	if _, err := fs.Load(""); err == nil {
		t.Fatal("empty name accepted")
	}
}

func TestFileStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	fs1, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmltree.ParseString("d", `<r><a>1</a></r>`)
	if err := fs1.Save(doc); err != nil {
		t.Fatal(err)
	}
	fs2, err := NewFileStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := fs2.Load("d")
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, got) {
		t.Fatal("document lost across reopen")
	}
}

func TestMemStoreConcurrentAccess(t *testing.T) {
	s := NewMemStore()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			doc, _ := xmltree.ParseString(name, `<r><v>x</v></r>`)
			for j := 0; j < 50; j++ {
				if err := s.Save(doc); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.Load(name); err != nil {
					t.Error(err)
					return
				}
				if _, err := s.List(); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
}
