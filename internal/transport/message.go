// Package transport implements the communication infrastructure between DTX
// schedulers — the first of the three modifications the paper makes to run
// XDGL distributed: "a communication infrastructure between schedulers was
// inserted, allowing it to execute remote functions, at the same time that
// it acquires necessary locks and allows the commitment and abortion of a
// distributed transaction".
//
// Two interchangeable transports are provided: an in-process network with
// configurable synthetic latency (the default for experiments, standing in
// for the paper's 100 Mbit/s LAN), and a TCP transport using encoding/gob
// for multi-process deployments (cmd/dtxd).
package transport

import (
	"encoding/gob"

	"repro/internal/store"
	"repro/internal/txn"
	"repro/internal/wfg"
)

// ExecOpReq asks a participant to execute one remote operation of a
// distributed transaction (Algorithm 1, l. 13 / Algorithm 2).
type ExecOpReq struct {
	Txn         txn.ID
	TS          txn.TS
	Coordinator int
	OpIdx       int
	Op          txn.Operation
}

// Conflict mirrors lock.Conflict for the wire.
type Conflict struct {
	Txn txn.ID
	TS  txn.TS
}

// ExecOpResp reports the outcome of a remote operation, carrying the status
// flags of Algorithm 2 back to the coordinator (l. 13). Code classifies a
// failure with one of the txn error codes so the coordinator can rebuild a
// typed error (txn.FromCode) instead of a bare string.
type ExecOpResp struct {
	Site           int
	Executed       bool
	AcquireLocking bool
	Deadlock       bool
	Failed         bool
	Code           string
	Error          string
	Results        []string
	Conflicts      []Conflict
}

// UndoOpReq asks a participant to undo one executed operation because the
// operation failed to acquire locks at some other site (Algorithm 1, l. 16).
type UndoOpReq struct {
	Txn   txn.ID
	OpIdx int
}

// CommitReq asks a participant to consolidate a transaction (Algorithm 5).
type CommitReq struct{ Txn txn.ID }

// AbortReq asks a participant to cancel a transaction (Algorithm 6).
type AbortReq struct{ Txn txn.ID }

// FailReq tells a participant the transaction failed (Algorithm 6, l. 7).
type FailReq struct{ Txn txn.ID }

// Ack is the generic acknowledgement response. Consolidated distinguishes a
// failed CommitReq whose receiver nonetheless applied the transaction's
// effects (e.g. a quorum shortfall after the local commit point of no
// return) from a clean refusal — the coordinator must fail, not abort, when
// any participant consolidated.
type Ack struct {
	OK           bool
	Consolidated bool
	Error        string
}

// WFGReq pulls a site's wait-for graph snapshot (Algorithm 4, l. 4).
type WFGReq struct{}

// WFGResp carries the snapshot.
type WFGResp struct{ Edges []wfg.Edge }

// VictimReq asks the coordinator of a transaction to abort it because the
// distributed deadlock detector chose it as the victim (Algorithm 4, l. 8).
type VictimReq struct {
	Txn    txn.ID
	Reason string
}

// WakeReq tells a coordinator that locks one of its waiting transactions
// was blocked on have been released ("when a transaction commits, those
// that entered wait mode ... start executing again").
type WakeReq struct{ Txn txn.ID }

// SubmitReq carries a client transaction to a site's Listener (used by the
// TCP transport; in-process clients call the site API directly). ReadOnly
// submits the transaction through the MVCC snapshot-read path: every
// operation must be a query, no locks are taken, and the reads observe the
// committed versions at or below the transaction's begin timestamp.
type SubmitReq struct {
	Ops      []txn.Operation
	ReadOnly bool
}

// SubmitResp reports the outcome of a client transaction. Code carries the
// txn error code of a non-committed outcome so remote clients keep typed
// errors (txn.FromCode) across the wire.
type SubmitResp struct {
	Txn     txn.ID
	State   string
	Results [][]string
	Code    string
	Error   string
}

// PingReq is a liveness heartbeat. The receiver answers Ack{OK:true} once it
// is serving (a recovering site answers OK:false so peers keep routing
// around it until catch-up completes).
type PingReq struct{}

// TxnStatusReq asks a site what it knows about a transaction's outcome —
// the query of the presumed-abort termination protocol. A recovering
// participant sends it to the transaction's coordinator (which answers from
// its decision records and tombstones) and, failing that, to every site
// that may have participated.
type TxnStatusReq struct{ Txn txn.ID }

// Transaction outcomes carried by TxnStatusResp.
const (
	OutcomeCommitted = "committed"
	OutcomeAborted   = "aborted"
	OutcomeActive    = "active"
	OutcomeUnknown   = "unknown"
)

// TxnStatusResp answers a TxnStatusReq. Authoritative marks the answer of a
// transaction's own coordinator (including the presumed abort it derives
// from the absence of a decision record); participant answers are hearsay a
// resolver combines — any "committed" wins, since a participant can only
// have consolidated after the coordinator decided commit.
type TxnStatusResp struct {
	Outcome       string
	Authoritative bool
}

// FetchDocReq asks a site for the current XML of a document it holds — the
// catch-up path a restarted replica uses before rejoining.
type FetchDocReq struct{ Doc string }

// FetchDocResp carries the serialized document. Found is false when the
// site does not hold the document (or is itself recovering and cannot vouch
// for its copy). Head is the replication-log index the serialized state
// corresponds to (quorum mode; zero otherwise), captured atomically with
// the document so the fetcher can resume incremental replication from it.
type FetchDocResp struct {
	Found bool
	XML   string
	Head  int64
}

// SiteStatusReq asks a site for its operational status (dtxctl -status).
type SiteStatusReq struct{}

// PeerStatus is one entry of a site's liveness view.
type PeerStatus struct {
	Site   int
	Status string // "up" | "suspect" | "down"
}

// InDoubtTxn mirrors store.InDoubt for the wire.
type InDoubtTxn struct {
	Txn  string
	Docs []string
}

// DocStatus is one document's replication view at a site: its role there
// (primary or replica), the last replication-log record it applied, the
// newest record it knows the primary holds, and the gap between the two.
// Outside quorum mode Applied/Head/Behind stay zero. Protocol names the lock
// protocol currently active on the document's scheduling domain — under
// adaptive concurrency control it can differ per document and change over a
// run.
type DocStatus struct {
	Name     string
	Primary  int
	Role     string // "primary" | "replica"
	Applied  int64
	Head     int64
	Behind   int64
	Protocol string
}

// SiteStatusResp reports a site's documents, liveness view, journal
// in-doubt set and headline counters.
type SiteStatusResp struct {
	Site      int
	Ready     bool
	Documents []string
	Docs      []DocStatus
	Peers     []PeerStatus
	InDoubt   []InDoubtTxn
	Committed int64
	Aborted   int64
	Failed    int64
}

// MetricsReq asks a site for its metrics registry rendered in Prometheus
// text format — the transport-level scrape dtxctl -metrics uses, so any
// site can be inspected without an HTTP listener. Serving it arms the
// site's gated instrumentation, like an HTTP scrape does.
type MetricsReq struct{}

// MetricsResp carries the exposition text.
type MetricsResp struct {
	Site int
	Text string
}

// RecoverReq asks a site to run an online recovery pass: drain the persist
// pipeline, then resolve any journal in-doubt transactions with the
// termination protocol. (Document catch-up is a restart-only step — a
// serving site's in-memory state is already authoritative.)
type RecoverReq struct{}

// RecoverResp summarises the recovery pass.
type RecoverResp struct {
	Resolved int
	Report   string
	Error    string
}

// SnapshotReadReq asks a site to evaluate one query of a read-only
// transaction against the newest committed version of a document at or
// below the transaction's begin timestamp TS. The receiver pins that
// version for the transaction — repeated reads of the document observe the
// same version — until a SnapshotReleaseReq (or the orphan sweep, if the
// coordinator dies) releases the pins. No locks are taken and no wait-for
// edges are added.
type SnapshotReadReq struct {
	Txn         txn.ID
	TS          txn.TS
	Coordinator int
	Doc         string
	Query       string
}

// SnapshotReadResp answers a SnapshotReadReq. VersionTS is the commit
// timestamp of the version the query ran against.
type SnapshotReadResp struct {
	Site      int
	Failed    bool
	Code      string
	Error     string
	Results   []string
	VersionTS txn.TS
}

// SnapshotReleaseReq tells a site that a read-only transaction finished:
// every version it pinned there can be released. Fire-and-forget cleanup —
// a lost release is recovered by the orphan sweep.
type SnapshotReleaseReq struct{ Txn txn.ID }

// LogShipReq streams replication-log records for one document from its
// primary to a follower. Records are the contiguous span after the
// follower's last acked index; Head is the primary's newest index, so a
// follower always learns how far behind it is even when Records is partial.
type LogShipReq struct {
	Doc     string
	From    int // shipping (primary) site
	Primary int
	Head    int64
	Records []store.ReplRecord
}

// LogAck answers a LogShipReq with the follower's applied index. A follower
// that detects a gap (the span starts past its applied index) sets NeedFrom
// to the index it must be resent from; the primary rewinds and retries.
type LogAck struct {
	Site     int
	Applied  int64
	NeedFrom int64
	OK       bool
	Error    string
}

// LogFetchReq asks a document's primary for the replication records after a
// given index — the incremental catch-up path a restarted follower uses
// before falling back to whole-document transfer.
type LogFetchReq struct {
	Doc   string
	After int64
}

// LogFetchResp answers a LogFetchReq. PastHorizon reports that the span is
// no longer retained (compacted away) and the follower must fetch the whole
// document instead.
type LogFetchResp struct {
	Found       bool
	PastHorizon bool
	Head        int64
	Records     []store.ReplRecord
}

func init() {
	gob.Register(ExecOpReq{})
	gob.Register(ExecOpResp{})
	gob.Register(UndoOpReq{})
	gob.Register(CommitReq{})
	gob.Register(AbortReq{})
	gob.Register(FailReq{})
	gob.Register(Ack{})
	gob.Register(WFGReq{})
	gob.Register(WFGResp{})
	gob.Register(VictimReq{})
	gob.Register(WakeReq{})
	gob.Register(SubmitReq{})
	gob.Register(SubmitResp{})
	gob.Register(PingReq{})
	gob.Register(TxnStatusReq{})
	gob.Register(TxnStatusResp{})
	gob.Register(FetchDocReq{})
	gob.Register(FetchDocResp{})
	gob.Register(SiteStatusReq{})
	gob.Register(SiteStatusResp{})
	gob.Register(MetricsReq{})
	gob.Register(MetricsResp{})
	gob.Register(RecoverReq{})
	gob.Register(RecoverResp{})
	gob.Register(SnapshotReadReq{})
	gob.Register(SnapshotReadResp{})
	gob.Register(SnapshotReleaseReq{})
	gob.Register(LogShipReq{})
	gob.Register(LogAck{})
	gob.Register(LogFetchReq{})
	gob.Register(LogFetchResp{})
}
