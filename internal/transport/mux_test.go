package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
)

// muxHandler echoes each request's query string and can stall requests
// whose document is "slow" until released.
type muxHandler struct {
	site    int
	release chan struct{} // nil: never stall
}

func (h *muxHandler) HandleMessage(from int, msg any) (any, error) {
	m, ok := msg.(ExecOpReq)
	if !ok {
		return Ack{OK: true}, nil
	}
	if m.Op.Doc == "slow" && h.release != nil {
		<-h.release
	}
	return ExecOpResp{Site: h.site, Executed: true, Results: []string{m.Op.Query}}, nil
}

func muxPair(t *testing.T, h2 Handler) (*TCPNode, *TCPNode) {
	t.Helper()
	n1, err := ListenTCP(1, "127.0.0.1:0", &muxHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := ListenTCP(2, "127.0.0.1:0", h2)
	if err != nil {
		t.Fatal(err)
	}
	n1.SetPeer(2, n2.Addr())
	n2.SetPeer(1, n1.Addr())
	return n1, n2
}

// TestTCPInterleavedResponses pins the pipelining behaviour: a fast request
// issued after a stalled one completes first over the same connection, and
// each response is routed to the caller whose request ID it answers.
func TestTCPInterleavedResponses(t *testing.T) {
	release := make(chan struct{})
	n1, n2 := muxPair(t, &muxHandler{site: 2, release: release})
	defer n1.Close()
	defer n2.Close()

	slowDone := make(chan error, 1)
	go func() {
		resp, err := n1.Send(context.Background(), 2, ExecOpReq{Op: txn.NewQuery("slow", "q-slow")})
		if err == nil && resp.(ExecOpResp).Results[0] != "q-slow" {
			err = fmt.Errorf("slow response routed wrong: %#v", resp)
		}
		slowDone <- err
	}()

	// The stalled request must not serialise the connection: fast requests
	// behind it complete while it is still pending.
	deadline := time.After(5 * time.Second)
	for i := 0; i < 10; i++ {
		select {
		case err := <-slowDone:
			t.Fatalf("slow request finished before release: %v", err)
		case <-deadline:
			t.Fatal("fast requests starved behind the stalled one")
		default:
		}
		q := fmt.Sprintf("q-%d", i)
		resp, err := n1.Send(context.Background(), 2, ExecOpReq{Op: txn.NewQuery("fast", q)})
		if err != nil {
			t.Fatal(err)
		}
		if got := resp.(ExecOpResp).Results[0]; got != q {
			t.Fatalf("response %q answered request %q: demux broken", got, q)
		}
	}
	close(release)
	if err := <-slowDone; err != nil {
		t.Fatal(err)
	}
}

// TestTCPPeerCrashRejectsInFlight pins the failure contract: when the peer
// goes away mid-request, every in-flight call on the shared connection
// fails with an error wrapping ErrPeerClosed, and a later Send redials.
func TestTCPPeerCrashRejectsInFlight(t *testing.T) {
	release := make(chan struct{})
	n1, n2 := muxPair(t, &muxHandler{site: 2, release: release})
	defer n1.Close()

	const inflight = 8
	errs := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		go func(i int) {
			_, err := n1.Send(context.Background(), 2, ExecOpReq{Op: txn.NewQuery("slow", fmt.Sprint(i))})
			errs <- err
		}(i)
	}
	// Wait until all requests are on the wire (stalled in the handler), then
	// crash the peer under them. Close blocks on the stalled handlers, so it
	// runs detached and is released after the assertion.
	time.Sleep(50 * time.Millisecond)
	closed := make(chan struct{})
	go func() {
		n2.Close()
		close(closed)
	}()
	for i := 0; i < inflight; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("in-flight call survived the peer crash")
		}
		if !errors.Is(err, ErrPeerClosed) {
			t.Fatalf("in-flight call failed with %v, want ErrPeerClosed", err)
		}
	}
	close(release)
	<-closed
}

// TestTCPCancelledCallLeavesConnectionHealthy pins the discard behaviour:
// abandoning one exchange by cancellation neither poisons the shared
// connection nor misroutes the late response to another caller.
func TestTCPCancelledCallLeavesConnectionHealthy(t *testing.T) {
	release := make(chan struct{})
	n1, n2 := muxPair(t, &muxHandler{site: 2, release: release})
	defer n1.Close()
	defer n2.Close()

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	if _, err := n1.Send(ctx, 2, ExecOpReq{Op: txn.NewQuery("slow", "abandoned")}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled send returned %v", err)
	}
	close(release) // the late response arrives now and must be discarded
	for i := 0; i < 5; i++ {
		q := fmt.Sprintf("after-%d", i)
		resp, err := n1.Send(context.Background(), 2, ExecOpReq{Op: txn.NewQuery("fast", q)})
		if err != nil {
			t.Fatalf("connection poisoned by cancelled call: %v", err)
		}
		if got := resp.(ExecOpResp).Results[0]; got != q {
			t.Fatalf("late response misrouted: got %q want %q", got, q)
		}
	}
}

// TestTCPSharedPeerStress hammers one peer connection from many goroutines
// and verifies every response matches its request — the demultiplexing
// correctness the schedulers rely on, meant to run under -race.
func TestTCPSharedPeerStress(t *testing.T) {
	n1, n2 := muxPair(t, &muxHandler{site: 2})
	defer n1.Close()
	defer n2.Close()

	const goroutines = 16
	const requests = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < requests; k++ {
				q := fmt.Sprintf("g%d-k%d", g, k)
				resp, err := n1.Send(context.Background(), 2, ExecOpReq{Op: txn.NewQuery("fast", q)})
				if err != nil {
					t.Errorf("send %s: %v", q, err)
					return
				}
				if got := resp.(ExecOpResp).Results[0]; got != q {
					t.Errorf("demux broken: got %q want %q", got, q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}
