package transport

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// envelope frames one request on the wire.
type envelope struct {
	From int
	Msg  any
}

// replyEnvelope frames one response.
type replyEnvelope struct {
	Msg any
	Err string
}

// TCPNode is a site endpoint communicating over TCP with gob encoding. Each
// peer gets one persistent connection; requests on a connection are
// serialised, which preserves the synchronous semantics the paper's
// schedulers rely on.
type TCPNode struct {
	id      int
	ln      net.Listener
	handler Handler

	mu      sync.Mutex
	peers   map[int]string // site -> address
	conns   map[int]*clientConn
	serving map[net.Conn]bool // accepted connections, force-closed on Close

	wg     sync.WaitGroup
	closed chan struct{}
}

type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// ListenTCP starts a TCP endpoint for the site on addr ("host:port", use
// ":0" for an ephemeral port) and begins serving incoming scheduler
// messages with the handler.
func ListenTCP(siteID int, addr string, h Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:      siteID,
		ln:      ln,
		handler: h,
		peers:   make(map[int]string),
		conns:   make(map[int]*clientConn),
		serving: make(map[net.Conn]bool),
		closed:  make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the listening address, useful with ":0".
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer registers the address of another site.
func (n *TCPNode) SetPeer(siteID int, addr string) {
	n.mu.Lock()
	n.peers[siteID] = addr
	n.mu.Unlock()
}

// SiteID implements Node.
func (n *TCPNode) SiteID() int { return n.id }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			continue
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

func (n *TCPNode) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.serving, conn)
		n.mu.Unlock()
	}()
	n.mu.Lock()
	if n.serving == nil {
		n.mu.Unlock()
		return
	}
	n.serving[conn] = true
	n.mu.Unlock()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		resp, err := n.handler.HandleMessage(env.From, env.Msg)
		rep := replyEnvelope{Msg: resp}
		if err != nil {
			rep.Err = err.Error()
		}
		if err := enc.Encode(&rep); err != nil {
			return
		}
	}
}

func (n *TCPNode) client(to int) (*clientConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c := n.conns[to]; c != nil {
		return c, nil
	}
	addr, ok := n.peers[to]
	if !ok {
		return nil, fmt.Errorf("transport: no address for site %d", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial site %d: %w", to, err)
	}
	c := &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) dropClient(to int, c *clientConn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	c.conn.Close()
}

// Send implements Node: one synchronous request/response exchange.
func (n *TCPNode) Send(to int, msg any) (any, error) {
	c, err := n.client(to)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(&envelope{From: n.id, Msg: msg}); err != nil {
		n.dropClient(to, c)
		return nil, fmt.Errorf("transport: send to site %d: %w", to, err)
	}
	var rep replyEnvelope
	if err := c.dec.Decode(&rep); err != nil {
		n.dropClient(to, c)
		return nil, fmt.Errorf("transport: recv from site %d: %w", to, err)
	}
	if rep.Err != "" {
		return rep.Msg, errors.New(rep.Err)
	}
	return rep.Msg, nil
}

// Close implements Node.
func (n *TCPNode) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
		close(n.closed)
	}
	err := n.ln.Close()
	n.mu.Lock()
	for id, c := range n.conns {
		c.conn.Close()
		delete(n.conns, id)
	}
	for conn := range n.serving {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}
