package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// envelope frames one request on the wire.
type envelope struct {
	From int
	Msg  any
}

// replyEnvelope frames one response.
type replyEnvelope struct {
	Msg any
	Err string
}

// TCPNode is a site endpoint communicating over TCP with gob encoding. Each
// peer gets one persistent connection; requests on a connection are
// serialised, which preserves the synchronous semantics the paper's
// schedulers rely on.
type TCPNode struct {
	id      int
	ln      net.Listener
	handler Handler

	mu      sync.Mutex
	peers   map[int]string // site -> address
	conns   map[int]*clientConn
	serving map[net.Conn]bool // accepted connections, force-closed on Close

	wg     sync.WaitGroup
	closed chan struct{}
}

type clientConn struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// ListenTCP starts a TCP endpoint for the site on addr ("host:port", use
// ":0" for an ephemeral port) and begins serving incoming scheduler
// messages with the handler.
func ListenTCP(siteID int, addr string, h Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:      siteID,
		ln:      ln,
		handler: h,
		peers:   make(map[int]string),
		conns:   make(map[int]*clientConn),
		serving: make(map[net.Conn]bool),
		closed:  make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the listening address, useful with ":0".
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer registers the address of another site.
func (n *TCPNode) SetPeer(siteID int, addr string) {
	n.mu.Lock()
	n.peers[siteID] = addr
	n.mu.Unlock()
}

// SiteID implements Node.
func (n *TCPNode) SiteID() int { return n.id }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			continue
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

func (n *TCPNode) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.serving, conn)
		n.mu.Unlock()
	}()
	n.mu.Lock()
	if n.serving == nil {
		n.mu.Unlock()
		return
	}
	n.serving[conn] = true
	n.mu.Unlock()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		resp, err := n.handler.HandleMessage(env.From, env.Msg)
		rep := replyEnvelope{Msg: resp}
		if err != nil {
			rep.Err = err.Error()
		}
		if err := enc.Encode(&rep); err != nil {
			return
		}
	}
}

func (n *TCPNode) client(to int) (*clientConn, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if c := n.conns[to]; c != nil {
		return c, nil
	}
	addr, ok := n.peers[to]
	if !ok {
		return nil, fmt.Errorf("transport: no address for site %d", to)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial site %d: %w", to, err)
	}
	c := &clientConn{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}
	n.conns[to] = c
	return c, nil
}

func (n *TCPNode) dropClient(to int, c *clientConn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
	c.conn.Close()
}

// Send implements Node: one synchronous request/response exchange.
// Cancelling the context forces a deadline onto the connection, which
// unblocks the exchange; the poisoned connection is dropped and redialled on
// the next use.
func (n *TCPNode) Send(ctx context.Context, to int, msg any) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: send to site %d: %w", to, context.Cause(ctx))
	}
	c, err := n.client(to)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()

	// A watcher pops the connection deadline on cancellation so the blocking
	// gob exchange returns. It is joined before Send returns, so a deadline
	// is only ever set when ctx was in fact cancelled — and then the
	// connection is dropped below, never reused half-poisoned.
	stop := make(chan struct{})
	watcherDone := make(chan struct{})
	if ctx.Done() != nil {
		go func() {
			defer close(watcherDone)
			select {
			case <-ctx.Done():
				c.conn.SetDeadline(time.Now())
			case <-stop:
			}
		}()
	} else {
		close(watcherDone)
	}
	join := func() {
		close(stop)
		<-watcherDone
	}

	if err := c.enc.Encode(&envelope{From: n.id, Msg: msg}); err != nil {
		join()
		n.dropClient(to, c)
		return nil, fmt.Errorf("transport: send to site %d: %w", to, sendErr(ctx, err))
	}
	var rep replyEnvelope
	if err := c.dec.Decode(&rep); err != nil {
		join()
		n.dropClient(to, c)
		return nil, fmt.Errorf("transport: recv from site %d: %w", to, sendErr(ctx, err))
	}
	join()
	if err := ctx.Err(); err != nil {
		// Cancelled after the reply arrived but possibly after the watcher
		// armed the deadline: retire the connection rather than risk a stale
		// deadline on the next exchange.
		n.dropClient(to, c)
	}
	if rep.Err != "" {
		return rep.Msg, errors.New(rep.Err)
	}
	return rep.Msg, nil
}

// sendErr prefers the context's cancellation cause over the raw I/O error a
// popped deadline produces.
func sendErr(ctx context.Context, ioErr error) error {
	if ctx.Err() != nil {
		return context.Cause(ctx)
	}
	return ioErr
}

// Close implements Node.
func (n *TCPNode) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
		close(n.closed)
	}
	err := n.ln.Close()
	n.mu.Lock()
	for id, c := range n.conns {
		c.conn.Close()
		delete(n.conns, id)
	}
	for conn := range n.serving {
		conn.Close()
	}
	n.mu.Unlock()
	n.wg.Wait()
	return err
}
