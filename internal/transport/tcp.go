package transport

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
)

// envelope frames one request on the wire. ID multiplexes many concurrent
// exchanges over one connection: the peer echoes it on the matching
// replyEnvelope, so responses may arrive in any order.
type envelope struct {
	ID   uint64
	From int
	Msg  any
}

// replyEnvelope frames one response, tagged with the request ID it answers.
type replyEnvelope struct {
	ID  uint64
	Msg any
	Err string
}

// ErrPeerClosed reports that the connection to a peer was torn down — the
// peer crashed, closed, or this node shut down — while a request was in
// flight. Every call waiting on that connection fails with an error wrapping
// ErrPeerClosed; the next Send to the peer dials a fresh connection.
var ErrPeerClosed = errors.New("transport: peer connection closed")

// TCPNode is a site endpoint communicating over TCP with gob encoding. Each
// peer gets one persistent connection carrying a multiplexed framed
// protocol: every request is tagged with an ID, a writer goroutine pipelines
// outbound envelopes, and a reader goroutine dispatches responses to the
// callers waiting on their IDs — so any number of transactions share the
// connection without serialising on each other's round trips.
type TCPNode struct {
	id      int
	ln      net.Listener
	handler Handler

	mu      sync.Mutex
	peers   map[int]string // site -> address
	conns   map[int]*clientConn
	serving map[net.Conn]bool // accepted connections, force-closed on Close

	wg     sync.WaitGroup
	closed chan struct{}
}

// clientConn is the client half of one multiplexed peer connection.
type clientConn struct {
	conn   net.Conn
	sendCh chan envelope

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan replyEnvelope
	err     error // terminal cause, set once before done is closed

	done chan struct{} // closed when the connection is dead
}

// ListenTCP starts a TCP endpoint for the site on addr ("host:port", use
// ":0" for an ephemeral port) and begins serving incoming scheduler
// messages with the handler. Requests on one accepted connection are
// dispatched to the handler concurrently, so Handler implementations must
// be safe for concurrent use (see the Handler contract).
func ListenTCP(siteID int, addr string, h Handler) (*TCPNode, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	n := &TCPNode{
		id:      siteID,
		ln:      ln,
		handler: h,
		peers:   make(map[int]string),
		conns:   make(map[int]*clientConn),
		serving: make(map[net.Conn]bool),
		closed:  make(chan struct{}),
	}
	n.wg.Add(1)
	go n.acceptLoop()
	return n, nil
}

// Addr returns the listening address, useful with ":0".
func (n *TCPNode) Addr() string { return n.ln.Addr().String() }

// SetPeer registers the address of another site.
func (n *TCPNode) SetPeer(siteID int, addr string) {
	n.mu.Lock()
	n.peers[siteID] = addr
	n.mu.Unlock()
}

// SiteID implements Node.
func (n *TCPNode) SiteID() int { return n.id }

func (n *TCPNode) acceptLoop() {
	defer n.wg.Done()
	for {
		conn, err := n.ln.Accept()
		if err != nil {
			select {
			case <-n.closed:
				return
			default:
			}
			continue
		}
		n.wg.Add(1)
		go n.serveConn(conn)
	}
}

// serveConn is the server half of the multiplexed protocol: requests are
// decoded in order but handled each in its own goroutine, and responses are
// written back as they complete — out of order when a later request finishes
// first. A mutex serialises encoder access; gob frames stay intact.
func (n *TCPNode) serveConn(conn net.Conn) {
	defer n.wg.Done()
	defer func() {
		conn.Close()
		n.mu.Lock()
		delete(n.serving, conn)
		n.mu.Unlock()
	}()
	n.mu.Lock()
	if n.serving == nil {
		n.mu.Unlock()
		return
	}
	n.serving[conn] = true
	n.mu.Unlock()
	dec := gob.NewDecoder(conn)
	enc := gob.NewEncoder(conn)
	var encMu sync.Mutex
	for {
		var env envelope
		if err := dec.Decode(&env); err != nil {
			return
		}
		n.wg.Add(1)
		go func(env envelope) {
			defer n.wg.Done()
			resp, err := n.handler.HandleMessage(env.From, env.Msg)
			rep := replyEnvelope{ID: env.ID, Msg: resp}
			if err != nil {
				rep.Err = err.Error()
			}
			encMu.Lock()
			// An encode failure means the connection died; the decode loop
			// is failing with it, and the client side rejects its in-flight
			// calls through its own reader.
			_ = enc.Encode(&rep)
			encMu.Unlock()
		}(env)
	}
}

// client returns the live multiplexed connection to a peer, dialling a new
// one if none exists or the cached one has died. The dial honours the
// caller's context: a bounded exchange (a heartbeat ping, a recovery poll)
// must not block for the kernel's connect timeout against a blackholed
// peer.
func (n *TCPNode) client(ctx context.Context, to int) (*clientConn, error) {
	n.mu.Lock()
	if c := n.conns[to]; c != nil {
		select {
		case <-c.done:
			delete(n.conns, to) // dead; fall through to redial
		default:
			n.mu.Unlock()
			return c, nil
		}
	}
	addr, ok := n.peers[to]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("transport: no address for site %d", to)
	}
	n.mu.Unlock()

	var dialer net.Dialer
	conn, err := dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial site %d: %w", to, err)
	}
	c := &clientConn{
		conn:    conn,
		sendCh:  make(chan envelope, 64),
		pending: make(map[uint64]chan replyEnvelope),
		done:    make(chan struct{}),
	}

	n.mu.Lock()
	if prev := n.conns[to]; prev != nil {
		// Another Send raced us to the dial; use the winner and retire ours.
		select {
		case <-prev.done:
			n.conns[to] = c
		default:
			n.mu.Unlock()
			conn.Close()
			return prev, nil
		}
	} else {
		n.conns[to] = c
	}
	select {
	case <-n.closed:
		// Close ran while we dialled; don't leak a connection it cannot see.
		delete(n.conns, to)
		n.mu.Unlock()
		conn.Close()
		return nil, fmt.Errorf("transport: node closed: %w", ErrPeerClosed)
	default:
	}
	// Registered under the same critical section as the closed check: Close
	// observes either the registration (and fails the connection) or a later
	// dial (which sees closed) — and the Add is ordered before Close's Wait.
	n.wg.Add(2)
	n.mu.Unlock()

	go n.writeLoop(c)
	go n.readLoop(to, c)
	return c, nil
}

// writeLoop drains the send queue onto the wire, pipelining outbound
// envelopes from any number of callers.
func (n *TCPNode) writeLoop(c *clientConn) {
	defer n.wg.Done()
	enc := gob.NewEncoder(c.conn)
	for {
		select {
		case env := <-c.sendCh:
			if err := enc.Encode(&env); err != nil {
				c.fail(fmt.Errorf("transport: write: %w (%w)", err, ErrPeerClosed))
				return
			}
		case <-c.done:
			return
		}
	}
}

// readLoop decodes responses and dispatches each to the caller waiting on
// its request ID. When the connection dies it rejects every in-flight call.
func (n *TCPNode) readLoop(to int, c *clientConn) {
	defer n.wg.Done()
	dec := gob.NewDecoder(c.conn)
	for {
		var rep replyEnvelope
		if err := dec.Decode(&rep); err != nil {
			c.fail(fmt.Errorf("transport: read: %w (%w)", err, ErrPeerClosed))
			n.dropClient(to, c)
			return
		}
		c.mu.Lock()
		ch := c.pending[rep.ID]
		delete(c.pending, rep.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- rep // buffered; never blocks
		}
		// No waiter: the caller gave up (cancelled context) and the response
		// is discarded — the connection stays healthy for everyone else.
	}
}

// fail marks the connection dead with a terminal cause. The closed done
// channel rejects every in-flight and future call on this connection.
func (c *clientConn) fail(cause error) {
	c.mu.Lock()
	select {
	case <-c.done:
		c.mu.Unlock()
		return
	default:
	}
	c.err = cause
	close(c.done)
	c.mu.Unlock()
	c.conn.Close()
}

// cause returns the terminal error of a dead connection.
func (c *clientConn) cause() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	return ErrPeerClosed
}

func (n *TCPNode) dropClient(to int, c *clientConn) {
	n.mu.Lock()
	if n.conns[to] == c {
		delete(n.conns, to)
	}
	n.mu.Unlock()
}

// Send implements Node: one request/response exchange, multiplexed with any
// number of concurrent exchanges on the shared peer connection. Cancelling
// the context abandons only this exchange — the request may still reach the
// peer, and its response is discarded on arrival; the connection itself
// stays healthy for other callers. A connection torn down mid-request (peer
// crash, Close) rejects all its in-flight calls with an error wrapping
// ErrPeerClosed.
func (n *TCPNode) Send(ctx context.Context, to int, msg any) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("transport: send to site %d: %w", to, context.Cause(ctx))
	}
	c, err := n.client(ctx, to)
	if err != nil {
		return nil, err
	}

	ch := make(chan replyEnvelope, 1)
	c.mu.Lock()
	select {
	case <-c.done:
		err := c.err
		c.mu.Unlock()
		return nil, fmt.Errorf("transport: send to site %d: %w", to, err)
	default:
	}
	c.nextID++
	id := c.nextID
	c.pending[id] = ch
	c.mu.Unlock()

	unregister := func() {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
	}

	env := envelope{ID: id, From: n.id, Msg: msg}
	select {
	case c.sendCh <- env:
	case <-c.done:
		unregister()
		return nil, fmt.Errorf("transport: send to site %d: %w", to, c.cause())
	case <-ctx.Done():
		unregister()
		return nil, fmt.Errorf("transport: send to site %d: %w", to, context.Cause(ctx))
	}

	select {
	case rep := <-ch:
		if rep.Err != "" {
			return rep.Msg, errors.New(rep.Err)
		}
		return rep.Msg, nil
	case <-c.done:
		// The reader delivers a reply before it can observe the connection
		// dying, so a response that won the race is already buffered in ch —
		// prefer it over reporting a failure for an exchange that succeeded.
		select {
		case rep := <-ch:
			if rep.Err != "" {
				return rep.Msg, errors.New(rep.Err)
			}
			return rep.Msg, nil
		default:
		}
		unregister()
		return nil, fmt.Errorf("transport: recv from site %d: %w", to, c.cause())
	case <-ctx.Done():
		unregister()
		return nil, fmt.Errorf("transport: recv from site %d: %w", to, context.Cause(ctx))
	}
}

// Close implements Node. Every in-flight outbound call fails with an error
// wrapping ErrPeerClosed; accepted connections are force-closed.
func (n *TCPNode) Close() error {
	select {
	case <-n.closed:
		return nil
	default:
		close(n.closed)
	}
	err := n.ln.Close()
	n.mu.Lock()
	conns := make([]*clientConn, 0, len(n.conns))
	for id, c := range n.conns {
		conns = append(conns, c)
		delete(n.conns, id)
	}
	for conn := range n.serving {
		conn.Close()
	}
	n.mu.Unlock()
	for _, c := range conns {
		c.fail(fmt.Errorf("transport: node closed: %w", ErrPeerClosed))
	}
	n.wg.Wait()
	return err
}
