package transport

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Handler processes one request message and returns a response. A site's
// Listener implements this: "receive, handle and forward the requests from
// other schedulers to the DTX scheduler".
//
// Both transports deliver requests concurrently — the TCP transport
// dispatches every decoded frame to its own goroutine, and the in-process
// network calls the handler from each sender's goroutine — so
// implementations MUST be safe for concurrent use. Responses to one peer
// may be produced, and are delivered, in any order relative to the requests
// (the multiplexed protocol matches them by request ID).
type Handler interface {
	HandleMessage(from int, msg any) (any, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from int, msg any) (any, error)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from int, msg any) (any, error) { return f(from, msg) }

// Node is one site's endpoint in the scheduler-to-scheduler network.
type Node interface {
	// SiteID returns this endpoint's site identifier.
	SiteID() int
	// Send delivers a request to another site and waits for its response.
	// Sends to one peer from many goroutines proceed concurrently — the
	// transport multiplexes them and never serialises independent exchanges.
	// Cancelling the context abandons the exchange; the request may or may
	// not have been processed by the peer, and callers that mutate remote
	// state must clean up with their own abort protocol. A peer that is
	// gone — crashed, closed, or departed — yields an error wrapping
	// ErrPeerClosed.
	Send(ctx context.Context, to int, msg any) (any, error)
	// Close releases the endpoint.
	Close() error
}

// Network is an in-process transport connecting any number of sites with
// synchronous request/response semantics and configurable one-way latency,
// standing in for the paper's Ethernet LAN.
type Network struct {
	mu      sync.RWMutex
	nodes   map[int]*memNode
	latency time.Duration
}

// NewNetwork creates an empty in-process network.
func NewNetwork() *Network {
	return &Network{nodes: make(map[int]*memNode)}
}

// SetLatency sets the synthetic one-way message latency. Zero disables the
// delay. A request/response exchange pays the latency twice.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	n.latency = d
	n.mu.Unlock()
}

// Join registers a site with its handler and returns its endpoint.
func (n *Network) Join(siteID int, h Handler) (Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.nodes[siteID]; exists {
		return nil, fmt.Errorf("transport: site %d already joined", siteID)
	}
	node := &memNode{net: n, id: siteID, handler: h}
	n.nodes[siteID] = node
	return node, nil
}

type memNode struct {
	net     *Network
	id      int
	handler Handler
	closed  atomic.Bool
}

func (m *memNode) SiteID() int { return m.id }

// Send runs the peer's handler in the caller's goroutine, so sends from
// many goroutines are exactly as concurrent as the TCP transport's
// multiplexed exchanges — there is no per-peer serialisation to model.
// A closed endpoint refuses to send: a crashed site's leftover goroutines
// must not keep reaching the network, or in-process crash tests would
// exercise a cleanup path no real crash has.
func (m *memNode) Send(ctx context.Context, to int, msg any) (any, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if m.closed.Load() {
		return nil, fmt.Errorf("transport: site %d endpoint closed: %w", m.id, ErrPeerClosed)
	}
	m.net.mu.RLock()
	peer := m.net.nodes[to]
	lat := m.net.latency
	m.net.mu.RUnlock()
	if peer == nil {
		return nil, fmt.Errorf("transport: site %d unreachable: %w", to, ErrPeerClosed)
	}
	if err := sleepCtx(ctx, lat); err != nil {
		return nil, fmt.Errorf("transport: send to site %d: %w", to, err)
	}
	resp, err := peer.handler.HandleMessage(m.id, msg)
	// The request was processed; a cancellation from here on loses only the
	// response, mirroring a network whose reply never arrives.
	if serr := sleepCtx(ctx, lat); serr != nil {
		return nil, fmt.Errorf("transport: recv from site %d: %w", to, serr)
	}
	return resp, err
}

// sleepCtx pauses for d unless the context is cancelled first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return nil
	case <-ctx.Done():
		return context.Cause(ctx)
	}
}

func (m *memNode) Close() error {
	m.closed.Store(true)
	m.net.mu.Lock()
	delete(m.net.nodes, m.id)
	m.net.mu.Unlock()
	return nil
}
