package transport

import (
	"fmt"
	"sync"
	"time"
)

// Handler processes one request message and returns a response. A site's
// Listener implements this: "receive, handle and forward the requests from
// other schedulers to the DTX scheduler".
type Handler interface {
	HandleMessage(from int, msg any) (any, error)
}

// HandlerFunc adapts a function to the Handler interface.
type HandlerFunc func(from int, msg any) (any, error)

// HandleMessage implements Handler.
func (f HandlerFunc) HandleMessage(from int, msg any) (any, error) { return f(from, msg) }

// Node is one site's endpoint in the scheduler-to-scheduler network.
type Node interface {
	// SiteID returns this endpoint's site identifier.
	SiteID() int
	// Send delivers a request to another site and waits for its response.
	Send(to int, msg any) (any, error)
	// Close releases the endpoint.
	Close() error
}

// Network is an in-process transport connecting any number of sites with
// synchronous request/response semantics and configurable one-way latency,
// standing in for the paper's Ethernet LAN.
type Network struct {
	mu      sync.RWMutex
	nodes   map[int]*memNode
	latency time.Duration
}

// NewNetwork creates an empty in-process network.
func NewNetwork() *Network {
	return &Network{nodes: make(map[int]*memNode)}
}

// SetLatency sets the synthetic one-way message latency. Zero disables the
// delay. A request/response exchange pays the latency twice.
func (n *Network) SetLatency(d time.Duration) {
	n.mu.Lock()
	n.latency = d
	n.mu.Unlock()
}

// Join registers a site with its handler and returns its endpoint.
func (n *Network) Join(siteID int, h Handler) (Node, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, exists := n.nodes[siteID]; exists {
		return nil, fmt.Errorf("transport: site %d already joined", siteID)
	}
	node := &memNode{net: n, id: siteID, handler: h}
	n.nodes[siteID] = node
	return node, nil
}

type memNode struct {
	net     *Network
	id      int
	handler Handler
}

func (m *memNode) SiteID() int { return m.id }

func (m *memNode) Send(to int, msg any) (any, error) {
	m.net.mu.RLock()
	peer := m.net.nodes[to]
	lat := m.net.latency
	m.net.mu.RUnlock()
	if peer == nil {
		return nil, fmt.Errorf("transport: site %d unreachable", to)
	}
	if lat > 0 {
		time.Sleep(lat)
	}
	resp, err := peer.handler.HandleMessage(m.id, msg)
	if lat > 0 {
		time.Sleep(lat)
	}
	return resp, err
}

func (m *memNode) Close() error {
	m.net.mu.Lock()
	delete(m.net.nodes, m.id)
	m.net.mu.Unlock()
	return nil
}
