package transport

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/txn"
	"repro/internal/xupdate"
)

// echoHandler answers ExecOpReq with a canned response and errors on demand.
type echoHandler struct {
	site int
	fail bool
}

func (h *echoHandler) HandleMessage(from int, msg any) (any, error) {
	if h.fail {
		return nil, fmt.Errorf("site %d: induced failure", h.site)
	}
	switch m := msg.(type) {
	case ExecOpReq:
		return ExecOpResp{
			Site:           h.site,
			Executed:       true,
			AcquireLocking: true,
			Results:        []string{m.Op.Doc, m.Op.Query},
		}, nil
	case WFGReq:
		return WFGResp{}, nil
	default:
		return Ack{OK: true}, nil
	}
}

func execReq() ExecOpReq {
	return ExecOpReq{
		Txn:         txn.ID{Site: 1, Seq: 7},
		TS:          42,
		Coordinator: 1,
		OpIdx:       0,
		Op:          txn.NewQuery("d1", "//person"),
	}
}

func TestNetworkRoundTrip(t *testing.T) {
	net := NewNetwork()
	n1, err := net.Join(1, &echoHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Join(2, &echoHandler{site: 2}); err != nil {
		t.Fatal(err)
	}
	resp, err := n1.Send(context.Background(), 2, execReq())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := resp.(ExecOpResp)
	if !ok || r.Site != 2 || !r.Executed {
		t.Fatalf("resp = %#v", resp)
	}
	if n1.SiteID() != 1 {
		t.Fatal("wrong site id")
	}
}

func TestNetworkUnreachableAndDuplicate(t *testing.T) {
	net := NewNetwork()
	n1, err := net.Join(1, &echoHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Send(context.Background(), 9, Ack{}); err == nil {
		t.Fatal("expected unreachable error")
	}
	if _, err := net.Join(1, &echoHandler{site: 1}); err == nil {
		t.Fatal("expected duplicate join error")
	}
	// After Close the node is unreachable.
	n2, _ := net.Join(2, &echoHandler{site: 2})
	if err := n2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := n1.Send(context.Background(), 2, Ack{}); err == nil {
		t.Fatal("expected unreachable after close")
	}
}

func TestNetworkLatency(t *testing.T) {
	net := NewNetwork()
	n1, _ := net.Join(1, &echoHandler{site: 1})
	net.Join(2, &echoHandler{site: 2})
	net.SetLatency(5 * time.Millisecond)
	start := time.Now()
	if _, err := n1.Send(context.Background(), 2, Ack{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("round trip %v, want >= 10ms with 5ms one-way latency", d)
	}
}

func TestNetworkConcurrentSends(t *testing.T) {
	net := NewNetwork()
	nodes := make([]Node, 4)
	for i := range nodes {
		n, err := net.Join(i, &echoHandler{site: i})
		if err != nil {
			t.Fatal(err)
		}
		nodes[i] = n
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i == j {
				continue
			}
			wg.Add(1)
			go func(i, j int) {
				defer wg.Done()
				for k := 0; k < 25; k++ {
					if _, err := nodes[i].Send(context.Background(), j, execReq()); err != nil {
						t.Errorf("send %d->%d: %v", i, j, err)
						return
					}
				}
			}(i, j)
		}
	}
	wg.Wait()
}

func TestTCPRoundTrip(t *testing.T) {
	h1 := &echoHandler{site: 1}
	h2 := &echoHandler{site: 2}
	n1, err := ListenTCP(1, "127.0.0.1:0", h1)
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP(2, "127.0.0.1:0", h2)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.SetPeer(2, n2.Addr())
	n2.SetPeer(1, n1.Addr())

	resp, err := n1.Send(context.Background(), 2, execReq())
	if err != nil {
		t.Fatal(err)
	}
	r, ok := resp.(ExecOpResp)
	if !ok || r.Site != 2 || len(r.Results) != 2 || r.Results[1] != "//person" {
		t.Fatalf("resp = %#v", resp)
	}
	// Reverse direction over a fresh connection.
	resp, err = n2.Send(context.Background(), 1, WFGReq{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := resp.(WFGResp); !ok {
		t.Fatalf("resp = %#v", resp)
	}
}

func TestTCPGobCarriesUpdates(t *testing.T) {
	var got txn.Operation
	h := HandlerFunc(func(from int, msg any) (any, error) {
		got = msg.(ExecOpReq).Op
		return Ack{OK: true}, nil
	})
	n1, err := ListenTCP(1, "127.0.0.1:0", &echoHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP(2, "127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.SetPeer(2, n2.Addr())

	op := txn.NewUpdate("d2", &xupdate.Update{
		Kind:   xupdate.Insert,
		Target: "/products",
		New: &xupdate.NodeSpec{Name: "product", Children: []*xupdate.NodeSpec{
			{Name: "id", Text: "13"},
			{Name: "price", Text: "10.30"},
		}},
	})
	req := execReq()
	req.Op = op
	if _, err := n1.Send(context.Background(), 2, req); err != nil {
		t.Fatal(err)
	}
	if got.Update == nil || got.Update.New == nil || len(got.Update.New.Children) != 2 {
		t.Fatalf("update lost in transit: %#v", got)
	}
	if got.Update.New.Children[1].Text != "10.30" {
		t.Fatal("nested spec corrupted")
	}
}

func TestTCPHandlerErrorPropagates(t *testing.T) {
	n1, err := ListenTCP(1, "127.0.0.1:0", &echoHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP(2, "127.0.0.1:0", &echoHandler{site: 2, fail: true})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.SetPeer(2, n2.Addr())
	if _, err := n1.Send(context.Background(), 2, Ack{}); err == nil {
		t.Fatal("expected propagated handler error")
	}
}

func TestTCPUnknownPeer(t *testing.T) {
	n1, err := ListenTCP(1, "127.0.0.1:0", &echoHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	if _, err := n1.Send(context.Background(), 5, Ack{}); err == nil {
		t.Fatal("expected no-address error")
	}
}

func TestTCPConcurrentSends(t *testing.T) {
	n1, err := ListenTCP(1, "127.0.0.1:0", &echoHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP(2, "127.0.0.1:0", &echoHandler{site: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer n2.Close()
	n1.SetPeer(2, n2.Addr())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if _, err := n1.Send(context.Background(), 2, execReq()); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestTCPSendAfterPeerCloseReconnects(t *testing.T) {
	n1, err := ListenTCP(1, "127.0.0.1:0", &echoHandler{site: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer n1.Close()
	n2, err := ListenTCP(2, "127.0.0.1:0", &echoHandler{site: 2})
	if err != nil {
		t.Fatal(err)
	}
	n1.SetPeer(2, n2.Addr())
	if _, err := n1.Send(context.Background(), 2, Ack{}); err != nil {
		t.Fatal(err)
	}
	addr := n2.Addr()
	n2.Close()
	// First send fails (broken pipe or refused), but must not wedge.
	if _, err := n1.Send(context.Background(), 2, Ack{}); err == nil {
		t.Log("send after close unexpectedly succeeded (race with close) — acceptable")
	}
	// Restart the peer on the same address and verify reconnect.
	n2b, err := ListenTCP(2, addr, &echoHandler{site: 2})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer n2b.Close()
	// The cached connection was dropped on error; a new Send dials fresh.
	if _, err := n1.Send(context.Background(), 2, Ack{}); err != nil {
		t.Fatalf("reconnect failed: %v", err)
	}
}
