package txn

import (
	"errors"
	"fmt"
)

// Sentinel errors shared by every layer of the system and re-exported by the
// public dtx package. They classify transaction outcomes so clients can
// branch with errors.Is instead of matching reason strings:
//
//   - ErrAborted: the transaction was rolled back cleanly — by the deadlock
//     detector, by context cancellation, or by the client itself. Every
//     participant site undid its effects and released its locks.
//   - ErrDeadlock: the transaction was chosen as a deadlock victim. Wraps
//     ErrAborted, so errors.Is(err, ErrAborted) also holds; resubmission is
//     safe and is what a retry policy automates.
//   - ErrFailed: the transaction could not be cleanly resolved (an operation
//     failed mid-flight, or commit/abort was rejected at a participant).
//   - ErrUnknownDocument: an operation named a document no site holds.
//   - ErrSiteOutOfRange: a site index does not exist in the cluster.
//   - ErrTxnDone: a step arrived after the transaction already committed or
//     rolled back.
//   - ErrReplicaUnavailable: an operation needed a replica at a site that is
//     currently down or suspected down. Reads route around dead replicas
//     automatically, so this surfaces when NO replica of a document is
//     believed alive, or when a write would touch a partially-down replica
//     set (a write must reach every copy, so it fails fast instead).
//   - ErrReadOnly: an update was attempted on a read-only transaction. The
//     refusal is non-terminal: the transaction stays live and keeps serving
//     snapshot reads.
//   - ErrSnapshotUnavailable: a read-only transaction needed a committed
//     version at or below its begin timestamp, but version GC already
//     retired every candidate ("snapshot too old"). Wraps ErrAborted;
//     resubmission starts a fresh snapshot and is safe, so retry policies
//     treat it like a deadlock victim.
var (
	ErrAborted             = errors.New("dtx: transaction aborted")
	ErrDeadlock            = fmt.Errorf("%w (deadlock victim)", ErrAborted)
	ErrSnapshotUnavailable = fmt.Errorf("%w (snapshot unavailable)", ErrAborted)
	ErrFailed              = errors.New("dtx: transaction failed")
	ErrUnknownDocument     = errors.New("dtx: unknown document")
	ErrSiteOutOfRange      = errors.New("dtx: site out of range")
	ErrTxnDone             = errors.New("dtx: transaction already finished")
	ErrReplicaUnavailable  = errors.New("dtx: replica unavailable")
	ErrReadOnly            = errors.New("dtx: read-only transaction")
)

// Wire codes for the sentinels. Transport responses carry a code next to the
// human-readable message so typed errors survive crossing site boundaries.
const (
	CodeNone                = ""
	CodeAborted             = "aborted"
	CodeDeadlock            = "deadlock"
	CodeFailed              = "failed"
	CodeUnknownDocument     = "unknown-document"
	CodeSiteOutOfRange      = "site-out-of-range"
	CodeReplicaUnavailable  = "replica-unavailable"
	CodeSnapshotUnavailable = "snapshot-unavailable"
	CodeReadOnly            = "read-only"

	// CodeReplicaStale is a refinement of CodeReplicaUnavailable a follower
	// answers when it is healthy but lagging beyond the bounded-staleness
	// window: the caller should retry at the primary WITHOUT marking the
	// follower suspect. It maps back to ErrReplicaUnavailable — servers set
	// the code explicitly, never via ErrorCode.
	CodeReplicaStale = "replica-stale"
)

// ErrorCode maps an error to its wire code. Unclassified errors map to
// CodeFailed so a remote peer never mistakes a failure for success; nil maps
// to CodeNone.
func ErrorCode(err error) string {
	switch {
	case err == nil:
		return CodeNone
	case errors.Is(err, ErrUnknownDocument):
		return CodeUnknownDocument
	case errors.Is(err, ErrDeadlock):
		return CodeDeadlock
	case errors.Is(err, ErrSnapshotUnavailable):
		return CodeSnapshotUnavailable
	case errors.Is(err, ErrAborted):
		return CodeAborted
	case errors.Is(err, ErrReadOnly):
		return CodeReadOnly
	case errors.Is(err, ErrSiteOutOfRange):
		return CodeSiteOutOfRange
	case errors.Is(err, ErrReplicaUnavailable):
		return CodeReplicaUnavailable
	default:
		return CodeFailed
	}
}

// FromCode reconstructs a typed error from a wire code and message — the
// inverse of ErrorCode, up to the sentinel the code names. An empty code with
// a message is an unclassified failure; an empty code without one is nil.
func FromCode(code, msg string) error {
	var base error
	switch code {
	case CodeNone:
		if msg == "" {
			return nil
		}
		base = ErrFailed
	case CodeAborted:
		base = ErrAborted
	case CodeDeadlock:
		base = ErrDeadlock
	case CodeUnknownDocument:
		base = ErrUnknownDocument
	case CodeSiteOutOfRange:
		base = ErrSiteOutOfRange
	case CodeReplicaUnavailable, CodeReplicaStale:
		base = ErrReplicaUnavailable
	case CodeSnapshotUnavailable:
		base = ErrSnapshotUnavailable
	case CodeReadOnly:
		base = ErrReadOnly
	default:
		base = ErrFailed
	}
	if msg == "" {
		return base
	}
	return fmt.Errorf("%w: %s", base, msg)
}
