// Package txn defines the transaction model shared by every DTX component:
// transaction identifiers, logical start timestamps (used by the deadlock
// victim rule "abort the most recent transaction in the circle"), operation
// records with the status flags of Algorithms 1–2, and transaction states.
package txn

import (
	"fmt"

	"repro/internal/xupdate"
)

// ID uniquely identifies a transaction across the whole system: the site
// that coordinates it plus a site-local sequence number.
type ID struct {
	Site int
	Seq  int64
}

// Zero is the zero ID, used as "no transaction".
var Zero ID

// String renders the ID as t<site>.<seq>.
func (id ID) String() string { return fmt.Sprintf("t%d.%d", id.Site, id.Seq) }

// ParseID is the inverse of String: it reads a t<site>.<seq> identifier, as
// found in journal records, back into an ID.
func ParseID(s string) (ID, error) {
	var id ID
	if _, err := fmt.Sscanf(s, "t%d.%d", &id.Site, &id.Seq); err != nil {
		return Zero, fmt.Errorf("txn: bad transaction id %q", s)
	}
	return id, nil
}

// Less orders IDs for deterministic tie-breaking.
func (id ID) Less(other ID) bool {
	if id.Site != other.Site {
		return id.Site < other.Site
	}
	return id.Seq < other.Seq
}

// TS is a logical start timestamp (Lamport-style). Larger means more recent,
// which is what the deadlock victim rule compares.
type TS int64

// Newer reports whether a transaction stamped (ats, aid) is more recent than
// one stamped (bts, bid). Ties on the timestamp are broken by ID so every
// site picks the same victim from the same cycle.
func Newer(ats TS, aid ID, bts TS, bid ID) bool {
	if ats != bts {
		return ats > bts
	}
	return bid.Less(aid)
}

// State is the lifecycle state of a transaction. The paper's §2.2 closes
// with: "a transaction either commits, aborts or fails".
type State int

// Transaction states.
const (
	Active State = iota
	Waiting
	Committed
	Aborted
	Failed
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Waiting:
		return "waiting"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// OpKind distinguishes read from write operations.
type OpKind int

// Operation kinds.
const (
	OpQuery OpKind = iota
	OpUpdate
)

// Operation is one step of a transaction. Exactly one of Query or Update is
// set, matching the kind. Doc names the target document; the catalog decides
// which sites the operation must execute on.
type Operation struct {
	Kind   OpKind
	Doc    string
	Query  string          // XPath text for OpQuery
	Update *xupdate.Update // for OpUpdate

	// Status flags mirroring Algorithms 1–2.
	Executed       bool
	AcquireLocking bool
	Aborted        bool
	Deadlock       bool
}

// NewQuery builds a read operation.
func NewQuery(doc, query string) Operation {
	return Operation{Kind: OpQuery, Doc: doc, Query: query}
}

// NewUpdate builds a write operation.
func NewUpdate(doc string, u *xupdate.Update) Operation {
	return Operation{Kind: OpUpdate, Doc: doc, Update: u}
}

// String renders the operation compactly.
func (op Operation) String() string {
	if op.Kind == OpQuery {
		return fmt.Sprintf("query(%s: %s)", op.Doc, op.Query)
	}
	return fmt.Sprintf("update(%s: %s)", op.Doc, op.Update)
}

// Transaction is a client-submitted unit of work: an ordered list of
// operations executed under the coordinator of the site it was submitted to.
type Transaction struct {
	ID    ID
	TS    TS
	Ops   []Operation
	State State
}

// New builds a transaction with the given identity and operations.
func New(id ID, ts TS, ops []Operation) *Transaction {
	return &Transaction{ID: id, TS: ts, Ops: ops, State: Active}
}

// Clock is a site-local Lamport clock used to stamp transactions so that
// "most recent" is meaningful across sites. Not safe for concurrent use;
// callers synchronise.
type Clock struct {
	now TS
}

// Tick advances the clock and returns the new timestamp.
func (c *Clock) Tick() TS {
	c.now++
	return c.now
}

// Observe folds in a timestamp seen from another site.
func (c *Clock) Observe(ts TS) {
	if ts > c.now {
		c.now = ts
	}
}

// Now returns the current timestamp without advancing.
func (c *Clock) Now() TS { return c.now }
