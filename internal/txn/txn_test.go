package txn

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/xupdate"
)

func TestIDStringAndLess(t *testing.T) {
	id := ID{Site: 2, Seq: 7}
	if id.String() != "t2.7" {
		t.Fatalf("String = %q", id.String())
	}
	cases := []struct {
		a, b ID
		less bool
	}{
		{ID{0, 1}, ID{0, 2}, true},
		{ID{0, 2}, ID{0, 1}, false},
		{ID{0, 9}, ID{1, 1}, true},
		{ID{1, 1}, ID{0, 9}, false},
		{ID{1, 1}, ID{1, 1}, false},
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.less {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.less)
		}
	}
	if Zero != (ID{}) {
		t.Fatal("Zero is not the zero ID")
	}
}

func TestNewerVictimRule(t *testing.T) {
	a, b := ID{Site: 0, Seq: 1}, ID{Site: 1, Seq: 1}
	if !Newer(5, a, 3, b) {
		t.Fatal("larger timestamp must be newer")
	}
	if Newer(3, a, 5, b) {
		t.Fatal("smaller timestamp must not be newer")
	}
	// Timestamp ties break on ID, and the rule is antisymmetric so every
	// site picks the same victim from the same cycle.
	if Newer(4, a, 4, b) == Newer(4, b, 4, a) {
		t.Fatal("tie-break is not antisymmetric")
	}
}

func TestStateStrings(t *testing.T) {
	want := map[State]string{
		Active: "active", Waiting: "waiting", Committed: "committed",
		Aborted: "aborted", Failed: "failed", State(99): "State(99)",
	}
	for st, s := range want {
		if st.String() != s {
			t.Errorf("State(%d).String() = %q, want %q", int(st), st.String(), s)
		}
	}
}

func TestOperationConstructors(t *testing.T) {
	q := NewQuery("d1", "//person")
	if q.Kind != OpQuery || q.Doc != "d1" || q.Query != "//person" || q.Update != nil {
		t.Fatalf("query op = %+v", q)
	}
	u := NewUpdate("d2", &xupdate.Update{Kind: xupdate.Remove, Target: "/x"})
	if u.Kind != OpUpdate || u.Doc != "d2" || u.Update == nil {
		t.Fatalf("update op = %+v", u)
	}
	if q.String() == "" || u.String() == "" {
		t.Fatal("operations must render")
	}
	tr := New(ID{Site: 1, Seq: 2}, 3, []Operation{q, u})
	if tr.State != Active || len(tr.Ops) != 2 || tr.TS != 3 {
		t.Fatalf("transaction = %+v", tr)
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Tick() != 1 || c.Tick() != 2 {
		t.Fatal("Tick must advance by one")
	}
	c.Observe(10)
	if c.Now() != 10 {
		t.Fatalf("Observe did not fold in: %d", c.Now())
	}
	c.Observe(4)
	if c.Now() != 10 {
		t.Fatal("Observe must never move backwards")
	}
	if c.Tick() != 11 {
		t.Fatal("Tick after Observe must continue from the maximum")
	}
}

func TestErrorTaxonomy(t *testing.T) {
	// A deadlock victim is an aborted transaction.
	if !errors.Is(ErrDeadlock, ErrAborted) {
		t.Fatal("ErrDeadlock must wrap ErrAborted")
	}
	// The classes are otherwise disjoint.
	if errors.Is(ErrAborted, ErrDeadlock) {
		t.Fatal("ErrAborted must not be a deadlock")
	}
	if errors.Is(ErrFailed, ErrAborted) || errors.Is(ErrUnknownDocument, ErrAborted) {
		t.Fatal("failure classes must not be aborts")
	}
	// Wrapping with context keeps the classification.
	wrapped := fmt.Errorf("%w: extra detail", ErrDeadlock)
	if !errors.Is(wrapped, ErrDeadlock) || !errors.Is(wrapped, ErrAborted) {
		t.Fatal("wrapping lost the classification")
	}
}

func TestErrorCodeRoundTrip(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{nil, CodeNone},
		{ErrAborted, CodeAborted},
		{ErrDeadlock, CodeDeadlock},
		{ErrFailed, CodeFailed},
		{ErrUnknownDocument, CodeUnknownDocument},
		{ErrSiteOutOfRange, CodeSiteOutOfRange},
		{fmt.Errorf("%w: detail", ErrDeadlock), CodeDeadlock},
		{errors.New("anything else"), CodeFailed},
	}
	for _, c := range cases {
		if got := ErrorCode(c.err); got != c.code {
			t.Errorf("ErrorCode(%v) = %q, want %q", c.err, got, c.code)
		}
	}
	// FromCode reconstructs an error in the same class.
	for _, code := range []string{CodeAborted, CodeDeadlock, CodeFailed, CodeUnknownDocument, CodeSiteOutOfRange} {
		rebuilt := FromCode(code, "remote detail")
		if ErrorCode(rebuilt) != code {
			t.Errorf("FromCode(%q) reclassified as %q", code, ErrorCode(rebuilt))
		}
	}
	if FromCode(CodeNone, "") != nil {
		t.Fatal("empty code and message must be nil")
	}
	if err := FromCode(CodeNone, "boom"); !errors.Is(err, ErrFailed) {
		t.Fatal("message without code must classify as failure")
	}
	if err := FromCode("unheard-of", "boom"); !errors.Is(err, ErrFailed) {
		t.Fatal("unknown code must classify as failure")
	}
	if !errors.Is(FromCode(CodeDeadlock, ""), ErrAborted) {
		t.Fatal("rebuilt deadlock must still wrap ErrAborted")
	}
}
