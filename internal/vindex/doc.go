package vindex

import (
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// DocIndex is the value index of one immutable document snapshot, keyed by
// label path instead of guide-node ID (snapshots carry no DataGuide). It is
// built once per MVCC version, on the first indexable snapshot read against
// that version, and is immutable afterwards — every reader pinned to the
// version sees postings exactly consistent with the version's tree, however
// far the live document has moved on.
type DocIndex struct {
	ks      *keySet
	entries map[string]*docEntry // label path ("/site/people/person") → postings
}

type docEntry struct {
	segs  []string // path split into element names, root first
	text  *postings
	attrs map[string]*postings
}

// BuildDocIndex walks the snapshot once and indexes every enabled key.
// keys is the live index's key set at build time; a key enabled later is
// simply absent here and those reads fall back to scanning this version.
func BuildDocIndex(doc *xmltree.Document, keys []string) *DocIndex {
	ks := &keySet{text: make(map[string]bool), attrs: make(map[string]bool)}
	for _, k := range keys {
		name, isAttr := splitKey(k)
		if name == "" {
			continue
		}
		if isAttr {
			ks.attrs[name] = true
		} else {
			ks.text[name] = true
		}
	}
	di := &DocIndex{ks: ks, entries: make(map[string]*docEntry)}
	if ks.empty() || doc.Root == nil {
		return di
	}
	entry := func(path string) *docEntry {
		e := di.entries[path]
		if e == nil {
			e = &docEntry{segs: strings.Split(strings.TrimPrefix(path, "/"), "/")}
			di.entries[path] = e
		}
		return e
	}
	var walk func(n *xmltree.Node, parentPath string)
	walk = func(n *xmltree.Node, parentPath string) {
		path := parentPath + "/" + n.Name
		if ks.text[n.Name] {
			e := entry(path)
			if e.text == nil {
				e.text = newPostings()
			}
			e.text.add(n.Text, n)
		}
		if len(ks.attrs) > 0 {
			for _, a := range n.Attrs {
				if !ks.attrs[a.Name] {
					continue
				}
				e := entry(path)
				if e.attrs == nil {
					e.attrs = make(map[string]*postings)
				}
				p := e.attrs[a.Name]
				if p == nil {
					p = newPostings()
					e.attrs[a.Name] = p
				}
				p.add(a.Value, n)
			}
		}
		for _, c := range n.Children {
			walk(c, path)
		}
	}
	walk(doc.Root, "")
	return di
}

// Covers reports whether this DocIndex was built with the given key.
func (di *DocIndex) Covers(key string) bool {
	name, isAttr := splitKey(key)
	if isAttr {
		return di.ks.attrs[name]
	}
	return di.ks.text[name]
}

// Eval serves q from the snapshot postings under the given plan, returning
// (nodes, true) when this index covers the plan's key and (nil, false)
// otherwise — the caller then scans the snapshot. The structural side of
// the query is resolved by matching each indexed label path against the
// step pattern: for the supported XPath subset, path-matches ⇔ the extent
// at that path is the structural match set (the same property the live
// DataGuide provides).
func (di *DocIndex) Eval(q *xpath.Query, plan Plan) ([]*xmltree.Node, bool) {
	if !di.Covers(plan.Key) {
		return nil, false
	}
	// Entries are matched against the steps up to and including the anchor
	// step; Finish evaluates any steps after it from the candidate set.
	prefix := q.Steps[:plan.AnchorStep+1]
	var candidates []*xmltree.Node
	for _, e := range di.entries {
		var p *postings
		switch {
		case plan.Child:
			// The entry holds the [child = v] children: its last segment is
			// the child label, the rest must match the anchor prefix.
			if len(e.segs) < 2 || e.segs[len(e.segs)-1] != plan.Anchor.Name {
				continue
			}
			if !matchSteps(prefix, e.segs[:len(e.segs)-1]) {
				continue
			}
			p = e.text
		case plan.Anchor.Kind == xpath.PredAttr:
			if !matchSteps(prefix, e.segs) {
				continue
			}
			if e.attrs != nil {
				p = e.attrs[plan.Anchor.Name]
			}
		default: // PredText
			if !matchSteps(prefix, e.segs) {
				continue
			}
			p = e.text
		}
		if p == nil {
			continue
		}
		for _, lst := range p.lookup(plan.Anchor.Op, plan.Anchor.Value) {
			if plan.Child {
				for _, n := range lst {
					candidates = append(candidates, n.Parent)
				}
			} else {
				candidates = append(candidates, lst...)
			}
		}
	}
	return Finish(q, plan, candidates), true
}

// matchSteps reports whether a root-rooted label path matches the step
// pattern exactly (the final step lands on the path's last segment). It
// mirrors xpath.Eval's axis semantics: step 0 with the child axis matches
// only the root, the descendant axis matches any depth.
func matchSteps(steps []xpath.Step, segs []string) bool {
	var m func(i, j int) bool
	m = func(i, j int) bool {
		if i == len(steps) {
			return j == len(segs)
		}
		st := steps[i]
		if st.Axis == xpath.Child {
			return j < len(segs) && (st.Name == "*" || st.Name == segs[j]) && m(i+1, j+1)
		}
		for k := j; k < len(segs); k++ {
			if (st.Name == "*" || st.Name == segs[k]) && m(i+1, k+1) {
				return true
			}
		}
		return false
	}
	return m(0, 0)
}
