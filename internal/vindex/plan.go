package vindex

import (
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Plan describes how a query's predicate evaluation can be served from a
// value index: one anchor predicate resolved by posting lookup, the rest of
// the anchor step's predicates applied as residual filters, and any steps
// after the anchor step evaluated from the (small) candidate set.
type Plan struct {
	Anchor     xpath.Pred   // the indexed predicate
	Key        string       // "@name" for PredAttr, element label otherwise
	Child      bool         // anchor is a [child = v] predicate: candidates are parents of the posting nodes
	AnchorStep int          // index of the step carrying the predicates
	Residual   []xpath.Pred // remaining anchor-step predicates, applied per candidate
	Suffix     []xpath.Step // predicate-free steps after the anchor step
}

// PlanQuery decides whether q has an index-eligible shape and picks the
// anchor predicate. Eligible queries carry predicates on exactly one step —
// none positional (candidate sets lose the sibling ordering position
// predicates count over) — with at least one equality/ordered comparison
// over an attribute, the step's own text, or a child element. Steps after
// the predicate step are evaluated from the candidate set, so a trailing
// selection like //person[id='7']/emailaddress stays indexable. Whether the
// chosen key is actually indexed is the caller's check — a plan with a cold
// key is what feeds the auto-index miss counters.
func PlanQuery(q *xpath.Query) (Plan, bool) {
	predStep := -1
	for i, st := range q.Steps {
		if len(st.Preds) == 0 {
			continue
		}
		if predStep >= 0 {
			return Plan{}, false // predicates on two steps: no single anchor
		}
		predStep = i
	}
	if predStep < 0 {
		return Plan{}, false
	}
	anchor := q.Steps[predStep]
	for _, p := range anchor.Preds {
		if p.Kind == xpath.PredPosition {
			return Plan{}, false
		}
	}
	anchorIdx := -1
	var plan Plan
	for i, p := range anchor.Preds {
		if p.Op != xpath.Eq && !p.Op.Ordered() {
			continue // != enumerates almost everything; never an anchor
		}
		switch p.Kind {
		case xpath.PredAttr:
			plan = Plan{Anchor: p, Key: "@" + p.Name}
		case xpath.PredText:
			if anchor.Name == "*" {
				continue // text keys are per element label
			}
			plan = Plan{Anchor: p, Key: anchor.Name}
		case xpath.PredChild:
			plan = Plan{Anchor: p, Key: p.Name, Child: true}
		default:
			continue
		}
		anchorIdx = i
		break
	}
	if anchorIdx < 0 {
		return Plan{}, false
	}
	plan.AnchorStep = predStep
	plan.Suffix = q.Steps[predStep+1:]
	for i, p := range anchor.Preds {
		if i != anchorIdx {
			plan.Residual = append(plan.Residual, p)
		}
	}
	return plan, true
}

// Finish turns raw posting candidates into the exact node set xpath.Eval
// would return for q: dedupe, residual predicate filters, evaluation of the
// steps after the anchor step, the trailing attribute selection, and a
// document-order sort.
func Finish(q *xpath.Query, plan Plan, candidates []*xmltree.Node) []*xmltree.Node {
	var anchored []*xmltree.Node
	seen := make(map[xmltree.NodeID]bool, len(candidates))
	for _, n := range candidates {
		if n == nil || seen[n.ID] {
			continue
		}
		seen[n.ID] = true
		keep := true
		for _, p := range plan.Residual {
			// Residual predicates are never positional, so idx is unused.
			if !p.Match(n, 0) {
				keep = false
				break
			}
		}
		if keep {
			anchored = append(anchored, n)
		}
	}
	out := anchored
	if len(plan.Suffix) > 0 {
		out = xpath.EvalSteps(plan.Suffix, out)
	}
	if q.Attr != "" {
		kept := make([]*xmltree.Node, 0, len(out))
		for _, n := range out {
			if _, ok := n.Attr(q.Attr); ok {
				kept = append(kept, n)
			}
		}
		out = kept
	}
	return xpath.SortDocOrder(out)
}
