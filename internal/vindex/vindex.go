// Package vindex implements per-document value indexes over DataGuide
// extents: inverted maps from predicate values to the tree nodes that carry
// them, grouped per DataGuide node so that structural matching (which guide
// nodes does this query reach) and value matching (which extent members
// carry this value) compose without scanning the extent.
//
// Two kinds of key are indexable:
//
//   - "@name" — the value of attribute name on any element. Serves
//     [@name = 'v'] predicates wherever they appear.
//   - "name"  — the text content of elements labeled name. Serves both
//     [text() = 'v'] on steps named name and [name = 'v'] child predicates
//     (the postings live on the child's guide node; candidates are the
//     parents of the posting nodes).
//
// Equality predicates are a map hit; the ordered operators (<, <=, >, >=)
// binary-search a lazily maintained sorted-key slice ordered by
// xpath.CompareValues — the same total order the scan path uses, so the two
// paths always agree.
//
// # Locking
//
// An Index belongs to exactly one live document and is maintained by the
// DataGuide hooks in the same ds.mu critical section that mutates the tree:
// postings and groups are guarded by the owning scheduling domain's mutex
// and are never touched off-lock. The enabled-key set is published through
// an atomic pointer and the miss counters behind their own small mutex, so
// the lock-free MVCC snapshot-read path can check key coverage and record
// scan misses without the domain mutex. Snapshot readers never consult the
// live postings at all — they build a DocIndex over their pinned immutable
// version (see doc.go), so a half-applied posting is unobservable by
// construction.
package vindex

import (
	"maps"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// keySet is the immutable published form of the enabled keys. Replaced
// wholesale (copy-on-write under ds.mu) so lock-free readers can Load it.
type keySet struct {
	text  map[string]bool // element labels whose text is indexed
	attrs map[string]bool // attribute names (without the '@') indexed
}

func (ks *keySet) empty() bool { return len(ks.text) == 0 && len(ks.attrs) == 0 }

// splitKey parses an index key: "@name" selects an attribute, anything else
// an element label.
func splitKey(key string) (name string, isAttr bool) {
	if rest, ok := strings.CutPrefix(key, "@"); ok {
		return rest, true
	}
	return key, false
}

// postings maps one key's values to the nodes carrying them. The sorted
// value slice backing range lookups is rebuilt lazily: value insertions and
// removals only mark it dirty.
type postings struct {
	byVal  map[string][]*xmltree.Node
	sorted []string
	dirty  bool
}

func newPostings() *postings {
	return &postings{byVal: make(map[string][]*xmltree.Node)}
}

func (p *postings) add(val string, n *xmltree.Node) {
	lst, ok := p.byVal[val]
	if !ok {
		p.dirty = true
	}
	p.byVal[val] = append(lst, n)
}

func (p *postings) remove(val string, n *xmltree.Node) {
	lst := p.byVal[val]
	for i, m := range lst {
		if m == n {
			lst[i] = lst[len(lst)-1]
			lst = lst[:len(lst)-1]
			break
		}
	}
	if len(lst) == 0 {
		delete(p.byVal, val)
		p.dirty = true
		return
	}
	p.byVal[val] = lst
}

// lookup returns the posting lists satisfying (op, val). The returned node
// slices alias the index — callers append them into their own result set and
// must not mutate them.
func (p *postings) lookup(op xpath.CmpOp, val string) [][]*xmltree.Node {
	if op == xpath.Eq {
		if lst := p.byVal[val]; len(lst) > 0 {
			return [][]*xmltree.Node{lst}
		}
		return nil
	}
	if p.dirty {
		p.sorted = p.sorted[:0]
		for v := range p.byVal {
			p.sorted = append(p.sorted, v)
		}
		sort.Slice(p.sorted, func(i, j int) bool {
			return xpath.CompareValues(p.sorted[i], p.sorted[j]) < 0
		})
		p.dirty = false
	}
	// lb: first key >= val; ub: first key > val.
	lb := sort.Search(len(p.sorted), func(i int) bool {
		return xpath.CompareValues(p.sorted[i], val) >= 0
	})
	ub := sort.Search(len(p.sorted), func(i int) bool {
		return xpath.CompareValues(p.sorted[i], val) > 0
	})
	var lo, hi int
	switch op {
	case xpath.Lt:
		lo, hi = 0, lb
	case xpath.Le:
		lo, hi = 0, ub
	case xpath.Gt:
		lo, hi = ub, len(p.sorted)
	case xpath.Ge:
		lo, hi = lb, len(p.sorted)
	default:
		return nil
	}
	out := make([][]*xmltree.Node, 0, hi-lo)
	for _, v := range p.sorted[lo:hi] {
		if lst := p.byVal[v]; len(lst) > 0 {
			out = append(out, lst)
		}
	}
	return out
}

// group holds the postings of one DataGuide node.
type group struct {
	text  *postings            // text of extent members; nil until first posting
	attrs map[string]*postings // per indexed attribute name
}

// Index is the live value index of one document. See the package comment
// for the locking contract.
type Index struct {
	groups map[int64]*group // guide-node ID → postings; under ds.mu

	keys atomic.Pointer[keySet] // lock-free reads; replaced under ds.mu

	// Scan-miss accounting for the auto-index heuristic. Guarded by missMu
	// because the snapshot-read path records misses without ds.mu.
	missMu  sync.Mutex
	misses  map[string]int
	pending []string // keys past the threshold, awaiting enable+rebuild
	auto    int      // misses before a key is auto-indexed; 0 disables
}

// New builds an empty index with the given initially enabled keys.
// autoAfter > 0 enables the auto-index heuristic: a key is promoted into
// the enabled set after that many scan misses on it.
func New(keys []string, autoAfter int) *Index {
	ix := &Index{
		groups: make(map[int64]*group),
		misses: make(map[string]int),
		auto:   autoAfter,
	}
	ks := &keySet{text: make(map[string]bool), attrs: make(map[string]bool)}
	for _, k := range keys {
		name, isAttr := splitKey(k)
		if name == "" {
			continue
		}
		if isAttr {
			ks.attrs[name] = true
		} else {
			ks.text[name] = true
		}
	}
	ix.keys.Store(ks)
	return ix
}

// Enabled reports whether key is currently indexed. Safe off-lock.
func (ix *Index) Enabled(key string) bool {
	name, isAttr := splitKey(key)
	ks := ix.keys.Load()
	if isAttr {
		return ks.attrs[name]
	}
	return ks.text[name]
}

// Keys returns the enabled keys in canonical sorted form ("@name" for
// attributes). Safe off-lock; snapshot DocIndex builds capture it.
func (ix *Index) Keys() []string {
	ks := ix.keys.Load()
	out := make([]string, 0, len(ks.text)+len(ks.attrs))
	for k := range ks.text {
		out = append(out, k)
	}
	for k := range ks.attrs {
		out = append(out, "@"+k)
	}
	sort.Strings(out)
	return out
}

// HasKeys reports whether any key is enabled. Safe off-lock.
func (ix *Index) HasKeys() bool { return !ix.keys.Load().empty() }

// EnableKey adds key to the enabled set. Caller holds ds.mu and must
// rebuild the key's postings (DataGuide.ReindexKey) before the next lookup.
func (ix *Index) EnableKey(key string) {
	name, isAttr := splitKey(key)
	if name == "" {
		return
	}
	old := ix.keys.Load()
	ks := &keySet{text: maps.Clone(old.text), attrs: maps.Clone(old.attrs)}
	if isAttr {
		ks.attrs[name] = true
	} else {
		ks.text[name] = true
	}
	ix.keys.Store(ks)
}

// NoteMiss records a predicate evaluation that fell back to a scan because
// key was not indexed. Thread-safe; called from both locked and snapshot
// read paths.
func (ix *Index) NoteMiss(key string) {
	if ix.auto <= 0 || ix.Enabled(key) {
		return
	}
	ix.missMu.Lock()
	ix.misses[key]++
	if ix.misses[key] == ix.auto {
		ix.pending = append(ix.pending, key)
	}
	ix.missMu.Unlock()
}

// TakeAutoKeys drains the keys whose miss counters crossed the threshold,
// enabling each. Caller holds ds.mu and must rebuild postings for every
// returned key. Keys that became enabled some other way are skipped.
func (ix *Index) TakeAutoKeys() []string {
	if ix.auto <= 0 {
		return nil
	}
	ix.missMu.Lock()
	drained := ix.pending
	ix.pending = nil
	ix.missMu.Unlock()
	var enabled []string
	for _, k := range drained {
		if !ix.Enabled(k) {
			ix.EnableKey(k)
			enabled = append(enabled, k)
		}
	}
	return enabled
}

func (ix *Index) getGroup(gid int64, create bool) *group {
	g := ix.groups[gid]
	if g == nil && create {
		g = &group{}
		ix.groups[gid] = g
	}
	return g
}

// Add indexes node n, a member of guide node gid's extent, under every
// enabled key it matches. Called under ds.mu by the DataGuide extent hooks.
func (ix *Index) Add(gid int64, n *xmltree.Node) {
	ks := ix.keys.Load()
	if ks.empty() {
		return
	}
	if ks.text[n.Name] {
		ix.AddTextPosting(gid, n)
	}
	if len(ks.attrs) > 0 {
		for _, a := range n.Attrs {
			if ks.attrs[a.Name] {
				ix.AddAttrPosting(gid, n, a.Name, a.Value)
			}
		}
	}
}

// Remove drops every posting of n from guide node gid. Called under ds.mu.
func (ix *Index) Remove(gid int64, n *xmltree.Node) {
	ks := ix.keys.Load()
	if ks.empty() {
		return
	}
	g := ix.getGroup(gid, false)
	if g == nil {
		return
	}
	if g.text != nil && ks.text[n.Name] {
		g.text.remove(n.Text, n)
	}
	if len(g.attrs) > 0 {
		for _, a := range n.Attrs {
			if p := g.attrs[a.Name]; p != nil {
				p.remove(a.Value, n)
			}
		}
	}
}

// TextChanged re-keys n's text posting after a Change update or its undo.
// Called under ds.mu, after the mutation.
func (ix *Index) TextChanged(gid int64, n *xmltree.Node, old string) {
	if old == n.Text || !ix.keys.Load().text[n.Name] {
		return
	}
	g := ix.getGroup(gid, true)
	if g.text == nil {
		g.text = newPostings()
	}
	g.text.remove(old, n)
	g.text.add(n.Text, n)
}

// AttrChanged re-keys n's posting for attr after a set/remove or its undo.
// old/oldExisted describe the pre-mutation state; the new state is read off
// the node. Called under ds.mu, after the mutation.
func (ix *Index) AttrChanged(gid int64, n *xmltree.Node, attr, old string, oldExisted bool) {
	if !ix.keys.Load().attrs[attr] {
		return
	}
	cur, curExists := n.Attr(attr)
	if oldExisted == curExists && old == cur {
		return
	}
	g := ix.getGroup(gid, true)
	p := g.attrs[attr]
	if p == nil {
		if g.attrs == nil {
			g.attrs = make(map[string]*postings)
		}
		p = newPostings()
		g.attrs[attr] = p
	}
	if oldExisted {
		p.remove(old, n)
	}
	if curExists {
		p.add(cur, n)
	}
}

// AddTextPosting records n's text under guide node gid unconditionally;
// bulk rebuilds use it after enabling a key. Under ds.mu.
func (ix *Index) AddTextPosting(gid int64, n *xmltree.Node) {
	g := ix.getGroup(gid, true)
	if g.text == nil {
		g.text = newPostings()
	}
	g.text.add(n.Text, n)
}

// AddAttrPosting records one attribute value of n under guide node gid
// unconditionally; bulk rebuilds use it after enabling a key. Under ds.mu.
func (ix *Index) AddAttrPosting(gid int64, n *xmltree.Node, attr, val string) {
	g := ix.getGroup(gid, true)
	if g.attrs == nil {
		g.attrs = make(map[string]*postings)
	}
	p := g.attrs[attr]
	if p == nil {
		p = newPostings()
		g.attrs[attr] = p
	}
	p.add(val, n)
}

// Clear drops all postings (the key set stays). Under ds.mu; used before a
// full rebuild.
func (ix *Index) Clear() {
	ix.groups = make(map[int64]*group)
}

// Nodes returns the extent members of guide node gid whose value for the
// selector satisfies (op, val): attr == "" selects the text key, otherwise
// the named attribute. The returned slices alias index state — callers copy
// them into their own result set under the same ds.mu section. Under ds.mu.
func (ix *Index) Nodes(gid int64, attr string, op xpath.CmpOp, val string) [][]*xmltree.Node {
	g := ix.getGroup(gid, false)
	if g == nil {
		return nil
	}
	var p *postings
	if attr == "" {
		p = g.text
	} else {
		p = g.attrs[attr]
	}
	if p == nil {
		return nil
	}
	return p.lookup(op, val)
}
