package vindex_test

import (
	"fmt"
	"testing"

	"repro/internal/dataguide"
	"repro/internal/vindex"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

const testDocXML = `<site>
  <people>
    <person key="p0"><id>0</id><name>Ana</name><emailaddress>a@x</emailaddress></person>
    <person key="p1"><id>1</id><name>Bruno</name><emailaddress>b@x</emailaddress></person>
    <person key="p2"><id>2</id><name>Carla</name><emailaddress>c@x</emailaddress></person>
    <person key="p3"><id>3</id><name>Ana</name><emailaddress>d@x</emailaddress></person>
  </people>
  <items>
    <item key="7"><id>100</id><price>3.50</price></item>
    <item key="8"><id>101</id><price>12.00</price></item>
  </items>
</site>`

func buildIndexed(t *testing.T, keys []string, auto int) (*xmltree.Document, *dataguide.DataGuide) {
	t.Helper()
	doc, err := xmltree.ParseString("d", testDocXML)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	g.AttachIndex(vindex.New(keys, auto))
	g.ReindexAll(doc)
	return doc, g
}

// assertSame fails unless EvalIndexed served q and returned exactly the
// xpath.Eval node set.
func assertSame(t *testing.T, g *dataguide.DataGuide, doc *xmltree.Document, raw string) {
	t.Helper()
	q := xpath.MustParse(raw)
	indexed, ok := g.EvalIndexed(q, doc)
	if !ok {
		t.Fatalf("%s: not served from the index", raw)
	}
	scan := xpath.Eval(q, doc)
	if len(indexed) != len(scan) {
		t.Fatalf("%s: indexed %d nodes, scan %d", raw, len(indexed), len(scan))
	}
	for i := range indexed {
		if indexed[i] != scan[i] {
			t.Fatalf("%s: node %d differs: indexed %s scan %s", raw, i, indexed[i].Name, scan[i].Name)
		}
	}
}

func TestIndexedMatchesScan(t *testing.T) {
	doc, g := buildIndexed(t, []string{"id", "name", "price", "@key"}, 0)
	for _, raw := range []string{
		"//person[id='2']",                 // child predicate, final step
		"//person[id='2']/name",            // child predicate + trailing step
		"//person[id='2']/emailaddress",    // the flagship point-lookup shape
		"/site/people/person[id='3']/name", // rooted path
		"//person[name='Ana']",             // duplicate values, two hits
		"//id[text()='2']",                 // text() predicate on the step itself
		"//person[@key='p1']/name",         // attribute predicate + suffix
		"//item[@key='7']/price",           // attribute predicate, other section
		"//person[id>='1'][id<'3']/name",   // ordered anchor + ordered residual
		"//item[price>'4']/id",             // numeric order (12.00 > 4, 3.50 not)
		"//person[id<='0']/name",           // boundary inclusive
		"//person[id='2'][name='Carla']",   // equality anchor + equality residual
		"//person[id='99']/name",           // no match: both paths empty
		"//person[name!='Ana'][id='1']",    // != is residual, eq anchors
		"//person[id='0']//emailaddress",   // descendant suffix step
		"//people/person[id='3']/*",        // wildcard suffix
		"//person[@key='p2']/@key",         // trailing attribute selection
	} {
		assertSame(t, g, doc, raw)
	}
}

func TestPlanQueryShapes(t *testing.T) {
	cases := []struct {
		raw string
		ok  bool
	}{
		{"//person[id='2']/name", true},
		{"//person[2]", false},                         // positional
		{"//person[id='2'][1]", false},                 // positional alongside value pred
		{"//person[id!='2']", false},                   // != never anchors
		{"//person", false},                            // no predicate
		{"//*[text()='2']", false},                     // text key needs an element label
		{"//*[@key='p1']", true},                       // attr key works on any label
		{"//people[person='x']/person[id='2']", false}, // predicates on two steps
		{"//person[id>'1']", true},
	}
	for _, tc := range cases {
		_, ok := vindex.PlanQuery(xpath.MustParse(tc.raw))
		if ok != tc.ok {
			t.Errorf("PlanQuery(%s) eligible = %v, want %v", tc.raw, ok, tc.ok)
		}
	}
}

// TestIndexMaintenance drives every update-language operation (and its undo)
// through xupdate with an indexed guide and checks the index stays exactly
// scan-equivalent after each step.
func TestIndexMaintenance(t *testing.T) {
	doc, g := buildIndexed(t, []string{"id", "name", "@key"}, 0)
	queries := []string{
		"//person[id='2']/name",
		"//person[name='Ana']",
		"//person[@key='p9']/id",
		"//person[id='50']",
		"//member[id='2']/name",
	}
	checkAll := func(step string) {
		t.Helper()
		for _, raw := range queries {
			q := xpath.MustParse(raw)
			indexed, ok := g.EvalIndexed(q, doc)
			if !ok {
				t.Fatalf("%s: %s left the index path", step, raw)
			}
			scan := xpath.Eval(q, doc)
			if len(indexed) != len(scan) {
				t.Fatalf("%s: %s indexed %d nodes, scan %d", step, raw, len(indexed), len(scan))
			}
			for i := range indexed {
				if indexed[i] != scan[i] {
					t.Fatalf("%s: %s node %d differs", step, raw, i)
				}
			}
		}
	}
	checkAll("initial")

	updates := []*xupdate.Update{
		{Kind: xupdate.Insert, Target: "/site/people", Pos: xmltree.Into,
			New: &xupdate.NodeSpec{Name: "person",
				Attrs: []xmltree.Attr{{Name: "key", Value: "p9"}},
				Children: []*xupdate.NodeSpec{
					{Name: "id", Text: "50"}, {Name: "name", Text: "Zed"},
				}}},
		{Kind: xupdate.Change, Target: "//person[id='2']/name", Value: "Carlota"},
		{Kind: xupdate.Change, Target: "//person[id='1']", Attr: "key", Value: "q1"},
		{Kind: xupdate.Rename, Target: "//person[id='3']", NewName: "member"},
		{Kind: xupdate.Remove, Target: "//person[id='0']"},
		{Kind: xupdate.Transpose, Target: "//person[id='1']/id", Target2: "//person[id='1']/name"},
	}
	var recs []*xupdate.UndoRec
	for _, u := range updates {
		rec, _, err := xupdate.Apply(u, doc, g)
		if err != nil {
			t.Fatalf("apply %s: %v", u, err)
		}
		recs = append(recs, rec)
		checkAll("after " + u.String())
	}
	for i := len(recs) - 1; i >= 0; i-- {
		if err := recs[i].Undo(doc, g); err != nil {
			t.Fatalf("undo %s: %v", updates[i], err)
		}
		checkAll("after undo of " + updates[i].String())
	}
}

// TestAutoIndexPromotion: with AutoIndexAfter set, repeated misses on a cold
// key promote it into the enabled set and build its postings, after which
// the same query is index-served.
func TestAutoIndexPromotion(t *testing.T) {
	doc, g := buildIndexed(t, nil, 2)
	q := xpath.MustParse("//person[id='2']/name")
	for i := 0; i < 2; i++ {
		if _, ok := g.EvalIndexed(q, doc); ok {
			t.Fatalf("call %d: cold key served from the index", i)
		}
	}
	// Third call drains the pending key, rebuilds its postings, and serves.
	nodes, ok := g.EvalIndexed(q, doc)
	if !ok {
		t.Fatal("key was not auto-indexed after threshold misses")
	}
	scan := xpath.Eval(q, doc)
	if len(nodes) != len(scan) || nodes[0] != scan[0] {
		t.Fatalf("auto-indexed result %v != scan %v", nodes, scan)
	}
	if !g.ValueIndex().Enabled("id") {
		t.Fatal("id not in the enabled set after promotion")
	}
	if g.ValueIndex().Enabled("name") {
		t.Fatal("unrelated key enabled")
	}
}

// TestDocIndexMatchesScan: the snapshot-side DocIndex built from an
// immutable tree answers exactly what a scan of that tree answers, and
// refuses keys it was not built with.
func TestDocIndexMatchesScan(t *testing.T) {
	doc, err := xmltree.ParseString("d", testDocXML)
	if err != nil {
		t.Fatal(err)
	}
	snap := doc.Snapshot()
	di := vindex.BuildDocIndex(snap, []string{"id", "@key"})
	for _, raw := range []string{
		"//person[id='2']/name",
		"//person[id='2']/emailaddress",
		"//item[@key='7']/price",
		"//person[id>='1'][id<'3']/name",
		"//id[text()='2']",
		"//person[id='99']",
	} {
		q := xpath.MustParse(raw)
		plan, ok := vindex.PlanQuery(q)
		if !ok {
			t.Fatalf("%s: not plannable", raw)
		}
		nodes, ok := di.Eval(q, plan)
		if !ok {
			t.Fatalf("%s: DocIndex does not cover %s", raw, plan.Key)
		}
		scan := xpath.Eval(q, snap)
		if len(nodes) != len(scan) {
			t.Fatalf("%s: DocIndex %d nodes, scan %d", raw, len(nodes), len(scan))
		}
		for i := range nodes {
			if nodes[i] != scan[i] {
				t.Fatalf("%s: node %d differs", raw, i)
			}
		}
	}
	// A key enabled after the build is absent: the reader must fall back.
	q := xpath.MustParse("//person[name='Ana']")
	plan, ok := vindex.PlanQuery(q)
	if !ok {
		t.Fatal("name query not plannable")
	}
	if _, ok := di.Eval(q, plan); ok {
		t.Fatal("DocIndex served a key it was not built with")
	}
}

// TestOrderedLookupTotalOrder pins the numeric-before-strings total order the
// sorted posting keys share with the scan path.
func TestOrderedLookupTotalOrder(t *testing.T) {
	xml := `<r><v><w>10</w></v><v><w>9</w></v><v><w>abc</w></v><v><w>2.5</w></v></r>`
	doc, err := xmltree.ParseString("d", xml)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	g.AttachIndex(vindex.New([]string{"w"}, 0))
	g.ReindexAll(doc)
	for _, raw := range []string{
		"//v[w>'3']",  // 10 and 9 numerically; "abc" is above every number
		"//v[w<'10']", // 9 and 2.5
		"//v[w>='9']",
		"//v[w<='abc']",
	} {
		assertSame(t, g, doc, raw)
	}
}

func TestIndexDisabledFallsBack(t *testing.T) {
	doc, err := xmltree.ParseString("d", testDocXML)
	if err != nil {
		t.Fatal(err)
	}
	g := dataguide.Build(doc)
	// No index attached at all: EvalIndexed must always decline.
	if _, ok := g.EvalIndexed(xpath.MustParse("//person[id='2']"), doc); ok {
		t.Fatal("unattached guide served from an index")
	}
	// Attached but the key is cold and auto-indexing is off.
	g.AttachIndex(vindex.New([]string{"name"}, 0))
	g.ReindexAll(doc)
	if _, ok := g.EvalIndexed(xpath.MustParse("//person[id='2']"), doc); ok {
		t.Fatal("cold key served from an index")
	}
	if _, ok := g.EvalIndexed(xpath.MustParse("//person[name='Ana']"), doc); !ok {
		t.Fatal("enabled key not served")
	}
}

func TestIndexKeysCanonical(t *testing.T) {
	ix := vindex.New([]string{"id", "@key", "name"}, 0)
	got := fmt.Sprintf("%v", ix.Keys())
	if got != "[@key id name]" {
		t.Fatalf("Keys() = %s", got)
	}
}
