// Package wfg implements the wait-for graph used by DTX for deadlock
// handling. Each site maintains a local graph (edges added by the lock
// manager when an operation blocks, Algorithm 3); a periodic process unions
// the graphs of all sites and checks the union for a circle (Algorithm 4).
// If a circle is found, the most recently started transaction in it is the
// victim.
package wfg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/txn"
)

// Edge is one wait-for relation: Waiter waits for a lock held by Holder.
// Timestamps ride along so a union of snapshots can pick the newest victim
// without a separate directory of transactions.
type Edge struct {
	Waiter   txn.ID
	Holder   txn.ID
	WaiterTS txn.TS
	HolderTS txn.TS
}

// Graph is a mutable wait-for graph. Not safe for concurrent use; callers
// synchronise (the scheduler holds its site mutex).
type Graph struct {
	out map[txn.ID]map[txn.ID]bool
	in  map[txn.ID]map[txn.ID]bool
	ts  map[txn.ID]txn.TS
}

// New creates an empty graph.
func New() *Graph {
	return &Graph{
		out: make(map[txn.ID]map[txn.ID]bool),
		in:  make(map[txn.ID]map[txn.ID]bool),
		ts:  make(map[txn.ID]txn.TS),
	}
}

// AddEdge records that waiter waits for holder. Self-edges are ignored.
func (g *Graph) AddEdge(waiter txn.ID, waiterTS txn.TS, holder txn.ID, holderTS txn.TS) {
	if waiter == holder {
		return
	}
	if g.out[waiter] == nil {
		g.out[waiter] = make(map[txn.ID]bool)
	}
	g.out[waiter][holder] = true
	if g.in[holder] == nil {
		g.in[holder] = make(map[txn.ID]bool)
	}
	g.in[holder][waiter] = true
	g.ts[waiter] = waiterTS
	g.ts[holder] = holderTS
}

// RemoveEdge deletes one wait-for relation if present.
func (g *Graph) RemoveEdge(waiter, holder txn.ID) {
	delete(g.out[waiter], holder)
	if len(g.out[waiter]) == 0 {
		delete(g.out, waiter)
	}
	delete(g.in[holder], waiter)
	if len(g.in[holder]) == 0 {
		delete(g.in, holder)
	}
}

// ClearWaiter removes every outgoing edge of the waiter; called before a
// blocked operation retries so stale conflicts do not linger.
func (g *Graph) ClearWaiter(waiter txn.ID) {
	for holder := range g.out[waiter] {
		delete(g.in[holder], waiter)
		if len(g.in[holder]) == 0 {
			delete(g.in, holder)
		}
	}
	delete(g.out, waiter)
}

// RemoveTxn removes every edge incident to the transaction (it committed,
// aborted or failed).
func (g *Graph) RemoveTxn(id txn.ID) {
	g.ClearWaiter(id)
	for waiter := range g.in[id] {
		delete(g.out[waiter], id)
		if len(g.out[waiter]) == 0 {
			delete(g.out, waiter)
		}
	}
	delete(g.in, id)
	delete(g.ts, id)
}

// Waiters returns the transactions currently waiting on holder, in
// deterministic order.
func (g *Graph) Waiters(holder txn.ID) []txn.ID {
	var out []txn.ID
	for w := range g.in[holder] {
		out = append(out, w)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Edges returns a snapshot of all edges, suitable for shipping to the site
// running distributed detection.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for w, hs := range g.out {
		for h := range hs {
			out = append(out, Edge{Waiter: w, Holder: h, WaiterTS: g.ts[w], HolderTS: g.ts[h]})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Waiter != out[j].Waiter {
			return out[i].Waiter.Less(out[j].Waiter)
		}
		return out[i].Holder.Less(out[j].Holder)
	})
	return out
}

// Len returns the number of edges.
func (g *Graph) Len() int {
	n := 0
	for _, hs := range g.out {
		n += len(hs)
	}
	return n
}

// Union folds a snapshot of edges into the graph. Used by the distributed
// detector to merge the wait-for graphs of all sites (Algorithm 4, l. 5).
func (g *Graph) Union(edges []Edge) {
	for _, e := range edges {
		g.AddEdge(e.Waiter, e.WaiterTS, e.Holder, e.HolderTS)
	}
}

// FindCycle returns the transactions of one cycle in the graph, or nil if
// the graph is acyclic. The cycle is reported in edge order.
func (g *Graph) FindCycle() []txn.ID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[txn.ID]int, len(g.out))
	parent := make(map[txn.ID]txn.ID)

	// Deterministic iteration: sort the start nodes.
	starts := make([]txn.ID, 0, len(g.out))
	for id := range g.out {
		starts = append(starts, id)
	}
	sort.Slice(starts, func(i, j int) bool { return starts[i].Less(starts[j]) })

	var cycle []txn.ID
	var dfs func(u txn.ID) bool
	dfs = func(u txn.ID) bool {
		color[u] = grey
		// Sort successors for determinism.
		succ := make([]txn.ID, 0, len(g.out[u]))
		for v := range g.out[u] {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i].Less(succ[j]) })
		for _, v := range succ {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				// Found a back edge u -> v: reconstruct the cycle v .. u.
				cycle = []txn.ID{v}
				for cur := u; cur != v; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				// Reverse so the cycle reads in edge order from v.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, s := range starts {
		if color[s] == white {
			if dfs(s) {
				return cycle
			}
		}
	}
	return nil
}

// HasCycle reports whether the graph contains any cycle.
func (g *Graph) HasCycle() bool { return g.FindCycle() != nil }

// CycleThrough returns a cycle that passes through start, or nil if none
// exists. Algorithm 3 needs this precision: adding a wait edge tags the
// *requesting* operation with a deadlock only if the new edge closes a
// circle through the requester — an unrelated pre-existing cycle belongs to
// the transaction that created it.
func (g *Graph) CycleThrough(start txn.ID) []txn.ID {
	// DFS from start; if start is reachable from one of its successors,
	// the path back is a cycle through start.
	parent := make(map[txn.ID]txn.ID)
	visited := map[txn.ID]bool{start: true}
	stack := []txn.ID{start}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		succ := make([]txn.ID, 0, len(g.out[u]))
		for v := range g.out[u] {
			succ = append(succ, v)
		}
		sort.Slice(succ, func(i, j int) bool { return succ[i].Less(succ[j]) })
		for _, v := range succ {
			if v == start {
				// Reconstruct start -> ... -> u -> start.
				var cycle []txn.ID
				for cur := u; cur != start; cur = parent[cur] {
					cycle = append(cycle, cur)
				}
				cycle = append(cycle, start)
				for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				return cycle
			}
			if !visited[v] {
				visited[v] = true
				parent[v] = u
				stack = append(stack, v)
			}
		}
	}
	return nil
}

// NewestInCycle returns the most recently started transaction among the
// given cycle members — the deadlock victim per the XDGL rule. Timestamps
// come from the edges folded into the graph; ties break by ID so every site
// agrees.
func (g *Graph) NewestInCycle(cycle []txn.ID) txn.ID {
	if len(cycle) == 0 {
		return txn.Zero
	}
	victim := cycle[0]
	for _, id := range cycle[1:] {
		if txn.Newer(g.ts[id], id, g.ts[victim], victim) {
			victim = id
		}
	}
	return victim
}

// OldestInCycle returns the least recently started transaction among the
// cycle members — the alternative victim rule used by the ablation study.
func (g *Graph) OldestInCycle(cycle []txn.ID) txn.ID {
	if len(cycle) == 0 {
		return txn.Zero
	}
	victim := cycle[0]
	for _, id := range cycle[1:] {
		if txn.Newer(g.ts[victim], victim, g.ts[id], id) {
			victim = id
		}
	}
	return victim
}

// TS returns the timestamp recorded for a transaction (zero if unknown).
func (g *Graph) TS(id txn.ID) txn.TS { return g.ts[id] }

// String renders the edges, one per line.
func (g *Graph) String() string {
	var b strings.Builder
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "%s -> %s\n", e.Waiter, e.Holder)
	}
	return b.String()
}
