package wfg

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/txn"
)

func id(site int, seq int64) txn.ID { return txn.ID{Site: site, Seq: seq} }

func TestAddRemoveEdge(t *testing.T) {
	g := New()
	g.AddEdge(id(1, 1), 10, id(1, 2), 5)
	if g.Len() != 1 {
		t.Fatalf("len = %d", g.Len())
	}
	if got := g.Waiters(id(1, 2)); len(got) != 1 || got[0] != id(1, 1) {
		t.Fatalf("waiters = %v", got)
	}
	g.RemoveEdge(id(1, 1), id(1, 2))
	if g.Len() != 0 {
		t.Fatalf("len after remove = %d", g.Len())
	}
	// Self edges are ignored.
	g.AddEdge(id(1, 1), 10, id(1, 1), 10)
	if g.Len() != 0 {
		t.Fatal("self edge recorded")
	}
}

func TestNoCycle(t *testing.T) {
	g := New()
	g.AddEdge(id(1, 1), 1, id(1, 2), 2)
	g.AddEdge(id(1, 2), 2, id(1, 3), 3)
	g.AddEdge(id(1, 1), 1, id(1, 3), 3)
	if g.HasCycle() {
		t.Fatalf("acyclic graph reported cyclic:\n%s", g)
	}
}

func TestSimpleCycle(t *testing.T) {
	g := New()
	g.AddEdge(id(1, 1), 1, id(2, 1), 2)
	g.AddEdge(id(2, 1), 2, id(1, 1), 1)
	cycle := g.FindCycle()
	if len(cycle) != 2 {
		t.Fatalf("cycle = %v", cycle)
	}
	victim := g.NewestInCycle(cycle)
	if victim != id(2, 1) {
		t.Fatalf("victim = %v, want t2.1 (newest)", victim)
	}
}

func TestLongerCycleAndVictimTieBreak(t *testing.T) {
	g := New()
	// 3-cycle with equal timestamps: tie must break to the largest ID.
	g.AddEdge(id(1, 1), 7, id(1, 2), 7)
	g.AddEdge(id(1, 2), 7, id(2, 1), 7)
	g.AddEdge(id(2, 1), 7, id(1, 1), 7)
	cycle := g.FindCycle()
	if len(cycle) != 3 {
		t.Fatalf("cycle = %v", cycle)
	}
	if victim := g.NewestInCycle(cycle); victim != id(2, 1) {
		t.Fatalf("victim = %v, want t2.1 on tie-break", victim)
	}
}

func TestCycleNotInFirstComponent(t *testing.T) {
	g := New()
	g.AddEdge(id(1, 1), 1, id(1, 2), 2) // acyclic component
	g.AddEdge(id(3, 1), 3, id(3, 2), 4)
	g.AddEdge(id(3, 2), 4, id(3, 1), 3) // cycle in a later component
	cycle := g.FindCycle()
	if len(cycle) != 2 {
		t.Fatalf("cycle = %v", cycle)
	}
}

func TestClearWaiterBreaksCycle(t *testing.T) {
	g := New()
	g.AddEdge(id(1, 1), 1, id(1, 2), 2)
	g.AddEdge(id(1, 2), 2, id(1, 1), 1)
	g.ClearWaiter(id(1, 2))
	if g.HasCycle() {
		t.Fatal("cycle persists after ClearWaiter")
	}
	if g.Len() != 1 {
		t.Fatalf("len = %d, want 1", g.Len())
	}
}

func TestRemoveTxn(t *testing.T) {
	g := New()
	g.AddEdge(id(1, 1), 1, id(1, 2), 2)
	g.AddEdge(id(1, 3), 3, id(1, 1), 1)
	g.AddEdge(id(1, 2), 2, id(1, 3), 3)
	g.RemoveTxn(id(1, 1))
	if g.Len() != 1 {
		t.Fatalf("len = %d, want 1 (only t1.2->t1.3 remains)", g.Len())
	}
	if g.HasCycle() {
		t.Fatal("cycle persists after RemoveTxn")
	}
}

func TestUnionDetectsDistributedCycle(t *testing.T) {
	// Site 1 sees t1 -> t2; site 2 sees t2 -> t1. Only the union cycles.
	s1, s2 := New(), New()
	s1.AddEdge(id(1, 1), 1, id(2, 1), 2)
	s2.AddEdge(id(2, 1), 2, id(1, 1), 1)
	if s1.HasCycle() || s2.HasCycle() {
		t.Fatal("local graphs must be acyclic")
	}
	union := New()
	union.Union(s1.Edges())
	union.Union(s2.Edges())
	cycle := union.FindCycle()
	if len(cycle) != 2 {
		t.Fatalf("union cycle = %v", cycle)
	}
	if victim := union.NewestInCycle(cycle); victim != id(2, 1) {
		t.Fatalf("victim = %v", victim)
	}
}

func TestEdgesSnapshotDeterministic(t *testing.T) {
	g := New()
	g.AddEdge(id(2, 1), 2, id(1, 1), 1)
	g.AddEdge(id(1, 1), 1, id(1, 2), 2)
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != 2 || len(e2) != 2 {
		t.Fatalf("edges = %v", e1)
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatal("snapshot order not deterministic")
		}
	}
	if e1[0].Waiter != id(1, 1) {
		t.Fatalf("order = %v", e1)
	}
}

// Property: a random graph has a cycle found by FindCycle iff a reference
// Kahn-style topological sort cannot consume every node.
func TestPropertyCycleAgreesWithToposort(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 2 + rng.Intn(8)
		edges := rng.Intn(2 * n)
		type pair struct{ a, b int }
		present := map[pair]bool{}
		for i := 0; i < edges; i++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			present[pair{a, b}] = true
			g.AddEdge(id(1, int64(a)), txn.TS(a), id(1, int64(b)), txn.TS(b))
		}
		// Kahn's algorithm over the same edges.
		indeg := make([]int, n)
		adj := make([][]int, n)
		for p := range present {
			adj[p.a] = append(adj[p.a], p.b)
			indeg[p.b]++
		}
		var queue []int
		for i := 0; i < n; i++ {
			if indeg[i] == 0 {
				queue = append(queue, i)
			}
		}
		seen := 0
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			seen++
			for _, v := range adj[u] {
				indeg[v]--
				if indeg[v] == 0 {
					queue = append(queue, v)
				}
			}
		}
		hasCycleRef := seen < n
		return g.HasCycle() == hasCycleRef
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the victim is always a member of the reported cycle, and no
// member is newer than the victim.
func TestPropertyVictimIsNewestMember(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New()
		n := 3 + rng.Intn(6)
		// Build a guaranteed ring plus noise.
		for i := 0; i < n; i++ {
			g.AddEdge(id(1, int64(i)), txn.TS(rng.Intn(100)), id(1, int64((i+1)%n)), txn.TS(rng.Intn(100)))
		}
		cycle := g.FindCycle()
		if cycle == nil {
			return false
		}
		victim := g.NewestInCycle(cycle)
		found := false
		for _, m := range cycle {
			if m == victim {
				found = true
			}
			if txn.Newer(g.TS(m), m, g.TS(victim), victim) {
				return false
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestClockAndNewer(t *testing.T) {
	var c txn.Clock
	t1 := c.Tick()
	t2 := c.Tick()
	if t2 <= t1 {
		t.Fatal("clock not monotonic")
	}
	c.Observe(100)
	if c.Now() != 100 {
		t.Fatalf("observe: now = %d", c.Now())
	}
	c.Observe(50)
	if c.Now() != 100 {
		t.Fatal("observe went backwards")
	}
	if !txn.Newer(2, id(1, 1), 1, id(1, 2)) {
		t.Fatal("larger TS must be newer")
	}
	if !txn.Newer(1, id(2, 1), 1, id(1, 9)) {
		t.Fatal("tie must break by ID order")
	}
}
