package xmark

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// Sections returns the workload sections present (non-empty) in doc: the
// top-level schema sections plus one entry per populated region. The client
// simulator uses this to route operations to fragments that actually hold
// the data the operation touches — the role of the fragmentation predicate
// in a real partially-replicated deployment.
func Sections(doc *xmltree.Document) []string {
	var out []string
	for _, sec := range doc.Root.Children {
		if len(sec.Children) == 0 {
			continue
		}
		if sec.Name == "regions" {
			for _, region := range sec.Children {
				if len(region.Children) > 0 {
					out = append(out, "regions/"+region.Name)
				}
			}
			continue
		}
		out = append(out, sec.Name)
	}
	sort.Strings(out)
	return out
}

// QueryFor returns a read query targeting the given section, drawn from the
// XMark-derived mix: class scans (every person's name) and point lookups
// (one auction's current price).
func QueryFor(section string, rng *rand.Rand) string {
	if region, ok := strings.CutPrefix(section, "regions/"); ok {
		qs := []string{
			"/site/regions/" + region + "/item/name",
			"/site/regions/" + region + "/item/price",
			"/site/regions/" + region + "/item[1]/description",
			"//" + region + "/item/quantity",
		}
		return qs[rng.Intn(len(qs))]
	}
	var qs []string
	switch section {
	case "people":
		qs = []string{
			"/site/people/person/name",
			"//person/phone",
			"/site/people/person[1]/emailaddress",
			"//person[1]/address",
		}
	case "open_auctions":
		qs = []string{
			"/site/open_auctions/open_auction/current",
			"//open_auction/bidder/increase",
			"/site/open_auctions/open_auction[1]/initial",
		}
	case "closed_auctions":
		qs = []string{
			"/site/closed_auctions/closed_auction/price",
			"//closed_auction[1]/buyer",
			"/site/closed_auctions/closed_auction/date",
		}
	case "categories":
		qs = []string{
			"/site/categories/category/name",
			"//category[1]/description",
		}
	default:
		qs = []string{"/site"}
	}
	return qs[rng.Intn(len(qs))]
}

// ScanQueryFor returns the broadest read for a section: a whole-class
// descendant scan that touches every element of the section. These are the
// "analytics" operations of a mixed OLTP/analytics workload — under
// fine-grained protocols they acquire wide intention/read lock sets and
// collide with every writer in the section, which is exactly the pressure
// signal the adaptive policy watches for.
func ScanQueryFor(section string) string {
	if region, ok := strings.CutPrefix(section, "regions/"); ok {
		return "//" + region + "/item"
	}
	switch section {
	case "people":
		return "//person"
	case "open_auctions":
		return "//open_auction"
	case "closed_auctions":
		return "//closed_auction"
	case "categories":
		return "//category"
	default:
		return "/site"
	}
}

// PredicateQueryRange is the id domain PredicateQueryFor draws from. Ids in
// generated documents are dense from zero per section, so small documents
// make some lookups miss — a realistic point-query mix either way.
const PredicateQueryRange = 512

// PredicateQueryFor returns a point lookup for the section: an equality
// predicate over the section's id element, the query shape the value index
// serves. Index the "id" key (or let auto-indexing promote it) to take these
// off the scan path.
func PredicateQueryFor(section string, id int64) string {
	if region, ok := strings.CutPrefix(section, "regions/"); ok {
		return fmt.Sprintf("//%s/item[id='%d']/name", region, id)
	}
	switch section {
	case "people":
		return fmt.Sprintf("//person[id='%d']/emailaddress", id)
	case "open_auctions":
		return fmt.Sprintf("//open_auction[id='%d']/current", id)
	case "closed_auctions":
		return fmt.Sprintf("//closed_auction[id='%d']/price", id)
	case "categories":
		return fmt.Sprintf("//category[id='%d']/name", id)
	default:
		return fmt.Sprintf("//person[id='%d']/name", id)
	}
}

// UpdateFor returns an update targeting the given section.
func UpdateFor(section string, uniq int64, rng *rand.Rand) *xupdate.Update {
	if region, ok := strings.CutPrefix(section, "regions/"); ok {
		if rng.Intn(2) == 0 {
			return &xupdate.Update{
				Kind: xupdate.Insert, Target: "/site/regions/" + region, Pos: xmltree.Into,
				New: &xupdate.NodeSpec{Name: "item",
					Attrs: []xmltree.Attr{{Name: "id", Value: fmt.Sprintf("nitem%d", uniq)}},
					Children: []*xupdate.NodeSpec{
						{Name: "id", Text: fmt.Sprintf("n%d", uniq)},
						{Name: "name", Text: pick(rng, itemWords)},
						{Name: "price", Text: money(rng)},
					}},
			}
		}
		return &xupdate.Update{
			Kind: xupdate.Change, Target: "/site/regions/" + region + "/item[1]/quantity",
			Value: fmt.Sprintf("%d", 1+rng.Intn(9)),
		}
	}
	switch section {
	case "people":
		return MakeUpdate(InsertPerson, uniq, rng)
	case "open_auctions":
		if rng.Intn(2) == 0 {
			return MakeUpdate(InsertBidder, uniq, rng)
		}
		return MakeUpdate(ChangePrice, uniq, rng)
	case "closed_auctions":
		if rng.Intn(3) == 0 {
			return MakeUpdate(RemoveClosedAuction, uniq, rng)
		}
		return &xupdate.Update{
			Kind: xupdate.Change, Target: "/site/closed_auctions/closed_auction[1]/price",
			Value: money(rng),
		}
	case "categories":
		return MakeUpdate(RenameCategoryName, uniq, rng)
	default:
		return MakeUpdate(InsertPerson, uniq, rng)
	}
}
