// Package xmark implements the XMark-like workload substrate of the
// evaluation: a deterministic generator for auction-site documents following
// the schema of the paper's Fig. 7 (site / regions / people / open_auctions
// / closed_auctions / categories), a byte-size dial standing in for XMark's
// scale factor, and the query and update mixes the paper derives from XMark
// ("the XMark benchmark is extended, adapting its queries to the XPath
// language and adding update operations").
package xmark

import (
	"fmt"
	"math/rand"

	"repro/internal/xmltree"
	"repro/internal/xupdate"
)

// Regions of the XMark schema, in document order.
var Regions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

var firstNames = []string{
	"Ana", "Bruno", "Carla", "Diego", "Elisa", "Fabio", "Gabriela", "Heitor",
	"Iara", "Joao", "Karla", "Leonardo", "Maria", "Nuno", "Olivia", "Paulo",
}

var lastNames = []string{
	"Almeida", "Barros", "Costa", "Dias", "Esteves", "Ferreira", "Gomes",
	"Henrique", "Iglesias", "Junqueira", "Klein", "Lima", "Machado", "Nunes",
}

var itemWords = []string{
	"clock", "vase", "lamp", "painting", "chair", "desk", "mirror", "carpet",
	"statue", "radio", "camera", "guitar", "globe", "atlas", "compass",
}

var categoryWords = []string{
	"antiques", "electronics", "furniture", "art", "music", "travel",
	"books", "tools", "garden", "sports",
}

// Config sizes a generated document.
type Config struct {
	// Name is the document name (default "xmark").
	Name string
	// TargetBytes approximates the serialized size of the document. The
	// generator adds whole entities until the estimate passes the target.
	TargetBytes int
	// Seed makes generation deterministic.
	Seed int64
}

// Gen produces an XMark-like document of roughly cfg.TargetBytes bytes.
//
// Structure (Fig. 7 subset, uniform entity sizes so fragmentation yields
// similar volumes per site as in the paper's allocation):
//
//	site
//	├── regions
//	│   └── <region>*      item (id, name, quantity, price, description)
//	├── people             person (id, name, emailaddress, phone, address)
//	├── open_auctions      open_auction (id, initial, current, bidder*, itemref)
//	├── closed_auctions    closed_auction (id, seller, buyer, price, itemref)
//	└── categories         category (id, name, description)
func Gen(cfg Config) *xmltree.Document {
	if cfg.Name == "" {
		cfg.Name = "xmark"
	}
	if cfg.TargetBytes <= 0 {
		cfg.TargetBytes = 64 << 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	doc := xmltree.NewDocument(cfg.Name, "site")

	regions := attach(doc, doc.Root, "regions")
	regionNodes := make([]*xmltree.Node, len(Regions))
	for i, r := range Regions {
		regionNodes[i] = attach(doc, regions, r)
	}
	people := attach(doc, doc.Root, "people")
	open := attach(doc, doc.Root, "open_auctions")
	closed := attach(doc, doc.Root, "closed_auctions")
	categories := attach(doc, doc.Root, "categories")

	// Round-robin entity kinds until the size target is met, so every
	// section grows proportionally and fragment sizes stay comparable. The
	// size estimate is tracked incrementally: re-walking the document per
	// entity would make generation quadratic.
	size := doc.ByteSize()
	itemN, personN, openN, closedN, catN := 0, 0, 0, 0, 0
	for i := 0; size < cfg.TargetBytes; i++ {
		var added *xmltree.Node
		switch i % 5 {
		case 0:
			added = addItem(doc, regionNodes[itemN%len(regionNodes)], itemN, rng)
			itemN++
		case 1:
			added = addPerson(doc, people, personN, rng)
			personN++
		case 2:
			added = addOpenAuction(doc, open, openN, itemN, rng)
			openN++
		case 3:
			added = addClosedAuction(doc, closed, closedN, itemN, personN, rng)
			closedN++
		case 4:
			if catN < 4*len(categoryWords) {
				added = addCategory(doc, categories, catN, rng)
				catN++
			}
		}
		if added != nil {
			size += subtreeBytes(added)
		}
	}
	return doc
}

func subtreeBytes(n *xmltree.Node) int {
	size := 2*len(n.Name) + 5
	for _, a := range n.Attrs {
		size += len(a.Name) + len(a.Value) + 4
	}
	size += len(n.Text)
	for _, c := range n.Children {
		size += subtreeBytes(c)
	}
	return size
}

func attach(doc *xmltree.Document, parent *xmltree.Node, name string) *xmltree.Node {
	n := doc.NewElement(name)
	if err := doc.AttachAt(parent, n, xmltree.Into); err != nil {
		panic(err)
	}
	return n
}

func attachText(doc *xmltree.Document, parent *xmltree.Node, name, text string) *xmltree.Node {
	n := attach(doc, parent, name)
	n.Text = text
	return n
}

func addItem(doc *xmltree.Document, region *xmltree.Node, id int, rng *rand.Rand) *xmltree.Node {
	item := attach(doc, region, "item")
	item.SetAttr("id", fmt.Sprintf("item%d", id))
	attachText(doc, item, "id", fmt.Sprintf("%d", id))
	attachText(doc, item, "name", pick(rng, itemWords)+" "+pick(rng, itemWords))
	attachText(doc, item, "quantity", fmt.Sprintf("%d", 1+rng.Intn(9)))
	attachText(doc, item, "price", money(rng))
	attachText(doc, item, "description", sentence(rng, 6))
	return item
}

func addPerson(doc *xmltree.Document, people *xmltree.Node, id int, rng *rand.Rand) *xmltree.Node {
	p := attach(doc, people, "person")
	p.SetAttr("id", fmt.Sprintf("person%d", id))
	name := pick(rng, firstNames) + " " + pick(rng, lastNames)
	attachText(doc, p, "id", fmt.Sprintf("%d", id))
	attachText(doc, p, "name", name)
	attachText(doc, p, "emailaddress", fmt.Sprintf("p%d@example.org", id))
	attachText(doc, p, "phone", fmt.Sprintf("+55 85 9%07d", rng.Intn(10000000)))
	attachText(doc, p, "address", sentence(rng, 4))
	return p
}

func addOpenAuction(doc *xmltree.Document, open *xmltree.Node, id, items int, rng *rand.Rand) *xmltree.Node {
	a := attach(doc, open, "open_auction")
	a.SetAttr("id", fmt.Sprintf("open%d", id))
	attachText(doc, a, "id", fmt.Sprintf("%d", id))
	attachText(doc, a, "initial", money(rng))
	attachText(doc, a, "current", money(rng))
	for b := 0; b < 1+rng.Intn(3); b++ {
		bid := attach(doc, a, "bidder")
		attachText(doc, bid, "date", date(rng))
		attachText(doc, bid, "increase", money(rng))
	}
	if items > 0 {
		attachText(doc, a, "itemref", fmt.Sprintf("item%d", rng.Intn(items)))
	}
	return a
}

func addClosedAuction(doc *xmltree.Document, closed *xmltree.Node, id, items, persons int, rng *rand.Rand) *xmltree.Node {
	a := attach(doc, closed, "closed_auction")
	a.SetAttr("id", fmt.Sprintf("closed%d", id))
	attachText(doc, a, "id", fmt.Sprintf("%d", id))
	if persons > 0 {
		attachText(doc, a, "seller", fmt.Sprintf("person%d", rng.Intn(persons)))
		attachText(doc, a, "buyer", fmt.Sprintf("person%d", rng.Intn(persons)))
	}
	attachText(doc, a, "price", money(rng))
	if items > 0 {
		attachText(doc, a, "itemref", fmt.Sprintf("item%d", rng.Intn(items)))
	}
	attachText(doc, a, "date", date(rng))
	return a
}

func addCategory(doc *xmltree.Document, categories *xmltree.Node, id int, rng *rand.Rand) *xmltree.Node {
	c := attach(doc, categories, "category")
	c.SetAttr("id", fmt.Sprintf("category%d", id))
	attachText(doc, c, "id", fmt.Sprintf("%d", id))
	attachText(doc, c, "name", pick(rng, categoryWords))
	attachText(doc, c, "description", sentence(rng, 5))
	return c
}

func pick(rng *rand.Rand, words []string) string { return words[rng.Intn(len(words))] }

func money(rng *rand.Rand) string {
	return fmt.Sprintf("%d.%02d", 1+rng.Intn(499), rng.Intn(100))
}

func date(rng *rand.Rand) string {
	return fmt.Sprintf("%04d-%02d-%02d", 2001+rng.Intn(8), 1+rng.Intn(12), 1+rng.Intn(28))
}

func sentence(rng *rand.Rand, n int) string {
	out := ""
	for i := 0; i < n; i++ {
		if i > 0 {
			out += " "
		}
		out += pick(rng, itemWords)
	}
	return out
}

// Queries returns the read workload: XMark-flavoured queries rewritten in
// the DTX XPath subset, touching every section of the schema. The exact
// rewritten query set of the paper is unpublished; this mix preserves the
// coverage (regional items, people directory, auction monitoring, category
// browsing) and read-footprint classes (point lookups via predicates, full
// scans via //).
func Queries() []string {
	qs := []string{
		"/site/people/person/name",
		"//person[id='1']/emailaddress",
		"/site/open_auctions/open_auction/current",
		"//open_auction/bidder/increase",
		"/site/closed_auctions/closed_auction/price",
		"//closed_auction[1]/buyer",
		"/site/categories/category/name",
		"//category/description",
		"//person/phone",
		"/site/people/person[2]/address",
	}
	for _, r := range Regions {
		qs = append(qs,
			"/site/regions/"+r+"/item/name",
			"/site/regions/"+r+"/item/price",
		)
	}
	return qs
}

// UpdateKind selects which update mix entry to build.
type UpdateKind int

// Update mix entries, mirroring the paper's five update operations over the
// auction schema.
const (
	InsertPerson UpdateKind = iota
	InsertItem
	InsertBidder
	ChangePrice
	ChangeQuantity
	RemoveClosedAuction
	RenameCategoryName
	numUpdateKinds
)

// MakeUpdate builds the n-th update of a client's stream, deterministic in
// (kind, uniq).
func MakeUpdate(kind UpdateKind, uniq int64, rng *rand.Rand) *xupdate.Update {
	switch kind {
	case InsertPerson:
		return &xupdate.Update{
			Kind: xupdate.Insert, Target: "/site/people", Pos: xmltree.Into,
			New: &xupdate.NodeSpec{Name: "person",
				Attrs: []xmltree.Attr{{Name: "id", Value: fmt.Sprintf("nperson%d", uniq)}},
				Children: []*xupdate.NodeSpec{
					{Name: "id", Text: fmt.Sprintf("n%d", uniq)},
					{Name: "name", Text: pick(rng, firstNames) + " " + pick(rng, lastNames)},
					{Name: "emailaddress", Text: fmt.Sprintf("n%d@example.org", uniq)},
				}},
		}
	case InsertItem:
		region := Regions[rng.Intn(len(Regions))]
		return &xupdate.Update{
			Kind: xupdate.Insert, Target: "/site/regions/" + region, Pos: xmltree.Into,
			New: &xupdate.NodeSpec{Name: "item",
				Attrs: []xmltree.Attr{{Name: "id", Value: fmt.Sprintf("nitem%d", uniq)}},
				Children: []*xupdate.NodeSpec{
					{Name: "id", Text: fmt.Sprintf("n%d", uniq)},
					{Name: "name", Text: pick(rng, itemWords)},
					{Name: "price", Text: money(rng)},
				}},
		}
	case InsertBidder:
		return &xupdate.Update{
			Kind: xupdate.Insert, Target: "/site/open_auctions/open_auction[1]", Pos: xmltree.Into,
			New: &xupdate.NodeSpec{Name: "bidder", Children: []*xupdate.NodeSpec{
				{Name: "date", Text: date(rng)},
				{Name: "increase", Text: money(rng)},
			}},
		}
	case ChangePrice:
		return &xupdate.Update{
			Kind: xupdate.Change, Target: "/site/open_auctions/open_auction[1]/current",
			Value: money(rng),
		}
	case ChangeQuantity:
		region := Regions[rng.Intn(len(Regions))]
		return &xupdate.Update{
			Kind: xupdate.Change, Target: "/site/regions/" + region + "/item[1]/quantity",
			Value: fmt.Sprintf("%d", 1+rng.Intn(9)),
		}
	case RemoveClosedAuction:
		return &xupdate.Update{
			Kind: xupdate.Remove, Target: "/site/closed_auctions/closed_auction[1]",
		}
	case RenameCategoryName:
		return &xupdate.Update{
			Kind: xupdate.Change, Target: "/site/categories/category[1]/name",
			Value: pick(rng, categoryWords),
		}
	default:
		return MakeUpdate(UpdateKind(int(kind)%int(numUpdateKinds)), uniq, rng)
	}
}

// RandomUpdate picks an update from the mix.
func RandomUpdate(uniq int64, rng *rand.Rand) *xupdate.Update {
	return MakeUpdate(UpdateKind(rng.Intn(int(numUpdateKinds))), uniq, rng)
}

// RandomQuery picks a query from the read mix.
func RandomQuery(rng *rand.Rand) string {
	qs := Queries()
	return qs[rng.Intn(len(qs))]
}
