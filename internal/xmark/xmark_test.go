package xmark

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataguide"
	"repro/internal/replica"
	"repro/internal/xmltree"
	"repro/internal/xpath"
	"repro/internal/xupdate"
)

func TestGenSchema(t *testing.T) {
	doc := Gen(Config{TargetBytes: 32 << 10, Seed: 1})
	if doc.Root.Name != "site" {
		t.Fatalf("root = %s", doc.Root.Name)
	}
	for _, section := range []string{"regions", "people", "open_auctions", "closed_auctions", "categories"} {
		if got := xpath.Eval(xpath.MustParse("/site/"+section), doc); len(got) != 1 {
			t.Fatalf("section %s matched %d", section, len(got))
		}
	}
	for _, r := range Regions {
		if got := xpath.Eval(xpath.MustParse("/site/regions/"+r+"/item"), doc); len(got) == 0 {
			t.Fatalf("region %s has no items", r)
		}
	}
	if got := xpath.Eval(xpath.MustParse("//person"), doc); len(got) == 0 {
		t.Fatal("no persons")
	}
	if got := xpath.Eval(xpath.MustParse("//open_auction/bidder"), doc); len(got) == 0 {
		t.Fatal("no bidders")
	}
}

func TestGenDeterministic(t *testing.T) {
	a := Gen(Config{TargetBytes: 16 << 10, Seed: 7})
	b := Gen(Config{TargetBytes: 16 << 10, Seed: 7})
	if !xmltree.Equal(a, b) {
		t.Fatal("same seed produced different documents")
	}
	c := Gen(Config{TargetBytes: 16 << 10, Seed: 8})
	if xmltree.Equal(a, c) {
		t.Fatal("different seeds produced identical documents")
	}
}

func TestGenSizeDial(t *testing.T) {
	small := Gen(Config{TargetBytes: 8 << 10, Seed: 1})
	large := Gen(Config{TargetBytes: 64 << 10, Seed: 1})
	if small.ByteSize() < 8<<10 {
		t.Fatalf("small = %d bytes, below target", small.ByteSize())
	}
	if large.ByteSize() < 8*small.ByteSize()/2 {
		t.Fatalf("size dial not scaling: small=%d large=%d", small.ByteSize(), large.ByteSize())
	}
	// Size overshoot is bounded by one entity (< 2KB).
	if small.ByteSize() > 8<<10+2048 {
		t.Fatalf("small overshoots: %d", small.ByteSize())
	}
}

func TestGenParsesAndRoundTrips(t *testing.T) {
	doc := Gen(Config{TargetBytes: 8 << 10, Seed: 3})
	doc2, err := xmltree.ParseString(doc.Name, doc.String())
	if err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(doc, doc2) {
		t.Fatal("generated document does not round trip")
	}
}

func TestQueriesAllParseAndMatch(t *testing.T) {
	doc := Gen(Config{TargetBytes: 64 << 10, Seed: 2})
	matched := 0
	for _, qs := range Queries() {
		q, err := xpath.Parse(qs)
		if err != nil {
			t.Fatalf("query %q does not parse: %v", qs, err)
		}
		if len(xpath.Eval(q, doc)) > 0 {
			matched++
		}
	}
	// Most queries must hit data on a reasonably sized document.
	if matched < len(Queries())*3/4 {
		t.Fatalf("only %d/%d queries matched", matched, len(Queries()))
	}
}

func TestUpdatesApply(t *testing.T) {
	doc := Gen(Config{TargetBytes: 32 << 10, Seed: 4})
	g := dataguide.Build(doc)
	rng := rand.New(rand.NewSource(9))
	for kind := UpdateKind(0); kind < numUpdateKinds; kind++ {
		u := MakeUpdate(kind, int64(kind)*100, rng)
		if err := u.Validate(); err != nil {
			t.Fatalf("update %d invalid: %v", kind, err)
		}
		rec, targets, err := xupdate.Apply(u, doc, g)
		if err != nil {
			t.Fatalf("update %d failed: %v", kind, err)
		}
		if len(targets) == 0 {
			t.Fatalf("update %d matched nothing: %s", kind, u)
		}
		_ = rec
	}
}

func TestGenFragmentsForPartialReplication(t *testing.T) {
	doc := Gen(Config{TargetBytes: 64 << 10, Seed: 5})
	frags, err := replica.FragmentDocument(doc, 4)
	if err != nil {
		t.Fatal(err)
	}
	min, max := frags[0].Size, frags[0].Size
	for _, f := range frags[1:] {
		if f.Size < min {
			min = f.Size
		}
		if f.Size > max {
			max = f.Size
		}
	}
	// "all sites have similar volumes of data": the top-level sections are
	// few and uneven, so allow a generous but bounded spread.
	if float64(max) > 4*float64(min) {
		t.Fatalf("fragments too uneven: min=%d max=%d", min, max)
	}
}

// Property: RandomUpdate always yields a valid update and RandomQuery a
// parseable query.
func TestPropertyRandomWorkloadValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		u := RandomUpdate(seed, rng)
		if err := u.Validate(); err != nil {
			return false
		}
		if _, err := xpath.Parse(RandomQuery(rng)); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
