package xmltree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r into the tree model. Namespaces,
// comments and processing instructions are discarded; character data is
// trimmed and concatenated per element.
func Parse(name string, r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var doc *Document
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var n *Node
			if doc == nil {
				doc = NewDocument(name, t.Name.Local)
				n = doc.Root
			} else {
				if len(stack) == 0 {
					return nil, fmt.Errorf("xmltree: parse %s: multiple roots", name)
				}
				n = doc.NewElement(t.Name.Local)
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
				n.Parent = parent
			}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse %s: unbalanced end element", name)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					top := stack[len(stack)-1]
					if top.Text != "" {
						top.Text += " "
					}
					top.Text += text
				}
			}
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("xmltree: parse %s: empty document", name)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse %s: unclosed elements", name)
	}
	return doc, nil
}

// ParseString is a convenience wrapper over Parse for string input.
func ParseString(name, s string) (*Document, error) {
	return Parse(name, strings.NewReader(s))
}

// WriteTo serializes the document as indented XML. Serialization is on the
// commit hot path — every consolidation persists the document through it —
// so the buffer is pre-sized from the previous serialization of the same
// document to avoid growth copies.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	if last := int(d.lastWriteSize.Load()); last > 0 {
		buf.Grow(last + last/8)
	}
	writeNode(&buf, d.Root, 0)
	d.lastWriteSize.Store(int64(buf.Len()))
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// String returns the document serialized as indented XML.
func (d *Document) String() string {
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		return ""
	}
	return buf.String()
}

// indentPad backs writeIndent: indentation is written by slicing this pad
// instead of allocating a fresh strings.Repeat per node.
var indentPad = strings.Repeat("  ", 64)

func writeIndent(buf *bytes.Buffer, depth int) {
	n := 2 * depth
	for n > len(indentPad) {
		buf.WriteString(indentPad)
		n -= len(indentPad)
	}
	buf.WriteString(indentPad[:n])
}

// escapeString writes s XML-escaped, byte-for-byte compatible with
// xml.EscapeText. The fast path handles printable ASCII — the overwhelming
// case for document content — by copying unescaped runs in bulk without the
// []byte conversion and rune decoding the stdlib pays per call; control and
// non-ASCII bytes defer to the stdlib for rune validation and replacement.
func escapeString(buf *bytes.Buffer, s string) {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c >= 0x80 || (c < 0x20 && c != '\t' && c != '\n' && c != '\r') {
			xml.EscapeText(buf, []byte(s))
			return
		}
	}
	last := 0
	for i := 0; i < len(s); i++ {
		var esc string
		switch s[i] {
		case '&':
			esc = "&amp;"
		case '<':
			esc = "&lt;"
		case '>':
			esc = "&gt;"
		case '\'':
			esc = "&#39;"
		case '"':
			esc = "&#34;"
		case '\t':
			esc = "&#x9;"
		case '\n':
			esc = "&#xA;"
		case '\r':
			esc = "&#xD;"
		default:
			continue
		}
		buf.WriteString(s[last:i])
		buf.WriteString(esc)
		last = i + 1
	}
	buf.WriteString(s[last:])
}

func writeNode(buf *bytes.Buffer, n *Node, depth int) {
	writeIndent(buf, depth)
	buf.WriteByte('<')
	buf.WriteString(n.Name)
	for _, a := range n.Attrs {
		buf.WriteByte(' ')
		buf.WriteString(a.Name)
		buf.WriteString(`="`)
		escapeString(buf, a.Value)
		buf.WriteByte('"')
	}
	if len(n.Children) == 0 && n.Text == "" {
		buf.WriteString("/>\n")
		return
	}
	buf.WriteByte('>')
	if len(n.Children) == 0 {
		escapeString(buf, n.Text)
		buf.WriteString("</")
		buf.WriteString(n.Name)
		buf.WriteString(">\n")
		return
	}
	buf.WriteByte('\n')
	if n.Text != "" {
		writeIndent(buf, depth+1)
		escapeString(buf, n.Text)
		buf.WriteByte('\n')
	}
	for _, c := range n.Children {
		writeNode(buf, c, depth+1)
	}
	writeIndent(buf, depth)
	buf.WriteString("</")
	buf.WriteString(n.Name)
	buf.WriteString(">\n")
}
