package xmltree

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// Parse reads an XML document from r into the tree model. Namespaces,
// comments and processing instructions are discarded; character data is
// trimmed and concatenated per element.
func Parse(name string, r io.Reader) (*Document, error) {
	dec := xml.NewDecoder(r)
	var doc *Document
	var stack []*Node
	for {
		tok, err := dec.Token()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("xmltree: parse %s: %w", name, err)
		}
		switch t := tok.(type) {
		case xml.StartElement:
			var n *Node
			if doc == nil {
				doc = NewDocument(name, t.Name.Local)
				n = doc.Root
			} else {
				if len(stack) == 0 {
					return nil, fmt.Errorf("xmltree: parse %s: multiple roots", name)
				}
				n = doc.NewElement(t.Name.Local)
				parent := stack[len(stack)-1]
				parent.Children = append(parent.Children, n)
				n.Parent = parent
			}
			for _, a := range t.Attr {
				if a.Name.Space == "xmlns" || a.Name.Local == "xmlns" {
					continue
				}
				n.Attrs = append(n.Attrs, Attr{Name: a.Name.Local, Value: a.Value})
			}
			stack = append(stack, n)
		case xml.EndElement:
			if len(stack) == 0 {
				return nil, fmt.Errorf("xmltree: parse %s: unbalanced end element", name)
			}
			stack = stack[:len(stack)-1]
		case xml.CharData:
			if len(stack) > 0 {
				text := strings.TrimSpace(string(t))
				if text != "" {
					top := stack[len(stack)-1]
					if top.Text != "" {
						top.Text += " "
					}
					top.Text += text
				}
			}
		}
	}
	if doc == nil {
		return nil, fmt.Errorf("xmltree: parse %s: empty document", name)
	}
	if len(stack) != 0 {
		return nil, fmt.Errorf("xmltree: parse %s: unclosed elements", name)
	}
	return doc, nil
}

// ParseString is a convenience wrapper over Parse for string input.
func ParseString(name, s string) (*Document, error) {
	return Parse(name, strings.NewReader(s))
}

// WriteTo serializes the document as indented XML.
func (d *Document) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	writeNode(&buf, d.Root, 0)
	n, err := w.Write(buf.Bytes())
	return int64(n), err
}

// String returns the document serialized as indented XML.
func (d *Document) String() string {
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		return ""
	}
	return buf.String()
}

func writeNode(buf *bytes.Buffer, n *Node, depth int) {
	indent := strings.Repeat("  ", depth)
	buf.WriteString(indent)
	buf.WriteByte('<')
	buf.WriteString(n.Name)
	for _, a := range n.Attrs {
		buf.WriteByte(' ')
		buf.WriteString(a.Name)
		buf.WriteString(`="`)
		xml.EscapeText(buf, []byte(a.Value))
		buf.WriteByte('"')
	}
	if len(n.Children) == 0 && n.Text == "" {
		buf.WriteString("/>\n")
		return
	}
	buf.WriteByte('>')
	if len(n.Children) == 0 {
		xml.EscapeText(buf, []byte(n.Text))
		buf.WriteString("</")
		buf.WriteString(n.Name)
		buf.WriteString(">\n")
		return
	}
	buf.WriteByte('\n')
	if n.Text != "" {
		buf.WriteString(strings.Repeat("  ", depth+1))
		xml.EscapeText(buf, []byte(n.Text))
		buf.WriteByte('\n')
	}
	for _, c := range n.Children {
		writeNode(buf, c, depth+1)
	}
	buf.WriteString(indent)
	buf.WriteString("</")
	buf.WriteString(n.Name)
	buf.WriteString(">\n")
}
