// Package xmltree implements the mutable, ordered XML document model that
// DTX manipulates in main memory. Documents are trees of element nodes with
// attributes and character data. Every node carries a stable identifier so
// that lock extents, undo logs and DataGuide extents can refer to nodes
// across mutations.
//
// The model intentionally mirrors what the DTX paper needs and no more:
// element structure, attributes, text content and document order. Comments,
// processing instructions and namespaces are out of scope for the protocol
// and are dropped at parse time.
package xmltree

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// NodeID identifies a node uniquely within one Document. IDs are never
// reused, even after the node is detached, so historical references in undo
// logs stay unambiguous.
type NodeID int64

// InvalidID is returned by lookups that fail.
const InvalidID NodeID = 0

// Attr is a single name="value" attribute on an element.
type Attr struct {
	Name  string
	Value string
}

// Node is one element of an XML document tree. The zero value is not usable;
// create nodes through Document.NewElement so they receive an ID.
type Node struct {
	ID       NodeID
	Name     string
	Text     string // concatenated character data directly under this element
	Attrs    []Attr
	Parent   *Node
	Children []*Node

	doc *Document
}

// Document owns a tree of nodes and allocates their IDs.
type Document struct {
	Name string
	Root *Node

	nodes  map[NodeID]*Node
	nextID NodeID
	// lastWriteSize remembers the size of the previous serialization so the
	// next WriteTo pre-sizes its buffer (commit persists the document on
	// every consolidation). Atomic so the otherwise read-only WriteTo stays
	// safe to call on a document that another goroutine is serializing.
	lastWriteSize atomic.Int64
	// lastSnapNodes / lastSnapAttrs remember the node and attribute counts of
	// the previous Snapshot so the next one can size its arena chunks without
	// the counting walk. They are hints, not invariants: mutations do not
	// maintain them, and a snapshot whose hints undershoot simply allocates
	// extra chunks. Atomics for the same reason as lastWriteSize.
	lastSnapNodes atomic.Int64
	lastSnapAttrs atomic.Int64
}

// NewDocument creates an empty document with a root element named rootName.
func NewDocument(name, rootName string) *Document {
	d := &Document{Name: name, nodes: make(map[NodeID]*Node), nextID: 1}
	d.Root = d.NewElement(rootName)
	return d
}

// NewElement allocates a detached element node belonging to this document.
func (d *Document) NewElement(name string) *Node {
	n := &Node{ID: d.nextID, Name: name, doc: d}
	d.nextID++
	d.nodes[n.ID] = n
	return n
}

// Node returns the node with the given ID, or nil if it was never allocated
// or has been detached from the tree.
func (d *Document) Node(id NodeID) *Node {
	n := d.nodes[id]
	if n == nil {
		return nil
	}
	// Detached subtrees stay in the map so undo can reattach them; callers
	// that need "live" nodes only should check Attached.
	return n
}

// Attached reports whether n is currently reachable from the document root.
func (d *Document) Attached(n *Node) bool {
	for cur := n; cur != nil; cur = cur.Parent {
		if cur == d.Root {
			return true
		}
	}
	return false
}

// Len returns the number of nodes reachable from the root.
func (d *Document) Len() int {
	count := 0
	d.Walk(func(*Node) bool { count++; return true })
	return count
}

// ByteSize returns an estimate of the serialized size of the document in
// bytes. The estimate counts tags, attributes and text, and is what the
// fragmentation and base-size experiments use as their "MB" dial.
func (d *Document) ByteSize() int {
	size := 0
	d.Walk(func(n *Node) bool {
		size += 2*len(n.Name) + 5 // <name></name>
		for _, a := range n.Attrs {
			size += len(a.Name) + len(a.Value) + 4
		}
		size += len(n.Text)
		return true
	})
	return size
}

// Walk visits every attached node in document order. Return false from fn to
// stop the walk early.
func (d *Document) Walk(fn func(*Node) bool) {
	var walk func(n *Node) bool
	walk = func(n *Node) bool {
		if !fn(n) {
			return false
		}
		for _, c := range n.Children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	if d.Root != nil {
		walk(d.Root)
	}
}

// Attr returns the value of the named attribute and whether it is present.
func (n *Node) Attr(name string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// SetAttr sets or replaces the named attribute and returns the previous
// value (empty if absent) for undo logging.
func (n *Node) SetAttr(name, value string) (prev string, existed bool) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs[i].Value = value
			return a.Value, true
		}
	}
	n.Attrs = append(n.Attrs, Attr{Name: name, Value: value})
	return "", false
}

// RemoveAttr deletes the named attribute, returning its previous value.
func (n *Node) RemoveAttr(name string) (prev string, existed bool) {
	for i, a := range n.Attrs {
		if a.Name == name {
			n.Attrs = append(n.Attrs[:i], n.Attrs[i+1:]...)
			return a.Value, true
		}
	}
	return "", false
}

// Index returns n's position among its parent's children, or -1 for the
// root or a detached node.
func (n *Node) Index() int {
	if n.Parent == nil {
		return -1
	}
	for i, c := range n.Parent.Children {
		if c == n {
			return i
		}
	}
	return -1
}

// LabelPath returns the slash-separated element-name path from the root to
// n, e.g. "/site/people/person". This is the key the DataGuide summarises.
func (n *Node) LabelPath() string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		parts = append(parts, cur.Name)
	}
	var b strings.Builder
	for i := len(parts) - 1; i >= 0; i-- {
		b.WriteByte('/')
		b.WriteString(parts[i])
	}
	return b.String()
}

// PathSegments returns the element names from root to n, root first.
func (n *Node) PathSegments() []string {
	var parts []string
	for cur := n; cur != nil; cur = cur.Parent {
		parts = append(parts, cur.Name)
	}
	for i, j := 0, len(parts)-1; i < j; i, j = i+1, j-1 {
		parts[i], parts[j] = parts[j], parts[i]
	}
	return parts
}

// Ancestors returns the chain of ancestors of n from parent up to the root.
func (n *Node) Ancestors() []*Node {
	var out []*Node
	for cur := n.Parent; cur != nil; cur = cur.Parent {
		out = append(out, cur)
	}
	return out
}

// Descendants appends every node strictly below n in document order.
func (n *Node) Descendants() []*Node {
	var out []*Node
	var walk func(*Node)
	walk = func(m *Node) {
		for _, c := range m.Children {
			out = append(out, c)
			walk(c)
		}
	}
	walk(n)
	return out
}

// SubtreeSize counts n and all its descendants.
func (n *Node) SubtreeSize() int {
	size := 1
	for _, c := range n.Children {
		size += c.SubtreeSize()
	}
	return size
}

// Pos identifies an insertion position relative to a reference node.
type Pos int

// Insertion positions for AttachAt and the update language's insert.
const (
	Into   Pos = iota // as last child of the reference node
	Before            // as the sibling immediately before the reference node
	After             // as the sibling immediately after the reference node
)

// String returns the position keyword used by the update language.
func (p Pos) String() string {
	switch p {
	case Into:
		return "into"
	case Before:
		return "before"
	case After:
		return "after"
	default:
		return fmt.Sprintf("Pos(%d)", int(p))
	}
}

// AttachAt attaches child relative to ref according to pos. The child must
// be detached and belong to the same document. It returns an error if the
// operation would detach the root or create a cycle.
func (d *Document) AttachAt(ref, child *Node, pos Pos) error {
	if child.doc != d || ref.doc != d {
		return fmt.Errorf("xmltree: attach across documents")
	}
	if child.Parent != nil {
		return fmt.Errorf("xmltree: node %d already attached", child.ID)
	}
	if child == d.Root {
		return fmt.Errorf("xmltree: cannot attach the root")
	}
	for cur := ref; cur != nil; cur = cur.Parent {
		if cur == child {
			return fmt.Errorf("xmltree: attach would create a cycle")
		}
	}
	switch pos {
	case Into:
		ref.Children = append(ref.Children, child)
		child.Parent = ref
	case Before, After:
		parent := ref.Parent
		if parent == nil {
			return fmt.Errorf("xmltree: cannot insert %s the root", pos)
		}
		idx := ref.Index()
		if pos == After {
			idx++
		}
		parent.Children = append(parent.Children, nil)
		copy(parent.Children[idx+1:], parent.Children[idx:])
		parent.Children[idx] = child
		child.Parent = parent
	default:
		return fmt.Errorf("xmltree: unknown position %v", pos)
	}
	return nil
}

// AttachChildAt inserts child at index idx of parent's children. Used by
// undo to restore removed subtrees at their original position.
func (d *Document) AttachChildAt(parent, child *Node, idx int) error {
	if child.Parent != nil {
		return fmt.Errorf("xmltree: node %d already attached", child.ID)
	}
	if idx < 0 || idx > len(parent.Children) {
		return fmt.Errorf("xmltree: index %d out of range [0,%d]", idx, len(parent.Children))
	}
	parent.Children = append(parent.Children, nil)
	copy(parent.Children[idx+1:], parent.Children[idx:])
	parent.Children[idx] = child
	child.Parent = parent
	return nil
}

// Detach removes n (and its subtree) from its parent and returns the index
// it occupied, for undo. Detaching the root is an error.
func (d *Document) Detach(n *Node) (idx int, err error) {
	if n == d.Root {
		return 0, fmt.Errorf("xmltree: cannot detach the root")
	}
	parent := n.Parent
	if parent == nil {
		return 0, fmt.Errorf("xmltree: node %d is not attached", n.ID)
	}
	idx = n.Index()
	parent.Children = append(parent.Children[:idx], parent.Children[idx+1:]...)
	n.Parent = nil
	return idx, nil
}

// Transpose swaps the tree positions of a and b. Neither node may be an
// ancestor of the other, and neither may be the root.
func (d *Document) Transpose(a, b *Node) error {
	if a == b {
		return nil
	}
	if a == d.Root || b == d.Root {
		return fmt.Errorf("xmltree: cannot transpose the root")
	}
	for cur := a.Parent; cur != nil; cur = cur.Parent {
		if cur == b {
			return fmt.Errorf("xmltree: %d is a descendant of %d", a.ID, b.ID)
		}
	}
	for cur := b.Parent; cur != nil; cur = cur.Parent {
		if cur == a {
			return fmt.Errorf("xmltree: %d is a descendant of %d", b.ID, a.ID)
		}
	}
	pa, ia := a.Parent, a.Index()
	pb, ib := b.Parent, b.Index()
	pa.Children[ia], pb.Children[ib] = b, a
	a.Parent, b.Parent = pb, pa
	return nil
}

// Clone produces a deep copy of the document. Node IDs are preserved so that
// extents and lock references remain valid against the copy.
func (d *Document) Clone() *Document {
	nd := &Document{Name: d.Name, nodes: make(map[NodeID]*Node, len(d.nodes)), nextID: d.nextID}
	var cloneNode func(n *Node, parent *Node) *Node
	cloneNode = func(n *Node, parent *Node) *Node {
		cp := &Node{ID: n.ID, Name: n.Name, Text: n.Text, Parent: parent, doc: nd}
		if len(n.Attrs) > 0 {
			cp.Attrs = append([]Attr(nil), n.Attrs...)
		}
		nd.nodes[cp.ID] = cp
		for _, c := range n.Children {
			cp.Children = append(cp.Children, cloneNode(c, cp))
		}
		return cp
	}
	nd.Root = cloneNode(d.Root, nil)
	return nd
}

// Snapshot produces a read-only deep copy of the tree for off-lock
// serialization: the copy shares no mutable state with the original, but it
// does not support further mutation (it has no node index, so NewElement
// and ID lookups do not work on it). Unlike Clone it allocates the whole
// tree in a handful of arena blocks, so snapshotting a document on every
// commit does not flood the garbage collector with per-node allocations.
func (d *Document) Snapshot() *Document {
	nd := &Document{Name: d.Name, nextID: d.nextID}
	nd.lastWriteSize.Store(d.lastWriteSize.Load())
	nodeHint := int(d.lastSnapNodes.Load())
	attrHint := int(d.lastSnapAttrs.Load())
	if nodeHint == 0 {
		// First snapshot of this document: count exactly. Later snapshots
		// reuse the previous counts as capacity hints and skip this walk.
		d.Walk(func(n *Node) bool {
			nodeHint++
			attrHint += len(n.Attrs)
			return true
		})
	}
	// Chunked arena. Chunks are append-only and never reallocate, so interior
	// pointers into them stay valid; when a hint undershoots (the document
	// grew since the last snapshot) a fresh chunk is allocated. Each node's
	// Children and Attrs slices are contiguous within a single chunk — a
	// chunk at least as large as the needed run is allocated when the current
	// one cannot hold it — and are full-capacity slices, so they cannot grow
	// into a neighbour's run.
	nodeChunk := make([]Node, 0, nodeHint)
	ptrChunk := make([]*Node, 0, nodeHint)
	var attrChunk []Attr
	if attrHint > 0 {
		attrChunk = make([]Attr, 0, attrHint)
	}
	nodeCount, attrCount := 0, 0
	newNode := func(n *Node, parent *Node) *Node {
		if len(nodeChunk) == cap(nodeChunk) {
			nodeChunk = make([]Node, 0, max(2*cap(nodeChunk), 64))
		}
		nodeChunk = append(nodeChunk, Node{ID: n.ID, Name: n.Name, Text: n.Text, Parent: parent, doc: nd})
		nodeCount++
		return &nodeChunk[len(nodeChunk)-1]
	}
	childSlice := func(n int) []*Node {
		if cap(ptrChunk)-len(ptrChunk) < n {
			ptrChunk = make([]*Node, 0, max(2*cap(ptrChunk), n, 64))
		}
		start := len(ptrChunk)
		ptrChunk = ptrChunk[:start+n]
		return ptrChunk[start : start+n : start+n]
	}
	attrSlice := func(src []Attr) []Attr {
		if cap(attrChunk)-len(attrChunk) < len(src) {
			attrChunk = make([]Attr, 0, max(2*cap(attrChunk), len(src), 16))
		}
		start := len(attrChunk)
		attrChunk = append(attrChunk, src...)
		attrCount += len(src)
		return attrChunk[start:len(attrChunk):len(attrChunk)]
	}
	var clone func(n *Node, parent *Node) *Node
	clone = func(n *Node, parent *Node) *Node {
		cp := newNode(n, parent)
		if len(n.Attrs) > 0 {
			cp.Attrs = attrSlice(n.Attrs)
		}
		if len(n.Children) > 0 {
			cp.Children = childSlice(len(n.Children))
			for i, c := range n.Children {
				cp.Children[i] = clone(c, cp)
			}
		}
		return cp
	}
	nd.Root = clone(d.Root, nil)
	// Store the exact counts back on both documents: the source so its next
	// snapshot sizes correctly, the snapshot so snapshotting it is cheap too.
	d.lastSnapNodes.Store(int64(nodeCount))
	d.lastSnapAttrs.Store(int64(attrCount))
	nd.lastSnapNodes.Store(int64(nodeCount))
	nd.lastSnapAttrs.Store(int64(attrCount))
	return nd
}

// Equal reports deep structural equality of two documents: same names,
// attributes (order-insensitive), text and child order. Node IDs are not
// compared, so a reparsed document can equal the original.
func Equal(a, b *Document) bool {
	return equalNode(a.Root, b.Root)
}

func equalNode(a, b *Node) bool {
	if a.Name != b.Name || a.Text != b.Text || len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	if len(a.Attrs) > 0 {
		as := append([]Attr(nil), a.Attrs...)
		bs := append([]Attr(nil), b.Attrs...)
		sort.Slice(as, func(i, j int) bool { return as[i].Name < as[j].Name })
		sort.Slice(bs, func(i, j int) bool { return bs[i].Name < bs[j].Name })
		for i := range as {
			if as[i] != bs[i] {
				return false
			}
		}
	}
	for i := range a.Children {
		if !equalNode(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}
