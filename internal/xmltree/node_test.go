package xmltree

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildSample(t *testing.T) *Document {
	t.Helper()
	doc, err := ParseString("d1", `
<people>
  <person id="p1"><id>4</id><name>Ana</name></person>
  <person id="p2"><id>7</id><name>Bruno</name></person>
</people>`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return doc
}

func TestParseBasics(t *testing.T) {
	doc := buildSample(t)
	if doc.Root.Name != "people" {
		t.Fatalf("root = %q, want people", doc.Root.Name)
	}
	if len(doc.Root.Children) != 2 {
		t.Fatalf("children = %d, want 2", len(doc.Root.Children))
	}
	p1 := doc.Root.Children[0]
	if v, ok := p1.Attr("id"); !ok || v != "p1" {
		t.Fatalf("attr id = %q/%v, want p1/true", v, ok)
	}
	if p1.Children[1].Text != "Ana" {
		t.Fatalf("name text = %q, want Ana", p1.Children[1].Text)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"empty":       ``,
		"unbalanced":  `<a><b></a>`,
		"trailing":    `<a></a><b></b>`,
		"malformed":   `<a`,
		"textOnly":    `hello`,
		"closedFirst": `</a>`,
	}
	for name, in := range cases {
		if _, err := ParseString(name, in); err == nil {
			t.Errorf("%s: expected parse error for %q", name, in)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	doc := buildSample(t)
	out := doc.String()
	doc2, err := ParseString("d1", out)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !Equal(doc, doc2) {
		t.Fatalf("round trip not equal:\n%s\nvs\n%s", out, doc2.String())
	}
}

func TestEscaping(t *testing.T) {
	doc := NewDocument("esc", "root")
	child := doc.NewElement("c")
	child.Text = `a<b&"c"`
	child.SetAttr("k", `v<&>"`)
	if err := doc.AttachAt(doc.Root, child, Into); err != nil {
		t.Fatal(err)
	}
	doc2, err := ParseString("esc", doc.String())
	if err != nil {
		t.Fatalf("reparse escaped: %v", err)
	}
	if !Equal(doc, doc2) {
		t.Fatalf("escaped round trip mismatch:\n%s", doc.String())
	}
}

func TestLabelPath(t *testing.T) {
	doc := buildSample(t)
	name := doc.Root.Children[0].Children[1]
	if got := name.LabelPath(); got != "/people/person/name" {
		t.Fatalf("LabelPath = %q", got)
	}
	segs := name.PathSegments()
	want := []string{"people", "person", "name"}
	if len(segs) != len(want) {
		t.Fatalf("segments = %v", segs)
	}
	for i := range want {
		if segs[i] != want[i] {
			t.Fatalf("segments = %v, want %v", segs, want)
		}
	}
}

func TestAttachDetach(t *testing.T) {
	doc := buildSample(t)
	n := doc.NewElement("person")
	if err := doc.AttachAt(doc.Root, n, Into); err != nil {
		t.Fatal(err)
	}
	if n.Index() != 2 {
		t.Fatalf("index = %d, want 2", n.Index())
	}
	idx, err := doc.Detach(n)
	if err != nil {
		t.Fatal(err)
	}
	if idx != 2 {
		t.Fatalf("detach idx = %d, want 2", idx)
	}
	if doc.Attached(n) {
		t.Fatal("node still attached")
	}
	// Reattach at original position via AttachChildAt.
	if err := doc.AttachChildAt(doc.Root, n, idx); err != nil {
		t.Fatal(err)
	}
	if n.Index() != 2 {
		t.Fatalf("restored index = %d, want 2", n.Index())
	}
}

func TestAttachBeforeAfter(t *testing.T) {
	doc := buildSample(t)
	first := doc.Root.Children[0]
	b := doc.NewElement("markerB")
	a := doc.NewElement("markerA")
	if err := doc.AttachAt(first, b, Before); err != nil {
		t.Fatal(err)
	}
	if err := doc.AttachAt(first, a, After); err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, 4)
	for _, c := range doc.Root.Children {
		names = append(names, c.Name)
	}
	got := strings.Join(names, ",")
	if got != "markerB,person,markerA,person" {
		t.Fatalf("order = %s", got)
	}
}

func TestAttachErrors(t *testing.T) {
	doc := buildSample(t)
	other := NewDocument("other", "r")
	foreign := other.NewElement("x")
	if err := doc.AttachAt(doc.Root, foreign, Into); err == nil {
		t.Error("expected cross-document attach error")
	}
	if err := doc.AttachAt(doc.Root.Children[0], doc.Root, Into); err == nil {
		t.Error("expected cannot-attach-root error")
	}
	// Cycle: attaching an ancestor under its descendant.
	person := doc.Root.Children[0]
	if _, err := doc.Detach(person); err != nil {
		t.Fatal(err)
	}
	if err := doc.AttachAt(person.Children[0], person, Into); err == nil {
		t.Error("expected cycle error")
	}
	if err := doc.AttachAt(doc.Root, person, Before); err == nil {
		t.Error("expected cannot-insert-before-root error")
	}
	if _, err := doc.Detach(doc.Root); err == nil {
		t.Error("expected cannot-detach-root error")
	}
}

func TestTranspose(t *testing.T) {
	doc := buildSample(t)
	p1, p2 := doc.Root.Children[0], doc.Root.Children[1]
	if err := doc.Transpose(p1, p2); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Children[0] != p2 || doc.Root.Children[1] != p1 {
		t.Fatal("transpose did not swap siblings")
	}
	// Transposing ancestor/descendant must fail.
	if err := doc.Transpose(p1, p1.Children[0]); err == nil {
		t.Error("expected ancestor/descendant transpose error")
	}
	if err := doc.Transpose(doc.Root, p1); err == nil {
		t.Error("expected root transpose error")
	}
	if err := doc.Transpose(p1, p1); err != nil {
		t.Errorf("self transpose should be a no-op: %v", err)
	}
}

func TestTransposeAcrossParents(t *testing.T) {
	doc, err := ParseString("d", `<r><a><x>1</x></a><b><y>2</y></b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	x := doc.Root.Children[0].Children[0]
	y := doc.Root.Children[1].Children[0]
	if err := doc.Transpose(x, y); err != nil {
		t.Fatal(err)
	}
	if doc.Root.Children[0].Children[0].Name != "y" || doc.Root.Children[1].Children[0].Name != "x" {
		t.Fatalf("cross-parent transpose wrong:\n%s", doc.String())
	}
	if x.Parent.Name != "b" || y.Parent.Name != "a" {
		t.Fatal("parents not updated")
	}
}

func TestCloneIndependence(t *testing.T) {
	doc := buildSample(t)
	cp := doc.Clone()
	if !Equal(doc, cp) {
		t.Fatal("clone not equal")
	}
	// IDs preserved.
	if cp.Root.ID != doc.Root.ID {
		t.Fatal("clone changed root ID")
	}
	cp.Root.Children[0].Children[1].Text = "Changed"
	if Equal(doc, cp) {
		t.Fatal("mutating clone affected original (or Equal is broken)")
	}
	// New elements in clone must not collide with original IDs.
	n := cp.NewElement("z")
	if doc.Node(n.ID) != nil {
		t.Fatal("clone shares node table with original")
	}
}

func TestAttrOps(t *testing.T) {
	doc := buildSample(t)
	p := doc.Root.Children[0]
	prev, existed := p.SetAttr("id", "p9")
	if !existed || prev != "p1" {
		t.Fatalf("SetAttr prev=%q existed=%v", prev, existed)
	}
	if v, _ := p.Attr("id"); v != "p9" {
		t.Fatalf("attr after set = %q", v)
	}
	if _, existed := p.SetAttr("new", "1"); existed {
		t.Fatal("new attr reported as existing")
	}
	prev, existed = p.RemoveAttr("new")
	if !existed || prev != "1" {
		t.Fatalf("RemoveAttr prev=%q existed=%v", prev, existed)
	}
	if _, existed := p.RemoveAttr("absent"); existed {
		t.Fatal("removing absent attr reported as existing")
	}
}

func TestWalkAndCounts(t *testing.T) {
	doc := buildSample(t)
	if got := doc.Len(); got != 7 {
		t.Fatalf("Len = %d, want 7 (people + 2*(person,id,name))", got)
	}
	if got := doc.Root.SubtreeSize(); got != 7 {
		t.Fatalf("SubtreeSize = %d, want 7", got)
	}
	if got := len(doc.Root.Children[0].Descendants()); got != 2 {
		t.Fatalf("descendants = %d, want 2", got)
	}
	if got := len(doc.Root.Children[0].Children[0].Ancestors()); got != 2 {
		t.Fatalf("ancestors = %d, want 2", got)
	}
	// Early-stop walk.
	visited := 0
	doc.Walk(func(*Node) bool { visited++; return visited < 3 })
	if visited != 3 {
		t.Fatalf("early stop visited = %d, want 3", visited)
	}
	if doc.ByteSize() <= 0 {
		t.Fatal("ByteSize must be positive")
	}
}

// randomDoc builds a random tree for property tests.
func randomDoc(rng *rand.Rand, maxNodes int) *Document {
	doc := NewDocument("rand", "root")
	attached := []*Node{doc.Root}
	names := []string{"a", "b", "c", "d", "e"}
	n := 1 + rng.Intn(maxNodes)
	for i := 0; i < n; i++ {
		parent := attached[rng.Intn(len(attached))]
		child := doc.NewElement(names[rng.Intn(len(names))])
		if rng.Intn(2) == 0 {
			child.Text = names[rng.Intn(len(names))]
		}
		if rng.Intn(3) == 0 {
			child.SetAttr("k", names[rng.Intn(len(names))])
		}
		if err := doc.AttachAt(parent, child, Into); err != nil {
			panic(err)
		}
		attached = append(attached, child)
	}
	return doc
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 40)
		doc2, err := ParseString("rand", doc.String())
		if err != nil {
			t.Logf("reparse failed: %v\n%s", err, doc.String())
			return false
		}
		return Equal(doc, doc2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCloneEqual(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 40)
		return Equal(doc, doc.Clone())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDetachAttachIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomDoc(rng, 40)
		before := doc.Clone()
		// Pick a random non-root attached node, detach it, reattach at the
		// recorded position: document must be unchanged.
		var nodes []*Node
		doc.Walk(func(n *Node) bool {
			if n != doc.Root {
				nodes = append(nodes, n)
			}
			return true
		})
		if len(nodes) == 0 {
			return true
		}
		n := nodes[rng.Intn(len(nodes))]
		parent := n.Parent
		idx, err := doc.Detach(n)
		if err != nil {
			return false
		}
		if err := doc.AttachChildAt(parent, n, idx); err != nil {
			return false
		}
		return Equal(before, doc)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotMatchesClone(t *testing.T) {
	doc, err := ParseString("d", `<r a="1"><b>text</b><c><d x="y"/></c><b>two</b></r>`)
	if err != nil {
		t.Fatal(err)
	}
	snap := doc.Snapshot()
	if !Equal(doc, snap) {
		t.Fatalf("snapshot differs:\n%s\nvs\n%s", doc, snap)
	}
	if doc.String() != snap.String() {
		t.Fatal("serialized forms differ")
	}
	// The snapshot shares no mutable state: mutating the original must not
	// show through.
	doc.Root.Children[0].Text = "mutated"
	doc.Root.Attrs[0].Value = "2"
	if snap.Root.Children[0].Text != "text" || snap.Root.Attrs[0].Value != "1" {
		t.Fatal("snapshot aliased the original document")
	}
}

// TestSnapshotHintedChunksMatchClone exercises the hinted arena path: the
// first snapshot counts, later ones reuse the cached counts as chunk sizing
// hints. Growing the document between snapshots makes the hints undershoot,
// forcing extra chunk allocations; every snapshot must still match a deep
// clone exactly.
func TestSnapshotHintedChunksMatchClone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	doc := NewDocument("d", "root")
	for round := 0; round < 12; round++ {
		// Grow: attach a random batch of children with attributes and text.
		var attached []*Node
		doc.Walk(func(n *Node) bool { attached = append(attached, n); return true })
		for i := 0; i < 1+rng.Intn(40); i++ {
			parent := attached[rng.Intn(len(attached))]
			n := doc.NewElement("e")
			n.Text = strings.Repeat("x", rng.Intn(8))
			for a := 0; a < rng.Intn(3); a++ {
				n.SetAttr(string(rune('a'+a)), "v")
			}
			if err := doc.AttachAt(parent, n, Into); err != nil {
				t.Fatalf("attach: %v", err)
			}
		}
		snap := doc.Snapshot()
		if !Equal(doc, snap) {
			t.Fatalf("round %d: snapshot differs from document", round)
		}
		if !Equal(doc.Clone(), snap) {
			t.Fatalf("round %d: snapshot differs from clone", round)
		}
		// Snapshots must not alias: mutate the original and re-check.
		mutate := attached[rng.Intn(len(attached))]
		old := mutate.Text
		mutate.Text = "mutated"
		if Equal(doc, snap) && old != "mutated" {
			t.Fatalf("round %d: snapshot aliased the live tree", round)
		}
		mutate.Text = old
		// A snapshot of the snapshot (hint path on a counted document) must
		// round-trip too.
		if !Equal(snap, snap.Snapshot()) {
			t.Fatalf("round %d: re-snapshot differs", round)
		}
	}
}
