package xpath

import "sync"

// Cache is a bounded, concurrency-safe parse cache keyed on the raw query
// text. Parsed queries are immutable after Parse, so one *Query can be
// shared by every goroutine that submits the same expression — the
// scheduler keeps one cache per site so a repeated query template costs a
// map hit instead of a lex+parse per operation.
//
// The bound is a simple flush: when the cache reaches capacity it is
// cleared and rebuilt from subsequent traffic. Workloads have a bounded set
// of query *templates* but an unbounded set of predicate values, so an
// occasional full flush is cheaper than per-entry eviction bookkeeping on
// the hot path.
type Cache struct {
	mu  sync.RWMutex
	max int
	m   map[string]*Query
}

// NewCache creates a cache bounded to max entries (a non-positive max gets
// a generous default).
func NewCache(max int) *Cache {
	if max <= 0 {
		max = 4096
	}
	return &Cache{max: max, m: make(map[string]*Query)}
}

// Get returns the parsed form of raw, parsing and caching on a miss. Parse
// errors are returned without being cached: erroneous queries are rejected
// before reaching any scheduler hot path, so they do not recur.
func (c *Cache) Get(raw string) (*Query, error) {
	c.mu.RLock()
	q := c.m[raw]
	c.mu.RUnlock()
	if q != nil {
		return q, nil
	}
	q, err := Parse(raw)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if cached := c.m[raw]; cached != nil {
		// A concurrent miss parsed it first; share that instance.
		q = cached
	} else {
		if len(c.m) >= c.max {
			c.m = make(map[string]*Query)
		}
		c.m[raw] = q
	}
	c.mu.Unlock()
	return q, nil
}

// Len returns the current number of cached queries.
func (c *Cache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}
