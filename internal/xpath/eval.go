package xpath

import (
	"math"
	"strconv"
	"strings"

	"repro/internal/xmltree"
)

// Eval evaluates q against doc and returns the matching element nodes in
// document order without duplicates. When the query selects an attribute
// (trailing /@name), the returned nodes are the elements that carry the
// attribute; use Node.Attr to extract values.
func Eval(q *Query, doc *xmltree.Document) []*xmltree.Node {
	// The context of the first step is a virtual document node whose only
	// child is the root element.
	ctx := []*xmltree.Node{}
	for i, step := range q.Steps {
		var next []*xmltree.Node
		seen := make(map[xmltree.NodeID]bool)
		add := func(n *xmltree.Node) {
			if !seen[n.ID] {
				seen[n.ID] = true
				next = append(next, n)
			}
		}
		if i == 0 {
			switch step.Axis {
			case Child:
				if nameMatches(step.Name, doc.Root.Name) {
					add(doc.Root)
				}
			case Descendant:
				doc.Walk(func(n *xmltree.Node) bool {
					if nameMatches(step.Name, n.Name) {
						add(n)
					}
					return true
				})
			}
		} else {
			for _, c := range ctx {
				switch step.Axis {
				case Child:
					for _, child := range c.Children {
						if nameMatches(step.Name, child.Name) {
							add(child)
						}
					}
				case Descendant:
					// '//name' from context c expands to
					// descendant-or-self::node()/child::name, which is
					// exactly the descendants of c with a matching name.
					for _, d := range c.Descendants() {
						if nameMatches(step.Name, d.Name) {
							add(d)
						}
					}
				}
			}
		}
		next = applyPreds(step.Preds, next)
		ctx = next
		if len(ctx) == 0 {
			return nil
		}
	}
	if q.Attr != "" {
		var out []*xmltree.Node
		for _, n := range ctx {
			if _, ok := n.Attr(q.Attr); ok {
				out = append(out, n)
			}
		}
		return sortDocOrder(out)
	}
	return sortDocOrder(ctx)
}

// EvalSteps expands a context node set through the given steps, mirroring
// Eval's non-initial step semantics: child/descendant axis expansion,
// predicate filtering and per-step dedupe, with no document-order sort of
// the result. Index-assisted evaluation uses it to resolve the steps that
// follow an indexed predicate step.
func EvalSteps(steps []Step, ctx []*xmltree.Node) []*xmltree.Node {
	for _, step := range steps {
		var next []*xmltree.Node
		seen := make(map[xmltree.NodeID]bool)
		add := func(n *xmltree.Node) {
			if !seen[n.ID] {
				seen[n.ID] = true
				next = append(next, n)
			}
		}
		for _, c := range ctx {
			switch step.Axis {
			case Child:
				for _, child := range c.Children {
					if nameMatches(step.Name, child.Name) {
						add(child)
					}
				}
			case Descendant:
				for _, d := range c.Descendants() {
					if nameMatches(step.Name, d.Name) {
						add(d)
					}
				}
			}
		}
		ctx = applyPreds(step.Preds, next)
		if len(ctx) == 0 {
			return nil
		}
	}
	return ctx
}

// EvalStrings evaluates q and renders each match as a string: the attribute
// value for attribute queries, otherwise the node's text content.
func EvalStrings(q *Query, doc *xmltree.Document) []string {
	return RenderStrings(q, Eval(q, doc))
}

// RenderStrings renders nodes already selected for q the way EvalStrings
// would: the attribute value for attribute queries, otherwise node text.
// Index-assisted evaluation paths use it to produce scan-identical output.
func RenderStrings(q *Query, nodes []*xmltree.Node) []string {
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if q.Attr != "" {
			v, _ := n.Attr(q.Attr)
			out = append(out, v)
		} else {
			out = append(out, n.Text)
		}
	}
	return out
}

func nameMatches(test, name string) bool {
	return test == "*" || test == name
}

func applyPreds(preds []Pred, nodes []*xmltree.Node) []*xmltree.Node {
	for _, p := range preds {
		var kept []*xmltree.Node
		for i, n := range nodes {
			if matchPred(p, n, i) {
				kept = append(kept, n)
			}
		}
		nodes = kept
		if len(nodes) == 0 {
			return nil
		}
	}
	return nodes
}

func matchPred(p Pred, n *xmltree.Node, idx int) bool {
	return p.Match(n, idx)
}

// Match reports whether n at 1-based position idx+1 within its filtered
// context satisfies the predicate. Position predicates depend on idx; the
// value predicates ignore it, which lets index-assisted evaluation apply
// them as residual filters over candidate sets in any order.
func (p Pred) Match(n *xmltree.Node, idx int) bool {
	switch p.Kind {
	case PredPosition:
		return idx+1 == p.Position
	case PredAttr:
		v, ok := n.Attr(p.Name)
		if !ok {
			return false
		}
		return Compare(p.Op, v, p.Value)
	case PredText:
		return Compare(p.Op, n.Text, p.Value)
	case PredChild:
		for _, c := range n.Children {
			if c.Name == p.Name && Compare(p.Op, c.Text, p.Value) {
				return true
			}
		}
		// For !=, XPath existential semantics: true if some child named Name
		// has a different value. The loop above already implements that.
		return false
	default:
		return false
	}
}

// Compare applies a predicate comparison operator. Equality is exact string
// comparison; the ordered operators go through the CompareValues total order
// so scans and index range lookups agree on every input.
func Compare(op CmpOp, a, b string) bool {
	switch op {
	case Eq:
		return a == b
	case Neq:
		return a != b
	case Lt:
		return CompareValues(a, b) < 0
	case Le:
		return CompareValues(a, b) <= 0
	case Gt:
		return CompareValues(a, b) > 0
	case Ge:
		return CompareValues(a, b) >= 0
	}
	return false
}

// CompareValues is the total order behind the ordered predicate operators
// and the vindex sorted-key slices: values that parse as (finite) numbers
// compare numerically and sort before non-numeric values; numeric ties and
// non-numeric values fall back to byte-wise comparison so distinct strings
// never compare equal.
func CompareValues(a, b string) int {
	fa, ea := strconv.ParseFloat(a, 64)
	fb, eb := strconv.ParseFloat(b, 64)
	aNum := ea == nil && !math.IsNaN(fa)
	bNum := eb == nil && !math.IsNaN(fb)
	switch {
	case aNum && bNum:
		if fa < fb {
			return -1
		}
		if fa > fb {
			return 1
		}
	case aNum:
		return -1
	case bNum:
		return 1
	}
	return strings.Compare(a, b)
}

// sortDocOrder orders nodes by document position. Matches are produced in
// walk order per step, but predicate filtering and multi-context merging can
// interleave branches, so we re-sort by a depth-first ranking.
func sortDocOrder(nodes []*xmltree.Node) []*xmltree.Node {
	return SortDocOrder(nodes)
}

// SortDocOrder orders nodes of one document by document position; exported
// for index-assisted evaluation, which assembles candidates out of order.
func SortDocOrder(nodes []*xmltree.Node) []*xmltree.Node {
	if len(nodes) <= 1 {
		return nodes
	}
	rank := make(map[xmltree.NodeID]int, len(nodes))
	want := make(map[xmltree.NodeID]bool, len(nodes))
	for _, n := range nodes {
		want[n.ID] = true
	}
	// Find the document by walking up from any node.
	root := nodes[0]
	for root.Parent != nil {
		root = root.Parent
	}
	i := 0
	var walk func(n *xmltree.Node)
	walk = func(n *xmltree.Node) {
		if want[n.ID] {
			rank[n.ID] = i
			i++
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	out := append([]*xmltree.Node(nil), nodes...)
	for j := 1; j < len(out); j++ {
		for k := j; k > 0 && rank[out[k].ID] < rank[out[k-1].ID]; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	return out
}
