// Package xpath implements the subset of the XPath language that the XDGL
// protocol (and therefore DTX) supports for information recovery: absolute
// location paths with child (/) and descendant (//) axes, name tests and
// wildcards, attribute selection, and simple comparison predicates on child
// elements, attributes, text() and position.
//
// Grammar:
//
//	query     = step { step } [ "/" "@" NAME ]
//	step      = ("/" | "//") nametest { predicate }
//	nametest  = NAME | "*"
//	predicate = "[" pred "]"
//	pred      = "@" NAME cmp literal
//	          | NAME cmp literal
//	          | "text" "(" ")" cmp literal
//	          | NUMBER
//	cmp       = "=" | "!=" | "<" | "<=" | ">" | ">="
//	literal   = "'" chars "'" | `"` chars `"` | NUMBER
package xpath

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tokEOF tokKind = iota
	tokSlash
	tokDSlash
	tokName
	tokStar
	tokAt
	tokLBracket
	tokRBracket
	tokEq
	tokNeq
	tokLt
	tokLe
	tokGt
	tokGe
	tokString
	tokNumber
	tokLParen
	tokRParen
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of query"
	case tokSlash:
		return "'/'"
	case tokDSlash:
		return "'//'"
	case tokName:
		return "name"
	case tokStar:
		return "'*'"
	case tokAt:
		return "'@'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokEq:
		return "'='"
	case tokNeq:
		return "'!='"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokString:
		return "string literal"
	case tokNumber:
		return "number"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	default:
		return fmt.Sprintf("tok(%d)", int(k))
	}
}

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	input string
	pos   int
}

// SyntaxError reports a malformed query with the offending position.
type SyntaxError struct {
	Query string
	Pos   int
	Msg   string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("xpath: %s at offset %d in %q", e.Msg, e.Pos, e.Query)
}

func isNameStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_'
}

func isNameRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '-' || r == '.'
}

func (l *lexer) errf(pos int, format string, args ...interface{}) error {
	return &SyntaxError{Query: l.input, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && (l.input[l.pos] == ' ' || l.input[l.pos] == '\t') {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '/':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '/' {
			l.pos += 2
			return token{kind: tokDSlash, text: "//", pos: start}, nil
		}
		l.pos++
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case c == '*':
		l.pos++
		return token{kind: tokStar, text: "*", pos: start}, nil
	case c == '@':
		l.pos++
		return token{kind: tokAt, text: "@", pos: start}, nil
	case c == '[':
		l.pos++
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case c == ']':
		l.pos++
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case c == '=':
		l.pos++
		return token{kind: tokEq, text: "=", pos: start}, nil
	case c == '!':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokNeq, text: "!=", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected '!'")
	case c == '<':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokLt, text: "<", pos: start}, nil
	case c == '>':
		if l.pos+1 < len(l.input) && l.input[l.pos+1] == '=' {
			l.pos += 2
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		l.pos++
		return token{kind: tokGt, text: ">", pos: start}, nil
	case c == '\'' || c == '"':
		quote := c
		l.pos++
		var b strings.Builder
		for l.pos < len(l.input) && l.input[l.pos] != quote {
			b.WriteByte(l.input[l.pos])
			l.pos++
		}
		if l.pos >= len(l.input) {
			return token{}, l.errf(start, "unterminated string literal")
		}
		l.pos++ // closing quote
		return token{kind: tokString, text: b.String(), pos: start}, nil
	case c >= '0' && c <= '9':
		for l.pos < len(l.input) && (l.input[l.pos] >= '0' && l.input[l.pos] <= '9' || l.input[l.pos] == '.') {
			l.pos++
		}
		return token{kind: tokNumber, text: l.input[start:l.pos], pos: start}, nil
	default:
		r := rune(c)
		if !isNameStart(r) {
			return token{}, l.errf(start, "unexpected character %q", r)
		}
		for l.pos < len(l.input) && isNameRune(rune(l.input[l.pos])) {
			l.pos++
		}
		return token{kind: tokName, text: l.input[start:l.pos], pos: start}, nil
	}
}
