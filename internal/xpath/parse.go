package xpath

import (
	"strconv"
	"strings"
)

// Axis selects how a step moves through the tree.
type Axis int

// Supported axes: '/' child and '//' descendant-or-self.
const (
	Child Axis = iota
	Descendant
)

func (a Axis) String() string {
	if a == Descendant {
		return "//"
	}
	return "/"
}

// PredKind distinguishes the predicate forms of the subset.
type PredKind int

// Predicate kinds.
const (
	PredChild    PredKind = iota // [name = 'v'] — child element text comparison
	PredAttr                     // [@attr = 'v']
	PredText                     // [text() = 'v']
	PredPosition                 // [n] — 1-based position among matched siblings
)

// CmpOp is a predicate comparison operator.
type CmpOp int

// Comparison operators. The ordered operators compare with CompareValues
// (numeric when both sides parse as numbers, byte-wise otherwise).
const (
	Eq CmpOp = iota
	Neq
	Lt
	Le
	Gt
	Ge
)

func (op CmpOp) String() string {
	switch op {
	case Neq:
		return "!="
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	}
	return "="
}

// Ordered reports whether op is one of the range operators (<, <=, >, >=),
// which an index serves with a sorted-key scan rather than a map hit.
func (op CmpOp) Ordered() bool {
	return op == Lt || op == Le || op == Gt || op == Ge
}

// Pred is one bracketed predicate of a step.
type Pred struct {
	Kind     PredKind
	Name     string // child element or attribute name (PredChild/PredAttr)
	Op       CmpOp
	Value    string
	Position int // PredPosition
}

// Step is one location step of a query.
type Step struct {
	Axis  Axis
	Name  string // element name; "*" means any
	Preds []Pred
}

// Query is a parsed XPath expression of the DTX subset. A Query is
// immutable after Parse and safe to share between goroutines.
type Query struct {
	Steps []Step
	// Attr, when non-empty, selects the named attribute of the target nodes
	// (a trailing /@name step).
	Attr      string
	raw       string
	structKey string
}

// String returns the canonical textual form of the query.
func (q *Query) String() string {
	var b strings.Builder
	for _, s := range q.Steps {
		b.WriteString(s.Axis.String())
		b.WriteString(s.Name)
		for _, p := range s.Preds {
			b.WriteByte('[')
			switch p.Kind {
			case PredChild:
				b.WriteString(p.Name)
				b.WriteString(p.Op.String())
				b.WriteString("'" + p.Value + "'")
			case PredAttr:
				b.WriteString("@" + p.Name)
				b.WriteString(p.Op.String())
				b.WriteString("'" + p.Value + "'")
			case PredText:
				b.WriteString("text()")
				b.WriteString(p.Op.String())
				b.WriteString("'" + p.Value + "'")
			case PredPosition:
				b.WriteString(strconv.Itoa(p.Position))
			}
			b.WriteByte(']')
		}
	}
	if q.Attr != "" {
		b.WriteString("/@")
		b.WriteString(q.Attr)
	}
	return b.String()
}

// Raw returns the original query text as given to Parse.
func (q *Query) Raw() string { return q.raw }

// StructureKey returns a canonical rendering of the parts of the query that
// determine its evaluation against a structural summary: the axes and
// element names of every step, plus the child-element names of predicates.
// Predicate *values* and positions are omitted — a DataGuide cannot decide
// them, so two queries differing only there reach exactly the same summary
// nodes. Structural-summary caches key on this instead of Raw so that e.g.
// //person[id='7']/name and //person[id='9']/name share one entry.
func (q *Query) StructureKey() string {
	if q.structKey == "" {
		// Queries assembled literally (tests) bypass Parse; derive per call
		// rather than share the empty key between distinct shapes.
		return structureKey(q)
	}
	return q.structKey
}

// structureKey builds the StructureKey; called once at Parse.
func structureKey(q *Query) string {
	var b strings.Builder
	for _, s := range q.Steps {
		b.WriteString(s.Axis.String())
		b.WriteString(s.Name)
		for _, p := range s.Preds {
			if p.Kind == PredChild {
				b.WriteByte('[')
				b.WriteString(p.Name)
				b.WriteByte(']')
			}
		}
	}
	return b.String()
}

type parser struct {
	lex *lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokKind) (token, error) {
	if p.tok.kind != k {
		return token{}, p.lex.errf(p.tok.pos, "expected %v, found %v", k, p.tok.kind)
	}
	t := p.tok
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return t, nil
}

// Parse parses an absolute location path in the DTX XPath subset.
func Parse(input string) (*Query, error) {
	p := &parser{lex: &lexer{input: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	q := &Query{raw: input}
	if p.tok.kind != tokSlash && p.tok.kind != tokDSlash {
		return nil, p.lex.errf(p.tok.pos, "query must start with '/' or '//'")
	}
	for p.tok.kind == tokSlash || p.tok.kind == tokDSlash {
		axis := Child
		if p.tok.kind == tokDSlash {
			axis = Descendant
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		// Trailing attribute selection: /@name ends the query.
		if p.tok.kind == tokAt {
			if axis != Child {
				return nil, p.lex.errf(p.tok.pos, "attribute selection requires '/' axis")
			}
			if len(q.Steps) == 0 {
				return nil, p.lex.errf(p.tok.pos, "attribute selection requires a preceding step")
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
			name, err := p.expect(tokName)
			if err != nil {
				return nil, err
			}
			q.Attr = name.text
			break
		}
		var name string
		switch p.tok.kind {
		case tokName:
			name = p.tok.text
		case tokStar:
			name = "*"
		default:
			return nil, p.lex.errf(p.tok.pos, "expected name or '*', found %v", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		step := Step{Axis: axis, Name: name}
		for p.tok.kind == tokLBracket {
			pred, err := p.parsePred()
			if err != nil {
				return nil, err
			}
			step.Preds = append(step.Preds, pred)
		}
		q.Steps = append(q.Steps, step)
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errf(p.tok.pos, "unexpected %v after query", p.tok.kind)
	}
	if len(q.Steps) == 0 {
		return nil, p.lex.errf(0, "empty query")
	}
	q.structKey = structureKey(q)
	return q, nil
}

// MustParse parses a query or panics; for tests and static query tables.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

func (p *parser) parsePred() (Pred, error) {
	if _, err := p.expect(tokLBracket); err != nil {
		return Pred{}, err
	}
	var pred Pred
	switch p.tok.kind {
	case tokNumber:
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 1 {
			return Pred{}, p.lex.errf(p.tok.pos, "position must be a positive integer")
		}
		pred = Pred{Kind: PredPosition, Position: n}
		if err := p.advance(); err != nil {
			return Pred{}, err
		}
	case tokAt:
		if err := p.advance(); err != nil {
			return Pred{}, err
		}
		name, err := p.expect(tokName)
		if err != nil {
			return Pred{}, err
		}
		op, val, err := p.parseCmp()
		if err != nil {
			return Pred{}, err
		}
		pred = Pred{Kind: PredAttr, Name: name.text, Op: op, Value: val}
	case tokName:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return Pred{}, err
		}
		if name == "text" && p.tok.kind == tokLParen {
			if err := p.advance(); err != nil {
				return Pred{}, err
			}
			if _, err := p.expect(tokRParen); err != nil {
				return Pred{}, err
			}
			op, val, err := p.parseCmp()
			if err != nil {
				return Pred{}, err
			}
			pred = Pred{Kind: PredText, Op: op, Value: val}
			break
		}
		op, val, err := p.parseCmp()
		if err != nil {
			return Pred{}, err
		}
		pred = Pred{Kind: PredChild, Name: name, Op: op, Value: val}
	default:
		return Pred{}, p.lex.errf(p.tok.pos, "expected predicate, found %v", p.tok.kind)
	}
	if _, err := p.expect(tokRBracket); err != nil {
		return Pred{}, err
	}
	return pred, nil
}

func (p *parser) parseCmp() (CmpOp, string, error) {
	var op CmpOp
	switch p.tok.kind {
	case tokEq:
		op = Eq
	case tokNeq:
		op = Neq
	case tokLt:
		op = Lt
	case tokLe:
		op = Le
	case tokGt:
		op = Gt
	case tokGe:
		op = Ge
	default:
		return 0, "", p.lex.errf(p.tok.pos, "expected comparison operator, found %v", p.tok.kind)
	}
	if err := p.advance(); err != nil {
		return 0, "", err
	}
	switch p.tok.kind {
	case tokString, tokNumber:
		val := p.tok.text
		if err := p.advance(); err != nil {
			return 0, "", err
		}
		return op, val, nil
	default:
		return 0, "", p.lex.errf(p.tok.pos, "expected literal, found %v", p.tok.kind)
	}
}
