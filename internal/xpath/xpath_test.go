package xpath

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/xmltree"
)

const storeXML = `
<products>
  <product id="prod1"><id>4</id><description>Mouse</description><price>10.30</price></product>
  <product id="prod2"><id>14</id><description>Keyboard</description><price>9.90</price></product>
  <product id="prod3"><id>32</id><description>Monitor</description><price>99.00</price></product>
  <promo>
    <product id="prod4"><id>77</id><description>Cable</description><price>1.10</price></product>
  </promo>
</products>`

func storeDoc(t *testing.T) *xmltree.Document {
	t.Helper()
	doc, err := xmltree.ParseString("d2", storeXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func evalTexts(t *testing.T, doc *xmltree.Document, query string) []string {
	t.Helper()
	q, err := Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	return EvalStrings(q, doc)
}

func TestParseValid(t *testing.T) {
	cases := []string{
		"/products",
		"/products/product",
		"/products/product/id",
		"//product",
		"//product[id='4']",
		"/products/product[@id='prod1']",
		"/products/product[2]",
		"/products/*",
		"//product/description",
		"/products/product[price='10.30']/description",
		"/products/product[text()='x']",
		"/products/product/@id",
		"//product[@id!='prod1']",
		"/products/product[id=4]",
	}
	for _, c := range cases {
		q, err := Parse(c)
		if err != nil {
			t.Errorf("Parse(%q): %v", c, err)
			continue
		}
		// Canonical form must reparse to an equivalent query.
		q2, err := Parse(q.String())
		if err != nil {
			t.Errorf("reparse %q (from %q): %v", q.String(), c, err)
			continue
		}
		if q.String() != q2.String() {
			t.Errorf("canonical form unstable: %q -> %q", q.String(), q2.String())
		}
	}
}

func TestParseInvalid(t *testing.T) {
	cases := []string{
		"",
		"products",         // must be absolute
		"/",                // no step
		"/products/",       // dangling slash
		"/products[",       // unterminated predicate
		"/products[id=]",   // missing literal
		"/products[id'4']", // missing operator
		"/products[0]",     // positions are 1-based
		"/products['a'']",  // junk predicate
		"/products/product[@id='x'",
		"/p/@",   // missing attribute name
		"//@id",  // attribute needs '/' axis
		"/@id",   // attribute selection with no preceding step
		"/a/b!c", // stray '!'
		"/a[x='unterminated]",
		"/a]b",
	}
	for _, c := range cases {
		if _, err := Parse(c); err == nil {
			t.Errorf("Parse(%q): expected error", c)
		}
	}
}

func TestEvalChildAxis(t *testing.T) {
	doc := storeDoc(t)
	got := evalTexts(t, doc, "/products/product/id")
	want := []string{"4", "14", "32"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEvalDescendantAxis(t *testing.T) {
	doc := storeDoc(t)
	got := evalTexts(t, doc, "//product/id")
	want := []string{"4", "14", "32", "77"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", got, want)
	}
	// Descendant in the middle of a path.
	got = evalTexts(t, doc, "/products//product/description")
	want = []string{"Mouse", "Keyboard", "Monitor", "Cable"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("middle //: got %v, want %v", got, want)
	}
}

func TestEvalWildcard(t *testing.T) {
	doc := storeDoc(t)
	q := MustParse("/products/*")
	nodes := Eval(q, doc)
	if len(nodes) != 4 {
		t.Fatalf("wildcard matched %d nodes, want 4", len(nodes))
	}
}

func TestEvalChildPredicate(t *testing.T) {
	doc := storeDoc(t)
	got := evalTexts(t, doc, "//product[id='14']/description")
	if len(got) != 1 || got[0] != "Keyboard" {
		t.Fatalf("got %v, want [Keyboard]", got)
	}
	got = evalTexts(t, doc, "//product[id!='14']/description")
	if strings.Join(got, ",") != "Mouse,Monitor,Cable" {
		t.Fatalf("!=: got %v", got)
	}
}

func TestEvalAttrPredicate(t *testing.T) {
	doc := storeDoc(t)
	got := evalTexts(t, doc, "/products/product[@id='prod2']/price")
	if len(got) != 1 || got[0] != "9.90" {
		t.Fatalf("got %v, want [9.90]", got)
	}
	if got := evalTexts(t, doc, "/products/product[@missing='x']"); len(got) != 0 {
		t.Fatalf("missing attr matched: %v", got)
	}
}

func TestEvalPositionPredicate(t *testing.T) {
	doc := storeDoc(t)
	got := evalTexts(t, doc, "/products/product[2]/description")
	if len(got) != 1 || got[0] != "Keyboard" {
		t.Fatalf("got %v, want [Keyboard]", got)
	}
	if got := evalTexts(t, doc, "/products/product[9]"); len(got) != 0 {
		t.Fatalf("out-of-range position matched: %v", got)
	}
}

func TestEvalAttrSelection(t *testing.T) {
	doc := storeDoc(t)
	got := evalTexts(t, doc, "/products/product/@id")
	want := []string{"prod1", "prod2", "prod3"}
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestEvalTextPredicate(t *testing.T) {
	doc, err := xmltree.ParseString("d", `<r><x>alpha</x><x>beta</x></r>`)
	if err != nil {
		t.Fatal(err)
	}
	got := evalTexts(t, doc, "/r/x[text()='beta']")
	if len(got) != 1 || got[0] != "beta" {
		t.Fatalf("got %v, want [beta]", got)
	}
}

func TestEvalRootMismatch(t *testing.T) {
	doc := storeDoc(t)
	if got := Eval(MustParse("/people"), doc); got != nil {
		t.Fatalf("root mismatch matched: %v", got)
	}
}

func TestEvalNoDuplicates(t *testing.T) {
	// //product via // on nested contexts must not duplicate the nested one.
	doc := storeDoc(t)
	q := MustParse("//product")
	nodes := Eval(q, doc)
	seen := map[xmltree.NodeID]bool{}
	for _, n := range nodes {
		if seen[n.ID] {
			t.Fatalf("duplicate node %d in result", n.ID)
		}
		seen[n.ID] = true
	}
	if len(nodes) != 4 {
		t.Fatalf("//product matched %d, want 4", len(nodes))
	}
}

func TestEvalDocumentOrder(t *testing.T) {
	doc := storeDoc(t)
	nodes := Eval(MustParse("//id"), doc)
	var last int
	rankOf := func(target *xmltree.Node) int {
		i, found := 0, -1
		doc.Walk(func(n *xmltree.Node) bool {
			if n == target {
				found = i
			}
			i++
			return true
		})
		return found
	}
	for i, n := range nodes {
		r := rankOf(n)
		if i > 0 && r < last {
			t.Fatalf("results out of document order at %d", i)
		}
		last = r
	}
}

// TestPropertyEvalSubsetOfWalk: every node returned by any query must be an
// attached node of the document with a matching final name test.
func TestPropertyEvalSubsetOfWalk(t *testing.T) {
	doc := storeDoc(t)
	queries := []string{"//product", "/products/product", "//id", "/products/*", "//product[id='4']"}
	f := func(pick uint8) bool {
		q := MustParse(queries[int(pick)%len(queries)])
		for _, n := range Eval(q, doc) {
			if !doc.Attached(n) {
				return false
			}
			last := q.Steps[len(q.Steps)-1]
			if last.Name != "*" && n.Name != last.Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheSharesParsedQueries(t *testing.T) {
	c := NewCache(2)
	q1, err := c.Get("//product/id")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := c.Get("//product/id")
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("cache did not share the parsed query")
	}
	if _, err := c.Get("][bad"); err == nil {
		t.Fatal("parse error not surfaced")
	}
	// Overflow flushes rather than grows.
	if _, err := c.Get("/a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("/b"); err != nil {
		t.Fatal(err)
	}
	if c.Len() > 2 {
		t.Fatalf("cache exceeded its bound: %d", c.Len())
	}
}

func TestStructureKeyIgnoresPredicateValues(t *testing.T) {
	a := MustParse("//person[id='7']/name")
	b := MustParse("//person[id='9']/name")
	if a.StructureKey() != b.StructureKey() {
		t.Fatalf("value-only difference changed the key: %q vs %q", a.StructureKey(), b.StructureKey())
	}
	c := MustParse("//person[age='7']/name")
	if a.StructureKey() == c.StructureKey() {
		t.Fatal("different predicate child collapsed into one key")
	}
	d := MustParse("//person/name")
	if a.StructureKey() == d.StructureKey() {
		t.Fatal("dropping the predicate did not change the key")
	}
	if MustParse("/a/b").StructureKey() == MustParse("/a//b").StructureKey() {
		t.Fatal("axis ignored by the key")
	}
}
