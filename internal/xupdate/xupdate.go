// Package xupdate implements the five-operation update language that XDGL
// defines for XML documents — insert, remove, transpose, rename and change —
// together with inverse-operation undo records. DTX uses the undo records to
// roll back aborted transactions and to undo operations that could not
// acquire locks at every participant site (Algorithm 1, lines 15–17).
package xupdate

import (
	"fmt"
	"sync/atomic"

	"repro/internal/dataguide"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

// Kind enumerates the update operations of the language.
type Kind int

// The five update operations of XDGL's update language.
const (
	Insert Kind = iota
	Remove
	Rename
	Change
	Transpose
)

// String returns the update language keyword.
func (k Kind) String() string {
	switch k {
	case Insert:
		return "insert"
	case Remove:
		return "remove"
	case Rename:
		return "rename"
	case Change:
		return "change"
	case Transpose:
		return "transpose"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// NodeSpec describes a subtree to insert. It is pure data so it can travel
// through encoding/gob to participant sites.
type NodeSpec struct {
	Name     string
	Text     string
	Attrs    []xmltree.Attr
	Children []*NodeSpec
}

// Build materialises the spec as a detached subtree of doc.
func (s *NodeSpec) Build(doc *xmltree.Document) (*xmltree.Node, error) {
	if s.Name == "" {
		return nil, fmt.Errorf("xupdate: node spec without a name")
	}
	n := doc.NewElement(s.Name)
	n.Text = s.Text
	if len(s.Attrs) > 0 {
		n.Attrs = append([]xmltree.Attr(nil), s.Attrs...)
	}
	for _, c := range s.Children {
		cn, err := c.Build(doc)
		if err != nil {
			return nil, err
		}
		if err := doc.AttachAt(n, cn, xmltree.Into); err != nil {
			return nil, err
		}
	}
	return n, nil
}

// Update is one update operation against a document. Target paths are kept
// as raw XPath text so the struct serialises cleanly through encoding/gob
// (the parsed forms are unexported and rebuilt on the receiving side).
type Update struct {
	Kind    Kind
	Target  string      // XPath selecting the node(s) the operation applies to
	Pos     xmltree.Pos // Insert: into / before / after the target
	New     *NodeSpec   // Insert: subtree to create
	NewName string      // Rename: replacement element name
	Value   string      // Change: new text value (or attribute value)
	Attr    string      // Change: when set, change this attribute, not text
	Target2 string      // Transpose: second path

	// tq / t2q hold the immutable pre-parsed forms of Target / Target2,
	// populated by Validate (or lazily on first use — a gob-decoded Update
	// arrives without them). One Update fans out to several sites'
	// schedulers concurrently, so the slots are atomic; xpath.Query is
	// read-only after Parse, making the parsed value itself shareable.
	tq  atomic.Pointer[xpath.Query]
	t2q atomic.Pointer[xpath.Query]
}

// TargetQuery returns the parsed primary target path, parsing at most once
// per Update (Validate pre-parses; later calls are a pointer load).
func (u *Update) TargetQuery() (*xpath.Query, error) {
	return parseOnce(&u.tq, u.Target)
}

// Target2Query returns the parsed secondary path for Transpose.
func (u *Update) Target2Query() (*xpath.Query, error) {
	return parseOnce(&u.t2q, u.Target2)
}

// parseOnce returns the cached parse of raw, filling the slot on first use.
// Two goroutines racing the first call both parse; CompareAndSwap keeps one
// winner so every caller afterwards shares a single *xpath.Query.
func parseOnce(slot *atomic.Pointer[xpath.Query], raw string) (*xpath.Query, error) {
	if q := slot.Load(); q != nil {
		return q, nil
	}
	q, err := xpath.Parse(raw)
	if err != nil {
		return nil, err
	}
	if !slot.CompareAndSwap(nil, q) {
		return slot.Load(), nil
	}
	return q, nil
}

// String renders the update in the update-language surface syntax.
func (u *Update) String() string {
	switch u.Kind {
	case Insert:
		name := "?"
		if u.New != nil {
			name = u.New.Name
		}
		return fmt.Sprintf("insert <%s> %s %s", name, u.Pos, u.Target)
	case Remove:
		return fmt.Sprintf("remove %s", u.Target)
	case Rename:
		return fmt.Sprintf("rename %s to %s", u.Target, u.NewName)
	case Change:
		if u.Attr != "" {
			return fmt.Sprintf("change %s/@%s to %q", u.Target, u.Attr, u.Value)
		}
		return fmt.Sprintf("change %s to %q", u.Target, u.Value)
	case Transpose:
		return fmt.Sprintf("transpose %s and %s", u.Target, u.Target2)
	default:
		return "unknown update"
	}
}

// Validate checks the static shape of the update before execution.
func (u *Update) Validate() error {
	if _, err := u.TargetQuery(); err != nil {
		return err
	}
	switch u.Kind {
	case Insert:
		if u.New == nil {
			return fmt.Errorf("xupdate: insert without a node spec")
		}
		if u.New.Name == "" {
			return fmt.Errorf("xupdate: insert spec without a name")
		}
	case Rename:
		if u.NewName == "" {
			return fmt.Errorf("xupdate: rename without a new name")
		}
	case Transpose:
		if _, err := u.Target2Query(); err != nil {
			return err
		}
	case Remove, Change:
		// No extra fields required.
	default:
		return fmt.Errorf("xupdate: unknown kind %d", int(u.Kind))
	}
	return nil
}

// undoAction is a single inverse step. Actions are replayed in reverse.
type undoAction interface {
	undo(doc *xmltree.Document, g *dataguide.DataGuide) error
}

// UndoRec collects the inverse of one applied update.
type UndoRec struct {
	actions []undoAction
}

// Empty reports whether the update had no effect (no targets matched).
func (r *UndoRec) Empty() bool { return r == nil || len(r.actions) == 0 }

// Undo reverts the update on doc and guide. Safe to call once.
func (r *UndoRec) Undo(doc *xmltree.Document, g *dataguide.DataGuide) error {
	if r == nil {
		return nil
	}
	for i := len(r.actions) - 1; i >= 0; i-- {
		if err := r.actions[i].undo(doc, g); err != nil {
			return err
		}
	}
	r.actions = nil
	return nil
}

type undoInsert struct{ node *xmltree.Node }

func (a undoInsert) undo(doc *xmltree.Document, g *dataguide.DataGuide) error {
	g.RemoveSubtree(a.node)
	_, err := doc.Detach(a.node)
	return err
}

type undoRemove struct {
	parent *xmltree.Node
	node   *xmltree.Node
	idx    int
}

func (a undoRemove) undo(doc *xmltree.Document, g *dataguide.DataGuide) error {
	if err := doc.AttachChildAt(a.parent, a.node, a.idx); err != nil {
		return err
	}
	return g.AddSubtree(a.node)
}

type undoRename struct {
	node    *xmltree.Node
	oldName string
}

func (a undoRename) undo(doc *xmltree.Document, g *dataguide.DataGuide) error {
	g.RemoveSubtree(a.node)
	a.node.Name = a.oldName
	return g.AddSubtree(a.node)
}

type undoChangeText struct {
	node    *xmltree.Node
	oldText string
}

func (a undoChangeText) undo(_ *xmltree.Document, g *dataguide.DataGuide) error {
	old := a.node.Text
	a.node.Text = a.oldText
	g.NoteTextChanged(a.node, old)
	return nil
}

type undoChangeAttr struct {
	node    *xmltree.Node
	attr    string
	oldVal  string
	existed bool
}

func (a undoChangeAttr) undo(_ *xmltree.Document, g *dataguide.DataGuide) error {
	var prev string
	var existed bool
	if a.existed {
		prev, existed = a.node.SetAttr(a.attr, a.oldVal)
	} else {
		prev, existed = a.node.RemoveAttr(a.attr)
	}
	g.NoteAttrChanged(a.node, a.attr, prev, existed)
	return nil
}

type undoTranspose struct{ a, b *xmltree.Node }

func (a undoTranspose) undo(doc *xmltree.Document, g *dataguide.DataGuide) error {
	if err := doc.Transpose(a.a, a.b); err != nil {
		return err
	}
	if err := g.Move(a.a); err != nil {
		return err
	}
	return g.Move(a.b)
}

// Apply evaluates the update's target path(s) and applies the operation to
// every matched node, maintaining the DataGuide, and returns the undo
// record together with the affected target nodes. An update whose target
// matches nothing is a no-op with an empty undo record.
func Apply(u *Update, doc *xmltree.Document, g *dataguide.DataGuide) (*UndoRec, []*xmltree.Node, error) {
	if err := u.Validate(); err != nil {
		return nil, nil, err
	}
	q, err := u.TargetQuery()
	if err != nil {
		return nil, nil, err
	}
	targets := xpath.Eval(q, doc)
	rec, err := ApplyToTargets(u, doc, g, targets)
	return rec, targets, err
}

// ApplyToTargets applies the update to the given pre-evaluated target nodes.
// The scheduler uses this form so the target evaluation it performed for
// lock acquisition is not repeated.
func ApplyToTargets(u *Update, doc *xmltree.Document, g *dataguide.DataGuide, targets []*xmltree.Node) (*UndoRec, error) {
	rec := &UndoRec{}
	fail := func(err error) (*UndoRec, error) {
		// Roll back any partial effects of this update before reporting.
		if uerr := rec.Undo(doc, g); uerr != nil {
			return nil, fmt.Errorf("%w (and undo failed: %v)", err, uerr)
		}
		return nil, err
	}
	switch u.Kind {
	case Insert:
		for _, target := range targets {
			n, err := u.New.Build(doc)
			if err != nil {
				return fail(err)
			}
			if err := doc.AttachAt(target, n, u.Pos); err != nil {
				return fail(err)
			}
			if err := g.AddSubtree(n); err != nil {
				return fail(err)
			}
			rec.actions = append(rec.actions, undoInsert{node: n})
		}
	case Remove:
		for _, target := range targets {
			parent := target.Parent
			g.RemoveSubtree(target)
			idx, err := doc.Detach(target)
			if err != nil {
				// Re-register before failing: the subtree is still attached.
				if aerr := g.AddSubtree(target); aerr != nil {
					return nil, fmt.Errorf("%w (and guide restore failed: %v)", err, aerr)
				}
				return fail(err)
			}
			rec.actions = append(rec.actions, undoRemove{parent: parent, node: target, idx: idx})
		}
	case Rename:
		for _, target := range targets {
			old := target.Name
			g.RemoveSubtree(target)
			target.Name = u.NewName
			if err := g.AddSubtree(target); err != nil {
				target.Name = old
				return fail(err)
			}
			rec.actions = append(rec.actions, undoRename{node: target, oldName: old})
		}
	case Change:
		for _, target := range targets {
			if u.Attr != "" {
				prev, existed := target.SetAttr(u.Attr, u.Value)
				g.NoteAttrChanged(target, u.Attr, prev, existed)
				rec.actions = append(rec.actions, undoChangeAttr{node: target, attr: u.Attr, oldVal: prev, existed: existed})
			} else {
				old := target.Text
				rec.actions = append(rec.actions, undoChangeText{node: target, oldText: old})
				target.Text = u.Value
				g.NoteTextChanged(target, old)
			}
		}
	case Transpose:
		q2, err := u.Target2Query()
		if err != nil {
			return fail(err)
		}
		targets2 := xpath.Eval(q2, doc)
		if len(targets) != 1 || len(targets2) != 1 {
			return fail(fmt.Errorf("xupdate: transpose requires exactly one node per path (got %d and %d)", len(targets), len(targets2)))
		}
		a, b := targets[0], targets2[0]
		if err := doc.Transpose(a, b); err != nil {
			return fail(err)
		}
		if err := g.Move(a); err != nil {
			return fail(err)
		}
		if err := g.Move(b); err != nil {
			return fail(err)
		}
		rec.actions = append(rec.actions, undoTranspose{a: a, b: b})
	default:
		return fail(fmt.Errorf("xupdate: unknown kind %d", int(u.Kind)))
	}
	return rec, nil
}
