package xupdate

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataguide"
	"repro/internal/xmltree"
	"repro/internal/xpath"
)

const productsXML = `
<products>
  <product id="prod1"><id>4</id><description>Mouse</description><price>10.30</price></product>
  <product id="prod2"><id>14</id><description>Keyboard</description><price>9.90</price></product>
</products>`

func setup(t *testing.T) (*xmltree.Document, *dataguide.DataGuide) {
	t.Helper()
	doc, err := xmltree.ParseString("d2", productsXML)
	if err != nil {
		t.Fatal(err)
	}
	return doc, dataguide.Build(doc)
}

func mustEval(t *testing.T, doc *xmltree.Document, q string) []*xmltree.Node {
	t.Helper()
	return xpath.Eval(xpath.MustParse(q), doc)
}

// productSpec mirrors the paper's scenario: insert a product "Mouse" priced
// 10.30 with identifier 13.
func productSpec(id, desc, price string) *NodeSpec {
	return &NodeSpec{
		Name: "product",
		Children: []*NodeSpec{
			{Name: "id", Text: id},
			{Name: "description", Text: desc},
			{Name: "price", Text: price},
		},
	}
}

func TestInsertInto(t *testing.T) {
	doc, g := setup(t)
	u := &Update{Kind: Insert, Target: "/products", Pos: xmltree.Into, New: productSpec("13", "Mouse2", "10.30")}
	rec, targets, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 1 {
		t.Fatalf("targets = %d", len(targets))
	}
	got := mustEval(t, doc, "//product[id='13']/description")
	if len(got) != 1 || got[0].Text != "Mouse2" {
		t.Fatalf("inserted product not found: %v", got)
	}
	if len(g.Lookup("/products/product").Extent) != 3 {
		t.Fatal("guide extent not maintained")
	}
	if err := rec.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, doc, "//product[id='13']"); len(got) != 0 {
		t.Fatal("undo left inserted product")
	}
	if len(g.Lookup("/products/product").Extent) != 2 {
		t.Fatal("guide extent not restored")
	}
}

func TestInsertBeforeAfter(t *testing.T) {
	doc, g := setup(t)
	u := &Update{Kind: Insert, Target: "/products/product[id='14']", Pos: xmltree.Before, New: productSpec("1", "First", "0.01")}
	if _, _, err := Apply(u, doc, g); err != nil {
		t.Fatal(err)
	}
	ids := mustEval(t, doc, "/products/product/id")
	want := []string{"4", "1", "14"}
	for i, n := range ids {
		if n.Text != want[i] {
			t.Fatalf("order after insert-before: pos %d = %s, want %s", i, n.Text, want[i])
		}
	}
	u2 := &Update{Kind: Insert, Target: "/products/product[id='14']", Pos: xmltree.After, New: productSpec("99", "Last", "9.99")}
	if _, _, err := Apply(u2, doc, g); err != nil {
		t.Fatal(err)
	}
	ids = mustEval(t, doc, "/products/product/id")
	want = []string{"4", "1", "14", "99"}
	for i, n := range ids {
		if n.Text != want[i] {
			t.Fatalf("order after insert-after: pos %d = %s, want %s", i, n.Text, want[i])
		}
	}
}

func TestRemove(t *testing.T) {
	doc, g := setup(t)
	before := doc.Clone()
	u := &Update{Kind: Remove, Target: "//product[id='4']"}
	rec, _, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, doc, "//product"); len(got) != 1 {
		t.Fatalf("remove left %d products", len(got))
	}
	if len(g.Lookup("/products/product").Extent) != 1 {
		t.Fatal("guide extent not shrunk")
	}
	if err := rec.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(before, doc) {
		t.Fatalf("undo did not restore document:\n%s", doc.String())
	}
}

func TestRemoveAllTargets(t *testing.T) {
	doc, g := setup(t)
	u := &Update{Kind: Remove, Target: "//price"}
	rec, targets, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 2 {
		t.Fatalf("targets = %d, want 2", len(targets))
	}
	if got := mustEval(t, doc, "//price"); len(got) != 0 {
		t.Fatal("prices remain")
	}
	if err := rec.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, doc, "//price"); len(got) != 2 {
		t.Fatal("undo did not restore both prices")
	}
}

func TestRename(t *testing.T) {
	doc, g := setup(t)
	before := doc.Clone()
	u := &Update{Kind: Rename, Target: "//description", NewName: "desc"}
	rec, _, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, doc, "//desc"); len(got) != 2 {
		t.Fatalf("renamed nodes = %d", len(got))
	}
	if g.Lookup("/products/product/desc") == nil {
		t.Fatal("guide missing renamed path")
	}
	if len(g.Lookup("/products/product/description").Extent) != 0 {
		t.Fatal("old path extent not emptied")
	}
	if err := rec.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(before, doc) {
		t.Fatal("undo did not restore names")
	}
}

func TestChangeText(t *testing.T) {
	doc, g := setup(t)
	u := &Update{Kind: Change, Target: "//product[id='4']/price", Value: "12.00"}
	rec, _, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, doc, "//product[id='4']/price"); got[0].Text != "12.00" {
		t.Fatalf("price = %s", got[0].Text)
	}
	if err := rec.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if got := mustEval(t, doc, "//product[id='4']/price"); got[0].Text != "10.30" {
		t.Fatalf("price after undo = %s", got[0].Text)
	}
}

func TestChangeAttr(t *testing.T) {
	doc, g := setup(t)
	u := &Update{Kind: Change, Target: "//product[id='4']", Attr: "id", Value: "prodX"}
	rec, _, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	n := mustEval(t, doc, "//product[id='4']")[0]
	if v, _ := n.Attr("id"); v != "prodX" {
		t.Fatalf("attr = %s", v)
	}
	// Changing a brand-new attribute must undo to absent.
	u2 := &Update{Kind: Change, Target: "//product[id='4']", Attr: "flag", Value: "on"}
	rec2, _, err := Apply(u2, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	if err := rec2.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if _, ok := n.Attr("flag"); ok {
		t.Fatal("undo left new attribute")
	}
	if err := rec.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if v, _ := n.Attr("id"); v != "prod1" {
		t.Fatalf("attr after undo = %s", v)
	}
}

func TestTranspose(t *testing.T) {
	doc, g := setup(t)
	before := doc.Clone()
	u := &Update{Kind: Transpose, Target: "//product[id='4']", Target2: "//product[id='14']"}
	rec, _, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	ids := mustEval(t, doc, "/products/product/id")
	if ids[0].Text != "14" || ids[1].Text != "4" {
		t.Fatalf("transpose order: %s,%s", ids[0].Text, ids[1].Text)
	}
	if err := rec.Undo(doc, g); err != nil {
		t.Fatal(err)
	}
	if !xmltree.Equal(before, doc) {
		t.Fatal("undo did not restore order")
	}
}

func TestTransposeArityErrors(t *testing.T) {
	doc, g := setup(t)
	u := &Update{Kind: Transpose, Target: "//product", Target2: "//product[id='14']"}
	if _, _, err := Apply(u, doc, g); err == nil {
		t.Fatal("expected arity error for multi-target transpose")
	}
}

func TestValidate(t *testing.T) {
	bad := []*Update{
		{Kind: Insert, Target: "/p"},                           // no spec
		{Kind: Insert, Target: "/p", New: &NodeSpec{}},         // unnamed spec
		{Kind: Rename, Target: "/p"},                           // no new name
		{Kind: Transpose, Target: "/p"},                        // no second path
		{Kind: Transpose, Target: "/p", Target2: "not-a-path"}, // bad second path
		{Kind: Remove, Target: "bad path"},                     // bad path
		{Kind: Kind(99), Target: "/p"},                         // unknown kind
	}
	for i, u := range bad {
		if err := u.Validate(); err == nil {
			t.Errorf("case %d (%v): expected validation error", i, u)
		}
	}
	good := &Update{Kind: Change, Target: "/p/q", Value: "v"}
	if err := good.Validate(); err != nil {
		t.Errorf("good update rejected: %v", err)
	}
}

func TestNoTargetsIsNoop(t *testing.T) {
	doc, g := setup(t)
	before := doc.Clone()
	u := &Update{Kind: Remove, Target: "//nothing"}
	rec, targets, err := Apply(u, doc, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != 0 || !rec.Empty() {
		t.Fatal("no-op should have no targets and empty undo")
	}
	if !xmltree.Equal(before, doc) {
		t.Fatal("no-op changed document")
	}
}

// randomUpdate builds a random valid update against the products document.
func randomUpdate(rng *rand.Rand) *Update {
	switch rng.Intn(5) {
	case 0:
		return &Update{Kind: Insert, Target: "/products", Pos: xmltree.Pos(rng.Intn(3)),
			New: productSpec("50", "Thing", "1.00")}
	case 1:
		return &Update{Kind: Remove, Target: "//product[id='4']"}
	case 2:
		return &Update{Kind: Rename, Target: "//description", NewName: "d2"}
	case 3:
		return &Update{Kind: Change, Target: "//price", Value: "7.77"}
	default:
		return &Update{Kind: Transpose, Target: "//product[id='4']", Target2: "//product[id='14']"}
	}
}

// Property: apply followed by undo restores both the document and the
// DataGuide extents exactly.
func TestPropertyApplyUndoIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		doc, err := xmltree.ParseString("d2", productsXML)
		if err != nil {
			return false
		}
		g := dataguide.Build(doc)
		before := doc.Clone()
		// Apply a random chain of 1..4 updates, then undo in reverse.
		n := 1 + rng.Intn(4)
		var recs []*UndoRec
		for i := 0; i < n; i++ {
			u := randomUpdate(rng)
			if u.Kind == Insert && u.Pos != xmltree.Into {
				// before/after need a non-root target
				u.Target = "/products/product[1]"
			}
			rec, _, err := Apply(u, doc, g)
			if err != nil {
				if u.Kind == Transpose {
					// A prior remove can make the transpose arity check fail;
					// the failed apply must have rolled itself back, so the
					// chain can continue.
					continue
				}
				return false
			}
			recs = append(recs, rec)
		}
		for i := len(recs) - 1; i >= 0; i-- {
			if err := recs[i].Undo(doc, g); err != nil {
				return false
			}
		}
		if !xmltree.Equal(before, doc) {
			return false
		}
		// Guide extents must match a fresh build.
		fresh := dataguide.Build(doc)
		for _, p := range fresh.Paths() {
			if len(fresh.Lookup(p).Extent) != len(g.Lookup(p).Extent) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestStringForms(t *testing.T) {
	us := []*Update{
		{Kind: Insert, Target: "/p", Pos: xmltree.Into, New: &NodeSpec{Name: "x"}},
		{Kind: Remove, Target: "/p"},
		{Kind: Rename, Target: "/p", NewName: "q"},
		{Kind: Change, Target: "/p", Value: "v"},
		{Kind: Change, Target: "/p", Attr: "a", Value: "v"},
		{Kind: Transpose, Target: "/p", Target2: "/q"},
	}
	for _, u := range us {
		if u.String() == "" || u.String() == "unknown update" {
			t.Errorf("bad string for %v: %q", u.Kind, u.String())
		}
	}
}

func TestTargetQueryParsedOnce(t *testing.T) {
	u := &Update{Kind: Transpose, Target: "/p/a", Target2: "/p/b"}
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	q1, err := u.TargetQuery()
	if err != nil {
		t.Fatal(err)
	}
	q2, err := u.TargetQuery()
	if err != nil {
		t.Fatal(err)
	}
	if q1 != q2 {
		t.Fatal("TargetQuery re-parsed after Validate")
	}
	s1, _ := u.Target2Query()
	s2, _ := u.Target2Query()
	if s1 != s2 {
		t.Fatal("Target2Query re-parsed after Validate")
	}
	bad := &Update{Kind: Remove, Target: "]["}
	if _, err := bad.TargetQuery(); err == nil {
		t.Fatal("parse error not surfaced")
	}
}
